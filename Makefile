# Development gate for this repository. `make check` is the tier-1+ gate a
# change must pass before merging: vet, build, the project's own static
# analyzers (wblint), the full test suite under the race detector (which
# also exercises the serial-vs-parallel equivalence properties), and a
# short fuzz smoke over the decoder and message-framing fuzz targets.

GO ?= go

.PHONY: all build vet test lint race fuzz bench bench-stream metrics-golden chaos faults-golden serve chaos-serve check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Project-specific static analysis (determinism, pool hygiene, float
# comparisons, unit discipline). `wblint -json ./...` emits the findings
# machine-readably; see README "Static gates" for the codes.
lint:
	$(GO) run ./cmd/wblint ./...

race:
	$(GO) test -race ./...

# Ten seconds per target catches shallow panics cheaply; explore deeper
# with e.g. `go test -fuzz=FuzzDecodeCSI -fuzztime=5m ./internal/uplink/`.
fuzz:
	$(GO) test -fuzz=FuzzDecodeCSI -fuzztime=10s ./internal/uplink/
	$(GO) test -fuzz=FuzzDecodeLongRange -fuzztime=10s ./internal/uplink/
	$(GO) test -fuzz=FuzzParsePayload -fuzztime=10s ./internal/downlink/
	$(GO) test -fuzz=FuzzMessageRoundTrip -fuzztime=10s ./internal/downlink/
	$(GO) test -fuzz=FuzzScheduleCodec -fuzztime=10s ./internal/faults/
	$(GO) test -fuzz=FuzzStreamPush -fuzztime=10s ./internal/uplink/
	$(GO) test -fuzz=FuzzWireProtocol -fuzztime=10s ./internal/serve/

bench:
	$(GO) test -bench=. -benchmem

# Streaming decode contract: BenchmarkStream* report the per-push and
# per-frame cost with -benchmem, and the same package run re-asserts
# TestStreamPushSteadyStateAllocs (steady-state Push must not allocate —
# the test is skipped under -race, so this plain-build run is the gate).
bench-stream:
	$(GO) test -bench 'BenchmarkStream' -benchmem -run TestStreamPushSteadyStateAllocs ./internal/uplink/

# Pins the observability contract: the aggregated pipeline metrics from an
# instrumented sweep must match testdata/metrics_golden.json byte for byte
# and be identical at every -workers value. Regenerate after an intentional
# instrumentation change with `go test ./internal/eval/ -run TestMetricsGolden -update`.
metrics-golden:
	$(GO) test ./internal/eval/ -run 'TestMetricsGolden|TestMetricsWorkerInvariance'

# Chaos suite: every built-in fault profile driven through the real uplink,
# downlink and transaction pipelines under the race detector, plus the
# backoff/ARF behaviour under injected loss. See README "Fault injection".
chaos:
	$(GO) test -race ./internal/faults/... ./internal/core/... ./internal/wifi/...

# Pins the fault-injection observability contract (wbbench -faults):
# faulted-sweep metrics must match testdata/faults_golden.json byte for
# byte at every -workers value. Regenerate an intentional change with
# `go test ./internal/eval/ -run TestFaultsGolden -update`.
faults-golden:
	$(GO) test ./internal/eval/ -run 'TestFaultsGolden|TestFaultsWorkerInvariance'

# Serving-layer concurrency gate, always run fresh (-count=1): 64
# concurrent TCP sessions byte-identical to batch decode, overload
# rejection, poison isolation, drain under load — all race-enabled —
# plus the wbserved drain loop and the wbload replay-equivalence client.
# See README "Serving" and DESIGN.md §12.
serve:
	$(GO) test -race -count=1 ./internal/serve/ ./cmd/wbserved/ ./cmd/wbload/

# Wire-level chaos gate, race-enabled and always fresh: the fault-injecting
# TCP proxy's compile-once determinism contract, and the wbload chaos runs —
# resume-equals-batch under wire-flaky at 1 and 8 workers, byte-identical
# -metrics snapshots for the same (seed, spec, trace). See EXPERIMENTS.md
# "Chaos replay".
chaos-serve:
	$(GO) test -race -count=1 ./internal/serve/chaosproxy/
	$(GO) test -race -count=1 -run 'TestChaos' ./cmd/wbload/

check: vet build lint race fuzz bench-stream metrics-golden chaos faults-golden serve chaos-serve
