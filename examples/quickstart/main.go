// Quickstart: the smallest complete Wi-Fi Backscatter round trip.
//
// A battery-free tag sits 20 cm from a Wi-Fi reader (e.g. a phone); a
// Wi-Fi AP three meters away provides the ambient packets the tag
// modulates. The reader queries the tag over the packet-presence downlink
// and decodes the tag's 48-bit answer from per-packet CSI.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/reader"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	// 1. Describe the deployment. Everything else takes paper defaults.
	sys, err := core.NewSystem(core.Config{
		Seed:              42,
		TagReaderDistance: units.Centimeters(20),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Give the helper (the AP) some traffic for the tag to ride on.
	if err := (&wifi.CBRSource{
		Station:  sys.Helper,
		Dst:      wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload:  200,
		Interval: 0.001, // 1000 packets/s
	}).Start(); err != nil {
		log.Fatal(err)
	}
	sys.Run(0.3) // let traffic warm up

	// 3. Query the tag: "read your sensor, answer at 100 bps".
	const sensorReading = 0x0000_2A42_0017 // what the tag will report
	q := reader.Query{Command: reader.CmdRead, TagID: 1, BitRate: 100}
	res, err := sys.RunQuery(q, sensorReading, core.DefaultTransactionConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the round trip.
	fmt.Println("tag decoded the query:  ", res.TagDecoded)
	fmt.Println("reader decoded response:", res.ResponseOK)
	fmt.Printf("tag reported:            %#012x\n", res.ResponseData)
	if res.ResponseData == sensorReading {
		fmt.Println("round trip verified — an RF-powered device just")
		fmt.Println("answered a query using nothing but reflected Wi-Fi.")
	}
}
