// Energybudget: a battery-free sensor living strictly within its harvested
// energy (§6 of the paper).
//
// The tag runs the real firmware state machine with a storage capacitor
// charged only by TV-band harvesting at 20 km from the tower (~1 µW).
// The reader polls it every second; the firmware answers only when
// the capacitor holds enough charge for the decode + response, so some
// polls go unanswered — exactly the duty-cycled behaviour the paper
// describes for operation far from power sources.
//
// Run with:
//
//	go run ./examples/energybudget
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/firmware"
	"repro/internal/reader"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Seed:              21,
		TagReaderDistance: units.Centimeters(20),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.EnableTxLog()
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload: 200, Interval: 0.001,
	}).Start(); err != nil {
		log.Fatal(err)
	}
	sys.Run(0.2)

	// Harvesting: TV tower 12 km away.
	h := tag.DefaultHarvester()
	supply := h.TVHarvest(units.Meters(20_000))
	fmt.Printf("harvest income at 20 km from the TV tower: %.2f µW\n", float64(supply))

	fw, err := firmware.New(firmware.Config{
		ID:                  0x0C0C,
		DownlinkBitDuration: 50e-6,
		Supply:              supply,
		Reservoir:           &tag.Reservoir{CapacityJoules: 30e-6},
	}, func(seq uint16) uint64 {
		return 0x0C0C_0000_0000 | uint64(seq) // id + sample counter
	})
	if err != nil {
		log.Fatal(err)
	}

	enc, err := downlink.NewEncoder(50e-6)
	if err != nil {
		log.Fatal(err)
	}
	q := reader.Query{Command: reader.CmdRead, TagID: 0x0C0C, BitRate: 200}
	chunks := enc.Plan(q.Encode().Bits())

	answered := 0
	const polls = 10
	for poll := 0; poll < polls; poll++ {
		var winStart float64
		granted := false
		if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, s float64) {
			winStart = s
			granted = true
		}); err != nil {
			log.Fatal(err)
		}
		sys.Run(sys.Eng.Now() + 0.2)
		if !granted {
			log.Fatal("downlink window never granted")
		}
		end, err := fw.HandleWindow(sys, winStart, chunks[0].Reservation)
		if err != nil {
			log.Fatal(err)
		}
		if end == 0 {
			fmt.Printf("poll %2d: tag silent (recharging)\n", poll)
		} else {
			sys.Run(end + 0.2)
			dec, _ := sys.UplinkDecoder(float64(q.BitRate))
			frameDur := float64(13+downlink.PayloadBits+13) / float64(q.BitRate)
			res, err := dec.DecodeCSI(sys.Series(), end-frameDur, downlink.PayloadBits)
			if err != nil {
				log.Fatal(err)
			}
			if msg, perr := downlink.ParsePayload(tag.Scramble(res.Payload)); perr == nil {
				fmt.Printf("poll %2d: sample %#012x\n", poll, msg.Data)
				answered++
			} else {
				fmt.Printf("poll %2d: response garbled\n", poll)
			}
		}
		sys.Run(sys.Eng.Now() + 1) // one second between polls
	}
	st := fw.Stats()
	fmt.Printf("answered %d/%d polls (energy denied %d times) — the tag\n",
		answered, polls, st.EnergyDenied)
	fmt.Println("paces itself to its harvest income, never a battery.")
}
