// Beacononly: the minimum-footprint uplink — decoding a tag using nothing
// but the AP's periodic beacons and RSSI (§7.5 of the paper).
//
// Beacons are management frames every AP already transmits; the Intel
// cards expose no CSI for them, so the reader falls back to the RSSI
// decoding path (§3.3). The achievable rate is low, but the network
// carries zero extra traffic and the reader needs no special driver
// support.
//
// Run with:
//
//	go run ./examples/beacononly
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Seed:              5,
		TagReaderDistance: units.Centimeters(8),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The AP beacons at 50/s (a 20 ms beacon interval, as the paper's
	// sweep configures); nothing else is on the air.
	const beaconsPerSecond = 50.0
	if err := (&wifi.BeaconSource{
		Station:  sys.Helper,
		Interval: 1 / beaconsPerSecond,
	}).Start(); err != nil {
		log.Fatal(err)
	}

	// ~10 beacons per bit sustains a 5 bps uplink.
	const bitRate = 5.0
	payload := core.RandomPayload(24, 80) // a short identifier burst
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, bitRate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag transmitting %d bits at %.0f bps over %.0f beacons/s (%.1fs on air)\n",
		len(payload), bitRate, beaconsPerSecond, mod.End()-mod.Start())
	sys.Run(mod.End() + 0.5)

	dec, err := sys.UplinkDecoder(bitRate)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.DecodeRSSI(sys.Series(), mod.Start(), len(payload))
	if err != nil {
		log.Fatal(err)
	}
	errs := core.CountBitErrors(res.Payload, payload)
	fmt.Printf("decoded from %s with %.1f beacons/bit: %d/%d bit errors\n",
		res.Good[0], res.MeasurementsPerBit, errs, len(payload))
	if errs == 0 {
		fmt.Println("identifier recovered from beacons alone — the AP never")
		fmt.Println("sent a single extra packet.")
	}
}
