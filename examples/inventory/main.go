// Inventory: discovering a population of unknown battery-free tags with
// the EPC Gen-2-style slotted-ALOHA protocol the paper sketches in §2.
//
// Six tags sit at different distances from the reader. The reader knows
// nothing about them; it broadcasts inventory queries, resolves slot
// collisions by adapting the frame size, acknowledges captured handles,
// and collects each tag's 48-bit ID.
//
// Run with:
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Seed:              11,
		TagReaderDistance: units.Centimeters(12),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Ambient traffic for the uplink.
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload: 200, Interval: 0.001,
	}).Start(); err != nil {
		log.Fatal(err)
	}
	sys.Run(0.3)

	// The unknown population: six tags, 12–37 cm from the reader.
	ids := []uint64{
		0x0001_0000_000A, 0x0001_0000_000B, 0x0001_0000_000C,
		0x0001_0000_000D, 0x0001_0000_000E, 0x0001_0000_000F,
	}
	dists := make([]units.Meters, len(ids))
	for i := range dists {
		dists[i] = units.Centimeters(12 + 5*float64(i))
	}
	inv, err := inventory.New(sys, ids, dists, inventory.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := inv.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("inventory finished in %.1f s of air time:\n", res.Duration)
	fmt.Printf("  rounds %d, slots %d (%d singles, %d collisions, %d empties)\n",
		res.Rounds, res.Slots, res.Singles, res.Collisions, res.Empties)
	for i, id := range res.Identified {
		fmt.Printf("  tag %d: %#012x\n", i+1, id)
	}
	if len(res.Identified) == len(ids) {
		fmt.Println("all tags identified — ready for individual queries.")
	} else {
		fmt.Printf("%d tags remain unidentified (raise MaxRounds).\n",
			len(ids)-len(res.Identified))
	}
}
