// Sensornet: polling a battery-free temperature sensor over Wi-Fi
// Backscatter with traffic-aware rate adaptation (§5 of the paper).
//
// The reader monitors how fast the helper AP is actually delivering
// packets, advises the tag of a sustainable uplink bit rate in each query
// (N/M with a safety factor), and polls it repeatedly while the network
// load changes. This is the workload the paper's introduction motivates:
// sensors embedded in everyday objects, read through existing Wi-Fi.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/reader"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/wifi"
)

// encodeReading packs a sensor sample into the 48-bit response payload:
// [16-bit tag id][16-bit centi-degrees][16-bit sequence].
func encodeReading(tagID uint16, centiDeg int16, seq uint16) uint64 {
	return uint64(tagID)<<32 | uint64(uint16(centiDeg))<<16 | uint64(seq)
}

func decodeReading(data uint64) (tagID uint16, centiDeg int16, seq uint16) {
	return uint16(data >> 32), int16(data >> 16), uint16(data)
}

func main() {
	sys, err := core.NewSystem(core.Config{
		Seed:              7,
		TagReaderDistance: units.Centimeters(25),
		HelperTagDistance: units.Meters(4),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Office-like network load that the reader does not control:
	// a Poisson stream whose rate we change between polls.
	loads := []float64{1500, 700, 2500}
	traffic := &wifi.PoissonSource{
		Station: sys.Helper,
		Dst:     wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload: 400,
		Rate:    loads[0],
		Rnd:     rng.New(99),
	}
	if err := traffic.Start(); err != nil {
		log.Fatal(err)
	}

	// The reader watches the helper's delivered packet rate (§5).
	est, err := reader.NewRateEstimator(1.0)
	if err != nil {
		log.Fatal(err)
	}
	reader.MonitorHelper(sys.Medium, sys.Helper, est)
	advisor := reader.NewRateAdvisor()

	// Simulated sensor state on the tag.
	temperature := int16(2215) // 22.15 °C
	var seq uint16

	for poll, load := range loads {
		traffic.Rate = load
		sys.Run(sys.Eng.Now() + 1.5) // settle at the new load

		n := est.Rate()
		advised := advisor.Advise(n)
		if advised == 0 {
			fmt.Printf("poll %d: load %4.0f pkt/s — too little traffic, skipping\n", poll, n)
			continue
		}
		seq++
		temperature += int16(poll*7 - 5) // the room drifts a little
		q := reader.Query{
			Command: reader.CmdRead,
			TagID:   0x0101,
			BitRate: uint16(advised),
		}
		res, err := sys.RunQuery(q, encodeReading(q.TagID, temperature, seq),
			core.DefaultTransactionConfig())
		if err != nil {
			log.Fatal(err)
		}
		if !res.ResponseOK {
			fmt.Printf("poll %d: load %4.0f pkt/s, advised %4.0f bps — no response (attempts %d)\n",
				poll, n, advised, res.Attempts)
			continue
		}
		id, temp, gotSeq := decodeReading(res.ResponseData)
		fmt.Printf("poll %d: load %4.0f pkt/s, advised %4.0f bps → tag %#04x: %.2f °C (seq %d, attempts %d)\n",
			poll, n, advised, id, float64(temp)/100, gotSeq, res.Attempts)
	}
}
