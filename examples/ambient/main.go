// Ambient: the uplink with zero injected traffic (§7.4 of the paper).
//
// The tag rides entirely on the packets an office network is already
// sending. The reader passively monitors the AP's traffic (here an
// afternoon-load Poisson process plus a bursty streaming client), measures
// the achievable rate, and decodes a tag transmission scheduled at that
// rate.
//
// Run with:
//
//	go run ./examples/ambient
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/rng"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Seed:               3,
		TagReaderDistance:  units.Centimeters(10),
		MeasureAllStations: true, // §5: leverage traffic from all devices
	})
	if err != nil {
		log.Fatal(err)
	}

	// The office network, none of it under our control: the AP serves a
	// streaming client and background chatter.
	hour := 14.0 // mid-afternoon
	if err := (&wifi.PoissonSource{
		Station: sys.Helper, Dst: wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload: 400, Rate: wifi.OfficeLoad(hour), Rnd: rng.New(11),
	}).Start(); err != nil {
		log.Fatal(err)
	}
	client := sys.AddStation("streaming-client", units.DBm(16), units.Meters(5))
	if err := (&wifi.BurstySource{
		Station: client, Dst: wifi.MAC{0x02, 0, 0, 0, 0, 1},
		Payload: 600, MeanBurst: 15, MeanGap: 0.06, InBurstInterval: 0.0008,
		Rnd: rng.New(12),
	}).Start(); err != nil {
		log.Fatal(err)
	}

	// The reader measures what the network is giving it.
	est, err := reader.NewRateEstimator(1.0)
	if err != nil {
		log.Fatal(err)
	}
	reader.MonitorHelper(sys.Medium, sys.Helper, est)
	sys.Run(2.0)
	advisor := reader.NewRateAdvisor()
	rate := advisor.Advise(est.Rate())
	fmt.Printf("ambient load at %02.0f:00: %.0f AP pkt/s → advising %.0f bps\n",
		hour, est.Rate(), rate)
	if rate == 0 {
		log.Fatal("network too quiet for any tested rate")
	}

	// The tag transmits a CRC-protected reading at the advised rate; the
	// reader decodes it from measurements of the ambient packets alone.
	reading := downlink.NewMessage(0x00C0_FFEE_1234)
	bits := tag.FrameBits(tag.Scramble(reading.PayloadBits()))
	mod, err := sys.TransmitUplink(bits, sys.Eng.Now()+0.5, rate)
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(mod.End() + 0.5)

	dec, err := sys.UplinkDecoder(rate)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.DecodeCSI(sys.Series(), mod.Start(), downlink.PayloadBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded with %.1f measurements/bit, preamble correlation %.2f\n",
		res.MeasurementsPerBit, res.PreambleCorrelation)
	msg, err := downlink.ParsePayload(tag.Scramble(res.Payload))
	if err != nil {
		log.Fatalf("CRC failed: %v", err)
	}
	fmt.Printf("tag reported %#012x — no packet was injected for this\n", msg.Data)
	if msg.Data != reading.Data {
		log.Fatal("payload mismatch")
	}
}
