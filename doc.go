// Package repro is a full reimplementation and simulation-based
// reproduction of "Wi-Fi Backscatter: Internet Connectivity for RF-Powered
// Devices" (Kellogg, Parks, Gollakota, Smith, Wetherall — SIGCOMM 2014).
//
// The paper's hardware prototype is replaced by a physics-level simulator
// (see DESIGN.md); the uplink and downlink algorithms are the paper's own.
// The public entry point is internal/core; runnable tools live under cmd/
// and worked examples under examples/. The root-level benchmarks
// (bench_test.go) regenerate every table and figure of the evaluation.
package repro
