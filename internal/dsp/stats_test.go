package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-1, 1, -3, 3}); got != 2 {
		t.Errorf("MeanAbs = %v, want 2", got)
	}
	if got := MeanAbs(nil); got != 0 {
		t.Errorf("MeanAbs(nil) = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median modified input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", min, max)
	}
	if min, max := MinMax([]float64{}); min != 0 || max != 0 {
		t.Errorf("MinMax(empty) = (%v, %v), want (0, 0)", min, max)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 5, 2}); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
}

func TestMeanAbsDev(t *testing.T) {
	if got := MeanAbsDev(nil); got != 0 {
		t.Errorf("MeanAbsDev(nil) = %v", got)
	}
	// Bimodal ±2, unbalanced 3:1 — estimate must stay near the lobe
	// separation half-width regardless of imbalance.
	xs := []float64{2, 2, 2, -2, 2, 2, 2, -2}
	got := MeanAbsDev(xs)
	if got < 1.0 || got > 2.5 {
		t.Errorf("MeanAbsDev of unbalanced bimodal = %v, want ~1.5", got)
	}
}

func TestMeanAbsDevOutlierLinearity(t *testing.T) {
	base := make([]float64, 100)
	for i := range base {
		base[i] = float64(i%2)*2 - 1
	}
	clean := MeanAbsDev(base)
	spiked := append([]float64{}, base...)
	spiked[0] = 100 // one enormous outlier among 100
	dirty := MeanAbsDev(spiked)
	if dirty > clean*3 {
		t.Errorf("MeanAbsDev blew up on one outlier: %v -> %v", clean, dirty)
	}
}

func TestMAD(t *testing.T) {
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD(nil) = %v", got)
	}
	// For a symmetric sample the MAD scales to the std.
	xs := []float64{-3, -1, 0, 1, 3}
	if got := MAD(xs); got < 1 || got > 2 {
		t.Errorf("MAD = %v", got)
	}
	// Outlier robustness: one huge value barely moves it.
	with := append([]float64{}, xs...)
	with = append(with, 1e6)
	if got := MAD(with); got > 4 {
		t.Errorf("MAD with outlier = %v, should stay small", got)
	}
}
