package dsp

// This file implements the "signal conditioning" step from §3.2 of the
// paper: removing slow temporal channel variation with a moving average and
// normalizing the residual so tag bits map to ±1.

// MovingAverage returns the centered moving average of xs with the given
// window length. Near the edges the window shrinks to the available
// samples, so the result has the same length as xs. A window <= 1 returns a
// copy of xs.
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	// Prefix sums for O(n) windowed means.
	prefix := make([]float64, len(xs)+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
	return out
}

// RemoveTrend subtracts the centered moving average with the given window
// from xs, producing a zero-mean residual that tracks only fast changes
// (such as the tag's modulation). This is step 1 of the paper's signal
// conditioning.
func RemoveTrend(xs []float64, window int) []float64 {
	avg := MovingAverage(xs, window)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - avg[i]
	}
	return out
}

// Normalize scales a zero-mean series so that the two modulation levels map
// to approximately -1 and +1. Following §3.2, the scale is the mean of the
// absolute values (which estimates the level magnitude without knowing the
// transmitted bits). A series with zero mean absolute value is returned
// as all zeros.
func Normalize(xs []float64) []float64 {
	scale := MeanAbs(xs)
	out := make([]float64, len(xs))
	if scale == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / scale
	}
	return out
}

// Condition applies the full signal-conditioning pipeline: moving-average
// detrend followed by normalization. window is in samples (the paper uses
// the samples spanning 400 ms of packets).
func Condition(xs []float64, window int) []float64 {
	return Normalize(RemoveTrend(xs, window))
}

// ConditionTwoPass is Condition with decision-directed baseline removal.
// A plain moving average is biased wherever the modulated bits are locally
// unbalanced (a run of ones drags the baseline up and crushes those very
// bits toward zero). The second pass estimates the modulation from the
// first pass's signs, subtracts it, and recomputes the baseline from the
// modulation-free residue:
//
//	resid   = xs - MA(xs)                 (first pass)
//	est     = sign(resid) · mean|resid|   (modulation estimate)
//	baseline = MA(xs - est)               (unbiased second pass)
//	out      = Normalize(xs - baseline)
//
// When the first pass's signs are noise (a weak link), est averages to
// nothing and the result degrades gracefully to the single-pass Condition.
// The estimate is refined over a few iterations, which matters near the
// series edges where the centered window is asymmetric.
func ConditionTwoPass(xs []float64, window int) []float64 {
	resid := RemoveTrend(xs, window)
	demod := make([]float64, len(xs))
	for iter := 0; iter < 2; iter++ {
		amp := MeanAbs(resid)
		if amp == 0 {
			break
		}
		for i, r := range resid {
			if r >= 0 {
				demod[i] = xs[i] - amp
			} else {
				demod[i] = xs[i] + amp
			}
		}
		baseline := MovingAverage(demod, window)
		for i := range xs {
			resid[i] = xs[i] - baseline[i]
		}
	}
	return Normalize(resid)
}
