package dsp

// This file implements the "signal conditioning" step from §3.2 of the
// paper: removing slow temporal channel variation with a moving average and
// normalizing the residual so tag bits map to ±1.
//
// Every step has an Into variant writing into a caller-provided buffer
// (which must not alias xs); the allocating forms wrap them. Internal
// scratch (prefix sums, baselines, modulation estimates) comes from the
// package buffer pool, so the allocating forms cost exactly one result
// slice per call.

// MovingAverage returns the centered moving average of xs with the given
// window length. Near the edges the window shrinks to the available
// samples, so the result has the same length as xs. A window <= 1 returns a
// copy of xs.
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	MovingAverageInto(out, xs, window)
	return out
}

// MovingAverageInto computes MovingAverage into dst, which must have the
// same length as xs and not alias it.
func MovingAverageInto(dst, xs []float64, window int) {
	if window <= 1 {
		copy(dst, xs)
		return
	}
	half := window / 2
	// Prefix sums for O(n) windowed means.
	prefix := GetSlice(len(xs) + 1)
	defer PutSlice(prefix)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		dst[i] = (prefix[hi] - prefix[lo]) / float64(hi-lo)
	}
}

// RemoveTrend subtracts the centered moving average with the given window
// from xs, producing a zero-mean residual that tracks only fast changes
// (such as the tag's modulation). This is step 1 of the paper's signal
// conditioning.
func RemoveTrend(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	RemoveTrendInto(out, xs, window)
	return out
}

// RemoveTrendInto computes RemoveTrend into dst, which must have the same
// length as xs and not alias it.
func RemoveTrendInto(dst, xs []float64, window int) {
	avg := GetSlice(len(xs))
	MovingAverageInto(avg, xs, window)
	for i, x := range xs {
		dst[i] = x - avg[i]
	}
	PutSlice(avg)
}

// Normalize scales a zero-mean series so that the two modulation levels map
// to approximately -1 and +1. Following §3.2, the scale is the mean of the
// absolute values (which estimates the level magnitude without knowing the
// transmitted bits). A series with zero mean absolute value is returned
// as all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	normalizeInPlace(out)
	return out
}

// normalizeInPlace applies Normalize's scaling to xs itself.
func normalizeInPlace(xs []float64) {
	scale := MeanAbs(xs)
	if scale == 0 {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] /= scale
	}
}

// Condition applies the full signal-conditioning pipeline: moving-average
// detrend followed by normalization. window is in samples (the paper uses
// the samples spanning 400 ms of packets).
func Condition(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	ConditionInto(out, xs, window)
	return out
}

// ConditionInto computes Condition into dst, which must have the same
// length as xs and not alias it.
func ConditionInto(dst, xs []float64, window int) {
	RemoveTrendInto(dst, xs, window)
	normalizeInPlace(dst)
}

// ConditionTwoPass is Condition with decision-directed baseline removal.
// A plain moving average is biased wherever the modulated bits are locally
// unbalanced (a run of ones drags the baseline up and crushes those very
// bits toward zero). The second pass estimates the modulation from the
// first pass's signs, subtracts it, and recomputes the baseline from the
// modulation-free residue:
//
//	resid   = xs - MA(xs)                 (first pass)
//	est     = sign(resid) · mean|resid|   (modulation estimate)
//	baseline = MA(xs - est)               (unbiased second pass)
//	out      = Normalize(xs - baseline)
//
// When the first pass's signs are noise (a weak link), est averages to
// nothing and the result degrades gracefully to the single-pass Condition.
// The estimate is refined over a few iterations, which matters near the
// series edges where the centered window is asymmetric.
func ConditionTwoPass(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	ConditionTwoPassInto(out, xs, window)
	return out
}

// ConditionTwoPassInto computes ConditionTwoPass into dst, which must have
// the same length as xs and not alias it.
func ConditionTwoPassInto(dst, xs []float64, window int) {
	resid := dst
	RemoveTrendInto(resid, xs, window)
	demod := GetSlice(len(xs))
	baseline := GetSlice(len(xs))
	for iter := 0; iter < 2; iter++ {
		amp := MeanAbs(resid)
		if amp == 0 {
			break
		}
		for i, r := range resid {
			if r >= 0 {
				demod[i] = xs[i] - amp
			} else {
				demod[i] = xs[i] + amp
			}
		}
		MovingAverageInto(baseline, demod, window)
		for i := range xs {
			resid[i] = xs[i] - baseline[i]
		}
	}
	PutSlice(demod)
	PutSlice(baseline)
	normalizeInPlace(resid)
}
