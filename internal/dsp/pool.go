package dsp

import "sync"

// The decode hot path conditions ~90 channel series per trial, each needing
// several same-length scratch slices (prefix sums, baselines, modulation
// estimates). Allocating those per call dominated the allocation profile of
// parallel sweeps, so scratch buffers come from a shared sync.Pool instead.
// Only buffers that never escape their function (or that callers explicitly
// return with PutSlice) are pooled; results handed to callers remain
// freshly allocated unless the caller opted into an Into variant.

// slicePool recycles float64 scratch buffers as *[]float64.
var slicePool sync.Pool

// GetSlice returns a zeroed slice of length n, reusing a pooled buffer
// when one with enough capacity is available. Return it with PutSlice
// when done; forgetting to is safe (the GC reclaims it) but forfeits the
// reuse.
func GetSlice(n int) []float64 {
	if v := slicePool.Get(); v != nil {
		s := *(v.(*[]float64))
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = 0
			}
			return s
		}
	}
	return make([]float64, n)
}

// PutSlice returns a buffer obtained from GetSlice to the pool. The
// caller must not use s afterwards.
func PutSlice(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	slicePool.Put(&s)
}
