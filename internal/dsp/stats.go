// Package dsp implements the signal-processing primitives used by the
// Wi-Fi Backscatter uplink and downlink: moving-average signal conditioning,
// normalization, correlation, orthogonal and Barker codes, majority voting,
// hysteresis thresholding, and basic statistics over measurement series.
//
// All functions operate on plain float64 slices so they compose freely with
// the CSI/RSSI measurement pipelines, and none of them retain references to
// their inputs.
package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbs returns the mean of |x| over xs, or 0 for an empty slice.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice. xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := GetSlice(len(xs))
	defer PutSlice(cp)
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MeanAbsDev returns the mean absolute deviation of xs about its mean — a
// scale estimate that is linear (not quadratic) in outliers and, for a
// bimodal ±A series, close to A regardless of how unbalanced the two
// populations are.
func MeanAbsDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x - m)
	}
	return sum / float64(len(xs))
}

// MAD returns the median absolute deviation of xs about its median,
// scaled by 1.4826 so it estimates the standard deviation for Gaussian
// data while ignoring heavy-tailed outliers (such as spurious CSI jumps).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := GetSlice(len(xs))
	defer PutSlice(devs)
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return 1.4826 * Median(devs)
}

// MinMax returns the smallest and largest values in xs, or (0, 0) for an
// empty slice, matching the zero-on-empty convention of Mean and Median.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// ArgMax returns the index of the largest value in xs, or -1 for an empty
// slice. Ties resolve to the first occurrence.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
