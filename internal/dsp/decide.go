package dsp

// This file implements the bit-decision primitives from §3.2: majority
// voting over the measurements that make up one bit, and the hysteresis
// comparator that suppresses the Intel cards' spurious CSI jumps.

// MajorityVote returns true when more than half of the samples are
// positive. Ties (possible with an even count of nonzero votes) resolve to
// false, matching a conservative zero-threshold. Zero-valued samples count
// as negative votes.
func MajorityVote(samples []float64) bool {
	pos := 0
	for _, s := range samples {
		if s > 0 {
			pos++
		}
	}
	return pos*2 > len(samples)
}

// VoteBit applies a symmetric threshold vote: samples above +thresh count
// for one, below -thresh count for zero, and samples inside the dead zone
// abstain. It returns the winning bit and whether any votes were cast.
func VoteBit(samples []float64, thresh float64) (bit, ok bool) {
	ones, zeros := 0, 0
	for _, s := range samples {
		switch {
		case s > thresh:
			ones++
		case s < -thresh:
			zeros++
		}
	}
	if ones == 0 && zeros == 0 {
		return false, false
	}
	return ones >= zeros, true
}

// Hysteresis is a two-threshold comparator (§3.2): the output switches to
// one only when the input exceeds High and to zero only when it drops below
// Low; between the thresholds the previous output holds. This filters the
// spurious single-sample CSI jumps that the Intel cards report.
type Hysteresis struct {
	Low, High float64
	state     bool
	primed    bool
}

// NewHysteresis builds a comparator with thresholds derived from the
// measurement statistics as in the paper: mean ± stddev/2.
func NewHysteresis(mean, stddev float64) *Hysteresis {
	return &Hysteresis{Low: mean - stddev/2, High: mean + stddev/2}
}

// Update feeds one sample and returns the current output bit. Before the
// input has crossed either threshold the output is the sign of the sample
// relative to the midpoint.
func (h *Hysteresis) Update(x float64) bool {
	switch {
	case x > h.High:
		h.state = true
		h.primed = true
	case x < h.Low:
		h.state = false
		h.primed = true
	case !h.primed:
		h.state = x > (h.Low+h.High)/2
	}
	return h.state
}

// Reset clears the comparator state.
func (h *Hysteresis) Reset() { h.state, h.primed = false, false }

// Apply runs the comparator across a series, returning one output per
// sample.
func (h *Hysteresis) Apply(xs []float64) []bool {
	out := make([]bool, len(xs))
	for i, x := range xs {
		out[i] = h.Update(x)
	}
	return out
}
