package dsp

import "fmt"

// Histogram is a fixed-bin histogram over a closed interval, used to build
// the PDF of normalized channel values (Fig. 4 of the paper).
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
	below    int
	above    int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [min, max]. It returns an error when the interval or bin count is
// degenerate.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("dsp: histogram needs at least one bin, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("dsp: histogram interval [%v, %v] is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one observation. Values outside [Min, Max] are tallied as
// underflow/overflow and excluded from the in-range bins.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Min {
		h.below++
		return
	}
	if x > h.Max {
		h.above++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i == len(h.Counts) { // x == Max lands in the last bin
		i--
	}
	h.Counts[i]++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int { return h.total }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (below, above int) { return h.below, h.above }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// PDF returns the probability density estimate per bin: the fraction of
// in-range mass in each bin divided by the bin width, so the densities
// integrate to the in-range probability. An empty histogram yields zeros.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	w := h.BinWidth()
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total) / w
	}
	return out
}

// Modes returns the indices of local maxima in the PDF whose density is at
// least minDensity, in ascending bin order. A bin is a local maximum when
// it is strictly greater than at least one neighbor and no neighbor
// exceeds it. Used to detect the two Gaussian lobes at ±1 in Fig. 4.
func (h *Histogram) Modes(minDensity float64) []int {
	pdf := h.PDF()
	var modes []int
	for i, d := range pdf {
		if d < minDensity {
			continue
		}
		left := i == 0 || pdf[i-1] <= d
		right := i == len(pdf)-1 || pdf[i+1] <= d
		strict := (i > 0 && pdf[i-1] < d) || (i < len(pdf)-1 && pdf[i+1] < d)
		if left && right && strict {
			modes = append(modes, i)
		}
	}
	return modes
}
