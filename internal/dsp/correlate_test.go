package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorrelateBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	p := []float64{1, 1}
	got := Correlate(xs, p)
	want := []float64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Correlate length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Correlate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCorrelateDegenerate(t *testing.T) {
	if got := Correlate([]float64{1}, []float64{1, 2}); got != nil {
		t.Errorf("pattern longer than series should return nil, got %v", got)
	}
	if got := Correlate([]float64{1, 2}, nil); got != nil {
		t.Errorf("empty pattern should return nil, got %v", got)
	}
}

func TestNormalizedCorrelatePerfectMatch(t *testing.T) {
	p := Barker13
	xs := append(append([]float64{0.3, -0.2, 0.1}, p...), -0.5, 0.4)
	corr := NormalizedCorrelate(xs, p)
	peak, at := PeakCorrelation(xs, p)
	if at != 3 {
		t.Errorf("peak at %d, want 3 (corr=%v)", at, corr)
	}
	if !almostEqual(peak, 1, 1e-9) {
		t.Errorf("peak = %v, want 1", peak)
	}
}

func TestNormalizedCorrelateAntiMatch(t *testing.T) {
	p := []float64{1, -1, 1}
	neg := []float64{-1, 1, -1}
	corr := NormalizedCorrelate(neg, p)
	if !almostEqual(corr[0], -1, 1e-9) {
		t.Errorf("anti-correlation = %v, want -1", corr[0])
	}
}

func TestNormalizedCorrelateBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 5 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e50 {
				x = 0
			}
			xs[i] = x
		}
		corr := NormalizedCorrelate(xs, Barker13)
		for _, c := range corr {
			if c < -1-1e-9 || c > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedCorrelateZeroWindow(t *testing.T) {
	xs := []float64{0, 0, 0, 0, 1}
	corr := NormalizedCorrelate(xs, []float64{1, 1})
	if corr[0] != 0 {
		t.Errorf("zero-energy window should correlate to 0, got %v", corr[0])
	}
}

func TestPeakCorrelationEmpty(t *testing.T) {
	peak, at := PeakCorrelation([]float64{1}, []float64{1, 2, 3})
	if peak != 0 || at != -1 {
		t.Errorf("PeakCorrelation on short series = (%v, %d), want (0, -1)", peak, at)
	}
}

func TestBitsToLevels(t *testing.T) {
	got := BitsToLevels([]bool{true, false, true})
	want := []float64{1, -1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BitsToLevels[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExpandLevels(t *testing.T) {
	got := ExpandLevels([]float64{1, -1}, 3)
	want := []float64{1, 1, 1, -1, -1, -1}
	if len(got) != len(want) {
		t.Fatalf("ExpandLevels length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ExpandLevels[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := ExpandLevels([]float64{1}, 0); got != nil {
		t.Errorf("ExpandLevels with n=0 = %v, want nil", got)
	}
}

func TestBarkerAutocorrelationSidelobes(t *testing.T) {
	// The defining property of Barker codes: aperiodic autocorrelation
	// sidelobes have magnitude <= 1.
	for _, n := range []int{2, 3, 4, 5, 7, 11, 13} {
		code, err := Barker(n)
		if err != nil {
			t.Fatalf("Barker(%d): %v", n, err)
		}
		for shift := 1; shift < n; shift++ {
			var sum float64
			for i := 0; i+shift < n; i++ {
				sum += code[i] * code[i+shift]
			}
			if math.Abs(sum) > 1+1e-12 {
				t.Errorf("Barker(%d) sidelobe at shift %d = %v", n, shift, sum)
			}
		}
	}
}

func TestBarkerInvalidLength(t *testing.T) {
	if _, err := Barker(6); err == nil {
		t.Error("Barker(6) should error")
	}
}

func TestWalshPairOrthogonality(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 20, 150} {
		c0, c1, err := WalshPair(n)
		if err != nil {
			t.Fatalf("WalshPair(%d): %v", n, err)
		}
		if len(c0) != n || len(c1) != n {
			t.Fatalf("WalshPair(%d) lengths = %d, %d", n, len(c0), len(c1))
		}
		if dot := DotProduct(c0, c1); dot != 0 {
			t.Errorf("WalshPair(%d) dot = %v, want 0", n, dot)
		}
		for i := 0; i < n; i++ {
			if math.Abs(c0[i]) != 1 || math.Abs(c1[i]) != 1 {
				t.Errorf("WalshPair(%d) has non-±1 chip at %d", n, i)
			}
		}
	}
}

func TestWalshPairInvalid(t *testing.T) {
	for _, n := range []int{0, -2, 3, 7} {
		if _, _, err := WalshPair(n); err == nil {
			t.Errorf("WalshPair(%d) should error", n)
		}
	}
}

func TestDotProductPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DotProduct length mismatch should panic")
		}
	}()
	DotProduct([]float64{1}, []float64{1, 2})
}

func TestCodeBits(t *testing.T) {
	bits := CodeBits([]float64{1, -1, 1, 1})
	want := []bool{true, false, true, true}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("CodeBits[%d] = %v, want %v", i, bits[i], want[i])
		}
	}
}

func TestBarkerBitsRoundTrip(t *testing.T) {
	bits := BarkerBits()
	levels := BitsToLevels(bits)
	for i := range levels {
		if levels[i] != Barker13[i] {
			t.Errorf("BarkerBits round trip mismatch at %d", i)
		}
	}
}
