package dsp

import (
	"testing"
	"testing/quick"
)

func TestMajorityVote(t *testing.T) {
	cases := []struct {
		in   []float64
		want bool
	}{
		{[]float64{1, 1, -1}, true},
		{[]float64{-1, -1, 1}, false},
		{[]float64{1, -1}, false}, // tie -> false
		{nil, false},
		{[]float64{0, 0, 1}, false}, // zeros are negative votes
		{[]float64{0.1, 0.2, -5}, true},
	}
	for _, c := range cases {
		if got := MajorityVote(c.in); got != c.want {
			t.Errorf("MajorityVote(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMajorityVoteSymmetryProperty(t *testing.T) {
	// Negating all strictly-positive/negative samples must flip a
	// decisive vote.
	f := func(raw []float64) bool {
		var xs []float64
		pos, neg := 0, 0
		for _, x := range raw {
			if x != 0 && !isBad(x) {
				xs = append(xs, x)
				if x > 0 {
					pos++
				} else {
					neg++
				}
			}
		}
		if pos == neg {
			return true // ties both go false; skip
		}
		inv := make([]float64, len(xs))
		for i, x := range xs {
			inv[i] = -x
		}
		return MajorityVote(xs) != MajorityVote(inv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isBad(x float64) bool { return x != x || x > 1e300 || x < -1e300 }

func TestVoteBit(t *testing.T) {
	bit, ok := VoteBit([]float64{0.9, 0.8, -0.05}, 0.1)
	if !ok || !bit {
		t.Errorf("VoteBit = (%v, %v), want (true, true)", bit, ok)
	}
	bit, ok = VoteBit([]float64{-0.9, -0.8, 0.05}, 0.1)
	if !ok || bit {
		t.Errorf("VoteBit = (%v, %v), want (false, true)", bit, ok)
	}
	_, ok = VoteBit([]float64{0.05, -0.05}, 0.1)
	if ok {
		t.Error("all samples in dead zone should report ok=false")
	}
	_, ok = VoteBit(nil, 0.1)
	if ok {
		t.Error("empty samples should report ok=false")
	}
}

func TestHysteresisSuppressesSpikes(t *testing.T) {
	h := &Hysteresis{Low: -0.5, High: 0.5}
	// Strong one, then a small negative spike that should NOT flip the
	// output, then a strong zero.
	seq := []float64{1.0, 0.9, -0.3, 0.95, -1.0, -0.9}
	out := h.Apply(seq)
	want := []bool{true, true, true, true, false, false}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Hysteresis output[%d] = %v, want %v (seq %v)", i, out[i], want[i], seq)
		}
	}
}

func TestHysteresisUnprimedUsesMidpoint(t *testing.T) {
	h := &Hysteresis{Low: 0, High: 2} // midpoint 1
	if got := h.Update(1.5); !got {
		t.Error("unprimed sample above midpoint should read true")
	}
	h.Reset()
	if got := h.Update(0.5); got {
		t.Error("unprimed sample below midpoint should read false")
	}
}

func TestNewHysteresisThresholds(t *testing.T) {
	h := NewHysteresis(0.1, 0.4)
	if !almostEqual(h.Low, -0.1, 1e-12) || !almostEqual(h.High, 0.3, 1e-12) {
		t.Errorf("NewHysteresis thresholds = (%v, %v), want (-0.1, 0.3)", h.Low, h.High)
	}
}

func TestHysteresisReset(t *testing.T) {
	h := &Hysteresis{Low: -0.5, High: 0.5}
	h.Update(1)
	h.Reset()
	if got := h.Update(0.4); got {
		// After reset, 0.4 is below High and unprimed midpoint is 0;
		// 0.4 > 0 so it actually reads true. Verify the documented
		// midpoint behaviour instead.
		t.Log("0.4 above midpoint reads true after reset — expected")
	}
	h.Reset()
	if got := h.Update(-0.4); got {
		t.Error("after reset, -0.4 should read false")
	}
}
