package dsp

import "fmt"

// Barker13 is the 13-bit Barker code used as the Wi-Fi Backscatter uplink
// preamble (§6 of the paper). Barker codes have ideal aperiodic
// autocorrelation: off-peak sidelobes of magnitude at most 1.
var Barker13 = []float64{+1, +1, +1, +1, +1, -1, -1, +1, +1, -1, +1, -1, +1}

// Barker returns the Barker code of the given length as ±1 levels.
// Valid lengths are 2, 3, 4, 5, 7, 11, and 13.
func Barker(n int) ([]float64, error) {
	codes := map[int][]float64{
		2:  {+1, -1},
		3:  {+1, +1, -1},
		4:  {+1, +1, -1, +1},
		5:  {+1, +1, +1, -1, +1},
		7:  {+1, +1, +1, -1, -1, +1, -1},
		11: {+1, +1, +1, -1, -1, -1, +1, -1, -1, +1, -1},
		13: Barker13,
	}
	c, ok := codes[n]
	if !ok {
		return nil, fmt.Errorf("dsp: no Barker code of length %d", n)
	}
	return append([]float64(nil), c...), nil
}

// BarkerBits returns the 13-bit Barker preamble as a bit slice
// (+1 -> true, -1 -> false), the form the tag modulator transmits.
func BarkerBits() []bool {
	bits := make([]bool, len(Barker13))
	for i, v := range Barker13 {
		bits[i] = v > 0
	}
	return bits
}

// WalshPair returns two orthogonal ±1 codes of length n, used by the
// long-range uplink (§3.4) to represent the one and zero bits. n must be a
// positive even number. code0 alternates every chip; code1 is code0 with
// its second half negated. The pair has exactly zero dot product, and both
// codes are (nearly) DC-free, which matters because the reader's signal
// conditioning subtracts a moving average — a code with DC content would
// be removed by its own conditioning.
func WalshPair(n int) (code0, code1 []float64, err error) {
	if n <= 0 || n%2 != 0 {
		return nil, nil, fmt.Errorf("dsp: Walsh pair length must be positive and even, got %d", n)
	}
	code0 = make([]float64, n)
	code1 = make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			code0[i] = 1
		} else {
			code0[i] = -1
		}
		if i < n/2 {
			code1[i] = code0[i]
		} else {
			code1[i] = -code0[i]
		}
	}
	return code0, code1, nil
}

// DotProduct returns the inner product of equal-length vectors a and b.
// It panics if the lengths differ.
func DotProduct(a, b []float64) float64 {
	if len(a) != len(b) {
		// Programmer-error assert: callers slice both vectors from the
		// same chip layout, so a length mismatch is a bug at the call
		// site, not a condition reachable from decoded input.
		panic(fmt.Sprintf("dsp: DotProduct length mismatch %d != %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// CodeBits converts a ±1 chip code to the bit sequence the tag transmits
// for it.
func CodeBits(code []float64) []bool {
	bits := make([]bool, len(code))
	for i, v := range code {
		bits[i] = v > 0
	}
	return bits
}
