package dsp

import "math"

// Correlate computes the sliding dot product of series xs with pattern p at
// every alignment. The result has length len(xs)-len(p)+1; it is empty when
// the pattern is longer than the series or either input is empty.
func Correlate(xs, p []float64) []float64 {
	if len(p) == 0 || len(xs) < len(p) {
		return nil
	}
	out := make([]float64, len(xs)-len(p)+1)
	for i := range out {
		var sum float64
		for j, pv := range p {
			sum += xs[i+j] * pv
		}
		out[i] = sum
	}
	return out
}

// NormalizedCorrelate computes the normalized cross-correlation in [-1, 1]
// of xs with pattern p at every alignment: the dot product divided by the
// L2 norms of the window and the pattern. Windows or patterns with zero
// energy correlate to 0.
func NormalizedCorrelate(xs, p []float64) []float64 {
	if len(p) == 0 || len(xs) < len(p) {
		return nil
	}
	var pNorm float64
	for _, pv := range p {
		pNorm += pv * pv
	}
	pNorm = math.Sqrt(pNorm)
	out := make([]float64, len(xs)-len(p)+1)
	if pNorm == 0 {
		return out
	}
	// Rolling window energy via prefix sums of squares.
	prefix2 := GetSlice(len(xs) + 1)
	defer PutSlice(prefix2)
	for i, x := range xs {
		prefix2[i+1] = prefix2[i] + x*x
	}
	for i := range out {
		var dot float64
		for j, pv := range p {
			dot += xs[i+j] * pv
		}
		wNorm := math.Sqrt(prefix2[i+len(p)] - prefix2[i])
		if wNorm == 0 {
			continue
		}
		out[i] = dot / (wNorm * pNorm)
	}
	return out
}

// PeakCorrelation returns the maximum normalized correlation of xs against
// pattern p and the alignment index where it occurs. It returns (0, -1)
// when no alignment exists.
func PeakCorrelation(xs, p []float64) (peak float64, at int) {
	corr := NormalizedCorrelate(xs, p)
	if len(corr) == 0 {
		return 0, -1
	}
	at = ArgMax(corr)
	return corr[at], at
}

// BitsToLevels maps bits to the ±1 modulation levels used throughout the
// decoders: true -> +1, false -> -1.
func BitsToLevels(bits []bool) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// ExpandLevels repeats each level n times, modelling a bit observed over n
// channel measurements. n <= 0 returns an empty slice.
func ExpandLevels(levels []float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, 0, len(levels)*n)
	for _, v := range levels {
		for j := 0; j < n; j++ {
			out = append(out, v)
		}
	}
	return out
}
