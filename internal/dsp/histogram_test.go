package dsp

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(-3, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-2.5, -1.5, -0.5, 0.5, 1.5, 2.5})
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramEdges(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	h.Add(0)   // first bin
	h.Add(1)   // max value lands in last bin
	h.Add(-1)  // underflow
	h.Add(1.5) // overflow
	if h.Counts[0] != 1 {
		t.Errorf("min value should land in bin 0, counts = %v", h.Counts)
	}
	if h.Counts[3] != 1 {
		t.Errorf("max value should land in last bin, counts = %v", h.Counts)
	}
	below, above := h.Outliers()
	if below != 1 || above != 1 {
		t.Errorf("Outliers = (%d, %d), want (1, 1)", below, above)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("empty interval should error")
	}
	if _, err := NewHistogram(2, 1, 5); err == nil {
		t.Error("inverted interval should error")
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(-3, 3, 60)
	for i := 0; i < 10_000; i++ {
		h.Add(-3 + 6*float64(i)/10_000)
	}
	pdf := h.PDF()
	var integral float64
	for _, d := range pdf {
		integral += d * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("PDF integral = %v, want 1", integral)
	}
}

func TestHistogramPDFEmpty(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	for _, d := range h.PDF() {
		if d != 0 {
			t.Errorf("empty histogram PDF = %v", h.PDF())
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramModesBimodal(t *testing.T) {
	// Two clusters around -1 and +1 should produce two modes.
	h, _ := NewHistogram(-3, 3, 30)
	for i := 0; i < 1000; i++ {
		jitter := 0.2 * math.Sin(float64(i))
		h.Add(-1 + jitter)
		h.Add(1 + jitter)
	}
	modes := h.Modes(0.05)
	if len(modes) < 2 {
		t.Fatalf("bimodal histogram found %d modes, want >= 2", len(modes))
	}
	c0, c1 := h.BinCenter(modes[0]), h.BinCenter(modes[len(modes)-1])
	if math.Abs(c0+1) > 0.5 || math.Abs(c1-1) > 0.5 {
		t.Errorf("mode centers = %v, %v, want ~-1 and ~+1", c0, c1)
	}
}

func TestHistogramModesUnimodal(t *testing.T) {
	h, _ := NewHistogram(-3, 3, 30)
	for i := 0; i < 1000; i++ {
		h.Add(0.3 * math.Sin(float64(i)))
	}
	modes := h.Modes(0.05)
	for _, m := range modes {
		if math.Abs(h.BinCenter(m)) > 0.6 {
			t.Errorf("unimodal histogram found far mode at %v", h.BinCenter(m))
		}
	}
}
