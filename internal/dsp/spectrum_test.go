package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestDFTKnownTone(t *testing.T) {
	// A pure complex tone at bin 3 concentrates all energy there.
	n := 32
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = cmplx.Rect(1, 2*math.Pi*3*float64(i)/float64(n))
	}
	spec := DFT(xs)
	for k, s := range spec {
		mag := cmplx.Abs(s)
		if k == 3 {
			if math.Abs(mag-float64(n)) > 1e-9 {
				t.Errorf("bin 3 magnitude = %v, want %d", mag, n)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want 0", k, mag)
		}
	}
}

func TestDFTIDFTRoundTrip(t *testing.T) {
	xs := []complex128{1, 2i, -3, 4 - 1i, 0.5, -2i, 7, 1 + 1i}
	back := IDFT(DFT(xs))
	for i := range xs {
		if cmplx.Abs(back[i]-xs[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, back[i], xs[i])
		}
	}
}

func TestDFTParseval(t *testing.T) {
	xs := []complex128{1, -1, 2, 0.5, -0.25, 3, -2, 1i}
	var timeE float64
	for _, x := range xs {
		timeE += real(x)*real(x) + imag(x)*imag(x)
	}
	var freqE float64
	for _, s := range DFT(xs) {
		freqE += real(s)*real(s) + imag(s)*imag(s)
	}
	if math.Abs(freqE/float64(len(xs))-timeE) > 1e-9 {
		t.Errorf("Parseval violated: time %v, freq/n %v", timeE, freqE/float64(len(xs)))
	}
}

func TestPowerSpectrumFindsModulation(t *testing.T) {
	// A ±1 square wave with period 8 puts its fundamental at bin n/8.
	n := 64
	xs := make([]float64, n)
	for i := range xs {
		if (i/4)%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	spec := PowerSpectrum(xs)
	peak := ArgMax(spec[1 : n/2])
	if peak+1 != n/8 {
		t.Errorf("fundamental at bin %d, want %d", peak+1, n/8)
	}
}

func TestFrequencyCorrelationFlatChannel(t *testing.T) {
	// A frequency-flat response stays perfectly correlated at any lag.
	h := make([]complex128, 30)
	for i := range h {
		h[i] = 2 - 1i
	}
	for _, lag := range []int{1, 5, 20} {
		c, err := FrequencyCorrelation(h, lag)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c-1) > 1e-9 {
			t.Errorf("flat channel correlation at lag %d = %v, want 1", lag, c)
		}
	}
}

func TestFrequencyCorrelationErrors(t *testing.T) {
	h := make([]complex128, 4)
	if _, err := FrequencyCorrelation(h, 4); err == nil {
		t.Error("full-length lag should error")
	}
	if c, err := FrequencyCorrelation(h, 1); err != nil || c != 0 {
		t.Errorf("zero-energy response should correlate to 0, got (%v, %v)", c, err)
	}
	// Negative lags mirror positive ones.
	for i := range h {
		h[i] = complex(float64(i+1), 0)
	}
	a, _ := FrequencyCorrelation(h, 1)
	b, _ := FrequencyCorrelation(h, -1)
	if a != b {
		t.Errorf("lag sign should not matter: %v vs %v", a, b)
	}
}

func TestCoherenceBandwidthSelectiveChannel(t *testing.T) {
	// A two-tap channel h(f) = 1 + exp(-j2πfτ) decorrelates within the
	// span; a flat channel never does.
	n := 64
	sel := make([]complex128, n)
	flat := make([]complex128, n)
	for i := range sel {
		phase := -2 * math.Pi * float64(i) / 8 // delay = span/8
		sel[i] = 1 + cmplx.Rect(1, phase)
		flat[i] = 1
	}
	bSel := CoherenceBandwidthBins(sel, 0.7)
	bFlat := CoherenceBandwidthBins(flat, 0.7)
	if bSel >= n {
		t.Error("selective channel should decorrelate within the span")
	}
	if bFlat != n {
		t.Errorf("flat channel should never decorrelate, got %d", bFlat)
	}
}
