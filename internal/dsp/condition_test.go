package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMovingAverageConstantSeries(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	got := MovingAverage(xs, 3)
	for i, v := range got {
		if v != 5 {
			t.Errorf("MovingAverage of constant series at %d = %v, want 5", i, v)
		}
	}
}

func TestMovingAverageWindowOne(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("window 1 should copy input, got %v", got)
		}
	}
	// Must be a copy, not the same backing array.
	got[0] = 99
	if xs[0] == 99 {
		t.Error("MovingAverage(x, 1) aliases input")
	}
}

func TestMovingAverageCentered(t *testing.T) {
	xs := []float64{0, 0, 9, 0, 0}
	got := MovingAverage(xs, 3)
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRemoveTrendKillsSlowDrift(t *testing.T) {
	// A slow linear drift with a fast ±1 square wave on top: detrending
	// should leave approximately the square wave.
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		drift := 0.001 * float64(i)
		sq := 1.0
		if (i/4)%2 == 1 {
			sq = -1
		}
		xs[i] = 10 + drift + sq
	}
	resid := RemoveTrend(xs, 80)
	// Interior residual mean should be ~0 and magnitude ~1.
	inner := resid[50 : n-50]
	if m := Mean(inner); math.Abs(m) > 0.05 {
		t.Errorf("residual mean = %v, want ~0", m)
	}
	if ma := MeanAbs(inner); math.Abs(ma-1) > 0.1 {
		t.Errorf("residual mean abs = %v, want ~1", ma)
	}
}

func TestNormalizeMapsLevels(t *testing.T) {
	xs := []float64{0.2, -0.2, 0.2, -0.2}
	got := Normalize(xs)
	want := []float64{1, -1, 1, -1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeZeroSeries(t *testing.T) {
	got := Normalize([]float64{0, 0, 0})
	for _, v := range got {
		if v != 0 {
			t.Errorf("Normalize of zeros = %v", got)
		}
	}
}

func TestNormalizeUnitMeanAbsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e50 {
				xs = append(xs, x)
			}
		}
		out := Normalize(xs)
		if MeanAbs(xs) == 0 {
			return true
		}
		return almostEqual(MeanAbs(out), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConditionSquareWave(t *testing.T) {
	// Square wave riding on a big offset: Condition should recover ±1.
	n := 200
	xs := make([]float64, n)
	for i := range xs {
		v := 100.0
		if (i/5)%2 == 0 {
			v += 0.3
		} else {
			v -= 0.3
		}
		xs[i] = v
	}
	out := Condition(xs, 40)
	// Check interior samples are near ±1 with the right sign.
	errs := 0
	for i := 30; i < n-30; i++ {
		want := 1.0
		if (i/5)%2 == 1 {
			want = -1
		}
		if math.Signbit(out[i]) != math.Signbit(want) {
			errs++
		}
	}
	if errs > 3 {
		t.Errorf("Condition misrecovered %d interior samples", errs)
	}
}

func TestMovingAverageLengthProperty(t *testing.T) {
	f := func(xs []float64, w uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		return len(MovingAverage(xs, int(w))) == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConditionTwoPassUnbalancedRuns(t *testing.T) {
	// A payload with long same-bit runs: the plain moving average
	// crushes runs toward zero; the decision-directed pass must keep
	// them near ±1.
	n := 400
	xs := make([]float64, n)
	level := func(i int) float64 {
		// 10-sample bits; bits 12..20 are a long run of ones.
		bit := (i / 10) % 40
		if bit >= 12 && bit <= 20 {
			return 1
		}
		if bit%2 == 0 {
			return 1
		}
		return 0
	}
	for i := range xs {
		xs[i] = 10 + 0.5*level(i)
	}
	out := ConditionTwoPass(xs, 80)
	// Samples inside the long run (bits 14..18, away from edges) must
	// stay clearly positive.
	bad := 0
	for i := 145; i < 185; i++ {
		if out[i] < 0.3 {
			bad++
		}
	}
	if bad > 4 {
		t.Errorf("two-pass conditioning lost %d/40 long-run samples", bad)
	}
	// And single-pass should demonstrably struggle there (the reason the
	// two-pass exists).
	single := Condition(xs, 80)
	worse := 0
	for i := 145; i < 185; i++ {
		if single[i] < 0.3 {
			worse++
		}
	}
	if worse <= bad {
		t.Logf("single-pass run samples lost: %d, two-pass: %d", worse, bad)
	}
}

func TestConditionTwoPassZeroSeries(t *testing.T) {
	out := ConditionTwoPass([]float64{5, 5, 5, 5}, 2)
	for _, v := range out {
		if v != 0 {
			t.Errorf("constant series should condition to zeros, got %v", out)
		}
	}
}

func TestConditionTwoPassMatchesSinglePassOnBalanced(t *testing.T) {
	// For a perfectly balanced alternating signal both paths agree in
	// sign everywhere.
	n := 300
	xs := make([]float64, n)
	for i := range xs {
		v := 10.0
		if (i/5)%2 == 0 {
			v += 0.4
		}
		xs[i] = v
	}
	a := Condition(xs, 60)
	b := ConditionTwoPass(xs, 60)
	for i := 30; i < n-30; i++ {
		if (a[i] > 0) != (b[i] > 0) {
			t.Fatalf("sign disagreement at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
