package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGetSliceZeroedAndSized(t *testing.T) {
	a := GetSlice(64)
	for i := range a {
		a[i] = math.Pi
	}
	PutSlice(a)
	b := GetSlice(32) // smaller request should reuse and be zeroed
	if len(b) != 32 {
		t.Fatalf("len = %d, want 32", len(b))
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
	PutSlice(b)
	if got := GetSlice(0); len(got) != 0 {
		t.Fatalf("GetSlice(0) len = %d", len(got))
	}
}

func TestPutSliceEmptyIsSafe(t *testing.T) {
	PutSlice(nil)
	PutSlice([]float64{})
}

// TestConditionPooledMatchesReference pins the pooled implementations to a
// straightforward reference: pooling must never change numerics.
func TestConditionPooledMatchesReference(t *testing.T) {
	refMA := func(xs []float64, window int) []float64 {
		out := make([]float64, len(xs))
		if window <= 1 {
			copy(out, xs)
			return out
		}
		half := window / 2
		for i := range xs {
			lo, hi := i-half, i+half+1
			if lo < 0 {
				lo = 0
			}
			if hi > len(xs) {
				hi = len(xs)
			}
			var sum float64
			for _, x := range xs[lo:hi] {
				sum += x
			}
			out[i] = sum / float64(hi-lo)
		}
		return out
	}
	f := func(raw []float64, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp to a physical range: the prefix-sum fast path and the
		// naive reference legitimately diverge near float64 overflow,
		// which no CSI amplitude approaches. Pooling is what's under test.
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			} else {
				raw[i] = math.Mod(v, 1e6)
			}
		}
		window := int(wRaw)%(len(raw)+2) + 1
		got := MovingAverage(raw, window)
		want := refMA(raw, window)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		// Interleave pool traffic, then recheck a second call.
		tmp := GetSlice(len(raw) + 7)
		PutSlice(tmp)
		again := MovingAverage(raw, window)
		for i := range again {
			if again[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkConditionTwoPassInto(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 9)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConditionTwoPassInto(dst, xs, 40)
	}
}
