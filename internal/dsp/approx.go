package dsp

import "math"

// Tolerance helpers for floating-point comparison. The decode pipeline's
// quantities are accumulated float arithmetic (conditioned series, MRC
// weights, correlations), where exact == is almost always a latent bug;
// wblint's floatsafe analyzer steers comparisons here.

// DefaultTol is a reasonable tolerance for quantities of order one, such
// as conditioned (normalized to ±1) series values and correlations.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b agree within tol, absolutely for
// small values and relatively for large ones:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// NaNs are never equal to anything; equal infinities are equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //wblint:ignore FS001 exact match (incl. equal infinities) short-circuits before the tolerance test
		return true
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// ApproxZero reports whether x is within tol of zero.
func ApproxZero(x, tol float64) bool {
	return math.Abs(x) <= tol
}
