package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spectral utilities used to validate the channel model (coherence
// bandwidth, power-delay profile) and to characterize measurement series.
// The DFT is the textbook O(n²) transform: series here are at most a few
// thousand points, and zero dependencies beat speed.

// DFT returns the discrete Fourier transform of xs.
func DFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t, x := range xs {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

// IDFT returns the inverse transform.
func IDFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	for t := 0; t < n; t++ {
		var sum complex128
		for k, x := range xs {
			angle := 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x * cmplx.Rect(1, angle)
		}
		out[t] = sum / complex(float64(n), 0)
	}
	return out
}

// PowerSpectrum returns |DFT|² of a real series with its mean removed —
// the periodogram used to inspect modulation structure in a CSI series.
func PowerSpectrum(xs []float64) []float64 {
	m := Mean(xs)
	cx := make([]complex128, len(xs))
	for i, x := range xs {
		cx[i] = complex(x-m, 0)
	}
	spec := DFT(cx)
	out := make([]float64, len(spec))
	for i, s := range spec {
		out[i] = real(s)*real(s) + imag(s)*imag(s)
	}
	return out
}

// FrequencyCorrelation returns the normalized correlation of a frequency
// response h with a copy of itself shifted by lag bins — the frequency
// autocorrelation whose width is the coherence bandwidth. It returns an
// error when the lag leaves no overlap.
func FrequencyCorrelation(h []complex128, lag int) (float64, error) {
	if lag < 0 {
		lag = -lag
	}
	if lag >= len(h) {
		return 0, fmt.Errorf("dsp: lag %d exceeds response length %d", lag, len(h))
	}
	var num complex128
	var pa, pb float64
	for i := 0; i+lag < len(h); i++ {
		a, b := h[i], h[i+lag]
		num += a * cmplx.Conj(b)
		pa += real(a)*real(a) + imag(a)*imag(a)
		pb += real(b)*real(b) + imag(b)*imag(b)
	}
	if pa == 0 || pb == 0 {
		return 0, nil
	}
	return cmplx.Abs(num) / math.Sqrt(pa*pb), nil
}

// CoherenceBandwidthBins returns the smallest lag (in bins) at which the
// frequency autocorrelation falls below the threshold, or len(h) when it
// never does.
func CoherenceBandwidthBins(h []complex128, threshold float64) int {
	for lag := 1; lag < len(h); lag++ {
		c, err := FrequencyCorrelation(h, lag)
		if err != nil {
			break
		}
		if c < threshold {
			return lag
		}
	}
	return len(h)
}
