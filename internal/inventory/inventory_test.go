package inventory

import (
	"testing"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/wifi"
)

func TestCRC6Properties(t *testing.T) {
	// Distinct handles get (mostly) distinct CRCs, and single-bit flips
	// are always caught.
	for _, h := range []uint16{0, 1, 0xFFFF, 0xA5A5, 0x1234} {
		c := crc6(h)
		if c > 0x3F {
			t.Fatalf("crc6(%#x) = %#x exceeds 6 bits", h, c)
		}
		for bit := 0; bit < 16; bit++ {
			if crc6(h^(1<<uint(bit))) == c {
				t.Errorf("single-bit flip of %#x at %d not caught", h, bit)
			}
		}
	}
}

func TestHandleFrameRoundTrip(t *testing.T) {
	for _, h := range []uint16{0, 0xBEEF, 0x8001} {
		got, ok := parseHandle(handleFrame(h))
		if !ok || got != h {
			t.Errorf("handle round trip: got (%#x, %v), want %#x", got, ok, h)
		}
	}
}

func TestParseHandleRejectsCorruption(t *testing.T) {
	bits := handleFrame(0x1234)
	for _, flip := range []int{0, 7, 15, 16, 21} {
		bad := append([]bool(nil), bits...)
		bad[flip] = !bad[flip]
		if _, ok := parseHandle(bad); ok {
			t.Errorf("corrupted handle at bit %d accepted", flip)
		}
	}
	if _, ok := parseHandle(make([]bool, 5)); ok {
		t.Error("short payload accepted")
	}
}

func TestNewValidation(t *testing.T) {
	sys, _ := core.NewSystem(core.Config{Seed: 1})
	if _, err := New(sys, nil, nil, DefaultConfig()); err == nil {
		t.Error("no tags should error")
	}
	if _, err := New(sys, []uint64{1}, nil, DefaultConfig()); err == nil {
		t.Error("mismatched distances should error")
	}
	bad := DefaultConfig()
	bad.BitRate = 0
	if _, err := New(sys, []uint64{1}, []units.Meters{0.1}, bad); err == nil {
		t.Error("zero bit rate should error")
	}
}

// runInventory spins up a system with n tags at short range and runs the
// protocol.
func runInventory(t *testing.T, ids []uint64, seed int64) *Result {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Seed: seed, TagReaderDistance: units.Centimeters(15)})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
	}).Start()
	sys.Run(0.3)
	dists := make([]units.Meters, len(ids))
	for i := range dists {
		dists[i] = units.Centimeters(15 + 5*float64(i))
	}
	inv, err := New(sys, ids, dists, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInventorySingleTag(t *testing.T) {
	res := runInventory(t, []uint64{0xAAA111}, 2)
	if len(res.Identified) != 1 || res.Identified[0] != 0xAAA111 {
		t.Fatalf("identified = %x, want [aaa111]", res.Identified)
	}
	if res.Rounds < 1 {
		t.Error("at least one round expected")
	}
}

func TestInventoryMultipleTags(t *testing.T) {
	ids := []uint64{0x111111, 0x222222, 0x333333, 0x444444}
	res := runInventory(t, ids, 3)
	if len(res.Identified) != len(ids) {
		t.Fatalf("identified %d of %d tags (rounds %d, collisions %d, empties %d)",
			len(res.Identified), len(ids), res.Rounds, res.Collisions, res.Empties)
	}
	found := map[uint64]bool{}
	for _, id := range res.Identified {
		found[id] = true
	}
	for _, id := range ids {
		if !found[id] {
			t.Errorf("tag %x never identified", id)
		}
	}
	if res.Slots < len(ids) {
		t.Errorf("slots = %d, cannot be below the tag count", res.Slots)
	}
}

func TestInventoryCollisionsHappen(t *testing.T) {
	// Many tags in a tiny initial frame should collide at least once
	// across seeds.
	totalCollisions := 0
	for seed := int64(0); seed < 2; seed++ {
		sys, err := core.NewSystem(core.Config{Seed: 50 + seed, TagReaderDistance: units.Centimeters(15)})
		if err != nil {
			t.Fatal(err)
		}
		(&wifi.CBRSource{
			Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
		}).Start()
		sys.Run(0.3)
		ids := []uint64{1, 2, 3, 4, 5}
		dists := make([]units.Meters, len(ids))
		for i := range dists {
			dists[i] = units.Centimeters(15)
		}
		cfg := DefaultConfig()
		cfg.InitialQ = 1 // 2 slots for 5 tags: guaranteed contention
		inv, err := New(sys, ids, dists, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inv.Run()
		if err != nil {
			t.Fatal(err)
		}
		totalCollisions += res.Collisions
	}
	if totalCollisions == 0 {
		t.Error("5 tags in 2 slots should collide")
	}
}

func TestInventoryDeterministic(t *testing.T) {
	a := runInventory(t, []uint64{0xAB, 0xCD}, 7)
	b := runInventory(t, []uint64{0xAB, 0xCD}, 7)
	if a.Rounds != b.Rounds || a.Slots != b.Slots || len(a.Identified) != len(b.Identified) {
		t.Errorf("inventory not deterministic: %+v vs %+v", a, b)
	}
}
