// Package inventory implements multi-tag identification for Wi-Fi
// Backscatter. §2 of the paper notes that "in the presence of multiple
// Wi-Fi Backscatter tags in the vicinity, the interrogator can use
// protocols similar to EPC Gen-2 to identify these devices and then query
// each of them individually"; this package builds that protocol on top of
// the core system.
//
// The scheme is framed slotted ALOHA with Gen-2-style Q adaptation:
//
//  1. The reader broadcasts an INVENTORY query on the downlink carrying
//     the frame exponent Q and the uplink bit rate.
//  2. Every unidentified tag that decodes the query picks a random slot
//     in [0, 2^Q) and a random 16-bit handle, and backscatters the
//     handle (protected by a 6-bit CRC) in its slot.
//  3. The reader classifies each slot: empty (no preamble), single (CRC
//     passes — the handle is captured), or collision (preamble seen but
//     the CRC fails, because two tags' reflections superpose).
//  4. Each captured handle is acknowledged; the acknowledged tag responds
//     with its full 48-bit ID and leaves the population.
//  5. Q floats up on collisions and down on empties, and rounds repeat
//     until the population is drained or the round budget is spent.
package inventory

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/rng"
	"repro/internal/tag"
	"repro/internal/units"
)

// Config tunes the inventory round structure.
type Config struct {
	// InitialQ is the starting frame exponent (2^Q slots per round).
	InitialQ int
	// BitRate of the tags' uplink bursts, bits/second.
	BitRate float64
	// DownlinkBitDuration for reader→tag messages.
	DownlinkBitDuration float64
	// MaxRounds bounds the protocol.
	MaxRounds int
	// QStep is the Gen-2 Q-adjustment constant (typical 0.1–0.5).
	QStep float64
}

// DefaultConfig returns a configuration suitable for a handful of tags at
// short range.
func DefaultConfig() Config {
	return Config{
		InitialQ:            2,
		BitRate:             200,
		DownlinkBitDuration: 50e-6,
		MaxRounds:           8,
		QStep:               0.35,
	}
}

// handleBits is the number of payload bits in a slot burst: a 16-bit
// handle plus a 6-bit CRC.
const handleBits = 16 + 6

// Result summarizes one inventory run.
type Result struct {
	// Identified lists the captured tag IDs in discovery order.
	Identified []uint64
	// Rounds executed.
	Rounds int
	// Slots consumed in total.
	Slots int
	// Singles, Collisions, Empties classify the slots.
	Singles, Collisions, Empties int
	// Duration is the virtual time the inventory took, in seconds.
	Duration float64
}

// tagState tracks one participating tag.
type tagState struct {
	id         uint64
	idx        int // core tag index
	rnd        *rng.Stream
	identified bool
	slot       int
	handle     uint16
	heardQuery bool
}

// Inventory runs the protocol against the tags registered in the system.
type Inventory struct {
	sys  *core.System
	cfg  Config
	tags []*tagState
}

// New prepares an inventory over the given tag IDs. Tag 0 of the system is
// used for tagIDs[0]; additional tags are added to the channel at the
// given distances (one per extra ID).
func New(sys *core.System, tagIDs []uint64, distances []units.Meters, cfg Config) (*Inventory, error) {
	if len(tagIDs) == 0 {
		return nil, fmt.Errorf("inventory: no tags")
	}
	if len(distances) != len(tagIDs) {
		return nil, fmt.Errorf("inventory: %d distances for %d tags", len(distances), len(tagIDs))
	}
	if cfg.InitialQ < 0 || cfg.InitialQ > 8 {
		return nil, fmt.Errorf("inventory: InitialQ %d out of range", cfg.InitialQ)
	}
	if cfg.BitRate <= 0 || cfg.MaxRounds <= 0 {
		return nil, fmt.Errorf("inventory: invalid config %+v", cfg)
	}
	inv := &Inventory{sys: sys, cfg: cfg}
	for i, id := range tagIDs {
		idx := 0
		if i > 0 {
			var err error
			idx, err = sys.AddTag(distances[i])
			if err != nil {
				return nil, err
			}
		}
		inv.tags = append(inv.tags, &tagState{
			id:  id & ((1 << 48) - 1),
			idx: idx,
			rnd: rng.New(int64(id) ^ sys.Config().Seed ^ int64(i)<<17),
		})
	}
	sys.EnableTxLog()
	return inv, nil
}

// crc6 computes a 6-bit CRC (polynomial x⁶+x+1) over the 16 handle bits.
func crc6(handle uint16) uint8 {
	const poly = 0x43 // x^6 + x + 1 with the leading bit explicit
	crc := uint8(0x3F)
	for i := 15; i >= 0; i-- {
		bit := uint8(handle>>uint(i)) & 1
		top := (crc >> 5) & 1
		crc = (crc << 1) & 0x3F
		if top^bit == 1 {
			crc ^= poly & 0x3F
		}
	}
	return crc
}

// handleFrame builds the slot burst payload for a handle.
func handleFrame(handle uint16) []bool {
	bits := make([]bool, 0, handleBits)
	for i := 15; i >= 0; i-- {
		bits = append(bits, handle>>uint(i)&1 == 1)
	}
	crc := crc6(handle)
	for i := 5; i >= 0; i-- {
		bits = append(bits, crc>>uint(i)&1 == 1)
	}
	return bits
}

// parseHandle validates a decoded slot payload.
func parseHandle(bits []bool) (uint16, bool) {
	if len(bits) != handleBits {
		return 0, false
	}
	var handle uint16
	for _, b := range bits[:16] {
		handle <<= 1
		if b {
			handle |= 1
		}
	}
	var crc uint8
	for _, b := range bits[16:] {
		crc <<= 1
		if b {
			crc |= 1
		}
	}
	return handle, crc == crc6(handle)
}

// Run executes the inventory. Helper traffic must already be flowing so
// the reader has channel measurements to decode slots from.
func (inv *Inventory) Run() (*Result, error) {
	res := &Result{}
	startTime := inv.sys.Eng.Now()
	qfp := float64(inv.cfg.InitialQ)
	for round := 0; round < inv.cfg.MaxRounds && !inv.done(); round++ {
		res.Rounds++
		q := int(qfp + 0.5)
		if q < 0 {
			q = 0
		}
		if q > 8 {
			q = 8
		}
		nslots := 1 << uint(q)
		singles, collisions, empties, err := inv.round(res, nslots)
		if err != nil {
			return nil, err
		}
		res.Singles += singles
		res.Collisions += collisions
		res.Empties += empties
		res.Slots += nslots
		// Gen-2 Q adjustment.
		qfp += inv.cfg.QStep * float64(collisions)
		qfp -= inv.cfg.QStep * float64(empties)
		if qfp < 0 {
			qfp = 0
		}
		if qfp > 8 {
			qfp = 8
		}
	}
	res.Duration = inv.sys.Eng.Now() - startTime
	return res, nil
}

// done reports whether every tag is identified.
func (inv *Inventory) done() bool {
	for _, t := range inv.tags {
		if !t.identified {
			return false
		}
	}
	return true
}

// round runs one query + slot frame + acknowledgments.
func (inv *Inventory) round(res *Result, nslots int) (singles, collisions, empties int, err error) {
	sys := inv.sys
	// 1. Broadcast the inventory query.
	q := reader.Query{
		Command: reader.CmdInventory,
		BitRate: uint16(inv.cfg.BitRate),
		Arg:     uint8(nslots),
	}
	winStart, winDur, err := inv.sendDownlink(q.Encode())
	if err != nil {
		return 0, 0, 0, err
	}
	// 2. Every unidentified tag tries to decode the query and picks a
	// slot and handle.
	participating := 0
	for _, t := range inv.tags {
		t.heardQuery = false
		if t.identified {
			continue
		}
		wr, derr := sys.DecodeDownlinkWindow(winStart, winDur, inv.cfg.DownlinkBitDuration)
		if derr != nil || wr.Err != nil {
			continue
		}
		got := reader.DecodeQuery(wr.Message)
		if got.Command != reader.CmdInventory {
			continue
		}
		t.heardQuery = true
		t.slot = t.rnd.Intn(nslots)
		t.handle = uint16(t.rnd.Intn(1 << 16))
		participating++
	}
	// 3. The slot frame: each tag backscatters its handle in its slot.
	frameBitsPerSlot := 13 + handleBits + 13
	slotDur := float64(frameBitsPerSlot)/inv.cfg.BitRate + 0.1
	frameStart := sys.Eng.Now() + 0.05
	for _, t := range inv.tags {
		if t.identified || !t.heardQuery {
			continue
		}
		start := frameStart + float64(t.slot)*slotDur
		if _, err := sys.TransmitUplinkFrom(t.idx, tag.FrameBits(handleFrame(t.handle)), start, inv.cfg.BitRate); err != nil {
			return 0, 0, 0, err
		}
		// One modulator per tag: transmitting in a later slot replaces
		// the previous round's schedule, which has already played out.
	}
	sys.Run(frameStart + float64(nslots)*slotDur + 0.1)
	// 4. Decode each slot.
	dec, err := sys.UplinkDecoder(inv.cfg.BitRate)
	if err != nil {
		return 0, 0, 0, err
	}
	type capture struct {
		handle uint16
		slot   int
	}
	var captured []capture
	for slot := 0; slot < nslots; slot++ {
		slotStart := frameStart + float64(slot)*slotDur
		// Occupancy first, with the robust many-channel burst detector:
		// the best single channel correlates with noise too easily, and
		// misclassified empty slots would drive the Q adaptation up
		// forever.
		occupied, _, derr := dec.DetectAck(sys.Series(), slotStart)
		if derr != nil {
			return 0, 0, 0, derr
		}
		if !occupied {
			empties++
			continue
		}
		r, derr := dec.DecodeCSI(sys.Series(), slotStart, handleBits)
		if derr != nil {
			return 0, 0, 0, derr
		}
		if handle, ok := parseHandle(r.Payload); ok {
			singles++
			captured = append(captured, capture{handle: handle, slot: slot})
		} else {
			collisions++
		}
	}
	// 5. Acknowledge each captured handle; the owning tag reports its ID.
	for _, c := range captured {
		owner := inv.ownerOf(c.handle, c.slot)
		if owner == nil {
			continue // a collision that happened to pass CRC
		}
		if err := inv.acknowledge(owner, res); err != nil {
			return 0, 0, 0, err
		}
	}
	return singles, collisions, empties, nil
}

// ownerOf finds the unidentified tag that transmitted the handle in slot.
func (inv *Inventory) ownerOf(handle uint16, slot int) *tagState {
	for _, t := range inv.tags {
		if !t.identified && t.heardQuery && t.handle == handle && t.slot == slot {
			return t
		}
	}
	return nil
}

// acknowledge runs the ACK(handle) → ID exchange for one tag.
func (inv *Inventory) acknowledge(t *tagState, res *Result) error {
	sys := inv.sys
	ack := reader.Query{
		Command: reader.CmdAckHandle,
		TagID:   t.handle,
		BitRate: uint16(inv.cfg.BitRate),
	}
	winStart, winDur, err := inv.sendDownlink(ack.Encode())
	if err != nil {
		return err
	}
	wr, derr := sys.DecodeDownlinkWindow(winStart, winDur, inv.cfg.DownlinkBitDuration)
	if derr != nil || wr.Err != nil {
		return nil // tag missed the ACK; it stays unidentified this round
	}
	got := reader.DecodeQuery(wr.Message)
	if got.Command != reader.CmdAckHandle || got.TagID != t.handle {
		return nil
	}
	// The tag reports its 48-bit ID, CRC-protected and scrambled.
	idBits := tag.Scramble(downlink.NewMessage(t.id).PayloadBits())
	start := sys.Eng.Now() + 0.02
	mod, err := sys.TransmitUplinkFrom(t.idx, tag.FrameBits(idBits), start, inv.cfg.BitRate)
	if err != nil {
		return err
	}
	sys.Run(mod.End() + 0.2)
	dec, err := sys.UplinkDecoder(inv.cfg.BitRate)
	if err != nil {
		return err
	}
	r, derr2 := dec.DecodeCSI(sys.Series(), mod.Start(), downlink.PayloadBits)
	if derr2 != nil {
		return derr2
	}
	msg, perr := downlink.ParsePayload(tag.Scramble(r.Payload))
	if perr != nil || msg.Data != t.id {
		return nil // garbled ID; retry next round
	}
	t.identified = true
	res.Identified = append(res.Identified, t.id)
	return nil
}

// sendDownlink transmits one downlink message and returns its protected
// window.
func (inv *Inventory) sendDownlink(msg downlink.Message) (start, dur float64, err error) {
	sys := inv.sys
	enc, err := downlink.NewEncoder(inv.cfg.DownlinkBitDuration)
	if err != nil {
		return 0, 0, err
	}
	enc.Instrument(sys.Metrics())
	chunks := enc.Plan(msg.Bits())
	if len(chunks) != 1 {
		return 0, 0, fmt.Errorf("inventory: message needs %d reservations", len(chunks))
	}
	granted := false
	if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, s float64) {
		start = s
		granted = true
	}); err != nil {
		return 0, 0, err
	}
	sys.Run(sys.Eng.Now() + 0.5)
	if !granted {
		return 0, 0, fmt.Errorf("inventory: downlink window never granted")
	}
	return start, chunks[0].Reservation, nil
}
