package firmware

import (
	"testing"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

// sendQuery pushes one query over the downlink and returns the protected
// window.
func sendQuery(t *testing.T, sys *core.System, q reader.Query) (start, dur float64) {
	t.Helper()
	enc, err := downlink.NewEncoder(50e-6)
	if err != nil {
		t.Fatal(err)
	}
	chunks := enc.Plan(q.Encode().Bits())
	granted := false
	if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, s float64) {
		start = s
		granted = true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run(sys.Eng.Now() + 0.3)
	if !granted {
		t.Fatal("downlink window never granted")
	}
	return start, chunks[0].Reservation
}

// newFirmwareSystem builds a system with traffic and a firmware tag.
func newFirmwareSystem(t *testing.T, seed int64, cfg Config, sensor func(uint16) uint64) (*core.System, *Tag) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Seed: seed, TagReaderDistance: units.Centimeters(20)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTxLog()
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.2)
	fw, err := New(cfg, sensor)
	if err != nil {
		t.Fatal(err)
	}
	return sys, fw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, func(uint16) uint64 { return 0 }); err == nil {
		t.Error("zero bit duration should error")
	}
	if _, err := New(Config{DownlinkBitDuration: 50e-6}, nil); err == nil {
		t.Error("nil sensor should error")
	}
}

func TestFirmwareAnswersRead(t *testing.T) {
	const want = 0x00AB_CD12_3456
	sys, fw := newFirmwareSystem(t, 1, Config{
		ID: 0x77, DownlinkBitDuration: 50e-6,
	}, func(seq uint16) uint64 { return want })

	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdRead, TagID: 0x77, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatalf("firmware did not respond (stats %+v)", fw.Stats())
	}
	sys.Run(end + 0.3)
	// The reader decodes the response.
	dec, _ := sys.UplinkDecoder(100)
	res, err := dec.DecodeCSI(sys.Series(), end-float64(13+downlink.PayloadBits+13)/100.0, downlink.PayloadBits)
	if err != nil {
		t.Fatal(err)
	}
	msg, perr := downlink.ParsePayload(tag.Scramble(res.Payload))
	if perr != nil {
		t.Fatalf("response CRC failed: %v", perr)
	}
	if msg.Data != want {
		t.Errorf("reader decoded %x, want %x", msg.Data, want)
	}
	st := fw.Stats()
	if st.Responses != 1 || st.QueriesForUs != 1 || st.QueriesDecoded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFirmwareIgnoresOtherIDs(t *testing.T) {
	sys, fw := newFirmwareSystem(t, 2, Config{
		ID: 0x11, DownlinkBitDuration: 50e-6,
	}, func(uint16) uint64 { return 1 })
	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdRead, TagID: 0x22, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Error("firmware answered a query for another tag")
	}
	st := fw.Stats()
	if st.QueriesDecoded != 1 || st.QueriesForUs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFirmwareAnswersBroadcast(t *testing.T) {
	sys, fw := newFirmwareSystem(t, 3, Config{
		ID: 0x33, DownlinkBitDuration: 50e-6,
	}, func(uint16) uint64 { return 9 })
	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdIdentify, TagID: BroadcastID, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("firmware should answer a broadcast identify")
	}
}

func TestFirmwareUnknownCommandSilent(t *testing.T) {
	sys, fw := newFirmwareSystem(t, 4, Config{
		ID: 0x44, DownlinkBitDuration: 50e-6,
	}, func(uint16) uint64 { return 1 })
	start, dur := sendQuery(t, sys, reader.Query{
		Command: 200, TagID: 0x44, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Error("unknown command should stay silent")
	}
}

func TestFirmwareEnergyGating(t *testing.T) {
	// A nearly empty reservoir with no income: the decode cost alone is
	// denied.
	res := &tag.Reservoir{CapacityJoules: 10e-6}
	sys, fw := newFirmwareSystem(t, 5, Config{
		ID: 0x55, DownlinkBitDuration: 50e-6,
		Reservoir: res, Supply: 0,
	}, func(uint16) uint64 { return 1 })
	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdRead, TagID: 0x55, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Error("empty reservoir should deny the response")
	}
	if fw.Stats().EnergyDenied == 0 {
		t.Error("denial should be counted")
	}
}

func TestFirmwareEnergyRecharges(t *testing.T) {
	// With harvest income, the same tag answers once it has charged.
	res := &tag.Reservoir{CapacityJoules: 100e-6}
	sys, fw := newFirmwareSystem(t, 6, Config{
		ID: 0x66, DownlinkBitDuration: 50e-6,
		Reservoir: res, Supply: 20, // 20 µW income
	}, func(uint16) uint64 { return 2 })
	// Let it charge for two simulated seconds (≈40 µJ).
	sys.Run(sys.Eng.Now() + 2)
	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdRead, TagID: 0x66, BitRate: 100,
	})
	end, err := fw.HandleWindow(sys, start, dur)
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatalf("charged tag should respond (stats %+v, stored %v J)",
			fw.Stats(), res.Stored())
	}
}

func TestFirmwareStateTransitions(t *testing.T) {
	sys, fw := newFirmwareSystem(t, 7, Config{
		ID: 0x88, DownlinkBitDuration: 50e-6,
	}, func(uint16) uint64 { return 3 })
	if fw.State() != StateSleep {
		t.Errorf("initial state = %v, want sleep", fw.State())
	}
	start, dur := sendQuery(t, sys, reader.Query{
		Command: reader.CmdRead, TagID: 0x88, BitRate: 100,
	})
	if _, err := fw.HandleWindow(sys, start, dur); err != nil {
		t.Fatal(err)
	}
	if fw.State() != StateSleep {
		t.Errorf("state after handling = %v, want sleep", fw.State())
	}
	for s, want := range map[State]string{
		StateSleep: "sleep", StateDecoding: "decoding", StateResponding: "responding",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", s, s.String())
		}
	}
}

func TestFirmwareSequenceIncrements(t *testing.T) {
	var seqs []uint16
	sys, fw := newFirmwareSystem(t, 8, Config{
		ID: 0x99, DownlinkBitDuration: 50e-6,
	}, func(seq uint16) uint64 { seqs = append(seqs, seq); return uint64(seq) })
	for i := 0; i < 3; i++ {
		start, dur := sendQuery(t, sys, reader.Query{
			Command: reader.CmdRead, TagID: 0x99, BitRate: 500,
		})
		end, err := fw.HandleWindow(sys, start, dur)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(end + 0.2)
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Errorf("sensor sequence = %v, want [0 1 2]", seqs)
	}
}
