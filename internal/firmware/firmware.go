// Package firmware implements the tag's microcontroller program — the
// counterpart of the paper's "MSP430G2553 running custom firmware with
// receive and transmit logic implementations" (§6). It ties together the
// pieces the lower layers provide:
//
//   - the downlink receive path (analog circuit → preamble match → mid-bit
//     sampling → CRC), via core.DecodeDownlinkWindow;
//   - query handling: command dispatch, ID filtering, and the advised
//     uplink bit rate from the query (§5);
//   - the uplink transmit path (framing, scrambling, switch modulation);
//   - energy management: every action drains the storage capacitor, which
//     recharges from the configured harvest supply; with too little
//     energy the tag stays silent (§6's duty-cycled operation).
package firmware

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/tag"
	"repro/internal/units"
)

// State is the firmware's operating mode.
type State int

// Firmware states (§4.2's two µC modes plus the response phase).
const (
	// StateSleep: the µC sleeps; only the 9 µW analog receiver runs.
	StateSleep State = iota
	// StateDecoding: a preamble matched; the µC samples mid-bit.
	StateDecoding
	// StateResponding: the switch modulates the uplink response.
	StateResponding
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateDecoding:
		return "decoding"
	case StateResponding:
		return "responding"
	}
	return "sleep"
}

// Config sets the firmware's fixed parameters.
type Config struct {
	// ID this tag answers to (0xFFFF in a query addresses all tags).
	ID uint16
	// TagIndex is the tag's index in the core system's channel.
	TagIndex int
	// DownlinkBitDuration the reader uses.
	DownlinkBitDuration float64
	// Turnaround between decoding a query and starting the response.
	Turnaround float64
	// Supply is the harvest income; zero with a nil Reservoir means
	// unconstrained energy.
	Supply units.Microwatt
	// Reservoir is the storage capacitor; nil disables energy gating.
	Reservoir *tag.Reservoir
}

// Stats counts firmware activity.
type Stats struct {
	// WindowsSeen is how many protected windows the µC examined.
	WindowsSeen int
	// QueriesDecoded passed CRC and parsing.
	QueriesDecoded int
	// QueriesForUs matched our ID (or broadcast).
	QueriesForUs int
	// Responses transmitted.
	Responses int
	// EnergyDenied counts responses skipped for lack of stored energy.
	EnergyDenied int
}

// BroadcastID addresses every tag.
const BroadcastID = 0xFFFF

// Tag is a running firmware instance.
type Tag struct {
	cfg Config
	// ReadSensor supplies the 48-bit payload for CmdRead; seq increments
	// per response.
	ReadSensor func(seq uint16) uint64

	state    State
	seq      uint16
	lastTime float64
	stats    Stats
}

// New validates the config and returns a firmware instance.
func New(cfg Config, readSensor func(seq uint16) uint64) (*Tag, error) {
	if cfg.DownlinkBitDuration <= 0 {
		return nil, fmt.Errorf("firmware: downlink bit duration must be positive")
	}
	if cfg.Turnaround <= 0 {
		cfg.Turnaround = 0.02
	}
	if readSensor == nil {
		return nil, fmt.Errorf("firmware: a sensor function is required")
	}
	return &Tag{cfg: cfg, ReadSensor: readSensor}, nil
}

// State returns the current mode.
func (t *Tag) State() State { return t.state }

// Stats returns a copy of the counters.
func (t *Tag) Stats() Stats { return t.stats }

// decodeEnergyMicrojoules is the cost of waking through one downlink
// message: ~4 ms of µC activity at a few hundred µW.
const decodeEnergyMicrojoules = 1.2

// charge accrues harvested energy since the last event.
func (t *Tag) charge(now float64) {
	if t.cfg.Reservoir == nil {
		return
	}
	if now > t.lastTime {
		t.cfg.Reservoir.Charge(t.cfg.Supply, now-t.lastTime)
		t.lastTime = now
	}
}

// spend drains energy if a reservoir is configured; it reports whether the
// budget allowed the action. The check precedes the draw: a denied action
// must not bleed the capacitor, or a tag whose income sits just under the
// action cost would never accumulate enough to act at all.
func (t *Tag) spend(microjoules float64) bool {
	if t.cfg.Reservoir == nil {
		return true
	}
	if t.cfg.Reservoir.Stored() < microjoules*1e-6 {
		return false
	}
	// Draw expects power and time; express the energy as 1 s at E µW.
	return t.cfg.Reservoir.Draw(microjoules, 1)
}

// HandleWindow runs the firmware over one protected downlink window. If a
// query addressed to this tag decodes and the energy budget allows, the
// response is armed on the system's channel and the method returns the
// modulator's end time (0 when no response was sent).
func (t *Tag) HandleWindow(sys *core.System, start, dur float64) (responseEnd float64, err error) {
	t.stats.WindowsSeen++
	now := sys.Eng.Now()
	t.charge(now)
	t.state = StateDecoding
	defer func() { t.state = StateSleep }()
	if !t.spend(decodeEnergyMicrojoules) {
		t.stats.EnergyDenied++
		return 0, nil
	}
	wr, derr := sys.DecodeDownlinkWindow(start, dur, t.cfg.DownlinkBitDuration)
	if derr != nil || wr.Err != nil {
		return 0, nil // missed or garbled: stay silent
	}
	q := reader.DecodeQuery(wr.Message)
	t.stats.QueriesDecoded++
	if q.TagID != t.cfg.ID && q.TagID != BroadcastID {
		return 0, nil
	}
	t.stats.QueriesForUs++
	var payload uint64
	switch q.Command {
	case reader.CmdRead:
		payload = t.ReadSensor(t.seq)
	case reader.CmdIdentify:
		payload = uint64(t.cfg.ID)
	default:
		return 0, nil // unknown command: no response
	}
	if q.BitRate == 0 {
		return 0, nil
	}
	// Energy for the response: framing bits at the advised rate, at the
	// transmit circuit's draw.
	bits := tag.FrameBits(tag.Scramble(downlink.NewMessage(payload).PayloadBits()))
	txSeconds := float64(len(bits)) / float64(q.BitRate)
	txEnergy := txSeconds * tag.TransmitPowerMicrowatt
	if !t.spend(txEnergy) {
		t.stats.EnergyDenied++
		return 0, nil
	}
	t.state = StateResponding
	t.seq++
	mod, merr := sys.TransmitUplinkFrom(t.cfg.TagIndex, bits, now+t.cfg.Turnaround, float64(q.BitRate))
	if merr != nil {
		return 0, merr
	}
	t.stats.Responses++
	return mod.End(), nil
}
