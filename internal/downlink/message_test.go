package downlink

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/tag"
)

func TestMessageRoundTrip(t *testing.T) {
	m := NewMessage(0xABCDEF123456)
	payload := m.PayloadBits()
	if len(payload) != PayloadBits {
		t.Fatalf("payload bits = %d, want %d", len(payload), PayloadBits)
	}
	got, err := ParsePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != m.Data {
		t.Errorf("round trip: got %x, want %x", got.Data, m.Data)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(data uint64) bool {
		m := NewMessage(data)
		got, err := ParsePayload(m.PayloadBits())
		return err == nil && got.Data == data&((1<<DataBits)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageMasksTo48Bits(t *testing.T) {
	m := NewMessage(0xFFFFFFFFFFFFFFFF)
	if m.Data != (1<<DataBits)-1 {
		t.Errorf("data = %x, want 48 set bits", m.Data)
	}
}

func TestParsePayloadDetectsCorruption(t *testing.T) {
	m := NewMessage(0x123456789ABC)
	payload := m.PayloadBits()
	for _, flip := range []int{0, 17, 47, 48, 63} {
		bad := append([]bool(nil), payload...)
		bad[flip] = !bad[flip]
		if _, err := ParsePayload(bad); !errors.Is(err, ErrBadCRC) {
			t.Errorf("single-bit flip at %d not caught: %v", flip, err)
		}
	}
}

func TestParsePayloadLength(t *testing.T) {
	if _, err := ParsePayload(make([]bool, 10)); !errors.Is(err, ErrBadLength) {
		t.Errorf("short payload error = %v, want ErrBadLength", err)
	}
}

func TestBitsIncludesPreamble(t *testing.T) {
	m := NewMessage(42)
	bits := m.Bits()
	if len(bits) != TotalBits {
		t.Fatalf("total bits = %d, want %d", len(bits), TotalBits)
	}
	for i, b := range tag.DownlinkPreamble {
		if bits[i] != b {
			t.Fatalf("preamble bit %d mismatch", i)
		}
	}
}

func TestCRCDistinguishesMessages(t *testing.T) {
	if crc16(1) == crc16(2) {
		t.Error("CRC collision on trivially different data")
	}
	if crc16(0) == crc16(1<<47) {
		t.Error("CRC should cover the high data bits")
	}
}

func TestMessageTimingClaim(t *testing.T) {
	// §4.1: an 80-bit message at 50 µs/bit takes 4.0 ms.
	if d := float64(TotalBits) * 50e-6; d != 0.004 {
		t.Errorf("message airtime = %v, want 0.004", d)
	}
}
