// Package downlink implements the reader→tag channel (§4): a message
// format of 16 preamble bits plus a 64-bit payload (48 data bits and a
// 16-bit CRC), and the encoder that maps bits onto the presence (1) or
// absence (0) of short Wi-Fi packets inside CTS_to_SELF reservations.
package downlink

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tag"
)

// Message layout constants (§4.1: "the Wi-Fi reader can transmit a 64-bit
// payload message with a 16-bit preamble in 4.0 ms").
const (
	// DataBits is the number of application data bits per message.
	DataBits = 48
	// CRCBits is the checksum width.
	CRCBits = 16
	// PayloadBits is the protected payload: data + CRC.
	PayloadBits = DataBits + CRCBits
	// TotalBits includes the preamble.
	TotalBits = 16 + PayloadBits
)

// Message is one downlink message: 48 bits of application data.
type Message struct {
	// Data holds the 48 data bits in the low bits (bit 47 transmitted
	// first).
	Data uint64
}

// ErrBadCRC is returned when a decoded message fails its checksum.
var ErrBadCRC = errors.New("downlink: CRC mismatch")

// ErrBadLength is returned when a bit slice has the wrong length.
var ErrBadLength = errors.New("downlink: wrong payload bit count")

// crc16 computes the CCITT CRC-16 over the 6 data bytes.
func crc16(data uint64) uint16 {
	var buf [6]byte
	buf[0] = byte(data >> 40)
	buf[1] = byte(data >> 32)
	binary.BigEndian.PutUint32(buf[2:], uint32(data))
	var crc uint16 = 0xffff
	for _, b := range buf {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// NewMessage builds a message, masking data to 48 bits.
func NewMessage(data uint64) Message {
	return Message{Data: data & ((1 << DataBits) - 1)}
}

// PayloadBits returns the 64 protected bits: data (MSB first) followed by
// the CRC.
func (m Message) PayloadBits() []bool {
	bits := make([]bool, 0, PayloadBits)
	for i := DataBits - 1; i >= 0; i-- {
		bits = append(bits, m.Data>>uint(i)&1 == 1)
	}
	crc := crc16(m.Data)
	for i := CRCBits - 1; i >= 0; i-- {
		bits = append(bits, crc>>uint(i)&1 == 1)
	}
	return bits
}

// Bits returns the full on-air bit sequence: preamble + payload + CRC.
func (m Message) Bits() []bool {
	return append(append([]bool(nil), tag.DownlinkPreamble...), m.PayloadBits()...)
}

// ParsePayload validates a decoded 64-bit payload (data+CRC) and returns
// the message. It returns ErrBadLength for a wrong bit count and ErrBadCRC
// when the checksum fails.
func ParsePayload(bits []bool) (Message, error) {
	if len(bits) != PayloadBits {
		return Message{}, fmt.Errorf("%w: got %d, want %d", ErrBadLength, len(bits), PayloadBits)
	}
	var data uint64
	for _, b := range bits[:DataBits] {
		data <<= 1
		if b {
			data |= 1
		}
	}
	var crc uint16
	for _, b := range bits[DataBits:] {
		crc <<= 1
		if b {
			crc |= 1
		}
	}
	if crc != crc16(data) {
		return Message{}, ErrBadCRC
	}
	return Message{Data: data}, nil
}
