package downlink

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/wifi"
)

// Encoder plans the on-air schedule of a downlink message: a ‘1’ bit is a
// short Wi-Fi packet, a ‘0’ bit is a silence of equal duration (Fig. 7),
// all inside a CTS_to_SELF reservation so other Wi-Fi devices stay quiet
// during the silences. Messages longer than one 32 ms reservation are split
// across several (§4.1: "We can transmit more bits by splitting them
// across multiple CTS_to_SELF packets").
type Encoder struct {
	// BitDuration is the packet/silence slot length in seconds. 50 µs
	// yields 20 kbps; 100 µs, 10 kbps; 200 µs, 5 kbps.
	BitDuration float64
	// Rate of the marker packets (54 Mbps for the shortest airtime).
	Rate wifi.Rate
	// Guard is the lead time inside the reservation before the first
	// bit slot.
	Guard float64
	// OnError, when non-nil, receives failures that occur inside the
	// event-driven send schedule, where Send's error return has already
	// been consumed: the chunk index and the scheduling error. The send
	// is aborted (no further markers or chunks) either way.
	OnError func(chunk int, err error)
	// Impair, when non-nil, suppresses individual marker frames (query
	// corruption; core wires the fault injector here). A suppressed
	// marker leaves its bit slot silent, flipping that downlink bit at
	// the tag.
	Impair MarkerImpairment

	met encoderMetrics
}

// MarkerImpairment lets a fault layer suppress marker packets (see
// internal/faults). MarkerLost is asked once per planned marker with the
// chunk index and the marker's absolute on-air time; returning true drops
// it. Implementations must be deterministic and must draw only from their
// own randomness stream.
type MarkerImpairment interface {
	MarkerLost(chunk int, at float64) bool
}

// encoderMetrics holds the encoder's obs handles; the zero value means
// "not instrumented" (nil handles no-op).
type encoderMetrics struct {
	chunksPlanned     *obs.Counter
	chunksSent        *obs.Counter
	markersSent       *obs.Counter
	markersSuppressed *obs.Counter
	navGrants         *obs.Counter
	navErrors         *obs.Counter
	sendsAborted      *obs.Counter
	window            *obs.Timer
}

// Instrument registers the encoder's downlink accounting on r
// (downlink.* in the README's metric catalog): chunks planned and sent,
// marker packets placed, NAV grants consumed, mid-send scheduling errors
// and the resulting aborts, and the reservation-length distribution. A
// nil registry detaches the metrics.
func (e *Encoder) Instrument(r *obs.Registry) {
	e.met = encoderMetrics{
		chunksPlanned:     r.Counter("downlink.chunks_planned"),
		chunksSent:        r.Counter("downlink.chunks_sent"),
		markersSent:       r.Counter("downlink.markers_sent"),
		markersSuppressed: r.Counter("downlink.markers_suppressed"),
		navGrants:         r.Counter("downlink.nav_grants"),
		navErrors:         r.Counter("downlink.nav_errors"),
		sendsAborted:      r.Counter("downlink.sends_aborted"),
		window:            r.Timer("downlink.window_s"),
	}
}

// NewEncoder validates the bit duration against the shortest transmittable
// packet: the slot must fit a minimal frame at the chosen rate.
func NewEncoder(bitDuration float64) (*Encoder, error) {
	e := &Encoder{BitDuration: bitDuration, Rate: wifi.Rate54, Guard: 100e-6}
	if bitDuration <= 0 {
		return nil, fmt.Errorf("downlink: bit duration must be positive, got %v", bitDuration)
	}
	minimal := &wifi.Frame{Header: wifi.Header{Type: wifi.TypeQoSNull, Addr1: wifi.BroadcastMAC}}
	if air := wifi.AirTime(minimal.Length(), e.Rate); air > bitDuration {
		return nil, fmt.Errorf("downlink: bit duration %v below minimum packet airtime %v",
			bitDuration, air)
	}
	return e, nil
}

// markerFrame returns the frame used as the ‘1’ marker, padded so its
// airtime fills the bit slot: the tag's energy detector must see presence
// for the whole bit period, and consecutive ‘1’ markers then look like one
// long packet ("longer packets can be intuitively thought of as multiple
// small packets sent back-to-back", §4.2).
func (e *Encoder) markerFrame() *wifi.Frame {
	f := &wifi.Frame{Header: wifi.Header{Type: wifi.TypeQoSNull, Addr1: wifi.BroadcastMAC}}
	// Grow the payload until adding one more symbol's worth of bytes
	// would overshoot the slot.
	bytesPerSymbol := e.Rate.BitsPerSymbol() / 8
	for wifi.AirTime(f.Length()+bytesPerSymbol, e.Rate) <= e.BitDuration {
		f.Payload = append(f.Payload, make([]byte, bytesPerSymbol)...)
	}
	return f
}

// BitRate returns the effective downlink bit rate in bits/second.
func (e *Encoder) BitRate() float64 { return 1 / e.BitDuration }

// Chunk is one CTS_to_SELF reservation's worth of bits.
type Chunk struct {
	// Bits carried in this reservation.
	Bits []bool
	// Reservation is the NAV duration needed (guard + bits).
	Reservation float64
	// PacketOffsets are the start times of marker packets relative to
	// the start of the protected window (one per ‘1’ bit).
	PacketOffsets []float64
}

// Plan splits a bit sequence into reservation-sized chunks with marker
// packet schedules.
func (e *Encoder) Plan(bits []bool) []Chunk {
	if len(bits) == 0 {
		return nil
	}
	perChunk := int((wifi.MaxNAV - e.Guard) / e.BitDuration)
	if perChunk < 1 {
		perChunk = 1
	}
	var chunks []Chunk
	for start := 0; start < len(bits); start += perChunk {
		end := start + perChunk
		if end > len(bits) {
			end = len(bits)
		}
		part := bits[start:end]
		c := Chunk{
			Bits:        append([]bool(nil), part...),
			Reservation: e.Guard + float64(len(part))*e.BitDuration,
		}
		for i, b := range part {
			if b {
				c.PacketOffsets = append(c.PacketOffsets, e.Guard+float64(i)*e.BitDuration)
			}
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// AirTimeTotal returns the total reserved airtime for a message's chunks —
// 4.0 ms for the 80-bit message at 50 µs bits plus guard (§4.1).
func AirTimeTotal(chunks []Chunk) float64 {
	var sum float64
	for _, c := range chunks {
		sum += c.Reservation
	}
	return sum
}

// Send transmits the chunks through the medium from the given station:
// each chunk enqueues a CTS_to_SELF and, once the NAV is granted, places
// the marker packets at their offsets. onDone is invoked with the protected
// window's absolute start time of each chunk as it is granted.
func (e *Encoder) Send(m *wifi.Medium, st *wifi.Station, chunks []Chunk, onWindow func(chunk int, start float64)) error {
	if len(chunks) == 0 {
		return fmt.Errorf("downlink: nothing to send")
	}
	e.met.chunksPlanned.Add(int64(len(chunks)))
	var sendChunk func(i int)
	sendChunk = func(i int) {
		c := chunks[i]
		st.OnNAVGranted = func(start, navEnd float64) {
			st.OnNAVGranted = nil
			e.met.navGrants.Inc()
			for _, off := range c.PacketOffsets {
				if e.Impair != nil && e.Impair.MarkerLost(i, start+off) {
					e.met.markersSuppressed.Inc()
					continue
				}
				if err := m.TransmitInNAV(st, e.markerFrame(), e.Rate, start+off); err != nil {
					// The closure runs long after Send returned, so the
					// error cannot use Send's return path: record it,
					// hand it to OnError, and abort the remaining
					// markers and chunks rather than panicking inside
					// the event loop.
					e.met.navErrors.Inc()
					e.met.sendsAborted.Inc()
					if e.OnError != nil {
						e.OnError(i, fmt.Errorf("downlink: NAV transmit: %w", err))
					}
					return
				}
				e.met.markersSent.Inc()
			}
			e.met.chunksSent.Inc()
			e.met.window.Observe(c.Reservation)
			if onWindow != nil {
				onWindow(i, start)
			}
			if i+1 < len(chunks) {
				// Queue the next chunk after this window ends.
				m.Engine().ScheduleAt(navEnd, func() { sendChunk(i + 1) })
			}
		}
		st.Enqueue(wifi.NewCTSToSelf(st.Addr, c.Reservation))
	}
	sendChunk(0)
	return nil
}
