package downlink

// Fuzz targets for the downlink message framing. ParsePayload is the
// boundary where bits demodulated off the air re-enter typed code, so it
// must hold its contract — exact length, valid CRC, or a typed error —
// for every possible bit string, including truncated frames.

import (
	"errors"
	"testing"
)

// bitsFromBytes maps one byte per bit (odd = 1), so the fuzzer controls
// both the bit pattern and — via input length — the frame truncation.
func bitsFromBytes(raw []byte) []bool {
	bits := make([]bool, len(raw))
	for i, b := range raw {
		bits[i] = b&1 == 1
	}
	return bits
}

func bytesFromBits(bits []bool) []byte {
	raw := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			raw[i] = 1
		}
	}
	return raw
}

func FuzzParsePayload(f *testing.F) {
	// Seeds: a valid frame (the message_test vector), the empty frame, an
	// all-zero frame of the right length, and a truncated valid frame.
	good := NewMessage(0xDEADBEEF0BAD).PayloadBits()
	f.Add(bytesFromBits(good))
	f.Add([]byte{})
	f.Add(make([]byte, PayloadBits))
	f.Add(bytesFromBits(good[:PayloadBits/2]))
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := bitsFromBytes(raw)
		m, err := ParsePayload(bits)
		if len(bits) != PayloadBits {
			if !errors.Is(err, ErrBadLength) {
				t.Fatalf("length %d: err = %v, want ErrBadLength", len(bits), err)
			}
			return
		}
		if err != nil {
			if !errors.Is(err, ErrBadCRC) {
				t.Fatalf("exact-length payload: err = %v, want nil or ErrBadCRC", err)
			}
			return
		}
		// An accepted payload must re-encode to the identical bit string.
		round := m.PayloadBits()
		for i := range bits {
			if round[i] != bits[i] {
				t.Fatalf("accepted payload re-encodes differently at bit %d", i)
			}
		}
	})
}

func FuzzMessageRoundTrip(f *testing.F) {
	f.Add(uint64(0), 0)
	f.Add(uint64(0xDEADBEEF0BAD), 17)
	f.Add(^uint64(0), PayloadBits-1)
	f.Fuzz(func(t *testing.T, data uint64, flip int) {
		m := NewMessage(data)
		bits := m.PayloadBits()
		got, err := ParsePayload(bits)
		if err != nil {
			t.Fatalf("round trip of %#x failed: %v", m.Data, err)
		}
		if got.Data != m.Data {
			t.Fatalf("round trip of %#x returned %#x", m.Data, got.Data)
		}
		// The CRC polynomial guarantees every single-bit error is caught.
		i := ((flip % PayloadBits) + PayloadBits) % PayloadBits
		bits[i] = !bits[i]
		if _, err := ParsePayload(bits); err == nil {
			t.Errorf("single-bit corruption at %d went undetected", i)
		}
	})
}
