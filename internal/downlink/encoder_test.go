package downlink

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wifi"
)

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0); err == nil {
		t.Error("zero bit duration should error")
	}
	// 10 µs is below the minimal packet airtime at 54 Mbps.
	if _, err := NewEncoder(10e-6); err == nil {
		t.Error("bit duration below packet airtime should error")
	}
	for _, d := range []float64{50e-6, 100e-6, 200e-6} {
		if _, err := NewEncoder(d); err != nil {
			t.Errorf("NewEncoder(%v): %v", d, err)
		}
	}
}

func TestEncoderBitRates(t *testing.T) {
	for _, c := range []struct {
		dur  float64
		rate float64
	}{{50e-6, 20000}, {100e-6, 10000}, {200e-6, 5000}} {
		e, err := NewEncoder(c.dur)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.BitRate(); math.Abs(got-c.rate) > 1e-6 {
			t.Errorf("BitRate(%v) = %v, want %v", c.dur, got, c.rate)
		}
	}
}

func TestPlanSingleChunk(t *testing.T) {
	e, _ := NewEncoder(50e-6)
	msg := NewMessage(0xDEADBEEF)
	chunks := e.Plan(msg.Bits())
	if len(chunks) != 1 {
		t.Fatalf("80-bit message should fit one reservation, got %d chunks", len(chunks))
	}
	c := chunks[0]
	if len(c.Bits) != TotalBits {
		t.Errorf("chunk bits = %d, want %d", len(c.Bits), TotalBits)
	}
	// §4.1: 80 bits at 50 µs ≈ 4.0 ms (+guard).
	if c.Reservation < 0.004 || c.Reservation > 0.0045 {
		t.Errorf("reservation = %v, want ~4.0-4.5 ms", c.Reservation)
	}
	ones := 0
	for _, b := range c.Bits {
		if b {
			ones++
		}
	}
	if len(c.PacketOffsets) != ones {
		t.Errorf("packet offsets = %d, want one per set bit (%d)", len(c.PacketOffsets), ones)
	}
	// Offsets must be on the bit grid.
	for _, off := range c.PacketOffsets {
		slot := (off - e.Guard) / e.BitDuration
		if math.Abs(slot-math.Round(slot)) > 1e-9 {
			t.Errorf("offset %v not on bit grid", off)
		}
	}
}

func TestPlanSplitsLongMessages(t *testing.T) {
	e, _ := NewEncoder(200e-6)
	// 32 ms at 200 µs/bit fits ~159 bits; 400 bits need 3 chunks.
	bits := make([]bool, 400)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	chunks := e.Plan(bits)
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Bits)
		if c.Reservation > wifi.MaxNAV+1e-12 {
			t.Errorf("reservation %v exceeds the 32 ms NAV limit", c.Reservation)
		}
	}
	if total != 400 {
		t.Errorf("chunks carry %d bits, want 400", total)
	}
}

func TestPlanEmpty(t *testing.T) {
	e, _ := NewEncoder(50e-6)
	if got := e.Plan(nil); got != nil {
		t.Errorf("empty plan = %v, want nil", got)
	}
}

func TestAirTimeTotal(t *testing.T) {
	e, _ := NewEncoder(50e-6)
	chunks := e.Plan(NewMessage(1).Bits())
	if got, want := AirTimeTotal(chunks), chunks[0].Reservation; got != want {
		t.Errorf("AirTimeTotal = %v, want %v", got, want)
	}
}

func TestSendThroughMedium(t *testing.T) {
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(1))
	reader := m.AddStation("reader", wifi.MAC{1}, wifi.Rate54)
	// A contending station should be locked out during the message.
	other := m.AddStation("other", wifi.MAC{2}, wifi.Rate54)

	e, err := NewEncoder(50e-6)
	if err != nil {
		t.Fatal(err)
	}
	msg := NewMessage(0x0000ACE0FBEEF)
	chunks := e.Plan(msg.Bits())

	var markers []*wifi.Transmission
	var windowStart float64
	m.AddListener(func(tx *wifi.Transmission) {
		if tx.Frame.Header.Type == wifi.TypeQoSNull {
			markers = append(markers, tx)
		}
	})
	if err := e.Send(m, reader, chunks, func(chunk int, start float64) {
		windowStart = start
	}); err != nil {
		t.Fatal(err)
	}
	// Competing saturated traffic.
	(&wifi.SaturatedSource{Station: other, Dst: wifi.MAC{9}, Payload: 1000}).Start()
	eng.Run(1)

	ones := 0
	for _, b := range msg.Bits() {
		if b {
			ones++
		}
	}
	if len(markers) != ones {
		t.Fatalf("saw %d marker packets, want %d", len(markers), ones)
	}
	// Each marker must sit on its slot relative to the window start.
	for _, tx := range markers {
		slot := (tx.Start - windowStart - e.Guard) / e.BitDuration
		if math.Abs(slot-math.Round(slot)) > 1e-9 {
			t.Errorf("marker at %v off the bit grid (slot %v)", tx.Start, slot)
		}
	}
	// Markers must arrive in order and inside the protected window.
	winEnd := windowStart + chunks[0].Reservation
	for i := 1; i < len(markers); i++ {
		if markers[i].Start < markers[i-1].Start {
			t.Error("markers out of order")
		}
		if markers[i].Start > winEnd {
			t.Errorf("marker at %v beyond window end %v", markers[i].Start, winEnd)
		}
	}
}

func TestSendEmpty(t *testing.T) {
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(2))
	st := m.AddStation("reader", wifi.MAC{1}, wifi.Rate54)
	e, _ := NewEncoder(50e-6)
	if err := e.Send(m, st, nil, nil); err == nil {
		t.Error("sending no chunks should error")
	}
}

func TestSendMultiChunkSequencing(t *testing.T) {
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(3))
	reader := m.AddStation("reader", wifi.MAC{1}, wifi.Rate54)
	e, _ := NewEncoder(200e-6)
	bits := make([]bool, 300)
	for i := range bits {
		bits[i] = true
	}
	chunks := e.Plan(bits)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	var windows []float64
	if err := e.Send(m, reader, chunks, func(chunk int, start float64) {
		windows = append(windows, start)
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run(2)
	if len(windows) != len(chunks) {
		t.Fatalf("granted %d windows, want %d", len(windows), len(chunks))
	}
	for i := 1; i < len(windows); i++ {
		if windows[i] <= windows[i-1] {
			t.Error("windows out of order")
		}
	}
}
