// Package sim provides the discrete-event simulation engine that drives the
// Wi-Fi Backscatter experiments: a time-ordered event queue with a virtual
// clock in seconds. Determinism is guaranteed by breaking time ties in
// scheduling order, so a run with the same seed replays identically.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/obs"
)

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	q   eventQueue
	now float64
	seq int64
	// running guards against re-entrant Run calls.
	running bool

	// Metrics handles (nil when the engine is not instrumented).
	evDispatched *obs.Counter
	queueDepth   *obs.Gauge
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Instrument registers the engine's metrics on r: sim.events_dispatched
// counts executed events and sim.queue_depth tracks the queue length with
// its high-water mark. Passing a nil registry detaches the metrics.
func (e *Engine) Instrument(r *obs.Registry) {
	e.evDispatched = r.Counter("sim.events_dispatched")
	e.queueDepth = r.Gauge("sim.queue_depth")
}

// Schedule runs fn after delay seconds of virtual time. Negative delays are
// clamped to zero (run at the current instant, after already-queued events
// at this time).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Times in the past are
// clamped to the current time.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if fn == nil {
		// Programmer-error assert: a nil event function is a bug at the
		// scheduling call site, never reachable from validated user input
		// (library constructors reject bad parameters before scheduling).
		panic("sim: ScheduleAt with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.q, &event{at: t, seq: e.seq, fn: fn})
	e.queueDepth.Set(float64(e.q.Len()))
}

// Run executes events in time order until the queue is empty or the clock
// would pass until (exclusive upper bound on event times). Events scheduled
// exactly at until do run. It returns the number of events executed.
func (e *Engine) Run(until float64) int {
	if e.running {
		// Programmer-error assert: calling Run from inside an event
		// callback would corrupt the clock; no input data reaches here.
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	n := 0
	for e.q.Len() > 0 {
		ev := e.q[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.q)
		e.now = ev.at
		ev.fn()
		n++
		e.evDispatched.Inc()
	}
	if e.now < until && e.q.Len() == 0 {
		// Queue drained: advance the clock to the horizon so
		// subsequent scheduling is relative to it.
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.q.Len() }

// String implements fmt.Stringer for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now: %.6fs, pending: %d}", e.now, e.q.Len())
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	// A heap comparator needs a strict weak ordering; a tolerance here
	// would make "equal" intransitive and corrupt the queue. Timestamps
	// are only compared for tie-breaking, never for decode decisions.
	//wblint:ignore FS001 strict weak ordering requires exact comparison; ties fall through to seq
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
