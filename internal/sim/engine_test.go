package sim

import (
	"testing"
)

func TestRunInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(0.3, func() { order = append(order, 3) })
	e.Schedule(0.1, func() { order = append(order, 1) })
	e.Schedule(0.2, func() { order = append(order, 2) })
	if n := e.Run(1); n != 3 {
		t.Fatalf("executed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(0.5, func() { order = append(order, i) })
	}
	e.Run(1)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	var at float64
	e.Schedule(2.5, func() { at = e.Now() })
	e.Run(10)
	if at != 2.5 {
		t.Errorf("event ran at %v, want 2.5", at)
	}
	if e.Now() != 10 {
		t.Errorf("drained engine clock = %v, want horizon 10", e.Now())
	}
}

func TestRunHorizonExclusive(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(5, func() { ran++ })
	if n := e.Run(3); n != 1 {
		t.Fatalf("Run(3) executed %d, want 1", n)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// The late event still runs on a later horizon.
	e.Run(10)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(3, func() { ran = true })
	e.Run(3)
	if !ran {
		t.Error("event exactly at horizon should run")
	}
}

func TestCascadingEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(0.01, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(2)
	if count != 100 {
		t.Errorf("cascade count = %d, want 100", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {
		e.Schedule(-5, func() {
			if e.Now() != 1 {
				t.Errorf("negative delay ran at %v, want 1", e.Now())
			}
		})
	})
	e.Run(2)
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {
		e.ScheduleAt(0.5, func() {
			if e.Now() < 1 {
				t.Errorf("past event ran at %v, want >= 1", e.Now())
			}
		})
	})
	e.Run(2)
}

func TestNilFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil fn should panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(0.1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run should panic")
			}
		}()
		e.Run(5)
	})
	e.Run(1)
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Error("fresh engine should have no pending events")
	}
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
}

func TestStringer(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	if got := e.String(); got == "" {
		t.Error("String should not be empty")
	}
}
