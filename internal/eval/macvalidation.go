package eval

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wifi"
)

// MACValidation characterizes the CSMA/CA substrate the whole evaluation
// stands on: saturation goodput and collision fraction as contending
// stations grow. The qualitative shape is the classic DCF result —
// goodput falls slowly and the collision fraction rises with the station
// count — and the single-station figure should sit near the analytic
// per-frame cost (DIFS + mean backoff + data airtime + SIFS + ACK).
func MACValidation(seconds float64, seed int64) (*Table, error) {
	if seconds <= 0 {
		seconds = 5
	}
	t := &Table{
		Title: "Substrate validation: 802.11 DCF saturation behaviour",
		Note: "one station should match the analytic per-frame cost; more " +
			"stations trade goodput for collisions (classic DCF shape)",
		Columns: []string{"stations", "goodput", "frames/s", "collision frac", "analytic 1-station"},
	}
	const payload = 1400
	frameLen := payload + 27 // header+FCS
	perFrame := wifi.DIFS + float64(wifi.CWMin)/2*wifi.SlotTime +
		wifi.AirTime(frameLen, wifi.Rate54) + wifi.AckAirTime()
	theory := 1 / perFrame
	for _, n := range []int{1, 2, 4, 8, 16} {
		eng := sim.NewEngine()
		m := wifi.NewMedium(eng, rng.New(seed+int64(n)))
		stations := make([]*wifi.Station, n)
		for i := 0; i < n; i++ {
			stations[i] = m.AddStation(fmt.Sprintf("s%d", i), wifi.MAC{byte(i + 1)}, wifi.Rate54)
			(&wifi.SaturatedSource{Station: stations[i], Dst: wifi.MAC{99}, Payload: payload}).Start()
		}
		eng.Run(seconds)
		var delivered, sent, collided, bytes int
		for _, st := range stations {
			delivered += st.DeliveredFrames
			sent += st.SentFrames
			collided += st.CollidedFrames
			bytes += st.DeliveredBytes
		}
		analytic := "-"
		if n == 1 {
			analytic = fmt.Sprintf("%.0f frames/s", theory)
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f MB/s", float64(bytes)/seconds/1e6),
			fmt.Sprintf("%.0f", float64(delivered)/seconds),
			fmt.Sprintf("%.3f", float64(collided)/float64(sent)),
			analytic)
	}
	return t, nil
}
