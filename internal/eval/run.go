package eval

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/units"
)

// Suite runs every experiment in the paper's evaluation and prints the
// tables.
type Suite struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks every experiment for smoke runs (~seconds instead of
	// minutes).
	Quick bool
	// Workers bounds the goroutines evaluating independent trials within
	// each experiment. 0 uses GOMAXPROCS; 1 forces serial execution.
	// Tables are bit-identical for every value.
	Workers int
	// Progress, when non-nil, receives a line as each experiment starts.
	Progress io.Writer
	// Metrics, when non-nil, accumulates pipeline metrics from the
	// instrumented experiments. Snapshots merge in trial-index order on
	// the suite's goroutine, so the aggregate is bit-identical for every
	// Workers value.
	Metrics *obs.Registry
	// Faults, when non-nil, injects the fault schedule into every trial
	// system (wbbench -faults; see internal/faults).
	Faults *faults.Schedule
}

// options returns the trial options for the suite's scale.
func (s Suite) options() Options {
	if s.Quick {
		return Options{Seed: s.Seed, Trials: 2, PayloadLen: 45, Workers: s.Workers, Obs: s.Metrics, Faults: s.Faults}
	}
	return Options{Seed: s.Seed, Trials: 20, PayloadLen: 90, Workers: s.Workers, Obs: s.Metrics, Faults: s.Faults}
}

// Experiment names one runnable experiment.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// Experiments returns the full list in paper order.
func (s Suite) Experiments() []Experiment {
	opt := s.options()
	tracePackets, pdfPackets := 3000, 42000
	fig17Bits := 200_000
	fpHours := 1.0
	fig19Seconds := 120.0
	fig20Opt := opt
	fig20Opt.Trials = (opt.Trials + 1) / 2
	if s.Quick {
		pdfPackets = 6000
		fig17Bits = 3000
		fpHours = 0.02
		fig19Seconds = 10
	}
	return []Experiment{
		{"fig3", "raw CSI trace at 5 cm", func() (*Table, error) {
			_, t, err := RawCSITrace(units.Centimeters(5), tracePackets, s.Seed)
			return t, err
		}},
		{"fig4", "PDF of normalized channel values", func() (*Table, error) {
			return NormalizedPDF(pdfPackets, s.Seed)
		}},
		{"fig5", "good sub-channels vs distance", func() (*Table, error) {
			return GoodSubchannels(opt)
		}},
		{"fig6", "raw CSI trace at 1 m", func() (*Table, error) {
			_, t, err := RawCSITrace(units.Meters(1), tracePackets, s.Seed+1)
			return t, err
		}},
		{"fig10a", "uplink BER vs distance (CSI)", func() (*Table, error) {
			return UplinkBERvsDistance(core.DecodeCSI, opt)
		}},
		{"fig10b", "uplink BER vs distance (RSSI)", func() (*Table, error) {
			return UplinkBERvsDistance(core.DecodeRSSI, opt)
		}},
		{"fig11", "frequency diversity ablation", func() (*Table, error) {
			return FrequencyDiversity(opt)
		}},
		{"fig12", "rate vs helper transmission rate", func() (*Table, error) {
			return RateVsHelperRate(opt)
		}},
		{"fig14", "helper locations", func() (*Table, error) {
			return HelperLocations(opt)
		}},
		{"fig15", "ambient traffic across the day", func() (*Table, error) {
			return AmbientTraffic(opt)
		}},
		{"fig16", "beacon-only operation", func() (*Table, error) {
			return BeaconOnly(opt)
		}},
		{"fig17", "downlink BER vs distance", func() (*Table, error) {
			return DownlinkBERObs(fig17Bits, s.Seed, s.Workers, s.Metrics)
		}},
		{"fig18", "downlink false positives", func() (*Table, error) {
			return FalsePositives(fpHours, s.Seed, s.Workers)
		}},
		{"fig19a", "Wi-Fi impact, tag at 5 cm", func() (*Table, error) {
			return WiFiImpact(units.Centimeters(5), fig19Seconds, s.Seed, s.Workers)
		}},
		{"fig19b", "Wi-Fi impact, tag at 30 cm", func() (*Table, error) {
			return WiFiImpact(units.Centimeters(30), fig19Seconds, s.Seed, s.Workers)
		}},
		{"fig20", "correlation length vs distance", func() (*Table, error) {
			return CorrelationRange(fig20Opt)
		}},
		{"power", "tag power budget (§6)", func() (*Table, error) {
			return PowerBudget(), nil
		}},
		{"abl-combine", "ablation: combining rule", func() (*Table, error) {
			return CombiningAblation(opt)
		}},
		{"abl-decide", "ablation: decision rule", func() (*Table, error) {
			return DecisionAblation(opt)
		}},
		{"abl-bin", "ablation: binning under bursts", func() (*Table, error) {
			return BinningAblation(opt)
		}},
		{"abl-thresh", "ablation: downlink threshold", func() (*Table, error) {
			return ThresholdAblation(fig17Bits/4, s.Seed, s.Workers)
		}},
		{"inventory", "multi-tag inventory (§2 extension)", func() (*Table, error) {
			return MultiTagInventory(opt)
		}},
		{"channels", "uplink across Wi-Fi channels (§7.1 claim)", func() (*Table, error) {
			return ChannelSweep(opt)
		}},
		{"ack", "one-bit ACK bursts (§4.1 claim)", func() (*Table, error) {
			return AckDetection(opt)
		}},
		{"duty", "duty-cycled TV-harvesting sensor (§6 extension)", func() (*Table, error) {
			return DutyCycledSensor(s.Seed)
		}},
		{"mac", "802.11 DCF substrate validation", func() (*Table, error) {
			secs := 5.0
			if s.Quick {
				secs = 1
			}
			return MACValidation(secs, s.Seed)
		}},
		{"faults", "transaction resilience under injected faults", func() (*Table, error) {
			return FaultResilience(opt)
		}},
		{"stream", "streaming decode: live vs batch equivalence", func() (*Table, error) {
			return StreamEquivalence(opt)
		}},
	}
}

// Run executes the whole suite, printing each table to w. Unknown ids in
// only restrict the run; an empty only runs everything.
func (s Suite) Run(w io.Writer, only map[string]bool) error {
	for _, exp := range s.Experiments() {
		if len(only) > 0 && !only[exp.ID] {
			continue
		}
		if s.Progress != nil {
			fmt.Fprintf(s.Progress, "running %s: %s...\n", exp.ID, exp.Name)
		}
		start := time.Now()
		table, err := exp.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if s.Progress != nil {
			fmt.Fprintf(s.Progress, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		}
		if err := table.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
