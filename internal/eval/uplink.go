package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

// Options scales an experiment. Zero values take paper-scale defaults
// divided where noted; tests pass smaller values.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Trials per point (the paper repeats 20 times per distance).
	Trials int
	// PayloadLen bits per trial (the paper transmits 90-bit payloads).
	PayloadLen int
	// Workers bounds the goroutines evaluating independent trials.
	// 0 uses GOMAXPROCS; 1 forces serial execution. Every trial builds
	// its own simulation from an explicit per-trial seed, so results are
	// bit-identical for every worker count.
	Workers int
	// Obs, when non-nil, accumulates every trial's metrics snapshot.
	// Each trial System owns its own registry (no cross-worker
	// contention); snapshots are merged into Obs on the calling
	// goroutine in trial-index order, so the aggregate is identical for
	// every worker count.
	Obs *obs.Registry
	// Faults, when non-nil, applies the fault schedule to every trial
	// system (see internal/faults). Each trial derives its injector
	// stream from its own seed, so worker invariance is preserved.
	Faults *faults.Schedule
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.PayloadLen <= 0 {
		o.PayloadLen = 90
	}
	return o
}

// engine returns the trial-evaluation engine for the options' worker
// count.
func (o Options) engine() *parallel.Engine { return parallel.New(o.Workers) }

// Fig10Distances are the tag-reader separations swept in Fig. 10.
var Fig10Distances = []float64{5, 15, 25, 35, 45, 55, 65}

// Fig10PacketsPerBit are the measurement densities plotted in Fig. 10.
var Fig10PacketsPerBit = []float64{30, 6, 3}

// helperRate is the injection rate used for the distance sweeps (§7.1
// injects traffic; we fix 1000 pkt/s so packets/bit maps to bit rate).
const helperRate = 1000

// UplinkBERvsDistance reproduces Fig. 10(a) (CSI) or Fig. 10(b) (RSSI):
// BER at each distance for 30, 6, and 3 packets per bit.
func UplinkBERvsDistance(mode core.DecodeMode, opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Figure 10%s: uplink BER vs distance (%s)", figSuffix(mode), mode),
		Note: "paper: BER < 1e-2 up to ~65 cm (CSI) and ~30 cm (RSSI) at 30 pkts/bit; " +
			"BER rises with distance and falls with packets/bit",
		Columns: []string{"distance", "30 pkt/bit", "6 pkt/bit", "3 pkt/bit"},
	}
	// Every (distance, density, trial) cell is independent: fan the full
	// grid across the engine, then fold the per-trial errors back in grid
	// order so the table matches the serial loop exactly.
	type job struct {
		cm, ppb float64
	}
	var jobs []job
	for _, cm := range Fig10Distances {
		for _, ppb := range Fig10PacketsPerBit {
			for trial := 0; trial < opt.Trials; trial++ {
				jobs = append(jobs, job{cm, ppb})
			}
		}
	}
	type cell struct {
		errs int
		snap *obs.Snapshot
	}
	var cells []cell
	err := parallel.Fold(opt.engine(), len(jobs), func(i int) (cell, error) {
		j := jobs[i]
		trial := i % opt.Trials
		res, err := core.RunUplinkTrial(core.UplinkTrialSpec{
			Config: core.Config{
				Seed:              opt.Seed + int64(trial)*1009 + int64(j.cm)*13 + int64(j.ppb),
				TagReaderDistance: units.Centimeters(j.cm),
				Faults:            opt.Faults,
			},
			BitRate:                helperRate / j.ppb,
			HelperPacketsPerSecond: helperRate,
			PayloadLen:             opt.PayloadLen,
			Mode:                   mode,
		})
		if err != nil {
			return cell{}, err
		}
		return cell{res.BitErrors, res.Metrics}, nil
	}, func(c cell) error {
		opt.Obs.Merge(c.snap)
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	errsPer := make([]int, len(cells))
	for i, c := range cells {
		errsPer[i] = c.errs
	}
	idx := 0
	for _, cm := range Fig10Distances {
		row := []string{fmt.Sprintf("%.0f cm", cm)}
		for range Fig10PacketsPerBit {
			errs, bits := 0, 0
			for trial := 0; trial < opt.Trials; trial++ {
				errs += errsPer[idx]
				bits += opt.PayloadLen
				idx++
			}
			row = append(row, fmtBER(errs, bits))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func figSuffix(mode core.DecodeMode) string {
	if mode == core.DecodeRSSI {
		return "b"
	}
	return "a"
}

// FrequencyDiversity reproduces Fig. 11: the full diversity-combining
// decoder against decoding from one randomly chosen sub-channel, at 30
// packets per bit.
func FrequencyDiversity(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Figure 11: effect of frequency diversity on BER (30 pkt/bit)",
		Note: "paper: a random sub-channel fails beyond ~15 cm; " +
			"combining across sub-channels extends reliable decoding to ~65 cm",
		Columns: []string{"distance", "our algorithm", "random sub-channel"},
	}
	type pair struct {
		our, rnd int
		snaps    [2]*obs.Snapshot
	}
	results, err := parallel.Map(opt.engine(), len(Fig10Distances)*opt.Trials,
		func(i int) (pair, error) {
			cm := Fig10Distances[i/opt.Trials]
			trial := i % opt.Trials
			spec := core.UplinkTrialSpec{
				Config: core.Config{
					Seed:              opt.Seed + int64(trial)*2003 + int64(cm)*17,
					TagReaderDistance: units.Centimeters(cm),
					Faults:            opt.Faults,
				},
				BitRate:                helperRate / 30,
				HelperPacketsPerSecond: helperRate,
				PayloadLen:             opt.PayloadLen,
				Mode:                   core.DecodeCSI,
			}
			full, err := core.RunUplinkTrial(spec)
			if err != nil {
				return pair{}, err
			}
			// A random (antenna, sub-channel) pair, varied by trial.
			ant := int(opt.Seed+int64(trial)) % 3
			if ant < 0 {
				ant = -ant
			}
			sub := (trial*7 + int(cm)) % 30
			single, err := core.RunSingleChannelTrial(spec, ant, sub)
			if err != nil {
				return pair{}, err
			}
			return pair{
				our: full.BitErrors, rnd: single.BitErrors,
				snaps: [2]*obs.Snapshot{full.Metrics, single.Metrics},
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, p := range results {
		opt.Obs.Merge(p.snaps[0])
		opt.Obs.Merge(p.snaps[1])
	}
	for di, cm := range Fig10Distances {
		var ourErrs, ourBits, rndErrs, rndBits int
		for trial := 0; trial < opt.Trials; trial++ {
			p := results[di*opt.Trials+trial]
			ourErrs += p.our
			ourBits += opt.PayloadLen
			rndErrs += p.rnd
			rndBits += opt.PayloadLen
		}
		t.AddRow(fmt.Sprintf("%.0f cm", cm), fmtBER(ourErrs, ourBits), fmtBER(rndErrs, rndBits))
	}
	return t, nil
}

// StandardUplinkRates are the bit rates the evaluation tests (§7.2).
var StandardUplinkRates = []float64{100, 200, 500, 1000}

// achievableRate follows the paper's §7.2 methodology: each trial's
// achievable rate is the highest tested rate that decodes with BER < 1e-2
// in that trial, and the reported value is the mean across trials ("We
// compute the average achievable bit rate by taking the mean of the
// achievable bit rates across multiple runs"). Zero errors qualifies
// regardless of the trial's bit count. The (trial, rate) grid fans out
// across eng; run must be safe for concurrent calls.
func achievableRate(eng *parallel.Engine, rates []float64, run func(rate float64, trial int) (errs, bits int, err error), trials int) (float64, error) {
	if trials <= 0 {
		trials = 1
	}
	qualifies, err := parallel.Map(eng, trials*len(rates), func(i int) (bool, error) {
		trial, rate := i/len(rates), rates[i%len(rates)]
		e, b, err := run(rate, trial)
		if err != nil {
			return false, err
		}
		return b > 0 && float64(e)/float64(b) < 1e-2, nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for trial := 0; trial < trials; trial++ {
		best := 0.0
		for ri, rate := range rates {
			if qualifies[trial*len(rates)+ri] && rate > best {
				best = rate
			}
		}
		sum += best
	}
	return sum / float64(trials), nil
}

// Fig12HelperRates are the helper packet rates swept in Fig. 12.
var Fig12HelperRates = []float64{240, 500, 1000, 1500, 2070, 2500, 3070}

// RateVsHelperRate reproduces Fig. 12: the achievable uplink bit rate (max
// tested rate with BER < 1e-2 at 5 cm) as a function of the helper's
// transmission rate.
func RateVsHelperRate(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Figure 12: achievable uplink bit rate vs helper transmission rate",
		Note: "paper: ~100 bps at 500 pkt/s rising to ~1 kbps at ~3070 pkt/s " +
			"(tag 5 cm from reader)",
		Columns: []string{"helper pkt/s", "achievable bit rate"},
	}
	eng := opt.engine()
	for _, hr := range Fig12HelperRates {
		rate, err := achievableRate(eng, StandardUplinkRates, func(rate float64, trial int) (int, int, error) {
			res, err := core.RunUplinkTrial(core.UplinkTrialSpec{
				Config: core.Config{
					Seed:   opt.Seed + int64(trial)*3001 + int64(hr) + int64(rate),
					Faults: opt.Faults,
				},
				BitRate:                rate,
				HelperPacketsPerSecond: hr,
				PayloadLen:             opt.PayloadLen,
				Mode:                   core.DecodeCSI,
			})
			if err != nil {
				return 0, 0, err
			}
			return res.BitErrors, opt.PayloadLen, nil
		}, opt.Trials)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", hr), fmt.Sprintf("%.0f bps", rate))
	}
	return t, nil
}

// Fig20Distances are the long-range sweep distances in cm.
var Fig20Distances = []float64{80, 100, 120, 140, 160, 180, 200, 220}

// Fig20CodeLengths are the candidate correlation lengths.
var Fig20CodeLengths = []int{6, 10, 16, 20, 30, 50, 76, 100, 150}

// CorrelationRange reproduces Fig. 20: the minimum code (correlation)
// length that achieves BER < 1e-2 at each distance, using the §3.4 coded
// uplink at 2 helper packets per chip.
func CorrelationRange(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	payload := opt.PayloadLen
	if payload > 24 {
		payload = 24 // coded frames grow as payload·L; keep runs bounded
	}
	t := &Table{
		Title: "Figure 20: correlation length needed vs distance",
		Note: "paper: length ~20 reaches ~1.6 m and ~150 reaches ~2.1 m; " +
			"required length grows steeply with distance",
		Columns: []string{"distance", "min code length (BER < 1e-2)"},
	}
	eng := opt.engine()
	for _, cm := range Fig20Distances {
		found := 0
		// The code-length search keeps its serial early exit (the next
		// length only runs when the previous one failed); the trials
		// within each length fan out.
		for _, L := range Fig20CodeLengths {
			errsPer, err := parallel.Map(eng, opt.Trials, func(trial int) (int, error) {
				res, err := core.RunLongRangeTrial(core.UplinkTrialSpec{
					Config: core.Config{
						Seed:              opt.Seed + int64(trial)*4001 + int64(cm)*3 + int64(L),
						TagReaderDistance: units.Centimeters(cm),
						Faults:            opt.Faults,
					},
					BitRate:                500, // chip rate: 2 packets per chip
					HelperPacketsPerSecond: helperRate,
					PayloadLen:             payload,
				}, L)
				if err != nil {
					return 0, err
				}
				return res.BitErrors, nil
			})
			if err != nil {
				return nil, err
			}
			errs, bits := 0, 0
			for _, e := range errsPer {
				errs += e
				bits += payload
			}
			if float64(errs)/float64(bits) < 1e-2 {
				found = L
				break
			}
		}
		cell := "> 150"
		if found > 0 {
			cell = fmt.Sprintf("%d", found)
		}
		t.AddRow(fmt.Sprintf("%.0f cm", cm), cell)
	}
	return t, nil
}

// RawCSITrace reproduces Fig. 3 (5 cm) and Fig. 6 (1 m): the raw CSI
// amplitude of one good sub-channel while the tag transmits alternating
// bits. It returns the trace and a table summarizing the two level
// clusters.
func RawCSITrace(distance units.Meters, packets int, seed int64) ([]float64, *Table, error) {
	if packets <= 0 {
		packets = 3000
	}
	sys, err := core.NewSystem(core.Config{Seed: seed, TagReaderDistance: distance})
	if err != nil {
		return nil, nil, err
	}
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
	}).Start(); err != nil {
		return nil, nil, err
	}
	payload := make([]bool, packets/10)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	// Frame the alternating payload so the decoder's preamble-based
	// channel ranking applies, exactly as in a real transmission.
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, helperRate/10) // 10 packets per bit
	if err != nil {
		return nil, nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(helperRate / 10)
	if err != nil {
		return nil, nil, err
	}
	res, err := dec.DecodeCSI(sys.Series(), mod.Start(), len(payload))
	if err != nil {
		return nil, nil, err
	}
	best := res.Good[0]
	if best.Subchannel < 0 {
		best.Subchannel = 0
	}
	trace, err := sys.Series().CSIChannel(best.Antenna, best.Subchannel)
	if err != nil {
		return nil, nil, err
	}
	if len(trace) > packets {
		trace = trace[:packets]
	}
	// Split samples by the transmitted state to characterize the levels.
	ts := sys.Series().Timestamps()
	var lo, hi []float64
	for i := range trace {
		if !mod.Active(ts[i]) {
			continue
		}
		if mod.StateAt(ts[i]) {
			hi = append(hi, trace[i])
		} else {
			lo = append(lo, trace[i])
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Figure %s: raw CSI trace, tag at %v", figNumForDistance(distance), distance),
		Note: "paper: two distinct levels at 5 cm (Fig. 3); " +
			"levels merge at ~1 m and beyond (Fig. 6)",
		Columns: []string{"metric", "value"},
	}
	loMean, hiMean := mean(lo), mean(hi)
	sep := 0.0
	if s := (stddev(lo) + stddev(hi)) / 2; s > 0 {
		sep = abs(hiMean-loMean) / s
	}
	t.AddRow("sub-channel", best.String())
	t.AddRow("mean level (absorbing)", fmt.Sprintf("%.3f", loMean))
	t.AddRow("mean level (reflecting)", fmt.Sprintf("%.3f", hiMean))
	t.AddRow("level separation (σ units)", fmt.Sprintf("%.2f", sep))
	t.AddRow("distinct levels", fmt.Sprintf("%v", sep > 2))
	return trace, t, nil
}

func figNumForDistance(d units.Meters) string {
	if d <= 0.1 {
		return "3"
	}
	return "6"
}

// NormalizedPDF reproduces Fig. 4: the PDF of normalized (conditioned)
// channel values across the 30 sub-channels of antenna 0 with the tag at
// 5 cm. It reports how many sub-channels show the two Gaussian lobes at
// ±1 and the per-sub-channel noise spread.
func NormalizedPDF(packets int, seed int64) (*Table, error) {
	if packets <= 0 {
		packets = 42000
	}
	sys, err := core.NewSystem(core.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
	}).Start(); err != nil {
		return nil, err
	}
	payload := make([]bool, packets/10)
	for i := range payload {
		payload[i] = i%2 == 0
	}
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, helperRate/10)
	if err != nil {
		return nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(helperRate / 10)
	if err != nil {
		return nil, err
	}
	bimodal := 0
	var spreads []float64
	for k := 0; k < sys.Series().Subchannels(); k++ {
		cond, err := dec.NormalizedChannel(sys.Series(), 0, k)
		if err != nil {
			return nil, err
		}
		if isBimodalAroundUnit(cond) {
			bimodal++
		}
		spreads = append(spreads, stddev(cond))
	}
	sort.Float64s(spreads)
	t := &Table{
		Title: "Figure 4: PDF of normalized channel values (30 sub-channels, tag at 5 cm)",
		Note: "paper: ~30% of sub-channels show two Gaussians at ±1; noise varies " +
			"significantly across sub-channels; some show no separation",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("sub-channels with ±1 lobes", fmt.Sprintf("%d / 30", bimodal))
	t.AddRow("fraction bimodal", fmt.Sprintf("%.0f%%", float64(bimodal)/30*100))
	t.Note += "; the simulated 5 cm link is cleaner than the hardware's, so " +
		"more sub-channels separate here — the diversity structure (spread " +
		"varying across sub-channels) is the reproduced claim"
	t.AddRow("spread (min)", fmt.Sprintf("%.2f", spreads[0]))
	t.AddRow("spread (median)", fmt.Sprintf("%.2f", spreads[len(spreads)/2]))
	t.AddRow("spread (max)", fmt.Sprintf("%.2f", spreads[len(spreads)-1]))
	return t, nil
}

// isBimodalAroundUnit checks for density lobes near -1 and +1.
func isBimodalAroundUnit(xs []float64) bool {
	var nearLo, nearHi, center int
	for _, x := range xs {
		switch {
		case x > -1.5 && x < -0.5:
			nearLo++
		case x > 0.5 && x < 1.5:
			nearHi++
		case x > -0.25 && x < 0.25:
			center++
		}
	}
	n := len(xs)
	if n == 0 {
		return false
	}
	// Both lobes populated and the valley between them sparse.
	return nearLo > n/8 && nearHi > n/8 && center < (nearLo+nearHi)/2
}

// GoodSubchannels reproduces Fig. 5: for each distance, which sub-channels
// decode with BER < 1e-2 on their own. One simulation per distance; every
// sub-channel of antenna 0 is decoded from the same series.
func GoodSubchannels(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Figure 5: sub-channels with BER < 1e-2 vs distance (antenna 0)",
		Note: "paper: the set of good sub-channels varies significantly with tag " +
			"position; no sub-channel is consistently good",
		Columns: []string{"distance", "good sub-channels", "count"},
	}
	payload := opt.PayloadLen
	distances := []float64{5, 15, 25, 35, 45, 55, 65}
	// Each distance runs one self-contained simulation; fan them out.
	goodPer, err := parallel.Map(opt.engine(), len(distances), func(i int) ([]int, error) {
		cm := distances[i]
		sys, err := core.NewSystem(core.Config{
			Seed:              opt.Seed + int64(cm)*101,
			TagReaderDistance: units.Centimeters(cm),
			Faults:            opt.Faults,
		})
		if err != nil {
			return nil, err
		}
		if err := (&wifi.CBRSource{
			Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
		}).Start(); err != nil {
			return nil, err
		}
		payloadBits := core.RandomPayload(payload, opt.Seed+int64(cm))
		mod, err := sys.TransmitUplink(tag.FrameBits(payloadBits), 1.0, helperRate/30)
		if err != nil {
			return nil, err
		}
		sys.Run(mod.End() + 0.5)
		dec, err := sys.UplinkDecoder(helperRate / 30)
		if err != nil {
			return nil, err
		}
		var good []int
		for k := 0; k < sys.Series().Subchannels(); k++ {
			res, err := dec.DecodeSingleChannel(sys.Series(), mod.Start(), payload, 0, k)
			if err != nil {
				return nil, err
			}
			if errs := core.CountBitErrors(res.Payload, payloadBits); float64(errs)/float64(payload) < 1e-2 {
				good = append(good, k)
			}
		}
		return good, nil
	})
	if err != nil {
		return nil, err
	}
	for i, cm := range distances {
		t.AddRow(fmt.Sprintf("%.0f cm", cm), intsToString(goodPer[i]), fmt.Sprintf("%d", len(goodPer[i])))
	}
	return t, nil
}

func intsToString(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var sum float64
	for _, x := range xs {
		sum += (x - m) * (x - m)
	}
	return math.Sqrt(sum / float64(len(xs)))
}

func abs(x float64) float64 { return math.Abs(x) }
