package eval

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/downlink"
	"repro/internal/parallel"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

// Location describes a helper/transmitter placement from the Fig. 13
// testbed: locations 2–4 are line-of-sight at growing distances; location
// 5 is in the next room (one wall) with heavy ambient utilization.
type Location struct {
	Name string
	// Distance from the tag/reader area.
	Distance units.Meters
	// Walls between the location and the tag/reader.
	Walls int
	// BaseSNR of a transmitter at this location to the Fig. 19 receiver.
	BaseSNR units.DB
	// Contended marks external interference (the class next door during
	// the location-5 runs).
	Contended bool
}

// TestbedLocations reproduces Fig. 13's placements.
var TestbedLocations = []Location{
	{Name: "2", Distance: units.Meters(3), Walls: 0, BaseSNR: units.DB(26)},
	{Name: "3", Distance: units.Meters(5.5), Walls: 0, BaseSNR: units.DB(21)},
	{Name: "4", Distance: units.Meters(7), Walls: 0, BaseSNR: units.DB(16)},
	{Name: "5", Distance: units.Meters(9), Walls: 1, BaseSNR: units.DB(11), Contended: true},
}

// HelperLocations reproduces Fig. 14: the probability of receiving a
// correct packet on the uplink for each helper location, with the tag
// 5 cm from the reader transmitting 64-bit CRC-protected messages at
// 100 bps.
func HelperLocations(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Figure 14: uplink packet delivery vs helper location",
		Note: "paper: delivery stays high at every location, including the " +
			"non-line-of-sight one — the uplink depends on the tag-reader " +
			"distance, not the helper's position",
		Columns: []string{"location", "distance", "walls", "delivery probability"},
	}
	deliveredPer, err := parallel.Map(opt.engine(), len(TestbedLocations)*opt.Trials,
		func(i int) (bool, error) {
			loc := TestbedLocations[i/opt.Trials]
			trial := i % opt.Trials
			sys, err := core.NewSystem(core.Config{
				Seed:              opt.Seed + int64(trial)*5003 + int64(loc.Distance*10),
				HelperTagDistance: loc.Distance,
				HelperWalls:       loc.Walls,
				Faults:            opt.Faults,
			})
			if err != nil {
				return false, err
			}
			if err := (&wifi.CBRSource{
				Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
			}).Start(); err != nil {
				return false, err
			}
			msg := downlink.NewMessage(uint64(opt.Seed) + uint64(trial)*77)
			mod, err := sys.TransmitUplink(tag.FrameBits(tag.Scramble(msg.PayloadBits())), 1.0, 100)
			if err != nil {
				return false, err
			}
			sys.Run(mod.End() + 0.5)
			dec, err := sys.UplinkDecoder(100)
			if err != nil {
				return false, err
			}
			res, err := dec.DecodeCSI(sys.Series(), mod.Start(), downlink.PayloadBits)
			if err != nil {
				return false, err
			}
			got, perr := downlink.ParsePayload(tag.Scramble(res.Payload))
			return perr == nil && got.Data == msg.Data, nil
		})
	if err != nil {
		return nil, err
	}
	for li, loc := range TestbedLocations {
		delivered := 0
		for trial := 0; trial < opt.Trials; trial++ {
			if deliveredPer[li*opt.Trials+trial] {
				delivered++
			}
		}
		t.AddRow(loc.Name, fmt.Sprintf("%.1f m", float64(loc.Distance)),
			fmt.Sprintf("%d", loc.Walls),
			fmt.Sprintf("%.2f", float64(delivered)/float64(opt.Trials)))
	}
	return t, nil
}

// AmbientRates are the bit rates tested for ambient-traffic operation
// (Fig. 15's y-axis spans ~50–250 bps).
var AmbientRates = []float64{25, 50, 100, 200, 500}

// AmbientTraffic reproduces Fig. 15: achievable uplink rate using only
// the traffic already on the network, across the office day.
func AmbientTraffic(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Figure 15: achievable rate from ambient traffic vs time of day",
		Note: "paper: rate tracks network load — roughly 100–200 bps through " +
			"the afternoon peak with no injected traffic",
		Columns: []string{"time", "load pkt/s", "achievable bit rate"},
	}
	eng := opt.engine()
	for _, hour := range []float64{12, 13, 14, 15, 16, 17, 18, 19, 20} {
		load := wifi.OfficeLoad(hour)
		rate, err := achievableRate(eng, AmbientRates, func(rate float64, trial int) (int, int, error) {
			sys, err := core.NewSystem(core.Config{
				Seed:   opt.Seed + int64(trial)*6007 + int64(hour)*31 + int64(rate),
				Faults: opt.Faults,
			})
			if err != nil {
				return 0, 0, err
			}
			if err := (&wifi.PoissonSource{
				Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 400,
				Rate: load, Rnd: rng.New(opt.Seed + int64(trial) + int64(hour*7)),
			}).Start(); err != nil {
				return 0, 0, err
			}
			payload := core.RandomPayload(opt.PayloadLen, opt.Seed+int64(trial))
			mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, rate)
			if err != nil {
				return 0, 0, err
			}
			sys.Run(mod.End() + 0.5)
			dec, err := sys.UplinkDecoder(rate)
			if err != nil {
				return 0, 0, err
			}
			res, err := dec.DecodeCSI(sys.Series(), mod.Start(), opt.PayloadLen)
			if err != nil {
				return 0, 0, err
			}
			return core.CountBitErrors(res.Payload, payload), opt.PayloadLen, nil
		}, opt.Trials)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%02.0f:00", hour), fmt.Sprintf("%.0f", load),
			fmt.Sprintf("%.0f bps", rate))
	}
	return t, nil
}

// BeaconRatesTested are the uplink rates tried for beacon-only operation.
var BeaconRatesTested = []float64{2, 5, 10, 20, 30, 40, 50}

// BeaconOnly reproduces Fig. 16: achievable uplink rate when the reader
// uses only the AP's periodic beacons, decoded from RSSI (the Intel cards
// do not expose CSI for beacons).
func BeaconOnly(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	payload := opt.PayloadLen
	if payload > 30 {
		payload = 30 // low rates: keep each trial's duration bounded
	}
	t := &Table{
		Title: "Figure 16: achievable rate using only AP beacons (RSSI decoding)",
		Note: "paper: rate grows with beacon frequency, to ~45 bps at " +
			"70 beacons/s — the uplink needs no data traffic at all",
		Columns: []string{"beacons/s", "achievable bit rate"},
	}
	eng := opt.engine()
	for _, br := range []float64{10, 20, 30, 40, 50, 70} {
		rate, err := achievableRate(eng, BeaconRatesTested, func(rate float64, trial int) (int, int, error) {
			if rate > br/1.4 {
				// Fewer than ~1.4 beacons per bit cannot carry a bit.
				return payload, payload, nil
			}
			res, err := core.RunUplinkTrial(core.UplinkTrialSpec{
				Config: core.Config{
					Seed:   opt.Seed + int64(trial)*7001 + int64(br)*3 + int64(rate),
					Faults: opt.Faults,
				},
				BitRate:                rate,
				HelperPacketsPerSecond: br,
				PayloadLen:             payload,
				Mode:                   core.DecodeRSSI,
				UseBeacons:             true,
			})
			if err != nil {
				return 0, 0, err
			}
			return res.BitErrors, payload, nil
		}, opt.Trials)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", br), fmt.Sprintf("%.0f bps", rate))
	}
	return t, nil
}

// WiFiImpact reproduces Fig. 19: the effect of the tag's continuous
// modulation on a Wi-Fi transmitter's UDP throughput, for each transmitter
// location and for the tag absent, at 100 bps, and at 1 kbps, with the
// tag at the given distance from the receiver. Each run simulates a
// two-minute UDP transfer with ARF rate adaptation, logging throughput
// every 500 ms as the paper does. The location × rate grid fans out over
// workers goroutines (0 = GOMAXPROCS, 1 = serial) with identical results.
func WiFiImpact(tagDistance units.Meters, seconds float64, seed int64, workers int) (*Table, error) {
	if seconds <= 0 {
		seconds = 120
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 19 (tag at %v from receiver): UDP throughput", tagDistance),
		Note: "paper: throughput differences with the tag modulating stay " +
			"within the run-to-run variance — rate adaptation absorbs the " +
			"small channel perturbation",
		Columns: []string{"location", "no device", "100 bps", "1 kbps"},
	}
	tagRates := []float64{0, 100, 1000}
	cells, err := parallel.Map(parallel.New(workers), len(TestbedLocations)*len(tagRates),
		func(i int) (string, error) {
			loc := TestbedLocations[i/len(tagRates)]
			tagRate := tagRates[i%len(tagRates)]
			mean, std := wifiImpactRun(loc, tagDistance, tagRate, seconds, seed)
			return fmt.Sprintf("%.2f±%.2f MB/s", mean, std), nil
		})
	if err != nil {
		return nil, err
	}
	for li, loc := range TestbedLocations {
		row := []string{loc.Name}
		row = append(row, cells[li*len(tagRates):(li+1)*len(tagRates)]...)
		t.AddRow(row...)
	}
	return t, nil
}

// wifiImpactRun simulates one UDP transfer and returns the mean and
// standard deviation of the per-500 ms throughput in MB/s.
func wifiImpactRun(loc Location, tagDistance units.Meters, tagRate float64, seconds float64, seed int64) (mean, std float64) {
	rnd := rng.New(seed + int64(loc.Distance*100) + int64(tagRate))
	eng := sim.NewEngine()
	medium := wifi.NewMedium(eng, rnd.Split("medium"))
	tx := medium.AddStation("laptop", wifi.MAC{1}, wifi.Rate54)
	tx.Adapter = wifi.NewARF()

	// The tag's reflection perturbs the transmitter→receiver channel.
	// The perturbation amplitude follows the backscatter link budget
	// with the tag at tagDistance from the receiver; its phase is fixed
	// per run.
	lambda := wifi.ChannelFreq(6).Wavelength()
	ant := radioDifferentialGain(lambda)
	depth := float64(loc.Distance) / float64(loc.Distance) * // tx→tag ≈ tx→rx
		(float64(lambda) / (4 * math.Pi * float64(tagDistance))) * ant
	phase := rnd.Float64() * 2 * math.Pi
	perturb := units.DB(20 * math.Log10(math.Hypot(1+depth*math.Cos(phase), depth*math.Sin(phase))))
	tx.SNR = func(now float64) units.DB {
		snr := loc.BaseSNR
		if tagRate > 0 && int(now*tagRate)%2 == 0 {
			snr += perturb
		}
		return snr
	}
	(&wifi.SaturatedSource{Station: tx, Dst: wifi.MAC{2}, Payload: 1400}).Start()
	if loc.Contended {
		rival := medium.AddStation("class", wifi.MAC{3}, wifi.Rate24)
		(&wifi.BurstySource{
			Station: rival, Dst: wifi.MAC{9}, Payload: 1200,
			MeanBurst: 30, MeanGap: 0.05, InBurstInterval: 0.0006,
			Rnd: rnd.Split("class"),
		}).Start()
	}
	// Log delivered bytes every 500 ms.
	var samples []float64
	lastBytes := 0
	var tick func()
	tick = func() {
		delivered := tx.DeliveredBytes
		samples = append(samples, float64(delivered-lastBytes)/0.5/1e6)
		lastBytes = delivered
		eng.Schedule(0.5, tick)
	}
	eng.Schedule(0.5, tick)
	eng.Run(seconds)
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		std += (s - mean) * (s - mean)
	}
	std = math.Sqrt(std / float64(len(samples)))
	return mean, std
}

// radioDifferentialGain is the tag antenna's differential scattering gain.
func radioDifferentialGain(lambda units.Meters) float64 {
	return radio.DefaultTagAntenna().DifferentialGain(lambda)
}
