package eval

import (
	"testing"
)

// TestStreamEquivalenceExperiment runs the live-vs-batch validation at
// smoke scale and requires every operating point to come back identical:
// the experiment exists to certify the refactor, so any "false" cell is a
// regression, not a finding to report.
func TestStreamEquivalenceExperiment(t *testing.T) {
	tab, err := StreamEquivalence(Options{Seed: 77, Trials: 2, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 distances × 2 modes
		t.Fatalf("expected 6 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "0" || row[5] != "true" {
			t.Errorf("stream/batch divergence at %s (%s): %d mismatches, identical=%s",
				row[0], row[1], mustInt(t, row[4]), row[5])
		}
	}
}

func mustInt(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a count: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
