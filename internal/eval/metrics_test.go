package eval

// Metrics determinism tests: the obs layer promises that the aggregated
// pipeline metrics depend only on seed and experiment selection — never on
// worker count, scheduling, or wall-clock. Two tests pin that promise:
//
//   - TestMetricsWorkerInvariance renders the same instrumented sweep at
//     Workers=1 and Workers=8 and requires byte-identical JSON.
//   - TestMetricsGolden pins the exact bytes against
//     testdata/metrics_golden.json, so any change to instrumentation
//     (new counters, renamed metrics, altered trial structure) shows up
//     as a readable diff. Regenerate after an intentional change with:
//
//	go test ./internal/eval/ -run TestMetricsGolden -update

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// metricsExperiments is the sweep used by both tests: an uplink BER sweep
// (decoder, medium, engine counters), the downlink BER sweep (eval-level
// counters), and the multi-tag inventory (downlink encoder, tag decode,
// transaction counters). Together they touch every instrumented subsystem.
var metricsExperiments = map[string]bool{
	"fig10a":    true,
	"fig17":     true,
	"inventory": true,
}

// metricsJSON runs the metrics sweep at the given worker count and returns
// the registry's deterministic JSON rendering.
func metricsJSON(t *testing.T, workers int) []byte {
	t.Helper()
	suite := Suite{Seed: 7, Quick: true, Workers: workers, Metrics: obs.NewRegistry()}
	if err := suite.Run(io.Discard, metricsExperiments); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suite.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsWorkerInvariance is the property behind wbbench's -metrics
// contract: snapshots merge on the suite goroutine in trial-index order, so
// the aggregate must not depend on how trials were scheduled.
func TestMetricsWorkerInvariance(t *testing.T) {
	serial := metricsJSON(t, 1)
	parallel := metricsJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("metrics differ between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestMetricsGolden(t *testing.T) {
	got := metricsJSON(t, 4)
	path := filepath.Join("testdata", "metrics_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics differ from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
