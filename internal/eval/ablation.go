package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// Ablations for the design choices §3.2 and §4.2 commit to (see DESIGN.md
// §5): the sub-channel combining rule, the per-measurement decision rule,
// the bit-binning rule under bursty traffic, and the downlink set-threshold
// circuit.

// ablationDistances keeps the sweeps small but spanning the regime where
// the choices matter.
var ablationDistances = []float64{25, 45, 65}

// CombiningAblation compares MRC against equal-gain combining and the
// best single sub-channel at 30 packets/bit.
func CombiningAblation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Ablation: sub-channel combining rule (30 pkt/bit)",
		Note: "MRC (1/σ² weights, the paper's choice) should dominate as the " +
			"link weakens; equal gain ignores noise differences; a single " +
			"channel forfeits diversity",
		Columns: []string{"distance", "mrc", "equal-gain", "best-single"},
	}
	variants := []uplink.Variant{
		uplink.PaperVariant,
		{Combining: uplink.CombineEqualGain},
		{Combining: uplink.CombineBestSingle},
	}
	return runUplinkAblation(t, variants, opt, false)
}

// DecisionAblation compares hysteresis+vote against a plain vote and a
// per-bit mean threshold.
func DecisionAblation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Ablation: decision rule (30 pkt/bit)",
		Note: "hysteresis+majority vote (the paper's choice) absorbs spurious " +
			"measurement jumps that flip single votes or whole bit means",
		Columns: []string{"distance", "hysteresis-vote", "plain-vote", "bit-mean"},
	}
	variants := []uplink.Variant{
		uplink.PaperVariant,
		{Decision: uplink.DecidePlainVote},
		{Decision: uplink.DecideBitMean},
	}
	return runUplinkAblation(t, variants, opt, false)
}

// BinningAblation compares timestamp binning against naive equal-count
// binning under bursty helper traffic (§5's motivation for using packet
// timestamps).
func BinningAblation(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Ablation: bit binning under bursty traffic (30 pkt/bit avg)",
		Note: "bursty arrivals break count-based grouping; the paper bins by " +
			"the per-packet timestamp instead",
		Columns: []string{"distance", "timestamp", "equal-count"},
	}
	variants := []uplink.Variant{
		uplink.PaperVariant,
		{Binning: uplink.BinEqualCount},
	}
	return runUplinkAblation(t, variants, opt, true)
}

// runUplinkAblation sweeps the variants over the ablation distances,
// fanning the (distance, variant, trial) grid across the engine.
func runUplinkAblation(t *Table, variants []uplink.Variant, opt Options, bursty bool) (*Table, error) {
	perCell := opt.Trials
	errsPer, err := parallel.Map(opt.engine(), len(ablationDistances)*len(variants)*perCell,
		func(i int) (int, error) {
			cm := ablationDistances[i/(len(variants)*perCell)]
			v := variants[i/perCell%len(variants)]
			trial := i % perCell
			res, err := core.RunUplinkVariantTrial(core.UplinkTrialSpec{
				Config: core.Config{
					Seed:              opt.Seed + int64(trial)*8009 + int64(cm)*7,
					TagReaderDistance: units.Centimeters(cm),
					Faults:            opt.Faults,
				},
				BitRate:                helperRate / 30,
				HelperPacketsPerSecond: helperRate,
				PayloadLen:             opt.PayloadLen,
				Bursty:                 bursty,
			}, v)
			if err != nil {
				return 0, err
			}
			return res.BitErrors, nil
		})
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, cm := range ablationDistances {
		row := []string{fmt.Sprintf("%.0f cm", cm)}
		for range variants {
			errs, bits := 0, 0
			for trial := 0; trial < perCell; trial++ {
				errs += errsPer[idx]
				bits += opt.PayloadLen
				idx++
			}
			row = append(row, fmtBER(errs, bits))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ThresholdAblation compares the adaptive peak/2 set-threshold circuit
// against a fixed threshold calibrated for a 1 m link, across distance.
// The distance × circuit grid fans out over workers goroutines
// (0 = GOMAXPROCS, 1 = serial) with identical results.
func ThresholdAblation(bitsPerPoint int, seed int64, workers int) (*Table, error) {
	if bitsPerPoint <= 0 {
		bitsPerPoint = 20_000
	}
	t := &Table{
		Title: "Ablation: downlink threshold (20 kbps)",
		Note: "the set-threshold circuit halves the held peak so the threshold " +
			"tracks the signal level; a fixed threshold tuned at 1 m fails " +
			"as soon as the level changes",
		Columns: []string{"distance", "adaptive (peak/2)", "fixed (1 m cal)"},
	}
	// Calibrate the fixed threshold to roughly half the steady envelope
	// at 1 m.
	cal := 0.5 * tag.ReceivedEnvelopeScale(units.DBm(16), units.Meters(1), wifi.ChannelFreq(6))
	distances := []float64{0.5, 1.0, 2.0, 3.0}
	errsPer, err := parallel.Map(parallel.New(workers), len(distances)*2, func(i int) (int, error) {
		m := distances[i/2]
		if i%2 == 0 {
			return core.DownlinkBERTrial(units.Meters(m), units.DBm(16), 50e-6, bitsPerPoint, seed+int64(m*10))
		}
		return core.DownlinkBERTrialWithCircuit(units.Meters(m), units.DBm(16), 50e-6, bitsPerPoint,
			seed+int64(m*10), func(c *tag.Circuit) { c.FixedThreshold = cal })
	})
	if err != nil {
		return nil, err
	}
	for di, m := range distances {
		t.AddRow(fmt.Sprintf("%.1f m", m), fmtBER(errsPer[di*2], bitsPerPoint), fmtBER(errsPer[di*2+1], bitsPerPoint))
	}
	return t, nil
}
