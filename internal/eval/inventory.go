package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inventory"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/units"
	"repro/internal/wifi"
)

// MultiTagInventory characterizes the §2 extension: identifying a
// population of tags with the Gen-2-style slotted-ALOHA protocol. For each
// population size it reports the rounds, slots, collision count, and air
// time needed to identify every tag.
func MultiTagInventory(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Extension (§2): multi-tag inventory, slotted ALOHA with Q adaptation",
		Note: "collisions are physical: simultaneous reflections superpose at " +
			"the reader and fail the handle CRC; the frame size adapts until " +
			"the population drains",
		Columns: []string{"tags", "identified", "rounds", "slots", "collisions", "air time"},
	}
	populations := []int{1, 2, 4, 6, 8}
	type run struct {
		res  *inventory.Result
		snap *obs.Snapshot
	}
	// Each population size is one self-contained simulation; fan them out.
	results, err := parallel.Map(opt.engine(), len(populations),
		func(i int) (run, error) {
			n := populations[i]
			sys, err := core.NewSystem(core.Config{
				Seed:              opt.Seed + int64(n)*37,
				TagReaderDistance: units.Centimeters(12),
				Faults:            opt.Faults,
			})
			if err != nil {
				return run{}, err
			}
			if err := (&wifi.CBRSource{
				Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
			}).Start(); err != nil {
				return run{}, err
			}
			sys.Run(0.3)
			ids := make([]uint64, n)
			dists := make([]units.Meters, n)
			for i := range ids {
				ids[i] = 0xA000 + uint64(i)
				dists[i] = units.Centimeters(12 + 4*float64(i))
			}
			inv, err := inventory.New(sys, ids, dists, inventory.DefaultConfig())
			if err != nil {
				return run{}, err
			}
			res, err := inv.Run()
			if err != nil {
				return run{}, err
			}
			return run{res, sys.Metrics().Snapshot()}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		opt.Obs.Merge(r.snap)
	}
	for i, n := range populations {
		res := results[i].res
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(res.Identified)),
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", res.Slots),
			fmt.Sprintf("%d", res.Collisions),
			fmt.Sprintf("%.1f s", res.Duration))
	}
	return t, nil
}
