package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/reader"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// StreamEquivalence validates the streaming refactor at system scale: each
// trial runs one simulation with a reader.LiveSession decoding online (the
// incremental path) and then batch-decodes the same collected series (the
// materialized path), comparing the decoded payloads bit for bit. The
// table reports zero mismatches at every operating point for both CSI and
// RSSI modes — the system-level form of the stream/batch equivalence
// property the unit tests pin with DeepEqual.
//
// Fault schedules are deliberately not applied here: decode-time fault
// draws would interleave differently between a mid-simulation decode and
// a post-simulation one, which is a property of the injector's stream,
// not of the decoder.
func StreamEquivalence(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "Streaming decode: live (incremental) vs batch equivalence",
		Note: "the StreamDecoder is the only decode implementation; a live session " +
			"pushing measurements during the simulation must reproduce the batch " +
			"decode of the full trace exactly, at every distance and in both modes",
		Columns: []string{"distance", "mode", "trials", "bits compared", "mismatches", "identical"},
	}
	distances := []float64{5, 30, 65}
	modes := []uplink.StreamMode{uplink.StreamCSI, uplink.StreamRSSI}
	type point struct {
		cm   float64
		mode uplink.StreamMode
	}
	var points []point
	for _, cm := range distances {
		for _, mode := range modes {
			points = append(points, point{cm, mode})
		}
	}
	type outcome struct {
		mismatches int
		liveErrs   int // live-session push/flush failures (must be 0)
	}
	results, err := parallel.Map(opt.engine(), len(points)*opt.Trials, func(i int) (outcome, error) {
		p := points[i/opt.Trials]
		trial := i % opt.Trials
		sys, err := core.NewSystem(core.Config{
			Seed:              opt.Seed + int64(trial)*5003 + int64(p.cm)*7 + int64(p.mode),
			TagReaderDistance: units.Centimeters(p.cm),
		})
		if err != nil {
			return outcome{}, err
		}
		if err := (&wifi.CBRSource{
			Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
		}).Start(); err != nil {
			return outcome{}, err
		}
		payload := core.RandomPayload(opt.PayloadLen, opt.Seed+int64(trial)*11+int64(p.cm))
		const bitRate = helperRate / 30
		mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, bitRate)
		if err != nil {
			return outcome{}, err
		}
		dec, err := sys.UplinkDecoder(bitRate)
		if err != nil {
			return outcome{}, err
		}
		ls, err := reader.NewLiveSession(dec, mod.Start(), opt.PayloadLen, p.mode, 0)
		if err != nil {
			return outcome{}, err
		}
		sys.OnMeasurement(ls.OnMeasurement)
		sys.Run(mod.End() + 0.5)
		live, err := ls.Finish()
		if err != nil {
			return outcome{liveErrs: 1}, nil
		}
		var batch *uplink.Result
		if p.mode == uplink.StreamRSSI {
			batch, err = dec.DecodeRSSI(sys.Series(), mod.Start(), opt.PayloadLen)
		} else {
			batch, err = dec.DecodeCSI(sys.Series(), mod.Start(), opt.PayloadLen)
		}
		if err != nil {
			return outcome{}, fmt.Errorf("batch decode after a clean live decode: %w", err)
		}
		out := outcome{}
		for j := range batch.Payload {
			if live.Payload[j] != batch.Payload[j] {
				out.mismatches++
			}
		}
		if dec.Detected(live) != dec.Detected(batch) {
			out.mismatches++
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range points {
		mismatches, liveErrs := 0, 0
		for trial := 0; trial < opt.Trials; trial++ {
			o := results[pi*opt.Trials+trial]
			mismatches += o.mismatches
			liveErrs += o.liveErrs
		}
		bits := opt.Trials * opt.PayloadLen
		t.AddRow(
			fmt.Sprintf("%.0f cm", p.cm),
			p.mode.String(),
			fmt.Sprintf("%d", opt.Trials),
			fmt.Sprintf("%d", bits),
			fmt.Sprintf("%d", mismatches),
			fmt.Sprintf("%v", mismatches == 0 && liveErrs == 0),
		)
	}
	return t, nil
}
