package eval

// Serial-vs-parallel equivalence tests: the trial engine's contract is
// that worker count never changes a result, only wall-clock time. These
// tests pin that property at the experiment level, where it matters — a
// regression here means some trial picked up hidden shared state.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestUplinkSweepWorkerInvariance compares a full (reduced-scale) Fig. 10
// sweep at 1 worker against 4 workers: the rendered tables must match
// byte for byte.
func TestUplinkSweepWorkerInvariance(t *testing.T) {
	opt := Options{Seed: 99, Trials: 1, PayloadLen: 10}
	serial, par := opt, opt
	serial.Workers = 1
	par.Workers = 4
	a, err := UplinkBERvsDistance(core.DecodeCSI, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := UplinkBERvsDistance(core.DecodeCSI, par)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("worker count changed the table:\nserial:\n%s\nparallel:\n%s", a, b)
	}
}

// TestDownlinkBERWorkerInvariance randomizes seed, scale, and worker
// count and demands identical tables from serial and parallel runs.
func TestDownlinkBERWorkerInvariance(t *testing.T) {
	f := func(seed int64, bitsRaw, workersRaw uint8) bool {
		bits := 50 + int(bitsRaw)%200
		workers := 2 + int(workersRaw)%5
		s, err := DownlinkBER(bits, seed, 1)
		if err != nil {
			return false
		}
		p, err := DownlinkBER(bits, seed, workers)
		if err != nil {
			return false
		}
		return s.String() == p.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Error(err)
	}
}

// TestAchievableRateWorkerInvariance drives the rate-fold logic with a
// synthetic (cheap, deterministic) trial function across random seeds,
// trial counts, and worker counts.
func TestAchievableRateWorkerInvariance(t *testing.T) {
	rates := []float64{100, 200, 500, 1000}
	f := func(seed int64, trialsRaw, workersRaw uint8) bool {
		trials := 1 + int(trialsRaw)%5
		workers := 1 + int(workersRaw)%8
		run := func(rate float64, trial int) (int, int, error) {
			// Error count depends only on (seed, rate, trial), never on
			// evaluation order.
			return rng.TrialStream(seed+int64(rate), trial).Intn(3), 100, nil
		}
		a, err := achievableRate(parallel.New(1), rates, run, trials)
		if err != nil {
			return false
		}
		b, err := achievableRate(parallel.New(workers), rates, run, trials)
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFalsePositivesWorkerInvariance covers the seed-parameterized
// experiments' fan-out path.
func TestFalsePositivesWorkerInvariance(t *testing.T) {
	s, err := FalsePositives(0.005, 77, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FalsePositives(0.005, 77, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != p.String() {
		t.Fatalf("worker count changed the table:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}
