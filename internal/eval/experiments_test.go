package eval

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/units"
)

// quickOpt keeps experiment tests fast while exercising the full paths.
var quickOpt = Options{Seed: 42, Trials: 2, PayloadLen: 45}

// berCell parses a table BER cell ("1.2e-03" or "<5.0e-04").
func berCell(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimPrefix(cell, "<")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("unparseable BER cell %q: %v", cell, err)
	}
	return v
}

func TestUplinkBERvsDistanceShape(t *testing.T) {
	tab, err := UplinkBERvsDistance(core.DecodeCSI, quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Fig10Distances) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(Fig10Distances))
	}
	// Near point at 30 pkt/bit must be clean; far 3 pkt/bit must be
	// worse than near 3 pkt/bit.
	// The 30 pkt/bit configuration has a small residual floor from long
	// same-bit runs interacting with the conditioning window (the paper's
	// 5 cm points sit at ~5e-4..1e-3 rather than zero for the same
	// reason); with 2 quick trials allow a generous band.
	near30 := berCell(t, tab.Rows[0][1])
	if near30 > 8e-2 {
		t.Errorf("5 cm, 30 pkt/bit BER = %v", near30)
	}
	near3 := berCell(t, tab.Rows[0][3])
	far3 := berCell(t, tab.Rows[len(tab.Rows)-1][3])
	if far3 < near3 {
		t.Errorf("BER should rise with distance: near %v, far %v", near3, far3)
	}
}

func TestFrequencyDiversityShape(t *testing.T) {
	tab, err := FrequencyDiversity(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Sum BERs across distances: combining must beat random.
	var ours, rnd float64
	for _, row := range tab.Rows {
		ours += berCell(t, row[1])
		rnd += berCell(t, row[2])
	}
	if ours >= rnd {
		t.Errorf("diversity combining (%v) should beat random sub-channel (%v)", ours, rnd)
	}
}

func TestRateVsHelperRateMonotone(t *testing.T) {
	tab, err := RateVsHelperRate(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, " bps"), 64)
		return v
	}
	first := parse(tab.Rows[0][1])
	last := parse(tab.Rows[len(tab.Rows)-1][1])
	if last < first {
		t.Errorf("achievable rate should grow with helper rate: %v -> %v", first, last)
	}
	if last < 500 {
		t.Errorf("achievable rate at 3070 pkt/s = %v, want >= 500", last)
	}
	// The simulated 5 cm link is slightly cleaner than the hardware's,
	// so the low-traffic point lands one rate notch above the paper's
	// 100 bps; the shape (rate tracking helper traffic) is what matters.
	if first > 200 {
		t.Errorf("achievable rate at 240 pkt/s = %v, want <= 200", first)
	}
}

func TestGoodSubchannelsVaries(t *testing.T) {
	tab, err := GoodSubchannels(Options{Seed: 7, Trials: 1, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	// Near distances should have plenty of good sub-channels, and the
	// sets should differ across distances.
	if tab.Rows[0][1] == "-" {
		t.Error("no good sub-channels at 5 cm")
	}
	distinct := map[string]bool{}
	for _, row := range tab.Rows {
		distinct[row[1]] = true
	}
	if len(distinct) < 3 {
		t.Errorf("good sub-channel sets should vary with distance, got %d distinct", len(distinct))
	}
}

func TestRawCSITraceLevels(t *testing.T) {
	trace, tab, err := RawCSITrace(units.Centimeters(5), 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	found := false
	for _, row := range tab.Rows {
		if row[0] == "distinct levels" && row[1] == "true" {
			found = true
		}
	}
	if !found {
		t.Errorf("5 cm trace should show distinct levels:\n%s", tab)
	}
	_, tabFar, err := RawCSITrace(1.0, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabFar.Rows {
		if row[0] == "distinct levels" && row[1] == "true" {
			t.Errorf("1 m trace should not show distinct levels:\n%s", tabFar)
		}
	}
}

func TestNormalizedPDFBimodalShare(t *testing.T) {
	tab, err := NormalizedPDF(8000, 13)
	if err != nil {
		t.Fatal(err)
	}
	var count int
	for _, row := range tab.Rows {
		if row[0] == "sub-channels with ±1 lobes" {
			_, err := fmtSscan(row[1], &count)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	// Paper: ~30% of sub-channels show the two-Gaussian structure. Our
	// simulated 5 cm link is cleaner, so the share is higher; the claim
	// under test is that the structure exists along with cross-channel
	// diversity in the noise spread.
	if count < 8 {
		t.Errorf("bimodal sub-channels = %d, want >= 8", count)
	}
	var spreadMin, spreadMax float64
	for _, row := range tab.Rows {
		if row[0] == "spread (min)" {
			spreadMin, _ = strconv.ParseFloat(row[1], 64)
		}
		if row[0] == "spread (max)" {
			spreadMax, _ = strconv.ParseFloat(row[1], 64)
		}
	}
	if spreadMax <= 1.05*spreadMin {
		t.Errorf("noise spread should vary across sub-channels: min %v, max %v", spreadMin, spreadMax)
	}
}

func fmtSscan(s string, out *int) (int, error) {
	var rest string
	n, err := sscan(s, out, &rest)
	return n, err
}

func sscan(s string, out *int, rest *string) (int, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, nil
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, err
	}
	*out = v
	*rest = strings.Join(fields[1:], " ")
	return 1, nil
}

func TestCorrelationRangeMonotone(t *testing.T) {
	opt := Options{Seed: 5, Trials: 2, PayloadLen: 12}
	tab, err := CorrelationRange(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The nearest distance must need a shorter (or equal) code than the
	// farthest.
	parse := func(cell string) int {
		if strings.HasPrefix(cell, ">") {
			return 1 << 20
		}
		v, _ := strconv.Atoi(cell)
		return v
	}
	near := parse(tab.Rows[0][1])
	far := parse(tab.Rows[len(tab.Rows)-1][1])
	if near == 0 {
		t.Error("no code length worked at 80 cm")
	}
	if far < near {
		t.Errorf("required code length should grow with distance: %d -> %d", near, far)
	}
}

func TestHelperLocationsHighDelivery(t *testing.T) {
	tab, err := HelperLocations(Options{Seed: 3, Trials: 3, PayloadLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		p, _ := strconv.ParseFloat(row[3], 64)
		if p < 0.5 {
			t.Errorf("location %s delivery = %v, want high", row[0], p)
		}
	}
}

func TestAmbientTrafficTracksLoad(t *testing.T) {
	tab, err := AmbientTraffic(Options{Seed: 4, Trials: 1, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, " bps"), 64)
		return v
	}
	// Peak hour (14:00) should achieve at least the evening rate.
	var peak, evening float64
	for _, row := range tab.Rows {
		if row[0] == "14:00" {
			peak = parse(row[2])
		}
		if row[0] == "20:00" {
			evening = parse(row[2])
		}
	}
	if peak < evening {
		t.Errorf("peak rate %v below evening rate %v", peak, evening)
	}
	if peak < 100 {
		t.Errorf("peak achievable rate = %v, want >= 100 bps", peak)
	}
}

func TestBeaconOnlyGrowsWithBeaconRate(t *testing.T) {
	tab, err := BeaconOnly(Options{Seed: 6, Trials: 1, PayloadLen: 20})
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(cell, " bps"), 64)
		return v
	}
	lo := parse(tab.Rows[0][1])
	hi := parse(tab.Rows[len(tab.Rows)-1][1])
	if hi < lo {
		t.Errorf("achievable rate should grow with beacon rate: %v -> %v", lo, hi)
	}
	if hi < 20 {
		t.Errorf("rate at 70 beacons/s = %v, want >= 20 bps", hi)
	}
}

func TestDownlinkBERShape(t *testing.T) {
	tab, err := DownlinkBER(3000, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Near clean, far dirty, and slower rates no worse at range.
	near20k := berCell(t, tab.Rows[0][1])
	if near20k > 1e-2 {
		t.Errorf("0.25 m 20 kbps BER = %v", near20k)
	}
	last := tab.Rows[len(tab.Rows)-1]
	far20k := berCell(t, last[1])
	far5k := berCell(t, last[3])
	if far20k < 1e-2 {
		t.Errorf("3.5 m 20 kbps BER = %v, should be degraded", far20k)
	}
	if far5k > far20k {
		t.Errorf("5 kbps (%v) should be no worse than 20 kbps (%v) at 3.5 m", far5k, far20k)
	}
}

func TestFalsePositivesLow(t *testing.T) {
	tab, err := FalsePositives(0.02, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		rate, _ := strconv.ParseFloat(row[2], 64)
		if rate > 200 {
			t.Errorf("false positives at %s = %v/hour, far above the paper's <30", row[0], rate)
		}
	}
}

func TestWiFiImpactWithinVariance(t *testing.T) {
	tab, err := WiFiImpact(units.Centimeters(5), 20, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) (mean, std float64) {
		parts := strings.Split(strings.TrimSuffix(cell, " MB/s"), "±")
		mean, _ = strconv.ParseFloat(parts[0], 64)
		std, _ = strconv.ParseFloat(parts[1], 64)
		return mean, std
	}
	for _, row := range tab.Rows {
		base, baseStd := parse(row[1])
		if base <= 0 {
			t.Fatalf("location %s baseline throughput = %v", row[0], base)
		}
		for i := 2; i < 4; i++ {
			mod, modStd := parse(row[i])
			if diff := abs(mod - base); diff > 3*(baseStd+modStd)+0.3*base {
				t.Errorf("location %s: tag modulation moved throughput %v -> %v (beyond variance)",
					row[0], base, mod)
			}
		}
	}
	// Throughput should fall with worse locations (2 vs 4).
	t2, _ := parse(tab.Rows[0][1])
	t4, _ := parse(tab.Rows[2][1])
	if t4 >= t2 {
		t.Errorf("location 4 throughput (%v) should be below location 2 (%v)", t4, t2)
	}
}

func TestPowerBudgetTable(t *testing.T) {
	tab := PowerBudget()
	text := tab.String()
	for _, want := range []string{"0.65 µW", "9.00 µW", "9.65 µW", "continuous at 1 ft", "true"} {
		if !strings.Contains(text, want) {
			t.Errorf("power budget missing %q:\n%s", want, text)
		}
	}
}

func TestSuiteQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke test is slow")
	}
	s := Suite{Seed: 1, Quick: true}
	var out strings.Builder
	// Run a representative subset end to end.
	err := s.Run(&out, map[string]bool{"fig3": true, "fig16": true, "power": true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "Figure 16", "Section 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestSuiteExperimentListComplete(t *testing.T) {
	s := Suite{Seed: 1, Quick: true}
	ids := map[string]bool{}
	for _, e := range s.Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig3", "fig4", "fig5", "fig6", "fig10a", "fig10b",
		"fig11", "fig12", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19a", "fig19b", "fig20", "power", "abl-combine", "abl-decide",
		"abl-bin", "abl-thresh", "inventory", "channels", "ack", "duty", "mac",
		"faults", "stream"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from the suite", want)
		}
	}
}

func TestCombiningAblationOrdering(t *testing.T) {
	tab, err := CombiningAblation(Options{Seed: 21, Trials: 3, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	// Across the sweep, MRC must not lose to best-single (individual
	// rows are too small-sample to compare alone).
	var mrc, single float64
	for _, row := range tab.Rows {
		mrc += berCell(t, row[1])
		single += berCell(t, row[3])
	}
	if mrc > single*1.5 {
		t.Errorf("MRC (%v) lost to best-single (%v) across the sweep", mrc, single)
	}
}

func TestBinningAblationOrdering(t *testing.T) {
	tab, err := BinningAblation(Options{Seed: 22, Trials: 3, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	var ts, eq float64
	for _, row := range tab.Rows {
		ts += berCell(t, row[1])
		eq += berCell(t, row[2])
	}
	if ts > eq {
		t.Errorf("timestamp binning (%v) lost to equal-count (%v) under bursts", ts, eq)
	}
}

func TestDecisionAblationRuns(t *testing.T) {
	tab, err := DecisionAblation(Options{Seed: 23, Trials: 2, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestThresholdAblation(t *testing.T) {
	tab, err := ThresholdAblation(3000, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At 3 m, the fixed threshold must be far worse than adaptive.
	last := tab.Rows[len(tab.Rows)-1]
	adaptive, fixed := berCell(t, last[1]), berCell(t, last[2])
	if fixed < 5*adaptive {
		t.Errorf("fixed threshold at 3 m (%v) should be much worse than adaptive (%v)", fixed, adaptive)
	}
}

func TestMultiTagInventoryIdentifiesAll(t *testing.T) {
	tab, err := MultiTagInventory(Options{Seed: 31, Trials: 1, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] != row[1] {
			t.Errorf("population %s: identified only %s", row[0], row[1])
		}
	}
}

func TestChannelSweepSimilar(t *testing.T) {
	tab, err := ChannelSweep(Options{Seed: 61, Trials: 3, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every channel decodes well at 30 cm (the §7.1 "similar" claim).
	for _, row := range tab.Rows {
		if ber := berCell(t, row[2]); ber > 3e-2 {
			t.Errorf("channel %s BER = %v, want small", row[0], ber)
		}
	}
}

func TestAckDetectionReliableNear(t *testing.T) {
	tab, err := AckDetection(Options{Seed: 62, Trials: 4, PayloadLen: 45})
	if err != nil {
		t.Fatal(err)
	}
	// Near row: all detections, no false alarms.
	near := tab.Rows[0]
	if near[1] != "4/4" {
		t.Errorf("ACK detections at 5 cm = %s, want 4/4", near[1])
	}
	for _, row := range tab.Rows {
		if row[2] != "0/4" {
			t.Errorf("false alarms at %s = %s, want 0/4", row[0], row[2])
		}
	}
}

func TestDutyCycledSensorFallsWithDistance(t *testing.T) {
	tab, err := DutyCycledSensor(63)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) int {
		v, _ := strconv.Atoi(cell)
		return v
	}
	first := parse(tab.Rows[0][3])
	last := parse(tab.Rows[len(tab.Rows)-1][3])
	if first <= last {
		t.Errorf("reports/hour should fall with tower distance: %d -> %d", first, last)
	}
	if first == 0 {
		t.Error("at 5 km the tag should report at least sometimes")
	}
}

func TestMACValidationShape(t *testing.T) {
	tab, err := MACValidation(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	parseFrac := func(cell string) float64 {
		v, _ := strconv.ParseFloat(cell, 64)
		return v
	}
	one := parseFrac(tab.Rows[0][3])
	sixteen := parseFrac(tab.Rows[len(tab.Rows)-1][3])
	if one != 0 {
		t.Errorf("single station collision fraction = %v, want 0", one)
	}
	if sixteen <= 0.05 {
		t.Errorf("16-station collision fraction = %v, want substantial", sixteen)
	}
}
