package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/radio"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// Supplementary experiments for claims the paper states in passing.

// ChannelSweep validates §7.1's "the results for the other 2.4 GHz Wi-Fi
// channels are similar": the uplink BER at a fixed geometry, repeated on
// Wi-Fi channels 1, 6, and 11.
func ChannelSweep(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title:   "§7.1 claim: uplink BER across 2.4 GHz Wi-Fi channels (30 cm, 30 pkt/bit)",
		Note:    "paper: results on other 2.4 GHz channels are similar to channel 6",
		Columns: []string{"Wi-Fi channel", "carrier", "BER"},
	}
	channels := []int{1, 6, 11}
	errsPer, err := parallel.Map(opt.engine(), len(channels)*opt.Trials, func(i int) (int, error) {
		ch := channels[i/opt.Trials]
		trial := i % opt.Trials
		chCfg := radio.DefaultChannelConfig()
		chCfg.Carrier = wifi.ChannelFreq(ch)
		res, err := core.RunUplinkTrial(core.UplinkTrialSpec{
			Config: core.Config{
				Seed:              opt.Seed + int64(trial)*9001 + int64(ch),
				TagReaderDistance: units.Centimeters(30),
				Channel:           &chCfg,
				Faults:            opt.Faults,
			},
			BitRate:                helperRate / 30,
			HelperPacketsPerSecond: helperRate,
			PayloadLen:             opt.PayloadLen,
			Mode:                   core.DecodeCSI,
		})
		if err != nil {
			return 0, err
		}
		return res.BitErrors, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, ch := range channels {
		errs, bits := 0, 0
		for trial := 0; trial < opt.Trials; trial++ {
			errs += errsPer[ci*opt.Trials+trial]
			bits += opt.PayloadLen
		}
		t.AddRow(fmt.Sprintf("%d", ch), wifi.ChannelFreq(ch).String(), fmtBER(errs, bits))
	}
	return t, nil
}

// AckDetection characterizes §4.1's one-bit ACK burst: detection and
// false-alarm rates of the bare-preamble ACK across distance.
func AckDetection(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		Title: "§4.1 claim: one-bit uplink ACK bursts (13-bit preamble only)",
		Note: "the tag acknowledges with a minimal burst; the reader detects " +
			"it by many-channel preamble correlation",
		Columns: []string{"distance", "detections", "false alarms"},
	}
	distances := []float64{5, 25, 45, 65}
	type outcome struct{ detected, falseAlarm bool }
	results, err := parallel.Map(opt.engine(), len(distances)*opt.Trials,
		func(i int) (outcome, error) {
			cm := distances[i/opt.Trials]
			trial := i % opt.Trials
			sys, err := core.NewSystem(core.Config{
				Seed:              opt.Seed + int64(trial)*11003 + int64(cm),
				TagReaderDistance: units.Centimeters(cm),
				Faults:            opt.Faults,
			})
			if err != nil {
				return outcome{}, err
			}
			if err := (&wifi.CBRSource{
				Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / helperRate,
			}).Start(); err != nil {
				return outcome{}, err
			}
			mod, err := sys.TransmitUplink(uplink.AckBits(), 1.0, helperRate/10)
			if err != nil {
				return outcome{}, err
			}
			sys.Run(mod.End() + 1.0)
			dec, err := sys.UplinkDecoder(helperRate / 10)
			if err != nil {
				return outcome{}, err
			}
			var out outcome
			out.detected, _, err = dec.DetectAck(sys.Series(), mod.Start())
			if err != nil {
				return outcome{}, err
			}
			// Probe an idle window for a false alarm.
			out.falseAlarm, _, err = dec.DetectAck(sys.Series(), mod.End()+0.3)
			if err != nil {
				return outcome{}, err
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	for di, cm := range distances {
		detected, falses := 0, 0
		for trial := 0; trial < opt.Trials; trial++ {
			o := results[di*opt.Trials+trial]
			if o.detected {
				detected++
			}
			if o.falseAlarm {
				falses++
			}
		}
		t.AddRow(fmt.Sprintf("%.0f cm", cm),
			fmt.Sprintf("%d/%d", detected, opt.Trials),
			fmt.Sprintf("%d/%d", falses, opt.Trials))
	}
	return t, nil
}

// DutyCycledSensor runs the §6 energy story end to end: a tag harvesting
// only from a TV tower at the given distance accumulates energy in its
// storage capacitor and transmits a 90-bit report whenever it can afford
// one. The table reports the sustainable reporting rate across tower
// distances.
func DutyCycledSensor(seed int64) (*Table, error) {
	t := &Table{
		Title: "§6 extension: duty-cycled reporting from TV harvesting alone",
		Note: "the always-on circuits draw 9.65 µW; past the break-even " +
			"distance the tag must duty cycle, and the report rate falls " +
			"with harvested power",
		Columns: []string{"TV tower distance", "harvest", "duty cycle", "reports/hour"},
	}
	h := tag.DefaultHarvester()
	for _, km := range []float64{5, 8, 10, 15, 20} {
		supply := h.TVHarvest(units.Meters(km * 1000))
		dc := tag.DutyCycle(supply, tag.CircuitLoadMicrowatt)
		// Simulate an hour of charge/spend with the reservoir: a report
		// is a 90-bit transmission at 100 bps plus the receiver staying
		// on to hear the query (1 s at the full circuit load), costing
		// E = 1.9 s × 9.65 µW.
		res := &tag.Reservoir{CapacityJoules: 100e-6}
		const reportSeconds = 1.9
		reportEnergy := reportSeconds * tag.CircuitLoadMicrowatt // µJ
		reports := 0
		const step = 1.0 // seconds
		for tsec := 0.0; tsec < 3600; tsec += step {
			res.Charge(supply, step)
			if res.Stored() >= reportEnergy*1e-6 {
				if res.Draw(tag.CircuitLoadMicrowatt, reportSeconds) {
					reports++
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.0f km", km),
			fmt.Sprintf("%.2f µW", float64(supply)),
			fmt.Sprintf("%.0f%%", 100*dc),
			fmt.Sprintf("%d", reports))
	}
	return t, nil
}
