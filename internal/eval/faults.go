package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/units"
)

// This file sweeps full query/response transactions over a fault-intensity
// ladder: the paper's retransmission argument (§4.1 — the reader simply
// repeats the query until the tag answers) only matters on a lossy channel,
// so we make the channel lossy on purpose and report how the attempt and
// backoff budgets absorb it.

// FaultIntensities is the intensity ladder swept by FaultResilience: the
// base schedule is scaled by each value, so 0 is the clean channel and 1
// the schedule as written.
var FaultIntensities = []float64{0, 0.25, 0.5, 0.75, 1}

// faultTrialSeedStride separates trial seeds in the resilience sweep.
const faultTrialSeedStride = 13007

// FaultResilience measures transaction success, retransmission attempts,
// and backoff time across the fault-intensity ladder. The schedule is
// opt.Faults when set, otherwise the built-in "lossy" profile (burst
// interference plus fading). Every (intensity, trial) cell builds an
// independent system, so the sweep parallelizes like every other
// experiment and stays bit-identical across worker counts.
func FaultResilience(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	base := opt.Faults
	if base == nil || base.Empty() {
		var err error
		base, err = faults.Profile("lossy", 1)
		if err != nil {
			return nil, err
		}
	}
	// Bound the per-trial worst case: a transaction that fails the whole
	// ladder still finishes in a few simulated seconds.
	txn := core.DefaultTransactionConfig()
	txn.ResponseTimeout = 1.0
	txn.MaxAttempts = 4

	type cell struct {
		ok, firstTry bool
		attempts     int
		backoff      float64
		injected     int64
		survived     bool
		snap         *obs.Snapshot
	}
	scaled := make([]*faults.Schedule, len(FaultIntensities))
	for i, f := range FaultIntensities {
		scaled[i] = base.Scaled(f)
	}
	var cells []cell
	err := parallel.Fold(opt.engine(), len(FaultIntensities)*opt.Trials, func(i int) (cell, error) {
		ii := i / opt.Trials
		trial := i % opt.Trials
		res, err := core.RunTransactionTrial(core.TransactionTrialSpec{
			// 250 bps at 35 cm is 4 packets per bit near the edge of CSI
			// range (Fig. 10): clean transactions succeed first try, and
			// injected loss shows up as retransmissions, not hard failure.
			Config: core.Config{
				Seed:              opt.Seed + int64(trial)*faultTrialSeedStride + int64(ii)*101,
				TagReaderDistance: units.Centimeters(35),
				Faults:            scaled[ii],
			},
			HelperPacketsPerSecond: helperRate,
			BitRate:                250,
			Data:                   0xFACE_0FF0_1234,
			Txn:                    txn,
		})
		if err != nil {
			return cell{}, err
		}
		r := res.Result
		return cell{
			ok:       r.ResponseOK,
			firstTry: r.ResponseOK && r.Attempts == 1,
			attempts: r.Attempts,
			backoff:  r.BackoffTotal,
			injected: r.Faults.Injected,
			survived: r.Faults.Survived,
			snap:     res.Metrics,
		}, nil
	}, func(c cell) error {
		opt.Obs.Merge(c.snap)
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Fault resilience: transactions on an impaired channel",
		Note: "paper §4.1: the reader retransmits queries until the tag answers; " +
			"success should degrade gracefully with fault intensity while " +
			"attempts and backoff absorb the losses",
		Columns: []string{"intensity", "success", "first-try", "mean attempts",
			"mean backoff (ms)", "injected/txn", "survived"},
	}
	idx := 0
	for _, f := range FaultIntensities {
		var ok, first, survived int
		var attempts int
		var backoff float64
		var injected int64
		for trial := 0; trial < opt.Trials; trial++ {
			c := cells[idx]
			idx++
			if c.ok {
				ok++
			}
			if c.firstTry {
				first++
			}
			if c.survived {
				survived++
			}
			attempts += c.attempts
			backoff += c.backoff
			injected += c.injected
		}
		n := float64(opt.Trials)
		t.AddRow(
			fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%d/%d", ok, opt.Trials),
			fmt.Sprintf("%d/%d", first, opt.Trials),
			fmt.Sprintf("%.2f", float64(attempts)/n),
			fmt.Sprintf("%.1f", backoff/n*1e3),
			fmt.Sprintf("%.1f", float64(injected)/n),
			fmt.Sprintf("%d/%d", survived, opt.Trials),
		)
	}
	return t, nil
}
