package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

// Fig17Distances are the downlink sweep distances in meters.
var Fig17Distances = []float64{0.25, 0.5, 1.0, 1.5, 2.0, 2.13, 2.5, 2.9, 3.2, 3.5}

// Fig17BitDurations are the packet/silence slot lengths (50, 100, 200 µs →
// 20, 10, 5 kbps).
var Fig17BitDurations = []float64{50e-6, 100e-6, 200e-6}

// DownlinkBER reproduces Fig. 17: downlink BER vs distance for the three
// bit rates. bitsPerPoint scales the run (the paper transmits 200 kilobits
// per point). The distance × rate grid fans out over workers goroutines
// (0 = GOMAXPROCS, 1 = serial) with identical results.
func DownlinkBER(bitsPerPoint int, seed int64, workers int) (*Table, error) {
	return DownlinkBERObs(bitsPerPoint, seed, workers, nil)
}

// DownlinkBERObs is DownlinkBER with sweep-level accounting: the trials are
// standalone circuit simulations (no System registry to snapshot), so the
// sweep itself counts trials, transmitted bits, and bit errors into reg.
// A nil registry skips the accounting.
func DownlinkBERObs(bitsPerPoint int, seed int64, workers int, reg *obs.Registry) (*Table, error) {
	if bitsPerPoint <= 0 {
		bitsPerPoint = 200_000
	}
	t := &Table{
		Title: "Figure 17: downlink BER vs distance",
		Note: "paper: 20 kbps reaches ~2.13 m and 10 kbps ~2.90 m at BER 1e-2 " +
			"(+16 dBm reader); lower rates reach farther",
		Columns: []string{"distance", "20 kbps", "10 kbps", "5 kbps"},
	}
	errsPer, err := parallel.Map(parallel.New(workers), len(Fig17Distances)*len(Fig17BitDurations),
		func(i int) (int, error) {
			m := Fig17Distances[i/len(Fig17BitDurations)]
			bd := Fig17BitDurations[i%len(Fig17BitDurations)]
			return core.DownlinkBERTrial(units.Meters(m), units.DBm(16), bd, bitsPerPoint,
				seed+int64(m*1000)+int64(bd*1e7))
		})
	if err != nil {
		return nil, err
	}
	for _, errs := range errsPer {
		reg.Counter("eval.downlink_trials").Inc()
		reg.Counter("eval.downlink_bits").Add(int64(bitsPerPoint))
		reg.Counter("eval.downlink_bit_errors").Add(int64(errs))
	}
	for di, m := range Fig17Distances {
		row := []string{fmt.Sprintf("%.2f m", m)}
		for bi := range Fig17BitDurations {
			row = append(row, fmtBER(errsPer[di*len(Fig17BitDurations)+bi], bitsPerPoint))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FalsePositives reproduces Fig. 18: the rate at which ordinary Wi-Fi
// traffic spuriously matches the downlink preamble and wakes the tag's
// microcontroller. The tag sits 30 cm from an AP streaming music to a
// client (the paper streams Pandora); hoursSimulated scales the run. The
// per-hour simulations fan out over workers goroutines (0 = GOMAXPROCS,
// 1 = serial) with identical results.
func FalsePositives(hoursSimulated float64, seed int64, workers int) (*Table, error) {
	if hoursSimulated <= 0 {
		hoursSimulated = 0.25
	}
	t := &Table{
		Title: "Figure 18: downlink false positives per hour",
		Note: "paper: fewer than 30 events/hour across the day — normal traffic " +
			"rarely imitates the preamble's structure; our digital " +
			"run-length matcher is stricter than the analog prototype's, so " +
			"the measured rate here is near zero (the claim holds " +
			"conservatively)",
		Columns: []string{"time of day", "traffic pkt/s", "false positives/hour"},
	}
	hours := []float64{10, 12, 14, 16, 18}
	type counts struct{ matches, pkts int }
	results, err := parallel.Map(parallel.New(workers), len(hours), func(i int) (counts, error) {
		hour := hours[i]
		matches, pkts, err := falsePositiveRun(wifi.OfficeLoad(hour), hoursSimulated*3600, seed+int64(hour))
		return counts{matches, pkts}, err
	})
	if err != nil {
		return nil, err
	}
	for i, hour := range hours {
		perHour := float64(results[i].matches) / hoursSimulated
		t.AddRow(fmt.Sprintf("%02.0f:00", hour),
			fmt.Sprintf("%.0f", float64(results[i].pkts)/(hoursSimulated*3600)),
			fmt.Sprintf("%.1f", perHour))
	}
	return t, nil
}

// falsePositiveRun simulates traffic for the given duration and counts
// preamble matches at the tag's edge detector. It builds a bare medium
// (no channel measurements are needed, only packet timing). Consecutive
// transmissions separated by less than the circuit's discharge window
// merge into one energy burst.
func falsePositiveRun(load float64, seconds float64, seed int64) (matches, pkts int, err error) {
	rnd := rng.New(seed)
	eng := sim.NewEngine()
	medium := wifi.NewMedium(eng, rnd.Split("medium"))
	ap := medium.AddStation("ap", wifi.MAC{1}, wifi.Rate54)
	client := medium.AddStation("client", wifi.MAC{2}, wifi.Rate54)
	// Streaming traffic: bursty, heavy-tailed media frames from the AP,
	// a closed-loop TCP download whose self-clocked ACKs are the short
	// packets (~36 µs airtime) that land in the preamble's band, and
	// background office chatter.
	if err := (&wifi.BurstySource{
		Station: ap, Dst: wifi.MAC{2}, Payload: 600,
		MeanBurst: 12, MeanGap: 0.08, InBurstInterval: 0.0008,
		Rnd: rnd.Split("stream"),
	}).Start(); err != nil {
		return 0, 0, err
	}
	if err := (&wifi.TCPSource{
		Sender: ap, Receiver: client, Rnd: rnd.Split("tcp"),
		// Streaming-like pacing: a modest window over a wired RTT, so
		// the flow contributes a few hundred packets/s rather than
		// saturating the medium.
		MaxWindow: 8, ServerRTT: 0.03,
	}).Start(); err != nil {
		return 0, 0, err
	}
	if load > 100 {
		if err := (&wifi.PoissonSource{
			Station: client, Dst: wifi.MAC{1}, Payload: 300,
			Rate: load - 100, Rnd: rnd.Split("office"),
		}).Start(); err != nil {
			return 0, 0, err
		}
	}
	dec, err := tag.NewDecoder(50e-6)
	if err != nil {
		return 0, 0, err
	}
	// The comparator output follows packet energy: ON during any
	// transmission, OFF in gaps longer than the discharge window.
	const mergeGap = 20e-6
	var lastEnd float64
	var on bool
	medium.AddListener(func(tx *wifi.Transmission) {
		pkts++
		if tx.Start > lastEnd+mergeGap {
			if on {
				if dec.OnEdge(lastEnd, false) {
					matches++
				}
			}
			if dec.OnEdge(tx.Start, true) {
				matches++
			}
			on = true
		}
		if tx.End > lastEnd {
			lastEnd = tx.End
		}
	})
	eng.Run(seconds)
	return matches, pkts, nil
}

// PowerBudget reproduces the §6 power numbers: circuit loads, harvesting
// at one foot from the reader, and the TV-assisted duty cycle at 10 km.
func PowerBudget() *Table {
	h := tag.DefaultHarvester()
	t := &Table{
		Title: "Section 6: tag power budget",
		Note: "paper: tx 0.65 µW, rx 9.0 µW; continuous operation at 1 ft from " +
			"the reader; ~50% duty cycle at 10 km from a TV tower",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("transmit circuit", fmt.Sprintf("%.2f µW", tag.TransmitPowerMicrowatt))
	t.AddRow("receive circuit", fmt.Sprintf("%.2f µW", tag.ReceivePowerMicrowatt))
	t.AddRow("total always-on load", fmt.Sprintf("%.2f µW", tag.CircuitLoadMicrowatt))
	oneFoot := h.WiFiHarvest(units.DBm(16), units.Meters(0.3048))
	t.AddRow("Wi-Fi harvest at 1 ft", fmt.Sprintf("%.2f µW", float64(oneFoot)))
	t.AddRow("continuous at 1 ft", fmt.Sprintf("%v", float64(oneFoot) >= tag.CircuitLoadMicrowatt))
	tv := h.TVHarvest(units.Meters(10_000))
	t.AddRow("TV harvest at 10 km", fmt.Sprintf("%.2f µW", float64(tv)))
	t.AddRow("duty cycle at 10 km", fmt.Sprintf("%.0f%%", 100*tag.DutyCycle(tv, tag.CircuitLoadMicrowatt)))
	return t
}
