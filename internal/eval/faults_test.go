package eval

// Fault-injection determinism tests: injected impairments draw from a
// dedicated per-trial stream, so a faulted sweep must stay exactly as
// deterministic as a clean one. Two tests pin that:
//
//   - TestFaultsWorkerInvariance renders the fault-resilience sweep (with
//     the all-kinds chaos profile) at Workers=1 and Workers=8 and requires
//     byte-identical metrics JSON.
//   - TestFaultsGolden pins the exact bytes against
//     testdata/faults_golden.json. Regenerate after an intentional change
//     to the injector or transaction path with:
//
//	go test ./internal/eval/ -run TestFaultsGolden -update

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// faultsJSON runs the fault-resilience experiment under the chaos profile
// (every fault kind active) at the given worker count and returns the
// deterministic metrics JSON.
func faultsJSON(t *testing.T, workers int) []byte {
	t.Helper()
	sched, err := faults.Profile("chaos", 1)
	if err != nil {
		t.Fatal(err)
	}
	suite := Suite{Seed: 7, Quick: true, Workers: workers, Metrics: obs.NewRegistry(), Faults: sched}
	if err := suite.Run(io.Discard, map[string]bool{"faults": true}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suite.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultsWorkerInvariance is the property behind `wbbench -faults
// <profile> -metrics`: identical schedule and seed must give byte-identical
// aggregates at every worker count.
func TestFaultsWorkerInvariance(t *testing.T) {
	serial := faultsJSON(t, 1)
	parallel := faultsJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("faulted metrics differ between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

func TestFaultsGolden(t *testing.T) {
	got := faultsJSON(t, 4)
	path := filepath.Join("testdata", "faults_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("faulted metrics differ from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
