package eval

// Golden-trace regression tests: two recorded CSI/RSSI traces are checked
// into testdata/ in the wbtrace format, and the decoder's exact output on
// them — decoded bits, bit errors, detection, correlation, selected
// sub-channels — is pinned byte for byte. Any change to the conditioning,
// binning, combining, or decision logic that alters a decoded trace shows
// up here as a readable diff, not as a statistical drift in a sweep.
//
// Regenerate after an intentional pipeline change with:
//
//	go test ./internal/eval/ -run TestGoldenTraces -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/csi"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

var updateGolden = flag.Bool("update", false, "regenerate golden traces and expectations")

// goldenTxStart is when the recorded transmissions begin (matching the
// warm-up used by core.RunUplinkTrial).
const goldenTxStart = 1.0

// goldenSpec pins every parameter needed to regenerate and decode one
// trace; the decode side uses only name, bitRate, payloadLen, and seed.
type goldenSpec struct {
	name       string
	distance   units.Meters
	pktRate    float64
	bitRate    float64
	payloadLen int
	seed       int64
}

// Two operating points: a short clean link that decodes error-free, and a
// long noisy one where the decoder works near its limit — the regime where
// pipeline regressions actually change bits.
var goldenSpecs = []goldenSpec{
	{"clean_5cm", units.Centimeters(5), 400, 100, 12, 41},
	{"noisy_180cm", units.Centimeters(180), 400, 100, 12, 43},
}

func bitString(bits []bool) string {
	var b strings.Builder
	for _, v := range bits {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// renderGolden formats a decode outcome as the golden file contents.
// Floats use shortest round-trip formatting, so the text pins the exact
// values.
func renderGolden(spec goldenSpec, sent []bool, res *uplink.Result, dec *uplink.Decoder) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", spec.name)
	fmt.Fprintf(&b, "sent %s\n", bitString(sent))
	fmt.Fprintf(&b, "decoded %s\n", bitString(res.Payload))
	fmt.Fprintf(&b, "biterrors %d\n", core.CountBitErrors(res.Payload, sent))
	fmt.Fprintf(&b, "detected %v\n", dec.Detected(res))
	fmt.Fprintf(&b, "correlation %s\n",
		strconv.FormatFloat(res.PreambleCorrelation, 'g', -1, 64))
	fmt.Fprintf(&b, "measurements_per_bit %s\n",
		strconv.FormatFloat(res.MeasurementsPerBit, 'g', -1, 64))
	b.WriteString("good")
	for _, id := range res.Good {
		fmt.Fprintf(&b, " %s", id)
	}
	b.WriteString("\n")
	return b.String()
}

// decodeGoldenTrace reads a trace off disk and runs the paper's CSI decode
// at the spec's operating point.
func decodeGoldenTrace(spec goldenSpec) ([]bool, *uplink.Result, *uplink.Decoder, error) {
	f, err := os.Open(filepath.Join("testdata", spec.name+".wbtrace"))
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	s, err := csi.ReadSeries(f)
	if err != nil {
		return nil, nil, nil, err
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(1 / spec.bitRate))
	if err != nil {
		return nil, nil, nil, err
	}
	sent := core.RandomPayload(spec.payloadLen, spec.seed+7777)
	res, err := dec.DecodeCSI(s, goldenTxStart, spec.payloadLen)
	if err != nil {
		return nil, nil, nil, err
	}
	return sent, res, dec, nil
}

func TestGoldenTraces(t *testing.T) {
	for _, spec := range goldenSpecs {
		t.Run(spec.name, func(t *testing.T) {
			if *updateGolden {
				if err := writeGoldenFiles(spec); err != nil {
					t.Fatal(err)
				}
			}
			sent, res, dec, err := decodeGoldenTrace(spec)
			if err != nil {
				t.Fatalf("decode recorded trace: %v (run with -update to regenerate)", err)
			}
			got := renderGolden(spec, sent, res, dec)
			want, err := os.ReadFile(filepath.Join("testdata", spec.name+".golden"))
			if err != nil {
				t.Fatalf("read golden: %v (run with -update to regenerate)", err)
			}
			if !bytes.Equal([]byte(got), want) {
				t.Errorf("decode differs from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// writeGoldenFiles regenerates one spec's trace and expectation files. The
// golden expectations are computed from the trace as re-read from disk, so
// the stored text always matches what TestGoldenTraces will compute.
func writeGoldenFiles(spec goldenSpec) error {
	sys, err := core.NewSystem(core.Config{
		Seed:              spec.seed,
		TagReaderDistance: spec.distance,
	})
	if err != nil {
		return err
	}
	// CBR helper traffic at the spec's (reduced) packet rate keeps the
	// recorded files small while still giving the decoder several
	// measurements per bit.
	(&wifi.CBRSource{
		Station:  sys.Helper,
		Dst:      wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload:  200,
		Interval: 1 / spec.pktRate,
	}).Start()
	payload := core.RandomPayload(spec.payloadLen, spec.seed+7777)
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), goldenTxStart, spec.bitRate)
	if err != nil {
		return err
	}
	sys.Run(mod.End() + 0.2)
	trimmed := trimSeries(sys.Series(), mod.Start()-0.05, mod.End()+0.05)
	f, err := os.Create(filepath.Join("testdata", spec.name+".wbtrace"))
	if err != nil {
		return err
	}
	if err := csi.WriteSeries(f, trimmed); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sent, res, dec, err := decodeGoldenTrace(spec)
	if err != nil {
		return fmt.Errorf("regenerated trace does not decode: %w", err)
	}
	return os.WriteFile(filepath.Join("testdata", spec.name+".golden"),
		[]byte(renderGolden(spec, sent, res, dec)), 0o644)
}

// trimSeries keeps the measurements within [lo, hi). The decoder slices to
// the frame anyway (frameRange), so trimming does not change the decode.
func trimSeries(s *csi.Series, lo, hi float64) *csi.Series {
	out := &csi.Series{}
	for _, m := range s.Measurements {
		if m.Timestamp >= lo && m.Timestamp < hi {
			out.Append(m)
		}
	}
	return out
}
