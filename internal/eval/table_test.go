package eval

import (
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:   "Test",
		Note:    "a note",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	if !strings.Contains(out, "== Test ==") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "a note") {
		t.Errorf("missing note: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Header and rows align on the first column width (3).
	if !strings.HasPrefix(lines[2], "a  ") {
		t.Errorf("header not padded: %q", lines[2])
	}
}

func TestFmtBER(t *testing.T) {
	if got := fmtBER(0, 1000); got != "<5.0e-04" {
		t.Errorf("zero-error BER = %q, want floored", got)
	}
	if got := fmtBER(10, 1000); got != "1.0e-02" {
		t.Errorf("BER = %q", got)
	}
	if got := fmtBER(1, 0); got != "n/a" {
		t.Errorf("no-bits BER = %q", got)
	}
}

func TestBerValue(t *testing.T) {
	if got := berValue(0, 1000); got != 0.0005 {
		t.Errorf("floored BER = %v", got)
	}
	if got := berValue(5, 100); got != 0.05 {
		t.Errorf("BER = %v", got)
	}
	if got := berValue(1, 0); got != 1 {
		t.Errorf("degenerate BER = %v", got)
	}
}
