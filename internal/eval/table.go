// Package eval regenerates every table and figure of the paper's
// evaluation (§7–§10) from the simulated system: uplink BER vs distance
// for CSI and RSSI (Fig. 10), the frequency-diversity ablation (Fig. 11),
// achievable rate vs helper traffic (Fig. 12), helper placement (Fig. 14),
// ambient-traffic and beacon-only operation (Figs. 15–16), downlink BER
// and false positives (Figs. 17–18), the impact of tag reflections on
// Wi-Fi throughput (Fig. 19), and the coded long-range sweep (Fig. 20),
// plus the raw-trace and PDF figures (Figs. 3–6) and the §6 power budget.
//
// Every experiment takes an explicit seed and a scale knob so the same
// code serves quick tests and full paper-scale runs.
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title identifies the experiment (e.g. "Figure 10a").
	Title string
	// Note carries the paper's reference result for comparison.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// fmtBER formats a bit error rate the way the paper reports it: zero
// errors over n bits floor at 1/(2n), mirroring the paper's "if we do not
// see any bit errors, we set the BER to 5×10⁻⁴" for 1000-bit runs.
func fmtBER(errors, bits int) string {
	if bits <= 0 {
		return "n/a"
	}
	ber := float64(errors) / float64(bits)
	if errors == 0 {
		ber = 0.5 / float64(bits)
		return fmt.Sprintf("<%.1e", ber)
	}
	return fmt.Sprintf("%.1e", ber)
}

// berValue returns the numeric BER with the same floor.
func berValue(errors, bits int) float64 {
	if bits <= 0 {
		return 1
	}
	if errors == 0 {
		return 0.5 / float64(bits)
	}
	return float64(errors) / float64(bits)
}
