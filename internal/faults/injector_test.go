package faults

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

func newTestInjector(t *testing.T, s *Schedule, seed int64) *Injector {
	t.Helper()
	in, err := NewInjector(s, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInjectorValidates(t *testing.T) {
	bad := &Schedule{Windows: []Window{{Kind: "nope", Start: 0, End: 1, Intensity: 1}}}
	if _, err := NewInjector(bad, rng.New(1)); err == nil {
		t.Error("NewInjector must reject invalid schedules")
	}
	if _, err := NewInjector(&Schedule{}, nil); err == nil {
		t.Error("NewInjector must reject a nil rng stream")
	}
}

// TestZeroIntensityDrawsNothing is the heart of the determinism contract:
// a zero-intensity schedule must consume no randomness and perturb
// nothing, so it is indistinguishable from running without an injector.
func TestZeroIntensityDrawsNothing(t *testing.T) {
	sched, err := Profile("chaos", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := newTestInjector(t, sched.Scaled(0), 7)
	st := &wifi.Station{Name: "helper"}
	h := [][]complex128{{1 + 2i, 3}}
	m := csi.Measurement{Timestamp: 1, CSI: [][]float64{{5, 6}}, RSSI: []float64{-40}}
	raw := []float64{1, 2, 3}
	ts := []float64{0.5, 1.5, 2.5}
	for _, probe := range []float64{0.1, 1, 2.5, 10, 29.9} {
		if in.FrameLost(st, probe) {
			t.Errorf("FrameLost at %g with zero intensity", probe)
		}
		if got := in.SNROffset(probe); got != 0 {
			t.Errorf("SNROffset(%g) = %v", probe, got)
		}
		if _, ok := in.StalledUntil(st, probe); ok {
			t.Errorf("StalledUntil at %g with zero intensity", probe)
		}
		in.AttenuateChannel(probe, h)
		if in.CorruptMeasurement(probe, &m) {
			t.Errorf("CorruptMeasurement dropped at %g", probe)
		}
		if got := in.ClockDrift(probe); got != 0 {
			t.Errorf("ClockDrift(%g) = %v", probe, got)
		}
		if in.MarkerLost(0, probe) {
			t.Errorf("MarkerLost at %g", probe)
		}
	}
	in.ImpairChannel(uplink.ChannelID{Antenna: 0, Subchannel: 1}, ts, raw)
	if h[0][0] != 1+2i || raw[1] != 2 || m.CSI[0][0] != 5 {
		t.Error("zero-intensity hooks mutated their inputs")
	}
	if in.Tally().Total() != 0 {
		t.Errorf("tally = %+v, want all zero", in.Tally())
	}
	// No draws: the stream must still be in its initial state.
	want := rng.New(7).Int63()
	if got := in.rnd.Int63(); got != want {
		t.Errorf("injector consumed randomness at zero intensity (next draw %d, want %d)", got, want)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	st := &wifi.Station{Name: "helper"}
	if in.FrameLost(st, 1) || in.MarkerLost(0, 1) {
		t.Error("nil injector injected")
	}
	if _, ok := in.StalledUntil(st, 1); ok {
		t.Error("nil injector stalled")
	}
	if in.SNROffset(1) != 0 || in.ClockDrift(1) != 0 {
		t.Error("nil injector offset")
	}
	in.AttenuateChannel(1, nil)
	in.ImpairChannel(uplink.ChannelID{}, nil, nil)
	if in.CorruptMeasurement(1, nil) {
		t.Error("nil injector dropped a measurement")
	}
	if in.Tally().Total() != 0 {
		t.Error("nil injector tallied")
	}
	in.Instrument(obs.NewRegistry())
	if in.Schedule() != nil {
		t.Error("nil injector has a schedule")
	}
}

func TestFrameLostScalesWithIntensity(t *testing.T) {
	const trials = 4000
	st := &wifi.Station{Name: "helper"}
	rates := make([]float64, 0, 3)
	for _, intensity := range []float64{0.2, 0.6, 1} {
		s := &Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: intensity}}}
		in := newTestInjector(t, s, 11)
		lost := 0
		for i := 0; i < trials; i++ {
			if in.FrameLost(st, 0.5) {
				lost++
			}
		}
		rate := float64(lost) / trials
		want := burstLossMax * intensity
		if math.Abs(rate-want) > 0.05 {
			t.Errorf("intensity %g: loss rate %.3f, want ~%.3f", intensity, rate, want)
		}
		rates = append(rates, rate)
		if got := in.Tally().Burst; got != int64(lost) {
			t.Errorf("tally.Burst = %d, want %d", got, lost)
		}
	}
	if !(rates[0] < rates[1] && rates[1] < rates[2]) {
		t.Errorf("loss rate not monotone in intensity: %v", rates)
	}
}

func TestStalledUntilScalesWithIntensity(t *testing.T) {
	mk := func(intensity float64) *Schedule {
		return &Schedule{Windows: []Window{{Kind: Stall, Start: 10, End: 20, Intensity: intensity}}}
	}
	helper := &wifi.Station{Name: "helper"}
	reader := &wifi.Station{Name: "reader"}

	in := newTestInjector(t, mk(0.5), 3)
	until, ok := in.StalledUntil(helper, 11)
	if !ok || math.Abs(until-15) > 1e-9 {
		t.Errorf("StalledUntil(11) = %g, %v; want 15, true (stall covers first half)", until, ok)
	}
	if _, ok := in.StalledUntil(helper, 16); ok {
		t.Error("second half of a 0.5-intensity stall window must be free")
	}
	if _, ok := in.StalledUntil(reader, 11); ok {
		t.Error("the reader must be exempt from stalls")
	}
	full := newTestInjector(t, mk(1), 3)
	if until, ok := full.StalledUntil(helper, 19.9); !ok || math.Abs(until-20) > 1e-9 {
		t.Errorf("full-intensity stall: StalledUntil(19.9) = %g, %v; want 20, true", until, ok)
	}
}

func TestAttenuateChannelAndSNROffsetAgree(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: Fade, Start: 0, End: 10, Intensity: 1}}}
	in := newTestInjector(t, s, 5)
	if got, want := float64(in.SNROffset(5)), -fadeDepthDB; math.Abs(got-want) > 1e-9 {
		t.Errorf("SNROffset = %g dB, want %g", got, want)
	}
	h := [][]complex128{{complex(2, 0)}}
	in.AttenuateChannel(5, h)
	// Amplitude ratio must match the dB offset: 20·log10(|h'|/|h|) = -14.
	gotDB := 20 * math.Log10(real(h[0][0])/2)
	if math.Abs(gotDB-(-fadeDepthDB)) > 1e-9 {
		t.Errorf("amplitude fade = %g dB, want %g", gotDB, -fadeDepthDB)
	}
}

func TestCorruptMeasurementRowZeroing(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: CSIDrop, Start: 0, End: 5000, Intensity: 1}}}
	in := newTestInjector(t, s, 9)
	drops, zeroed, kept := 0, 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		m := csi.Measurement{
			Timestamp: float64(i),
			CSI:       [][]float64{{1, 1}, {1, 1}, {1, 1}},
			RSSI:      []float64{1, 1, 1},
		}
		if in.CorruptMeasurement(float64(i), &m) {
			drops++
			continue
		}
		zero := false
		for a := range m.CSI {
			if m.CSI[a][0] == 0 && m.CSI[a][1] == 0 {
				zero = true
				if m.RSSI[a] != 0 {
					t.Fatal("zeroed CSI row must zero the matching RSSI")
				}
			}
		}
		if zero {
			zeroed++
		} else {
			kept++
		}
	}
	dropRate := float64(drops) / trials
	if math.Abs(dropRate-csiDropMeasurementMax) > 0.04 {
		t.Errorf("drop rate %.3f, want ~%.2f", dropRate, csiDropMeasurementMax)
	}
	if zeroed == 0 || kept == 0 {
		t.Errorf("want a mix of zeroed (%d) and intact (%d) measurements", zeroed, kept)
	}
	if got := in.Tally().CSIDrop; got != int64(drops+zeroed) {
		t.Errorf("tally.CSIDrop = %d, want %d", got, drops+zeroed)
	}
}

func TestImpairChannelOnlyTouchesCoveredSamples(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: Corrupt, Start: 1, End: 2, Intensity: 1}}}
	in := newTestInjector(t, s, 13)
	n := 300
	ts := make([]float64, n)
	raw := make([]float64, n)
	for i := range ts {
		ts[i] = 3 * float64(i) / float64(n) // spans [0,3); middle third covered
		raw[i] = 1
	}
	in.ImpairChannel(uplink.ChannelID{Antenna: 1, Subchannel: 4}, ts, raw)
	changed := 0
	for i := range raw {
		if raw[i] != 1 {
			if ts[i] < 1 || ts[i] >= 2 {
				t.Fatalf("sample at t=%g outside the window was corrupted", ts[i])
			}
			changed++
		}
	}
	if changed == 0 {
		t.Error("no samples corrupted inside a full-intensity window")
	}
	if got := in.Tally().Corrupt; got != int64(changed) {
		t.Errorf("tally.Corrupt = %d, want %d", got, changed)
	}
}

func TestClockDriftScale(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: Drift, Start: 0, End: 10, Intensity: 0.5}}}
	in := newTestInjector(t, s, 1)
	if got, want := in.ClockDrift(5), driftSkewMax*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("ClockDrift = %g, want %g", got, want)
	}
	if got := in.ClockDrift(11); got != 0 {
		t.Errorf("ClockDrift outside window = %g", got)
	}
}

// TestInjectorReplaysIdentically: equal seed and schedule produce the
// identical draw sequence, the per-trial determinism the eval layer
// depends on.
func TestInjectorReplaysIdentically(t *testing.T) {
	sched, err := Profile("chaos", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]bool, Tally) {
		in := newTestInjector(t, sched, 42)
		st := &wifi.Station{Name: "helper"}
		var outcomes []bool
		for i := 0; i < 500; i++ {
			at := float64(i) * 0.06
			outcomes = append(outcomes, in.FrameLost(st, at), in.MarkerLost(i, at))
			m := csi.Measurement{Timestamp: at, CSI: [][]float64{{1}, {1}}, RSSI: []float64{1, 1}}
			outcomes = append(outcomes, in.CorruptMeasurement(at, &m))
		}
		return outcomes, in.Tally()
	}
	o1, t1 := run()
	o2, t2 := run()
	if !reflect.DeepEqual(o1, o2) || t1 != t2 {
		t.Error("identical seed+schedule did not replay identically")
	}
	if t1.Total() == 0 {
		t.Error("chaos profile at 0.8 injected nothing in 30 simulated seconds")
	}
}

func TestInstrumentCounts(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: 1}}}
	in := newTestInjector(t, s, 2)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	st := &wifi.Station{Name: "helper"}
	n := int64(0)
	for i := 0; i < 100; i++ {
		if in.FrameLost(st, 0.5) {
			n++
		}
	}
	snap := reg.Snapshot()
	var burst int64
	for _, c := range snap.Counters {
		if c.Name == "faults.injected.burst" {
			burst = c.Value
		}
	}
	if burst != n {
		t.Errorf("faults.injected.burst = %d, want %d", burst, n)
	}
	windows := -1.0
	for _, g := range snap.Gauges {
		if g.Name == "faults.windows" {
			windows = g.Value
		}
	}
	if windows != 1 {
		t.Errorf("faults.windows = %g, want 1", windows)
	}
}
