package faults

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", Schedule{}, true},
		{"good", Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: 0.5}}}, true},
		{"out of order windows are legal", Schedule{Windows: []Window{
			{Kind: Fade, Start: 5, End: 6, Intensity: 1},
			{Kind: Fade, Start: 0, End: 1, Intensity: 1},
		}}, true},
		{"overlapping windows are legal", Schedule{Windows: []Window{
			{Kind: Burst, Start: 0, End: 2, Intensity: 0.5},
			{Kind: Burst, Start: 1, End: 3, Intensity: 0.8},
		}}, true},
		{"unknown kind", Schedule{Windows: []Window{{Kind: "gremlins", Start: 0, End: 1, Intensity: 1}}}, false},
		{"inverted range", Schedule{Windows: []Window{{Kind: Burst, Start: 2, End: 1, Intensity: 1}}}, false},
		{"empty range", Schedule{Windows: []Window{{Kind: Burst, Start: 1, End: 1, Intensity: 1}}}, false},
		{"intensity above one", Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: 1.1}}}, false},
		{"negative intensity", Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: -0.1}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestIntensityAtTakesMaxOverOverlaps(t *testing.T) {
	s := &Schedule{Windows: []Window{
		{Kind: Burst, Start: 0, End: 2, Intensity: 0.3},
		{Kind: Burst, Start: 1, End: 3, Intensity: 0.8},
		{Kind: Fade, Start: 0, End: 10, Intensity: 0.5},
	}}
	cases := []struct {
		k    Kind
		t    float64
		want float64
	}{
		{Burst, 0.5, 0.3},
		{Burst, 1.5, 0.8}, // overlap: max wins
		{Burst, 2.5, 0.8},
		{Burst, 3.0, 0},  // End is exclusive
		{Burst, -0.1, 0}, // before any window
		{Fade, 1.5, 0.5}, // kinds are independent
		{Drift, 1.5, 0},  // absent kind
	}
	for _, tc := range cases {
		if got := s.IntensityAt(tc.k, tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("IntensityAt(%s, %g) = %g, want %g", tc.k, tc.t, got, tc.want)
		}
	}
}

func TestScaled(t *testing.T) {
	s := &Schedule{Windows: []Window{{Kind: Burst, Start: 0, End: 1, Intensity: 0.8}}}
	half := s.Scaled(0.5)
	if got := half.Windows[0].Intensity; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Scaled(0.5) intensity = %g, want 0.4", got)
	}
	zero := s.Scaled(0)
	if zero.Empty() {
		t.Error("Scaled(0) must keep windows (neutralized, not removed)")
	}
	if got := zero.IntensityAt(Burst, 0.5); got != 0 {
		t.Errorf("Scaled(0) intensity = %g, want 0", got)
	}
	if s.Windows[0].Intensity != 0.8 {
		t.Error("Scaled must not mutate the receiver")
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	in := "burst@0.5:2x0.8;fade@1:3x0.5;stall@0:30x1"
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Windows) != 3 {
		t.Fatalf("parsed %d windows, want 3", len(s.Windows))
	}
	round, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, round) {
		t.Errorf("round trip mismatch:\n first %+v\nsecond %+v", s, round)
	}
}

func TestParseJSON(t *testing.T) {
	array := `[{"kind":"burst","start":0,"end":1,"intensity":0.5}]`
	object := `{"windows":[{"kind":"fade","start":1,"end":2,"intensity":1}]}`
	s, err := Parse(array)
	if err != nil || len(s.Windows) != 1 || s.Windows[0].Kind != Burst {
		t.Fatalf("Parse(array) = %+v, %v", s, err)
	}
	s, err = Parse(object)
	if err != nil || len(s.Windows) != 1 || s.Windows[0].Kind != Fade {
		t.Fatalf("Parse(object) = %+v, %v", s, err)
	}
	// JSON emitted by the struct itself parses back.
	b, err := json.Marshal(&Schedule{Windows: []Window{{Kind: Drift, Start: 0, End: 5, Intensity: 0.2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(string(b)); err != nil {
		t.Errorf("Parse(Marshal output %s): %v", b, err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"burst",               // no @
		"burst@1x0.5",         // no range
		"burst@1:2",           // no intensity
		"burst@one:2x0.5",     // bad float
		"burst@1:2x1.5",       // intensity out of range
		"gremlins@1:2x0.5",    // unknown kind
		"burst@2:1x0.5",       // inverted
		`[{"kind":"burst"`,    // truncated JSON
		`{"windows": "nope"}`, // wrong JSON shape
	}
	for _, in := range bad {
		if s, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, s)
		}
	}
}

func TestParseSpec(t *testing.T) {
	if s, err := ParseSpec(""); s != nil || err != nil {
		t.Errorf("ParseSpec(\"\") = %v, %v; want nil, nil", s, err)
	}
	s, err := ParseSpec("chaos")
	if err != nil || s.Empty() {
		t.Fatalf("ParseSpec(chaos) = %+v, %v", s, err)
	}
	half, err := ParseSpec("lossy:0.5")
	if err != nil {
		t.Fatalf("ParseSpec(lossy:0.5): %v", err)
	}
	full, err := ParseSpec("lossy")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := half.Windows[0].Intensity, full.Windows[0].Intensity*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("lossy:0.5 intensity = %g, want %g", got, want)
	}
	if _, err := ParseSpec("nonesuch"); err == nil || !strings.Contains(err.Error(), "unknown profile") {
		t.Errorf("ParseSpec(nonesuch) err = %v, want unknown profile", err)
	}
	if _, err := ParseSpec("lossy:2"); err == nil {
		t.Error("ParseSpec(lossy:2) must reject out-of-range intensity")
	}
	// Inline schedules route through Parse.
	if s, err := ParseSpec("burst@0:1x0.5"); err != nil || len(s.Windows) != 1 {
		t.Errorf("ParseSpec(inline) = %+v, %v", s, err)
	}
}

func TestProfilesAreValid(t *testing.T) {
	for _, name := range ProfileNames() {
		s, err := Profile(name, 1)
		if err != nil {
			t.Errorf("Profile(%s): %v", name, err)
			continue
		}
		if s.Empty() {
			t.Errorf("Profile(%s) is empty", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Profile(%s) invalid: %v", name, err)
		}
		if len(s.ActiveKinds()) == 0 {
			t.Errorf("Profile(%s) has no active kinds", name)
		}
	}
	// chaos exercises every kind.
	chaos, err := Profile("chaos", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(chaos.ActiveKinds()), len(Kinds()); got != want {
		t.Errorf("chaos covers %d kinds (%v), want all %d", got, chaos.ActiveKinds(), want)
	}
}

func TestTally(t *testing.T) {
	a := Tally{Burst: 5, Fade: 2}
	b := Tally{Burst: 2}
	d := a.Sub(b)
	if d.Burst != 3 || d.Fade != 2 || d.Total() != 5 {
		t.Errorf("Sub = %+v", d)
	}
	if got := d.ActiveKinds(); !reflect.DeepEqual(got, []string{"burst", "fade"}) {
		t.Errorf("ActiveKinds = %v", got)
	}
	if got := (Tally{}).ActiveKinds(); len(got) != 0 {
		t.Errorf("zero Tally ActiveKinds = %v", got)
	}
}
