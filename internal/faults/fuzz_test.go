package faults

import (
	"reflect"
	"testing"
)

// FuzzScheduleCodec drives the schedule codec with arbitrary input. Two
// properties must hold for every input: Parse never panics, and any
// schedule Parse accepts must survive a String → Parse round trip
// unchanged (the canonical form is a fixed point).
func FuzzScheduleCodec(f *testing.F) {
	// Seeds: the grammar's happy paths plus the shapes the satellite task
	// names — empty, overlapping, and out-of-order windows — and a spread
	// of near-miss malformed inputs.
	seeds := []string{
		"",
		"   ",
		"burst@0:1x0.5",
		"burst@0:1x0.5;burst@0.5:1.5x0.9", // overlapping
		"fade@10:20x1;burst@0:1x0.2;stall@5:6x0.7", // out of order
		"corrupt@0:30x1;;drift@1:2x0.1;",           // empty segments
		"burst@1e-3:2.5e-1x0.25",                   // exponent floats
		"csidrop@-1:1x0.5",                         // negative start
		"burst@0:1",                                // missing intensity
		"burst@2:1x0.5",                            // inverted
		"gremlins@0:1x1",                           // unknown kind
		"burst@0:1x2",                              // out-of-range intensity
		"@0:1x0.5",                                 // empty kind
		"burst@:x",                                 // empty numbers
		`[{"kind":"burst","start":0,"end":1,"intensity":0.5}]`,
		`{"windows":[{"kind":"fade","start":1,"end":2,"intensity":1}]}`,
		`[]`,
		`{}`,
		`[{"kind":"burst"`,
		`{"windows": 3}`,
		"lossy", // profile names are ParseSpec's job, not Parse's
		"burst@0:1x0.5x0.5",
		"burst@0:1:2x0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid schedule: %v", in, err)
		}
		canon := s.String()
		round, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, in, err)
		}
		if !reflect.DeepEqual(s, round) {
			t.Fatalf("round trip of %q changed the schedule:\n first %+v\nsecond %+v", in, s, round)
		}
		if canon != round.String() {
			t.Fatalf("canonical form is not a fixed point: %q vs %q", canon, round.String())
		}
		// ParseSpec must also never panic on whatever Parse accepted, nor
		// on the raw input.
		if _, err := ParseSpec(in); err != nil {
			_ = err // malformed specs are fine; panics are not
		}
	})
}
