package faults

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file is the schedule codec: a compact text form for flags and a
// JSON form for files. The text grammar is
//
//	schedule  = window *( ";" window )
//	window    = kind "@" start ":" end "x" intensity
//
// e.g. "burst@0.5:2x0.8;fade@1:3x0.5". Start/end are seconds of simulated
// time, intensity is in [0,1]. The separators were picked to survive both
// shells and floats: '@', ':', ';' and 'x' never occur inside a Go float
// literal ("1.5e-3", "-2"), so parsing needs no escaping. A string whose
// first non-space byte is '[' or '{' is parsed as JSON instead (a bare
// window array, or a {"windows": [...]} object).

// Parse decodes a schedule from its text or JSON form. The empty string
// yields an empty schedule. The result is always validated.
func Parse(s string) (*Schedule, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return &Schedule{}, nil
	}
	if trimmed[0] == '[' || trimmed[0] == '{' {
		return parseJSON(trimmed)
	}
	if trimmed[0] == '"' {
		// A JSON-quoted text form, as json.Marshal emits via MarshalText.
		var inner string
		if err := json.Unmarshal([]byte(trimmed), &inner); err != nil {
			return nil, fmt.Errorf("faults: bad quoted schedule: %v", err)
		}
		return Parse(inner)
	}
	sched := &Schedule{}
	for _, part := range strings.Split(trimmed, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := parseWindow(part)
		if err != nil {
			return nil, err
		}
		sched.Windows = append(sched.Windows, w)
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

func parseWindow(part string) (Window, error) {
	at := strings.IndexByte(part, '@')
	if at < 0 {
		return Window{}, fmt.Errorf("faults: window %q missing '@' (want kind@start:endxintensity)", part)
	}
	kind := Kind(strings.TrimSpace(part[:at]))
	rest := part[at+1:]
	x := strings.LastIndexByte(rest, 'x')
	if x < 0 {
		return Window{}, fmt.Errorf("faults: window %q missing 'x' intensity (want kind@start:endxintensity)", part)
	}
	span, intens := rest[:x], rest[x+1:]
	colon := strings.IndexByte(span, ':')
	if colon < 0 {
		return Window{}, fmt.Errorf("faults: window %q missing ':' range (want kind@start:endxintensity)", part)
	}
	start, err := strconv.ParseFloat(strings.TrimSpace(span[:colon]), 64)
	if err != nil {
		return Window{}, fmt.Errorf("faults: window %q: bad start: %v", part, err)
	}
	end, err := strconv.ParseFloat(strings.TrimSpace(span[colon+1:]), 64)
	if err != nil {
		return Window{}, fmt.Errorf("faults: window %q: bad end: %v", part, err)
	}
	in, err := strconv.ParseFloat(strings.TrimSpace(intens), 64)
	if err != nil {
		return Window{}, fmt.Errorf("faults: window %q: bad intensity: %v", part, err)
	}
	w := Window{Kind: kind, Start: start, End: end, Intensity: in}
	if err := w.validate(); err != nil {
		return Window{}, err
	}
	return w, nil
}

func parseJSON(s string) (*Schedule, error) {
	// Decode through a plain struct: *Schedule implements TextUnmarshaler
	// (for flags), which would otherwise make encoding/json reject the
	// object form.
	var aux struct {
		Windows []Window `json:"windows"`
	}
	var err error
	if s[0] == '[' {
		err = json.Unmarshal([]byte(s), &aux.Windows)
	} else {
		err = json.Unmarshal([]byte(s), &aux)
	}
	if err != nil {
		return nil, fmt.Errorf("faults: bad JSON schedule: %v", err)
	}
	sched := &Schedule{Windows: aux.Windows}
	if len(sched.Windows) == 0 {
		sched.Windows = nil // canonical empty form, same as Parse("")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

// String renders the canonical text form, which Parse round-trips.
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Windows))
	for i, w := range s.Windows {
		parts[i] = fmt.Sprintf("%s@%g:%gx%g", w.Kind, w.Start, w.End, w.Intensity)
	}
	return strings.Join(parts, ";")
}

// MarshalText / UnmarshalText expose the text codec to flag and config
// plumbing.
func (s *Schedule) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the text form in place.
func (s *Schedule) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}

// ParseSpec resolves a user-facing fault spec: either a named profile
// ("chaos", "lossy:0.5" — see Profiles) or an inline schedule in the text
// or JSON grammar (recognized by '@', '[' or '{'). The empty string means
// no faults and returns nil.
func ParseSpec(spec string) (*Schedule, error) {
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return nil, nil
	}
	if strings.ContainsAny(trimmed, "@[{") {
		return Parse(trimmed)
	}
	name, intensity := trimmed, 1.0
	if colon := strings.IndexByte(trimmed, ':'); colon >= 0 {
		name = strings.TrimSpace(trimmed[:colon])
		v, err := strconv.ParseFloat(strings.TrimSpace(trimmed[colon+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("faults: bad intensity in spec %q: %v", spec, err)
		}
		intensity = v
	}
	return Profile(name, intensity)
}
