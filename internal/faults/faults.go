// Package faults is the deterministic fault-injection layer. It turns a
// declarative Schedule of impairment windows — burst interferers, fading
// swings, CSI dropouts, tag clock drift, helper-traffic stalls, and
// query/response corruption — into an Injector whose hooks plug into the
// 802.11 medium (wifi.Medium.Impair), the uplink decoder
// (uplink.Decoder.Impair), the downlink encoder (downlink.Encoder.Impair),
// and the tag-side decode path in core.
//
// Determinism contract: all injector randomness comes from a single
// *rng.Stream handed in by the caller (core derives it from the trial seed
// with rng.TrialSeed, never by splitting a stream another subsystem also
// consumes), every hook returns without drawing when the effective
// intensity at the queried time is zero, and an Injector is confined to one
// simulated system. Together these guarantee that a zero-intensity schedule
// reproduces the clean channel bit-for-bit and that equal seeds replay
// equal fault sequences at any worker count.
package faults

import (
	"fmt"
	"sort"
)

// Kind identifies one impairment class.
type Kind string

// The impairment classes. Each maps to a specific hook point; DESIGN.md §9
// documents where in the pipeline each one bites.
const (
	// Burst destroys frames on the medium with probability proportional
	// to intensity, modelling a bursty co-channel interferer.
	Burst Kind = "burst"
	// Fade applies an SNR/amplitude step to every channel observation and
	// to the PER model, modelling a fading swing or a blocked path.
	Fade Kind = "fade"
	// CSIDrop discards whole measurements or zeroes single antenna rows,
	// modelling a flaky monitor-mode capture card.
	CSIDrop Kind = "csidrop"
	// Drift skews the tag's bit clock during downlink decode, modelling
	// the cheap RC oscillator of an RF-powered tag.
	Drift Kind = "drift"
	// Stall defers helper-station contention, starving the tag of
	// illuminating traffic for part of the window.
	Stall Kind = "stall"
	// Corrupt perturbs extracted uplink channel samples and suppresses
	// downlink marker frames, modelling query/response corruption.
	Corrupt Kind = "corrupt"
)

// Kinds returns all impairment classes in canonical order.
func Kinds() []Kind {
	return []Kind{Burst, Fade, CSIDrop, Drift, Stall, Corrupt}
}

// validKind reports whether k names an impairment class.
func validKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// Window is one impairment active on [Start, End) with the given intensity
// in [0, 1]. Windows of the same kind may overlap and arrive in any order;
// the effective intensity at a time is the maximum over covering windows.
type Window struct {
	Kind      Kind    `json:"kind"`
	Start     float64 `json:"start"`
	End       float64 `json:"end"`
	Intensity float64 `json:"intensity"`
}

// Covers reports whether the window is active at time t.
func (w Window) Covers(t float64) bool { return t >= w.Start && t < w.End }

func (w Window) validate() error {
	if !validKind(w.Kind) {
		return fmt.Errorf("faults: unknown kind %q", w.Kind)
	}
	if w.End <= w.Start {
		return fmt.Errorf("faults: window %s@%g:%g is empty or inverted", w.Kind, w.Start, w.End)
	}
	if w.Intensity < 0 || w.Intensity > 1 {
		return fmt.Errorf("faults: window %s@%g:%g intensity %g outside [0,1]", w.Kind, w.Start, w.End, w.Intensity)
	}
	return nil
}

// Schedule is a declarative fault plan: a set of impairment windows over
// simulated time. The zero value is a valid empty schedule (no faults).
type Schedule struct {
	Windows []Window `json:"windows"`
}

// Validate checks every window. Overlapping and out-of-order windows are
// legal; malformed kinds, inverted ranges, and out-of-range intensities are
// not.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, w := range s.Windows {
		if err := w.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Empty reports whether the schedule has no windows at all.
func (s *Schedule) Empty() bool { return s == nil || len(s.Windows) == 0 }

// IntensityAt returns the effective intensity of kind k at time t: the
// maximum over covering windows, clamped to [0, 1]. Zero means "kind
// inactive" and every injector hook treats it as a guaranteed no-op.
func (s *Schedule) IntensityAt(k Kind, t float64) float64 {
	if s == nil {
		return 0
	}
	max := 0.0
	for _, w := range s.Windows {
		if w.Kind == k && w.Covers(t) && w.Intensity > max {
			max = w.Intensity
		}
	}
	if max > 1 {
		max = 1
	}
	return max
}

// Scaled returns a copy of the schedule with every window's intensity
// multiplied by f (clamped to [0, 1]). Scaled(0) keeps the windows but
// neutralizes them — the chaos tests use this to assert that intensity
// zero reproduces the clean-channel baseline.
func (s *Schedule) Scaled(f float64) *Schedule {
	if s == nil {
		return nil
	}
	out := &Schedule{Windows: make([]Window, len(s.Windows))}
	copy(out.Windows, s.Windows)
	for i := range out.Windows {
		v := out.Windows[i].Intensity * f
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out.Windows[i].Intensity = v
	}
	return out
}

// ActiveKinds returns the sorted set of kinds with at least one window of
// positive intensity.
func (s *Schedule) ActiveKinds() []Kind {
	if s == nil {
		return nil
	}
	seen := make(map[Kind]bool)
	for _, w := range s.Windows {
		if w.Intensity > 0 {
			seen[w.Kind] = true
		}
	}
	out := make([]Kind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
