package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// Impairment magnitudes at unit intensity. These set how hard each kind
// bites when a window's intensity is 1; window intensities scale them
// linearly, which is what makes the chaos suite's monotonic-degradation
// property meaningful.
const (
	// burstLossMax is the frame destruction probability of a Burst window.
	burstLossMax = 0.9
	// fadeDepthDB is the SNR/amplitude reduction of a Fade window, dB.
	fadeDepthDB = 14.0
	// csiDropMeasurementMax is the whole-measurement drop probability of a
	// CSIDrop window.
	csiDropMeasurementMax = 0.35
	// csiDropRowMax is the zero-one-antenna-row probability of a CSIDrop
	// window (evaluated when the measurement survives).
	csiDropRowMax = 0.5
	// driftSkewMax is the fractional tag bit-clock skew of a Drift window.
	driftSkewMax = 0.05
	// corruptMarkerMax is the downlink marker suppression probability of a
	// Corrupt window.
	corruptMarkerMax = 0.35
	// corruptSampleMax is the per-sample uplink corruption probability of
	// a Corrupt window.
	corruptSampleMax = 0.25
	// corruptKick is the maximum relative amplitude perturbation of a
	// corrupted uplink sample.
	corruptKick = 0.8
)

// readerStationName is the one station stall windows never touch: the
// stall kind models *helper* traffic starvation (an AP busy elsewhere),
// while the reader's control plane is the system under test.
const readerStationName = "reader"

// Tally counts injected events per kind. Tallies are monotone; diff two
// snapshots (Sub) to attribute events to one query or trial phase.
type Tally struct {
	Burst   int64 `json:"burst"`
	Fade    int64 `json:"fade"`
	CSIDrop int64 `json:"csidrop"`
	Drift   int64 `json:"drift"`
	Stall   int64 `json:"stall"`
	Corrupt int64 `json:"corrupt"`
}

// Total sums the per-kind counts.
func (t Tally) Total() int64 {
	return t.Burst + t.Fade + t.CSIDrop + t.Drift + t.Stall + t.Corrupt
}

// Sub returns the per-kind difference t − o.
func (t Tally) Sub(o Tally) Tally {
	return Tally{
		Burst:   t.Burst - o.Burst,
		Fade:    t.Fade - o.Fade,
		CSIDrop: t.CSIDrop - o.CSIDrop,
		Drift:   t.Drift - o.Drift,
		Stall:   t.Stall - o.Stall,
		Corrupt: t.Corrupt - o.Corrupt,
	}
}

// ActiveKinds returns the sorted names of kinds with a positive count.
func (t Tally) ActiveKinds() []string {
	counts := map[Kind]int64{
		Burst: t.Burst, Fade: t.Fade, CSIDrop: t.CSIDrop,
		Drift: t.Drift, Stall: t.Stall, Corrupt: t.Corrupt,
	}
	var out []string
	for k, n := range counts {
		if n > 0 {
			out = append(out, string(k))
		}
	}
	sort.Strings(out)
	return out
}

// injectorMetrics holds the injector's obs handles (faults.* in the
// README's metric catalog). The zero value means "not instrumented".
type injectorMetrics struct {
	burst   *obs.Counter
	fade    *obs.Counter
	csidrop *obs.Counter
	drift   *obs.Counter
	stall   *obs.Counter
	corrupt *obs.Counter
	windows *obs.Gauge
}

// Injector executes a Schedule against one simulated system. All its
// randomness comes from the stream passed to NewInjector; every hook is
// safe on a nil receiver (no-op) and draws nothing when the effective
// intensity at the queried time is zero, so an injector with a
// zero-intensity schedule is bit-for-bit equivalent to no injector at
// all. An Injector is confined to its system's goroutine, like the rest
// of a trial.
type Injector struct {
	sched Schedule
	rnd   *rng.Stream
	met   injectorMetrics
	tally Tally
}

// NewInjector validates the schedule and binds it to the randomness
// stream. The stream must be dedicated to this injector — core derives it
// from the trial seed with rng.TrialSeed so fault draws never perturb the
// channel, card, or medium streams.
func NewInjector(s *Schedule, rnd *rng.Stream) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if rnd == nil {
		return nil, fmt.Errorf("faults: injector needs a dedicated rng stream")
	}
	in := &Injector{rnd: rnd}
	if s != nil {
		in.sched.Windows = append(in.sched.Windows, s.Windows...)
	}
	return in, nil
}

// Instrument registers the faults.injected.* counters and the
// faults.windows gauge on r. A nil registry detaches the metrics.
func (in *Injector) Instrument(r *obs.Registry) {
	if in == nil {
		return
	}
	in.met = injectorMetrics{
		burst:   r.Counter("faults.injected.burst"),
		fade:    r.Counter("faults.injected.fade"),
		csidrop: r.Counter("faults.injected.csidrop"),
		drift:   r.Counter("faults.injected.drift"),
		stall:   r.Counter("faults.injected.stall"),
		corrupt: r.Counter("faults.injected.corrupt"),
		windows: r.Gauge("faults.windows"),
	}
	in.met.windows.Set(float64(len(in.sched.Windows)))
}

// Schedule returns a copy of the injector's schedule.
func (in *Injector) Schedule() *Schedule {
	if in == nil {
		return nil
	}
	out := &Schedule{Windows: make([]Window, len(in.sched.Windows))}
	copy(out.Windows, in.sched.Windows)
	return out
}

// Tally returns the events injected so far. Nil-safe (zero Tally).
func (in *Injector) Tally() Tally {
	if in == nil {
		return Tally{}
	}
	return in.tally
}

// --- wifi.Impairment -------------------------------------------------

// FrameLost reports whether a burst interferer destroys the frame st puts
// on air at start. Applied on top of the PER model, to data and control
// frames alike — a burst that flattens the reader's CTS_to_SELF is what
// drives transaction retries.
func (in *Injector) FrameLost(st *wifi.Station, start float64) bool {
	if in == nil {
		return false
	}
	eff := in.sched.IntensityAt(Burst, start)
	if eff <= 0 {
		return false
	}
	if in.rnd.Float64() >= burstLossMax*eff {
		return false
	}
	in.tally.Burst++
	in.met.burst.Inc()
	return true
}

// SNROffset returns the fade adjustment the PER model sees at time t.
// Pure (no draws, no tally): the paired AttenuateChannel call accounts
// the fade events.
func (in *Injector) SNROffset(t float64) units.DB {
	if in == nil {
		return 0
	}
	eff := in.sched.IntensityAt(Fade, t)
	if eff <= 0 {
		return 0
	}
	return units.DB(-fadeDepthDB * eff)
}

// StalledUntil reports that st must sit out contention until the returned
// time. A Stall window of intensity I stalls traffic for the first I
// fraction of the window, so intensity scales starvation duration —
// deterministically, with no draws. The reader is exempt (see
// readerStationName).
func (in *Injector) StalledUntil(st *wifi.Station, now float64) (float64, bool) {
	if in == nil || st.Name == readerStationName {
		return 0, false
	}
	until := 0.0
	for _, w := range in.sched.Windows {
		if w.Kind != Stall || w.Intensity <= 0 || !w.Covers(now) {
			continue
		}
		if end := w.Start + w.Intensity*(w.End-w.Start); now < end && end > until {
			until = end
		}
	}
	if until <= now {
		return 0, false
	}
	in.tally.Stall++
	in.met.stall.Inc()
	return until, true
}

// --- measurement-path hooks (core's monitor listener) -----------------

// AttenuateChannel applies the fade's amplitude step to a channel
// observation in place, before the card measures it.
func (in *Injector) AttenuateChannel(t float64, h [][]complex128) {
	if in == nil {
		return
	}
	eff := in.sched.IntensityAt(Fade, t)
	if eff <= 0 {
		return
	}
	g := complex(math.Pow(10, -fadeDepthDB*eff/20), 0)
	for _, row := range h {
		for i := range row {
			row[i] *= g
		}
	}
	in.tally.Fade++
	in.met.fade.Inc()
}

// CorruptMeasurement mutilates one card measurement: it either reports the
// whole measurement dropped (return true — the caller must not append it)
// or zeroes a single antenna row in place, modelling a flaky capture
// path. Called after Card.Measure so the card's own noise stream stays
// aligned with the clean run.
func (in *Injector) CorruptMeasurement(t float64, m *csi.Measurement) bool {
	if in == nil {
		return false
	}
	eff := in.sched.IntensityAt(CSIDrop, t)
	if eff <= 0 {
		return false
	}
	if in.rnd.Float64() < csiDropMeasurementMax*eff {
		in.tally.CSIDrop++
		in.met.csidrop.Inc()
		return true
	}
	if in.rnd.Float64() < csiDropRowMax*eff && len(m.CSI) > 0 {
		row := in.rnd.Intn(len(m.CSI))
		for k := range m.CSI[row] {
			m.CSI[row][k] = 0
		}
		if row < len(m.RSSI) {
			m.RSSI[row] = 0
		}
		in.tally.CSIDrop++
		in.met.csidrop.Inc()
	}
	return false
}

// --- uplink.ChannelImpairment -----------------------------------------

// ImpairChannel perturbs an extracted channel series in place before
// conditioning: each sample inside a Corrupt window takes a relative
// amplitude kick with probability proportional to the window intensity.
func (in *Injector) ImpairChannel(id uplink.ChannelID, ts, raw []float64) {
	if in == nil {
		return
	}
	for i, t := range ts {
		eff := in.sched.IntensityAt(Corrupt, t)
		if eff <= 0 {
			continue
		}
		if in.rnd.Float64() >= corruptSampleMax*eff {
			continue
		}
		raw[i] *= 1 + corruptKick*(2*in.rnd.Float64()-1)
		in.tally.Corrupt++
		in.met.corrupt.Inc()
	}
}

// --- downlink.MarkerImpairment ----------------------------------------

// MarkerLost reports whether the downlink marker frame of the given chunk
// scheduled at time at is suppressed (query corruption: the tag sees
// silence where the reader placed energy).
func (in *Injector) MarkerLost(chunk int, at float64) bool {
	if in == nil {
		return false
	}
	eff := in.sched.IntensityAt(Corrupt, at)
	if eff <= 0 {
		return false
	}
	if in.rnd.Float64() >= corruptMarkerMax*eff {
		return false
	}
	in.tally.Corrupt++
	in.met.corrupt.Inc()
	return true
}

// --- tag decode hook ---------------------------------------------------

// ClockDrift returns the fractional bit-clock skew of the tag's decoder
// at time t (0 = nominal). Pure except for the event tally, which counts
// each drifted decode window once.
func (in *Injector) ClockDrift(t float64) float64 {
	if in == nil {
		return 0
	}
	eff := in.sched.IntensityAt(Drift, t)
	if eff <= 0 {
		return 0
	}
	in.tally.Drift++
	in.met.drift.Inc()
	return driftSkewMax * eff
}
