package faults

import (
	"fmt"
	"sort"
)

// This file defines the named fault profiles reachable from the CLIs'
// -faults flag and the eval resilience sweep. Profiles describe 30 s of
// simulated time — longer than any single trial or transaction horizon in
// the suite — so a profile behaves the same whether a run lasts one second
// or twenty.

// profileHorizon is the span the built-in profiles cover, seconds.
const profileHorizon = 30.0

// profileBuilders maps profile names to window generators at unit
// intensity.
var profileBuilders = map[string]func() []Window{
	// bursty: a 0.4 s interference burst every 2 s, like a microwave oven
	// or a co-channel hopper.
	"bursty": func() []Window {
		return repeat(Burst, 0, profileHorizon, 0.4, 2.0, 1)
	},
	// fading: alternating deep and shallow fade plateaus, one second each,
	// separated by a second of clean channel.
	"fading": func() []Window {
		var ws []Window
		depths := []float64{1, 0.6, 0.85}
		for i, t := 0, 0.5; t < profileHorizon; i, t = i+1, t+2 {
			ws = append(ws, Window{Kind: Fade, Start: t, End: t + 1, Intensity: depths[i%len(depths)]})
		}
		return ws
	},
	// dropout: a continuously flaky capture card losing CSI rows and
	// whole measurements.
	"dropout": func() []Window {
		return []Window{{Kind: CSIDrop, Start: 0, End: profileHorizon, Intensity: 1}}
	},
	// clockdrift: the tag's RC oscillator runs fast for the whole run.
	"clockdrift": func() []Window {
		return []Window{{Kind: Drift, Start: 0, End: profileHorizon, Intensity: 1}}
	},
	// stalls: the helper's traffic stalls for most of a 1.5 s window
	// every 4 s (an AP serving other clients, or a rate-limited backhaul).
	"stalls": func() []Window {
		return repeat(Stall, 0.8, profileHorizon, 1.5, 4.0, 1)
	},
	// corrupt: continuous query/response corruption — uplink sample hits
	// and downlink marker suppression.
	"corrupt": func() []Window {
		return []Window{{Kind: Corrupt, Start: 0, End: profileHorizon, Intensity: 1}}
	},
	// lossy: steady frame loss plus a shallow fade, the profile behind
	// EXPERIMENTS.md's retransmission curve.
	"lossy": func() []Window {
		return []Window{
			{Kind: Burst, Start: 0, End: profileHorizon, Intensity: 0.45},
			{Kind: Fade, Start: 0, End: profileHorizon, Intensity: 0.3},
		}
	},
	// wire-flaky: the serving layer's resume torture. On the wire (see
	// internal/serve/chaosproxy) this cuts every lane's first connection
	// at least once per direction (two certain early bursts), keeps
	// cutting probabilistically, splits writes continuously, and stalls
	// briefly. Deliberately corruption-free: the chaos equivalence suite
	// requires every delivered byte to be exact, and a corrupted bit
	// line can parse as a valid wrong bit.
	"wire-flaky": func() []Window {
		ws := []Window{
			{Kind: Burst, Start: 0, End: 0.5, Intensity: 1},
			{Kind: Burst, Start: 0.5, End: 1.0, Intensity: 1},
			{Kind: CSIDrop, Start: 0, End: profileHorizon, Intensity: 0.6},
		}
		ws = append(ws, repeat(Burst, 2.0, profileHorizon, 0.5, 2.0, 0.6)...)
		ws = append(ws, repeat(Stall, 1.0, profileHorizon, 0.3, 3.0, 0.5)...)
		return ws
	},
	// wire-partition: a hard network partition — certain cuts, then a
	// long full-intensity stall, then recurring near-total stalls. The
	// long stall starts at t=2 so it sits past the uplink sweep's
	// transmission window: a partial-intensity stall that releases
	// traffic mid-frame scrambles the decode worse than a full stall
	// that starves it outright, which would break the monotone ladder.
	"wire-partition": func() []Window {
		ws := []Window{
			{Kind: Burst, Start: 0, End: 1, Intensity: 1},
			{Kind: Burst, Start: 1.5, End: 2, Intensity: 1},
			{Kind: Stall, Start: 2, End: 7, Intensity: 1},
		}
		ws = append(ws, repeat(Stall, 8, profileHorizon, 2.0, 6.0, 0.9)...)
		return ws
	},
	// chaos: every impairment class, staggered so each gets exclusive
	// time and they also overlap.
	"chaos": func() []Window {
		ws := []Window{
			{Kind: CSIDrop, Start: 0, End: profileHorizon, Intensity: 0.5},
			{Kind: Drift, Start: 0, End: profileHorizon, Intensity: 0.4},
			{Kind: Corrupt, Start: 2, End: profileHorizon, Intensity: 0.5},
			{Kind: Fade, Start: 1, End: profileHorizon, Intensity: 0.35},
		}
		ws = append(ws, repeat(Burst, 0.5, profileHorizon, 0.5, 3.0, 0.7)...)
		ws = append(ws, repeat(Stall, 2.0, profileHorizon, 1.0, 5.0, 0.8)...)
		return ws
	},
}

// repeat lays out windows of the given kind and length every period seconds
// from start to horizon.
func repeat(k Kind, start, horizon, length, period, intensity float64) []Window {
	var ws []Window
	for t := start; t < horizon; t += period {
		end := t + length
		if end > horizon {
			end = horizon
		}
		ws = append(ws, Window{Kind: k, Start: t, End: end, Intensity: intensity})
	}
	return ws
}

// ProfileNames lists the built-in profiles, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profileBuilders))
	for n := range profileBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile returns the named profile scaled to the given intensity (1 is
// the profile's design strength; 0 keeps the windows but neutralizes
// them).
func Profile(name string, intensity float64) (*Schedule, error) {
	build, ok := profileBuilders[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown profile %q (have %v)", name, ProfileNames())
	}
	if intensity < 0 || intensity > 1 {
		return nil, fmt.Errorf("faults: profile intensity %g outside [0,1]", intensity)
	}
	s := &Schedule{Windows: build()}
	return s.Scaled(intensity), nil
}
