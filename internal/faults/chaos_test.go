package faults_test

// Chaos/scenario suite: every built-in fault profile is driven through the
// real pipelines (uplink decode, downlink query decode, full transactions)
// at increasing intensity. Two properties are pinned:
//
//   - Recovery: a schedule scaled to intensity zero produces results
//     byte-identical to a run with no schedule at all. The injector exists
//     but draws nothing, so the clean channel is exactly recovered.
//   - Graceful degradation: decode success does not improve as intensity
//     rises (monotone within a small sampling slack), for every profile
//     and every layer.
//
// The operating points are chosen near the paper's range edges (Fig. 10)
// so injected impairments have somewhere to bite.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/units"
	"repro/internal/wifi"
)

// chaosSeed keeps the suite's trials distinct from other tests.
const chaosSeed = 424200

// chaosPayloadLen is the uplink payload used across the suite.
const chaosPayloadLen = 60

// uplinkErrors sums the payload bit errors over trials uplink runs under
// the schedule (nil = clean channel). A trial whose decode fails outright
// (e.g. a stall starved the decoder of measurements) counts as a total
// loss of the payload — the severest possible degradation, not a harness
// error.
func uplinkErrors(t *testing.T, sched *faults.Schedule, trials int) int {
	t.Helper()
	total := 0
	for trial := 0; trial < trials; trial++ {
		res, err := core.RunUplinkTrial(core.UplinkTrialSpec{
			Config: core.Config{
				Seed:              chaosSeed + int64(trial)*7717,
				TagReaderDistance: units.Centimeters(35),
				Faults:            sched,
			},
			BitRate:                250,
			HelperPacketsPerSecond: 1000,
			PayloadLen:             chaosPayloadLen,
			Mode:                   core.DecodeCSI,
		})
		if err != nil {
			total += chaosPayloadLen
			continue
		}
		total += res.BitErrors
	}
	return total
}

// txnOutcome aggregates transaction trials under the schedule: how many
// queries the tag decoded (the downlink layer), how many transactions
// completed (the full round trip), and the attempts consumed.
type txnOutcome struct {
	tagDecoded, responseOK, attempts int
}

func runTxns(t *testing.T, sched *faults.Schedule, trials int) txnOutcome {
	t.Helper()
	txn := core.DefaultTransactionConfig()
	txn.ResponseTimeout = 1.0
	txn.MaxAttempts = 3
	var out txnOutcome
	for trial := 0; trial < trials; trial++ {
		res, err := core.RunTransactionTrial(core.TransactionTrialSpec{
			Config: core.Config{
				Seed:              chaosSeed + 555 + int64(trial)*7717,
				TagReaderDistance: units.Centimeters(30),
				Faults:            sched,
			},
			HelperPacketsPerSecond: 1000,
			BitRate:                250,
			Data:                   0xC0FFEE,
			Txn:                    txn,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Result.TagDecoded {
			out.tagDecoded++
		}
		if res.Result.ResponseOK {
			out.responseOK++
		}
		out.attempts += res.Result.Attempts
	}
	return out
}

// TestChaosZeroIntensityRecoversCleanUplink pins the recovery property at
// the uplink layer: Scaled(0) must decode the exact same bits as no
// schedule, for every profile.
func TestChaosZeroIntensityRecoversCleanUplink(t *testing.T) {
	clean, err := core.RunUplinkTrial(cleanUplinkSpec(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range faults.ProfileNames() {
		t.Run(name, func(t *testing.T) {
			sched, err := faults.Profile(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.RunUplinkTrial(cleanUplinkSpec(sched.Scaled(0)))
			if err != nil {
				t.Fatal(err)
			}
			if res.BitErrors != clean.BitErrors || res.Detected != clean.Detected {
				t.Fatalf("zero-intensity %s: errors=%d detected=%v, clean run has errors=%d detected=%v",
					name, res.BitErrors, res.Detected, clean.BitErrors, clean.Detected)
			}
			for i, b := range res.Result.Payload {
				if b != clean.Result.Payload[i] {
					t.Fatalf("zero-intensity %s: decoded bit %d differs from the clean run", name, i)
				}
			}
		})
	}
}

func cleanUplinkSpec(sched *faults.Schedule) core.UplinkTrialSpec {
	return core.UplinkTrialSpec{
		Config: core.Config{
			Seed:              chaosSeed + 99,
			TagReaderDistance: units.Centimeters(35),
			Faults:            sched,
		},
		BitRate:                250,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             60,
		Mode:                   core.DecodeCSI,
	}
}

// TestChaosZeroIntensityRecoversCleanTransaction pins recovery at the
// transaction layer: query decode, response, attempts, and data must all
// match the clean run exactly.
func TestChaosZeroIntensityRecoversCleanTransaction(t *testing.T) {
	clean := runTxns(t, nil, 1)
	for _, name := range faults.ProfileNames() {
		t.Run(name, func(t *testing.T) {
			sched, err := faults.Profile(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			got := runTxns(t, sched.Scaled(0), 1)
			if got != clean {
				t.Fatalf("zero-intensity %s transaction: %+v, clean run %+v", name, got, clean)
			}
		})
	}
}

// TestChaosUplinkDegradesMonotonically sweeps every profile over the
// intensity ladder at the uplink layer: summed bit errors must not
// meaningfully decrease as intensity rises.
func TestChaosUplinkDegradesMonotonically(t *testing.T) {
	// Two tolerances absorb sampling noise: a few absolute bits, plus a
	// multiplicative margin between nonzero intensities — different
	// intensities consume the injector stream differently, and heavier
	// corruption is sometimes easier for the decoder's sub-channel
	// selection to exclude, so only the trend is guaranteed.
	const slack = 3
	const trend = 0.7
	const trials = 4
	for _, name := range faults.ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sched, err := faults.Profile(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			ladder := []float64{0, 0.5, 1}
			errs := make([]int, len(ladder))
			for i, f := range ladder {
				errs[i] = uplinkErrors(t, sched.Scaled(f), trials)
			}
			for i := 1; i < len(errs); i++ {
				if float64(errs[i])+slack < trend*float64(errs[i-1]) {
					t.Errorf("%s: bit errors improved with intensity: %v over ladder %v",
						name, errs, ladder)
				}
			}
			if errs[len(errs)-1]+slack < errs[0] {
				t.Errorf("%s: full intensity beat the clean channel: %v over ladder %v",
					name, errs, ladder)
			}
		})
	}
}

// TestChaosTransactionDegradesMonotonically sweeps every profile at full
// intensity through complete transactions: neither the downlink decode
// count nor the end-to-end success count may exceed the clean channel's,
// and the retry budget must absorb at least as many attempts.
func TestChaosTransactionDegradesMonotonically(t *testing.T) {
	const trials = 2
	clean := runTxns(t, nil, trials)
	if clean.responseOK != trials {
		t.Fatalf("clean channel failed %d/%d transactions; pick a tamer operating point",
			trials-clean.responseOK, trials)
	}
	for _, name := range faults.ProfileNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sched, err := faults.Profile(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			got := runTxns(t, sched, trials)
			if got.tagDecoded > clean.tagDecoded {
				t.Errorf("%s: downlink decodes rose under faults: %d > %d",
					name, got.tagDecoded, clean.tagDecoded)
			}
			if got.responseOK > clean.responseOK {
				t.Errorf("%s: transaction successes rose under faults: %d > %d",
					name, got.responseOK, clean.responseOK)
			}
			if got.attempts < clean.attempts {
				t.Errorf("%s: faulted run used fewer attempts than clean: %d < %d",
					name, got.attempts, clean.attempts)
			}
		})
	}
}

// TestChaosStallDelaysHelperTraffic checks the stall impairment at the
// medium layer directly: helper frames must not be delivered inside a
// full-intensity stall window, while the reader keeps transmitting.
func TestChaosStallDelaysHelperTraffic(t *testing.T) {
	sched := &faults.Schedule{Windows: []faults.Window{
		{Kind: faults.Stall, Start: 0.5, End: 1.0, Intensity: 1},
	}}
	sys, err := core.NewSystem(core.Config{Seed: chaosSeed + 7, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTxLog()
	if err := (&wifi.CBRSource{
		Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.002,
	}).Start(); err != nil {
		t.Fatal(err)
	}
	sys.Run(1.5)
	inStall := 0
	for _, tx := range sys.TxLog() {
		if tx.Station == sys.Helper && tx.Start >= 0.5 && tx.Start < 1.0 {
			inStall++
		}
	}
	if inStall > 0 {
		t.Errorf("%d helper frames transmitted inside a full-intensity stall window", inStall)
	}
}
