package faults

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The wire-* profiles are the chaos harness's standard schedules (see
// internal/serve/chaosproxy): wire-flaky is the resume torture the
// equivalence suite replays under, wire-partition the hard-partition
// shape. These tests pin their registration, the invariants the chaos
// suite depends on, and their codec round-trips.

func TestWireProfilesRegistered(t *testing.T) {
	names := ProfileNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"wire-flaky", "wire-partition"} {
		if !have[want] {
			t.Errorf("profile %q not registered (have %v)", want, names)
		}
	}
}

// TestWireFlakyShape pins the two invariants the serve chaos suite
// rests on: no corruption anywhere (delivered bytes must be exact for
// the resume-equals-batch check), and certain early cuts (two
// intensity-1 burst windows inside the first second guarantee every
// lane's first connection is cut in both directions).
func TestWireFlakyShape(t *testing.T) {
	s, err := Profile("wire-flaky", 1)
	if err != nil {
		t.Fatal(err)
	}
	certainEarlyCuts := 0
	for _, w := range s.Windows {
		if w.Kind == Corrupt {
			t.Fatalf("wire-flaky contains a corrupt window %+v; corruption breaks wire equivalence", w)
		}
		if w.Kind == Burst && w.Intensity == 1 && w.End <= 1.0 {
			certainEarlyCuts++
		}
	}
	if certainEarlyCuts < 2 {
		t.Errorf("wire-flaky has %d certain cut windows inside the first second, want >= 2", certainEarlyCuts)
	}
	if got := s.IntensityAt(CSIDrop, 15); got == 0 {
		t.Error("wire-flaky has no mid-run csidrop (write-split) coverage")
	}
}

// TestWirePartitionShape pins the partition profile: a full-intensity
// stall bracketed by certain cuts.
func TestWirePartitionShape(t *testing.T) {
	s, err := Profile("wire-partition", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.IntensityAt(Stall, 3); got != 1 {
		t.Errorf("wire-partition stall intensity at t=3 is %g, want 1", got)
	}
	cuts := 0
	for _, w := range s.Windows {
		if w.Kind == Burst && w.Intensity == 1 {
			cuts++
		}
	}
	if cuts < 2 {
		t.Errorf("wire-partition has %d certain cut windows, want >= 2", cuts)
	}
}

// TestWireProfilesCodecRoundTrip pins that both profiles survive the
// text and JSON codecs byte-exactly — a chaos spec written to a log or
// an EXPERIMENTS recipe reproduces the identical schedule.
func TestWireProfilesCodecRoundTrip(t *testing.T) {
	for _, name := range []string{"wire-flaky", "wire-partition"} {
		t.Run(name, func(t *testing.T) {
			s, err := Profile(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			viaText, err := Parse(s.String())
			if err != nil {
				t.Fatalf("text round-trip parse: %v", err)
			}
			if !reflect.DeepEqual(viaText, s) {
				t.Errorf("text round-trip changed the schedule:\n got %v\nwant %v", viaText, s)
			}
			blob, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			viaJSON := &Schedule{}
			if err := json.Unmarshal(blob, viaJSON); err != nil {
				t.Fatalf("json round-trip parse: %v", err)
			}
			if !reflect.DeepEqual(viaJSON, s) {
				t.Errorf("json round-trip changed the schedule:\n got %v\nwant %v", viaJSON, s)
			}
			// And the spec form users actually type resolves to it.
			viaSpec, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(viaSpec, s) {
				t.Errorf("ParseSpec(%q) differs from Profile(%q, 1)", name, name)
			}
		})
	}
}
