package tag

// Scramble XORs bits with a fixed PN (pseudo-noise) sequence so that
// structured payloads — long runs of zeros in small integers, for example —
// become DC-balanced on air. The reader's signal conditioning subtracts a
// moving average, which would otherwise flatten a long constant run into
// undecodable residue. Scrambling is an involution: applying it twice
// restores the original bits, so the receiver calls the same function.
//
// The sequence comes from a 7-bit maximal-length LFSR (x⁷+x⁶+1), the
// scrambler polynomial 802.11 itself uses.
func Scramble(bits []bool) []bool {
	out := make([]bool, len(bits))
	state := uint8(0x7F) // non-zero seed
	for i, b := range bits {
		fb := ((state >> 6) ^ (state >> 5)) & 1
		state = (state<<1 | fb) & 0x7F
		out[i] = b != (fb == 1)
	}
	return out
}
