package tag

import (
	"math"

	"repro/internal/units"
)

// Harvester models the tag's RF energy supply (§6): a Wi-Fi harvester fed
// by the reader/AP transmissions and, optionally, a second antenna
// harvesting a TV broadcast tower, as in the dual-antenna configuration the
// paper uses to quote a ~50% duty cycle at 10 km from a TV tower.
type Harvester struct {
	// WiFiAperture is the effective harvesting area (m²) times rectifier
	// efficiency for the 2.4 GHz antenna.
	WiFiAperture float64
	// TVAperture is the same for the TV-band antenna (larger wavelength,
	// larger effective area).
	TVAperture float64
	// TVTowerEIRP is the TV transmitter's effective radiated power.
	TVTowerEIRP units.DBm
	// TVPathExponent is the propagation exponent to the tower
	// (over-the-horizon terrain gives > 2).
	TVPathExponent float64
	// TVRefDistance and TVRefLoss anchor the TV path-loss model.
	TVRefDistance units.Meters
}

// DefaultHarvester returns parameters matching the prototype: the Wi-Fi
// side keeps the 9.65 µW transmitter+receiver running at one foot from the
// reader, and the TV side yields ~50% duty cycle at 10 km from a megawatt
// UHF tower.
func DefaultHarvester() Harvester {
	return Harvester{
		WiFiAperture:   6 * 1.3e-3 * 0.25, // six patches, 25% rectifier
		TVAperture:     0.014,             // UHF dipole aperture × efficiency
		TVTowerEIRP:    units.DBm(90),     // 1 MW ERP
		TVPathExponent: 2.2,
		TVRefDistance:  units.Meters(100),
	}
}

// CircuitLoadMicrowatt is the combined always-on load: the 0.65 µW
// transmitter plus the 9.0 µW receiver circuit (§6).
const CircuitLoadMicrowatt = TransmitPowerMicrowatt + ReceivePowerMicrowatt

// WiFiHarvest returns the DC power from a Wi-Fi transmitter with EIRP p at
// distance d.
func (h Harvester) WiFiHarvest(p units.DBm, d units.Meters) units.Microwatt {
	return harvest(p, d, h.WiFiAperture, 2, units.Meters(1))
}

// TVHarvest returns the DC power from the TV tower at distance d.
func (h Harvester) TVHarvest(d units.Meters) units.Microwatt {
	return harvest(h.TVTowerEIRP, d, h.TVAperture, h.TVPathExponent, h.TVRefDistance)
}

// harvest computes aperture capture with a power-law density rolloff beyond
// the reference distance.
func harvest(p units.DBm, d units.Meters, aperture, exponent float64, ref units.Meters) units.Microwatt {
	if d <= 0 || aperture <= 0 {
		return 0
	}
	if ref <= 0 {
		ref = units.Meters(1)
	}
	// Density at the reference distance (free space), then power-law
	// beyond it.
	dref := float64(p.Milliwatts()) / (4 * math.Pi * float64(ref) * float64(ref))
	density := dref
	if d > ref {
		density = dref * math.Pow(float64(ref)/float64(d), exponent)
	} else {
		density = float64(p.Milliwatts()) / (4 * math.Pi * float64(d) * float64(d))
	}
	return units.Milliwatt(density * aperture).Microwatts()
}

// DutyCycle returns the fraction of time the tag can run a load of
// loadMicrowatt from the given harvested supply, capped at 1. This is the
// duty-cycle metric the paper quotes for TV-range operation.
func DutyCycle(supply units.Microwatt, loadMicrowatt float64) float64 {
	if loadMicrowatt <= 0 {
		return 1
	}
	if supply <= 0 {
		return 0
	}
	dc := float64(supply) / loadMicrowatt
	if dc > 1 {
		return 1
	}
	return dc
}

// Reservoir is the tag's storage capacitor: harvested power charges it and
// active periods drain it, enforcing energy causality for duty-cycled
// operation.
type Reservoir struct {
	// CapacityJoules is the usable energy storage.
	CapacityJoules float64
	// stored energy in joules.
	stored float64
}

// Charge adds power p for dt seconds, saturating at capacity.
func (r *Reservoir) Charge(p units.Microwatt, dt float64) {
	r.stored += float64(p) * 1e-6 * dt
	if r.stored > r.CapacityJoules {
		r.stored = r.CapacityJoules
	}
}

// Draw attempts to spend power p for dt seconds; it reports whether the
// reservoir had the energy (and drains it either way, flooring at zero).
func (r *Reservoir) Draw(p float64, dt float64) bool {
	need := p * 1e-6 * dt
	ok := r.stored >= need
	r.stored -= need
	if r.stored < 0 {
		r.stored = 0
	}
	return ok
}

// Stored returns the energy currently held, in joules.
func (r *Reservoir) Stored() float64 { return r.stored }
