package tag

import (
	"testing"

	"repro/internal/dsp"
)

func TestFrameBitsLayout(t *testing.T) {
	payload := []bool{true, false, true}
	bits := FrameBits(payload)
	if len(bits) != 13+3+13 {
		t.Fatalf("frame length = %d, want 29", len(bits))
	}
	for i, b := range Preamble {
		if bits[i] != b {
			t.Fatalf("preamble mismatch at %d", i)
		}
	}
	for i, b := range payload {
		if bits[13+i] != b {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	for i, b := range Postamble {
		if bits[16+i] != b {
			t.Fatalf("postamble mismatch at %d", i)
		}
	}
}

func TestPostambleIsInvertedPreamble(t *testing.T) {
	for i := range Preamble {
		if Postamble[i] == Preamble[i] {
			t.Fatalf("postamble bit %d not inverted", i)
		}
	}
}

func TestNewModulatorValidation(t *testing.T) {
	if _, err := NewModulator([]bool{true}, 0, 0); err == nil {
		t.Error("zero bit duration should error")
	}
	if _, err := NewModulator(nil, 0, 0.01); err == nil {
		t.Error("empty bits should error")
	}
}

func TestModulatorStateAt(t *testing.T) {
	bits := []bool{true, false, true, true}
	m, err := NewModulator(bits, 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want bool
	}{
		{0.5, false},   // before start: absorbing
		{1.005, true},  // bit 0
		{1.015, false}, // bit 1
		{1.025, true},  // bit 2
		{1.035, true},  // bit 3
		{1.045, false}, // after end
	}
	for _, c := range cases {
		if got := m.StateAt(c.t); got != c.want {
			t.Errorf("StateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestModulatorTiming(t *testing.T) {
	m, _ := NewModulator(make([]bool, 90), 2, 0.01)
	if m.Start() != 2 {
		t.Errorf("Start = %v", m.Start())
	}
	if got := m.End(); got != 2.9 {
		t.Errorf("End = %v, want 2.9", got)
	}
	if m.Active(1.99) || !m.Active(2.5) || m.Active(2.9) {
		t.Error("Active window wrong")
	}
	if m.BitDuration() != 0.01 {
		t.Errorf("BitDuration = %v", m.BitDuration())
	}
}

func TestModulatorBitsCopied(t *testing.T) {
	src := []bool{true, false}
	m, _ := NewModulator(src, 0, 1)
	src[0] = false
	if !m.StateAt(0.5) {
		t.Error("modulator must copy its bit sequence")
	}
	got := m.Bits()
	got[1] = true
	if m.StateAt(1.5) {
		t.Error("Bits() must return a copy")
	}
}

func TestModulatorEnergy(t *testing.T) {
	// 90 bits at 10 ms each = 0.9 s at 0.65 µW.
	m, _ := NewModulator(make([]bool, 90), 0, 0.01)
	want := 0.65e-6 * 0.9
	if got := m.EnergyJoules(); got < want*0.99 || got > want*1.01 {
		t.Errorf("energy = %v J, want ~%v", got, want)
	}
}

func TestExpandWithCodes(t *testing.T) {
	code0, code1, err := dsp.WalshPair(4)
	if err != nil {
		t.Fatal(err)
	}
	out := ExpandWithCodes([]bool{true, false}, code0, code1)
	if len(out) != 8 {
		t.Fatalf("expanded length = %d, want 8", len(out))
	}
	b0, b1 := dsp.CodeBits(code0), dsp.CodeBits(code1)
	for i := 0; i < 4; i++ {
		if out[i] != b1[i] {
			t.Errorf("one-bit chip %d = %v, want code1", i, out[i])
		}
		if out[4+i] != b0[i] {
			t.Errorf("zero-bit chip %d = %v, want code0", i, out[4+i])
		}
	}
}

func TestScrambleInvolution(t *testing.T) {
	bits := make([]bool, 200)
	for i := range bits {
		bits[i] = i%7 == 0
	}
	twice := Scramble(Scramble(bits))
	for i := range bits {
		if twice[i] != bits[i] {
			t.Fatalf("Scramble is not an involution at bit %d", i)
		}
	}
}

func TestScrambleBalancesRuns(t *testing.T) {
	// A long run of zeros must come out roughly balanced.
	zeros := make([]bool, 256)
	out := Scramble(zeros)
	ones := 0
	longest, run := 0, 0
	var prev bool
	for i, b := range out {
		if b {
			ones++
		}
		if i > 0 && b == prev {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
		prev = b
	}
	if ones < 96 || ones > 160 {
		t.Errorf("scrambled zeros have %d/256 ones, want ~half", ones)
	}
	if longest > 10 {
		t.Errorf("scrambled zeros contain a run of %d, want short runs", longest)
	}
}

func TestScrambleDiffersFromInput(t *testing.T) {
	zeros := make([]bool, 64)
	out := Scramble(zeros)
	same := true
	for _, b := range out {
		if b {
			same = false
		}
	}
	if same {
		t.Error("Scramble left an all-zero payload unchanged")
	}
}
