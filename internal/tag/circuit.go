package tag

import (
	"math"

	"repro/internal/rng"
	"repro/internal/units"
)

// Circuit simulates the tag's analog downlink receiver (§4.2, Fig. 8):
//
//	antenna → envelope detector → peak finder → set-threshold → comparator
//
// The envelope detector strips the 2.4 GHz carrier and, being a diode-RC
// stage, tracks rises with a charge time constant and falls with a
// discharge time constant. The peak finder holds the largest recent
// envelope on a capacitor that bleeds off slowly through the set-threshold
// resistor network, which also halves the held peak to produce the
// comparator threshold. The comparator outputs one whenever the (noisy)
// detected envelope exceeds the threshold.
//
// All voltages are normalized so that an incident power of P mW produces an
// RMS envelope of sqrt(P): callers scale by the link budget.
type Circuit struct {
	// ChargeTime is the envelope detector's rise time constant. It sets
	// the shortest detectable packet (§4.2: 50 µs).
	ChargeTime float64
	// DischargeTime is the envelope detector's fall time constant.
	DischargeTime float64
	// PeakDecay is the set-threshold network's bleed time constant,
	// which "resets" the peak detector over a relatively long interval.
	PeakDecay float64
	// ThresholdRatio divides the held peak to form the threshold (the
	// paper's capacitor divider halves it).
	ThresholdRatio float64
	// NoiseRMS is the comparator's input-referred noise in normalized
	// volts; it sets the detection sensitivity and hence range.
	NoiseRMS float64
	// MinThreshold keeps the comparator from triggering on pure noise
	// when no signal has charged the peak detector.
	MinThreshold float64
	// FixedThreshold, when positive, replaces the adaptive peak/2
	// threshold with a constant — the ablation of the set-threshold
	// circuit. A fixed threshold only suits one signal level, which is
	// why the paper's design adapts.
	FixedThreshold float64

	env  float64 // envelope detector output
	peak float64 // peak finder capacitor voltage
	rnd  *rng.Stream
}

// ReceivePowerMicrowatt is the measured downlink circuit power (§6).
const ReceivePowerMicrowatt = 9.0

// DefaultCircuit returns the calibrated receiver circuit. The noise floor
// is set so 50 µs packets decode to ~2.1 m and 200 µs packets to ~3 m from
// a +16 dBm reader, matching Fig. 17.
func DefaultCircuit(rnd *rng.Stream) *Circuit {
	return &Circuit{
		ChargeTime:     20e-6,
		DischargeTime:  12e-6,
		PeakDecay:      20e-3,
		ThresholdRatio: 0.45,
		NoiseRMS:       0.0033,
		MinThreshold:   0.006,
		rnd:            rnd,
	}
}

// Reset clears the analog state.
func (c *Circuit) Reset() { c.env, c.peak = 0, 0 }

// Step advances the circuit by dt seconds with the given instantaneous
// received envelope amplitude (normalized volts) and returns the
// comparator output. The RC stages integrate the (clean) detected
// envelope; the comparator's input-referred noise enters at the decision,
// which is what limits sensitivity.
func (c *Circuit) Step(input float64, dt float64) bool {
	if input < 0 {
		input = 0
	}
	// Diode-RC envelope detector: charge toward rises, discharge
	// through the bleed resistor otherwise.
	if input > c.env {
		c.env += (input - c.env) * rcStep(dt, c.ChargeTime)
	} else {
		c.env += (input - c.env) * rcStep(dt, c.DischargeTime)
	}
	// Peak finder with slow bleed.
	if c.env > c.peak {
		c.peak = c.env
	} else {
		c.peak *= math.Exp(-dt / c.PeakDecay)
	}
	thresh := c.peak * c.ThresholdRatio
	if thresh < c.MinThreshold {
		thresh = c.MinThreshold
	}
	if c.FixedThreshold > 0 {
		thresh = c.FixedThreshold
	}
	return c.env+c.rnd.Gaussian(0, c.NoiseRMS) > thresh
}

// rcStep returns the first-order step fraction 1-exp(-dt/tau), guarding a
// non-positive time constant as an instantaneous response.
func rcStep(dt, tau float64) float64 {
	if tau <= 0 {
		return 1
	}
	return 1 - math.Exp(-dt/tau)
}

// ReceivedEnvelopeScale returns the normalized RMS envelope voltage at the
// tag for a transmitter with power p at distance d and carrier frequency f:
// sqrt of the received power in mW under free-space loss.
func ReceivedEnvelopeScale(p units.DBm, d units.Meters, f units.Hertz) float64 {
	lambda := f.Wavelength()
	if d <= 0 || lambda <= 0 {
		return 0
	}
	g := float64(lambda) / (4 * math.Pi * float64(d))
	rx := float64(p.Milliwatts()) * g * g
	return math.Sqrt(rx)
}
