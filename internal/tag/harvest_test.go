package tag

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestWiFiHarvestAtOneFoot(t *testing.T) {
	h := DefaultHarvester()
	// §6: "the Wi-Fi power harvester can continuously run both the
	// transmitter and receiver from a distance of one foot from the
	// Wi-Fi reader".
	got := h.WiFiHarvest(16, 0.3048)
	if float64(got) < CircuitLoadMicrowatt {
		t.Errorf("harvest at 1 ft = %v µW, want >= %v", got, CircuitLoadMicrowatt)
	}
}

func TestTVHarvestDutyCycleAt10km(t *testing.T) {
	h := DefaultHarvester()
	// §6: dual-antenna system runs at ~50% duty cycle 10 km from a TV
	// tower, independent of Wi-Fi reader distance.
	supply := h.TVHarvest(10_000)
	dc := DutyCycle(supply, CircuitLoadMicrowatt)
	if dc < 0.3 || dc > 0.75 {
		t.Errorf("duty cycle at 10 km = %v, want ~0.5", dc)
	}
}

func TestHarvestFallsWithDistance(t *testing.T) {
	h := DefaultHarvester()
	prev := h.TVHarvest(1000)
	for _, d := range []units.Meters{2000, 5000, 10000, 20000} {
		cur := h.TVHarvest(d)
		if cur >= prev {
			t.Errorf("TV harvest not decreasing at %v m", d)
		}
		prev = cur
	}
}

func TestHarvestGuards(t *testing.T) {
	h := DefaultHarvester()
	if h.WiFiHarvest(16, 0) != 0 {
		t.Error("zero distance should harvest 0")
	}
	if h.WiFiHarvest(16, -1) != 0 {
		t.Error("negative distance should harvest 0")
	}
	h.TVAperture = 0
	if h.TVHarvest(1000) != 0 {
		t.Error("zero aperture should harvest 0")
	}
}

func TestDutyCycle(t *testing.T) {
	if got := DutyCycle(5, 10); got != 0.5 {
		t.Errorf("DutyCycle(5, 10) = %v, want 0.5", got)
	}
	if got := DutyCycle(20, 10); got != 1 {
		t.Errorf("surplus supply should cap at 1, got %v", got)
	}
	if got := DutyCycle(0, 10); got != 0 {
		t.Errorf("no supply should give 0, got %v", got)
	}
	if got := DutyCycle(5, 0); got != 1 {
		t.Errorf("no load should give 1, got %v", got)
	}
}

func TestCircuitLoadMatchesPaper(t *testing.T) {
	if math.Abs(CircuitLoadMicrowatt-9.65) > 1e-9 {
		t.Errorf("circuit load = %v µW, want 9.65 (0.65 tx + 9.0 rx)", CircuitLoadMicrowatt)
	}
}

func TestReservoirChargeDraw(t *testing.T) {
	r := &Reservoir{CapacityJoules: 1e-3}
	r.Charge(100, 1) // 100 µW for 1 s = 1e-4 J
	if math.Abs(r.Stored()-1e-4) > 1e-12 {
		t.Errorf("stored = %v, want 1e-4", r.Stored())
	}
	if !r.Draw(50, 1) { // 5e-5 J available
		t.Error("draw within budget should succeed")
	}
	if r.Draw(1000, 1) {
		t.Error("draw beyond budget should fail")
	}
	if r.Stored() != 0 {
		t.Errorf("over-draw should floor at 0, got %v", r.Stored())
	}
}

func TestReservoirSaturates(t *testing.T) {
	r := &Reservoir{CapacityJoules: 1e-6}
	r.Charge(1e6, 10)
	if r.Stored() != 1e-6 {
		t.Errorf("stored = %v, want capacity 1e-6", r.Stored())
	}
}

func TestHarvestContinuityAtReference(t *testing.T) {
	// The piecewise model should not jump at the reference distance.
	h := DefaultHarvester()
	just := float64(h.TVHarvest(99.99))
	at := float64(h.TVHarvest(100.01))
	if math.Abs(just-at)/just > 0.01 {
		t.Errorf("discontinuity at reference: %v vs %v", just, at)
	}
}
