package tag

import (
	"fmt"
	"math"
)

// DownlinkPreamble is the 16-bit pattern that opens every downlink message
// (Fig. 7). It is chosen to have an irregular run-length structure so
// ordinary Wi-Fi traffic rarely imitates it (§8.2 measures < 30 false
// positives/hour).
var DownlinkPreamble = []bool{
	true, false, true, true, false, false, true, false,
	true, true, true, false, false, true, false, true,
}

// Decoder is the tag's microcontroller logic. It has the two power modes of
// §4.2: preamble-detection mode, where the µC sleeps until the comparator
// output transitions and matches inter-transition intervals against the
// preamble's run-length signature; and packet-decoding mode, where it wakes
// briefly at each bit midpoint to sample the comparator.
type Decoder struct {
	// BitDuration of downlink bits in seconds (50 µs at 20 kbps).
	BitDuration float64
	// Tolerance is the accepted relative deviation of each
	// inter-transition interval from the preamble's reference intervals.
	Tolerance float64
	// PayloadBits is the expected payload length including CRC
	// (64 in the paper's message format).
	PayloadBits int

	// Power accounting (§4.2, §6).
	Wakeups    int     // µC wake events (transitions + bit samples)
	AwakeTime  float64 // seconds spent awake
	FalseWakes int     // preamble matches that failed CRC/framing

	refRuns []float64 // matched run-length signature (all but the last run)
	lastRun float64   // the preamble's final run length, in bits
	edges   []edge
}

type edge struct {
	at    float64
	level bool
}

// preambleRuns derives the run-length signature of a bit pattern: the
// durations (in bit periods) between level transitions, and the level the
// pattern starts with.
func preambleRuns(p []bool) (runs []float64, first bool) {
	if len(p) == 0 {
		return nil, false
	}
	first = p[0]
	run := 1
	for i := 1; i < len(p); i++ {
		if p[i] == p[i-1] {
			run++
			continue
		}
		runs = append(runs, float64(run))
		run = 1
	}
	runs = append(runs, float64(run))
	return runs, first
}

// NewDecoder builds a decoder for the given bit duration.
func NewDecoder(bitDuration float64) (*Decoder, error) {
	if bitDuration <= 0 {
		return nil, fmt.Errorf("tag: bit duration must be positive, got %v", bitDuration)
	}
	runs, _ := preambleRuns(DownlinkPreamble)
	// The preamble's final run is only delimited by the first payload
	// transition, whose timing depends on payload content; match on the
	// preceding runs and use the final run's nominal length for
	// alignment.
	return &Decoder{
		BitDuration: bitDuration,
		Tolerance:   0.3,
		PayloadBits: 64,
		refRuns:     runs[:len(runs)-1],
		lastRun:     runs[len(runs)-1],
	}, nil
}

// PayloadStartAfterMatch returns when the payload's first bit period begins
// given the time of the matching transition reported by OnEdge (the
// transition into the preamble's final run).
func (d *Decoder) PayloadStartAfterMatch(matchTime float64) float64 {
	return matchTime + d.lastRun*d.BitDuration
}

// wakeCost is the µC active time charged per wake event (a brief sample or
// interval comparison).
const wakeCost = 5e-6

// OnEdge feeds a comparator output transition at time t to the
// preamble-detection mode. It returns true when the transition history
// matches the preamble's run-length signature, meaning a packet body is
// about to begin and the µC should switch to packet-decoding mode. The
// caller supplies edges in increasing time order.
func (d *Decoder) OnEdge(t float64, level bool) bool {
	d.Wakeups++
	d.AwakeTime += wakeCost
	d.edges = append(d.edges, edge{at: t, level: level})
	// Keep just enough history for one preamble.
	need := len(d.refRuns) + 1
	if len(d.edges) > need {
		d.edges = d.edges[len(d.edges)-need:]
	}
	if len(d.edges) < need {
		return false
	}
	// The preamble ends with its last run; intervals between the stored
	// edges must match refRuns scaled by the bit duration. One interval
	// is allowed to miss — the analog front end occasionally merges or
	// splits an edge — which is also what lets ordinary traffic
	// occasionally fake a match (the Fig. 18 false positives).
	misses := 0
	for i := 0; i < len(d.refRuns); i++ {
		got := d.edges[i+1].at - d.edges[i].at
		want := d.refRuns[i] * d.BitDuration
		if math.Abs(got-want) > d.Tolerance*want {
			misses++
			if misses > 1 {
				return false
			}
		}
	}
	// The first stored edge must rise to the preamble's opening level.
	if !d.edges[0].level {
		return false
	}
	d.edges = d.edges[:0]
	return true
}

// Debounce applies the µC interrupt pin's glitch filter to a comparator
// sample stream: any run shorter than minRun samples is absorbed into the
// preceding level, so only transitions that hold trigger wake-ups. The
// input is not modified.
func Debounce(samples []bool, minRun int) []bool {
	out := append([]bool(nil), samples...)
	if minRun <= 1 || len(out) == 0 {
		return out
	}
	level := out[0]
	i := 0
	for i < len(out) {
		j := i
		for j < len(out) && out[j] == out[i] {
			j++
		}
		if out[i] != level && j-i < minRun {
			// Glitch: absorb into the current level.
			for k := i; k < j; k++ {
				out[k] = level
			}
		} else {
			level = out[i]
		}
		i = j
	}
	return out
}

// SampleMidBits decodes n bits from comparator samples in packet-decoding
// mode: the µC wakes at the midpoint of each bit period and takes one
// sample. samples holds the comparator output at sampleRate Hz, and start
// is the index where the first bit period begins.
func (d *Decoder) SampleMidBits(samples []bool, sampleRate float64, start int, n int) []bool {
	bits := make([]bool, 0, n)
	perBit := d.BitDuration * sampleRate
	for i := 0; i < n; i++ {
		idx := start + int((float64(i)+0.5)*perBit)
		if idx < 0 || idx >= len(samples) {
			break
		}
		d.Wakeups++
		d.AwakeTime += wakeCost
		bits = append(bits, samples[idx])
	}
	return bits
}

// MeanActivePowerMicrowatt converts the decoder's accounting into an
// average µC power over a horizon, given the µC's active and sleep power
// draws in µW.
func (d *Decoder) MeanActivePowerMicrowatt(horizon, activeUW, sleepUW float64) float64 {
	if horizon <= 0 {
		return 0
	}
	awake := d.AwakeTime
	if awake > horizon {
		awake = horizon
	}
	return (awake*activeUW + (horizon-awake)*sleepUW) / horizon
}
