// Package tag implements the RF-powered Wi-Fi Backscatter tag: the uplink
// switch modulator driven by a bit clock (§3.1, §6), the downlink analog
// receiver circuit — envelope detector, peak finder, set-threshold and
// comparator (§4.2) — the microcontroller's two-mode decoder (preamble
// detection on comparator transitions, mid-bit sampling during packet
// decode), and the energy harvesting / power budget model (§6).
package tag

import (
	"fmt"

	"repro/internal/dsp"
)

// Message framing constants (§6): each uplink packet carries a preamble,
// payload, and postamble. The preamble is the 13-bit Barker code chosen for
// its autocorrelation properties; the postamble is its inverse, letting the
// reader recover the bit clock at both ends.
var (
	// Preamble is the uplink preamble bit pattern.
	Preamble = dsp.BarkerBits()
	// Postamble is the inverted preamble.
	Postamble = invertBits(dsp.BarkerBits())
)

func invertBits(b []bool) []bool {
	out := make([]bool, len(b))
	for i, v := range b {
		out[i] = !v
	}
	return out
}

// FrameBits builds the on-air uplink bit sequence for a payload:
// preamble + payload + postamble.
func FrameBits(payload []bool) []bool {
	out := make([]bool, 0, len(Preamble)+len(payload)+len(Postamble))
	out = append(out, Preamble...)
	out = append(out, payload...)
	out = append(out, Postamble...)
	return out
}

// ExpandWithCodes maps each payload bit to one of two chip codes (§3.4's
// long-range coding): ones become code1, zeros become code0. The preamble
// and postamble are not expanded — they remain plain bits so the reader's
// preamble correlator is unchanged.
func ExpandWithCodes(payload []bool, code0, code1 []float64) []bool {
	b0, b1 := dsp.CodeBits(code0), dsp.CodeBits(code1)
	var out []bool
	for _, bit := range payload {
		if bit {
			out = append(out, b1...)
		} else {
			out = append(out, b0...)
		}
	}
	return out
}

// Modulator drives the tag's RF switch: given the on-air bit sequence, a
// start time and a bit duration, it answers "is the switch reflecting at
// time t?". Outside the transmission the switch rests in the absorbing
// state, and the tag presents a static channel.
//
// §3.1: the minimum bit period exceeds a Wi-Fi packet's duration so the
// channel is stable within each packet; the bit rate adapts to network
// traffic via BitDuration.
type Modulator struct {
	bits     []bool
	start    float64
	bitDur   float64
	txPowerW float64 // switch drive power, watts
}

// TransmitPowerMicrowatt is the measured uplink circuit power (§6).
const TransmitPowerMicrowatt = 0.65

// NewModulator prepares a transmission of the given bit sequence starting
// at start (seconds) with the given per-bit duration.
func NewModulator(bits []bool, start, bitDuration float64) (*Modulator, error) {
	if bitDuration <= 0 {
		return nil, fmt.Errorf("tag: bit duration must be positive, got %v", bitDuration)
	}
	if len(bits) == 0 {
		return nil, fmt.Errorf("tag: empty bit sequence")
	}
	return &Modulator{
		bits:     append([]bool(nil), bits...),
		start:    start,
		bitDur:   bitDuration,
		txPowerW: TransmitPowerMicrowatt * 1e-6,
	}, nil
}

// StateAt reports whether the switch is reflecting at time t.
func (m *Modulator) StateAt(t float64) bool {
	if t < m.start {
		return false
	}
	i := int((t - m.start) / m.bitDur)
	if i >= len(m.bits) {
		return false
	}
	return m.bits[i]
}

// Active reports whether the transmission covers time t.
func (m *Modulator) Active(t float64) bool {
	return t >= m.start && t < m.End()
}

// End returns the time the transmission completes.
func (m *Modulator) End() float64 {
	return m.start + float64(len(m.bits))*m.bitDur
}

// Start returns the transmission start time.
func (m *Modulator) Start() float64 { return m.start }

// BitDuration returns the per-bit duration in seconds.
func (m *Modulator) BitDuration() float64 { return m.bitDur }

// Bits returns a copy of the on-air bit sequence.
func (m *Modulator) Bits() []bool { return append([]bool(nil), m.bits...) }

// EnergyJoules returns the switch-drive energy consumed by the whole
// transmission.
func (m *Modulator) EnergyJoules() float64 {
	return m.txPowerW * float64(len(m.bits)) * m.bitDur
}
