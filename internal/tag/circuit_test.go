package tag

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/wifi"
)

// noiselessCircuit returns a circuit with noise disabled for deterministic
// behavioural tests.
func noiselessCircuit() *Circuit {
	c := DefaultCircuit(rng.New(1))
	c.NoiseRMS = 0
	return c
}

const dt = 1.0 / wifi.EnvelopeSampleRate

// feed pushes n samples of constant amplitude and returns the final
// comparator output.
func feed(c *Circuit, amp float64, n int) bool {
	out := false
	for i := 0; i < n; i++ {
		out = c.Step(amp, dt)
	}
	return out
}

func TestCircuitDetectsStrongSignal(t *testing.T) {
	c := noiselessCircuit()
	// 50 µs of signal at amplitude 1 (far above MinThreshold).
	if got := feed(c, 1, 200); !got {
		t.Error("comparator should be high during a strong packet")
	}
}

func TestCircuitSilenceAfterSignalGoesLow(t *testing.T) {
	c := noiselessCircuit()
	feed(c, 1, 200)
	// After 50 µs of silence, the envelope has discharged (τ=6 µs) but
	// the peak hold keeps the threshold up: output must be low.
	if got := feed(c, 0, 200); got {
		t.Error("comparator should be low mid-silence")
	}
}

func TestCircuitIgnoresWeakNoiseFloor(t *testing.T) {
	c := noiselessCircuit()
	// Inputs below MinThreshold never trigger.
	if got := feed(c, c.MinThreshold*0.8, 1000); got {
		t.Error("sub-threshold input should not trigger the comparator")
	}
}

func TestCircuitPacketGapResolution(t *testing.T) {
	// A 50 µs packet / 50 µs gap train should produce alternating
	// comparator levels at bit midpoints — the §4.2 claim that the
	// receiver resolves 50 µs packets.
	c := noiselessCircuit()
	samplesPerBit := 200 // 50 µs at 4 MHz
	var outs []bool
	for bit := 0; bit < 10; bit++ {
		amp := 0.0
		if bit%2 == 0 {
			amp = 1
		}
		for i := 0; i < samplesPerBit; i++ {
			o := c.Step(amp, dt)
			if i == samplesPerBit/2 {
				outs = append(outs, o)
			}
		}
	}
	for i, o := range outs {
		want := i%2 == 0
		if o != want {
			t.Errorf("bit %d comparator = %v, want %v", i, o, want)
		}
	}
}

func TestCircuitThresholdAdaptsToLevel(t *testing.T) {
	// The peak/2 threshold must track the signal level: after a strong
	// signal, a signal at 30% of the old level reads low until the peak
	// bleeds down, then reads high again — the "resetting" behaviour.
	c := noiselessCircuit()
	feed(c, 1, 400)
	if got := feed(c, 0.3, 100); got {
		t.Error("30% signal right after a strong one should be under threshold")
	}
	// Bleed for 3 peak-decay constants with the weak signal present.
	n := int(3 * c.PeakDecay / dt)
	if got := feed(c, 0.3, n); !got {
		t.Error("threshold should adapt down to the new level")
	}
}

func TestCircuitChargeTimeLimitsShortPackets(t *testing.T) {
	// The envelope mid-packet level should be visibly lower for a 25 µs
	// packet than for 200 µs, which is what makes shorter packets lose
	// range.
	mid := func(samples int) float64 {
		c := noiselessCircuit()
		for i := 0; i < samples/2; i++ {
			c.Step(1, dt)
		}
		return c.env
	}
	short := mid(100) // 25 µs
	long := mid(800)  // 200 µs
	if short >= long {
		t.Errorf("short packet envelope %v should charge less than long %v", short, long)
	}
	if long < 0.9 {
		t.Errorf("long packet should charge nearly fully, got %v", long)
	}
}

func TestCircuitReset(t *testing.T) {
	c := noiselessCircuit()
	feed(c, 1, 500)
	c.Reset()
	if c.env != 0 || c.peak != 0 {
		t.Error("Reset should clear analog state")
	}
}

func TestRcStepGuards(t *testing.T) {
	if got := rcStep(1e-6, 0); got != 1 {
		t.Errorf("zero tau should respond instantly, got %v", got)
	}
	if got := rcStep(1e-6, 12e-6); got <= 0 || got >= 1 {
		t.Errorf("rcStep out of range: %v", got)
	}
}

func TestReceivedEnvelopeScale(t *testing.T) {
	f := 2.437 * units.GHz
	// +16 dBm at 2.13 m: free-space received power ≈ -30.7 dBm, so the
	// normalized envelope is sqrt(10^(-3.07)) ≈ 0.029.
	got := ReceivedEnvelopeScale(16, 2.13, f)
	if math.Abs(got-0.029) > 0.003 {
		t.Errorf("envelope scale at 2.13 m = %v, want ~0.029", got)
	}
	// Falls as 1/d.
	near := ReceivedEnvelopeScale(16, 1, f)
	far := ReceivedEnvelopeScale(16, 2, f)
	if math.Abs(near/far-2) > 1e-9 {
		t.Errorf("envelope should fall as 1/d: ratio %v", near/far)
	}
	if ReceivedEnvelopeScale(16, 0, f) != 0 {
		t.Error("zero distance should return 0")
	}
}

func TestCircuitNoiseSensitivityOrdering(t *testing.T) {
	// With the default noise, a strong (near) signal should produce far
	// fewer comparator errors than a weak (far) one.
	errorsAt := func(scale float64, seed int64) int {
		c := DefaultCircuit(rng.New(seed))
		errs := 0
		samplesPerBit := 200
		for bit := 0; bit < 200; bit++ {
			amp := 0.0
			if bit%2 == 0 {
				amp = scale
			}
			for i := 0; i < samplesPerBit; i++ {
				o := c.Step(amp*1.0, dt)
				if i == samplesPerBit/2 && o != (bit%2 == 0) {
					errs++
				}
			}
		}
		return errs
	}
	nearErrs := errorsAt(ReceivedEnvelopeScale(16, 0.5, 2.437*units.GHz), 7)
	farErrs := errorsAt(ReceivedEnvelopeScale(16, 4.0, 2.437*units.GHz), 7)
	if nearErrs >= farErrs {
		t.Errorf("errors near (%d) should be below errors far (%d)", nearErrs, farErrs)
	}
	if nearErrs > 2 {
		t.Errorf("50 cm link should be nearly error free, got %d/200", nearErrs)
	}
}
