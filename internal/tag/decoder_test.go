package tag

import (
	"testing"

	"repro/internal/rng"
)

func TestPreambleRuns(t *testing.T) {
	runs, first := preambleRuns([]bool{true, true, false, true, true, true})
	if !first {
		t.Error("first level should be true")
	}
	want := []float64{2, 1, 3}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	if r, _ := preambleRuns(nil); r != nil {
		t.Error("empty pattern should give nil runs")
	}
}

func TestNewDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(0); err == nil {
		t.Error("zero bit duration should error")
	}
	if _, err := NewDecoder(-1); err == nil {
		t.Error("negative bit duration should error")
	}
}

// preambleEdges generates the comparator edge sequence for the downlink
// preamble at the given bit duration, starting at t0. It returns the edge
// times/levels and the time of the final (matching) transition.
func preambleEdges(t0, bitDur float64) (times []float64, levels []bool) {
	runs, first := preambleRuns(DownlinkPreamble)
	level := first
	at := t0
	times = append(times, at)
	levels = append(levels, level)
	for _, r := range runs[:len(runs)-1] {
		at += r * bitDur
		level = !level
		times = append(times, at)
		levels = append(levels, level)
	}
	return times, levels
}

func TestDecoderMatchesCleanPreamble(t *testing.T) {
	const bitDur = 50e-6
	d, err := NewDecoder(bitDur)
	if err != nil {
		t.Fatal(err)
	}
	times, levels := preambleEdges(1.0, bitDur)
	matched := false
	var matchAt float64
	for i := range times {
		if d.OnEdge(times[i], levels[i]) {
			matched = true
			matchAt = times[i]
		}
	}
	if !matched {
		t.Fatal("clean preamble not matched")
	}
	if matchAt != times[len(times)-1] {
		t.Errorf("match at %v, want final transition %v", matchAt, times[len(times)-1])
	}
	// Payload begins after the preamble's final run.
	runs, _ := preambleRuns(DownlinkPreamble)
	wantStart := matchAt + runs[len(runs)-1]*bitDur
	if got := d.PayloadStartAfterMatch(matchAt); got != wantStart {
		t.Errorf("payload start = %v, want %v", got, wantStart)
	}
}

func TestDecoderRejectsJitteredPreamble(t *testing.T) {
	const bitDur = 50e-6
	d, _ := NewDecoder(bitDur)
	times, levels := preambleEdges(1.0, bitDur)
	// Stretch two intervals by a full bit period each — beyond both the
	// per-interval tolerance and the single-miss allowance.
	for i := 3; i < len(times); i++ {
		times[i] += 1.0 * bitDur
	}
	for i := 6; i < len(times); i++ {
		times[i] += 1.0 * bitDur
	}
	for i := range times {
		if d.OnEdge(times[i], levels[i]) {
			t.Fatal("distorted preamble should not match")
		}
	}
}

func TestDecoderToleratesSmallJitter(t *testing.T) {
	const bitDur = 50e-6
	d, _ := NewDecoder(bitDur)
	times, levels := preambleEdges(1.0, bitDur)
	rnd := rng.New(5)
	for i := range times {
		times[i] += rnd.Gaussian(0, 0.05*bitDur)
	}
	matched := false
	for i := range times {
		if d.OnEdge(times[i], levels[i]) {
			matched = true
		}
	}
	if !matched {
		t.Error("preamble with 5% jitter should still match")
	}
}

func TestDecoderRareFalseMatchOnRandomTraffic(t *testing.T) {
	// Random packet/gap durations should essentially never produce the
	// preamble's 15-interval signature.
	const bitDur = 50e-6
	d, _ := NewDecoder(bitDur)
	rnd := rng.New(6)
	at := 0.0
	level := false
	matches := 0
	for i := 0; i < 200_000; i++ {
		at += rnd.Exponential(300e-6)
		level = !level
		if d.OnEdge(at, level) {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("random traffic matched preamble %d times in 200k edges", matches)
	}
}

func TestDecoderWakeAccounting(t *testing.T) {
	d, _ := NewDecoder(50e-6)
	times, levels := preambleEdges(0, 50e-6)
	for i := range times {
		d.OnEdge(times[i], levels[i])
	}
	if d.Wakeups != len(times) {
		t.Errorf("wakeups = %d, want %d", d.Wakeups, len(times))
	}
	if d.AwakeTime <= 0 {
		t.Error("awake time should accumulate")
	}
}

func TestSampleMidBits(t *testing.T) {
	d, _ := NewDecoder(50e-6)
	// Comparator samples at 4 MHz: 200 per bit. Bits: 1,0,1.
	var samples []bool
	for _, b := range []bool{true, false, true} {
		for i := 0; i < 200; i++ {
			samples = append(samples, b)
		}
	}
	got := d.SampleMidBits(samples, 4e6, 0, 3)
	want := []bool{true, false, true}
	if len(got) != 3 {
		t.Fatalf("decoded %d bits, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bit %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSampleMidBitsTruncates(t *testing.T) {
	d, _ := NewDecoder(50e-6)
	samples := make([]bool, 250) // 1.25 bits
	got := d.SampleMidBits(samples, 4e6, 0, 5)
	if len(got) != 1 {
		t.Errorf("decoded %d bits from truncated input, want 1", len(got))
	}
}

func TestMeanActivePower(t *testing.T) {
	d, _ := NewDecoder(50e-6)
	d.AwakeTime = 0.5
	// Over 10 s: 0.5 s at 500 µW + 9.5 s at 1 µW = (250+9.5)/10 µW.
	got := d.MeanActivePowerMicrowatt(10, 500, 1)
	want := (0.5*500 + 9.5*1) / 10
	if got != want {
		t.Errorf("mean power = %v, want %v", got, want)
	}
	if d.MeanActivePowerMicrowatt(0, 500, 1) != 0 {
		t.Error("zero horizon should return 0")
	}
}

func TestDownlinkPreambleHasIrregularRuns(t *testing.T) {
	runs, _ := preambleRuns(DownlinkPreamble)
	if len(runs) < 8 {
		t.Errorf("preamble should have many transitions, got %d runs", len(runs))
	}
	// Not all runs equal (a square wave would false-trigger constantly).
	allSame := true
	for _, r := range runs[1:] {
		if r != runs[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("preamble run lengths should be irregular")
	}
}
