package obs

import (
	"bytes"
	"math"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas ignored: counters only move forward
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("second lookup should return the same handle")
	}
}

func TestGaugeHighWater(t *testing.T) {
	g := NewRegistry().Gauge("q")
	g.Set(3)
	g.Set(7)
	g.Set(2)
	g.Set(math.NaN()) // ignored
	g.Set(math.Inf(1))
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge = (%v, max %v), want (2, 7)", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN(), math.Inf(-1)} {
		h.Observe(v)
	}
	snap := snapHistogram("h", h)
	wantCounts := []int64{2, 1, 1, 1} // (-inf,1] (1,2] (2,4] (4,inf)
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want, snap.Counts)
		}
	}
	if h.Count() != 5 || snap.NonFinite != 2 {
		t.Fatalf("count = %d nonfinite = %d, want 5 and 2", h.Count(), snap.NonFinite)
	}
	if got := h.Mean(); math.Abs(got-106.0/5) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, 106.0/5)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", UnitBuckets).Observe(1)
	r.Timer("x").Observe(1)
	r.Merge(NewRegistry().Snapshot())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("nil registry should still emit an empty snapshot")
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	var tm *Timer
	tm.Observe(1)
	if c.Value() != 0 || g.Max() != 0 || h.Count() != 0 || tm.Histogram().Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

// populate builds a registry with one metric of each kind.
func populate(scale int64) *Registry {
	r := NewRegistry()
	r.Counter("c").Add(scale)
	r.Gauge("g").Set(float64(scale))
	h := r.Histogram("h", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(float64(scale))
	r.Timer("t").Observe(0.001 * float64(scale))
	return r
}

func TestSnapshotJSONStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := populate(3).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := populate(3).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical registries rendered differently:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestMergeOrderIndependentForCounts(t *testing.T) {
	// Counters and histogram buckets are commutative; merging two trial
	// snapshots in either order gives the same totals.
	fold := func(order []int64) *Snapshot {
		agg := NewRegistry()
		for _, s := range order {
			agg.Merge(populate(s).Snapshot())
		}
		return agg.Snapshot()
	}
	a, b := fold([]int64{2, 5}), fold([]int64{5, 2})
	if a.Counters[0].Value != b.Counters[0].Value {
		t.Fatalf("counter merge depends on order: %d vs %d", a.Counters[0].Value, b.Counters[0].Value)
	}
	for i := range a.Histograms[0].Counts {
		if a.Histograms[0].Counts[i] != b.Histograms[0].Counts[i] {
			t.Fatalf("histogram bucket %d differs across merge orders", i)
		}
	}
	if a.Gauges[0].Max != b.Gauges[0].Max {
		t.Fatalf("gauge max differs across merge orders: %v vs %v", a.Gauges[0].Max, b.Gauges[0].Max)
	}
}

func TestMergeDeterministicInIndexOrder(t *testing.T) {
	// The full contract: folding the same snapshots in the same order
	// yields byte-identical JSON — this is what makes -workers invisible.
	run := func() []byte {
		agg := NewRegistry()
		for i := int64(1); i <= 4; i++ {
			agg.Merge(populate(i).Snapshot())
		}
		var buf bytes.Buffer
		if err := agg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("index-ordered folds rendered differently")
	}
}

func TestMergeMismatchedBoundsGoesToOverflow(t *testing.T) {
	// Two sites claiming one name with different bounds must not lose
	// observations: excess buckets fold into the overflow.
	agg := NewRegistry()
	agg.Histogram("h", []float64{1}).Observe(0.5)
	other := NewRegistry()
	oh := other.Histogram("h", []float64{1, 2, 3})
	for _, v := range []float64{0.5, 1.5, 2.5, 9} {
		oh.Observe(v)
	}
	agg.Merge(other.Snapshot())
	snap := agg.Snapshot().Histograms[0]
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 5 || snap.Count != 5 {
		t.Fatalf("merge lost observations: buckets sum %d, count %d, want 5", total, snap.Count)
	}
}

func TestTimerUsesDurationBuckets(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("stage")
	tm.Observe(0.0025) // between 1e-3 and 3e-3
	snap := r.Snapshot().Timers[0]
	if len(snap.Bounds) != len(DurationBuckets) {
		t.Fatalf("timer bounds = %d, want %d", len(snap.Bounds), len(DurationBuckets))
	}
	idx := -1
	for i, c := range snap.Counts {
		if c == 1 {
			idx = i
		}
	}
	if idx < 0 || snap.Bounds[idx] != 3e-3 {
		t.Fatalf("2.5 ms landed in bucket %d (bounds %v)", idx, snap.Bounds)
	}
}
