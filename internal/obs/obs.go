// Package obs is the pipeline observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, fixed-bucket
// histograms, and sim-time stage timers) whose snapshots are deterministic.
//
// The layer exists to make the decode pipeline inspectable without
// breaking the reproduction's bit-identical-replay guarantee, so it obeys
// two contracts the usual metrics libraries do not:
//
//   - No wall-clock reads. Timers measure *simulated* durations handed in
//     by the caller (sim.Engine virtual seconds); nothing in this package
//     imports time, so wblint's DT001 holds by construction.
//   - Deterministic output. Snapshot and WriteJSON order every metric by
//     name and render with encoding/json's stable float formatting, so two
//     runs with the same seed — at any worker count — emit byte-identical
//     files.
//
// Concurrency model: a Registry and the metric handles it returns are
// confined to one goroutine at a time (each simulated System owns its
// own). Parallel trials each build their own registry and the per-trial
// Snapshots are folded into an aggregate registry in trial-index order on
// the calling goroutine (see internal/parallel.Fold), which keeps merges
// contention-free and the aggregate independent of worker count.
//
// Every accessor and mutator is nil-safe: a nil *Registry hands out nil
// handles and a nil handle's methods are no-ops, so instrumented code
// pays one branch when observability is off.
package obs

import (
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Negative deltas are ignored: a counter
// only moves forward, so a buggy caller cannot make drop accounting
// disagree between runs.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.n += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge records the most recent and the largest value observed — the
// high-water semantics queue depths and window sizes need.
type Gauge struct {
	value float64
	max   float64
	seen  bool
}

// Set records v as the current value and raises the high-water mark.
// Non-finite values are ignored so a snapshot always marshals to JSON.
func (g *Gauge) Set(v float64) {
	if g == nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	g.value = v
	if !g.seen || v > g.max {
		g.max = v
	}
	g.seen = true
}

// Value returns the most recently set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.value
}

// Max returns the high-water mark.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram counts observations into fixed buckets. Bucket i holds values
// v <= Bounds[i] (and greater than the previous bound); one implicit
// overflow bucket holds everything above the last bound. Bounds are fixed
// at creation so histograms from different trials merge bucket-for-bucket.
type Histogram struct {
	bounds    []float64
	counts    []int64 // len(bounds)+1; last is overflow
	sum       float64
	n         int64
	nonFinite int64
}

// newHistogram builds a histogram over sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. Non-finite values are tallied separately
// (never into sum) so snapshots stay JSON-marshalable and deterministic.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.nonFinite++
		return
	}
	h.sum += v
	h.n++
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
}

// Count returns the number of finite observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of finite observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the mean of finite observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Timer accumulates simulated (virtual-clock) durations in seconds. It is
// a histogram over a fixed duration scale; callers compute the duration
// from sim.Engine.Now() deltas — never from the wall clock.
type Timer struct {
	h *Histogram
}

// Observe records one simulated duration in seconds.
func (t *Timer) Observe(seconds float64) {
	if t == nil {
		return
	}
	t.h.Observe(seconds)
}

// Histogram exposes the timer's underlying distribution.
func (t *Timer) Histogram() *Histogram {
	if t == nil {
		return nil
	}
	return t.h
}

// DurationBuckets are the default timer bounds: 1 µs to ~100 s in decade
// steps with a 3× midpoint, covering slot times through whole-trial spans.
var DurationBuckets = []float64{
	1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
	1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// UnitBuckets span [0, 1] scores such as preamble correlations.
var UnitBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+float64(i)*width)
	}
	return out
}

// Registry names and owns a set of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is a valid "observability off" value:
// it hands out nil handles whose methods no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use. Fetch the
// handle once and retain it; the map lookup is for wiring, not hot paths.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. A name's bounds are fixed by its first creation;
// later calls return the existing histogram regardless of bounds, so one
// instrumentation site must own each name.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Timer returns the named sim-time timer over DurationBuckets, creating
// it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{h: newHistogram(DurationBuckets)}
		r.timers[name] = t
	}
	return t
}
