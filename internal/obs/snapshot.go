package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is a point-in-time, order-stable copy of a registry: every
// section is sorted by metric name, so marshaling a snapshot taken from
// the same simulated state always yields the same bytes. Snapshots are
// also the merge currency — parallel trials return one each and the
// aggregator folds them in trial-index order.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Timers     []HistogramSnapshot `json:"timers"`
}

// CounterSnapshot is one counter's state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's state.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistogramSnapshot is one histogram's (or timer's) state.
type HistogramSnapshot struct {
	Name      string    `json:"name"`
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"`
	Sum       float64   `json:"sum"`
	Count     int64     `json:"count"`
	NonFinite int64     `json:"non_finite,omitempty"`
}

// snapHistogram copies one histogram's state under a name.
func snapHistogram(name string, h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Name:      name,
		Bounds:    append([]float64(nil), h.bounds...),
		Counts:    append([]int64(nil), h.counts...),
		Sum:       h.sum,
		Count:     h.n,
		NonFinite: h.nonFinite,
	}
}

// Snapshot copies the registry's current state with every section sorted
// by name. A nil registry yields an empty (but non-nil) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
		Timers:     []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].n})
	}
	for _, name := range sortedKeys(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.value, Max: g.max})
	}
	for _, name := range sortedKeys(r.hists) {
		s.Histograms = append(s.Histograms, snapHistogram(name, r.hists[name]))
	}
	for _, name := range sortedKeys(r.timers) {
		s.Timers = append(s.Timers, snapHistogram(name, r.timers[name].h))
	}
	return s
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge folds a snapshot into the registry: counters and histogram
// buckets add, gauges keep the later value and the running maximum.
// Callers must merge in a deterministic order (trial-index order for
// parallel sweeps) so gauge values and float sums — whose accumulation is
// order-sensitive — come out identical at every worker count.
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for _, c := range s.Counters {
		r.Counter(c.Name).Add(c.Value)
	}
	for _, gs := range s.Gauges {
		g := r.Gauge(gs.Name)
		g.value = gs.Value
		if !g.seen || gs.Max > g.max {
			g.max = gs.Max
		}
		g.seen = true
	}
	for _, hs := range s.Histograms {
		mergeHistogram(r.Histogram(hs.Name, hs.Bounds), hs)
	}
	for _, hs := range s.Timers {
		mergeHistogram(r.Timer(hs.Name).h, hs)
	}
}

// mergeHistogram adds a snapshot's tallies into h. Buckets add pairwise;
// if the snapshot somehow carries more buckets than h (two sites claimed
// one name with different bounds), the excess lands in h's overflow
// bucket so no observation is silently lost.
func mergeHistogram(h *Histogram, hs HistogramSnapshot) {
	for i, c := range hs.Counts {
		j := i
		if j >= len(h.counts) {
			j = len(h.counts) - 1
		}
		h.counts[j] += c
	}
	h.sum += hs.Sum
	h.n += hs.Count
	h.nonFinite += hs.NonFinite
}

// WriteJSON renders the registry's snapshot as indented JSON followed by
// a newline. The bytes are a pure function of the simulated state: same
// seed, same output, at any worker count.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON renders the snapshot as indented JSON followed by a newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling snapshot: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
