// Package csi models what a commodity Wi-Fi card actually reports about
// the channel: per-sub-channel CSI amplitudes (Intel Wi-Fi Link 5300 with
// the CSI Tool: 30 sub-channels × 3 antennas) and coarse per-antenna RSSI.
//
// The model injects the measurement artifacts the paper's decoding
// algorithm is explicitly designed around (§3.2–3.3):
//
//   - per-packet common-mode gain error (AGC), which no amount of
//     sub-channel combining can average away;
//   - independent per-sub-channel estimation noise, which maximum-ratio
//     combining does suppress;
//   - occasional spurious jumps ("the Intel cards ... report spurious
//     changes in the CSI once every so often"), countered by hysteresis;
//   - one systematically weak antenna ("one of the antennas on our Intel
//     device almost always reported significantly low CSI values");
//   - RSSI's coarse quantization and single-value-per-band blindness, the
//     reason CSI outranges RSSI.
package csi

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/rng"
)

// Model holds the card's measurement characteristics. Use DefaultModel for
// parameters calibrated to the paper's operating points.
type Model struct {
	// AGCNoise is the standard deviation of the per-packet common-mode
	// relative amplitude error. It applies equally to every sub-channel
	// and antenna of a packet.
	AGCNoise float64
	// SubchannelNoise is the standard deviation of the independent
	// per-sub-channel relative amplitude error.
	SubchannelNoise float64
	// SpuriousProb is the per-packet, per-antenna probability of a
	// spurious CSI jump.
	SpuriousProb float64
	// SpuriousScale is the relative magnitude of a spurious jump.
	SpuriousScale float64
	// QuantStep is the CSI amplitude quantization step in CSI units.
	QuantStep float64
	// WeakAntenna is the index of the systematically weak antenna, or -1
	// for none.
	WeakAntenna int
	// WeakAntennaGain is the amplitude factor applied to the weak
	// antenna.
	WeakAntennaGain float64
	// RSSINoiseDB is the standard deviation of per-antenna RSSI noise in
	// dB (before quantization).
	RSSINoiseDB float64
	// RSSIQuantDB is the RSSI quantization step in dB (1 dB on most
	// chipsets).
	RSSIQuantDB float64
}

// DefaultModel returns Intel 5300-like measurement characteristics.
func DefaultModel() Model {
	return Model{
		AGCNoise:        0.008,
		SubchannelNoise: 0.007,
		SpuriousProb:    0.005,
		SpuriousScale:   0.3,
		QuantStep:       0.02,
		WeakAntenna:     2,
		WeakAntennaGain: 0.25,
		RSSINoiseDB:     0.15,
		RSSIQuantDB:     0.25,
	}
}

// Measurement is one packet's channel report.
type Measurement struct {
	// Timestamp is the reception-complete time in seconds (the
	// per-packet timestamp the decoder bins bits with).
	Timestamp float64
	// CSI amplitude per [antenna][sub-channel], in CSI units.
	CSI [][]float64
	// RSSI per antenna in dB (card units).
	RSSI []float64
}

// Card is a measuring instance bound to a randomness stream.
type Card struct {
	model Model
	rnd   *rng.Stream
}

// NewCard builds a Card. The stream must not be shared with other
// consumers.
func NewCard(model Model, rnd *rng.Stream) *Card {
	return &Card{model: model, rnd: rnd}
}

// Model returns the card's measurement characteristics.
func (c *Card) Model() Model { return c.model }

// Measure converts a true complex channel (indexed [antenna][sub-channel],
// in CSI units) into the card's noisy report for a packet received at time
// t.
func (c *Card) Measure(t float64, h [][]complex128) Measurement {
	m := Measurement{
		Timestamp: t,
		CSI:       make([][]float64, len(h)),
		RSSI:      make([]float64, len(h)),
	}
	agc := 1 + c.rnd.Gaussian(0, c.model.AGCNoise)
	for a, row := range h {
		gain := agc
		if a == c.model.WeakAntenna && c.model.WeakAntennaGain > 0 {
			gain *= c.model.WeakAntennaGain
		}
		if c.model.SpuriousProb > 0 && c.rnd.Float64() < c.model.SpuriousProb {
			if c.rnd.Bool() {
				gain *= 1 + c.model.SpuriousScale
			} else {
				gain *= 1 - c.model.SpuriousScale
			}
		}
		csiRow := make([]float64, len(row))
		var power float64
		for k, hk := range row {
			amp := cmplx.Abs(hk) * gain * (1 + c.rnd.Gaussian(0, c.model.SubchannelNoise))
			if amp < 0 {
				amp = 0
			}
			power += amp * amp
			csiRow[k] = quantize(amp, c.model.QuantStep)
		}
		m.CSI[a] = csiRow
		rssi := powerDB(power) + c.rnd.Gaussian(0, c.model.RSSINoiseDB)
		m.RSSI[a] = quantize(rssi, c.model.RSSIQuantDB)
	}
	return m
}

// quantize rounds x to the nearest multiple of step; step <= 0 disables
// quantization.
func quantize(x, step float64) float64 {
	if step <= 0 {
		return x
	}
	return math.Round(x/step) * step
}

// powerDB converts linear power to dB, flooring silent inputs.
func powerDB(p float64) float64 {
	if p <= 0 {
		return -100
	}
	return 10 * math.Log10(p)
}

// Series is a time series of measurements with helpers for the decoder's
// per-sub-channel views.
type Series struct {
	Measurements []Measurement
}

// Append adds a measurement.
//
//wblint:ignore SH001 Series is the materialized-trace container by design; live paths bound it with TrimBefore and batch paths are bounded by the run length
func (s *Series) Append(m Measurement) { s.Measurements = append(s.Measurements, m) }

// TrimBefore drops every measurement whose timestamp is below t, sliding
// the survivors to the front of the existing backing array so the storage
// is reused rather than reallocated. Measurements are assumed to be in
// arrival (non-decreasing timestamp) order, as Append produces them.
//
// This is the live reader's retention knob: a session that decodes online
// (see internal/reader.LiveSession) keeps only the recent window it may
// still need, so a long-running capture stays bounded instead of growing
// with trace length.
func (s *Series) TrimBefore(t float64) {
	drop := 0
	for drop < len(s.Measurements) && s.Measurements[drop].Timestamp < t {
		drop++
	}
	if drop == 0 {
		return
	}
	n := copy(s.Measurements, s.Measurements[drop:])
	// Zero the vacated tail so the dropped measurements' CSI/RSSI slices
	// can be collected while the backing array lives on.
	for i := n; i < len(s.Measurements); i++ {
		s.Measurements[i] = Measurement{}
	}
	s.Measurements = s.Measurements[:n]
}

// Len returns the number of measurements.
func (s *Series) Len() int { return len(s.Measurements) }

// Antennas returns the antenna count of the series, or 0 when empty.
func (s *Series) Antennas() int {
	if len(s.Measurements) == 0 {
		return 0
	}
	return len(s.Measurements[0].CSI)
}

// Subchannels returns the sub-channel count, or 0 when empty.
func (s *Series) Subchannels() int {
	if len(s.Measurements) == 0 || len(s.Measurements[0].CSI) == 0 {
		return 0
	}
	return len(s.Measurements[0].CSI[0])
}

// CheckShape verifies every measurement carries the same antenna and
// sub-channel counts as the first (with one RSSI entry per antenna), so
// the per-channel extractors cannot index out of range on a malformed
// series — e.g. one assembled from a truncated capture.
func (s *Series) CheckShape() error {
	ants, subs := s.Antennas(), s.Subchannels()
	for i, m := range s.Measurements {
		if len(m.CSI) != ants || len(m.RSSI) != ants {
			return fmt.Errorf("csi: measurement %d has %d CSI rows and %d RSSI entries, want %d of each",
				i, len(m.CSI), len(m.RSSI), ants)
		}
		for a, row := range m.CSI {
			if len(row) != subs {
				return fmt.Errorf("csi: measurement %d antenna %d has %d sub-channels, want %d",
					i, a, len(row), subs)
			}
		}
	}
	return nil
}

// Timestamps returns the measurement timestamps.
func (s *Series) Timestamps() []float64 {
	out := make([]float64, len(s.Measurements))
	for i, m := range s.Measurements {
		out[i] = m.Timestamp
	}
	return out
}

// CSIChannel extracts the amplitude series of one (antenna, sub-channel)
// pair. It returns an error when the indices are out of range.
func (s *Series) CSIChannel(antenna, subchannel int) ([]float64, error) {
	return s.CSIChannelInto(nil, antenna, subchannel)
}

// ValidateCSIChannel reports whether (antenna, subchannel) indexes a
// channel of the series, with the same error the extractors return. The
// decoder's single-channel entry points use it to reject a bad channel
// before streaming any measurements.
func (s *Series) ValidateCSIChannel(antenna, subchannel int) error {
	if antenna < 0 || antenna >= s.Antennas() || subchannel < 0 || subchannel >= s.Subchannels() {
		return fmt.Errorf("csi: channel (%d, %d) out of range (%d antennas, %d sub-channels)",
			antenna, subchannel, s.Antennas(), s.Subchannels())
	}
	return nil
}

// CSIChannelInto is CSIChannel writing into dst when it has enough
// capacity (a nil or short dst allocates). It lets the decoder reuse one
// buffer across its 90-channel scan instead of allocating per channel.
func (s *Series) CSIChannelInto(dst []float64, antenna, subchannel int) ([]float64, error) {
	if err := s.ValidateCSIChannel(antenna, subchannel); err != nil {
		return nil, err
	}
	if cap(dst) < len(s.Measurements) {
		dst = make([]float64, len(s.Measurements))
	}
	dst = dst[:len(s.Measurements)]
	for i, m := range s.Measurements {
		dst[i] = m.CSI[antenna][subchannel]
	}
	return dst, nil
}

// RSSIChannel extracts the RSSI series of one antenna.
func (s *Series) RSSIChannel(antenna int) ([]float64, error) {
	return s.RSSIChannelInto(nil, antenna)
}

// RSSIChannelInto is RSSIChannel writing into dst when it has enough
// capacity (a nil or short dst allocates).
func (s *Series) RSSIChannelInto(dst []float64, antenna int) ([]float64, error) {
	if antenna < 0 || antenna >= s.Antennas() {
		return nil, fmt.Errorf("csi: RSSI antenna %d out of range (%d antennas)", antenna, s.Antennas())
	}
	if cap(dst) < len(s.Measurements) {
		dst = make([]float64, len(s.Measurements))
	}
	dst = dst[:len(s.Measurements)]
	for i, m := range s.Measurements {
		dst[i] = m.RSSI[antenna]
	}
	return dst, nil
}
