package csi

// Trace serialization: a plain-text, line-oriented codec for measurement
// series so recorded CSI/RSSI traces can be checked into testdata and
// decoded in regression tests. Floats are written with strconv's shortest
// round-trip formatting, so Read(Write(s)) reproduces the series exactly
// bit-for-bit — a requirement for golden-output tests.
//
// Format:
//
//	wbtrace 1
//	dims <antennas> <subchannels>
//	<timestamp> <rssi[0]> ... <rssi[A-1]> <csi[0][0]> ... <csi[A-1][S-1]>
//	...
//
// CSI values are flattened antenna-major. Blank lines and lines starting
// with '#' are ignored.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// traceMagic identifies version 1 of the trace format.
const traceMagic = "wbtrace 1"

// WriteSeries serializes s to w in the wbtrace text format.
func WriteSeries(w io.Writer, s *Series) error {
	bw := bufio.NewWriter(w)
	ants, subs := s.Antennas(), s.Subchannels()
	fmt.Fprintf(bw, "%s\ndims %d %d\n", traceMagic, ants, subs)
	var buf []byte
	for i, m := range s.Measurements {
		if len(m.CSI) != ants || len(m.RSSI) != ants {
			return fmt.Errorf("csi: measurement %d has %d CSI / %d RSSI rows, want %d",
				i, len(m.CSI), len(m.RSSI), ants)
		}
		buf = strconv.AppendFloat(buf[:0], m.Timestamp, 'g', -1, 64)
		for _, v := range m.RSSI {
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		}
		for a, row := range m.CSI {
			if len(row) != subs {
				return fmt.Errorf("csi: measurement %d antenna %d has %d sub-channels, want %d",
					i, a, len(row), subs)
			}
			for _, v := range row {
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
			}
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSeries parses a wbtrace stream written by WriteSeries.
func ReadSeries(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("csi: reading trace header: %w", err)
	}
	if line != traceMagic {
		return nil, fmt.Errorf("csi: bad trace magic %q", line)
	}
	line, err = nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("csi: reading trace dims: %w", err)
	}
	var ants, subs int
	if _, err := fmt.Sscanf(line, "dims %d %d", &ants, &subs); err != nil {
		return nil, fmt.Errorf("csi: bad dims line %q: %w", line, err)
	}
	if ants < 0 || subs < 0 || ants > 64 || subs > 1024 {
		return nil, fmt.Errorf("csi: implausible dims %d antennas × %d sub-channels", ants, subs)
	}
	want := 1 + ants + ants*subs
	s := &Series{}
	for lineNo := 3; sc.Scan(); lineNo++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != want {
			return nil, fmt.Errorf("csi: line %d has %d fields, want %d", lineNo, len(fields), want)
		}
		vals := make([]float64, want)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("csi: line %d field %d: %w", lineNo, i, err)
			}
			vals[i] = v
		}
		m := Measurement{
			Timestamp: vals[0],
			RSSI:      vals[1 : 1+ants],
			CSI:       make([][]float64, ants),
		}
		for a := 0; a < ants; a++ {
			off := 1 + ants + a*subs
			m.CSI[a] = vals[off : off+subs]
		}
		s.Append(m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("csi: reading trace: %w", err)
	}
	return s, nil
}

// nextLine returns the next non-blank, non-comment line.
func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
