package csi

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestTraceRoundTripExact(t *testing.T) {
	card := NewCard(DefaultModel(), rng.New(11))
	var s Series
	for i := 0; i < 40; i++ {
		s.Append(card.Measure(0.001*float64(i)+1/3.0, flatChannel(3, 30, 10)))
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, &s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Measurements, s.Measurements) {
		t.Fatal("round-tripped series differs from original")
	}
	// A second write must be byte-identical (goldens depend on it).
	var buf2 bytes.Buffer
	if err := WriteSeries(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization is not byte-stable")
	}
}

func TestTraceRoundTripExtremeFloats(t *testing.T) {
	s := &Series{}
	s.Append(Measurement{
		Timestamp: math.Nextafter(1, 2),
		CSI:       [][]float64{{1e-308, 0.1 + 0.2}},
		RSSI:      []float64{-100.0000001},
	})
	var buf bytes.Buffer
	if err := WriteSeries(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Measurements, s.Measurements) {
		t.Fatal("shortest round-trip formatting lost precision")
	}
}

func TestReadSeriesRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad magic":     "nottrace 1\ndims 1 1\n",
		"missing dims":  "wbtrace 1\n",
		"bad dims":      "wbtrace 1\ndims x y\n",
		"huge dims":     "wbtrace 1\ndims 1000 9999\n",
		"short row":     "wbtrace 1\ndims 1 2\n0 1 2\n",
		"long row":      "wbtrace 1\ndims 1 1\n0 1 2 3\n",
		"non-numeric":   "wbtrace 1\ndims 1 1\n0 1 abc\n",
		"negative dims": "wbtrace 1\ndims -1 2\n",
	}
	for name, in := range cases {
		if _, err := ReadSeries(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSeries accepted malformed input", name)
		}
	}
}

func TestReadSeriesSkipsCommentsAndBlanks(t *testing.T) {
	in := "# recorded trace\n\nwbtrace 1\n# shape\ndims 1 1\n\n# data\n1.5 -40 7\n"
	s, err := ReadSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Measurements[0].Timestamp != 1.5 ||
		s.Measurements[0].RSSI[0] != -40 || s.Measurements[0].CSI[0][0] != 7 {
		t.Fatalf("parsed %+v", s.Measurements)
	}
}
