package csi

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// flatChannel builds a constant true channel with the given amplitude.
func flatChannel(antennas, subchannels int, amp float64) [][]complex128 {
	h := make([][]complex128, antennas)
	for a := range h {
		h[a] = make([]complex128, subchannels)
		for k := range h[a] {
			h[a][k] = complex(amp, 0)
		}
	}
	return h
}

func noiselessModel() Model {
	return Model{WeakAntenna: -1}
}

func TestMeasureNoiseless(t *testing.T) {
	card := NewCard(noiselessModel(), rng.New(1))
	m := card.Measure(1.5, flatChannel(3, 30, 10))
	if m.Timestamp != 1.5 {
		t.Errorf("timestamp = %v", m.Timestamp)
	}
	if len(m.CSI) != 3 || len(m.CSI[0]) != 30 || len(m.RSSI) != 3 {
		t.Fatalf("shape: %d antennas, %d subchannels, %d rssi", len(m.CSI), len(m.CSI[0]), len(m.RSSI))
	}
	for a := range m.CSI {
		for k, v := range m.CSI[a] {
			if v != 10 {
				t.Fatalf("noiseless CSI[%d][%d] = %v, want 10", a, k, v)
			}
		}
		// 30 subchannels at amplitude 10: power 3000 = 34.77 dB.
		if math.Abs(m.RSSI[a]-34.77) > 0.01 {
			t.Errorf("RSSI[%d] = %v, want ~34.77", a, m.RSSI[a])
		}
	}
}

func TestMeasureQuantization(t *testing.T) {
	model := noiselessModel()
	model.QuantStep = 0.5
	model.RSSIQuantDB = 1
	card := NewCard(model, rng.New(2))
	m := card.Measure(0, flatChannel(1, 4, 10.3))
	if m.CSI[0][0] != 10.5 {
		t.Errorf("quantized CSI = %v, want 10.5", m.CSI[0][0])
	}
	if m.RSSI[0] != math.Round(m.RSSI[0]) {
		t.Errorf("RSSI %v not on 1 dB grid", m.RSSI[0])
	}
}

func TestMeasureWeakAntenna(t *testing.T) {
	model := noiselessModel()
	model.WeakAntenna = 2
	model.WeakAntennaGain = 0.25
	card := NewCard(model, rng.New(3))
	m := card.Measure(0, flatChannel(3, 4, 8))
	if m.CSI[0][0] != 8 || m.CSI[1][0] != 8 {
		t.Errorf("normal antennas altered: %v, %v", m.CSI[0][0], m.CSI[1][0])
	}
	if m.CSI[2][0] != 2 {
		t.Errorf("weak antenna CSI = %v, want 2", m.CSI[2][0])
	}
}

func TestMeasureAGCNoiseIsCommonMode(t *testing.T) {
	model := noiselessModel()
	model.AGCNoise = 0.05
	card := NewCard(model, rng.New(4))
	m := card.Measure(0, flatChannel(2, 10, 10))
	// All subchannels of all antennas share the same per-packet gain, so
	// within one measurement every value is identical.
	first := m.CSI[0][0]
	for a := range m.CSI {
		for k := range m.CSI[a] {
			if m.CSI[a][k] != first {
				t.Fatalf("AGC noise should be common-mode: CSI[%d][%d]=%v != %v",
					a, k, m.CSI[a][k], first)
			}
		}
	}
	// But it must vary across packets.
	m2 := card.Measure(1, flatChannel(2, 10, 10))
	if m2.CSI[0][0] == first {
		t.Error("AGC noise should vary across packets")
	}
}

func TestMeasureSubchannelNoiseIndependent(t *testing.T) {
	model := noiselessModel()
	model.SubchannelNoise = 0.05
	card := NewCard(model, rng.New(5))
	m := card.Measure(0, flatChannel(1, 10, 10))
	distinct := map[float64]bool{}
	for _, v := range m.CSI[0] {
		distinct[v] = true
	}
	if len(distinct) < 5 {
		t.Errorf("subchannel noise should differ per subchannel, got %d distinct values", len(distinct))
	}
}

func TestMeasureSpuriousJumps(t *testing.T) {
	model := noiselessModel()
	model.SpuriousProb = 0.2
	model.SpuriousScale = 0.5
	card := NewCard(model, rng.New(6))
	jumps := 0
	const n = 2000
	for i := 0; i < n; i++ {
		m := card.Measure(float64(i), flatChannel(1, 2, 10))
		if math.Abs(m.CSI[0][0]-10) > 1 {
			jumps++
		}
	}
	frac := float64(jumps) / n
	if math.Abs(frac-0.2) > 0.04 {
		t.Errorf("spurious jump fraction = %v, want ~0.2", frac)
	}
}

func TestMeasureNoiseStatistics(t *testing.T) {
	model := noiselessModel()
	model.AGCNoise = 0.03
	card := NewCard(model, rng.New(7))
	const n = 20_000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		m := card.Measure(float64(i), flatChannel(1, 1, 10))
		v := m.CSI[0][0]
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.02 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(sd-0.3) > 0.03 {
		t.Errorf("std = %v, want ~0.3 (3%% of 10)", sd)
	}
}

func TestNegativeAmplitudeClamped(t *testing.T) {
	model := noiselessModel()
	model.SubchannelNoise = 10 // absurd noise to force negative draws
	card := NewCard(model, rng.New(8))
	for i := 0; i < 100; i++ {
		m := card.Measure(0, flatChannel(1, 5, 1))
		for _, v := range m.CSI[0] {
			if v < 0 {
				t.Fatal("CSI amplitude must be clamped at 0")
			}
		}
	}
}

func TestRSSISilentChannel(t *testing.T) {
	card := NewCard(noiselessModel(), rng.New(9))
	m := card.Measure(0, flatChannel(1, 5, 0))
	if m.RSSI[0] != -100 {
		t.Errorf("silent RSSI = %v, want -100 floor", m.RSSI[0])
	}
}

func TestSeriesAccessors(t *testing.T) {
	card := NewCard(noiselessModel(), rng.New(10))
	var s Series
	if s.Antennas() != 0 || s.Subchannels() != 0 {
		t.Error("empty series should report zero shape")
	}
	for i := 0; i < 5; i++ {
		s.Append(card.Measure(float64(i), flatChannel(2, 3, float64(10+i))))
	}
	if s.Len() != 5 || s.Antennas() != 2 || s.Subchannels() != 3 {
		t.Fatalf("series shape: len=%d ant=%d sub=%d", s.Len(), s.Antennas(), s.Subchannels())
	}
	ch, err := s.CSIChannel(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ch {
		if v != float64(10+i) {
			t.Errorf("CSIChannel[%d] = %v, want %v", i, v, 10+i)
		}
	}
	ts := s.Timestamps()
	for i, v := range ts {
		if v != float64(i) {
			t.Errorf("Timestamps[%d] = %v", i, v)
		}
	}
	if _, err := s.CSIChannel(5, 0); err == nil {
		t.Error("out-of-range antenna should error")
	}
	if _, err := s.CSIChannel(0, 9); err == nil {
		t.Error("out-of-range subchannel should error")
	}
	if _, err := s.RSSIChannel(0); err != nil {
		t.Errorf("RSSIChannel: %v", err)
	}
	if _, err := s.RSSIChannel(7); err == nil {
		t.Error("out-of-range RSSI antenna should error")
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := DefaultModel()
	if m.AGCNoise <= 0 || m.SubchannelNoise <= 0 || m.SpuriousProb <= 0 {
		t.Errorf("default model has disabled artifacts: %+v", m)
	}
	if m.WeakAntenna < 0 || m.WeakAntennaGain >= 1 {
		t.Errorf("default model should include a weak antenna: %+v", m)
	}
}

// trimSeries builds a series with timestamps 0, 1, ..., n-1.
func trimSeries(n int) *Series {
	s := &Series{}
	for i := 0; i < n; i++ {
		s.Append(Measurement{Timestamp: float64(i), CSI: [][]float64{{1}}, RSSI: []float64{1}})
	}
	return s
}

func TestTrimBefore(t *testing.T) {
	// Empty series: no-op.
	empty := &Series{}
	empty.TrimBefore(10)
	if empty.Len() != 0 {
		t.Errorf("trimming an empty series left %d measurements", empty.Len())
	}

	// Cutoff before every timestamp: trims nothing, keeps the same backing
	// array and contents.
	s := trimSeries(5)
	s.TrimBefore(-1)
	if s.Len() != 5 || s.Measurements[0].Timestamp != 0 {
		t.Errorf("trim-none changed the series: len=%d", s.Len())
	}

	// Cutoff past every timestamp: trims everything.
	s = trimSeries(5)
	s.TrimBefore(100)
	if s.Len() != 0 {
		t.Errorf("trim-all left %d measurements", s.Len())
	}

	// Partial trim: keeps the suffix with Timestamp >= t, in order, and
	// reuses the backing array (bounded live-path retention must not
	// reallocate per trim).
	s = trimSeries(8)
	before := &s.Measurements[0]
	s.TrimBefore(3)
	if s.Len() != 5 {
		t.Fatalf("trim at 3 left %d measurements, want 5", s.Len())
	}
	for i, m := range s.Measurements {
		if m.Timestamp != float64(3+i) {
			t.Errorf("measurement %d has timestamp %v, want %d", i, m.Timestamp, 3+i)
		}
	}
	if &s.Measurements[0] != before {
		t.Error("TrimBefore reallocated the backing array")
	}

	// The cutoff is exclusive on the left: a measurement exactly at t stays.
	s = trimSeries(4)
	s.TrimBefore(2)
	if s.Len() != 2 || s.Measurements[0].Timestamp != 2 {
		t.Errorf("boundary measurement dropped: len=%d", s.Len())
	}

	// Appending after a trim reuses the vacated capacity.
	s.Append(Measurement{Timestamp: 9, CSI: [][]float64{{1}}, RSSI: []float64{1}})
	if s.Len() != 3 || s.Measurements[2].Timestamp != 9 {
		t.Errorf("append after trim: len=%d", s.Len())
	}
}
