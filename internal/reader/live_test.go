package reader

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/uplink"
)

func liveMeasurement(ts float64) csi.Measurement {
	return csi.Measurement{Timestamp: ts, CSI: [][]float64{{1, 2}}, RSSI: []float64{3}}
}

func TestNewLiveSessionValidation(t *testing.T) {
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLiveSession(dec, 1.0, 10, uplink.StreamCSI, -1); err == nil {
		t.Error("negative retention should error")
	}
	if _, err := NewLiveSession(dec, 1.0, 0, uplink.StreamCSI, 0); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := NewLiveSession(dec, 1.0, 10, uplink.StreamMode(99), 0); err == nil {
		t.Error("unknown mode should error")
	}
}

// TestLiveSessionPushErrorIsSticky pins the hook contract: the signature
// cannot return an error, so the first failure poisons the session,
// later measurements are dropped without panicking, and Finish reports it.
func TestLiveSessionPushErrorIsSticky(t *testing.T) {
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLiveSession(dec, 1.0, 10, uplink.StreamCSI, 0)
	if err != nil {
		t.Fatal(err)
	}
	ls.OnMeasurement(liveMeasurement(0.5))
	ls.OnMeasurement(liveMeasurement(0.4)) // out of order: poisons
	if ls.Err() == nil {
		t.Fatal("out-of-order measurement did not record an error")
	}
	first := ls.Err()
	ls.OnMeasurement(liveMeasurement(0.6)) // dropped, error unchanged
	if ls.Err() != first {
		t.Error("later measurements overwrote the first error")
	}
	if _, err := ls.Finish(); err != first {
		t.Errorf("Finish returned %v, want the recorded push error", err)
	}
}

func TestLiveSessionFinishWithoutMeasurements(t *testing.T) {
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLiveSession(dec, 1.0, 10, uplink.StreamCSI, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Finish(); err == nil {
		t.Error("Finish with no in-window measurements should error")
	}
}

// TestLiveSessionRetentionWindow pins the bounded-retention behaviour and
// that the window owns copies (mutating the caller's slices afterwards
// must not reach the window).
func TestLiveSessionRetentionWindow(t *testing.T) {
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	ls, err := NewLiveSession(dec, 100.0, 10, uplink.StreamCSI, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	shared := liveMeasurement(0.01)
	ls.OnMeasurement(shared)
	shared.CSI[0][0] = 999
	for i := 2; i <= 20; i++ {
		ls.OnMeasurement(liveMeasurement(float64(i) * 0.01))
	}
	win := ls.Window()
	// Retention 0.05 behind the last timestamp 0.20 keeps ~[0.15, 0.20] —
	// 5 or 6 measurements depending on which side of the cutoff the
	// non-representable 0.15 lands, never the whole trace.
	if win.Len() < 5 || win.Len() > 6 {
		t.Fatalf("window holds %d measurements, want 5 or 6", win.Len())
	}
	if got := win.Measurements[0].Timestamp; got < 0.15-1e-9 {
		t.Errorf("window starts at %v, want >= 0.15", got)
	}
	// The mutated source slice must not have reached the (long-evicted)
	// clone — and more directly, clones are independent storage.
	probe := liveMeasurement(0.21)
	ls.OnMeasurement(probe)
	probe.CSI[0][0] = -1
	last := ls.Window().Measurements[ls.Window().Len()-1]
	if last.CSI[0][0] != 1 {
		t.Errorf("window shares storage with the caller: CSI[0][0] = %v", last.CSI[0][0])
	}
}
