package reader

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wifi"
)

func TestAdviseMatchesPaperOperatingPoints(t *testing.T) {
	ra := NewRateAdvisor()
	// Fig. 12: ~100 bps at 500 pkt/s and ~1 kbps at ~3070 pkt/s.
	if got := ra.Advise(500); got != 100 {
		t.Errorf("Advise(500) = %v, want 100", got)
	}
	if got := ra.Advise(3070); got != 500 {
		t.Errorf("Advise(3070) = %v, want 500 (conservative default)", got)
	}
	aggressive := RateAdvisor{PacketsPerBit: 3, Safety: 1}
	if got := aggressive.Advise(3070); got != 1000 {
		t.Errorf("aggressive Advise(3070) = %v, want 1000", got)
	}
}

func TestAdviseZeroWhenStarved(t *testing.T) {
	ra := NewRateAdvisor()
	if got := ra.Advise(100); got != 0 {
		t.Errorf("Advise(100) = %v, want 0 (cannot sustain 100 bps)", got)
	}
}

// TestAdvisorValidateAndClamp pins both halves of the configuration
// contract: Validate rejects out-of-range parameters at construction,
// and Advise — which must keep a live control loop running — clamps the
// same parameters to the NewRateAdvisor defaults (M=4, Safety=0.8)
// rather than failing. The clamp is documented, not silent: every
// clamped case here advises exactly what the default advisor would.
func TestAdvisorValidateAndClamp(t *testing.T) {
	def := NewRateAdvisor()
	cases := []struct {
		name      string
		ra        RateAdvisor
		wantValid bool
		clamped   bool // Advise must match the default advisor
	}{
		{"defaults", NewRateAdvisor(), true, false},
		{"custom in-range", RateAdvisor{PacketsPerBit: 3, Safety: 1}, true, false},
		{"zero packets per bit", RateAdvisor{PacketsPerBit: 0, Safety: 0.8}, false, true},
		{"negative packets per bit", RateAdvisor{PacketsPerBit: -2, Safety: 0.8}, false, true},
		{"zero safety", RateAdvisor{PacketsPerBit: 4, Safety: 0}, false, true},
		{"negative safety", RateAdvisor{PacketsPerBit: 4, Safety: -0.5}, false, true},
		{"safety above one", RateAdvisor{PacketsPerBit: 4, Safety: 1.5}, false, true},
		{"both out of range", RateAdvisor{PacketsPerBit: 0, Safety: 2}, false, true},
		{"non-positive custom rate", RateAdvisor{PacketsPerBit: 4, Safety: 0.8,
			Rates: []float64{100, 0}}, false, false},
	}
	for _, tc := range cases {
		err := tc.ra.Validate()
		if (err == nil) != tc.wantValid {
			t.Errorf("%s: Validate() = %v, want valid: %v", tc.name, err, tc.wantValid)
		}
		if !tc.clamped {
			continue
		}
		for _, n := range []float64{0, 100, 500, 3070, 10000} {
			if got, want := tc.ra.Advise(n), def.Advise(n); got != want {
				t.Errorf("%s: Advise(%v) = %v, want the default advisor's %v", tc.name, n, got, want)
			}
		}
	}
}

func TestAdviseEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ra   RateAdvisor
		n    float64
		want float64
	}{
		{"zero helper rate", NewRateAdvisor(), 0, 0},
		{"negative helper rate", NewRateAdvisor(), -500, 0},
		{"negative rate with permissive config", RateAdvisor{PacketsPerBit: 1, Safety: 1}, -1, 0},
		{"unsorted custom rates", RateAdvisor{PacketsPerBit: 4, Safety: 0.8,
			Rates: []float64{1000, 100, 500, 200}}, 3070, 500},
		{"descending custom rates pick max qualifying", RateAdvisor{PacketsPerBit: 1, Safety: 1,
			Rates: []float64{1000, 500, 200, 100}}, 700, 500},
		{"single unaffordable rate", RateAdvisor{PacketsPerBit: 4, Safety: 0.8,
			Rates: []float64{1000}}, 500, 0},
		{"empty rates fall back to standard", RateAdvisor{PacketsPerBit: 4, Safety: 0.8}, 500, 100},
	}
	for _, tc := range cases {
		if got := tc.ra.Advise(tc.n); got != tc.want {
			t.Errorf("%s: Advise(%v) = %v, want %v", tc.name, tc.n, got, tc.want)
		}
	}
}

// TestAdviseOrderInvariantProperty pins the no-sort rewrite: any
// permutation of Rates yields the same advice.
func TestAdviseOrderInvariantProperty(t *testing.T) {
	f := func(n uint16, seed int64) bool {
		base := RateAdvisor{PacketsPerBit: 4, Safety: 0.8,
			Rates: []float64{100, 200, 500, 1000}}
		shuffled := RateAdvisor{PacketsPerBit: 4, Safety: 0.8,
			Rates: append([]float64(nil), base.Rates...)}
		rng.New(seed).Shuffle(len(shuffled.Rates), func(i, j int) {
			shuffled.Rates[i], shuffled.Rates[j] = shuffled.Rates[j], shuffled.Rates[i]
		})
		return base.Advise(float64(n)) == shuffled.Advise(float64(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdviseMonotoneProperty(t *testing.T) {
	ra := NewRateAdvisor()
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return ra.Advise(lo) <= ra.Advise(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdviseDefaultsOnZeroConfig(t *testing.T) {
	ra := RateAdvisor{}
	if got := ra.Advise(5000); got == 0 {
		t.Error("zero-config advisor should fall back to defaults and advise a rate")
	}
}

func TestRateEstimator(t *testing.T) {
	e, err := NewRateEstimator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rate() != 0 {
		t.Error("fresh estimator should report 0")
	}
	// 500 packets over 1 second.
	for i := 0; i < 500; i++ {
		e.Observe(float64(i) * 0.002)
	}
	if got := e.Rate(); got < 450 || got > 550 {
		t.Errorf("rate = %v, want ~500", got)
	}
	// After a quiet gap, old packets age out.
	e.Observe(10)
	if got := e.Rate(); got > 2 {
		t.Errorf("rate after gap = %v, want ~1", got)
	}
}

func TestRateEstimatorValidation(t *testing.T) {
	if _, err := NewRateEstimator(0); err == nil {
		t.Error("zero window should error")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := Query{Command: CmdRead, TagID: 0xBEEF, BitRate: 1000, Arg: 7}
	got := DecodeQuery(q.Encode())
	if got != q {
		t.Errorf("round trip: got %+v, want %+v", got, q)
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	f := func(cmd uint8, id uint16, rate uint16, arg uint8) bool {
		q := Query{Command: cmd, TagID: id, BitRate: rate, Arg: arg}
		return DecodeQuery(q.Encode()) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransactionRetries(t *testing.T) {
	tr := NewTransaction(Query{Command: CmdRead})
	attempts := 0
	for tr.NextAttempt() {
		attempts++
	}
	if attempts != tr.MaxAttempts {
		t.Errorf("attempts = %d, want %d", attempts, tr.MaxAttempts)
	}
	if tr.Done {
		t.Error("exhausted transaction should not be done")
	}
}

func TestTransactionCompletes(t *testing.T) {
	tr := NewTransaction(Query{})
	if !tr.NextAttempt() {
		t.Fatal("first attempt should be allowed")
	}
	tr.Complete()
	if tr.NextAttempt() {
		t.Error("completed transaction should not retry")
	}
}

func TestMonitorHelper(t *testing.T) {
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(1))
	helper := m.AddStation("helper", wifi.MAC{1}, wifi.Rate54)
	other := m.AddStation("other", wifi.MAC{2}, wifi.Rate54)
	est, _ := NewRateEstimator(1.0)
	MonitorHelper(m, helper, est)
	(&wifi.CBRSource{Station: helper, Dst: wifi.MAC{9}, Payload: 100, Interval: 0.002}).Start()
	(&wifi.CBRSource{Station: other, Dst: wifi.MAC{9}, Payload: 100, Interval: 0.002}).Start()
	eng.Run(3)
	// Only the helper's ~500 pkt/s should be counted.
	if got := est.Rate(); got < 400 || got > 600 {
		t.Errorf("estimated helper rate = %v, want ~500", got)
	}
}
