package reader

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// LiveSession decodes one uplink transmission online: measurements are
// pushed into an uplink.StreamDecoder as they are captured, so the
// payload is available the moment the frame closes — while the simulation
// (or a live capture) is still running — instead of after a batch pass
// over the full trace. Memory stays bounded: the stream decoder's arena
// holds only in-frame measurements, and the optional retained window is
// trimmed with csi.Series.TrimBefore as time advances.
//
// Wire it to a simulation with core's System.OnMeasurement:
//
//	ls, _ := reader.NewLiveSession(dec, start, payloadLen, uplink.StreamCSI, 0.5)
//	sys.OnMeasurement(ls.OnMeasurement)
//	sys.Run(until)
//	res, err := ls.Finish()
//
// The hook signature returns no error, so push failures (out-of-order
// timestamps, shape drift) are sticky: the first one is recorded, later
// measurements are dropped, and Finish surfaces it.
type LiveSession struct {
	sd        *uplink.StreamDecoder
	retention float64
	window    csi.Series
	err       error
}

// NewLiveSession builds a session decoding a transmission that starts at
// start with payloadLen bits. retention is how many seconds of trailing
// measurements to keep in Window for diagnostics; zero retains nothing.
func NewLiveSession(dec *uplink.Decoder, start float64, payloadLen int, mode uplink.StreamMode, retention float64) (*LiveSession, error) {
	if retention < 0 {
		return nil, fmt.Errorf("reader: retention must be non-negative, got %v", retention)
	}
	sd, err := dec.NewStream(start, payloadLen, mode)
	if err != nil {
		return nil, err
	}
	return &LiveSession{sd: sd, retention: retention}, nil
}

// OnMeasurement consumes one captured measurement. It matches the hook
// signature of core's System.OnMeasurement, so it can be subscribed
// directly. After the first push error the session is poisoned and
// further measurements are ignored; Err and Finish report the failure.
func (ls *LiveSession) OnMeasurement(m csi.Measurement) {
	if ls.err != nil {
		return
	}
	if ls.retention > 0 {
		// The measurement's slices belong to the capture pipeline; the
		// retained window needs its own copies.
		ls.window.Append(cloneMeasurement(m))
		ls.window.TrimBefore(m.Timestamp - ls.retention)
	}
	if _, err := ls.sd.Push(m); err != nil {
		ls.err = err
	}
}

// Done reports whether the frame has closed and the payload is decoded;
// true before the trace ends whenever the capture extends past the frame.
func (ls *LiveSession) Done() bool { return ls.sd.Done() }

// Bits returns the decisions emitted so far: empty before the frame
// closes, every payload bit afterwards.
func (ls *LiveSession) Bits() []uplink.BitDecision { return ls.sd.Bits() }

// Err returns the first push error, or nil.
func (ls *LiveSession) Err() error { return ls.err }

// Window returns the retained trailing measurements (empty unless a
// retention was configured). The caller must not mutate it.
func (ls *LiveSession) Window() *csi.Series { return &ls.window }

// Finish flushes the stream and returns the decode result. Like the
// batch decoders it errors when no measurement fell inside the
// transmission window, and it surfaces any earlier push error.
func (ls *LiveSession) Finish() (*uplink.Result, error) {
	if ls.err != nil {
		return nil, ls.err
	}
	return ls.sd.Flush()
}

// cloneMeasurement deep-copies a measurement so the retained window owns
// its slices.
func cloneMeasurement(m csi.Measurement) csi.Measurement {
	out := csi.Measurement{
		Timestamp: m.Timestamp,
		CSI:       make([][]float64, len(m.CSI)),
		RSSI:      append([]float64(nil), m.RSSI...),
	}
	for a := range m.CSI {
		out.CSI[a] = append([]float64(nil), m.CSI[a]...)
	}
	return out
}
