// Package reader implements the Wi-Fi reader's control plane: estimating
// the helper's achievable packet rate, advising the tag's uplink bit rate
// (§5: the reader computes N/M and sends it in the query), and the
// query/response transaction model with retransmission (§4.1).
package reader

import (
	"fmt"

	"repro/internal/downlink"
	"repro/internal/wifi"
)

// StandardRates lists the uplink bit rates the evaluation tests
// (100, 200, 500, 1000 bits/s).
var StandardRates = []float64{100, 200, 500, 1000}

// RateAdvisor computes the uplink bit rate the tag should use for the
// current network conditions: with the helper delivering N packets/second
// and the decoder needing M packets per bit, the rate is N/M, derated by a
// conservative safety factor to keep bits from starving under bursty
// traffic (§5).
type RateAdvisor struct {
	// PacketsPerBit is M, the channel measurements needed per bit. Advise
	// clamps a non-positive value to the default 4 (see Validate to catch
	// the misconfiguration instead of inheriting the clamp).
	PacketsPerBit int
	// Safety derates the raw N/M (the paper's "conservative bit rate
	// estimates"). Advise clamps values outside (0, 1] to the default
	// 0.8; Validate rejects them.
	Safety float64
	// Rates are the selectable bit rates, ascending. Empty means
	// StandardRates.
	Rates []float64
}

// NewRateAdvisor returns an advisor with the defaults used across the
// evaluation: 4 packets per bit and a 0.8 safety factor, which lands on
// the paper's 100 bps at a 500 pkt/s helper.
func NewRateAdvisor() RateAdvisor {
	return RateAdvisor{PacketsPerBit: 4, Safety: 0.8}
}

// Validate reports whether the advisor's parameters are in range: M must
// be positive, Safety in (0, 1], and every selectable rate positive.
// Advise never fails — out-of-range parameters are clamped to the
// defaults so a live control loop keeps advising — but that clamp is
// silent by design, so construction sites should call Validate once to
// surface a misconfiguration instead of quietly serving defaults.
func (ra RateAdvisor) Validate() error {
	if ra.PacketsPerBit <= 0 {
		return fmt.Errorf("reader: PacketsPerBit must be positive, got %d", ra.PacketsPerBit)
	}
	if ra.Safety <= 0 || ra.Safety > 1 {
		return fmt.Errorf("reader: Safety must be in (0, 1], got %v", ra.Safety)
	}
	for i, r := range ra.Rates {
		if r <= 0 {
			return fmt.Errorf("reader: rate %d must be positive, got %v", i, r)
		}
	}
	return nil
}

// Advise returns the highest selectable rate not exceeding
// Safety · N / M, or 0 when even the lowest rate cannot be sustained
// (including a zero or negative helper rate). Out-of-range PacketsPerBit
// and Safety are clamped to the NewRateAdvisor defaults (4 and 0.8) —
// call Validate at construction to reject them instead. Rates may be in
// any order; the scan picks the maximum qualifying rate directly, so no
// per-call sorting or copying happens.
func (ra RateAdvisor) Advise(helperPacketsPerSecond float64) float64 {
	if helperPacketsPerSecond <= 0 {
		return 0
	}
	m := ra.PacketsPerBit
	if m <= 0 {
		m = 4
	}
	safety := ra.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.8
	}
	budget := safety * helperPacketsPerSecond / float64(m)
	rates := ra.Rates
	if len(rates) == 0 {
		rates = StandardRates
	}
	best := 0.0
	for _, r := range rates {
		if r <= budget && r > best {
			best = r
		}
	}
	return best
}

// RateEstimator measures the helper's delivered packet rate from monitor
// traffic over a sliding window.
type RateEstimator struct {
	// Window length in seconds.
	Window float64
	times  []float64
}

// NewRateEstimator returns an estimator with the given window (seconds).
func NewRateEstimator(window float64) (*RateEstimator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("reader: window must be positive, got %v", window)
	}
	return &RateEstimator{Window: window}, nil
}

// Observe records a packet delivery at time t (seconds, non-decreasing).
func (e *RateEstimator) Observe(t float64) {
	e.times = append(e.times, t)
	cut := t - e.Window
	i := 0
	for i < len(e.times) && e.times[i] < cut {
		i++
	}
	e.times = e.times[i:]
}

// Rate returns the packets/second estimate as of the last observation.
func (e *RateEstimator) Rate() float64 {
	if len(e.times) == 0 {
		return 0
	}
	return float64(len(e.times)) / e.Window
}

// Query is the reader's downlink request to a tag (§2's request-response
// model). It is carried in the 48 data bits of a downlink message:
// [8-bit command][16-bit tag ID][16-bit uplink bit rate][8-bit argument].
type Query struct {
	Command uint8
	TagID   uint16
	BitRate uint16 // advised uplink rate, bits/s
	Arg     uint8
}

// Commands.
const (
	// CmdRead asks the tag for its sensor payload.
	CmdRead uint8 = 1
	// CmdIdentify asks the tag to respond with its ID.
	CmdIdentify uint8 = 2
	// CmdAck acknowledges a tag transmission.
	CmdAck uint8 = 3
	// CmdInventory opens a slotted-ALOHA inventory round; Arg carries
	// the slot count.
	CmdInventory uint8 = 4
	// CmdAckHandle acknowledges a captured inventory handle (in TagID).
	CmdAckHandle uint8 = 5
)

// Encode packs the query into a downlink message.
func (q Query) Encode() downlink.Message {
	data := uint64(q.Command)<<40 | uint64(q.TagID)<<24 | uint64(q.BitRate)<<8 | uint64(q.Arg)
	return downlink.NewMessage(data)
}

// DecodeQuery unpacks a downlink message into a query.
func DecodeQuery(m downlink.Message) Query {
	return Query{
		Command: uint8(m.Data >> 40),
		TagID:   uint16(m.Data >> 24),
		BitRate: uint16(m.Data >> 8),
		Arg:     uint8(m.Data),
	}
}

// Transaction tracks one query's retransmission state (§4.1: "if the tag
// does not respond to the query, the reader re-transmits until it gets a
// response").
type Transaction struct {
	// Query being executed.
	Query Query
	// MaxAttempts bounds retransmissions.
	MaxAttempts int
	// Attempts made so far.
	Attempts int
	// Done reports a successful response.
	Done bool
}

// NewTransaction starts a transaction with the default retry budget.
func NewTransaction(q Query) *Transaction {
	return &Transaction{Query: q, MaxAttempts: 5}
}

// NextAttempt reports whether another attempt may be made and counts it.
func (t *Transaction) NextAttempt() bool {
	if t.Done || t.Attempts >= t.MaxAttempts {
		return false
	}
	t.Attempts++
	return true
}

// Complete marks the transaction finished.
func (t *Transaction) Complete() { t.Done = true }

// MonitorHelper wires a rate estimator to a medium: every delivered data
// or beacon frame from the helper station updates the estimate, mirroring
// the reader's monitor-mode view.
func MonitorHelper(m *wifi.Medium, helper *wifi.Station, est *RateEstimator) {
	m.AddListener(func(tx *wifi.Transmission) {
		if tx.Collided || tx.Station != helper {
			return
		}
		switch tx.Frame.Header.Type {
		case wifi.TypeData, wifi.TypeBeacon:
			est.Observe(tx.End)
		}
	})
}
