// Package parallel provides the worker-pool trial engine that fans the
// evaluation's independent trials (distance × rate × decoder variant ×
// traffic sweeps, §7's methodology) across CPU cores.
//
// Every trial in internal/eval builds its own core.System from an explicit
// per-trial seed, so trials share no mutable state and can run in any
// order. The engine exploits that: jobs are indexed [0, n), workers pull
// indices from a bounded queue (backpressure, not unbounded goroutine
// fan-out), and each result lands in its index's slot. Folding the result
// slice in index order therefore produces output bit-identical to the
// serial loop it replaces — determinism is preserved by construction and
// locked in by the property tests in internal/eval.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Engine is a fixed-width worker pool for independent, index-addressed
// jobs. The zero value is not useful; use New. An Engine is stateless
// between calls and safe for concurrent use.
type Engine struct {
	workers int
	queue   int
}

// New returns an engine with the given worker count. workers <= 0 selects
// GOMAXPROCS. The job queue is bounded at twice the worker count so a
// slow consumer backpressures submission instead of buffering every job.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, queue: 2 * workers}
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// ForEach runs fn(i) for every i in [0, n). With one worker it runs the
// plain serial loop on the calling goroutine (no scheduling overhead, and
// exact serial semantics by definition). With more workers, jobs are
// dispatched through a bounded queue; after the first error no further
// jobs start, and the error reported is the one the serial loop would
// have hit first (the failing job with the smallest index).
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if e.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := safeRun(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	jobs := make(chan int, e.queue)
	var (
		mu       sync.Mutex
		firstErr error
		errIdx   int
		failed   atomic.Bool
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
		failed.Store(true)
	}

	var wg sync.WaitGroup
	workers := e.workers
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue // drain without running
				}
				if err := safeRun(fn, i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// safeRun invokes fn(i), converting a panic into an error so one bad
// trial cannot take down the whole sweep's worker pool.
func safeRun(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: job %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn over [0, n) on the engine and returns the results in index
// order: out[i] = fn(i). Because every result is placed by index, the
// returned slice is identical to what the serial loop would build,
// regardless of worker count or completion order.
func Map[T any](e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := e.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fold runs fn over [0, n) on the engine and folds every result into acc
// with merge, in strict index order, on the calling goroutine after all
// workers finish. The index-ordered fold is what makes worker-count
// invisible to non-commutative accumulation (float sums, gauge last-value
// semantics): results are produced concurrently but consumed serially in
// the same order a one-worker run would produce them.
func Fold[T any](e *Engine, n int, fn func(i int) (T, error), acc func(v T) error) error {
	out, err := Map(e, n, fn)
	if err != nil {
		return err
	}
	for _, v := range out {
		if err := acc(v); err != nil {
			return err
		}
	}
	return nil
}
