package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		const n = 100
		var counts [n]atomic.Int32
		err := New(workers).ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	e := New(4)
	for _, n := range []int{0, -5} {
		if err := e.ForEach(n, func(int) error { t.Fatal("ran"); return nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	// Jobs 3 and 7 fail; the reported error must be job 3's (what the
	// serial loop would surface), for every worker count.
	for _, workers := range []int{1, 2, 8} {
		err := New(workers).ForEach(10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's", workers, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := New(2).ForEach(10_000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 9000 {
		t.Errorf("ran %d jobs after an early error; dispatch should stop", n)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEach(5, func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not converted to error", workers)
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	got, err := Map(New(8), 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapNilOnError(t *testing.T) {
	got, err := Map(New(4), 5, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("late failure")
		}
		return i, nil
	})
	if err == nil || got != nil {
		t.Fatalf("got %v, err %v; want nil, error", got, err)
	}
}

// TestMapDeterministicAcrossWorkerCounts is the engine-level statement of
// the tentpole invariant: for trial workloads that derive all randomness
// from rng.TrialStream(seed, i), the result slice is bit-identical no
// matter how many workers execute it.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(seed int64, nRaw, wRaw uint8) bool {
		n := int(nRaw)%40 + 1
		workers := int(wRaw)%8 + 2
		trial := func(i int) (float64, error) {
			r := rng.TrialStream(seed, i)
			var sum float64
			for k := 0; k < 100; k++ {
				sum += r.Gaussian(0, 1)
			}
			return sum, nil
		}
		serial, err1 := Map(New(1), n, trial)
		par, err2 := Map(New(workers), n, trial)
		if err1 != nil || err2 != nil || len(serial) != len(par) {
			return false
		}
		for i := range serial {
			if serial[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
