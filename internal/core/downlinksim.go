package core

import (
	"errors"
	"fmt"

	"repro/internal/downlink"
	"repro/internal/rng"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/wifi"
)

// This file implements the tag side of the downlink: turning the medium's
// transmission log into the RF envelope the tag's analog circuit sees,
// running the circuit sample by sample, and decoding messages with the
// microcontroller logic.

// envelopeDT is the sample period of the analog simulation.
const envelopeDT = 1.0 / wifi.EnvelopeSampleRate

// EnvelopeWindow synthesizes the envelope the tag receives over
// [start, start+dur): for every logged transmission overlapping the window
// from a station the tag can hear, OFDM envelope samples scaled by the
// free-space link budget are written into the window (strongest signal
// wins on overlap).
func (s *System) EnvelopeWindow(start, dur float64) ([]float64, error) {
	if !s.logEnabled {
		return nil, errors.New("core: transmission log disabled; call EnableTxLog before running")
	}
	n := int(dur * wifi.EnvelopeSampleRate)
	out := make([]float64, n)
	carrier := wifi.ChannelFreq(6)
	for _, tx := range s.txLog {
		if tx.End <= start || tx.Start >= start+dur {
			continue
		}
		pl, ok := s.placements[tx.Station]
		if !ok {
			continue
		}
		scale := tag.ReceivedEnvelopeScale(pl.power, pl.distance, carrier)
		if scale == 0 {
			continue
		}
		lo := int((tx.Start - start) * wifi.EnvelopeSampleRate)
		hi := int((tx.End - start) * wifi.EnvelopeSampleRate)
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			v := s.envStream.Rayleigh(scale / 1.4142135623730951)
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out, nil
}

// DownlinkWindowResult is the outcome of the tag decoding one reservation
// window.
type DownlinkWindowResult struct {
	// Message is the decoded message when Err is nil.
	Message downlink.Message
	// PreambleFound reports whether the preamble matcher fired.
	PreambleFound bool
	// Err is nil on a clean decode; downlink.ErrBadCRC when the payload
	// was corrupted.
	Err error
	// Decoder exposes the µC's power accounting for the window.
	Decoder *tag.Decoder
}

// DecodeDownlinkWindow runs the tag's full receive path over a protected
// window: circuit → comparator edges → preamble match → mid-bit sampling →
// CRC check.
func (s *System) DecodeDownlinkWindow(start, dur, bitDuration float64) (*DownlinkWindowResult, error) {
	env, err := s.EnvelopeWindow(start, dur)
	if err != nil {
		return nil, err
	}
	// Injected clock drift skews the tag's idea of the bit period: its RC
	// oscillator samples mid-bit positions that creep across the real
	// slots, which is exactly how a cheap tag clock fails.
	bitDuration *= 1 + s.faults.ClockDrift(start)
	dec, err := tag.NewDecoder(bitDuration)
	if err != nil {
		return nil, err
	}
	s.obs.Counter("tag.downlink_windows").Inc()
	circuit := tag.DefaultCircuit(s.rnd.Split(fmt.Sprintf("circuit-%f", start)))
	comp := make([]bool, len(env))
	for i, v := range env {
		comp[i] = circuit.Step(v, envelopeDT)
	}
	// Edge detection runs behind the µC pin's glitch filter (~1.5 µs);
	// mid-bit data sampling reads the comparator directly.
	edges := tag.Debounce(comp, 6)
	res := &DownlinkWindowResult{Decoder: dec}
	prev := false
	for i, c := range edges {
		if c == prev {
			continue
		}
		prev = c
		t := float64(i) * envelopeDT
		if !dec.OnEdge(t, c) {
			continue
		}
		res.PreambleFound = true
		payloadStart := int(dec.PayloadStartAfterMatch(t) * wifi.EnvelopeSampleRate)
		bits := dec.SampleMidBits(comp, wifi.EnvelopeSampleRate, payloadStart, downlink.PayloadBits)
		msg, perr := downlink.ParsePayload(bits)
		if perr != nil {
			res.Err = perr
			dec.FalseWakes++
			s.obs.Counter("tag.crc_failures").Inc()
			continue // keep scanning: a later match may decode
		}
		res.Message = msg
		res.Err = nil
		s.obs.Counter("tag.downlink_decodes").Inc()
		return res, nil
	}
	if !res.PreambleFound {
		res.Err = errors.New("core: no downlink preamble detected")
		s.obs.Counter("tag.preamble_misses").Inc()
	} else if res.Err == nil {
		res.Err = errors.New("core: preamble matched but payload incomplete")
	}
	return res, nil
}

// DownlinkBERTrial measures the raw downlink bit error rate at a given
// distance and bit duration without MAC framing, mirroring the Fig. 17
// methodology: nbits random presence/absence bits are transmitted
// back-to-back and the tag's circuit output is sampled mid-bit.
//
// It returns the number of bit errors. The trial is standalone — it does
// not need a System.
func DownlinkBERTrial(distance units.Meters, txPower units.DBm, bitDuration float64, nbits int, seed int64) (int, error) {
	return DownlinkBERTrialWithCircuit(distance, txPower, bitDuration, nbits, seed, nil)
}

// DownlinkBERTrialWithCircuit is DownlinkBERTrial with a hook to modify
// the receiver circuit before the run — used by the threshold ablation.
func DownlinkBERTrialWithCircuit(distance units.Meters, txPower units.DBm, bitDuration float64, nbits int, seed int64, mutate func(*tag.Circuit)) (int, error) {
	if nbits <= 0 {
		return 0, fmt.Errorf("core: nbits must be positive, got %d", nbits)
	}
	if bitDuration <= 0 {
		return 0, fmt.Errorf("core: bit duration must be positive, got %v", bitDuration)
	}
	rnd := rng.New(seed)
	circuit := tag.DefaultCircuit(rnd.Split("circuit"))
	if mutate != nil {
		mutate(circuit)
	}
	envRnd := rnd.Split("envelope")
	bitRnd := rnd.Split("bits")
	scale := tag.ReceivedEnvelopeScale(txPower, distance, wifi.ChannelFreq(6))
	samplesPerBit := int(bitDuration * wifi.EnvelopeSampleRate)
	if samplesPerBit < 4 {
		return 0, fmt.Errorf("core: bit duration %v too short for the analog simulation", bitDuration)
	}
	// Warm the circuit with a preamble-length burst so the threshold is
	// set, as it would be after the real preamble.
	for i := 0; i < 16*samplesPerBit; i++ {
		on := (i/samplesPerBit)%2 == 0
		v := 0.0
		if on {
			v = envRnd.Rayleigh(scale / 1.4142135623730951)
		}
		circuit.Step(v, envelopeDT)
	}
	errs := 0
	for b := 0; b < nbits; b++ {
		bit := bitRnd.Bool()
		var sampled bool
		for i := 0; i < samplesPerBit; i++ {
			v := 0.0
			if bit {
				v = envRnd.Rayleigh(scale / 1.4142135623730951)
			}
			out := circuit.Step(v, envelopeDT)
			if i == samplesPerBit/2 {
				sampled = out
			}
		}
		if sampled != bit {
			errs++
		}
	}
	return errs, nil
}
