// Package core is the public facade of the Wi-Fi Backscatter library. It
// wires the substrates — the discrete-event engine, the CSMA/CA medium,
// the RF channel model, the measurement card, the tag, and the uplink /
// downlink codecs — into a System on which transactions and the paper's
// experiments run.
//
// A System hosts three actors (§2):
//
//   - the helper (any Wi-Fi transmitter, typically an AP), whose packets
//     illuminate the tag;
//   - the reader (a commodity Wi-Fi device), which measures CSI/RSSI on
//     received packets to decode the tag and transmits packet-presence
//     patterns to reach it;
//   - the battery-free tag, which modulates its antenna impedance on the
//     uplink and detects packet energy on the downlink.
package core

import (
	"fmt"

	"repro/internal/csi"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// Config describes a Wi-Fi Backscatter deployment. Zero-valued fields take
// the defaults from the paper's testbed.
type Config struct {
	// Seed drives all randomness; equal seeds replay identically.
	Seed int64
	// TagReaderDistance separates tag and reader (the swept variable in
	// most uplink experiments).
	TagReaderDistance units.Meters
	// HelperTagDistance separates helper and tag (3 m in the paper's
	// experiments).
	HelperTagDistance units.Meters
	// HelperReaderDistance separates helper and reader directly; zero
	// derives it from HelperTagDistance.
	HelperReaderDistance units.Meters
	// HelperWalls counts walls between the helper and the tag/reader.
	HelperWalls int
	// Channel overrides the RF channel model.
	Channel *radio.ChannelConfig
	// Card overrides the measurement model.
	Card *csi.Model
	// ReaderPower is the reader's transmit power (§8.1 uses +16 dBm).
	ReaderPower units.DBm
	// HelperPower is the helper's transmit power.
	HelperPower units.DBm
	// MeasureAllStations lets the reader harvest channel measurements
	// from every station's packets, not only the helper's (§5:
	// "leveraging traffic from all Wi-Fi devices").
	MeasureAllStations bool
	// Faults, when non-nil and non-empty, injects the scheduled
	// impairments into the medium, the measurement path, both codecs, and
	// the tag decoder. The injector's randomness derives from Seed (via
	// rng.TrialSeed with a fixed salt), never from the streams the clean
	// pipeline consumes, so a schedule whose windows all have intensity
	// zero replays the clean run bit-for-bit.
	Faults *faults.Schedule
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.TagReaderDistance == 0 {
		c.TagReaderDistance = units.Centimeters(5)
	}
	if c.HelperTagDistance == 0 {
		c.HelperTagDistance = units.Meters(3)
	}
	if c.ReaderPower == 0 {
		c.ReaderPower = units.DBm(16)
	}
	if c.HelperPower == 0 {
		c.HelperPower = units.DBm(16)
	}
	return c
}

// placement records a station's RF relationship to the tag.
type placement struct {
	power    units.DBm
	distance units.Meters
}

// System is an assembled Wi-Fi Backscatter deployment.
type System struct {
	cfg Config

	// Eng is the discrete-event engine; advance it with Run.
	Eng *sim.Engine
	// Medium is the shared 802.11 channel.
	Medium *wifi.Medium
	// Helper is the illuminating station (AP).
	Helper *wifi.Station
	// Reader is the decoding/querying station.
	Reader *wifi.Station
	// Channel is the composite backscatter RF channel; tag 0 is created
	// at construction and more tags can join via AddTag.
	Channel *radio.MultiChannel
	// Card is the reader's measurement front end.
	Card *csi.Card

	obs        *obs.Registry
	rnd        *rng.Stream
	envStream  *rng.Stream
	faults     *faults.Injector
	mods       []*tag.Modulator // per-tag active transmission (nil = idle)
	states     []bool           // scratch buffer for Observe
	series     csi.Series
	placements map[*wifi.Station]placement
	txLog      []*wifi.Transmission
	logEnabled bool
	onMeasure  []func(csi.Measurement)
}

// NewSystem assembles a deployment from the config.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	rnd := rng.New(cfg.Seed)
	chCfg := radio.DefaultChannelConfig()
	if cfg.Channel != nil {
		chCfg = *cfg.Channel
	}
	cardModel := csi.DefaultModel()
	if cfg.Card != nil {
		cardModel = *cfg.Card
	}
	geo := radio.Geometry{
		HelperToTag:    cfg.HelperTagDistance,
		TagToReader:    cfg.TagReaderDistance,
		HelperToReader: cfg.HelperReaderDistance,
		HelperWalls:    cfg.HelperWalls,
	}
	channel, err := radio.NewMultiChannel(chCfg, geo, rnd.Split("channel"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := channel.AddTag(cfg.TagReaderDistance); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	eng := sim.NewEngine()
	medium := wifi.NewMedium(eng, rnd.Split("medium"))
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	medium.Instrument(reg)
	s := &System{
		cfg:        cfg,
		Eng:        eng,
		Medium:     medium,
		obs:        reg,
		Channel:    channel,
		Card:       csi.NewCard(cardModel, rnd.Split("card")),
		rnd:        rnd,
		envStream:  rnd.Split("envelope"),
		placements: make(map[*wifi.Station]placement),
		mods:       make([]*tag.Modulator, 1),
		states:     make([]bool, 1),
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		// The injector gets its own stream derived from the seed by a
		// bijective mix, NOT by splitting rnd: a Split here would advance
		// rnd and perturb every stream created after it, breaking the
		// clean-run equivalence of zero-intensity schedules.
		inj, err := faults.NewInjector(cfg.Faults, rng.New(rng.TrialSeed(cfg.Seed, faultStreamSalt)))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		inj.Instrument(reg)
		s.faults = inj
		medium.Impair = inj
	}
	s.Helper = medium.AddStation("helper", wifi.MAC{0x02, 0, 0, 0, 0, 1}, wifi.Rate54)
	s.Reader = medium.AddStation("reader", wifi.MAC{0x02, 0, 0, 0, 0, 2}, wifi.Rate54)
	s.placements[s.Helper] = placement{power: cfg.HelperPower, distance: cfg.HelperTagDistance}
	s.placements[s.Reader] = placement{power: cfg.ReaderPower, distance: cfg.TagReaderDistance}

	// The reader in monitor mode: every decodable packet yields a
	// channel measurement stamped with its reception time (§3.2).
	medium.AddListener(func(tx *wifi.Transmission) {
		if s.logEnabled {
			s.txLog = append(s.txLog, tx)
		}
		if tx.Collided {
			return
		}
		if tx.Station == s.Reader {
			return // the reader cannot measure its own transmissions
		}
		if !s.cfg.MeasureAllStations && tx.Station != s.Helper {
			return
		}
		// CSI is estimated from the PLCP training symbols at the start
		// of reception, so both the channel snapshot and the
		// measurement timestamp anchor there.
		at := tx.Start + 10e-6
		for i, mod := range s.mods {
			s.states[i] = mod != nil && mod.StateAt(at)
		}
		h, herr := s.Channel.Observe(at, s.states)
		if herr != nil {
			// Programmer-error assert: s.states and the channel's tag
			// set are resized together in AddTag, so a mismatch here is
			// a bug in this file, not reachable from user input.
			panic(herr)
		}
		// Fades attenuate the observed channel before the card measures
		// it; measurement corruption runs after, so the card's own noise
		// stream stays aligned with the clean run.
		s.faults.AttenuateChannel(at, h)
		m := s.Card.Measure(at, h)
		if s.faults.CorruptMeasurement(at, &m) {
			return // the flaky capture path dropped this packet's report
		}
		s.series.Append(m)
		for _, fn := range s.onMeasure {
			fn(m)
		}
	})
	return s, nil
}

// OnMeasurement registers a hook invoked for every measurement the reader
// captures, in capture order, after it lands in the system's series. This
// is the online path: a reader.LiveSession subscribed here decodes during
// the simulation instead of batch-processing Series() afterwards. Hooks
// run inside the measurement listener, so they must not mutate the
// system; the measurement's slices are owned by the series and must be
// treated as read-only.
func (s *System) OnMeasurement(fn func(csi.Measurement)) {
	s.onMeasure = append(s.onMeasure, fn)
}

// faultStreamSalt derives the fault injector's rng root from the system
// seed (an arbitrary odd constant; see NewSystem).
const faultStreamSalt = 0x66_6C_74_73 // "flts"

// FaultInjector returns the system's fault injector, or nil when the
// config carried no fault schedule. The injector's Tally attributes
// injected events to run phases.
func (s *System) FaultInjector() *faults.Injector { return s.faults }

// Config returns the (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Metrics returns the system's observability registry. Every substrate the
// system assembles (engine, medium, decoders, encoders) registers its
// counters here; snapshot it after a run for a deterministic account of the
// pipeline. The registry is confined to the system's goroutine.
func (s *System) Metrics() *obs.Registry { return s.obs }

// AddStation places an extra Wi-Fi station at the given distance from the
// tag, e.g. ambient clients or an interfering transmitter.
func (s *System) AddStation(name string, power units.DBm, distToTag units.Meters) *wifi.Station {
	addr := wifi.MAC{0x02, 0, 0, 0, 1, byte(len(s.placements))}
	st := s.Medium.AddStation(name, addr, wifi.Rate54)
	s.placements[st] = placement{power: power, distance: distToTag}
	return st
}

// EnableTxLog starts recording every transmission, which the tag-side
// downlink simulation and frame capture consume.
func (s *System) EnableTxLog() { s.logEnabled = true }

// TxLog returns the recorded transmissions (EnableTxLog must have been
// called before running).
func (s *System) TxLog() []*wifi.Transmission { return s.txLog }

// Series returns the measurement series collected so far.
func (s *System) Series() *csi.Series { return &s.series }

// ResetSeries discards collected measurements (between trials).
func (s *System) ResetSeries() { s.series = csi.Series{} }

// AddTag places another tag at the given distance from the reader and
// returns its index (tag 0 always exists). Tags added here share the
// helper geometry.
func (s *System) AddTag(tagReaderDistance units.Meters) (int, error) {
	idx, err := s.Channel.AddTag(tagReaderDistance)
	if err != nil {
		return 0, err
	}
	s.mods = append(s.mods, nil)
	s.states = append(s.states, false)
	return idx, nil
}

// ModulationDepth returns tag 0's backscatter-to-direct amplitude ratio.
func (s *System) ModulationDepth() float64 { return s.Channel.ModulationDepth(0) }

// TransmitUplink arms tag 0 to transmit the given on-air bits starting
// at time start with the given bit rate (bits/second). It replaces any
// previous transmission.
func (s *System) TransmitUplink(bits []bool, start, bitRate float64) (*tag.Modulator, error) {
	return s.TransmitUplinkFrom(0, bits, start, bitRate)
}

// TransmitUplinkFrom arms the tag with the given index.
func (s *System) TransmitUplinkFrom(tagIdx int, bits []bool, start, bitRate float64) (*tag.Modulator, error) {
	if tagIdx < 0 || tagIdx >= len(s.mods) {
		return nil, fmt.Errorf("core: tag %d does not exist (%d tags)", tagIdx, len(s.mods))
	}
	if bitRate <= 0 {
		return nil, fmt.Errorf("core: bit rate must be positive, got %v", bitRate)
	}
	mod, err := tag.NewModulator(bits, start, 1/bitRate)
	if err != nil {
		return nil, err
	}
	s.mods[tagIdx] = mod
	return mod, nil
}

// UplinkDecoder builds the paper's decoder for the given tag bit rate.
func (s *System) UplinkDecoder(bitRate float64) (*uplink.Decoder, error) {
	if bitRate <= 0 {
		return nil, fmt.Errorf("core: bit rate must be positive, got %v", bitRate)
	}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(1 / bitRate))
	if err != nil {
		return nil, err
	}
	dec.Instrument(s.obs)
	if s.faults != nil {
		dec.Impair = s.faults
	}
	return dec, nil
}

// Run advances the simulation to absolute time t.
func (s *System) Run(until float64) { s.Eng.Run(until) }
