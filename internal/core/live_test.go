package core

import (
	"reflect"
	"testing"

	"repro/internal/reader"
	"repro/internal/tag"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// TestLiveSessionMatchesBatchDecode runs the online decode path end to
// end: a reader.LiveSession subscribed via OnMeasurement decodes during
// the simulation, and its result must be byte-identical to the batch
// decode of the full collected series afterwards — the system-level form
// of the stream/batch equivalence property.
func TestLiveSessionMatchesBatchDecode(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	payload := RandomPayload(45, 71)
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sys.UplinkDecoder(100)
	if err != nil {
		t.Fatal(err)
	}
	const retention = 0.2
	ls, err := reader.NewLiveSession(dec, mod.Start(), 45, uplink.StreamCSI, retention)
	if err != nil {
		t.Fatal(err)
	}
	sys.OnMeasurement(ls.OnMeasurement)
	sys.Run(mod.End() + 0.5)

	if err := ls.Err(); err != nil {
		t.Fatalf("live session hit a push error: %v", err)
	}
	// The sim ran past the frame end, so the payload decoded online,
	// before the run finished.
	if !ls.Done() {
		t.Fatal("frame did not close during the run")
	}
	if len(ls.Bits()) != 45 {
		t.Fatalf("live session emitted %d bits, want 45", len(ls.Bits()))
	}
	live, err := ls.Finish()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dec.DecodeCSI(sys.Series(), mod.Start(), 45)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, batch) {
		t.Errorf("live decode differs from batch:\nlive:  %+v\nbatch: %+v", live, batch)
	}
	if errs := CountBitErrors(live.Payload, payload); errs != 0 {
		t.Errorf("live decode produced %d bit errors at 5 cm", errs)
	}

	// Bounded retention: the window holds only the trailing slice, not
	// the whole trace.
	win := ls.Window()
	if win.Len() == 0 || win.Len() >= sys.Series().Len()/2 {
		t.Errorf("retained window has %d of %d measurements; retention is not bounding it",
			win.Len(), sys.Series().Len())
	}
	last := win.Measurements[win.Len()-1].Timestamp
	if first := win.Measurements[0].Timestamp; last-first > retention+1e-9 {
		t.Errorf("window spans %v s, want <= %v", last-first, retention)
	}
}
