package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/reader"
	"repro/internal/wifi"
)

// This file runs full query/response transactions as sweepable trials —
// the unit of work behind the fault-resilience experiment (retransmission
// curves under a lossy channel, like the paper's §4.1 analysis but on an
// impaired medium).

// TransactionTrialSpec configures one full transaction trial.
type TransactionTrialSpec struct {
	// Config is the system config (seed, geometry, fault schedule).
	Config Config
	// HelperPacketsPerSecond is the CBR illumination rate.
	HelperPacketsPerSecond float64
	// BitRate the query advises for the tag's response.
	BitRate float64
	// Data is the tag's 48-bit response payload.
	Data uint64
	// Txn tunes the transaction; the zero value takes
	// DefaultTransactionConfig.
	Txn TransactionConfig
	// Warmup is the traffic lead-in before the query starts (default
	// 0.3 s, enough context for the conditioning window).
	Warmup float64
}

// TransactionTrialResult is one transaction trial's outcome.
type TransactionTrialResult struct {
	// Result is the transaction outcome, including the fault verdict.
	Result *QueryResult
	// Injected is the injector's final tally for the whole trial
	// (warm-up included), zero without a fault schedule.
	Injected faults.Tally
	// Metrics is the trial System's metrics snapshot. Aggregate across
	// trials with obs.Registry.Merge.
	Metrics *obs.Snapshot
}

// RunTransactionTrial builds a system, starts helper traffic, runs one
// query/response transaction, and reports the outcome with metrics.
func RunTransactionTrial(spec TransactionTrialSpec) (*TransactionTrialResult, error) {
	if spec.BitRate <= 0 {
		return nil, fmt.Errorf("core: transaction trial needs a positive bit rate, got %v", spec.BitRate)
	}
	if spec.HelperPacketsPerSecond <= 0 {
		return nil, fmt.Errorf("core: helper rate must be positive, got %v", spec.HelperPacketsPerSecond)
	}
	txn := spec.Txn
	if txn.MaxAttempts == 0 {
		txn = DefaultTransactionConfig()
	}
	warmup := spec.Warmup
	if warmup <= 0 {
		warmup = 0.3
	}
	sys, err := NewSystem(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := (&wifi.CBRSource{
		Station:  sys.Helper,
		Dst:      wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload:  200,
		Interval: 1 / spec.HelperPacketsPerSecond,
	}).Start(); err != nil {
		return nil, err
	}
	sys.Run(warmup)
	q := reader.Query{Command: reader.CmdRead, TagID: 1, BitRate: uint16(spec.BitRate)}
	res, err := sys.RunQuery(q, spec.Data, txn)
	if err != nil {
		return nil, err
	}
	return &TransactionTrialResult{
		Result:   res,
		Injected: sys.FaultInjector().Tally(),
		Metrics:  sys.Metrics().Snapshot(),
	}, nil
}
