package core

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tag"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

// This file provides the single-trial workhorses the evaluation harness
// (internal/eval) sweeps over.

// DecodeMode selects the reader's measurement source.
type DecodeMode int

// Decode modes.
const (
	// DecodeCSI uses per-sub-channel CSI (§3.2).
	DecodeCSI DecodeMode = iota
	// DecodeRSSI uses per-antenna RSSI only (§3.3).
	DecodeRSSI
)

// String implements fmt.Stringer.
func (m DecodeMode) String() string {
	if m == DecodeRSSI {
		return "RSSI"
	}
	return "CSI"
}

// UplinkTrialSpec configures one uplink transmission trial.
type UplinkTrialSpec struct {
	// System config (seed, geometry, models).
	Config Config
	// BitRate of the tag, bits/second.
	BitRate float64
	// HelperPacketsPerSecond is the CBR injection rate at the helper
	// (the paper inserts delays between injected packets to set this).
	HelperPacketsPerSecond float64
	// PayloadLen in bits (the paper's runs use 90).
	PayloadLen int
	// Mode selects CSI or RSSI decoding.
	Mode DecodeMode
	// UseBeacons replaces CBR data traffic with AP beacons at
	// HelperPacketsPerSecond (Fig. 16).
	UseBeacons bool
	// Bursty replaces CBR with heavy-tailed on/off traffic at roughly
	// HelperPacketsPerSecond, exercising the timestamp-binning logic.
	Bursty bool
}

// UplinkTrialResult is one trial's outcome.
type UplinkTrialResult struct {
	// Sent is the transmitted payload.
	Sent []bool
	// Result is the decoder output.
	Result *uplink.Result
	// BitErrors counts payload mismatches.
	BitErrors int
	// Detected reports whether the preamble correlation cleared the
	// detection threshold.
	Detected bool
	// Metrics is the trial System's metrics snapshot, taken after the
	// decode. Aggregate across trials with obs.Registry.Merge.
	Metrics *obs.Snapshot
}

// startHelperTraffic wires the spec's traffic source to the helper.
func startHelperTraffic(sys *System, spec UplinkTrialSpec) error {
	dst := wifi.MAC{0x02, 0, 0, 0, 0, 9}
	switch {
	case spec.UseBeacons:
		return (&wifi.BeaconSource{
			Station:  sys.Helper,
			Interval: 1 / spec.HelperPacketsPerSecond,
		}).Start()
	case spec.Bursty:
		// Bursts of ~20 packets with gaps sized to hit the average
		// rate.
		const burst = 20.0
		const inBurst = 0.0005
		gap := burst/spec.HelperPacketsPerSecond - burst*inBurst
		if gap < 0.001 {
			gap = 0.001
		}
		return (&wifi.BurstySource{
			Station: sys.Helper, Dst: dst, Payload: 200,
			MeanBurst: burst, MeanGap: gap, InBurstInterval: inBurst,
			Rnd: rng.New(spec.Config.Seed + 991),
		}).Start()
	default:
		return (&wifi.CBRSource{
			Station:  sys.Helper,
			Dst:      dst,
			Payload:  200,
			Interval: 1 / spec.HelperPacketsPerSecond,
		}).Start()
	}
}

// RunUplinkVariantTrial is RunUplinkTrial decoding with an ablated
// pipeline variant instead of the paper's.
func RunUplinkVariantTrial(spec UplinkTrialSpec, v uplink.Variant) (*UplinkTrialResult, error) {
	if spec.BitRate <= 0 || spec.PayloadLen <= 0 || spec.HelperPacketsPerSecond <= 0 {
		return nil, fmt.Errorf("core: invalid trial spec")
	}
	sys, err := NewSystem(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := startHelperTraffic(sys, spec); err != nil {
		return nil, err
	}
	payload := RandomPayload(spec.PayloadLen, spec.Config.Seed+7777)
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, spec.BitRate)
	if err != nil {
		return nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(spec.BitRate)
	if err != nil {
		return nil, err
	}
	res, err := dec.DecodeVariant(sys.Series(), mod.Start(), spec.PayloadLen, v)
	if err != nil {
		return nil, err
	}
	return &UplinkTrialResult{
		Sent:      payload,
		Result:    res,
		BitErrors: CountBitErrors(res.Payload, payload),
		Detected:  dec.Detected(res),
		Metrics:   sys.Metrics().Snapshot(),
	}, nil
}

// RandomPayload returns a deterministic pseudo-random payload.
func RandomPayload(n int, seed int64) []bool {
	rnd := rng.New(seed)
	out := make([]bool, n)
	for i := range out {
		out[i] = rnd.Bool()
	}
	return out
}

// CountBitErrors compares two payloads; missing decoded bits count as
// errors.
func CountBitErrors(got, want []bool) int {
	errs := 0
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			errs++
		}
	}
	return errs
}

// RunUplinkTrial executes one tag transmission over helper traffic and
// decodes it: build system → warm up traffic → transmit → decode.
func RunUplinkTrial(spec UplinkTrialSpec) (*UplinkTrialResult, error) {
	if spec.BitRate <= 0 || spec.PayloadLen <= 0 {
		return nil, fmt.Errorf("core: invalid trial spec: rate %v, payload %d",
			spec.BitRate, spec.PayloadLen)
	}
	if spec.HelperPacketsPerSecond <= 0 {
		return nil, fmt.Errorf("core: helper rate must be positive")
	}
	sys, err := NewSystem(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := startHelperTraffic(sys, spec); err != nil {
		return nil, err
	}
	payload := RandomPayload(spec.PayloadLen, spec.Config.Seed+7777)
	const txStart = 1.0 // warm-up so the conditioning window has context
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), txStart, spec.BitRate)
	if err != nil {
		return nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(spec.BitRate)
	if err != nil {
		return nil, err
	}
	var res *uplink.Result
	switch spec.Mode {
	case DecodeRSSI:
		res, err = dec.DecodeRSSI(sys.Series(), mod.Start(), spec.PayloadLen)
	default:
		res, err = dec.DecodeCSI(sys.Series(), mod.Start(), spec.PayloadLen)
	}
	if err != nil {
		return nil, err
	}
	return &UplinkTrialResult{
		Sent:      payload,
		Result:    res,
		BitErrors: CountBitErrors(res.Payload, payload),
		Detected:  dec.Detected(res),
		Metrics:   sys.Metrics().Snapshot(),
	}, nil
}

// RunSingleChannelTrial is RunUplinkTrial but decoding from exactly one
// (antenna, sub-channel) pair — the Fig. 5 / Fig. 11 baseline.
func RunSingleChannelTrial(spec UplinkTrialSpec, antenna, subchannel int) (*UplinkTrialResult, error) {
	if spec.BitRate <= 0 || spec.PayloadLen <= 0 || spec.HelperPacketsPerSecond <= 0 {
		return nil, fmt.Errorf("core: invalid trial spec")
	}
	sys, err := NewSystem(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := (&wifi.CBRSource{
		Station:  sys.Helper,
		Dst:      wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload:  200,
		Interval: 1 / spec.HelperPacketsPerSecond,
	}).Start(); err != nil {
		return nil, err
	}
	payload := RandomPayload(spec.PayloadLen, spec.Config.Seed+7777)
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, spec.BitRate)
	if err != nil {
		return nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(spec.BitRate)
	if err != nil {
		return nil, err
	}
	res, err := dec.DecodeSingleChannel(sys.Series(), mod.Start(), spec.PayloadLen, antenna, subchannel)
	if err != nil {
		return nil, err
	}
	return &UplinkTrialResult{
		Sent:      payload,
		Result:    res,
		BitErrors: CountBitErrors(res.Payload, payload),
		Detected:  dec.Detected(res),
		Metrics:   sys.Metrics().Snapshot(),
	}, nil
}

// RunLongRangeTrial executes one coded long-range transmission (§3.4) with
// orthogonal codes of length codeLen and returns the bit error count.
func RunLongRangeTrial(spec UplinkTrialSpec, codeLen int) (*UplinkTrialResult, error) {
	if spec.BitRate <= 0 || spec.PayloadLen <= 0 || spec.HelperPacketsPerSecond <= 0 {
		return nil, fmt.Errorf("core: invalid trial spec")
	}
	code0, code1, err := dsp.WalshPair(codeLen)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(spec.Config)
	if err != nil {
		return nil, err
	}
	if err := (&wifi.CBRSource{
		Station:  sys.Helper,
		Dst:      wifi.MAC{0x02, 0, 0, 0, 0, 9},
		Payload:  200,
		Interval: 1 / spec.HelperPacketsPerSecond,
	}).Start(); err != nil {
		return nil, err
	}
	payload := RandomPayload(spec.PayloadLen, spec.Config.Seed+7777)
	chips := tag.ExpandWithCodes(payload, code0, code1)
	frame := make([]bool, 0, 26+len(chips))
	frame = append(frame, tag.Preamble...)
	frame = append(frame, chips...)
	frame = append(frame, tag.Postamble...)
	mod, err := sys.TransmitUplink(frame, 1.0, spec.BitRate)
	if err != nil {
		return nil, err
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(spec.BitRate)
	if err != nil {
		return nil, err
	}
	res, err := dec.DecodeLongRange(sys.Series(), mod.Start(), spec.PayloadLen, code0, code1)
	if err != nil {
		return nil, err
	}
	return &UplinkTrialResult{
		Sent:      payload,
		Result:    &uplink.Result{Payload: res.Payload, Good: res.Good, PreambleCorrelation: 1},
		BitErrors: CountBitErrors(res.Payload, payload),
		Detected:  true,
		Metrics:   sys.Metrics().Snapshot(),
	}, nil
}
