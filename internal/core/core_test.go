package core

import (
	"testing"

	"repro/internal/tag"
	"repro/internal/units"
	"repro/internal/uplink"
	"repro/internal/wifi"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.TagReaderDistance != units.Centimeters(5) {
		t.Errorf("default tag-reader distance = %v", cfg.TagReaderDistance)
	}
	if cfg.HelperTagDistance != 3 {
		t.Errorf("default helper-tag distance = %v", cfg.HelperTagDistance)
	}
	if cfg.ReaderPower != 16 {
		t.Errorf("default reader power = %v", cfg.ReaderPower)
	}
	if sys.Channel.Subchannels() != 30 || sys.Channel.Antennas() != 3 {
		t.Errorf("channel shape = (%d, %d)", sys.Channel.Subchannels(), sys.Channel.Antennas())
	}
}

func TestSystemCollectsMeasurements(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(1)
	n := sys.Series().Len()
	if n < 900 || n > 1100 {
		t.Errorf("collected %d measurements in 1 s at 1000 pkt/s", n)
	}
	sys.ResetSeries()
	if sys.Series().Len() != 0 {
		t.Error("ResetSeries should clear measurements")
	}
}

func TestSystemIgnoresReaderOwnPackets(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Reader, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.5)
	if sys.Series().Len() != 0 {
		t.Errorf("reader measured %d of its own packets", sys.Series().Len())
	}
}

func TestMeasureAllStations(t *testing.T) {
	run := func(all bool) int {
		sys, err := NewSystem(Config{Seed: 4, MeasureAllStations: all})
		if err != nil {
			t.Fatal(err)
		}
		other := sys.AddStation("client", 16, 2)
		(&wifi.CBRSource{Station: other, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
		sys.Run(0.5)
		return sys.Series().Len()
	}
	if n := run(false); n != 0 {
		t.Errorf("helper-only mode measured %d foreign packets", n)
	}
	if n := run(true); n < 400 {
		t.Errorf("measure-all mode collected only %d measurements", n)
	}
}

func TestTransmitUplinkValidation(t *testing.T) {
	sys, _ := NewSystem(Config{Seed: 5})
	if _, err := sys.TransmitUplink([]bool{true}, 0, 0); err == nil {
		t.Error("zero bit rate should error")
	}
	if _, err := sys.UplinkDecoder(0); err == nil {
		t.Error("zero bit rate decoder should error")
	}
}

func TestUplinkTrialCleanAt5cm(t *testing.T) {
	res, err := RunUplinkTrial(UplinkTrialSpec{
		Config:                 Config{Seed: 6},
		BitRate:                100,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             90,
		Mode:                   DecodeCSI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors != 0 {
		t.Errorf("5 cm CSI trial: %d bit errors", res.BitErrors)
	}
	if !res.Detected {
		t.Error("5 cm trial should clear the detection threshold")
	}
}

func TestUplinkTrialRSSIAt5cm(t *testing.T) {
	res, err := RunUplinkTrial(UplinkTrialSpec{
		Config:                 Config{Seed: 7},
		BitRate:                100,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             90,
		Mode:                   DecodeRSSI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors > 1 {
		t.Errorf("5 cm RSSI trial: %d bit errors", res.BitErrors)
	}
}

func TestUplinkTrialFailsFar(t *testing.T) {
	// Plain (uncoded) decoding at 3 m should be hopeless (Fig. 6).
	res, err := RunUplinkTrial(UplinkTrialSpec{
		Config:                 Config{Seed: 8, TagReaderDistance: 3},
		BitRate:                100,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             90,
		Mode:                   DecodeCSI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors < 10 {
		t.Errorf("3 m plain decode should fail badly, got %d/90 errors", res.BitErrors)
	}
}

func TestUplinkTrialValidation(t *testing.T) {
	if _, err := RunUplinkTrial(UplinkTrialSpec{}); err == nil {
		t.Error("zero spec should error")
	}
	if _, err := RunUplinkTrial(UplinkTrialSpec{BitRate: 100, PayloadLen: 10}); err == nil {
		t.Error("missing helper rate should error")
	}
}

func TestBeaconOnlyTrial(t *testing.T) {
	// Fig. 16: the uplink works from beacons alone (RSSI decoding).
	res, err := RunUplinkTrial(UplinkTrialSpec{
		Config:                 Config{Seed: 9},
		BitRate:                5,
		HelperPacketsPerSecond: 50, // 50 beacons/s
		PayloadLen:             20,
		Mode:                   DecodeRSSI,
		UseBeacons:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A couple of errors out of 20 bits is within the sparse-measurement
	// floor for a single quick trial; Fig. 16's sweep averages this out.
	if res.BitErrors > 2 {
		t.Errorf("beacon-only trial: %d/20 bit errors", res.BitErrors)
	}
}

func TestLongRangeTrialBeatsPlainAt16m(t *testing.T) {
	spec := UplinkTrialSpec{
		Config:                 Config{Seed: 10, TagReaderDistance: 1.6},
		BitRate:                500, // 2 helper packets per chip
		HelperPacketsPerSecond: 1000,
		PayloadLen:             16,
	}
	coded, err := RunLongRangeTrial(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if coded.BitErrors > 1 {
		t.Errorf("L=100 at 1.6 m: %d/16 errors", coded.BitErrors)
	}
}

func TestSingleChannelTrial(t *testing.T) {
	spec := UplinkTrialSpec{
		Config:                 Config{Seed: 11, TagReaderDistance: units.Centimeters(30)},
		BitRate:                100,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             45,
	}
	if _, err := RunSingleChannelTrial(spec, 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSingleChannelTrial(spec, 9, 99); err == nil {
		t.Error("out-of-range channel should error")
	}
}

func TestRandomPayloadDeterministic(t *testing.T) {
	a := RandomPayload(64, 42)
	b := RandomPayload(64, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomPayload not deterministic")
		}
	}
	c := RandomPayload(64, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different payloads")
	}
}

func TestCountBitErrors(t *testing.T) {
	if got := CountBitErrors([]bool{true, false}, []bool{true, true}); got != 1 {
		t.Errorf("CountBitErrors = %d, want 1", got)
	}
	if got := CountBitErrors([]bool{true}, []bool{true, true}); got != 1 {
		t.Errorf("short decode should count missing bits, got %d", got)
	}
}

func TestDecodeModeString(t *testing.T) {
	if DecodeCSI.String() != "CSI" || DecodeRSSI.String() != "RSSI" {
		t.Error("DecodeMode strings wrong")
	}
}

func TestUplinkAckRoundTrip(t *testing.T) {
	// §4.1: the tag acknowledges with a minimal burst (the bare
	// preamble); the reader detects it by correlation. Run one through
	// the full system.
	sys, err := NewSystem(Config{Seed: 33, TagReaderDistance: units.Centimeters(20)})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	mod, err := sys.TransmitUplink(uplink.AckBits(), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(mod.End() + 0.5)
	dec, err := sys.UplinkDecoder(100)
	if err != nil {
		t.Fatal(err)
	}
	ok, corr, err := dec.DetectAck(sys.Series(), mod.Start())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("ACK not detected through the system (corr %v)", corr)
	}
	// A window with no ACK must stay silent.
	ok, _, err = dec.DetectAck(sys.Series(), mod.End()+0.2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("phantom ACK detected in an idle window")
	}
}

func TestMultiTagConcurrentTransmissionsGarble(t *testing.T) {
	// Two tags transmitting different payloads simultaneously should
	// garble each other — the physical basis for inventory collisions.
	sys, err := NewSystem(Config{Seed: 34, TagReaderDistance: units.Centimeters(15)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddTag(units.Centimeters(15)); err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	p0 := RandomPayload(45, 1)
	p1 := RandomPayload(45, 2)
	m0, err := sys.TransmitUplinkFrom(0, tag.FrameBits(p0), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.TransmitUplinkFrom(1, tag.FrameBits(p1), 1.0, 100); err != nil {
		t.Fatal(err)
	}
	sys.Run(m0.End() + 0.5)
	dec, _ := sys.UplinkDecoder(100)
	res, err := dec.DecodeCSI(sys.Series(), m0.Start(), 45)
	if err != nil {
		t.Fatal(err)
	}
	errs0 := CountBitErrors(res.Payload, p0)
	errs1 := CountBitErrors(res.Payload, p1)
	// The decode cannot be clean against both payloads simultaneously
	// (they differ in ~half their bits).
	if errs0 == 0 && errs1 == 0 {
		t.Error("impossible: decoded both colliding payloads cleanly")
	}
	if errs0+errs1 < 10 {
		t.Errorf("collision too clean: %d + %d errors", errs0, errs1)
	}
}

func TestTransmitUplinkFromValidation(t *testing.T) {
	sys, _ := NewSystem(Config{Seed: 35})
	if _, err := sys.TransmitUplinkFrom(3, []bool{true}, 0, 100); err == nil {
		t.Error("unknown tag index should error")
	}
	if _, err := sys.AddTag(0); err == nil {
		t.Error("zero tag distance should error")
	}
}

func TestTxLogAndModulationDepth(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	if d := sys.ModulationDepth(); d <= 0.1 || d > 1 {
		t.Errorf("modulation depth at 5 cm = %v, want a visible fraction", d)
	}
	sys.EnableTxLog()
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 100, Interval: 0.001}).Start()
	sys.Run(0.1)
	if n := len(sys.TxLog()); n < 80 || n > 120 {
		t.Errorf("tx log holds %d entries, want ~100", n)
	}
}

func TestRunUplinkVariantTrialMatchesPaperVariant(t *testing.T) {
	spec := UplinkTrialSpec{
		Config:                 Config{Seed: 37},
		BitRate:                100,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             45,
	}
	a, err := RunUplinkTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUplinkVariantTrial(spec, uplink.PaperVariant)
	if err != nil {
		t.Fatal(err)
	}
	if a.BitErrors != b.BitErrors {
		t.Errorf("paper variant trial errors = %d, DecodeCSI trial = %d", b.BitErrors, a.BitErrors)
	}
	if _, err := RunUplinkVariantTrial(UplinkTrialSpec{}, uplink.PaperVariant); err == nil {
		t.Error("zero spec should error")
	}
}

func TestBurstyTrialRuns(t *testing.T) {
	// Bits must outlast the burst gaps (~10 ms) or some see no
	// measurements at all; 50 bps gives 20 ms bits, which the timestamp
	// binning handles (§5).
	res, err := RunUplinkTrial(UplinkTrialSpec{
		Config:                 Config{Seed: 38},
		BitRate:                50,
		HelperPacketsPerSecond: 1000,
		PayloadLen:             45,
		Bursty:                 true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitErrors > 2 {
		t.Errorf("bursty trial at 5 cm: %d/45 errors", res.BitErrors)
	}
}

func TestMultipleHelpersCombine(t *testing.T) {
	// §5: "the Wi-Fi reader can leverage transmissions from all Wi-Fi
	// devices in the network and combine the channel information across
	// all of them to achieve a high data rate". Two helpers at 400 pkt/s
	// each: alone, 100 bps has only 4 measurements/bit; together, 8.
	run := func(all bool) (*UplinkTrialResult, float64) {
		sys, err := NewSystem(Config{Seed: 39, MeasureAllStations: all})
		if err != nil {
			t.Fatal(err)
		}
		(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / 400}).Start()
		second := sys.AddStation("helper2", 16, 4)
		(&wifi.CBRSource{Station: second, Dst: wifi.MAC{9}, Payload: 200, Interval: 1.0 / 400}).Start()
		payload := RandomPayload(45, 39+7777)
		mod, err := sys.TransmitUplink(tag.FrameBits(payload), 1.0, 100)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(mod.End() + 0.5)
		dec, _ := sys.UplinkDecoder(100)
		res, err := dec.DecodeCSI(sys.Series(), mod.Start(), 45)
		if err != nil {
			t.Fatal(err)
		}
		return &UplinkTrialResult{Sent: payload, Result: res,
			BitErrors: CountBitErrors(res.Payload, payload)}, res.MeasurementsPerBit
	}
	_, mpbOne := run(false)
	combined, mpbAll := run(true)
	if mpbAll < mpbOne*1.7 {
		t.Errorf("combining helpers should roughly double measurements/bit: %v -> %v",
			mpbOne, mpbAll)
	}
	if combined.BitErrors > 1 {
		t.Errorf("combined-helper decode errors = %d", combined.BitErrors)
	}
}

func TestFindTransmissionThroughSystem(t *testing.T) {
	// The reader scans for a response whose timing it does not know —
	// §3.2's "waiting for an incoming transmission" — over the real
	// channel model.
	sys, err := NewSystem(Config{Seed: 44, TagReaderDistance: units.Centimeters(25)})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	payload := RandomPayload(45, 44)
	const trueStart = 1.6180
	mod, err := sys.TransmitUplink(tag.FrameBits(payload), trueStart, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(mod.End() + 0.5)
	dec, _ := sys.UplinkDecoder(100)
	start, found, err := dec.FindTransmission(sys.Series(), 1.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("response not detected by the scan")
	}
	if start < trueStart-0.005 || start > trueStart+0.005 {
		t.Fatalf("scanned start = %v, want ~%v", start, trueStart)
	}
	res, err := dec.DecodeCSI(sys.Series(), start, 45)
	if err != nil {
		t.Fatal(err)
	}
	if errs := CountBitErrors(res.Payload, payload); errs > 1 {
		t.Errorf("decode from scanned start: %d/45 errors", errs)
	}
	// A scan over a quiet region must stay silent.
	_, found, err = dec.FindTransmission(sys.Series(), mod.End()+0.1, mod.End()+0.4)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("phantom detection after the transmission ended")
	}
}
