package core

// Backoff timing tests: the transaction layer promises bounded exponential
// pacing between retransmissions. These tests pin the arithmetic of
// backoffAfter and then verify, from the transmission log of a failing
// transaction, that the reader actually waited on the air — attempt
// spacing is timeout plus the scheduled backoff, not a hot retry loop.

import (
	"math"
	"testing"

	"repro/internal/reader"
	"repro/internal/wifi"
)

func TestBackoffAfterBounds(t *testing.T) {
	tc := TransactionConfig{BackoffBase: 0.025, BackoffFactor: 2, BackoffMax: 0.4, MaxAttempts: 8}
	cases := []struct {
		attempt int
		want    float64
	}{
		{0, 0},     // never ran: no wait
		{-1, 0},    // nonsense attempt: no wait
		{1, 0.025}, // first failure: base
		{2, 0.05},  // doubled
		{3, 0.1},   // doubled again
		{5, 0.4},   // 0.025*2^4 = 0.4, exactly at the cap
		{6, 0.4},   // capped
		{100, 0.4}, // capped, no overflow blowup
	}
	for _, c := range cases {
		if got := tc.backoffAfter(c.attempt); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("backoffAfter(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
	if got := (TransactionConfig{}).backoffAfter(3); got != 0 {
		t.Errorf("zero base must disable backoff, got %v", got)
	}
	// Factor below 1 falls back to the default doubling rather than a
	// shrinking (effectively immediate) retry ladder.
	low := TransactionConfig{BackoffBase: 0.01, BackoffFactor: 0.5}
	if got := low.backoffAfter(2); math.Abs(got-0.02) > 1e-12 {
		t.Errorf("sub-1 factor: backoffAfter(2) = %v, want doubled 0.02", got)
	}
	// Zero max means uncapped growth.
	uncapped := TransactionConfig{BackoffBase: 0.1, BackoffFactor: 2}
	if got := uncapped.backoffAfter(6); math.Abs(got-3.2) > 1e-12 {
		t.Errorf("uncapped: backoffAfter(6) = %v, want 3.2", got)
	}
}

func TestMaxBackoffTotalSumsTheLadder(t *testing.T) {
	tc := TransactionConfig{BackoffBase: 0.05, BackoffFactor: 2, BackoffMax: 0.4, MaxAttempts: 4}
	want := 0.05 + 0.1 + 0.2 // waits after attempts 1..3
	if got := tc.maxBackoffTotal(); math.Abs(got-want) > 1e-12 {
		t.Errorf("maxBackoffTotal = %v, want %v", got, want)
	}
}

// TestRunQueryBackoffPacesRetries runs a transaction that cannot succeed
// (tag far out of downlink range) and checks the on-air spacing of the
// reader's CTS_to_SELF reservations: attempt i+1 must start no earlier
// than attempt i's deadline plus the exponential wait, and not much later
// (only MAC-level contention may add delay).
func TestRunQueryBackoffPacesRetries(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 40, TagReaderDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.2)
	tc := DefaultTransactionConfig()
	tc.MaxAttempts = 3
	tc.ResponseTimeout = 1.0
	tc.BackoffBase = 0.05
	tc.BackoffFactor = 2
	tc.BackoffMax = 0.4
	res, err := sys.RunQuery(reader.Query{Command: reader.CmdRead, BitRate: 100}, 0x1234, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseOK || res.Attempts != tc.MaxAttempts {
		t.Fatalf("expected %d failed attempts, got ok=%v attempts=%d",
			tc.MaxAttempts, res.ResponseOK, res.Attempts)
	}

	var ctsStarts []float64
	for _, tx := range sys.TxLog() {
		if tx.Station == sys.Reader && tx.Frame.Header.Type == wifi.TypeCTSToSelf {
			ctsStarts = append(ctsStarts, tx.Start)
		}
	}
	if len(ctsStarts) != tc.MaxAttempts {
		t.Fatalf("logged %d CTS_to_SELF reservations, want one per attempt (%d)",
			len(ctsStarts), tc.MaxAttempts)
	}
	// The MAC may delay a queued CTS by contention and in-flight traffic,
	// but never by more than a handful of frame airtimes at 1000 pkt/s.
	const macSlack = 0.02
	var wantTotal float64
	for i := 1; i < len(ctsStarts); i++ {
		wait := tc.backoffAfter(i)
		wantTotal += wait
		gap := ctsStarts[i] - ctsStarts[i-1]
		lo := tc.ResponseTimeout + wait
		if gap < lo {
			t.Errorf("attempt %d started %.4fs after attempt %d, want at least timeout+backoff = %.4fs",
				i+1, gap, i, lo)
		}
		if gap > lo+macSlack {
			t.Errorf("attempt %d started %.4fs after attempt %d, want under %.4fs (timeout+backoff+MAC slack)",
				i+1, gap, i, lo+macSlack)
		}
	}
	if math.Abs(res.BackoffTotal-wantTotal) > 1e-12 {
		t.Errorf("BackoffTotal = %v, want the sum of scheduled waits %v", res.BackoffTotal, wantTotal)
	}
}

// TestRunQueryZeroBaseDisablesBackoff keeps the pre-backoff behaviour
// reachable: with BackoffBase zero, retries fire exactly at the timeout
// and the result reports no backoff spent.
func TestRunQueryZeroBaseDisablesBackoff(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 41, TagReaderDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.2)
	tc := DefaultTransactionConfig()
	tc.MaxAttempts = 2
	tc.ResponseTimeout = 1.0
	tc.BackoffBase = 0
	res, err := sys.RunQuery(reader.Query{Command: reader.CmdRead, BitRate: 100}, 0x1, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackoffTotal != 0 {
		t.Errorf("BackoffTotal = %v with backoff disabled, want 0", res.BackoffTotal)
	}
	var ctsStarts []float64
	for _, tx := range sys.TxLog() {
		if tx.Station == sys.Reader && tx.Frame.Header.Type == wifi.TypeCTSToSelf {
			ctsStarts = append(ctsStarts, tx.Start)
		}
	}
	if len(ctsStarts) != 2 {
		t.Fatalf("logged %d reservations, want 2", len(ctsStarts))
	}
	gap := ctsStarts[1] - ctsStarts[0]
	if gap < tc.ResponseTimeout || gap > tc.ResponseTimeout+0.02 {
		t.Errorf("retry gap %v, want the bare timeout %v (+MAC slack)", gap, tc.ResponseTimeout)
	}
}
