package core

import (
	"fmt"
	"math"

	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/tag"
)

// This file implements the full request-response transaction of §2: the
// reader queries the tag on the downlink (packet presence/absence inside a
// CTS_to_SELF) and the tag answers on the uplink (channel modulation over
// the helper's packets), with reader-side retransmission (§4.1) paced by
// bounded exponential backoff — hammering the channel again immediately
// after a timeout is exactly wrong when the failure came from a burst
// interferer or a fade that needs time to pass.

// FaultVerdict attributes injected faults to one transaction.
type FaultVerdict struct {
	// Injected counts fault events injected while the transaction ran.
	Injected int64
	// Kinds lists the fault kinds that fired, sorted.
	Kinds []string
	// Survived reports that the transaction completed despite at least
	// one injected fault.
	Survived bool
}

// QueryResult reports one transaction's outcome.
type QueryResult struct {
	// Query as sent.
	Query reader.Query
	// Attempts used (1 = first try succeeded).
	Attempts int
	// TagDecoded reports whether the tag decoded the query (CRC clean).
	TagDecoded bool
	// TagHeard is the query the tag decoded.
	TagHeard reader.Query
	// ResponseOK reports whether the reader decoded the tag's response
	// with a clean CRC.
	ResponseOK bool
	// ResponseData is the tag's decoded 48-bit response payload.
	ResponseData uint64
	// ResponseCorrelation is the uplink preamble correlation of the
	// final attempt.
	ResponseCorrelation float64
	// BackoffTotal is the time this transaction spent waiting in
	// retransmission backoff, seconds.
	BackoffTotal float64
	// Faults is the per-query fault verdict (zero when the system runs
	// without a fault schedule).
	Faults FaultVerdict
}

// TransactionConfig tunes the round trip.
type TransactionConfig struct {
	// DownlinkBitDuration (50 µs default → 20 kbps).
	DownlinkBitDuration float64
	// Turnaround is the delay between the tag decoding a query and
	// starting its response.
	Turnaround float64
	// ResponseTimeout bounds one attempt: downlink + turnaround +
	// uplink + decode margin.
	ResponseTimeout float64
	// MaxAttempts bounds retransmissions.
	MaxAttempts int
	// BackoffBase is the wait added after the first failed attempt;
	// subsequent failures multiply it by BackoffFactor, capped at
	// BackoffMax. Zero disables backoff (retry exactly at the timeout).
	BackoffBase float64
	// BackoffFactor is the exponential growth factor (values below 1 are
	// treated as the default 2).
	BackoffFactor float64
	// BackoffMax caps a single backoff wait. Zero means uncapped.
	BackoffMax float64
}

// DefaultTransactionConfig returns sane timings for a 100 bps uplink.
func DefaultTransactionConfig() TransactionConfig {
	return TransactionConfig{
		DownlinkBitDuration: 50e-6,
		Turnaround:          0.02,
		ResponseTimeout:     3.0,
		MaxAttempts:         5,
		BackoffBase:         0.025,
		BackoffFactor:       2,
		BackoffMax:          0.4,
	}
}

// backoffAfter returns the wait inserted after the given failed attempt
// (1-based). Attempt n waits Base·Factor^(n−1), capped at Max.
func (tc TransactionConfig) backoffAfter(attempt int) float64 {
	if tc.BackoffBase <= 0 || attempt <= 0 {
		return 0
	}
	factor := tc.BackoffFactor
	if factor < 1 {
		factor = 2
	}
	b := tc.BackoffBase * math.Pow(factor, float64(attempt-1))
	if tc.BackoffMax > 0 && b > tc.BackoffMax {
		b = tc.BackoffMax
	}
	return b
}

// maxBackoffTotal is the largest backoff a full retry ladder can spend.
func (tc TransactionConfig) maxBackoffTotal() float64 {
	var sum float64
	for i := 1; i < tc.MaxAttempts; i++ {
		sum += tc.backoffAfter(i)
	}
	return sum
}

// RunQuery executes a full transaction: the reader sends q on the
// downlink; if the tag decodes it, the tag responds with tagData (48 bits)
// at the query's advised bit rate; the reader decodes the response from
// its channel measurements. Helper traffic must already be running and the
// engine is advanced internally. Failed attempts retransmit after the
// response timeout plus an exponential backoff (see TransactionConfig).
func (s *System) RunQuery(q reader.Query, tagData uint64, tc TransactionConfig) (*QueryResult, error) {
	if q.BitRate == 0 {
		return nil, fmt.Errorf("core: query must advise a bit rate")
	}
	if tc.DownlinkBitDuration <= 0 || tc.ResponseTimeout <= 0 || tc.MaxAttempts <= 0 {
		return nil, fmt.Errorf("core: invalid transaction config %+v", tc)
	}
	s.EnableTxLog()
	enc, err := downlink.NewEncoder(tc.DownlinkBitDuration)
	if err != nil {
		return nil, err
	}
	enc.Instrument(s.obs)
	if s.faults != nil {
		enc.Impair = s.faults
	}
	txnStart := s.Eng.Now()
	tallyStart := s.faults.Tally()
	chunks := enc.Plan(q.Encode().Bits())
	if len(chunks) != 1 {
		return nil, fmt.Errorf("core: query does not fit one reservation (%d chunks)", len(chunks))
	}
	res := &QueryResult{Query: q}
	tr := reader.NewTransaction(q)
	tr.MaxAttempts = tc.MaxAttempts
	done := false

	// attempt runs one try; backoff is the wait this try spent queued
	// behind its predecessor's failure (0 for the first).
	var attempt func(backoff float64)
	attempt = func(backoff float64) {
		if done || !tr.NextAttempt() {
			done = true
			return
		}
		if backoff > 0 {
			res.BackoffTotal += backoff
			s.obs.Counter("txn.backoffs").Inc()
			s.obs.Timer("txn.backoff_s").Observe(backoff)
		}
		res.Attempts = tr.Attempts
		s.obs.Counter("txn.attempts").Inc()
		if tr.Attempts > 1 {
			s.obs.Counter("txn.retries").Inc()
		}
		deadline := s.Eng.Now() + tc.ResponseTimeout
		if err := enc.Send(s.Medium, s.Reader, chunks, func(_ int, start float64) {
			// Tag decodes at the end of the protected window.
			s.Eng.ScheduleAt(start+chunks[0].Reservation, func() {
				wr, derr := s.DecodeDownlinkWindow(start, chunks[0].Reservation, tc.DownlinkBitDuration)
				if derr != nil || wr.Err != nil {
					return // tag missed the query; reader will time out
				}
				res.TagDecoded = true
				res.TagHeard = reader.DecodeQuery(wr.Message)
				// Tag responds at the advised rate after turnaround.
				// The payload is scrambled so structured data stays
				// DC-balanced under the reader's conditioning filter.
				bits := tag.FrameBits(tag.Scramble(downlink.NewMessage(tagData).PayloadBits()))
				startTx := s.Eng.Now() + tc.Turnaround
				mod, merr := s.TransmitUplink(bits, startTx, float64(res.TagHeard.BitRate))
				if merr != nil {
					return
				}
				// Reader decodes after the response completes.
				s.Eng.ScheduleAt(mod.End()+0.05, func() {
					dec, uerr := s.UplinkDecoder(float64(res.TagHeard.BitRate))
					if uerr != nil {
						return
					}
					ur, uerr := dec.DecodeCSI(s.Series(), mod.Start(), downlink.PayloadBits)
					if uerr != nil {
						return
					}
					res.ResponseCorrelation = ur.PreambleCorrelation
					if !dec.Detected(ur) {
						return
					}
					msg, perr := downlink.ParsePayload(tag.Scramble(ur.Payload))
					if perr != nil {
						return
					}
					res.ResponseOK = true
					res.ResponseData = msg.Data
					tr.Complete()
					done = true
					s.obs.Counter("txn.completed").Inc()
					s.obs.Timer("txn.duration_s").Observe(s.Eng.Now() - txnStart)
				})
			})
		}); err != nil {
			done = true
			return
		}
		// Retry after the timeout plus backoff if not complete. The wait
		// is computed from the attempt that just ran: its failure is what
		// the backoff answers.
		wait := tc.backoffAfter(tr.Attempts)
		s.Eng.ScheduleAt(deadline+wait, func() {
			if !done {
				attempt(wait)
			}
		})
	}
	s.Eng.Schedule(0, func() { attempt(0) })
	horizon := s.Eng.Now() + float64(tc.MaxAttempts+1)*tc.ResponseTimeout + tc.maxBackoffTotal()
	s.Eng.Run(horizon)
	if s.faults != nil {
		delta := s.faults.Tally().Sub(tallyStart)
		res.Faults = FaultVerdict{
			Injected: delta.Total(),
			Kinds:    delta.ActiveKinds(),
			Survived: res.ResponseOK && delta.Total() > 0,
		}
		if delta.Total() > 0 {
			s.obs.Counter("txn.faulted").Inc()
			if res.ResponseOK {
				s.obs.Counter("txn.survived_faults").Inc()
			}
		}
	}
	return res, nil
}
