package core

import (
	"fmt"

	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/tag"
)

// This file implements the full request-response transaction of §2: the
// reader queries the tag on the downlink (packet presence/absence inside a
// CTS_to_SELF) and the tag answers on the uplink (channel modulation over
// the helper's packets), with reader-side retransmission (§4.1).

// QueryResult reports one transaction's outcome.
type QueryResult struct {
	// Query as sent.
	Query reader.Query
	// Attempts used (1 = first try succeeded).
	Attempts int
	// TagDecoded reports whether the tag decoded the query (CRC clean).
	TagDecoded bool
	// TagHeard is the query the tag decoded.
	TagHeard reader.Query
	// ResponseOK reports whether the reader decoded the tag's response
	// with a clean CRC.
	ResponseOK bool
	// ResponseData is the tag's decoded 48-bit response payload.
	ResponseData uint64
	// ResponseCorrelation is the uplink preamble correlation of the
	// final attempt.
	ResponseCorrelation float64
}

// TransactionConfig tunes the round trip.
type TransactionConfig struct {
	// DownlinkBitDuration (50 µs default → 20 kbps).
	DownlinkBitDuration float64
	// Turnaround is the delay between the tag decoding a query and
	// starting its response.
	Turnaround float64
	// ResponseTimeout bounds one attempt: downlink + turnaround +
	// uplink + decode margin.
	ResponseTimeout float64
	// MaxAttempts bounds retransmissions.
	MaxAttempts int
}

// DefaultTransactionConfig returns sane timings for a 100 bps uplink.
func DefaultTransactionConfig() TransactionConfig {
	return TransactionConfig{
		DownlinkBitDuration: 50e-6,
		Turnaround:          0.02,
		ResponseTimeout:     3.0,
		MaxAttempts:         5,
	}
}

// RunQuery executes a full transaction: the reader sends q on the
// downlink; if the tag decodes it, the tag responds with tagData (48 bits)
// at the query's advised bit rate; the reader decodes the response from
// its channel measurements. Helper traffic must already be running and the
// engine is advanced internally.
func (s *System) RunQuery(q reader.Query, tagData uint64, tc TransactionConfig) (*QueryResult, error) {
	if q.BitRate == 0 {
		return nil, fmt.Errorf("core: query must advise a bit rate")
	}
	if tc.DownlinkBitDuration <= 0 || tc.ResponseTimeout <= 0 || tc.MaxAttempts <= 0 {
		return nil, fmt.Errorf("core: invalid transaction config %+v", tc)
	}
	s.EnableTxLog()
	enc, err := downlink.NewEncoder(tc.DownlinkBitDuration)
	if err != nil {
		return nil, err
	}
	enc.Instrument(s.obs)
	txnStart := s.Eng.Now()
	chunks := enc.Plan(q.Encode().Bits())
	if len(chunks) != 1 {
		return nil, fmt.Errorf("core: query does not fit one reservation (%d chunks)", len(chunks))
	}
	res := &QueryResult{Query: q}
	tr := reader.NewTransaction(q)
	tr.MaxAttempts = tc.MaxAttempts
	done := false

	var attempt func()
	attempt = func() {
		if done || !tr.NextAttempt() {
			done = true
			return
		}
		res.Attempts = tr.Attempts
		s.obs.Counter("txn.attempts").Inc()
		if tr.Attempts > 1 {
			s.obs.Counter("txn.retries").Inc()
		}
		deadline := s.Eng.Now() + tc.ResponseTimeout
		if err := enc.Send(s.Medium, s.Reader, chunks, func(_ int, start float64) {
			// Tag decodes at the end of the protected window.
			s.Eng.ScheduleAt(start+chunks[0].Reservation, func() {
				wr, derr := s.DecodeDownlinkWindow(start, chunks[0].Reservation, tc.DownlinkBitDuration)
				if derr != nil || wr.Err != nil {
					return // tag missed the query; reader will time out
				}
				res.TagDecoded = true
				res.TagHeard = reader.DecodeQuery(wr.Message)
				// Tag responds at the advised rate after turnaround.
				// The payload is scrambled so structured data stays
				// DC-balanced under the reader's conditioning filter.
				bits := tag.FrameBits(tag.Scramble(downlink.NewMessage(tagData).PayloadBits()))
				startTx := s.Eng.Now() + tc.Turnaround
				mod, merr := s.TransmitUplink(bits, startTx, float64(res.TagHeard.BitRate))
				if merr != nil {
					return
				}
				// Reader decodes after the response completes.
				s.Eng.ScheduleAt(mod.End()+0.05, func() {
					dec, uerr := s.UplinkDecoder(float64(res.TagHeard.BitRate))
					if uerr != nil {
						return
					}
					ur, uerr := dec.DecodeCSI(s.Series(), mod.Start(), downlink.PayloadBits)
					if uerr != nil {
						return
					}
					res.ResponseCorrelation = ur.PreambleCorrelation
					if !dec.Detected(ur) {
						return
					}
					msg, perr := downlink.ParsePayload(tag.Scramble(ur.Payload))
					if perr != nil {
						return
					}
					res.ResponseOK = true
					res.ResponseData = msg.Data
					tr.Complete()
					done = true
					s.obs.Counter("txn.completed").Inc()
					s.obs.Timer("txn.duration_s").Observe(s.Eng.Now() - txnStart)
				})
			})
		}); err != nil {
			done = true
			return
		}
		// Retry after the timeout if not complete.
		s.Eng.ScheduleAt(deadline, func() {
			if !done {
				attempt()
			}
		})
	}
	s.Eng.Schedule(0, attempt)
	horizon := s.Eng.Now() + float64(tc.MaxAttempts+1)*tc.ResponseTimeout
	s.Eng.Run(horizon)
	return res, nil
}
