package core

import (
	"testing"

	"repro/internal/downlink"
	"repro/internal/reader"
	"repro/internal/units"
	"repro/internal/wifi"
)

func TestDownlinkBERTrialDistanceOrdering(t *testing.T) {
	near, err := DownlinkBERTrial(0.5, 16, 50e-6, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	far, err := DownlinkBERTrial(3.5, 16, 50e-6, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if near > 2 {
		t.Errorf("0.5 m downlink errors = %d/2000, want ~0", near)
	}
	if far <= near {
		t.Errorf("errors should grow with distance: near %d, far %d", near, far)
	}
}

func TestDownlinkBERTrialRateOrdering(t *testing.T) {
	// At 2.9 m, 50 µs bits should fail more than 200 µs bits (Fig. 17).
	fast, err := DownlinkBERTrial(2.9, 16, 50e-6, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := DownlinkBERTrial(2.9, 16, 200e-6, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if slow >= fast {
		t.Errorf("200 µs bits (%d errors) should beat 50 µs bits (%d)", slow, fast)
	}
}

func TestDownlinkCalibration(t *testing.T) {
	// Pin the paper's headline operating points (§1, Fig. 17):
	// 20 kbps ≈ 1e-2 BER around 2.1 m; 10 kbps still under ~2e-2 at
	// 2.9 m.
	const n = 10000
	at213, err := DownlinkBERTrial(2.13, 16, 50e-6, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	ber := float64(at213) / n
	if ber > 0.03 {
		t.Errorf("20 kbps BER at 2.13 m = %v, want <= ~1e-2", ber)
	}
	at29, err := DownlinkBERTrial(2.9, 16, 100e-6, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	ber = float64(at29) / n
	if ber > 0.02 {
		t.Errorf("10 kbps BER at 2.9 m = %v, want <= ~1e-2", ber)
	}
	// And 20 kbps must be broken well before 4 m.
	at4, err := DownlinkBERTrial(4.0, 16, 50e-6, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if float64(at4)/n < 0.02 {
		t.Errorf("20 kbps BER at 4 m = %v, should be > 2e-2", float64(at4)/n)
	}
}

func TestDownlinkBERTrialValidation(t *testing.T) {
	if _, err := DownlinkBERTrial(1, 16, 50e-6, 0, 1); err == nil {
		t.Error("zero bits should error")
	}
	if _, err := DownlinkBERTrial(1, 16, 0, 100, 1); err == nil {
		t.Error("zero bit duration should error")
	}
	if _, err := DownlinkBERTrial(1, 16, 0.5e-6, 100, 1); err == nil {
		t.Error("sub-sample bit duration should error")
	}
}

func TestEnvelopeWindowRequiresLog(t *testing.T) {
	sys, _ := NewSystem(Config{Seed: 20})
	if _, err := sys.EnvelopeWindow(0, 0.01); err == nil {
		t.Error("EnvelopeWindow without EnableTxLog should error")
	}
}

func TestDownlinkMessageThroughMedium(t *testing.T) {
	// Full path: encoder → CTS_to_SELF + marker packets → envelope →
	// circuit → preamble match → mid-bit sampling → CRC.
	sys, err := NewSystem(Config{Seed: 21, TagReaderDistance: units.Centimeters(50)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTxLog()
	enc, err := downlink.NewEncoder(50e-6)
	if err != nil {
		t.Fatal(err)
	}
	msg := downlink.NewMessage(0xA5A5_1234_5678)
	chunks := enc.Plan(msg.Bits())
	var winStart float64
	if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, start float64) {
		winStart = start
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run(0.5)
	if winStart == 0 {
		t.Fatal("window never granted")
	}
	res, err := sys.DecodeDownlinkWindow(winStart, chunks[0].Reservation, 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PreambleFound {
		t.Fatal("tag did not find the downlink preamble")
	}
	if res.Err != nil {
		t.Fatalf("tag decode failed: %v", res.Err)
	}
	if res.Message.Data != msg.Data {
		t.Errorf("tag decoded %x, want %x", res.Message.Data, msg.Data)
	}
	if res.Decoder.Wakeups == 0 {
		t.Error("µC wake accounting should be populated")
	}
}

func TestDownlinkMessageWithContention(t *testing.T) {
	// The CTS_to_SELF must protect the message even with a saturated
	// contender on the medium.
	sys, err := NewSystem(Config{Seed: 22, TagReaderDistance: units.Centimeters(50)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTxLog()
	contender := sys.AddStation("contender", 16, 2.5)
	(&wifi.SaturatedSource{Station: contender, Dst: wifi.MAC{9}, Payload: 1200}).Start()
	enc, _ := downlink.NewEncoder(50e-6)
	msg := downlink.NewMessage(0x0123456789AB)
	chunks := enc.Plan(msg.Bits())
	var winStart float64
	if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, start float64) {
		winStart = start
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run(1.0)
	res, err := sys.DecodeDownlinkWindow(winStart, chunks[0].Reservation, 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("decode under contention failed: %v", res.Err)
	}
	if res.Message.Data != msg.Data {
		t.Errorf("decoded %x, want %x", res.Message.Data, msg.Data)
	}
}

func TestRunQueryRoundTrip(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 23, TagReaderDistance: units.Centimeters(20)})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.2) // warm up traffic
	q := reader.Query{Command: reader.CmdRead, TagID: 0x0042, BitRate: 100}
	res, err := sys.RunQuery(q, 0xFACE_0FF0_1234, DefaultTransactionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TagDecoded {
		t.Fatal("tag never decoded the query")
	}
	if res.TagHeard != q {
		t.Errorf("tag heard %+v, want %+v", res.TagHeard, q)
	}
	if !res.ResponseOK {
		t.Fatalf("reader failed to decode the response (corr %v, attempts %d)",
			res.ResponseCorrelation, res.Attempts)
	}
	if res.ResponseData != 0xFACE_0FF0_1234&((1<<48)-1) {
		t.Errorf("response data = %x", res.ResponseData)
	}
}

func TestRunQueryValidation(t *testing.T) {
	sys, _ := NewSystem(Config{Seed: 24})
	if _, err := sys.RunQuery(reader.Query{}, 0, DefaultTransactionConfig()); err == nil {
		t.Error("query without a bit rate should error")
	}
	if _, err := sys.RunQuery(reader.Query{BitRate: 100}, 0, TransactionConfig{}); err == nil {
		t.Error("zero transaction config should error")
	}
}

func TestRunQueryRetriesWhenTagFar(t *testing.T) {
	// With the tag far beyond downlink range, every attempt should fail
	// and the retry budget should be consumed.
	sys, err := NewSystem(Config{Seed: 40, TagReaderDistance: 8})
	if err != nil {
		t.Fatal(err)
	}
	(&wifi.CBRSource{Station: sys.Helper, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001}).Start()
	sys.Run(0.2)
	tc := DefaultTransactionConfig()
	tc.MaxAttempts = 3
	tc.ResponseTimeout = 1.0
	q := reader.Query{Command: reader.CmdRead, BitRate: 100}
	res, err := sys.RunQuery(q, 0x1234, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseOK {
		t.Fatal("a tag at 8 m should not complete a 20 kbps downlink transaction")
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want all 3 retries consumed", res.Attempts)
	}
}

func TestDownlinkMultiMessageTransfer(t *testing.T) {
	// §4.1: "We can transmit more bits by splitting them across multiple
	// CTS_to_SELF packets" — a long transfer is a sequence of framed
	// 64-bit messages, each in its own reservation, reassembled at the
	// tag.
	sys, err := NewSystem(Config{Seed: 41, TagReaderDistance: units.Centimeters(40)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTxLog()
	enc, _ := downlink.NewEncoder(50e-6)
	parts := []uint64{0x111122223333, 0x444455556666, 0x7777888899AA}
	var got []uint64
	for i, part := range parts {
		msg := downlink.NewMessage(part)
		chunks := enc.Plan(msg.Bits())
		var winStart float64
		if err := enc.Send(sys.Medium, sys.Reader, chunks, func(_ int, s float64) {
			winStart = s
		}); err != nil {
			t.Fatal(err)
		}
		sys.Run(sys.Eng.Now() + 0.2)
		res, derr := sys.DecodeDownlinkWindow(winStart, chunks[0].Reservation, 50e-6)
		if derr != nil || res.Err != nil {
			t.Fatalf("part %d failed: %v / %v", i, derr, res.Err)
		}
		got = append(got, res.Message.Data)
	}
	for i := range parts {
		if got[i] != parts[i] {
			t.Errorf("part %d = %x, want %x", i, got[i], parts[i])
		}
	}
}
