// Package capture provides a compact binary trace format for simulated
// 802.11 transmissions, in the spirit of pcap: a Writer records every
// frame a Medium carries (with airtime, rate, and collision metadata) and
// a Reader replays the records for offline analysis or regression
// comparison of MAC behaviour.
//
// Format (little endian):
//
//	header:  magic "WBT1" | uint16 version | uint16 reserved
//	record:  float64 start | float64 end | uint8 rate Mbps |
//	         uint8 flags | uint32 frame length | frame bytes
//
// Frame bytes are the wire serialization (including FCS), so a trace is
// self-validating: Reader re-checks every frame's FCS on load.
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/wifi"
)

// Magic identifies trace files.
var Magic = [4]byte{'W', 'B', 'T', '1'}

// Version of the format.
const Version uint16 = 1

// Record flags.
const (
	// FlagCollided marks simultaneous transmissions.
	FlagCollided = 1 << 0
	// FlagLost marks frames dropped at the intended receiver.
	FlagLost = 1 << 1
)

// maxFrameLen guards readers against corrupted length fields.
const maxFrameLen = 1 << 16

// Record is one captured transmission.
type Record struct {
	// Start and End bound the frame's time on air, in seconds.
	Start, End float64
	// Rate in Mbps.
	Rate wifi.Rate
	// Collided and Lost mirror the medium's transmission flags.
	Collided, Lost bool
	// Frame is the decoded frame.
	Frame wifi.Frame
}

// Errors.
var (
	ErrBadMagic   = errors.New("capture: bad magic")
	ErrBadVersion = errors.New("capture: unsupported version")
)

// Writer streams records to w.
type Writer struct {
	w       io.Writer
	started bool
	count   int
}

// NewWriter wraps w; the header is emitted lazily on the first record (or
// Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// writeHeader emits the file header once.
func (c *Writer) writeHeader() error {
	if c.started {
		return nil
	}
	c.started = true
	if _, err := c.w.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	_, err := c.w.Write(hdr[:])
	return err
}

// Write appends one record.
func (c *Writer) Write(rec *Record) error {
	if err := c.writeHeader(); err != nil {
		return err
	}
	wire := rec.Frame.Serialize()
	buf := make([]byte, 8+8+1+1+4+len(wire))
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(rec.Start))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(rec.End))
	buf[16] = byte(rec.Rate)
	var flags byte
	if rec.Collided {
		flags |= FlagCollided
	}
	if rec.Lost {
		flags |= FlagLost
	}
	buf[17] = flags
	binary.LittleEndian.PutUint32(buf[18:], uint32(len(wire)))
	copy(buf[22:], wire)
	if _, err := c.w.Write(buf); err != nil {
		return err
	}
	c.count++
	return nil
}

// Count returns the number of records written.
func (c *Writer) Count() int { return c.count }

// Flush makes sure the header exists even for an empty trace.
func (c *Writer) Flush() error { return c.writeHeader() }

// Attach registers the writer on a medium so every transmission is
// captured. Write errors surface through the returned error channel-free
// callback by recording the first error, retrievable via Err.
func (c *Writer) Attach(m *wifi.Medium) *AttachedWriter {
	aw := &AttachedWriter{w: c}
	m.AddListener(func(tx *wifi.Transmission) {
		if aw.err != nil {
			return
		}
		aw.err = c.Write(&Record{
			Start:    tx.Start,
			End:      tx.End,
			Rate:     tx.Rate,
			Collided: tx.Collided,
			Lost:     tx.Lost,
			Frame:    *tx.Frame,
		})
	})
	return aw
}

// AttachedWriter tracks a listener-driven capture.
type AttachedWriter struct {
	w   *Writer
	err error
}

// Err returns the first write error, if any.
func (a *AttachedWriter) Err() error { return a.err }

// Reader iterates a trace.
type Reader struct {
	r   io.Reader
	hdr bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// readHeader validates magic and version.
func (c *Reader) readHeader() error {
	if c.hdr {
		return nil
	}
	c.hdr = true
	var buf [8]byte
	if _, err := io.ReadFull(c.r, buf[:]); err != nil {
		return fmt.Errorf("capture: header: %w", err)
	}
	if [4]byte{buf[0], buf[1], buf[2], buf[3]} != Magic {
		return ErrBadMagic
	}
	if binary.LittleEndian.Uint16(buf[4:]) != Version {
		return ErrBadVersion
	}
	return nil
}

// Next returns the next record, or io.EOF at the end of the trace.
func (c *Reader) Next() (*Record, error) {
	if err := c.readHeader(); err != nil {
		return nil, err
	}
	var fixed [22]byte
	if _, err := io.ReadFull(c.r, fixed[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("capture: record header: %w", err)
	}
	rec := &Record{
		Start:    math.Float64frombits(binary.LittleEndian.Uint64(fixed[0:])),
		End:      math.Float64frombits(binary.LittleEndian.Uint64(fixed[8:])),
		Rate:     wifi.Rate(fixed[16]),
		Collided: fixed[17]&FlagCollided != 0,
		Lost:     fixed[17]&FlagLost != 0,
	}
	n := binary.LittleEndian.Uint32(fixed[18:])
	if n > maxFrameLen {
		return nil, fmt.Errorf("capture: frame length %d exceeds limit", n)
	}
	wire := make([]byte, n)
	if _, err := io.ReadFull(c.r, wire); err != nil {
		return nil, fmt.Errorf("capture: frame body: %w", err)
	}
	if err := rec.Frame.Decode(wire); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return rec, nil
}

// ReadAll drains the trace.
func (c *Reader) ReadAll() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := c.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Stats summarizes a trace.
type Stats struct {
	Records    int
	Collided   int
	Lost       int
	Bytes      int
	AirTime    float64
	FirstStart float64
	LastEnd    float64
	ByType     map[wifi.FrameType]int
}

// Summarize computes trace statistics.
func Summarize(recs []*Record) Stats {
	s := Stats{ByType: make(map[wifi.FrameType]int)}
	for i, r := range recs {
		s.Records++
		if r.Collided {
			s.Collided++
		}
		if r.Lost {
			s.Lost++
		}
		s.Bytes += r.Frame.Length()
		s.AirTime += r.End - r.Start
		if i == 0 || r.Start < s.FirstStart {
			s.FirstStart = r.Start
		}
		if r.End > s.LastEnd {
			s.LastEnd = r.End
		}
		s.ByType[r.Frame.Header.Type]++
	}
	return s
}

// Utilization returns the fraction of the trace's span spent on air.
func (s Stats) Utilization() float64 {
	span := s.LastEnd - s.FirstStart
	if span <= 0 {
		return 0
	}
	return s.AirTime / span
}
