package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wifi"
)

func sampleRecord(seq uint16) *Record {
	return &Record{
		Start:    1.5,
		End:      1.5006,
		Rate:     wifi.Rate54,
		Collided: seq%3 == 0,
		Lost:     seq%5 == 0,
		Frame: wifi.Frame{
			Header: wifi.Header{
				Type:  wifi.TypeData,
				Addr1: wifi.MAC{1, 2, 3, 4, 5, 6},
				Seq:   seq,
			},
			Payload: []byte("payload"),
		},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint16(0); i < 10; i++ {
		if err := w.Write(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Errorf("count = %d", w.Count())
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, r := range recs {
		want := sampleRecord(uint16(i))
		if r.Start != want.Start || r.End != want.End || r.Rate != want.Rate ||
			r.Collided != want.Collided || r.Lost != want.Lost {
			t.Errorf("record %d metadata mismatch: %+v", i, r)
		}
		if r.Frame.Header.Seq != uint16(i) {
			t.Errorf("record %d seq = %d", i, r.Frame.Header.Seq)
		}
		if string(r.Frame.Payload) != "payload" {
			t.Errorf("record %d payload = %q", i, r.Frame.Payload)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(start float64, dur uint16, payload []byte, seq uint16) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		rec := &Record{
			Start: start,
			End:   start + float64(dur)*1e-6,
			Rate:  wifi.Rate24,
			Frame: wifi.Frame{Header: wifi.Header{Type: wifi.TypeData, Seq: seq}, Payload: payload},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		got, err := NewReader(&buf).Next()
		if err != nil {
			return false
		}
		return got.Start == rec.Start && got.End == rec.End &&
			got.Frame.Header.Seq == seq && bytes.Equal(got.Frame.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("empty trace read %d records", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOPE0000")
	if _, err := NewReader(buf).Next(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.Write([]byte{0xFF, 0x00, 0, 0})
	if _, err := NewReader(&buf).Next(); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-3]))
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated record err = %v, want a real error", err)
	}
}

func TestCorruptedFrameFCS(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-5] ^= 0xFF // corrupt inside the frame body
	if _, err := NewReader(bytes.NewReader(data)).Next(); err == nil {
		t.Error("corrupted frame should fail FCS validation")
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The length field sits at offset 8 (header) + 18.
	data[8+18] = 0xFF
	data[8+19] = 0xFF
	data[8+20] = 0xFF
	data[8+21] = 0x7F
	if _, err := NewReader(bytes.NewReader(data)).Next(); err == nil {
		t.Error("oversized length should be rejected")
	}
}

func TestAttachCapturesMediumTraffic(t *testing.T) {
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(1))
	st := m.AddStation("s", wifi.MAC{1}, wifi.Rate54)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	aw := w.Attach(m)
	(&wifi.CBRSource{Station: st, Dst: wifi.MAC{2}, Payload: 100, Interval: 0.002}).Start()
	eng.Run(1)
	if aw.Err() != nil {
		t.Fatal(aw.Err())
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 400 {
		t.Fatalf("captured %d records, want ~500", len(recs))
	}
	stats := Summarize(recs)
	if stats.Records != len(recs) || stats.Bytes == 0 || stats.AirTime <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ByType[wifi.TypeData] != len(recs) {
		t.Errorf("expected all data frames: %v", stats.ByType)
	}
	u := stats.Utilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Records != 0 || s.Utilization() != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
