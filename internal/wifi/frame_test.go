package wifi

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Header: Header{
			Type:       TypeData,
			DurationUS: 1234,
			Addr1:      MAC{1, 2, 3, 4, 5, 6},
			Addr2:      MAC{7, 8, 9, 10, 11, 12},
			Addr3:      MAC{13, 14, 15, 16, 17, 18},
			Seq:        42,
		},
		Payload: []byte("hello backscatter"),
	}
	wire := f.Serialize()
	if len(wire) != f.Length() {
		t.Fatalf("wire length %d != Length() %d", len(wire), f.Length())
	}
	var g Frame
	if err := g.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if g.Header != f.Header {
		t.Errorf("header round trip: got %+v, want %+v", g.Header, f.Header)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Errorf("payload round trip: got %q, want %q", g.Payload, f.Payload)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, dur uint16, a1, a2, a3 [6]byte, seq uint16, payload []byte) bool {
		fr := &Frame{Header: Header{
			Type:       FrameType(typ % uint8(typeCount)),
			DurationUS: dur,
			Addr1:      a1, Addr2: a2, Addr3: a3,
			Seq: seq,
		}, Payload: payload}
		var g Frame
		if err := g.Decode(fr.Serialize()); err != nil {
			return false
		}
		return g.Header == fr.Header && bytes.Equal(g.Payload, fr.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var g Frame
	if err := g.Decode(make([]byte, 5)); err != ErrFrameTooShort {
		t.Errorf("short frame: %v, want ErrFrameTooShort", err)
	}
	f := &Frame{Header: Header{Type: TypeData}}
	wire := f.Serialize()
	wire[3] ^= 0xff // corrupt an address byte
	if err := g.Decode(wire); err != ErrBadFCS {
		t.Errorf("corrupted frame: %v, want ErrBadFCS", err)
	}
}

func TestDecodeBadType(t *testing.T) {
	f := &Frame{Header: Header{Type: TypeData}}
	wire := f.Serialize()
	// Set an invalid type and fix up the FCS by re-serializing manually:
	// easier to corrupt type then recompute CRC.
	wire[0] = 99
	// Recompute the FCS so only the type is invalid.
	body := wire[:len(wire)-4]
	binary.LittleEndian.PutUint32(wire[len(wire)-4:], crc32.ChecksumIEEE(body))
	var g Frame
	if err := g.Decode(wire); err != ErrBadFrameType {
		t.Errorf("bad type: %v, want ErrBadFrameType", err)
	}
}

func TestDecodeReusesPayload(t *testing.T) {
	big := &Frame{Header: Header{Type: TypeData}, Payload: make([]byte, 1000)}
	var g Frame
	if err := g.Decode(big.Serialize()); err != nil {
		t.Fatal(err)
	}
	capBefore := cap(g.Payload)
	small := &Frame{Header: Header{Type: TypeData}, Payload: []byte("x")}
	if err := g.Decode(small.Serialize()); err != nil {
		t.Fatal(err)
	}
	if cap(g.Payload) != capBefore {
		t.Errorf("Decode should reuse payload capacity: %d -> %d", capBefore, cap(g.Payload))
	}
	if string(g.Payload) != "x" {
		t.Errorf("payload = %q, want \"x\"", g.Payload)
	}
}

func TestCTSToSelf(t *testing.T) {
	self := MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	f := NewCTSToSelf(self, 0.004)
	if f.Header.Type != TypeCTSToSelf {
		t.Errorf("type = %v", f.Header.Type)
	}
	if got := f.NAVDuration(); got != 0.004 {
		t.Errorf("NAV duration = %v, want 0.004", got)
	}
	if f.Header.Addr1 != self || f.Header.Addr2 != self {
		t.Error("CTS-to-self should address itself")
	}
}

func TestCTSToSelfClamping(t *testing.T) {
	f := NewCTSToSelf(MAC{}, 1.0) // above the 32 ms limit
	if got := f.NAVDuration(); got != MaxNAV {
		t.Errorf("NAV duration = %v, want clamped to %v", got, MaxNAV)
	}
	f = NewCTSToSelf(MAC{}, -1)
	if got := f.NAVDuration(); got != 0 {
		t.Errorf("negative duration should clamp to 0, got %v", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC string = %q", got)
	}
}

func TestFrameTypeString(t *testing.T) {
	cases := map[FrameType]string{
		TypeData:      "Data",
		TypeBeacon:    "Beacon",
		TypeCTSToSelf: "CTS-to-Self",
		TypeAck:       "Ack",
		TypeQoSNull:   "QoS-Null",
		FrameType(77): "FrameType(77)",
	}
	for ft, want := range cases {
		if got := ft.String(); got != want {
			t.Errorf("FrameType(%d).String() = %q, want %q", ft, got, want)
		}
	}
}
