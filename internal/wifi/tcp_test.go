package wifi

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func newTCP(t *testing.T, seed int64, loss float64) (*TCPSource, func(until float64)) {
	t.Helper()
	eng, m := newTestMedium(seed)
	sender := m.AddStation("server-ap", MAC{1}, Rate54)
	receiver := m.AddStation("client", MAC{2}, Rate54)
	src := &TCPSource{
		Sender:   sender,
		Receiver: receiver,
		LossProb: loss,
		Rnd:      rng.New(seed + 1),
	}
	src.Start()
	return src, func(until float64) { eng.Run(until) }
}

func TestTCPTransfersData(t *testing.T) {
	src, run := newTCP(t, 1, 0)
	run(5)
	if src.SegmentsSent() < 500 {
		t.Errorf("only %d segments in 5 s", src.SegmentsSent())
	}
	if src.AcksReceived() == 0 {
		t.Error("no ACKs clocked the window")
	}
}

func TestTCPWindowGrowsWithoutLoss(t *testing.T) {
	src, run := newTCP(t, 2, 0)
	run(5)
	if src.Window() < float64(src.MaxWindow)-1 {
		t.Errorf("lossless window = %v, want near max %d", src.Window(), src.MaxWindow)
	}
}

func TestTCPLossCapsWindow(t *testing.T) {
	lossy, runLossy := newTCP(t, 3, 0.05)
	runLossy(5)
	clean, runClean := newTCP(t, 3, 0)
	runClean(5)
	if lossy.SegmentsSent() >= clean.SegmentsSent() {
		t.Errorf("5%% loss (%d segments) should slow the transfer vs lossless (%d)",
			lossy.SegmentsSent(), clean.SegmentsSent())
	}
	if lossy.Window() >= float64(lossy.MaxWindow) {
		t.Errorf("lossy window = %v, should sit below max", lossy.Window())
	}
}

func TestTCPGeneratesBidirectionalTraffic(t *testing.T) {
	eng, m := newTestMedium(4)
	sender := m.AddStation("ap", MAC{1}, Rate54)
	receiver := m.AddStation("client", MAC{2}, Rate54)
	var dataFrames, ackFrames int
	m.AddListener(func(tx *Transmission) {
		if tx.Collided || tx.Frame.Header.Type != TypeData {
			return
		}
		if len(tx.Frame.Payload) > 500 {
			dataFrames++
		} else {
			ackFrames++
		}
	})
	(&TCPSource{Sender: sender, Receiver: receiver, Rnd: rng.New(5)}).Start()
	eng.Run(3)
	if dataFrames == 0 || ackFrames == 0 {
		t.Fatalf("data=%d acks=%d, want both directions on air", dataFrames, ackFrames)
	}
	// Pure ACK clocking: roughly one ACK per delivered segment.
	ratio := float64(ackFrames) / float64(dataFrames)
	if math.Abs(ratio-1) > 0.2 {
		t.Errorf("ack/data ratio = %v, want ~1", ratio)
	}
	// ACK airtimes sit in the short-packet band that matters for the
	// Fig. 18 false-positive structure.
	ackAir := AirTime(52+headerLen+fcsLen, Rate54)
	if ackAir < 25e-6 || ackAir > 65e-6 {
		t.Errorf("ACK airtime = %v µs, expected the 25-65 µs band", ackAir*1e6)
	}
}

func TestTCPSelfClockedUnderContention(t *testing.T) {
	// A competing saturated station must slow TCP down (shared medium),
	// not deadlock it.
	eng, m := newTestMedium(6)
	sender := m.AddStation("ap", MAC{1}, Rate54)
	receiver := m.AddStation("client", MAC{2}, Rate54)
	rival := m.AddStation("rival", MAC{3}, Rate54)
	src := &TCPSource{Sender: sender, Receiver: receiver, Rnd: rng.New(7)}
	src.Start()
	(&SaturatedSource{Station: rival, Dst: MAC{9}, Payload: 1400}).Start()
	eng.Run(5)
	if src.SegmentsSent() == 0 {
		t.Fatal("TCP starved by contention")
	}
	solo, run := newTCP(t, 6, 0)
	run(5)
	if src.SegmentsSent() >= solo.SegmentsSent() {
		t.Errorf("contended TCP (%d) should be slower than solo (%d)",
			src.SegmentsSent(), solo.SegmentsSent())
	}
}

func TestTCPUntilStopsPumping(t *testing.T) {
	eng, m := newTestMedium(8)
	sender := m.AddStation("ap", MAC{1}, Rate54)
	receiver := m.AddStation("client", MAC{2}, Rate54)
	src := &TCPSource{Sender: sender, Receiver: receiver, Until: 1.0, Rnd: rng.New(9)}
	src.Start()
	eng.Run(1)
	at1s := src.SegmentsSent()
	eng.Run(3)
	// A few in-flight completions may still trickle, but no new pumping.
	if src.SegmentsSent() > at1s+src.MaxWindow {
		t.Errorf("segments kept flowing after Until: %d -> %d", at1s, src.SegmentsSent())
	}
}

func TestTCPValidation(t *testing.T) {
	if err := (&TCPSource{}).Start(); err == nil {
		t.Error("nil stations should error")
	}
	if _, err := NewTCPSource(nil, nil); err == nil {
		t.Error("NewTCPSource with nil stations should error")
	}
	engA, mA := newTestMedium(41)
	_ = engA
	_, mB := newTestMedium(42)
	sa := mA.AddStation("a", MAC{1}, Rate54)
	sb := mB.AddStation("b", MAC{2}, Rate54)
	if _, err := NewTCPSource(sa, sb); err == nil {
		t.Error("stations on different media should error")
	}
	sc := mA.AddStation("c", MAC{3}, Rate54)
	if src, err := NewTCPSource(sa, sc); err != nil || src == nil {
		t.Errorf("valid TCPSource: %v", err)
	}
}
