package wifi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// FrameType identifies the 802.11 frame kinds the simulator models.
type FrameType uint8

// Frame types. The values match 802.11 (type<<2 | subtype semantics are
// simplified to one enum).
const (
	TypeData FrameType = iota
	TypeBeacon
	TypeCTSToSelf
	TypeAck
	TypeQoSNull
	typeCount
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "Data"
	case TypeBeacon:
		return "Beacon"
	case TypeCTSToSelf:
		return "CTS-to-Self"
	case TypeAck:
		return "Ack"
	case TypeQoSNull:
		return "QoS-Null"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// MAC is a 48-bit hardware address.
type MAC [6]byte

// String implements fmt.Stringer.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Header is the simulator's 802.11 MAC header. DurationUS carries the NAV
// reservation in microseconds (meaningful for CTS_to_SELF).
type Header struct {
	Type       FrameType
	DurationUS uint16
	Addr1      MAC // receiver
	Addr2      MAC // transmitter
	Addr3      MAC // BSSID
	Seq        uint16
}

// headerLen is the serialized header size: 1 type + 2 duration + 3*6 addr +
// 2 seq.
const headerLen = 1 + 2 + 18 + 2

// fcsLen is the length of the trailing CRC-32 frame check sequence.
const fcsLen = 4

// Frame is a full MAC frame: header plus payload. Serialization appends a
// CRC-32 FCS; decoding verifies it.
type Frame struct {
	Header  Header
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrFrameTooShort = errors.New("wifi: frame shorter than header+FCS")
	ErrBadFCS        = errors.New("wifi: FCS mismatch")
	ErrBadFrameType  = errors.New("wifi: unknown frame type")
)

// Serialize encodes the frame to wire format with a trailing FCS. The
// result is freshly allocated.
func (f *Frame) Serialize() []byte {
	out := make([]byte, headerLen+len(f.Payload)+fcsLen)
	out[0] = byte(f.Header.Type)
	binary.LittleEndian.PutUint16(out[1:], f.Header.DurationUS)
	copy(out[3:], f.Header.Addr1[:])
	copy(out[9:], f.Header.Addr2[:])
	copy(out[15:], f.Header.Addr3[:])
	binary.LittleEndian.PutUint16(out[21:], f.Header.Seq)
	copy(out[headerLen:], f.Payload)
	fcs := crc32.ChecksumIEEE(out[:headerLen+len(f.Payload)])
	binary.LittleEndian.PutUint32(out[headerLen+len(f.Payload):], fcs)
	return out
}

// Length returns the serialized length in bytes, used for airtime.
func (f *Frame) Length() int { return headerLen + len(f.Payload) + fcsLen }

// Decode parses wire bytes into the receiver, verifying the FCS. Following
// the gopacket DecodingLayer idiom, Decode overwrites the receiver in place
// (reusing Payload capacity when possible) rather than allocating a new
// frame.
func (f *Frame) Decode(data []byte) error {
	if len(data) < headerLen+fcsLen {
		return ErrFrameTooShort
	}
	body := data[:len(data)-fcsLen]
	want := binary.LittleEndian.Uint32(data[len(data)-fcsLen:])
	if crc32.ChecksumIEEE(body) != want {
		return ErrBadFCS
	}
	if FrameType(data[0]) >= typeCount {
		return ErrBadFrameType
	}
	f.Header.Type = FrameType(data[0])
	f.Header.DurationUS = binary.LittleEndian.Uint16(data[1:])
	copy(f.Header.Addr1[:], data[3:9])
	copy(f.Header.Addr2[:], data[9:15])
	copy(f.Header.Addr3[:], data[15:21])
	f.Header.Seq = binary.LittleEndian.Uint16(data[21:23])
	payload := body[headerLen:]
	f.Payload = append(f.Payload[:0], payload...)
	return nil
}

// NewCTSToSelf builds the CTS_to_SELF frame that reserves the medium for
// the given duration in seconds (§4.1). Durations above MaxNAV are clamped,
// matching the 802.11 limit the paper works around by splitting messages.
func NewCTSToSelf(self MAC, duration float64) *Frame {
	if duration < 0 {
		duration = 0
	}
	if duration > MaxNAV {
		duration = MaxNAV
	}
	return &Frame{Header: Header{
		Type:       TypeCTSToSelf,
		DurationUS: uint16(duration * 1e6),
		Addr1:      self,
		Addr2:      self,
	}}
}

// NAVDuration returns the reservation the frame announces, in seconds.
func (f *Frame) NAVDuration() float64 { return float64(f.Header.DurationUS) * 1e-6 }
