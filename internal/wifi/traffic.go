package wifi

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file provides the traffic sources used across the evaluation:
// constant-rate injection (Fig. 10/12), saturated download (the 1 GB file
// transfer behind Fig. 3), Poisson and bursty ambient traffic (Fig. 15/18),
// beacons (Fig. 16), and the diurnal office load profile.

// dataFrame builds a data frame with the given payload size.
func dataFrame(dst MAC, payload int) *Frame {
	if payload < 0 {
		payload = 0
	}
	return &Frame{Header: Header{Type: TypeData, Addr1: dst}, Payload: make([]byte, payload)}
}

// CBRSource injects fixed-size data frames at a constant interval, like the
// paper's packet injection with inter-packet delays. It stops when the
// engine runs past its horizon.
type CBRSource struct {
	Station  *Station
	Dst      MAC
	Payload  int
	Interval float64 // seconds between enqueues
	Until    float64 // stop time (absolute)
}

// NewCBRSource validates and builds a constant-rate source; tune Until on
// the returned value before Start if needed.
func NewCBRSource(st *Station, dst MAC, payload int, interval float64) (*CBRSource, error) {
	c := &CBRSource{Station: st, Dst: dst, Payload: payload, Interval: interval}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *CBRSource) validate() error {
	if c.Station == nil {
		return fmt.Errorf("wifi: CBRSource needs a station")
	}
	if c.Interval <= 0 {
		return fmt.Errorf("wifi: CBRSource needs a positive interval, got %v", c.Interval)
	}
	return nil
}

// Start schedules the source on the station's medium engine. It returns an
// error instead of scheduling anything when the source is misconfigured.
func (c *CBRSource) Start() error {
	if err := c.validate(); err != nil {
		return err
	}
	eng := c.Station.medium.eng
	var tick func()
	tick = func() {
		if c.Until > 0 && eng.Now() >= c.Until {
			return
		}
		c.Station.Enqueue(dataFrame(c.Dst, c.Payload))
		eng.Schedule(c.Interval, tick)
	}
	eng.Schedule(0, tick)
	return nil
}

// SaturatedSource keeps the station's queue backlogged with fixed-size data
// frames, modelling a large file download (Fig. 3's 1 GB media file).
type SaturatedSource struct {
	Station *Station
	Dst     MAC
	Payload int
	// Depth is how many frames to keep queued (default 4).
	Depth int
}

// NewSaturatedSource validates and builds a backlogged source.
func NewSaturatedSource(st *Station, dst MAC, payload int) (*SaturatedSource, error) {
	s := &SaturatedSource{Station: st, Dst: dst, Payload: payload}
	if st == nil {
		return nil, fmt.Errorf("wifi: SaturatedSource needs a station")
	}
	return s, nil
}

// Start begins the backlog.
func (s *SaturatedSource) Start() error {
	if s.Station == nil {
		return fmt.Errorf("wifi: SaturatedSource needs a station")
	}
	depth := s.Depth
	if depth <= 0 {
		depth = 4
	}
	refill := func() {
		for s.Station.QueueLen() < depth {
			s.Station.Enqueue(dataFrame(s.Dst, s.Payload))
		}
	}
	s.Station.OnQueueIdle = refill
	refill()
	return nil
}

// PoissonSource injects data frames as a Poisson process with the given
// mean rate.
type PoissonSource struct {
	Station *Station
	Dst     MAC
	Payload int
	Rate    float64 // mean packets per second
	Until   float64
	Rnd     *rng.Stream
}

// NewPoissonSource validates and builds a Poisson source.
func NewPoissonSource(st *Station, dst MAC, payload int, rate float64, rnd *rng.Stream) (*PoissonSource, error) {
	p := &PoissonSource{Station: st, Dst: dst, Payload: payload, Rate: rate, Rnd: rnd}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *PoissonSource) validate() error {
	if p.Station == nil {
		return fmt.Errorf("wifi: PoissonSource needs a station")
	}
	if p.Rate <= 0 {
		return fmt.Errorf("wifi: PoissonSource needs a positive rate, got %v", p.Rate)
	}
	if p.Rnd == nil {
		return fmt.Errorf("wifi: PoissonSource needs an rng stream")
	}
	return nil
}

// Start schedules the source; it returns an error when misconfigured.
func (p *PoissonSource) Start() error {
	if err := p.validate(); err != nil {
		return err
	}
	eng := p.Station.medium.eng
	var tick func()
	tick = func() {
		if p.Until > 0 && eng.Now() >= p.Until {
			return
		}
		p.Station.Enqueue(dataFrame(p.Dst, p.Payload))
		eng.Schedule(p.Rnd.Exponential(1/p.Rate), tick)
	}
	eng.Schedule(p.Rnd.Exponential(1/p.Rate), tick)
	return nil
}

// BurstySource models heavy-tailed on/off traffic (a streaming client like
// the paper's Pandora session): bursts of back-to-back packets with
// Pareto-distributed burst lengths and idle gaps.
type BurstySource struct {
	Station *Station
	Dst     MAC
	Payload int
	// MeanBurst is the mean number of packets per burst.
	MeanBurst float64
	// MeanGap is the mean idle time between bursts in seconds.
	MeanGap float64
	// InBurstInterval is the spacing of packets within a burst.
	InBurstInterval float64
	Until           float64
	Rnd             *rng.Stream
}

// NewBurstySource validates and builds a heavy-tailed on/off source.
func NewBurstySource(st *Station, dst MAC, payload int, meanBurst, meanGap, inBurst float64, rnd *rng.Stream) (*BurstySource, error) {
	b := &BurstySource{
		Station: st, Dst: dst, Payload: payload,
		MeanBurst: meanBurst, MeanGap: meanGap, InBurstInterval: inBurst, Rnd: rnd,
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *BurstySource) validate() error {
	if b.Station == nil {
		return fmt.Errorf("wifi: BurstySource needs a station")
	}
	if b.MeanBurst <= 0 || b.MeanGap <= 0 || b.InBurstInterval <= 0 {
		return fmt.Errorf("wifi: BurstySource needs positive parameters (burst %v, gap %v, spacing %v)",
			b.MeanBurst, b.MeanGap, b.InBurstInterval)
	}
	if b.Rnd == nil {
		return fmt.Errorf("wifi: BurstySource needs an rng stream")
	}
	return nil
}

// Start schedules the source; it returns an error when misconfigured.
func (b *BurstySource) Start() error {
	if err := b.validate(); err != nil {
		return err
	}
	eng := b.Station.medium.eng
	const alpha = 1.5 // Pareto shape for burst sizes
	var burst func()
	burst = func() {
		if b.Until > 0 && eng.Now() >= b.Until {
			return
		}
		// Pareto with mean MeanBurst: mean = alpha*xm/(alpha-1).
		xm := b.MeanBurst * (alpha - 1) / alpha
		n := int(math.Ceil(b.Rnd.Pareto(xm, alpha)))
		for i := 0; i < n; i++ {
			delay := float64(i) * b.InBurstInterval
			eng.Schedule(delay, func() {
				b.Station.Enqueue(dataFrame(b.Dst, b.Payload))
			})
		}
		gap := b.Rnd.Exponential(b.MeanGap)
		eng.Schedule(float64(n)*b.InBurstInterval+gap, burst)
	}
	eng.Schedule(0, burst)
	return nil
}

// BeaconSource emits AP beacons at a fixed interval (Fig. 16 sweeps this
// from ~10 to 70 beacons/s).
type BeaconSource struct {
	Station  *Station
	Interval float64
	Until    float64
}

// NewBeaconSource validates and builds a beacon source.
func NewBeaconSource(st *Station, interval float64) (*BeaconSource, error) {
	b := &BeaconSource{Station: st, Interval: interval}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *BeaconSource) validate() error {
	if b.Station == nil {
		return fmt.Errorf("wifi: BeaconSource needs a station")
	}
	if b.Interval <= 0 {
		return fmt.Errorf("wifi: BeaconSource needs a positive interval, got %v", b.Interval)
	}
	return nil
}

// Start schedules beaconing; it returns an error when misconfigured.
func (b *BeaconSource) Start() error {
	if err := b.validate(); err != nil {
		return err
	}
	eng := b.Station.medium.eng
	var tick func()
	tick = func() {
		if b.Until > 0 && eng.Now() >= b.Until {
			return
		}
		b.Station.Enqueue(&Frame{
			Header:  Header{Type: TypeBeacon, Addr1: BroadcastMAC},
			Payload: make([]byte, 80), // typical beacon body with IEs
		})
		eng.Schedule(b.Interval, tick)
	}
	eng.Schedule(0, tick)
	return nil
}

// OfficeLoad returns the diurnal office network load in packets/second at
// the given time of day (hours, 0–24), reproducing the shape of Fig. 15:
// load ramps through the morning, peaks in the early afternoon around a
// thousand packets per second, and falls off through the evening.
func OfficeLoad(hour float64) float64 {
	hour = math.Mod(hour, 24)
	// A smooth day curve: low at night, peak ~2 PM.
	base := 80.0
	peak := 1020.0
	x := (hour - 14) / 4.5
	day := math.Exp(-x * x)
	return base + (peak-base)*day
}
