package wifi

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

func newTestMedium(seed int64) (*sim.Engine, *Medium) {
	eng := sim.NewEngine()
	return eng, NewMedium(eng, rng.New(seed))
}

func TestSingleStationDelivers(t *testing.T) {
	eng, m := newTestMedium(1)
	st := m.AddStation("helper", MAC{1}, Rate54)
	var seen []*Transmission
	m.AddListener(func(tx *Transmission) { seen = append(seen, tx) })
	st.Enqueue(dataFrame(MAC{2}, 100))
	eng.Run(1)
	if len(seen) != 1 {
		t.Fatalf("saw %d transmissions, want 1", len(seen))
	}
	tx := seen[0]
	if tx.Collided || tx.Lost {
		t.Errorf("clean channel transmission flagged: %+v", tx)
	}
	if tx.End <= tx.Start {
		t.Errorf("bad timing: %v..%v", tx.Start, tx.End)
	}
	if st.DeliveredFrames != 1 || st.SentFrames != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	eng, m := newTestMedium(2)
	st := m.AddStation("s", MAC{1}, Rate54)
	var seqs []uint16
	m.AddListener(func(tx *Transmission) { seqs = append(seqs, tx.Frame.Header.Seq) })
	for i := 0; i < 5; i++ {
		st.Enqueue(dataFrame(MAC{2}, 50))
	}
	eng.Run(1)
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("sequence numbers not increasing: %v", seqs)
		}
	}
}

func TestTransmissionsDoNotOverlap(t *testing.T) {
	eng, m := newTestMedium(3)
	a := m.AddStation("a", MAC{1}, Rate54)
	b := m.AddStation("b", MAC{2}, Rate54)
	var txs []*Transmission
	m.AddListener(func(tx *Transmission) { txs = append(txs, tx) })
	for i := 0; i < 50; i++ {
		a.Enqueue(dataFrame(MAC{9}, 500))
		b.Enqueue(dataFrame(MAC{9}, 500))
	}
	eng.Run(10)
	if len(txs) < 50 {
		t.Fatalf("too few transmissions: %d", len(txs))
	}
	for i := 1; i < len(txs); i++ {
		// Same-round collisions share airtime; otherwise no overlap.
		if txs[i].Start == txs[i-1].Start {
			if !txs[i].Collided || !txs[i-1].Collided {
				t.Fatalf("same-start transmissions not marked collided at %v", txs[i].Start)
			}
			continue
		}
		if txs[i].Start < txs[i-1].End-1e-12 && !txs[i].Collided && !txs[i-1].Collided {
			t.Fatalf("overlap: tx %d starts %v before %v", i, txs[i].Start, txs[i-1].End)
		}
	}
}

func TestContentionSharesAir(t *testing.T) {
	eng, m := newTestMedium(4)
	a := m.AddStation("a", MAC{1}, Rate54)
	b := m.AddStation("b", MAC{2}, Rate54)
	(&SaturatedSource{Station: a, Dst: MAC{9}, Payload: 1000}).Start()
	(&SaturatedSource{Station: b, Dst: MAC{9}, Payload: 1000}).Start()
	eng.Run(5)
	if a.DeliveredFrames == 0 || b.DeliveredFrames == 0 {
		t.Fatalf("starvation: a=%d b=%d", a.DeliveredFrames, b.DeliveredFrames)
	}
	ratio := float64(a.DeliveredFrames) / float64(b.DeliveredFrames)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("unfair sharing: a=%d b=%d", a.DeliveredFrames, b.DeliveredFrames)
	}
	if a.CollidedFrames == 0 && b.CollidedFrames == 0 {
		t.Error("two saturated stations should occasionally collide")
	}
}

func TestCollisionRetryEventuallyDelivers(t *testing.T) {
	eng, m := newTestMedium(5)
	a := m.AddStation("a", MAC{1}, Rate54)
	b := m.AddStation("b", MAC{2}, Rate54)
	a.Enqueue(dataFrame(MAC{9}, 100))
	b.Enqueue(dataFrame(MAC{9}, 100))
	eng.Run(1)
	if a.DeliveredFrames+a.DroppedFrames != 1 || b.DeliveredFrames+b.DroppedFrames != 1 {
		t.Errorf("frames unresolved: a=%+v b=%+v", a, b)
	}
}

func TestPERLossTriggersRetry(t *testing.T) {
	eng, m := newTestMedium(6)
	st := m.AddStation("s", MAC{1}, Rate54)
	// Hopeless SNR: every data frame is lost at the receiver.
	st.SNR = func(float64) units.DB { return -30 }
	st.Enqueue(dataFrame(MAC{2}, 500))
	eng.Run(1)
	if st.LostFrames == 0 {
		t.Error("expected channel losses at -30 dB SNR")
	}
	if st.DroppedFrames != 1 {
		t.Errorf("frame should be dropped after retries, dropped=%d", st.DroppedFrames)
	}
}

func TestCTSToSelfSetsNAV(t *testing.T) {
	eng, m := newTestMedium(7)
	reader := m.AddStation("reader", MAC{1}, Rate54)
	other := m.AddStation("other", MAC{2}, Rate54)
	var navStart, navEnd float64
	reader.OnNAVGranted = func(s, e float64) { navStart, navEnd = s, e }
	reader.Enqueue(NewCTSToSelf(reader.Addr, 0.004))
	eng.Run(0.0005)
	if navEnd == 0 {
		t.Fatal("NAV not granted")
	}
	if got := navEnd - navStart; math.Abs(got-0.004) > 1e-9 {
		t.Errorf("NAV window = %v, want 0.004", got)
	}
	// Another station's frame queued during the NAV must wait until it
	// expires.
	var txs []*Transmission
	m.AddListener(func(tx *Transmission) { txs = append(txs, tx) })
	other.Enqueue(dataFrame(MAC{9}, 100))
	eng.Run(1)
	if len(txs) != 1 {
		t.Fatalf("saw %d transmissions, want 1", len(txs))
	}
	if txs[0].Start < navEnd {
		t.Errorf("station transmitted at %v inside NAV ending %v", txs[0].Start, navEnd)
	}
}

func TestTransmitInNAV(t *testing.T) {
	eng, m := newTestMedium(8)
	reader := m.AddStation("reader", MAC{1}, Rate54)
	var bursts []*Transmission
	m.AddListener(func(tx *Transmission) {
		if tx.Frame.Header.Type == TypeQoSNull {
			bursts = append(bursts, tx)
		}
	})
	reader.OnNAVGranted = func(start, end float64) {
		f := &Frame{Header: Header{Type: TypeQoSNull, Addr1: BroadcastMAC}}
		if err := m.TransmitInNAV(reader, f, Rate54, start+100e-6); err != nil {
			t.Errorf("TransmitInNAV: %v", err)
		}
		// A frame that does not fit must be rejected.
		huge := &Frame{Header: Header{Type: TypeData}, Payload: make([]byte, 60000)}
		if err := m.TransmitInNAV(reader, huge, Rate6, start+200e-6); err == nil {
			t.Error("oversized NAV transmission should fail")
		}
	}
	reader.Enqueue(NewCTSToSelf(reader.Addr, 0.004))
	eng.Run(1)
	if len(bursts) != 1 {
		t.Fatalf("saw %d NAV bursts, want 1", len(bursts))
	}
}

func TestTransmitInNAVRequiresOwnership(t *testing.T) {
	eng, m := newTestMedium(9)
	a := m.AddStation("a", MAC{1}, Rate54)
	_ = eng
	f := &Frame{Header: Header{Type: TypeQoSNull}}
	if err := m.TransmitInNAV(a, f, Rate54, 0); err == nil {
		t.Error("non-owner NAV transmission should fail")
	}
}

func TestQueueBound(t *testing.T) {
	_, m := newTestMedium(10)
	st := m.AddStation("s", MAC{1}, Rate54)
	accepted := 0
	for i := 0; i < MaxQueue+10; i++ {
		if st.Enqueue(dataFrame(MAC{2}, 10)) {
			accepted++
		}
	}
	if accepted != MaxQueue {
		t.Errorf("accepted %d, want %d", accepted, MaxQueue)
	}
	if st.DroppedFrames != 10 {
		t.Errorf("dropped %d, want 10", st.DroppedFrames)
	}
}

func TestBroadcastHasNoAck(t *testing.T) {
	eng, m := newTestMedium(11)
	st := m.AddStation("s", MAC{1}, Rate54)
	var unicastGap, bcastGap float64
	var last *Transmission
	m.AddListener(func(tx *Transmission) { last = tx })
	st.Enqueue(dataFrame(MAC{2}, 100))
	eng.Run(0.01)
	unicastEnd := last.End
	unicastGap = m.busyUntil - unicastEnd
	st.Enqueue(dataFrame(BroadcastMAC, 100))
	eng.Run(0.02)
	bcastGap = m.busyUntil - last.End
	if unicastGap <= 0 {
		t.Errorf("unicast should reserve ACK time, gap = %v", unicastGap)
	}
	if bcastGap != 0 {
		t.Errorf("broadcast should not reserve ACK time, gap = %v", bcastGap)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		eng, m := newTestMedium(42)
		a := m.AddStation("a", MAC{1}, Rate54)
		b := m.AddStation("b", MAC{2}, Rate24)
		var starts []float64
		m.AddListener(func(tx *Transmission) { starts = append(starts, tx.Start) })
		(&SaturatedSource{Station: a, Dst: MAC{9}, Payload: 700}).Start()
		(&CBRSource{Station: b, Dst: MAC{9}, Payload: 300, Interval: 0.002}).Start()
		eng.Run(1)
		return starts
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestSaturationThroughputNearTheory(t *testing.T) {
	// One saturated station at 54 Mbps with 1400-byte frames: per-frame
	// cost = DIFS + avg backoff + airtime + SIFS + ACK. The simulated
	// goodput should land within ~15% of that figure.
	eng, m := newTestMedium(20)
	st := m.AddStation("s", MAC{1}, Rate54)
	(&SaturatedSource{Station: st, Dst: MAC{2}, Payload: 1400}).Start()
	eng.Run(5)
	frameLen := dataFrame(MAC{2}, 1400).Length()
	perFrame := DIFS + float64(CWMin)/2*SlotTime + AirTime(frameLen, Rate54) + AckAirTime()
	theory := 5 / perFrame
	got := float64(st.DeliveredFrames)
	if math.Abs(got-theory)/theory > 0.15 {
		t.Errorf("saturation throughput %v frames, theory ~%v", got, theory)
	}
}

func TestCollisionRateGrowsWithStations(t *testing.T) {
	collisionFrac := func(n int) float64 {
		eng, m := newTestMedium(int64(30 + n))
		for i := 0; i < n; i++ {
			st := m.AddStation("s", MAC{byte(i + 1)}, Rate54)
			(&SaturatedSource{Station: st, Dst: MAC{99}, Payload: 800}).Start()
		}
		eng.Run(3)
		var sent, collided int
		for _, st := range m.stations {
			sent += st.SentFrames
			collided += st.CollidedFrames
		}
		return float64(collided) / float64(sent)
	}
	two, eight := collisionFrac(2), collisionFrac(8)
	if eight <= two {
		t.Errorf("collision fraction should grow with stations: 2→%v, 8→%v", two, eight)
	}
}
