package wifi

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestChannelFreq(t *testing.T) {
	cases := map[int]units.Hertz{
		1:  2412 * units.MHz,
		6:  2437 * units.MHz,
		11: 2462 * units.MHz,
		14: 2484 * units.MHz,
	}
	for ch, want := range cases {
		if got := ChannelFreq(ch); got != want {
			t.Errorf("ChannelFreq(%d) = %v, want %v", ch, got, want)
		}
	}
	if ChannelFreq(0) != 0 || ChannelFreq(15) != 0 {
		t.Error("invalid channels should return 0")
	}
}

func TestAirTimeSmallestPacket(t *testing.T) {
	// §4.1: "The smallest packet size possible on a Wi-Fi device is
	// about 40 µs at a bit rate of 54 Mbps". A minimal MAC frame
	// (header+FCS only, 27 bytes here) at 54 Mbps should land around
	// 20 µs preamble + ~2 symbols ≈ 28–44 µs.
	f := &Frame{Header: Header{Type: TypeQoSNull}}
	at := AirTime(f.Length(), Rate54)
	if at < 24e-6 || at > 44e-6 {
		t.Errorf("minimal frame airtime = %v µs, want ~28-44 µs", at*1e6)
	}
}

func TestAirTimeScalesWithLength(t *testing.T) {
	short := AirTime(100, Rate54)
	long := AirTime(1500, Rate54)
	if long <= short {
		t.Error("longer frames should take longer")
	}
	// 1500 bytes at 54 Mbps: 12000+22 bits / 216 bits/symbol = 56
	// symbols = 224 µs + 20 µs preamble.
	want := 20e-6 + 56*4e-6
	if math.Abs(long-want) > 1e-9 {
		t.Errorf("1500B @ 54Mbps = %v, want %v", long, want)
	}
}

func TestAirTimeRateOrdering(t *testing.T) {
	for i := 1; i < len(Rates); i++ {
		if AirTime(1000, Rates[i]) >= AirTime(1000, Rates[i-1]) {
			t.Errorf("airtime at %d Mbps should be below %d Mbps", Rates[i], Rates[i-1])
		}
	}
}

func TestAirTimeNegativeLength(t *testing.T) {
	if got := AirTime(-5, Rate6); got <= 0 {
		t.Errorf("negative length should still give positive preamble time, got %v", got)
	}
}

func TestMinSNRMonotone(t *testing.T) {
	for i := 1; i < len(Rates); i++ {
		if Rates[i].MinSNR() <= Rates[i-1].MinSNR() {
			t.Errorf("MinSNR should increase with rate: %v vs %v", Rates[i], Rates[i-1])
		}
	}
}

func TestBitsPerSymbol(t *testing.T) {
	if got := Rate54.BitsPerSymbol(); got != 216 {
		t.Errorf("54 Mbps bits/symbol = %d, want 216", got)
	}
	if got := Rate6.BitsPerSymbol(); got != 24 {
		t.Errorf("6 Mbps bits/symbol = %d, want 24", got)
	}
}

func TestAckAirTime(t *testing.T) {
	if got := AckAirTime(); got <= SIFS {
		t.Errorf("ACK airtime = %v, should exceed SIFS", got)
	}
}

func TestDIFSRelation(t *testing.T) {
	if DIFS != SIFS+2*SlotTime {
		t.Errorf("DIFS = %v, want SIFS+2*slot = %v", DIFS, SIFS+2*SlotTime)
	}
}
