// Package wifi implements the 802.11 substrate the paper's system rides on:
// byte-level frame encoding and decoding (management, data, and the
// CTS_to_SELF control frame with its NAV reservation), OFDM airtime
// computation, a CSMA/CA (DCF) medium simulation with binary exponential
// backoff and virtual carrier sense, beaconing, traffic generators (CBR,
// Poisson, bursty on/off, saturated download, a diurnal office profile),
// and the high-PAPR OFDM envelope used by the tag's energy detector.
//
// Frame encoding follows the gopacket philosophy: preallocated decode into
// value types, explicit Serialize/Decode methods, and CRC-backed integrity.
package wifi

import "repro/internal/units"

// 802.11g (ERP-OFDM) MAC timing parameters, in seconds.
const (
	SlotTime = 9e-6
	SIFS     = 10e-6
	// DIFS = SIFS + 2 * SlotTime.
	DIFS = SIFS + 2*SlotTime
	// PLCPPreamble is the OFDM PHY preamble+header duration.
	PLCPPreamble = 20e-6
	// SymbolTime is the OFDM symbol duration.
	SymbolTime = 4e-6
	// CWMin and CWMax bound the contention window (in slots).
	CWMin = 15
	CWMax = 1023
	// MaxRetries before a frame is dropped.
	MaxRetries = 7
	// MaxNAV is the longest channel reservation a CTS_to_SELF may claim
	// (§4.1: "up to a duration of 32 ms").
	MaxNAV = 32e-3
	// BeaconInterval is the default AP beacon period (102.4 ms).
	BeaconInterval = 0.1024
)

// Rate is an 802.11g OFDM bit rate in Mbps.
type Rate int

// Supported OFDM rates.
const (
	Rate6  Rate = 6
	Rate9  Rate = 9
	Rate12 Rate = 12
	Rate18 Rate = 18
	Rate24 Rate = 24
	Rate36 Rate = 36
	Rate48 Rate = 48
	Rate54 Rate = 54
)

// Rates lists the OFDM rates in ascending order, as used by rate
// adaptation.
var Rates = []Rate{Rate6, Rate9, Rate12, Rate18, Rate24, Rate36, Rate48, Rate54}

// BitsPerSymbol returns the data bits carried per 4 µs OFDM symbol at this
// rate.
func (r Rate) BitsPerSymbol() int { return int(r) * 4 }

// MinSNR returns the approximate SNR in dB needed to decode this rate with
// low error — standard OFDM receiver sensitivities spaced per modulation
// order. Used by the PER model for rate adaptation (Fig. 19).
func (r Rate) MinSNR() units.DB {
	switch r {
	case Rate6:
		return 6
	case Rate9:
		return 7.5
	case Rate12:
		return 9
	case Rate18:
		return 11.5
	case Rate24:
		return 14.5
	case Rate36:
		return 18.5
	case Rate48:
		return 23
	case Rate54:
		return 25.5
	}
	return 6
}

// ChannelFreq returns the center frequency of a 2.4 GHz Wi-Fi channel
// (1–14). It returns 0 for invalid channels.
func ChannelFreq(ch int) units.Hertz {
	if ch < 1 || ch > 14 {
		return 0
	}
	if ch == 14 {
		return 2.484 * units.GHz
	}
	return units.Hertz(2407+5*ch) * units.MHz
}

// AirTime returns the on-air duration in seconds of a frame with the given
// MAC-layer payload length (bytes, including MAC header and FCS) at the
// given rate: PLCP preamble plus data symbols covering the 16-bit SERVICE
// field, the PSDU, and 6 tail bits.
func AirTime(payloadBytes int, rate Rate) float64 {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	bits := 16 + 8*payloadBytes + 6
	bps := rate.BitsPerSymbol()
	if bps <= 0 {
		bps = Rate6.BitsPerSymbol()
	}
	symbols := (bits + bps - 1) / bps
	return PLCPPreamble + float64(symbols)*SymbolTime
}

// AckAirTime is the airtime of a 14-byte ACK at the base rate, including
// the preceding SIFS.
func AckAirTime() float64 { return SIFS + AirTime(14, Rate6) }
