package wifi

import (
	"testing"

	"repro/internal/units"
)

func TestARFStepsUpAfterSuccesses(t *testing.T) {
	a := NewARF()
	r := Rate6
	for i := 0; i < 10; i++ {
		r = a.OnSuccess(r)
	}
	if r != Rate9 {
		t.Errorf("after 10 successes rate = %v, want 9", r)
	}
}

func TestARFStepsDownAfterFailures(t *testing.T) {
	a := NewARF()
	r := Rate54
	r = a.OnFailure(r)
	if r != Rate54 {
		t.Errorf("one failure should not drop rate, got %v", r)
	}
	r = a.OnFailure(r)
	if r != Rate48 {
		t.Errorf("two failures should drop to 48, got %v", r)
	}
}

func TestARFFailureResetsSuccessStreak(t *testing.T) {
	a := NewARF()
	r := Rate6
	for i := 0; i < 9; i++ {
		r = a.OnSuccess(r)
	}
	r = a.OnFailure(r)
	for i := 0; i < 9; i++ {
		r = a.OnSuccess(r)
	}
	if r != Rate6 {
		t.Errorf("streak should have reset; rate = %v, want 6", r)
	}
}

func TestARFBounds(t *testing.T) {
	a := NewARF()
	r := Rate54
	for i := 0; i < 100; i++ {
		r = a.OnSuccess(r)
	}
	if r != Rate54 {
		t.Errorf("rate should cap at 54, got %v", r)
	}
	b := NewARF()
	r = Rate6
	for i := 0; i < 100; i++ {
		r = b.OnFailure(r)
	}
	if r != Rate6 {
		t.Errorf("rate should floor at 6, got %v", r)
	}
}

func TestARFZeroConfigDefaults(t *testing.T) {
	a := &ARF{} // zero thresholds fall back to 10/2
	r := Rate6
	for i := 0; i < 10; i++ {
		r = a.OnSuccess(r)
	}
	if r != Rate9 {
		t.Errorf("zero-config ARF should default UpAfter=10, got %v", r)
	}
}

func TestNextRateUnknown(t *testing.T) {
	if got := nextRate(Rate(17), +1); got != Rate6 {
		t.Errorf("unknown rate should map to base, got %v", got)
	}
}

func TestPERModelShape(t *testing.T) {
	// Far below threshold: hopeless. Far above: clean.
	if per := PERModel(-10, Rate54, 1500); per < 0.99 {
		t.Errorf("PER at -10 dB = %v, want ~1", per)
	}
	if per := PERModel(40, Rate54, 1500); per > 0.01 {
		t.Errorf("PER at 40 dB = %v, want ~0", per)
	}
	// Monotone in SNR.
	prev := 1.1
	for snr := -5.0; snr <= 40; snr += 5 {
		per := PERModel(units.DB(snr), Rate24, 500)
		if per > prev {
			t.Errorf("PER not monotone at %v dB: %v > %v", snr, per, prev)
		}
		prev = per
	}
	// Longer frames fail more.
	if PERModel(14, Rate24, 1500) <= PERModel(14, Rate24, 100) {
		t.Error("longer frames should have higher PER")
	}
}
