package wifi

import (
	"math"

	"repro/internal/units"
)

// ARF implements Auto Rate Fallback rate adaptation: step the rate up
// after a run of consecutive successes, and step it down after consecutive
// failures. This is the "default bit rate adaptation" behaviour the paper
// relies on in §9 to absorb the tag's channel perturbations.
type ARF struct {
	// UpAfter successes raises the rate (default 10).
	UpAfter int
	// DownAfter failures lowers the rate (default 2).
	DownAfter int

	successes int
	failures  int
}

// NewARF returns an adapter with the classic 10-up/2-down thresholds.
func NewARF() *ARF { return &ARF{UpAfter: 10, DownAfter: 2} }

// OnSuccess records a delivery and returns the possibly-raised rate.
func (a *ARF) OnSuccess(cur Rate) Rate {
	a.failures = 0
	a.successes++
	up := a.UpAfter
	if up <= 0 {
		up = 10
	}
	if a.successes >= up {
		a.successes = 0
		return nextRate(cur, +1)
	}
	return cur
}

// OnFailure records a loss and returns the possibly-lowered rate.
func (a *ARF) OnFailure(cur Rate) Rate {
	a.successes = 0
	a.failures++
	down := a.DownAfter
	if down <= 0 {
		down = 2
	}
	if a.failures >= down {
		a.failures = 0
		return nextRate(cur, -1)
	}
	return cur
}

// nextRate steps through the OFDM rate table.
func nextRate(cur Rate, dir int) Rate {
	for i, r := range Rates {
		if r == cur {
			j := i + dir
			if j < 0 {
				j = 0
			}
			if j >= len(Rates) {
				j = len(Rates) - 1
			}
			return Rates[j]
		}
	}
	return Rate6
}

// PERModel returns the packet error rate for a frame of the given length at
// the given rate and SNR. The model is a logistic curve centered on the
// rate's sensitivity threshold, sharpened to span roughly 3 dB, with the
// error probability scaled by frame length (longer frames see more symbol
// errors).
func PERModel(snr units.DB, rate Rate, frameBytes int) float64 {
	margin := float64(snr - rate.MinSNR())
	// Bit-level error proxy: logistic in the SNR margin.
	p := 1 / (1 + math.Exp(1.8*margin))
	// Frame-level: 1-(1-p_sym)^symbols, approximated with a reference
	// length of 200 bytes.
	scale := float64(frameBytes) / 200
	if scale < 0.1 {
		scale = 0.1
	}
	per := 1 - math.Pow(1-p, scale)
	if per < 0 {
		return 0
	}
	if per > 1 {
		return 1
	}
	return per
}
