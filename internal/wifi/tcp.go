package wifi

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// TCPSource models a closed-loop TCP-like download over the Wi-Fi medium —
// the paper's dominant workloads (a 1 GB media file behind Fig. 3, a
// streaming session behind Fig. 18) are TCP, whose self-clocked dynamics
// shape packet timing very differently from open-loop injection:
// data segments flow from the sender, each delivered segment elicits a
// short ACK from the receiver station after a server-side delay, and the
// congestion window grows (slow start, then congestion avoidance) until a
// loss halves it.
//
// The model is deliberately Reno-shaped rather than byte-exact: the
// quantities that matter to Wi-Fi Backscatter are the packet sizes and
// timings on the air, which come from the window dynamics and the MAC.
type TCPSource struct {
	// Sender transmits data segments.
	Sender *Station
	// Receiver transmits the ACK stream (a distinct station contending
	// for the medium, as in real Wi-Fi).
	Receiver *Station
	// SegmentBytes is the data payload per segment (default 1448).
	SegmentBytes int
	// AckBytes is the ACK payload (default 52: TCP/IP headers).
	AckBytes int
	// ServerRTT is the wired-side round trip added before the sender
	// reacts to an ACK (default 20 ms).
	ServerRTT float64
	// LossProb is an application of random segment loss (congestion
	// elsewhere); the MAC's own losses also count.
	LossProb float64
	// InitialWindow segments (default 2), capped by MaxWindow
	// (default 64).
	InitialWindow, MaxWindow int
	// Until stops the transfer (0 = run forever).
	Until float64
	// Rnd drives loss draws.
	Rnd *rng.Stream

	cwnd      float64
	ssthresh  float64
	inFlight  int
	delivered int
	acked     int
}

// NewTCPSource validates and builds a TCP flow between two stations; tune
// the exported fields (LossProb, Until, window sizes) before Start.
func NewTCPSource(sender, receiver *Station) (*TCPSource, error) {
	t := &TCPSource{Sender: sender, Receiver: receiver}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *TCPSource) validate() error {
	if t.Sender == nil || t.Receiver == nil {
		return fmt.Errorf("wifi: TCPSource needs sender and receiver stations")
	}
	if t.Sender.medium != t.Receiver.medium {
		return fmt.Errorf("wifi: TCPSource stations must share a medium")
	}
	return nil
}

// Start begins the transfer; it returns an error when misconfigured.
func (t *TCPSource) Start() error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.SegmentBytes <= 0 {
		t.SegmentBytes = 1448
	}
	if t.AckBytes <= 0 {
		t.AckBytes = 52
	}
	if t.ServerRTT <= 0 {
		t.ServerRTT = 0.02
	}
	if t.InitialWindow <= 0 {
		t.InitialWindow = 2
	}
	if t.MaxWindow <= 0 {
		t.MaxWindow = 64
	}
	if t.Rnd == nil {
		t.Rnd = rng.New(1)
	}
	t.cwnd = float64(t.InitialWindow)
	t.ssthresh = float64(t.MaxWindow)

	// Deliveries of data segments trigger receiver ACKs; deliveries of
	// ACKs open the window.
	t.Sender.OnDelivered = func(f *Frame, end float64) {
		// Only this flow's segments count: the station may carry other
		// traffic.
		if f.Header.Type != TypeData || f.Header.Addr1 != t.Receiver.Addr ||
			len(f.Payload) != t.SegmentBytes {
			return
		}
		if t.Rnd.Float64() < t.LossProb {
			// Segment lost beyond the Wi-Fi hop: no ACK comes back;
			// halve the window (fast-retransmit-like reaction). The
			// lost segment leaves the window immediately.
			t.inFlight--
			t.onLoss()
			t.pump()
			return
		}
		t.Receiver.Enqueue(&Frame{
			Header:  Header{Type: TypeData, Addr1: t.Sender.Addr},
			Payload: make([]byte, t.AckBytes),
		})
	}
	t.Receiver.OnDelivered = func(f *Frame, end float64) {
		if f.Header.Type != TypeData || f.Header.Addr1 != t.Sender.Addr ||
			len(f.Payload) != t.AckBytes {
			return
		}
		// The ACK reaches the server after the wired RTT; only then
		// does the segment leave the window (TCP's in-flight count is
		// unacknowledged data, not undelivered data) and the window
		// react.
		t.Sender.medium.eng.Schedule(t.ServerRTT, func() {
			t.inFlight--
			t.onAck()
			t.pump()
		})
	}
	t.pump()
	return nil
}

// onAck applies slow start / congestion avoidance.
func (t *TCPSource) onAck() {
	t.acked++
	if t.cwnd < t.ssthresh {
		t.cwnd++
	} else {
		t.cwnd += 1 / t.cwnd
	}
	if t.cwnd > float64(t.MaxWindow) {
		t.cwnd = float64(t.MaxWindow)
	}
}

// onLoss halves the window.
func (t *TCPSource) onLoss() {
	t.ssthresh = math.Max(2, t.cwnd/2)
	t.cwnd = t.ssthresh
}

// pump fills the window with data segments.
func (t *TCPSource) pump() {
	eng := t.Sender.medium.eng
	if t.Until > 0 && eng.Now() >= t.Until {
		return
	}
	for t.inFlight < int(t.cwnd) {
		ok := t.Sender.Enqueue(&Frame{
			Header:  Header{Type: TypeData, Addr1: t.Receiver.Addr},
			Payload: make([]byte, t.SegmentBytes),
		})
		if !ok {
			return
		}
		t.inFlight++
		t.delivered++
	}
}

// Window returns the current congestion window in segments.
func (t *TCPSource) Window() float64 { return t.cwnd }

// SegmentsSent returns the number of data segments handed to the MAC.
func (t *TCPSource) SegmentsSent() int { return t.delivered }

// AcksReceived returns the number of ACKs that have clocked the window.
func (t *TCPSource) AcksReceived() int { return t.acked }
