package wifi

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/units"
)

// Transmission describes one frame's time on air, delivered to medium
// listeners (e.g. the Wi-Fi reader in monitor mode, or the tag's energy
// detector which only sees the on/off envelope).
type Transmission struct {
	// Station that transmitted.
	Station *Station
	// Frame on air. For collided transmissions the content is
	// undecodable, but the energy is still present.
	Frame *Frame
	// Rate used.
	Rate Rate
	// Start and End of the frame on air, in seconds.
	Start, End float64
	// Collided marks simultaneous transmissions (undecodable anywhere).
	Collided bool
	// Lost marks frames that failed at the intended receiver due to
	// channel error (PER); monitor-mode listeners may still use them.
	Lost bool
}

// Listener receives every transmission on the medium, in time order.
type Listener func(tx *Transmission)

// Impairment lets a fault layer perturb the medium (see internal/faults).
// All methods are called synchronously from the medium's event handlers;
// an implementation must be deterministic given the simulation history and
// must not consume the medium's own randomness stream, so that a no-op
// impairment leaves a run bit-for-bit identical to Impair == nil.
type Impairment interface {
	// FrameLost reports whether the frame st puts on air at start is
	// destroyed by injected interference. It applies to every frame type,
	// on top of (and after) the SNR-based PER model.
	FrameLost(st *Station, start float64) bool
	// SNROffset is added to the link SNR before the PER model, letting
	// fades raise the channel's intrinsic loss.
	SNROffset(now float64) units.DB
	// StalledUntil reports that st must sit out contention until the
	// returned time (when ok is true), starving downstream listeners of
	// its traffic.
	StalledUntil(st *Station, now float64) (until float64, ok bool)
}

// Medium is a single-channel CSMA/CA (DCF) medium. Contention is resolved
// in rounds: whenever the channel has been idle for DIFS and stations have
// queued frames, each ready station draws a backoff from its contention
// window; the minimum wins the round and ties collide.
type Medium struct {
	eng          *sim.Engine
	rnd          *rng.Stream
	stations     []*Station
	busyUntil    float64
	navUntil     float64
	navOwner     *Station
	roundPending bool
	listeners    []Listener
	met          mediumMetrics

	// Impair, when non-nil, injects faults into contention and delivery.
	// Set it before traffic starts (core wires the fault injector here).
	Impair Impairment
}

// mediumMetrics holds the medium's obs handles. The zero value (all nil)
// means "not instrumented"; every handle method no-ops on nil.
type mediumMetrics struct {
	offered    *obs.Counter
	delivered  *obs.Counter
	collided   *obs.Counter
	lost       *obs.Counter
	dropped    *obs.Counter
	retries    *obs.Counter
	bytes      *obs.Counter
	rounds     *obs.Counter
	navGrants  *obs.Counter
	navTx      *obs.Counter
	airtime    *obs.Timer
	queueDepth *obs.Gauge
}

// Instrument registers the medium's traffic accounting on r (see the
// README's metric catalog for the wifi.* names). Call before traffic
// starts; a nil registry detaches the metrics.
func (m *Medium) Instrument(r *obs.Registry) {
	m.met = mediumMetrics{
		offered:    r.Counter("wifi.frames_offered"),
		delivered:  r.Counter("wifi.frames_delivered"),
		collided:   r.Counter("wifi.frames_collided"),
		lost:       r.Counter("wifi.frames_lost"),
		dropped:    r.Counter("wifi.frames_dropped"),
		retries:    r.Counter("wifi.retries"),
		bytes:      r.Counter("wifi.bytes_delivered"),
		rounds:     r.Counter("wifi.contention_rounds"),
		navGrants:  r.Counter("wifi.nav_grants"),
		navTx:      r.Counter("wifi.nav_transmissions"),
		airtime:    r.Timer("wifi.airtime_s"),
		queueDepth: r.Gauge("wifi.queue_depth"),
	}
}

// NewMedium creates a medium bound to the engine and randomness stream.
func NewMedium(eng *sim.Engine, rnd *rng.Stream) *Medium {
	return &Medium{eng: eng, rnd: rnd}
}

// Engine returns the simulation engine driving this medium.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// AddListener registers a callback for every transmission.
func (m *Medium) AddListener(l Listener) { m.listeners = append(m.listeners, l) }

// FreeAt returns the earliest time the medium is idle (physical carrier
// plus NAV).
func (m *Medium) FreeAt() float64 {
	if m.navUntil > m.busyUntil {
		return m.navUntil
	}
	return m.busyUntil
}

// NAVActiveAt reports whether a NAV reservation covers time t.
func (m *Medium) NAVActiveAt(t float64) bool { return t < m.navUntil }

// Station is one 802.11 device attached to the medium.
type Station struct {
	Name string
	Addr MAC
	// Rate is the current transmit rate.
	Rate Rate
	// Adapter, when non-nil, adjusts Rate from delivery feedback
	// (Fig. 19 uses ARF-style adaptation).
	Adapter *ARF
	// SNR is the link SNR at this station's intended receiver, used by
	// the PER model. Zero disables channel loss.
	SNR func(now float64) units.DB
	// OnNAVGranted fires when this station's CTS_to_SELF wins the
	// channel; navEnd is when the reservation expires and start is when
	// the protected window begins.
	OnNAVGranted func(start, navEnd float64)
	// OnDelivered fires on every successful (non-collided, non-lost)
	// delivery of this station's frames.
	OnDelivered func(f *Frame, end float64)
	// OnQueueIdle fires when the station's queue drains, letting
	// saturated traffic sources refill it.
	OnQueueIdle func()

	medium  *Medium
	queue   []*Frame
	cw      int
	retries int
	seq     uint16

	// Stats.
	SentFrames      int
	DeliveredFrames int
	DeliveredBytes  int
	CollidedFrames  int
	LostFrames      int
	DroppedFrames   int
}

// MaxQueue bounds each station's transmit queue; excess enqueues are
// dropped at the tail like a real driver ring.
const MaxQueue = 1024

// AddStation attaches a new station with the given name, address and
// initial rate.
func (m *Medium) AddStation(name string, addr MAC, rate Rate) *Station {
	st := &Station{Name: name, Addr: addr, Rate: rate, medium: m, cw: CWMin}
	m.stations = append(m.stations, st)
	return st
}

// Enqueue queues a frame for contention-based transmission. It reports
// whether the frame was accepted (false when the queue is full). The
// station stamps the sequence number.
func (s *Station) Enqueue(f *Frame) bool {
	if len(s.queue) >= MaxQueue {
		s.DroppedFrames++
		s.medium.met.dropped.Inc()
		return false
	}
	s.seq++
	f.Header.Seq = s.seq
	if f.Header.Addr2 == (MAC{}) {
		f.Header.Addr2 = s.Addr
	}
	s.queue = append(s.queue, f)
	s.medium.met.offered.Inc()
	s.medium.met.queueDepth.Set(float64(len(s.queue)))
	s.medium.kick()
	return true
}

// QueueLen returns the number of frames waiting.
func (s *Station) QueueLen() int { return len(s.queue) }

// kick schedules a contention round after the medium goes idle for DIFS,
// if one is not already scheduled.
func (m *Medium) kick() {
	if m.roundPending {
		return
	}
	m.roundPending = true
	at := m.FreeAt()
	if now := m.eng.Now(); at < now {
		at = now
	}
	m.eng.ScheduleAt(at+DIFS, m.round)
}

// round resolves one contention round.
func (m *Medium) round() {
	m.roundPending = false
	m.met.rounds.Inc()
	now := m.eng.Now()
	if m.FreeAt()+DIFS > now+1e-12 {
		// The medium became busy after this round was scheduled;
		// re-arm.
		m.kick()
		return
	}
	var ready []*Station
	stallRelease := 0.0
	for _, st := range m.stations {
		if len(st.queue) == 0 {
			continue
		}
		if m.Impair != nil {
			if until, ok := m.Impair.StalledUntil(st, now); ok {
				// Stalled stations keep their queue but sit out this
				// round; remember the earliest release so a fully
				// stalled medium wakes up again.
				if stallRelease == 0 || until < stallRelease {
					stallRelease = until
				}
				continue
			}
		}
		ready = append(ready, st)
	}
	if len(ready) == 0 {
		if stallRelease > 0 {
			m.eng.ScheduleAt(stallRelease+DIFS, m.round)
		}
		return
	}
	// Each ready station draws a backoff; minimum wins, ties collide.
	minSlot := -1
	var winners []*Station
	for _, st := range ready {
		b := m.rnd.Intn(st.cw + 1)
		switch {
		case minSlot < 0 || b < minSlot:
			minSlot = b
			winners = winners[:0]
			winners = append(winners, st)
		case b == minSlot:
			winners = append(winners, st)
		}
	}
	start := now + float64(minSlot)*SlotTime
	if len(winners) == 1 {
		m.deliver(winners[0], start)
	} else {
		m.collide(winners, start)
	}
	m.eng.ScheduleAt(m.busyUntil, m.kick)
}

// deliver transmits the head-of-queue frame of st starting at start.
func (m *Medium) deliver(st *Station, start float64) {
	f := st.queue[0]
	st.queue = st.queue[1:]
	st.SentFrames++
	rate := st.Rate
	if f.Header.Type == TypeCTSToSelf || f.Header.Type == TypeBeacon {
		rate = Rate6 // control and management at base rate
	}
	air := AirTime(f.Length(), rate)
	end := start + air
	m.busyUntil = end
	m.met.airtime.Observe(air)
	// Channel-error loss at the intended receiver.
	lost := false
	if st.SNR != nil && f.Header.Type == TypeData {
		snr := st.SNR(start)
		if m.Impair != nil {
			snr += m.Impair.SNROffset(start)
		}
		per := PERModel(snr, rate, f.Length())
		lost = m.rnd.Float64() < per
	}
	// Injected interference can destroy any frame, control included.
	if !lost && m.Impair != nil && m.Impair.FrameLost(st, start) {
		lost = true
	}
	if !lost && f.Header.Type == TypeData && f.Header.Addr1 != BroadcastMAC {
		m.busyUntil = end + AckAirTime()
	}
	tx := &Transmission{Station: st, Frame: f, Rate: rate, Start: start, End: end, Lost: lost}
	m.notify(tx)
	if lost {
		st.LostFrames++
		m.met.lost.Inc()
		st.onFailure(f)
	} else {
		st.DeliveredFrames++
		st.DeliveredBytes += f.Length()
		m.met.delivered.Inc()
		m.met.bytes.Add(int64(f.Length()))
		st.onSuccess()
		if f.Header.Type == TypeCTSToSelf {
			nav := end + f.NAVDuration()
			if nav > m.navUntil {
				m.navUntil = nav
				m.navOwner = st
			}
			m.met.navGrants.Inc()
			if st.OnNAVGranted != nil {
				st.OnNAVGranted(end, nav)
			}
		}
		if st.OnDelivered != nil {
			st.OnDelivered(f, end)
		}
	}
	if len(st.queue) == 0 && st.OnQueueIdle != nil {
		st.OnQueueIdle()
	}
}

// collide burns the air for every tied winner and retries them.
func (m *Medium) collide(winners []*Station, start float64) {
	var end float64
	for _, st := range winners {
		f := st.queue[0]
		st.SentFrames++
		st.CollidedFrames++
		m.met.collided.Inc()
		air := AirTime(f.Length(), st.Rate)
		if e := start + air; e > end {
			end = e
		}
		m.notify(&Transmission{Station: st, Frame: f, Rate: st.Rate,
			Start: start, End: start + air, Collided: true})
	}
	m.busyUntil = end
	for _, st := range winners {
		f := st.queue[0]
		st.queue = st.queue[1:]
		st.onFailure(f)
		if len(st.queue) == 0 && st.OnQueueIdle != nil {
			st.OnQueueIdle()
		}
	}
}

func (m *Medium) notify(tx *Transmission) {
	for _, l := range m.listeners {
		l(tx)
	}
}

// onSuccess resets the contention window and informs rate adaptation.
func (s *Station) onSuccess() {
	s.cw = CWMin
	s.retries = 0
	if s.Adapter != nil {
		s.Rate = s.Adapter.OnSuccess(s.Rate)
	}
}

// onFailure doubles the contention window and requeues the frame at the
// head until retries are exhausted.
func (s *Station) onFailure(f *Frame) {
	if s.Adapter != nil {
		s.Rate = s.Adapter.OnFailure(s.Rate)
	}
	s.retries++
	if s.retries > MaxRetries {
		s.DroppedFrames++
		s.medium.met.dropped.Inc()
		s.retries = 0
		s.cw = CWMin
		return
	}
	s.medium.met.retries.Inc()
	if s.cw*2+1 <= CWMax {
		s.cw = s.cw*2 + 1
	} else {
		s.cw = CWMax
	}
	// Requeue at the head for in-order retry.
	s.queue = append([]*Frame{f}, s.queue...)
	s.medium.kick()
}

// TransmitInNAV places a frame on air at time at, bypassing contention.
// Only the NAV owner may do this, and the frame must fit inside the
// reservation. The transmission is scheduled on the engine.
func (m *Medium) TransmitInNAV(st *Station, f *Frame, rate Rate, at float64) error {
	if m.navOwner != st {
		return fmt.Errorf("wifi: %s does not own the NAV", st.Name)
	}
	air := AirTime(f.Length(), rate)
	if at+air > m.navUntil+1e-12 {
		return fmt.Errorf("wifi: frame (%.0f µs at %.6f) exceeds NAV until %.6f",
			air*1e6, at, m.navUntil)
	}
	if at < m.busyUntil-1e-12 {
		return fmt.Errorf("wifi: NAV transmission at %.6f overlaps busy medium until %.6f",
			at, m.busyUntil)
	}
	m.eng.ScheduleAt(at, func() {
		start := m.eng.Now()
		end := start + air
		if end > m.busyUntil {
			m.busyUntil = end
		}
		st.SentFrames++
		st.DeliveredFrames++
		st.DeliveredBytes += f.Length()
		m.met.navTx.Inc()
		m.met.delivered.Inc()
		m.met.bytes.Add(int64(f.Length()))
		m.met.airtime.Observe(air)
		m.notify(&Transmission{Station: st, Frame: f, Rate: rate, Start: start, End: end})
		if st.OnDelivered != nil {
			st.OnDelivered(f, end)
		}
	})
	return nil
}
