package wifi

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestCBRSourceRate(t *testing.T) {
	eng, m := newTestMedium(1)
	st := m.AddStation("helper", MAC{1}, Rate54)
	count := 0
	m.AddListener(func(tx *Transmission) { count++ })
	(&CBRSource{Station: st, Dst: MAC{2}, Payload: 100, Interval: 0.001}).Start()
	eng.Run(2)
	// 1000 pkt/s for 2 s: ~2000 transmissions.
	if count < 1900 || count > 2100 {
		t.Errorf("CBR delivered %d frames in 2 s, want ~2000", count)
	}
}

func TestCBRSourceUntil(t *testing.T) {
	eng, m := newTestMedium(2)
	st := m.AddStation("helper", MAC{1}, Rate54)
	count := 0
	m.AddListener(func(tx *Transmission) { count++ })
	(&CBRSource{Station: st, Dst: MAC{2}, Payload: 100, Interval: 0.001, Until: 0.5}).Start()
	eng.Run(2)
	if count < 450 || count > 550 {
		t.Errorf("bounded CBR delivered %d frames, want ~500", count)
	}
}

func TestCBRSourceValidation(t *testing.T) {
	_, m := newTestMedium(3)
	st := m.AddStation("s", MAC{1}, Rate54)
	if err := (&CBRSource{Station: st, Interval: 0}).Start(); err == nil {
		t.Error("zero interval should error")
	}
	if err := (&CBRSource{Interval: 0.001}).Start(); err == nil {
		t.Error("nil station should error")
	}
	if _, err := NewCBRSource(st, MAC{2}, 100, 0); err == nil {
		t.Error("NewCBRSource with zero interval should error")
	}
	if src, err := NewCBRSource(st, MAC{2}, 100, 0.001); err != nil || src == nil {
		t.Errorf("NewCBRSource with valid params: %v", err)
	}
}

func TestSourceConstructorValidation(t *testing.T) {
	_, m := newTestMedium(31)
	st := m.AddStation("s", MAC{1}, Rate54)
	if _, err := NewPoissonSource(st, MAC{2}, 100, 0, rng.New(1)); err == nil {
		t.Error("Poisson zero rate should error")
	}
	if _, err := NewPoissonSource(st, MAC{2}, 100, 50, nil); err == nil {
		t.Error("Poisson nil rng should error")
	}
	if _, err := NewBurstySource(st, MAC{2}, 100, 0, 0.05, 0.0005, rng.New(1)); err == nil {
		t.Error("Bursty zero burst should error")
	}
	if _, err := NewBeaconSource(st, 0); err == nil {
		t.Error("Beacon zero interval should error")
	}
	if _, err := NewBeaconSource(nil, 0.1); err == nil {
		t.Error("Beacon nil station should error")
	}
	if _, err := NewSaturatedSource(nil, MAC{2}, 100); err == nil {
		t.Error("Saturated nil station should error")
	}
	if src, err := NewPoissonSource(st, MAC{2}, 100, 50, rng.New(1)); err != nil {
		t.Errorf("valid Poisson: %v", err)
	} else if err := src.Start(); err != nil {
		t.Errorf("valid Poisson Start: %v", err)
	}
}

func TestSaturatedSourceKeepsBacklog(t *testing.T) {
	eng, m := newTestMedium(4)
	st := m.AddStation("ap", MAC{1}, Rate54)
	count := 0
	m.AddListener(func(tx *Transmission) { count++ })
	(&SaturatedSource{Station: st, Dst: MAC{2}, Payload: 1500}).Start()
	eng.Run(1)
	// 1500B at 54 Mbps is ~244 µs + overheads: expect thousands of
	// frames per second.
	if count < 2000 {
		t.Errorf("saturated source delivered only %d frames in 1 s", count)
	}
}

func TestPoissonSourceRate(t *testing.T) {
	eng, m := newTestMedium(5)
	st := m.AddStation("ap", MAC{1}, Rate54)
	count := 0
	m.AddListener(func(tx *Transmission) { count++ })
	(&PoissonSource{Station: st, Dst: MAC{2}, Payload: 200, Rate: 500,
		Rnd: rng.New(99)}).Start()
	eng.Run(4)
	got := float64(count) / 4
	if math.Abs(got-500) > 50 {
		t.Errorf("Poisson source rate = %v pkt/s, want ~500", got)
	}
}

func TestBurstySourceIsBursty(t *testing.T) {
	eng, m := newTestMedium(6)
	st := m.AddStation("client", MAC{1}, Rate54)
	var times []float64
	m.AddListener(func(tx *Transmission) { times = append(times, tx.Start) })
	(&BurstySource{Station: st, Dst: MAC{2}, Payload: 600, MeanBurst: 20,
		MeanGap: 0.05, InBurstInterval: 0.0005, Rnd: rng.New(7)}).Start()
	eng.Run(5)
	if len(times) < 100 {
		t.Fatalf("bursty source too quiet: %d frames", len(times))
	}
	// The coefficient of variation of inter-arrival times should exceed
	// 1 (heavier than Poisson).
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	var mean, varsum float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/float64(len(gaps))) / mean
	if cv < 1 {
		t.Errorf("inter-arrival CV = %v, want > 1 for bursty traffic", cv)
	}
}

func TestBeaconSourceCadence(t *testing.T) {
	eng, m := newTestMedium(8)
	ap := m.AddStation("ap", MAC{1}, Rate54)
	var beacons []float64
	m.AddListener(func(tx *Transmission) {
		if tx.Frame.Header.Type == TypeBeacon {
			beacons = append(beacons, tx.Start)
		}
	})
	(&BeaconSource{Station: ap, Interval: BeaconInterval}).Start()
	eng.Run(5)
	want := 5 / BeaconInterval
	if math.Abs(float64(len(beacons))-want) > 3 {
		t.Errorf("saw %d beacons in 5 s, want ~%.0f", len(beacons), want)
	}
	// Beacons go out at the base rate addressed to broadcast.
	if len(beacons) == 0 {
		t.Fatal("no beacons")
	}
}

func TestOfficeLoadShape(t *testing.T) {
	peak := OfficeLoad(14)
	night := OfficeLoad(3)
	if peak < 900 || peak > 1100 {
		t.Errorf("peak load = %v, want ~1000", peak)
	}
	if night > 200 {
		t.Errorf("night load = %v, want low", night)
	}
	if OfficeLoad(14) != OfficeLoad(14+24) {
		t.Error("OfficeLoad should be 24 h periodic")
	}
	// Monotone ramp from 8 AM to 1 PM.
	prev := OfficeLoad(8)
	for h := 9.0; h <= 13; h++ {
		cur := OfficeLoad(h)
		if cur <= prev {
			t.Errorf("load should ramp up through the morning: %v at %v", cur, h)
		}
		prev = cur
	}
}

func TestOFDMEnvelopeStats(t *testing.T) {
	rnd := rng.New(9)
	env := make([]float64, 100_000)
	OFDMEnvelope(env, rnd)
	var sum2 float64
	for _, v := range env {
		if v < 0 {
			t.Fatal("envelope must be non-negative")
		}
		sum2 += v * v
	}
	if ms := sum2 / float64(len(env)); math.Abs(ms-1) > 0.02 {
		t.Errorf("envelope mean square = %v, want ~1", ms)
	}
	// OFDM-like PAPR: a large block should show > 6 dB peak-to-average.
	if papr := PAPR(env); papr < 6 {
		t.Errorf("PAPR = %v dB, want > 6", papr)
	}
}

func TestPAPREdgeCases(t *testing.T) {
	if PAPR(nil) != 0 {
		t.Error("PAPR of empty block should be 0")
	}
	if PAPR([]float64{0, 0}) != 0 {
		t.Error("PAPR of silence should be 0")
	}
	if got := PAPR([]float64{1, 1, 1}); got != 0 {
		t.Errorf("constant envelope PAPR = %v, want 0", got)
	}
}
