package wifi_test

// ARF under injected loss: the paper leans on the helper's stock rate
// adaptation (§9) to coexist with channel perturbations, so the rate
// control must actually fall back when a burst interferer destroys frames
// — and climb back once the burst passes. These tests drive a station
// with the real fault injector plugged into the medium, not a mocked loss
// sequence. They live in an external test package because internal/faults
// imports internal/wifi.

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wifi"
)

// burstWindow is the interval the interferer is on in these tests.
const (
	burstStart = 0.2
	burstEnd   = 0.6
)

// newBurstyMedium builds a medium whose injector destroys ~90% of frames
// inside [burstStart, burstEnd) and nothing outside it.
func newBurstyMedium(t *testing.T, seed int64) (*sim.Engine, *wifi.Medium) {
	t.Helper()
	inj, err := faults.NewInjector(&faults.Schedule{Windows: []faults.Window{
		{Kind: faults.Burst, Start: burstStart, End: burstEnd, Intensity: 1},
	}}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	m := wifi.NewMedium(eng, rng.New(seed+1))
	m.Impair = inj
	return eng, m
}

func TestARFFallsBackUnderInjectedLossBurst(t *testing.T) {
	eng, m := newBurstyMedium(t, 51)
	st := m.AddStation("helper", wifi.MAC{1}, wifi.Rate54)
	st.Adapter = wifi.NewARF()
	if err := (&wifi.CBRSource{
		Station: st, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.0005,
	}).Start(); err != nil {
		t.Fatal(err)
	}

	var duringBurst, afterRecovery wifi.Rate
	eng.ScheduleAt(burstEnd-0.01, func() { duringBurst = st.Rate })
	eng.ScheduleAt(burstEnd+1.0, func() { afterRecovery = st.Rate })
	eng.Run(burstEnd + 1.1)

	if st.LostFrames == 0 {
		t.Fatal("the burst destroyed no frames; the injector is not wired to the medium")
	}
	// ~90% loss with 2-down fallback drives the rate to the table floor
	// well before the burst ends.
	if duringBurst != wifi.Rate6 {
		t.Errorf("rate during burst = %v Mbps, want fallback to the floor (6)", duringBurst)
	}
	// Post-burst the channel is clean again: 10-up adaptation must walk
	// the whole table back within a second of 2000 pkt/s traffic.
	if afterRecovery != wifi.Rate54 {
		t.Errorf("rate after recovery = %v Mbps, want 54", afterRecovery)
	}
}

// TestInjectedLossConfinedToBurstWindow pins the injector's windowing at
// the medium layer: with no SNR model on the station, the only loss
// source is the injector, so every lost frame must start inside the
// window.
func TestInjectedLossConfinedToBurstWindow(t *testing.T) {
	eng, m := newBurstyMedium(t, 52)
	st := m.AddStation("helper", wifi.MAC{1}, wifi.Rate24)
	if err := (&wifi.CBRSource{
		Station: st, Dst: wifi.MAC{9}, Payload: 200, Interval: 0.001,
	}).Start(); err != nil {
		t.Fatal(err)
	}
	var inWindow, outside int
	m.AddListener(func(tx *wifi.Transmission) {
		if !tx.Lost {
			return
		}
		if tx.Start >= burstStart && tx.Start < burstEnd {
			inWindow++
		} else {
			outside++
		}
	})
	eng.Run(1.0)
	if outside != 0 {
		t.Errorf("%d frames lost outside the burst window", outside)
	}
	if inWindow == 0 {
		t.Error("no frames lost inside the burst window")
	}
}
