package wifi

import (
	"math"

	"repro/internal/rng"
)

// OFDM envelope synthesis for the tag's energy detector (§4.2). Wi-Fi's
// OFDM waveform is the sum of many independently modulated subcarriers, so
// its complex baseband is approximately Gaussian and its envelope is
// Rayleigh-distributed with a high peak-to-average ratio — exactly the
// property the paper's peak-based detector exploits.

// EnvelopeSampleRate is the rate at which the tag's analog front end is
// simulated, in samples per second. 4 MHz resolves the envelope structure
// of 50 µs packets (200 samples per packet).
const EnvelopeSampleRate = 4e6

// OFDMEnvelope fills out with envelope samples (linear voltage, unit mean
// square) of an OFDM transmission. Each sample's amplitude is Rayleigh with
// E[v²] = 1; scaling to the received signal level is the caller's job.
func OFDMEnvelope(out []float64, rnd *rng.Stream) {
	sigma := 1 / math.Sqrt2 // Rayleigh scale for unit mean-square
	for i := range out {
		out[i] = rnd.Rayleigh(sigma)
	}
}

// PAPR computes the peak-to-average power ratio in dB of an envelope
// sample block. Returns 0 for an empty block.
func PAPR(env []float64) float64 {
	if len(env) == 0 {
		return 0
	}
	var peak, sum float64
	for _, v := range env {
		p := v * v
		sum += p
		if p > peak {
			peak = p
		}
	}
	avg := sum / float64(len(env))
	if avg == 0 {
		return 0
	}
	return 10 * math.Log10(peak/avg)
}
