package wifi

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func BenchmarkFrameSerialize(b *testing.B) {
	f := &Frame{
		Header:  Header{Type: TypeData, Addr1: MAC{1}, Addr2: MAC{2}},
		Payload: make([]byte, 1400),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Serialize()
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	f := &Frame{
		Header:  Header{Type: TypeData, Addr1: MAC{1}, Addr2: MAC{2}},
		Payload: make([]byte, 1400),
	}
	wire := f.Serialize()
	var g Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMediumSaturated(b *testing.B) {
	// One simulated second of a saturated 54 Mbps station per iteration.
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		m := NewMedium(eng, rng.New(int64(i)))
		st := m.AddStation("s", MAC{1}, Rate54)
		(&SaturatedSource{Station: st, Dst: MAC{2}, Payload: 1400}).Start()
		eng.Run(1)
	}
}

func BenchmarkMediumContention(b *testing.B) {
	// One simulated second with four contending stations per iteration.
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		m := NewMedium(eng, rng.New(int64(i)))
		for j := 0; j < 4; j++ {
			st := m.AddStation("s", MAC{byte(j + 1)}, Rate54)
			(&SaturatedSource{Station: st, Dst: MAC{9}, Payload: 1000}).Start()
		}
		eng.Run(1)
	}
}

func BenchmarkOFDMEnvelope(b *testing.B) {
	rnd := rng.New(1)
	out := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OFDMEnvelope(out, rnd)
	}
}
