package serve

import (
	"math"
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the server's internal counter set. The serving layer is
// concurrent and obs registries are goroutine-confined by contract, so
// these are atomics; publish() projects them into an obs registry from
// whatever single goroutine owns it (the daemon's metrics dump, a test).
type metrics struct {
	accepted         atomic.Int64
	rejectedOverload atomic.Int64
	rejectedDraining atomic.Int64
	rejectedBad      atomic.Int64
	completed        atomic.Int64
	poisoned         atomic.Int64
	abortedSessions  atomic.Int64
	bufferFull       atomic.Int64
	measurements     atomic.Int64
	bitsServed       atomic.Int64
	active           atomic.Int64
	activeHW         atomic.Int64
	queueHW          atomic.Int64
	queued           atomic.Int64 // aggregate slot-ring occupancy (pressure input)
	drainSecondsBits atomic.Uint64
	drainedClean     atomic.Int64

	// Resume accounting.
	resumed         atomic.Int64
	resumeUnknown   atomic.Int64
	parkedTotal     atomic.Int64
	replayedBits    atomic.Int64
	evictedTTL      atomic.Int64
	evictedCapacity atomic.Int64

	// Watchdog accounting.
	watchdogScans  atomic.Int64
	watchdogStalls atomic.Int64

	// Shed accounting.
	shedPreempted atomic.Int64
	shedRejected  atomic.Int64
	retryHints    atomic.Int64
	strainBits    atomic.Uint64 // float64 bits: decaying failure rate
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	// Accepted counts sessions admitted by Open.
	Accepted int64
	// RejectedOverload counts Opens refused at MaxSessions.
	RejectedOverload int64
	// RejectedDraining counts Opens refused during shutdown.
	RejectedDraining int64
	// RejectedBad counts Opens refused for invalid parameters.
	RejectedBad int64
	// Completed counts sessions that flushed a final result cleanly.
	Completed int64
	// Poisoned counts sessions ended by a decode or sink error.
	Poisoned int64
	// Aborted counts sessions force-closed at the drain deadline.
	Aborted int64
	// BufferFull counts TryPush rejections on a full slot ring.
	BufferFull int64
	// Measurements counts measurements accepted into slot rings.
	Measurements int64
	// BitsServed counts decoded bits delivered to sinks.
	BitsServed int64
	// Active is the number of currently admitted sessions.
	Active int64
	// ActiveHighWater is the maximum concurrently admitted sessions.
	ActiveHighWater int64
	// QueueHighWater is the deepest any session's slot ring has been.
	QueueHighWater int64
	// DrainSeconds is the measured drain duration (0 with no clock).
	DrainSeconds float64
	// Resumed counts successful ResumeSession re-attachments.
	Resumed int64
	// ResumeUnknown counts resumes rejected for an unknown/expired token.
	ResumeUnknown int64
	// ParkedTotal counts checkpoint park events (detach or finish).
	ParkedTotal int64
	// ReplayedBits counts bits re-sent to resuming clients.
	ReplayedBits int64
	// EvictedTTL counts checkpoints evicted by SweepResume.
	EvictedTTL int64
	// EvictedCapacity counts checkpoints evicted by MaxParked pressure.
	EvictedCapacity int64
	// WatchdogScans counts watchdog sweep passes.
	WatchdogScans int64
	// WatchdogStalls counts sessions aborted with ErrStalled.
	WatchdogStalls int64
	// ShedPreempted counts sessions preempted for higher-priority opens.
	ShedPreempted int64
	// ShedRejected counts opens refused by the shed policy.
	ShedRejected int64
	// RetryHints counts rejections that carried a retry-after hint.
	RetryHints int64
}

// noteActive records the post-change active-session count.
func (m *metrics) noteActive(n int) {
	m.active.Store(int64(n))
	maxInt64(&m.activeHW, int64(n))
}

// noteQueueDepth records a slot-ring occupancy sample (high-water only).
func (m *metrics) noteQueueDepth(d int) { maxInt64(&m.queueHW, int64(d)) }

func maxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// noteStrain bumps the decaying failure-rate term of the pressure
// signal by one event (abort, poison, stall, shed).
func (m *metrics) noteStrain() {
	for {
		old := m.strainBits.Load()
		v := math.Float64frombits(old) + 1
		if m.strainBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// decayStrain ages the failure-rate term; called on every accepted
// admission so strain measures failures per unit of offered load.
func (m *metrics) decayStrain() {
	for {
		old := m.strainBits.Load()
		v := math.Float64frombits(old) * 0.9375
		if m.strainBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (m *metrics) strain() float64 {
	return math.Float64frombits(m.strainBits.Load())
}

func (m *metrics) setDrainSeconds(s float64) {
	m.drainSecondsBits.Store(math.Float64bits(s))
}

func (m *metrics) drainSeconds() float64 {
	return math.Float64frombits(m.drainSecondsBits.Load())
}

func (m *metrics) stats() Stats {
	return Stats{
		Accepted:         m.accepted.Load(),
		RejectedOverload: m.rejectedOverload.Load(),
		RejectedDraining: m.rejectedDraining.Load(),
		RejectedBad:      m.rejectedBad.Load(),
		Completed:        m.completed.Load(),
		Poisoned:         m.poisoned.Load(),
		Aborted:          m.abortedSessions.Load(),
		BufferFull:       m.bufferFull.Load(),
		Measurements:     m.measurements.Load(),
		BitsServed:       m.bitsServed.Load(),
		Active:           m.active.Load(),
		ActiveHighWater:  m.activeHW.Load(),
		QueueHighWater:   m.queueHW.Load(),
		DrainSeconds:     m.drainSeconds(),
		Resumed:          m.resumed.Load(),
		ResumeUnknown:    m.resumeUnknown.Load(),
		ParkedTotal:      m.parkedTotal.Load(),
		ReplayedBits:     m.replayedBits.Load(),
		EvictedTTL:       m.evictedTTL.Load(),
		EvictedCapacity:  m.evictedCapacity.Load(),
		WatchdogScans:    m.watchdogScans.Load(),
		WatchdogStalls:   m.watchdogStalls.Load(),
		ShedPreempted:    m.shedPreempted.Load(),
		ShedRejected:     m.shedRejected.Load(),
		RetryHints:       m.retryHints.Load(),
	}
}

// publish projects the counters into an obs registry. Counters add, so
// use a fresh registry per publish; the active gauge sets the high-water
// first so Gauge.Max carries it and Value carries the current count.
func (m *metrics) publish(r *obs.Registry) {
	s := m.stats()
	r.Counter("serve.sessions.accepted").Add(s.Accepted)
	r.Counter("serve.sessions.rejected_overload").Add(s.RejectedOverload)
	r.Counter("serve.sessions.rejected_draining").Add(s.RejectedDraining)
	r.Counter("serve.sessions.rejected_bad").Add(s.RejectedBad)
	r.Counter("serve.sessions.completed").Add(s.Completed)
	r.Counter("serve.sessions.poisoned").Add(s.Poisoned)
	r.Counter("serve.sessions.aborted").Add(s.Aborted)
	r.Counter("serve.push.buffer_full").Add(s.BufferFull)
	r.Counter("serve.measurements").Add(s.Measurements)
	r.Counter("serve.bits_served").Add(s.BitsServed)
	g := r.Gauge("serve.sessions.active")
	g.Set(float64(s.ActiveHighWater))
	g.Set(float64(s.Active))
	r.Gauge("serve.queue.highwater").Set(float64(s.QueueHighWater))
	r.Gauge("serve.drain.seconds").Set(s.DrainSeconds)
	r.Gauge("serve.drain.clean").Set(float64(m.drainedClean.Load()))
	r.Counter("serve.resume.resumed").Add(s.Resumed)
	r.Counter("serve.resume.unknown").Add(s.ResumeUnknown)
	r.Counter("serve.resume.parked_total").Add(s.ParkedTotal)
	r.Counter("serve.resume.replayed_bits").Add(s.ReplayedBits)
	r.Counter("serve.resume.evicted_ttl").Add(s.EvictedTTL)
	r.Counter("serve.resume.evicted_capacity").Add(s.EvictedCapacity)
	r.Counter("serve.watchdog.scans").Add(s.WatchdogScans)
	r.Counter("serve.watchdog.stalls").Add(s.WatchdogStalls)
	r.Counter("serve.shed.preempted").Add(s.ShedPreempted)
	r.Counter("serve.shed.rejected").Add(s.ShedRejected)
	r.Counter("serve.shed.retry_hints").Add(s.RetryHints)
}
