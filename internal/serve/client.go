package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// Replay client: the wbserve/1 consumer side, shared by cmd/wbload and
// the chaos tests. It drives one stream end to end and — for a
// resumable session — survives any number of connection cuts by
// reconnecting with "resume <token> <bits-received>" and continuing
// from the server's acknowledged cursor. The resulting bit sequence is
// byte-identical to an uninterrupted run: the server replays exactly
// the suffix this client did not receive, and the client never counts
// a truncated line (a cut mid-line re-receives that line on resume).

// Dialer opens one transport to the server; Replay re-invokes it on
// every reconnect.
type Dialer func() (net.Conn, error)

// DefaultMaxAttempts caps Replay's connection attempts.
const DefaultMaxAttempts = 64

// ReplayOptions configures one Replay run.
type ReplayOptions struct {
	// Params opens the session. Set Params.Resumable for cut survival.
	Params SessionParams
	// Measurements is the full stream to deliver, in order.
	Measurements []csi.Measurement
	// MaxAttempts caps connection attempts (first try plus reconnects).
	// Zero means DefaultMaxAttempts.
	MaxAttempts int
	// Sleep, when non-nil, honors server retry-after hints on rejection.
	// Nil ignores the hint (deterministic tests).
	Sleep func(time.Duration)
}

// ReplayStats is the outcome of a Replay run.
type ReplayStats struct {
	// Attempts counts connections dialed, Resumes how many of those
	// re-attached with a resume line, Cuts how many attempts died before
	// the final result.
	Attempts, Resumes, Cuts int
	// Bits are the decoded bit lines in arrival order, replays already
	// de-duplicated by the resume cursor.
	Bits []uplink.BitDecision
	// Done is the final done/error response.
	Done Response
	// Rejected reports the run ended on an admission reject; RetryAfter
	// carries the server's backoff hint in seconds (0 if none).
	Rejected   bool
	RetryAfter float64
}

// Replay drives one stream against a server until it yields a final
// result or the attempt budget runs out. Note the write-then-read
// phasing: the full measurement stream and the flush go out before
// responses are drained, so the stream's response volume must fit the
// transport buffers (fine for payload-scale streams; a bulk transfer
// would need a reader goroutine).
func Replay(dial Dialer, opt ReplayOptions) (ReplayStats, error) {
	var st ReplayStats
	maxAttempts := opt.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	token := ""
	var lastErr error
	for st.Attempts < maxAttempts {
		st.Attempts++
		conn, err := dial()
		if err != nil {
			st.Cuts++
			lastErr = err
			if opt.Params.Resumable {
				continue
			}
			return st, err
		}
		done, err := replayAttempt(conn, opt, &st, &token)
		_ = conn.Close()
		if done {
			return st, err
		}
		lastErr = err
		if !opt.Params.Resumable {
			return st, err
		}
	}
	return st, fmt.Errorf("serve: replay gave up after %d attempts (%d bits in hand): %w",
		st.Attempts, len(st.Bits), lastErr)
}

// replayAttempt runs one connection's worth of the protocol. It returns
// done=true when the stream reached a terminal outcome (result, session
// error, or rejection — err says which); done=false means the attempt
// was cut and a resumable caller should reconnect.
func replayAttempt(conn net.Conn, opt ReplayOptions, st *ReplayStats, token *string) (bool, error) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var req []byte
	if *token != "" {
		st.Resumes++
		req = AppendResume(req, *token, len(st.Bits))
	} else {
		req = AppendHello(req, opt.Params)
	}
	req = append(req, '\n')
	if _, err := conn.Write(req); err != nil {
		st.Cuts++
		return false, err
	}
	line, err := readLine(br)
	if err != nil {
		st.Cuts++
		return false, err
	}
	ack, err := ParseResponse(line)
	if err != nil {
		st.Cuts++
		return false, err
	}
	switch ack.Kind {
	case RespOK:
	case RespReject:
		st.Rejected = true
		st.RetryAfter = ack.RetryAfter
		if ack.RetryAfter > 0 && opt.Sleep != nil {
			opt.Sleep(time.Duration(ack.RetryAfter * float64(time.Second)))
		}
		return true, fmt.Errorf("serve: rejected: %s", ack.Reason)
	default:
		return true, fmt.Errorf("serve: unexpected acknowledgment %q", line)
	}
	if opt.Params.Resumable {
		if len(ack.Token) != tokenLen {
			// The ok line must carry a full token; anything else means the
			// acknowledgment itself was mangled — treat as a cut.
			st.Cuts++
			return false, fmt.Errorf("serve: acknowledgment carried no resume token")
		}
		*token = ack.Token
	}
	if !ack.Final {
		skip := int(ack.Seq)
		if skip > len(opt.Measurements) {
			skip = len(opt.Measurements)
		}
		bw := bufio.NewWriterSize(conn, 64<<10)
		var mline []byte
		werr := error(nil)
		for i := skip; i < len(opt.Measurements); i++ {
			mline = AppendMeasurement(mline[:0], opt.Measurements[i])
			mline = append(mline, '\n')
			if _, werr = bw.Write(mline); werr != nil {
				break
			}
		}
		if werr == nil {
			_, werr = bw.WriteString("flush\n")
		}
		if werr == nil {
			werr = bw.Flush()
		}
		if werr != nil {
			st.Cuts++
			return false, werr
		}
	}
	for {
		line, err := readLine(br)
		if err != nil {
			st.Cuts++
			return false, err
		}
		r, err := ParseResponse(line)
		if err != nil {
			st.Cuts++
			return false, err
		}
		switch r.Kind {
		case RespBit:
			st.Bits = append(st.Bits, r.Bit)
		case RespDone:
			st.Done = r
			return true, nil
		case RespError:
			st.Done = r
			return true, fmt.Errorf("serve: session failed: %s", r.Reason)
		default:
			return true, fmt.Errorf("serve: unexpected response %q", line)
		}
	}
}

// readLine returns one complete newline-terminated response without the
// terminator. A partial line at EOF is reported as an error and its
// bytes dropped, never parsed: under chaos a connection dies mid-line,
// and trusting a truncated "bit ..." prefix would record a wrong bit.
// The resume cursor counts only complete lines, so a dropped fragment
// is simply re-received after reconnect.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line[:len(line)-1], nil
}
