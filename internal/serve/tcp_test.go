package serve_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/serve"
	"repro/internal/uplink"
)

// startTCP brings up a server on a loopback listener and tears both down
// with the test.
func startTCP(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(cfg)
	go func() {
		if err := srv.ServeTCP(l); err != nil {
			t.Errorf("ServeTCP: %v", err)
		}
	}()
	t.Cleanup(func() {
		_ = l.Close()
		_ = srv.Drain()
	})
	return srv, l.Addr().String()
}

// clientResult is what one protocol exchange produced.
type clientResult struct {
	bits  []uplink.BitDecision
	done  serve.Response
	final bool // a done or error line arrived
}

// runClient streams a capture over one connection and collects the
// responses. A nil series sends hello only.
func runClient(t *testing.T, addr string, p serve.SessionParams, series *csi.Series, flush bool) (clientResult, error) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	return speak(conn, p, series, flush)
}

// speak runs the client side of the protocol on an open connection.
func speak(conn net.Conn, p serve.SessionParams, series *csi.Series, flush bool) (clientResult, error) {
	var out clientResult
	buf := serve.AppendHello(nil, p)
	buf = append(buf, '\n')
	if _, err := conn.Write(buf); err != nil {
		return out, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return out, fmt.Errorf("no response to hello: %v", sc.Err())
	}
	r, err := serve.ParseResponse(sc.Bytes())
	if err != nil {
		return out, err
	}
	if r.Kind != serve.RespOK {
		return out, fmt.Errorf("hello answered with %q", r.Reason)
	}
	if series != nil {
		for _, m := range series.Measurements {
			buf = serve.AppendMeasurement(buf[:0], m)
			buf = append(buf, '\n')
			if _, err := conn.Write(buf); err != nil {
				return out, fmt.Errorf("measurement write: %w", err)
			}
		}
	}
	if flush {
		if _, err := conn.Write([]byte("flush\n")); err != nil {
			return out, fmt.Errorf("flush write: %w", err)
		}
	}
	for sc.Scan() {
		r, err := serve.ParseResponse(sc.Bytes())
		if err != nil {
			return out, err
		}
		switch r.Kind {
		case serve.RespBit:
			out.bits = append(out.bits, r.Bit)
		case serve.RespDone, serve.RespError:
			out.done = r
			out.final = true
			return out, nil
		default:
			return out, fmt.Errorf("unexpected mid-session response kind %d", r.Kind)
		}
	}
	return out, fmt.Errorf("connection ended without a final line: %v", sc.Err())
}

// payloadString renders a batch result the way the done line does.
func payloadString(res *uplink.Result) string {
	var sb strings.Builder
	for _, b := range res.Payload {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// TestTCPSessionsMatchBatch64 is the load acceptance criterion: 64
// concurrent line-protocol sessions, each byte-identical to the batch
// decode of its capture.
func TestTCPSessionsMatchBatch64(t *testing.T) {
	const n = 64
	payloadLen := 12
	// Four distinct captures cycled across the fleet keep synthesis fast
	// while still decoding different payloads side by side.
	type capture struct {
		series *csi.Series
		want   *uplink.Result
	}
	caps := make([]capture, 4)
	for i := range caps {
		series := synthSeries(t, randomPayload(payloadLen, int64(100+i)), int64(100+i))
		caps[i] = capture{series: series, want: batchDecode(t, series, payloadLen)}
	}
	srv, addr := startTCP(t, serve.Config{MaxSessions: n, SessionBuffer: 64})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := caps[i%len(caps)]
			got, err := runClient(t, addr, testParams(payloadLen), c.series, true)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if got.done.Kind != serve.RespDone {
				t.Errorf("client %d: final line was an error: %s", i, got.done.Reason)
				return
			}
			want := payloadString(c.want)
			if got.done.Bits != want {
				t.Errorf("client %d: done bits %s, batch decoded %s", i, got.done.Bits, want)
			}
			if len(got.bits) != payloadLen {
				t.Errorf("client %d: %d bit lines, want %d", i, len(got.bits), payloadLen)
				return
			}
			for _, b := range got.bits {
				if b.Bit != (want[b.Index] == '1') {
					t.Errorf("client %d: streamed bit %d disagrees with batch", i, b.Index)
				}
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Accepted != n || st.Completed != n {
		t.Errorf("stats = %+v, want %d accepted and completed", st, n)
	}
	if st.BitsServed != int64(n*payloadLen) {
		t.Errorf("BitsServed = %d, want %d", st.BitsServed, n*payloadLen)
	}
}

// TestTCPOverloadReject pins wire-level admission: the session past
// MaxSessions gets an explicit reject line, not a hang.
func TestTCPOverloadReject(t *testing.T) {
	_, addr := startTCP(t, serve.Config{MaxSessions: 1})
	holder, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = holder.Close() }()
	line := append(serve.AppendHello(nil, testParams(8)), '\n')
	if _, err := holder.Write(line); err != nil {
		t.Fatal(err)
	}
	hsc := bufio.NewScanner(holder)
	if !hsc.Scan() {
		t.Fatal("no hello response")
	}
	if r, err := serve.ParseResponse(hsc.Bytes()); err != nil || r.Kind != serve.RespOK {
		t.Fatalf("holder hello: %+v, %v", r, err)
	}

	if _, err := runClient(t, addr, testParams(8), nil, false); err == nil ||
		!strings.Contains(err.Error(), "capacity") {
		t.Errorf("second session = %v, want a capacity reject", err)
	}

	// Malformed hellos are also explicit rejects.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("hello wbserve/1 dsss 100 1 8 2 4\n")); err != nil {
		t.Fatal(err)
	}
	csc := bufio.NewScanner(conn)
	if !csc.Scan() {
		t.Fatal("no response to malformed hello")
	}
	if r, err := serve.ParseResponse(csc.Bytes()); err != nil || r.Kind != serve.RespReject {
		t.Errorf("malformed hello answered %+v, %v", r, err)
	}
}

// TestTCPMalformedLinePoisonsOnlyThatSession runs a well-formed client
// concurrently with one that sends garbage mid-stream.
func TestTCPMalformedLinePoisonsOnlyThatSession(t *testing.T) {
	payloadLen := 12
	series := synthSeries(t, randomPayload(payloadLen, 55), 55)
	want := batchDecode(t, series, payloadLen)
	srv, addr := startTCP(t, serve.Config{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		got, err := runClient(t, addr, testParams(payloadLen), series, true)
		if err != nil {
			t.Errorf("good client: %v", err)
			return
		}
		if got.done.Kind != serve.RespDone || got.done.Bits != payloadString(want) {
			t.Errorf("good client decoded %+v next to a poisoned neighbor", got.done)
		}
	}()
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() { _ = conn.Close() }()
		hello := append(serve.AppendHello(nil, testParams(payloadLen)), '\n')
		if _, err := conn.Write(hello); err != nil {
			t.Error(err)
			return
		}
		sc := bufio.NewScanner(conn)
		if !sc.Scan() {
			t.Error("no hello response")
			return
		}
		if _, err := conn.Write([]byte("m 1 not-a-number\n")); err != nil {
			t.Error(err)
			return
		}
		sawError := false
		for sc.Scan() {
			if r, err := serve.ParseResponse(sc.Bytes()); err == nil && r.Kind == serve.RespError {
				sawError = true
			}
		}
		if !sawError {
			t.Error("malformed line produced no error response")
		}
	}()
	wg.Wait()
	if st := srv.Stats(); st.Completed < 1 {
		t.Errorf("stats = %+v, want at least the good session completed", st)
	}
}

// TestTCPIdleTimeoutFlushes pins the idle deadline: a client that goes
// silent mid-frame still gets the salvaged decode, then the connection
// closes.
func TestTCPIdleTimeoutFlushes(t *testing.T) {
	payloadLen := 8
	series := synthSeries(t, randomPayload(payloadLen, 66), 66)
	_, addr := startTCP(t, serve.Config{
		IdleTimeout: 100 * time.Millisecond,
		Now:         time.Now,
	})
	half := &csi.Series{Measurements: series.Measurements[:series.Len()/2]}
	// No flush: the server's idle deadline must end the session for us.
	got, err := runClient(t, addr, testParams(payloadLen), half, false)
	if err != nil {
		t.Fatalf("silent client: %v", err)
	}
	if !got.final {
		t.Fatal("idle session ended without a final line")
	}
}

// TestTCPDrainUnderLoad drains while clients are mid-stream: every
// session must still get a final line and Drain must come back clean
// within its deadline.
func TestTCPDrainUnderLoad(t *testing.T) {
	const n = 8
	payloadLen := 12
	series := synthSeries(t, randomPayload(payloadLen, 77), 77)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{MaxSessions: n, DrainTimeout: 5 * time.Second})
	go func() { _ = srv.ServeTCP(l) }()

	started := make(chan struct{}, n)
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			// Signal readiness on every path so the drain never waits on
			// a client that failed to start.
			ready := false
			defer func() {
				if !ready {
					started <- struct{}{}
				}
			}()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				results <- err
				return
			}
			defer func() { _ = conn.Close() }()
			hello := append(serve.AppendHello(nil, testParams(payloadLen)), '\n')
			if _, err := conn.Write(hello); err != nil {
				results <- err
				return
			}
			sc := bufio.NewScanner(conn)
			if !sc.Scan() {
				results <- fmt.Errorf("no hello response")
				return
			}
			ready = true
			started <- struct{}{}
			// Stream slowly and forever; the drain interrupts us.
			var buf []byte
			i := 0
			for {
				m := series.Measurements[i%series.Len()]
				m.Timestamp = float64(i) * 0.001
				buf = serve.AppendMeasurement(buf[:0], m)
				buf = append(buf, '\n')
				if _, err := conn.Write(buf); err != nil {
					break // server stopped reading: drain reached us
				}
				i++
				time.Sleep(time.Millisecond)
			}
			// The final line must already be in flight or on the wire.
			for sc.Scan() {
				if r, err := serve.ParseResponse(sc.Bytes()); err == nil &&
					(r.Kind == serve.RespDone || r.Kind == serve.RespError) {
					results <- nil
					return
				}
			}
			results <- fmt.Errorf("drained session got no final line")
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	_ = l.Close()
	if err := srv.Drain(); err != nil {
		t.Errorf("Drain under load: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	st := srv.Stats()
	if st.Accepted != n {
		t.Errorf("accepted %d sessions, want %d", st.Accepted, n)
	}
	if st.Aborted != 0 {
		t.Errorf("drain aborted %d sessions; want graceful completion", st.Aborted)
	}
}
