// Package chaosproxy is the wire-level chaos harness: a fault-injecting
// TCP shim that compiles internal/faults schedules into connection
// drops, partial writes, stalls, and byte corruption on a live
// wbserve/1 connection. It is the serving layer's analogue of the
// simulator's fault injector — the same declarative Schedule, the same
// salted trial streams — so a chaos run is exactly as reproducible as a
// faulted simulation: one (seed, spec) pair pins every cut offset and
// corrupted byte.
//
// Determinism is by construction. Each lane (one logical client stream,
// persistent across its reconnects) compiles the schedule ONCE per
// direction into a sorted list of absolute byte-offset events, drawing
// only from rng.TrialSeed(seed, lane⊕direction) at compile time; the
// runtime applies events purely by how many bytes have passed, so the
// outcome is independent of TCP segmentation, goroutine scheduling, and
// worker count. Window times are virtual wire time: second t of a
// window maps to byte offset t·BytesPerSecond of that lane-direction's
// delivered stream.
//
// Kind mapping (wire semantics of the shared schedule vocabulary):
//
//	Burst   → connection cut at a drawn offset inside the window
//	          (probability = intensity), FIN-style so delivered bytes
//	          stay delivered
//	Corrupt → XOR a drawn mask into ~intensity-scaled bytes
//	Stall   → pause the stream at a drawn offset (intensity-scaled)
//	CSIDrop → split a write at drawn offsets (partial-write torture)
//	Fade/Drift have no wire analogue and are ignored here.
package chaosproxy

import (
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
)

// ErrCut is returned by reads and writes on a connection the schedule
// has cut.
var ErrCut = errors.New("chaosproxy: connection cut by schedule")

// Defaults for Config's zero fields.
const (
	// DefaultBytesPerSecond maps schedule seconds onto wire bytes.
	DefaultBytesPerSecond = 4096
	// DefaultStallScale is the real-time pause a full-intensity Stall
	// event inflicts (kept small: chaos suites run under -race in CI).
	DefaultStallScale = 2 * time.Millisecond
)

// Config parameterizes a Proxy.
type Config struct {
	// Schedule is the fault plan; nil or empty is a transparent proxy.
	Schedule *faults.Schedule
	// Seed salts the per-lane trial streams (same convention as the
	// simulator's -seed).
	Seed int64
	// BytesPerSecond maps a window's [Start,End) seconds onto byte
	// offsets of each lane-direction stream. Zero means
	// DefaultBytesPerSecond.
	BytesPerSecond float64
	// StallScale scales Stall event pauses. Zero means
	// DefaultStallScale.
	StallScale time.Duration
}

func (c Config) bytesPerSecond() float64 {
	if c.BytesPerSecond <= 0 {
		return DefaultBytesPerSecond
	}
	return c.BytesPerSecond
}

func (c Config) stallScale() time.Duration {
	if c.StallScale <= 0 {
		return DefaultStallScale
	}
	return c.StallScale
}

// Stats counts compiled (planned) and applied (executed) events across
// all lanes. Planned counts depend only on (seed, spec, lane set);
// executed counts additionally depend on how many bytes actually flowed
// through each lane, which is per-lane deterministic for a
// deterministic client.
type Stats struct {
	Lanes, Conns                  int64
	CutsPlanned, CutsExecuted     int64
	CorruptPlanned, CorruptDone   int64
	StallsPlanned, StallsExecuted int64
	SplitsPlanned, SplitsExecuted int64
}

// Proxy injects a compiled fault schedule between clients and one
// upstream address. Use Dial for in-process lane-addressed clients
// (cmd/wbload, tests) or Serve to stand it up in front of a listener
// (lanes assigned in accept order).
type Proxy struct {
	upstream string
	cfg      Config

	mu    sync.Mutex
	lanes map[int]*lane
	next  int // next accept-order lane id (Serve mode)

	nLanes, nConns                atomic.Int64
	cutsPlanned, cutsExecuted     atomic.Int64
	corruptPlanned, corruptDone   atomic.Int64
	stallsPlanned, stallsExecuted atomic.Int64
	splitsPlanned, splitsExecuted atomic.Int64
}

// New builds a proxy forwarding to upstream (host:port). The schedule
// is validated up front; nil means transparent.
func New(upstream string, cfg Config) (*Proxy, error) {
	if !cfg.Schedule.Empty() {
		if err := cfg.Schedule.Validate(); err != nil {
			return nil, err
		}
	}
	return &Proxy{upstream: upstream, cfg: cfg, lanes: make(map[int]*lane)}, nil
}

// Stats snapshots the event accounting.
func (p *Proxy) Stats() Stats {
	return Stats{
		Lanes:          p.nLanes.Load(),
		Conns:          p.nConns.Load(),
		CutsPlanned:    p.cutsPlanned.Load(),
		CutsExecuted:   p.cutsExecuted.Load(),
		CorruptPlanned: p.corruptPlanned.Load(),
		CorruptDone:    p.corruptDone.Load(),
		StallsPlanned:  p.stallsPlanned.Load(),
		StallsExecuted: p.stallsExecuted.Load(),
		SplitsPlanned:  p.splitsPlanned.Load(),
		SplitsExecuted: p.splitsExecuted.Load(),
	}
}

// lane is one logical client stream: its two direction engines persist
// across the lane's reconnects, so a resumed connection continues at
// the byte offset where the cut happened and marches into the
// schedule's later windows.
type lane struct {
	c2s, s2c *dirEngine
}

// Direction salts: each lane-direction gets an independent rng stream.
const (
	dirC2S = 0
	dirS2C = 1
)

func (p *Proxy) getLane(id int) *lane {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.lanes[id]; ok {
		return l
	}
	l := &lane{
		c2s: p.compile(id, dirC2S),
		s2c: p.compile(id, dirS2C),
	}
	p.lanes[id] = l
	p.nLanes.Add(1)
	return l
}

// Dial opens one chaos-shimmed connection to the upstream on the given
// lane. Reconnecting on the same lane continues that lane's schedule
// cursor — which is what lets a cut-every-connection schedule still
// make progress: the resumed connection starts past the cut offset.
func (p *Proxy) Dial(laneID int) (net.Conn, error) {
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return nil, err
	}
	p.nConns.Add(1)
	return &chaosConn{Conn: up, p: p, lane: p.getLane(laneID)}, nil
}

// Serve proxies accepted connections to the upstream until the listener
// closes, assigning lanes in accept order. Each side's bytes flow
// through the lane's direction engines exactly as with Dial.
func (p *Proxy) Serve(l net.Listener) error {
	for {
		client, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		p.mu.Lock()
		id := p.next
		p.next++
		p.mu.Unlock()
		go p.pipe(client, id)
	}
}

// pipe runs one Serve-mode connection: dial upstream through the chaos
// shim and copy both directions until either side ends.
func (p *Proxy) pipe(client net.Conn, laneID int) {
	defer func() { _ = client.Close() }()
	shim, err := p.Dial(laneID)
	if err != nil {
		return
	}
	defer func() { _ = shim.Close() }()
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(shim, client) // client → upstream through c2s engine
		if cw, ok := shim.(*chaosConn); ok {
			cw.closeWriteUpstream()
		}
		close(done)
	}()
	_, _ = io.Copy(client, shim) // upstream → client through s2c engine
	if cw, ok := client.(*net.TCPConn); ok {
		_ = cw.CloseWrite()
	}
	<-done
}

// Event opcodes.
const (
	opCut = iota
	opCorrupt
	opStall
	opSplit
)

// wireEvent is one compiled fault at an absolute byte offset of a
// lane-direction stream.
type wireEvent struct {
	off   int64
	kind  uint8
	seq   int // compile order, stable sort tiebreak
	mask  byte
	stall time.Duration
}

// dirEngine owns one lane-direction's compiled events and byte cursor.
// The cursor advances only with delivered bytes and persists across the
// lane's reconnects; bytes drained after a cut are lost on the wire and
// do not advance it.
type dirEngine struct {
	mu     sync.Mutex
	events []wireEvent
	next   int
	off    int64
}

// compile draws the lane-direction's events from its salted trial
// stream. All draws happen here, once, at first use of the lane — the
// runtime path consumes no randomness at all.
func (p *Proxy) compile(laneID, dir int) *dirEngine {
	e := &dirEngine{}
	if p.cfg.Schedule.Empty() {
		return e
	}
	bps := p.cfg.bytesPerSecond()
	stream := rng.New(rng.TrialSeed(p.cfg.Seed, 2*laneID+dir))
	seq := 0
	for _, w := range p.cfg.Schedule.Windows {
		span := w.End - w.Start
		at := func(frac float64) int64 {
			return int64((w.Start + frac*span) * bps)
		}
		switch w.Kind {
		case faults.Burst:
			gate := stream.Float64()
			pos := stream.Float64()
			if gate < w.Intensity {
				e.events = append(e.events, wireEvent{off: at(pos), kind: opCut, seq: seq})
				seq++
				p.cutsPlanned.Add(1)
			}
		case faults.Corrupt:
			n := int(w.Intensity * span * bps / 256)
			if n > 1024 {
				n = 1024
			}
			for i := 0; i < n; i++ {
				pos := stream.Float64()
				mask := byte(1 + stream.Intn(255))
				e.events = append(e.events, wireEvent{off: at(pos), kind: opCorrupt, seq: seq, mask: mask})
				seq++
				p.corruptPlanned.Add(1)
			}
		case faults.Stall:
			gate := stream.Float64()
			pos := stream.Float64()
			if gate < w.Intensity {
				d := time.Duration(w.Intensity * float64(p.cfg.stallScale()))
				e.events = append(e.events, wireEvent{off: at(pos), kind: opStall, seq: seq, stall: d})
				seq++
				p.stallsPlanned.Add(1)
			}
		case faults.CSIDrop:
			n := int(w.Intensity * span * bps / 512)
			if n > 4096 {
				n = 4096
			}
			for i := 0; i < n; i++ {
				pos := stream.Float64()
				e.events = append(e.events, wireEvent{off: at(pos), kind: opSplit, seq: seq})
				seq++
				p.splitsPlanned.Add(1)
			}
		}
	}
	sort.Slice(e.events, func(i, j int) bool {
		if e.events[i].off != e.events[j].off {
			return e.events[i].off < e.events[j].off
		}
		return e.events[i].seq < e.events[j].seq
	})
	return e
}

// chaosConn is one shimmed connection. Its engines belong to the lane
// and outlive it; the cut flag is per connection.
type chaosConn struct {
	net.Conn
	p    *Proxy
	lane *lane

	cut  atomic.Bool
	wmu  sync.Mutex // serializes Write against itself
	rmu  sync.Mutex // serializes Read against itself
	wbuf []byte     // owned copy when corruption must touch caller bytes
}

// Write applies the c2s engine: forwards b to the upstream, splitting,
// stalling, corrupting, or cutting at compiled offsets.
func (c *chaosConn) Write(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, ErrCut
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.apply(c.lane.c2s, b, true)
}

// Read applies the s2c engine to bytes already delivered by the
// upstream: corruption mutates them in place, a cut truncates at the
// offset and kills the connection, splits and stalls pace the stream.
func (c *chaosConn) Read(b []byte) (int, error) {
	if c.cut.Load() {
		return 0, ErrCut
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	n, err := c.Conn.Read(b)
	if n == 0 {
		return n, err
	}
	e := c.lane.s2c
	e.mu.Lock()
	kept := n
	for e.next < len(e.events) && e.events[e.next].off < e.off+int64(kept) {
		ev := e.events[e.next]
		k := int(ev.off - e.off)
		switch ev.kind {
		case opCorrupt:
			b[k] ^= ev.mask
			c.p.corruptDone.Add(1)
		case opStall:
			c.p.stallsExecuted.Add(1)
			time.Sleep(ev.stall)
		case opSplit:
			// No read-side analogue of a partial write; consume it.
			c.p.splitsExecuted.Add(1)
		case opCut:
			kept = k
			e.next++
			e.off += int64(kept)
			e.mu.Unlock()
			c.cutNow()
			if kept == 0 {
				return 0, ErrCut
			}
			return kept, nil
		}
		e.next++
	}
	e.off += int64(kept)
	e.mu.Unlock()
	return kept, err
}

// apply runs the write path through a direction engine.
func (c *chaosConn) apply(e *dirEngine, b []byte, countSplits bool) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	written := 0
	owned := false
	for len(b) > 0 {
		if c.cut.Load() {
			return written, ErrCut
		}
		// Find the next event inside this chunk.
		var ev *wireEvent
		if e.next < len(e.events) && e.events[e.next].off < e.off+int64(len(b)) {
			ev = &e.events[e.next]
		}
		if ev == nil {
			n, err := c.Conn.Write(b)
			e.off += int64(n)
			return written + n, err
		}
		k := int(ev.off - e.off)
		switch ev.kind {
		case opCorrupt:
			if !owned {
				// Never mutate the caller's buffer: copy the remainder once.
				c.wbuf = append(c.wbuf[:0], b...)
				b = c.wbuf
				owned = true
			}
			b[k] ^= ev.mask
			c.p.corruptDone.Add(1)
			e.next++
		case opSplit:
			n, err := c.Conn.Write(b[:k])
			e.off += int64(n)
			written += n
			if err != nil {
				return written, err
			}
			b = b[k:]
			if owned {
				c.wbuf = c.wbuf[k:]
			}
			if countSplits {
				c.p.splitsExecuted.Add(1)
			}
			e.next++
		case opStall:
			n, err := c.Conn.Write(b[:k])
			e.off += int64(n)
			written += n
			if err != nil {
				return written, err
			}
			b = b[k:]
			if owned {
				c.wbuf = c.wbuf[k:]
			}
			c.p.stallsExecuted.Add(1)
			e.next++
			time.Sleep(ev.stall)
		case opCut:
			n, _ := c.Conn.Write(b[:k])
			e.off += int64(n)
			written += n
			e.next++
			c.cutNow()
			return written, ErrCut
		}
	}
	return written, nil
}

// cutNow executes a cut exactly once per connection: stop accepting
// bytes in either direction, send FIN upstream so everything already
// written is delivered (an abrupt Close could RST and discard delivered
// bytes from the peer's buffer), and drain+close in the background.
func (c *chaosConn) cutNow() {
	// CAS, not sync.Once: the cut path is statically reachable from the
	// serving hot path (any net.Conn write), and an escaping closure
	// there would trip the wblint hotpath gate.
	if !c.cut.CompareAndSwap(false, true) {
		return
	}
	c.p.cutsExecuted.Add(1)
	c.closeWriteUpstream()
	go drainAndClose(c.Conn)
}

// drainAndClose consumes whatever the peer still sends after a cut and
// then closes the socket. The drained bytes deliberately bypass the
// fault engine: a lane's byte cursors must only ever count delivered
// traffic, and the engine belongs to the lane's next connection already.
func drainAndClose(conn net.Conn) {
	_, _ = io.Copy(io.Discard, conn)
	_ = conn.Close()
}

// closeWriteUpstream half-closes the upstream leg (FIN) when the
// transport supports it.
func (c *chaosConn) closeWriteUpstream() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}

// Close shuts the connection down. After a cut the background drain
// owns the upstream socket; otherwise close it directly.
func (c *chaosConn) Close() error {
	if c.cut.Load() {
		return nil
	}
	return c.Conn.Close()
}
