package chaosproxy

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// recorder is a one-connection upstream that records everything it
// receives until the client half-closes.
type recorder struct {
	l    net.Listener
	mu   sync.Mutex
	got  []byte
	done chan struct{}
}

func newRecorder(t *testing.T) *recorder {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &recorder{l: l, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			r.mu.Lock()
			r.got = append(r.got, buf[:n]...)
			r.mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { _ = l.Close() })
	return r
}

func (r *recorder) addr() string { return r.l.Addr().String() }

func (r *recorder) wait(t *testing.T) []byte {
	t.Helper()
	select {
	case <-r.done:
	case <-time.After(5 * time.Second):
		t.Fatal("recorder never saw the connection end")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.got...)
}

func sched(t *testing.T, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCompileDeterministic pins the core property the chaos suite rests
// on: same (seed, spec, lane) compiles the identical event plan, while
// different lanes and directions draw independent plans.
func TestCompileDeterministic(t *testing.T) {
	cfg := Config{Schedule: sched(t, "burst@0:2x1;corrupt@1:3x0.8;stall@0:4x1;csidrop@0:4x0.6"), Seed: 42}
	a, err := New("unused:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("unused:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 3; lane++ {
		for _, dir := range []int{dirC2S, dirS2C} {
			ea, eb := a.compile(lane, dir), b.compile(lane, dir)
			if !reflect.DeepEqual(ea.events, eb.events) {
				t.Errorf("lane %d dir %d: plans differ across identically seeded proxies", lane, dir)
			}
			if len(ea.events) == 0 {
				t.Errorf("lane %d dir %d: schedule compiled to no events", lane, dir)
			}
		}
	}
	if reflect.DeepEqual(a.compile(0, dirC2S).events, a.compile(1, dirC2S).events) {
		t.Error("lanes 0 and 1 drew identical plans; lanes must be salted apart")
	}
	if reflect.DeepEqual(a.compile(0, dirC2S).events, a.compile(0, dirS2C).events) {
		t.Error("c2s and s2c drew identical plans; directions must be salted apart")
	}
	off := int64(-1)
	for _, ev := range a.compile(0, dirC2S).events {
		if ev.off < off {
			t.Fatalf("events not sorted by offset: %d after %d", ev.off, off)
		}
		off = ev.off
	}
}

// TestTransparentWhenEmpty pins that a nil schedule forwards bytes
// unchanged in both directions.
func TestTransparentWhenEmpty(t *testing.T) {
	up := newRecorder(t)
	p, err := New(up.addr(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("hello wire\n"), 1000)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := up.wait(t); !bytes.Equal(got, msg) {
		t.Fatalf("transparent proxy altered the stream: got %d bytes, want %d", len(got), len(msg))
	}
}

// TestWriteCutDeliversPrefix pins cut semantics: a full-intensity burst
// cuts the connection at its compiled offset, everything before the
// offset is delivered (FIN, not RST), and the same lane's next
// connection continues past the cut.
func TestWriteCutDeliversPrefix(t *testing.T) {
	up := newRecorder(t)
	p, err := New(up.addr(), Config{Schedule: sched(t, "burst@0:1x1"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lane := p.getLane(0)
	if len(lane.c2s.events) != 1 || lane.c2s.events[0].kind != opCut {
		t.Fatalf("expected exactly one cut event, got %+v", lane.c2s.events)
	}
	cutAt := lane.c2s.events[0].off

	conn, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, int(cutAt)+500)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, werr := conn.Write(payload)
	if !errors.Is(werr, ErrCut) {
		t.Fatalf("write past the cut offset returned %v, want ErrCut", werr)
	}
	if int64(n) != cutAt {
		t.Fatalf("cut delivered %d bytes, planned offset is %d", n, cutAt)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrCut) {
		t.Fatalf("write after cut returned %v, want ErrCut", err)
	}
	if got := up.wait(t); !bytes.Equal(got, payload[:cutAt]) {
		t.Fatalf("upstream saw %d bytes, want exactly the %d-byte prefix", len(got), cutAt)
	}

	// Reconnect on the same lane: the engine cursor sits at the cut
	// offset with no events left, so the new connection flows freely.
	up2 := newRecorder(t)
	p.upstream = up2.addr()
	conn2, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	rest := []byte("resumed traffic")
	if _, err := conn2.Write(rest); err != nil {
		t.Fatalf("post-cut lane write: %v", err)
	}
	_ = conn2.Close()
	if got := up2.wait(t); !bytes.Equal(got, rest) {
		t.Fatalf("resumed lane delivered %q, want %q", got, rest)
	}
	st := p.Stats()
	// One cut planned per direction (the s2c one never fires: this test
	// only writes), one executed.
	if st.CutsPlanned != 2 || st.CutsExecuted != 1 {
		t.Errorf("stats cuts planned/executed = %d/%d, want 2/1", st.CutsPlanned, st.CutsExecuted)
	}
	if st.Conns != 2 || st.Lanes != 1 {
		t.Errorf("stats conns/lanes = %d/%d, want 2/1", st.Conns, st.Lanes)
	}
}

// TestWriteCorruptionHitsPlannedOffsets pins corruption: the upstream
// sees exactly the compiled XOR masks at the compiled offsets, and the
// caller's buffer is never mutated.
func TestWriteCorruptionHitsPlannedOffsets(t *testing.T) {
	up := newRecorder(t)
	p, err := New(up.addr(), Config{Schedule: sched(t, "corrupt@0:2x1"), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	lane := p.getLane(0)
	if len(lane.c2s.events) == 0 {
		t.Fatal("full-intensity corrupt window compiled to no events")
	}
	span := int64(2 * DefaultBytesPerSecond)
	payload := make([]byte, span)
	conn, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	got := up.wait(t)
	if int64(len(got)) != span {
		t.Fatalf("upstream saw %d bytes, want %d", len(got), span)
	}
	for i := range payload {
		if payload[i] != 0 {
			t.Fatalf("caller's buffer mutated at offset %d", i)
		}
	}
	want := make([]byte, span)
	for _, ev := range lane.c2s.events {
		if ev.kind == opCorrupt && ev.off < span {
			want[ev.off] ^= ev.mask
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("upstream bytes do not match the compiled corruption plan")
	}
	if st := p.Stats(); st.CorruptDone == 0 || st.CorruptDone > st.CorruptPlanned {
		t.Errorf("corrupt done/planned = %d/%d", st.CorruptDone, st.CorruptPlanned)
	}
}

// TestReadCutTruncatesStream pins the s2c direction: a cut compiled on
// the read side truncates the inbound stream at its offset.
func TestReadCutTruncatesStream(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	p, err := New(l.Addr().String(), Config{Schedule: sched(t, "burst@0:1x1"), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lane := p.getLane(0)
	if len(lane.s2c.events) != 1 {
		t.Fatalf("expected one s2c cut, got %+v", lane.s2c.events)
	}
	cutAt := lane.s2c.events[0].off
	total := int(cutAt) + 700
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = conn.Write(make([]byte, total))
	}()
	conn, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(conn)
	if !errors.Is(rerr, ErrCut) {
		t.Fatalf("read past the cut returned %v, want ErrCut", rerr)
	}
	if int64(len(got)) != cutAt {
		t.Fatalf("read %d bytes before the cut, planned offset is %d", len(got), cutAt)
	}
}

// TestServeModeAssignsLanesInAcceptOrder drives the listener front end:
// two accepted connections map to lanes 0 and 1 and both round-trip
// through a transparent schedule to an echo upstream.
func TestServeModeAssignsLanesInAcceptOrder(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			conn, err := echo.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(conn, conn)
				_ = conn.Close()
			}()
		}
	}()
	p, err := New(echo.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(front) }()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", front.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("ping through the shim")
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		got, err := io.ReadAll(conn)
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("conn %d echoed %q (%v), want %q", i, got, err, msg)
		}
		_ = conn.Close()
	}
	_ = front.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after listener close, want nil", err)
	}
	if st := p.Stats(); st.Lanes != 2 {
		t.Errorf("accept-order lanes = %d, want 2", st.Lanes)
	}
}

// TestSplitsAndStallsPaceTheStream pins that csidrop compiles to write
// splits and stall windows to pauses, both executed without data loss.
func TestSplitsAndStallsPaceTheStream(t *testing.T) {
	up := newRecorder(t)
	p, err := New(up.addr(), Config{
		Schedule:   sched(t, "csidrop@0:2x1;stall@0:2x1"),
		Seed:       5,
		StallScale: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lane := p.getLane(0)
	splits, stalls := 0, 0
	for _, ev := range lane.c2s.events {
		switch ev.kind {
		case opSplit:
			splits++
		case opStall:
			stalls++
		}
	}
	if splits == 0 || stalls == 0 {
		t.Fatalf("compiled %d splits and %d stalls, want both nonzero", splits, stalls)
	}
	span := 2 * DefaultBytesPerSecond
	payload := make([]byte, int(span))
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	conn, err := p.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	if got := up.wait(t); !bytes.Equal(got, payload) {
		t.Fatalf("paced stream arrived altered: %d bytes, want %d intact", len(got), len(payload))
	}
	st := p.Stats()
	if st.SplitsExecuted == 0 || st.StallsExecuted == 0 {
		t.Errorf("splits/stalls executed = %d/%d, want both nonzero", st.SplitsExecuted, st.StallsExecuted)
	}
}

// TestRejectsInvalidSchedule pins up-front validation.
func TestRejectsInvalidSchedule(t *testing.T) {
	bad := &faults.Schedule{Windows: []faults.Window{{Kind: faults.Burst, Start: 2, End: 1, Intensity: 1}}}
	if _, err := New("unused:0", Config{Schedule: bad}); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}
