package serve_test

import (
	"bytes"
	"testing"

	"repro/internal/csi"
	"repro/internal/serve"
)

// FuzzWireProtocol throws arbitrary lines at every wbserve/1 parser the
// TCP front end exposes to the network. Two properties: no input may
// panic a parser, and any line a parser accepts must survive a
// format→reparse round trip — ParseHello/ParseResume reproduce the same
// values, ParseMeasurement reaches a canonical form that re-formats
// byte-identically (floats travel as strconv 'g'/-1, so NaN-safe byte
// comparison is the right equality). The checked-in corpus under
// testdata/fuzz seeds the malformed shapes that found real bugs
// (non-finite hello floats admitted past a "<= 0" check — see
// SessionParams.Validate).
func FuzzWireProtocol(f *testing.F) {
	seeds := []string{
		// Well-formed lines, one per verb.
		"hello wbserve/1 csi 100 1 20 2 4",
		"hello wbserve/1 rssi 100 1.5 20 2 0 prio=9 resume=1",
		"resume wbserve/1 0123456789abcdef 12",
		"m 1.25 10.1 9.8 1 2 3 4 5 6 7 8",
		"flush",
		"ok 00000042 token=00deadbeef001122 seq=17 fin=0",
		"ok 7",
		"bit 3 1 75",
		"done 10100110101001101010 corr=0.93 mpb=9.5",
		"done - corr=0 mpb=0",
		"error serve: session poisoned",
		"reject retry-after=2.5 serve: at session capacity",
		// Malformed: wrong magic, bad floats, oversized fields, truncation.
		"hello wbserve/2 csi 100 1 20 2 4",
		"hello wbserve/1 csi nan 1 20 2 4",
		"hello wbserve/1 csi +Inf 1 20 2 4",
		"hello wbserve/1 csi 100 1 999999999 2 4",
		"hello wbserve/1 csi 100 1 20 2 4 prio=99",
		"hello wbserve/1 csi 100 1 20 2 4 unknown=1",
		"resume wbserve/1 xyz 5",
		"resume wbserve/1 0123456789ABCDEF 5",
		"resume wbserve/1 0123456789abcdef 999999999999999999",
		"resume wbserve/1 0123456789abcdef -1",
		"m 1e309 1 2",
		"m",
		"ok 00000042 token=",
		"done 1012 corr=0 mpb=0",
		"reject retry-after=x overloaded",
		"",
		"hello",
		"\x00\xff hello wbserve/1",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if p, err := serve.ParseHello(line); err == nil {
			rt, err2 := serve.ParseHello(serve.AppendHello(nil, p))
			if err2 != nil {
				t.Fatalf("accepted hello %q did not reparse: %v", line, err2)
			}
			if rt != p {
				t.Fatalf("hello round trip changed %+v to %+v", p, rt)
			}
		}
		if tok, have, err := serve.ParseResume(line); err == nil {
			tok2, have2, err2 := serve.ParseResume(serve.AppendResume(nil, tok, have))
			if err2 != nil {
				t.Fatalf("accepted resume %q did not reparse: %v", line, err2)
			}
			if tok2 != tok || have2 != have {
				t.Fatalf("resume round trip changed (%q,%d) to (%q,%d)", tok, have, tok2, have2)
			}
		}
		m := csi.Measurement{
			RSSI: make([]float64, 2),
			CSI:  [][]float64{make([]float64, 4), make([]float64, 4)},
		}
		if err := serve.ParseMeasurement(line, &m); err == nil {
			canon := serve.AppendMeasurement(nil, m)
			m2 := csi.Measurement{
				RSSI: make([]float64, 2),
				CSI:  [][]float64{make([]float64, 4), make([]float64, 4)},
			}
			if err2 := serve.ParseMeasurement(canon, &m2); err2 != nil {
				t.Fatalf("accepted m line %q did not reparse: %v", line, err2)
			}
			if again := serve.AppendMeasurement(nil, m2); !bytes.Equal(canon, again) {
				t.Fatalf("m canonical form unstable: %q then %q", canon, again)
			}
		}
		_, _ = serve.ParseResponse(line)
	})
}
