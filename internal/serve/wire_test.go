package serve

import (
	"math"
	"strings"
	"testing"

	"repro/internal/csi"
	"repro/internal/uplink"
)

func TestHelloRoundTrip(t *testing.T) {
	want := SessionParams{
		Mode:        uplink.StreamCSI,
		BitRate:     1000.0 / 3,
		Start:       1.25,
		PayloadLen:  64,
		Antennas:    3,
		Subchannels: 30,
	}
	line := AppendHello(nil, want)
	got, err := ParseHello(line)
	if err != nil {
		t.Fatalf("ParseHello(%q): %v", line, err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
	want.Mode = uplink.StreamRSSI
	want.Subchannels = 0
	if got, err = ParseHello(AppendHello(nil, want)); err != nil || got != want {
		t.Errorf("rssi round trip: got %+v, %v", got, err)
	}
}

func TestParseHelloErrors(t *testing.T) {
	bad := []string{
		"",
		"hi wbserve/1 csi 100 1 8 2 4",
		"hello wbserve/2 csi 100 1 8 2 4",
		"hello wbserve/1 dsss 100 1 8 2 4",
		"hello wbserve/1 csi x 1 8 2 4",
		"hello wbserve/1 csi 100 1 8 2",
		"hello wbserve/1 csi 100 1 8 2 4 junk",
		"hello wbserve/1 csi -5 1 8 2 4",
		"hello wbserve/1 csi 100 1 8 2 0", // CSI needs sub-channels
	}
	for _, line := range bad {
		if _, err := ParseHello([]byte(line)); err == nil {
			t.Errorf("ParseHello(%q) accepted", line)
		}
	}
}

func TestMeasurementRoundTripExact(t *testing.T) {
	// Awkward floats must survive the wire byte-exactly; the serving
	// equivalence criterion depends on it.
	src := csi.Measurement{
		Timestamp: 1.0000000000000002,
		RSSI:      []float64{-51.25, math.Pi},
		CSI: [][]float64{
			{1.0 / 3, 17.000000000000004},
			{2.220446049250313e-16, 12345.678901234567},
		},
	}
	line := AppendMeasurement(nil, src)
	got := csi.Measurement{
		RSSI: make([]float64, 2),
		CSI:  [][]float64{make([]float64, 2), make([]float64, 2)},
	}
	if err := ParseMeasurement(line, &got); err != nil {
		t.Fatalf("ParseMeasurement(%q): %v", line, err)
	}
	if got.Timestamp != src.Timestamp {
		t.Errorf("timestamp %v != %v", got.Timestamp, src.Timestamp)
	}
	for a := range src.RSSI {
		if got.RSSI[a] != src.RSSI[a] {
			t.Errorf("rssi[%d] %v != %v", a, got.RSSI[a], src.RSSI[a])
		}
		for k := range src.CSI[a] {
			if got.CSI[a][k] != src.CSI[a][k] {
				t.Errorf("csi[%d][%d] %v != %v", a, k, got.CSI[a][k], src.CSI[a][k])
			}
		}
	}
}

func TestParseMeasurementShapeErrors(t *testing.T) {
	shaped := func() *csi.Measurement {
		return &csi.Measurement{RSSI: make([]float64, 1), CSI: [][]float64{make([]float64, 2)}}
	}
	if err := ParseMeasurement([]byte("m 1 2 3 4"), shaped()); err != nil {
		t.Errorf("exact field count rejected: %v", err)
	}
	if err := ParseMeasurement([]byte("m 1 2 3"), shaped()); err == nil {
		t.Error("short m line accepted")
	}
	if err := ParseMeasurement([]byte("m 1 2 3 4 5"), shaped()); err == nil {
		t.Error("long m line accepted")
	}
	if err := ParseMeasurement([]byte("m 1 2 nope 4"), shaped()); err == nil {
		t.Error("non-numeric field accepted")
	}
	if err := ParseMeasurement([]byte("x 1 2 3 4"), shaped()); err == nil {
		t.Error("non-m line accepted")
	}
}

func TestParseResponseKinds(t *testing.T) {
	r, err := ParseResponse([]byte("ok 42"))
	if err != nil || r.Kind != RespOK || r.ID != 42 {
		t.Errorf("ok: %+v, %v", r, err)
	}
	r, err = ParseResponse([]byte("reject serve: at session capacity"))
	if err != nil || r.Kind != RespReject || !strings.Contains(r.Reason, "capacity") {
		t.Errorf("reject: %+v, %v", r, err)
	}
	r, err = ParseResponse([]byte("bit 7 1 12"))
	if err != nil || r.Kind != RespBit || r.Bit.Index != 7 || !r.Bit.Bit || r.Bit.Measurements != 12 {
		t.Errorf("bit: %+v, %v", r, err)
	}
	r, err = ParseResponse([]byte("done 0110 corr=0.875 mpb=9.5"))
	if err != nil || r.Kind != RespDone || r.Bits != "0110" || r.Corr != 0.875 || r.MPB != 9.5 {
		t.Errorf("done: %+v, %v", r, err)
	}
	r, err = ParseResponse([]byte("done - corr=0 mpb=0"))
	if err != nil || r.Bits != "" {
		t.Errorf("empty done: %+v, %v", r, err)
	}
	r, err = ParseResponse([]byte("error uplink: push 3 timestamp goes backwards"))
	if err != nil || r.Kind != RespError || !strings.Contains(r.Reason, "backwards") {
		t.Errorf("error: %+v, %v", r, err)
	}
	for _, bad := range []string{"", "what 1", "ok", "bit 1", "done 012 corr=1 mpb=1", "done 01 huh=2"} {
		if _, err := ParseResponse([]byte(bad)); err == nil {
			t.Errorf("ParseResponse(%q) accepted", bad)
		}
	}
}
