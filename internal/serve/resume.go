package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/uplink"
)

// Session resume (DESIGN.md §13). A session opened with
// SessionParams.Resumable gets a stable token and a bounded checkpoint:
// every emitted bit and the final result are recorded in a resumeSink
// wrapped around the transport sink. When the transport dies mid-stream
// the session parks instead of finishing — the decoder keeps its frame
// cursor, the slot ring keeps its pooled arena, and the recorded bits
// wait. A client reconnecting with "resume <token> <bits-received>"
// re-attaches, has exactly the missed suffix replayed, and continues
// byte-identical to an uninterrupted run. Parked checkpoints are bounded
// two ways: SweepResume evicts by TTL against a caller-supplied clock
// (the daemon's ticker, a test's fake time), and MaxParked evicts the
// oldest checkpoint on capacity pressure, both with eviction accounting.

// tokenLen is the fixed width of a resume token in hex digits; fixed
// width keeps resumable ok lines length-stable, which the chaos proxy's
// byte-offset schedules rely on.
const tokenLen = 16

// mintToken derives a stable resume token from the server's seed, the
// session id, and a collision nonce (FNV-64a over the three words).
func mintToken(seed, id, nonce uint64) string {
	h := uint64(1469598103934665603)
	for _, v := range [3]uint64{seed, id, nonce} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	const hexdigits = "0123456789abcdef"
	var b [tokenLen]byte
	for i := range b {
		b[i] = hexdigits[(h>>(60-4*i))&0xf]
	}
	return string(b[:])
}

// registerResumableLocked mints the session's token and enters it in
// the resume table. Caller holds srv.mu.
func (srv *Server) registerResumableLocked(s *Session) {
	tok := mintToken(srv.cfg.TokenSeed, s.id, 0)
	for nonce := uint64(1); ; nonce++ {
		if _, taken := srv.resumable[tok]; !taken {
			break
		}
		tok = mintToken(srv.cfg.TokenSeed, s.id, nonce)
	}
	s.token = tok
	srv.resumable[tok] = s
}

// resumeSink wraps a resumable session's transport sink. It records
// everything the worker emits (the checkpoint) and forwards to the
// currently attached inner sink; a forward failure detaches the sink and
// parks the checkpoint instead of poisoning the session — a dead client
// is a cut, not a decode error.
type resumeSink struct {
	s *Session

	mu    sync.Mutex
	inner Sink // currently attached transport sink; nil while parked
	bits  []uplink.BitDecision
	final bool
	res   *uplink.Result
	err   error
}

// EmitBits implements Sink on the session worker's hot path (a wblint
// hot-path root): record into the preallocated checkpoint, forward to
// the attached sink if any. Always returns nil — transport loss must
// not poison a resumable session.
func (rs *resumeSink) EmitBits(bits []uplink.BitDecision) error {
	rs.mu.Lock()
	rs.bits = append(rs.bits, bits...)
	inner := rs.inner
	rs.mu.Unlock()
	if inner == nil {
		return nil
	}
	if inner.EmitBits(bits) != nil {
		if rs.drop(inner) {
			rs.s.srv.parkDetached(rs.s)
		}
	}
	return nil
}

// EmitResult implements Sink: record the final outcome, forward it to
// the attached sink if any. The checkpoint stays replayable afterwards
// (sessionClosed parks it), so a client cut between the server writing
// the result and reading it can resume and re-receive it.
func (rs *resumeSink) EmitResult(res *uplink.Result, err error) {
	rs.mu.Lock()
	rs.final = true
	rs.res = res
	rs.err = err
	inner := rs.inner
	rs.mu.Unlock()
	if inner != nil {
		inner.EmitResult(res, err)
	}
}

// drop detaches owner if it is still the attached sink, reporting
// whether this call detached it.
func (rs *resumeSink) drop(owner Sink) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.inner != owner || owner == nil {
		return false
	}
	rs.inner = nil
	return true
}

// isFinal reports whether the final result has been recorded.
func (rs *resumeSink) isFinal() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.final
}

// detachFrom parks the session's checkpoint if sink is still the
// attached sink (the transport handler's EOF path). Idempotent against
// the worker-side detach in EmitBits.
func (s *Session) detachFrom(sink Sink) {
	if s.rs != nil && s.rs.drop(sink) {
		s.srv.parkDetached(s)
	}
}

// stolen reports whether a newer connection has resumed the session
// since the caller attached under gen.
func (s *Session) stolen(gen uint32) bool { return gen != s.gen.Load() }

// AttachInfo describes the checkpoint state a resuming client attaches
// to.
type AttachInfo struct {
	// Consumed is how many measurements the session has accepted; the
	// client skips that many from its replay buffer.
	Consumed int64
	// Final reports the result is already recorded: it is replayed
	// during Attach and the session needs no further input.
	Final bool
}

// Attach re-attaches a sink to a resumable session after ResumeSession:
// it replays the bits past haveBits (the client's count of received bit
// lines) and, if the result is already recorded, replays that too. The
// onAttach callback runs under the checkpoint lock before the replay —
// the TCP front end writes its ok line there, so the acknowledgment and
// the replayed lines cannot interleave with fresh worker output. A
// replay write failure is a cut, not an error: the checkpoint parks
// again and Attach returns cleanly for the next resume.
func (s *Session) Attach(sink Sink, haveBits int, onAttach func(AttachInfo)) (AttachInfo, error) {
	rs := s.rs
	if rs == nil {
		return AttachInfo{}, fmt.Errorf("serve: session is not resumable")
	}
	if sink == nil {
		return AttachInfo{}, fmt.Errorf("serve: nil sink")
	}
	rs.mu.Lock()
	info := AttachInfo{Consumed: s.consumed.Load(), Final: rs.final}
	if haveBits > len(rs.bits) {
		rs.inner = nil
		n := len(rs.bits)
		rs.mu.Unlock()
		s.srv.parkDetached(s)
		return info, fmt.Errorf("serve: resume claims %d bits received, only %d were emitted", haveBits, n)
	}
	if onAttach != nil {
		onAttach(info)
	}
	if haveBits < len(rs.bits) {
		missed := rs.bits[haveBits:]
		if sink.EmitBits(missed) != nil {
			rs.inner = nil
			rs.mu.Unlock()
			s.srv.parkDetached(s)
			return info, nil
		}
		s.srv.met.replayedBits.Add(int64(len(missed)))
	}
	if rs.final {
		sink.EmitResult(rs.res, rs.err)
		rs.inner = nil
		rs.mu.Unlock()
		s.srv.parkDetached(s)
		return info, nil
	}
	rs.inner = sink
	rs.mu.Unlock()
	// Between ResumeSession and here the worker may have failed a write
	// to the old dead sink and re-parked the checkpoint; now that a live
	// sink is attached, clear the park state so a sweep cannot evict a
	// session that is actively streaming.
	srv := s.srv
	srv.mu.Lock()
	if s.detached && srv.resumable[s.token] == s {
		s.detached = false
		s.parkedAt = time.Time{}
		srv.nParked--
	}
	srv.mu.Unlock()
	return info, nil
}

// ResumeSession re-claims a resumable session by token, installing c as
// the transport abort should force-close (nil for in-process callers).
// It bumps the producer generation and fences the previous producer out,
// so the Consumed() the subsequent Attach reports is exact. The caller
// owns re-attaching a sink via Attach.
func (srv *Server) ResumeSession(token string, c closer) (*Session, uint32, error) {
	srv.mu.Lock()
	if srv.state != stateRunning {
		srv.met.rejectedDraining.Add(1)
		srv.mu.Unlock()
		return nil, 0, ErrDraining
	}
	s, ok := srv.resumable[token]
	if !ok {
		srv.met.resumeUnknown.Add(1)
		srv.mu.Unlock()
		return nil, 0, ErrUnknownResume
	}
	if s.detached {
		s.detached = false
		s.parkedAt = time.Time{}
		srv.nParked--
	}
	srv.met.resumed.Add(1)
	srv.mu.Unlock()
	// Drain the previous producer before snapshotting the cursor. A cut
	// connection's FIN arrives behind every byte the wire delivered, so
	// waiting for the old handler's natural EOF exit makes Consumed()
	// count exactly the complete lines that made it across — a number
	// the chaos determinism contract depends on. Force-closing instead
	// would discard a scheduling-dependent amount of kernel-buffered
	// data. The bound only fires for a peer that vanished without FIN
	// (or a live connection being hijacked); past it the transport is
	// closed and the handler's exit awaited.
	if ch := s.producerExit(); ch != nil {
		timer := time.NewTimer(srv.cfg.resumeDrainWait())
		select {
		case <-ch:
		case <-timer.C:
			if old := s.swapCloser(nil); old != nil {
				_ = old.Close()
			}
			<-ch
		}
		timer.Stop()
	}
	gen := s.gen.Add(1)
	// Steal the transport; the pmu round-trip guarantees any straggling
	// in-process push has completed (or will fail the generation check),
	// so the consumed count the caller reads next cannot move under a
	// stale producer.
	if old := s.swapCloser(c); old != nil {
		_ = old.Close()
	}
	s.pmu.Lock()
	_ = gen // fence only: producers serialize on pmu
	s.pmu.Unlock()
	return s, gen, nil
}

// parkDetached parks a session's checkpoint (transport gone), evicting
// the oldest checkpoints if the parked population overflows MaxParked.
func (srv *Server) parkDetached(s *Session) {
	srv.mu.Lock()
	srv.parkLocked(s)
	evicted := srv.evictOverflowLocked()
	srv.mu.Unlock()
	for _, e := range evicted {
		srv.evictSession(e, false)
	}
}

// parkLocked stamps the park state on a resumable session still present
// in the resume table. Idempotent; caller holds srv.mu.
func (srv *Server) parkLocked(s *Session) {
	if s.token == "" || srv.resumable[s.token] != s || s.detached {
		return
	}
	s.detached = true
	srv.parkSeq++
	s.parkOrd = srv.parkSeq
	if srv.cfg.Now != nil {
		s.parkedAt = srv.cfg.Now()
	}
	srv.nParked++
	srv.met.parkedTotal.Add(1)
}

// evictOverflowLocked removes oldest-parked checkpoints from the resume
// table until the parked population fits MaxParked, returning them for
// the caller to finish off outside srv.mu.
func (srv *Server) evictOverflowLocked() []*Session {
	if srv.nParked <= srv.cfg.maxParked() {
		return nil
	}
	evicted := make([]*Session, 0, srv.nParked-srv.cfg.maxParked())
	for srv.nParked > srv.cfg.maxParked() {
		var oldest *Session
		for _, s := range srv.resumable {
			if !s.detached {
				continue
			}
			if oldest == nil || s.parkOrd < oldest.parkOrd {
				oldest = s
			}
		}
		if oldest == nil {
			break
		}
		delete(srv.resumable, oldest.token)
		srv.nParked--
		evicted = append(evicted, oldest)
	}
	return evicted
}

// evictSession retires an evicted checkpoint: accounting, and — if the
// stream never finished — a forced end with the ErrCheckpointExpired
// verdict so its worker and slot ring are reclaimed.
func (srv *Server) evictSession(s *Session, byTTL bool) {
	if byTTL {
		srv.met.evictedTTL.Add(1)
	} else {
		srv.met.evictedCapacity.Add(1)
	}
	if s.rs.isFinal() {
		return
	}
	s.setErr(ErrCheckpointExpired)
	s.abort()
	s.Finish()
}

// SweepResume evicts parked checkpoints whose age at now meets or
// exceeds ResumeTTL, returning how many were evicted. The server never
// reads a clock itself: the daemon calls this on a ticker with time.Now,
// deterministic tests call it with fabricated times. Checkpoints parked
// under a nil Config.Now have no timestamp and are only ever evicted by
// capacity.
func (srv *Server) SweepResume(now time.Time) int {
	ttl := srv.cfg.resumeTTL()
	srv.mu.Lock()
	evicted := make([]*Session, 0, 8)
	for tok, s := range srv.resumable {
		if s.detached && !s.parkedAt.IsZero() && now.Sub(s.parkedAt) >= ttl {
			delete(srv.resumable, tok)
			srv.nParked--
			evicted = append(evicted, s)
		}
	}
	srv.mu.Unlock()
	for _, s := range evicted {
		srv.evictSession(s, true)
	}
	return len(evicted)
}

// ParkedCheckpoints returns the number of currently parked (detached)
// resumable checkpoints.
func (srv *Server) ParkedCheckpoints() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.nParked
}
