package serve_test

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/uplink"
)

// Synthetic capture shape shared by the serving tests: small enough that
// 64 race-instrumented sessions stay fast, strong enough coupling that
// the decode is meaningful.
const (
	testAntennas = 2
	testSubs     = 4
	testBitDur   = 0.01
	testStart    = 1.0
)

// synthSeries generates one backscatter capture of the payload, same
// physics as the uplink package's test synthesizer: per-packet AGC gain,
// per-sub-channel noise, a fraction of well-coupled channels.
func synthSeries(t *testing.T, payload []bool, seed int64) *csi.Series {
	t.Helper()
	mod, err := tag.NewModulator(tag.FrameBits(payload), testStart, testBitDur)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rng.New(seed)
	base := make([][]float64, testAntennas)
	coupling := make([][]float64, testAntennas)
	for a := range base {
		base[a] = make([]float64, testSubs)
		coupling[a] = make([]float64, testSubs)
		for k := range base[a] {
			base[a][k] = 5 + 10*rnd.Float64()
			c := 0.02 * (rnd.Float64() - 0.5)
			if rnd.Float64() < 0.6 {
				c = 0.25 * (0.5 + rnd.Float64())
				if rnd.Bool() {
					c = -c
				}
			}
			coupling[a][k] = c
		}
	}
	s := &csi.Series{}
	for ts := 0.5; ts < mod.End()+0.2; ts += 0.001 * (1 + 0.3*(rnd.Float64()-0.5)) {
		state := 0.0
		if mod.StateAt(ts) {
			state = 1
		}
		agc := 1 + rnd.Gaussian(0, 0.01)
		m := csi.Measurement{
			Timestamp: ts,
			CSI:       make([][]float64, testAntennas),
			RSSI:      make([]float64, testAntennas),
		}
		for a := 0; a < testAntennas; a++ {
			m.CSI[a] = make([]float64, testSubs)
			var power float64
			for k := 0; k < testSubs; k++ {
				amp := base[a][k] * (1 + coupling[a][k]*state) * agc *
					(1 + rnd.Gaussian(0, 0.005))
				m.CSI[a][k] = amp
				power += amp * amp
			}
			m.RSSI[a] = power
		}
		s.Append(m)
	}
	return s
}

// batchDecode is the reference the serving layer must match bit for bit.
func batchDecode(t *testing.T, s *csi.Series, payloadLen int) *uplink.Result {
	t.Helper()
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(testBitDur))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.DecodeCSI(s, testStart, payloadLen)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testParams(payloadLen int) serve.SessionParams {
	return serve.SessionParams{
		Mode:        uplink.StreamCSI,
		BitRate:     1 / testBitDur,
		Start:       testStart,
		PayloadLen:  payloadLen,
		Antennas:    testAntennas,
		Subchannels: testSubs,
	}
}

func randomPayload(n int, seed int64) []bool {
	rnd := rng.New(seed)
	out := make([]bool, n)
	for i := range out {
		out[i] = rnd.Bool()
	}
	return out
}

// memSink collects a session's output in memory.
type memSink struct {
	mu   sync.Mutex
	bits []uplink.BitDecision
	res  *uplink.Result
	err  error
	done chan struct{}
}

func newMemSink() *memSink { return &memSink{done: make(chan struct{})} }

func (ms *memSink) EmitBits(b []uplink.BitDecision) error {
	ms.mu.Lock()
	ms.bits = append(ms.bits, b...)
	ms.mu.Unlock()
	return nil
}

func (ms *memSink) EmitResult(r *uplink.Result, err error) {
	ms.mu.Lock()
	ms.res, ms.err = r, err
	ms.mu.Unlock()
	close(ms.done)
}

// feed pushes a whole series through a session and finishes it.
func feed(t *testing.T, s *serve.Session, series *csi.Series) {
	t.Helper()
	for _, m := range series.Measurements {
		if err := s.Push(m); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	s.Finish()
}

func TestSessionMatchesBatch(t *testing.T) {
	payload := randomPayload(16, 3)
	series := synthSeries(t, payload, 3)
	want := batchDecode(t, series, len(payload))

	srv := serve.NewServer(serve.Config{})
	sink := newMemSink()
	sess, err := srv.Open(testParams(len(payload)), sink)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sess, series)
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Errorf("served result differs from batch:\n  got  %+v\n  want %+v", res, want)
	}
	// The incrementally emitted bits reassemble the same payload.
	if len(sink.bits) != len(payload) {
		t.Fatalf("emitted %d bits, want %d", len(sink.bits), len(payload))
	}
	for _, b := range sink.bits {
		if b.Bit != want.Payload[b.Index] {
			t.Errorf("bit %d emitted as %v, batch decoded %v", b.Index, b.Bit, want.Payload[b.Index])
		}
	}
	if got := srv.Stats().BitsServed; got != int64(len(payload)) {
		t.Errorf("BitsServed = %d, want %d", got, len(payload))
	}
}

// TestConcurrentSessionsMatchBatch is the core isolation property under
// the race detector: many sessions with different captures decode
// concurrently, and each is byte-identical to its own batch decode.
func TestConcurrentSessionsMatchBatch(t *testing.T) {
	const n = 16
	payloadLen := 12
	srv := serve.NewServer(serve.Config{MaxSessions: n, SessionBuffer: 32})
	type caseData struct {
		series *csi.Series
		want   *uplink.Result
	}
	cases := make([]caseData, n)
	for i := range cases {
		series := synthSeries(t, randomPayload(payloadLen, int64(i)), int64(i))
		cases[i] = caseData{series: series, want: batchDecode(t, series, payloadLen)}
	}
	var wg sync.WaitGroup
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink := newMemSink()
			sess, err := srv.Open(testParams(payloadLen), sink)
			if err != nil {
				t.Errorf("session %d: Open: %v", i, err)
				return
			}
			for _, m := range cases[i].series.Measurements {
				if err := sess.Push(m); err != nil {
					t.Errorf("session %d: Push: %v", i, err)
					return
				}
			}
			sess.Finish()
			res, err := sess.Result()
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if !reflect.DeepEqual(res, cases[i].want) {
				t.Errorf("session %d: served result differs from batch", i)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Accepted != n || st.Completed != n || st.Active != 0 {
		t.Errorf("stats = %+v, want %d accepted and completed, 0 active", st, n)
	}
}

func TestOverloadRejection(t *testing.T) {
	srv := serve.NewServer(serve.Config{MaxSessions: 2})
	p := testParams(8)
	a, err := srv.Open(p, newMemSink())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Open(p, newMemSink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(p, newMemSink()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("third Open = %v, want ErrOverloaded", err)
	}
	// Capacity frees as sessions end; nothing was queued meanwhile.
	a.Finish()
	<-a.Done()
	c, err := srv.Open(p, newMemSink())
	if err != nil {
		t.Fatalf("Open after a session ended: %v", err)
	}
	for _, s := range []*serve.Session{b, c} {
		s.Finish()
		<-s.Done()
	}
	st := srv.Stats()
	if st.RejectedOverload != 1 || st.Accepted != 3 || st.ActiveHighWater != 2 {
		t.Errorf("stats = %+v, want 1 rejection, 3 accepted, high-water 2", st)
	}
}

func TestInvalidParamsRejected(t *testing.T) {
	srv := serve.NewServer(serve.Config{})
	bad := testParams(8)
	bad.BitRate = -1
	if _, err := srv.Open(bad, newMemSink()); err == nil {
		t.Error("negative bit rate accepted")
	}
	if _, err := srv.Open(testParams(8), nil); err == nil {
		t.Error("nil sink accepted")
	}
	if st := srv.Stats(); st.RejectedBad != 1 {
		t.Errorf("RejectedBad = %d, want 1", st.RejectedBad)
	}
}

// blockSink parks EmitBits until released, to hold a session's worker
// still while the test fills the slot ring.
type blockSink struct {
	memSink
	entered chan struct{}
	release chan struct{}
}

func newBlockSink() *blockSink {
	return &blockSink{
		memSink: memSink{done: make(chan struct{})},
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
}

func (bs *blockSink) EmitBits(b []uplink.BitDecision) error {
	select {
	case bs.entered <- struct{}{}:
	default:
	}
	<-bs.release
	return bs.memSink.EmitBits(b)
}

// TestTryPushBackpressure pins the bounded-buffer contract: with the
// worker held still, TryPush fills exactly the slot ring and then fails
// with ErrBufferFull instead of growing anything.
func TestTryPushBackpressure(t *testing.T) {
	const nslots = 8
	payload := randomPayload(8, 7)
	series := synthSeries(t, payload, 7)
	srv := serve.NewServer(serve.Config{SessionBuffer: nslots})
	sink := newBlockSink()
	sess, err := srv.Open(testParams(len(payload)), sink)
	if err != nil {
		t.Fatal(err)
	}
	// Stream the whole capture; the frame closes mid-series and the
	// worker parks inside EmitBits.
	for _, m := range series.Measurements {
		if err := sess.Push(m); err != nil {
			t.Fatalf("Push: %v", err)
		}
		select {
		case <-sink.entered:
			goto parked
		default:
		}
	}
	t.Fatal("frame never closed; synthetic capture too short")
parked:
	// The parked worker holds no slot, so at most nslots TryPushes fit
	// (fewer if pushes were still queued when the frame closed) before
	// the ring rejects instead of growing.
	extra := series.Measurements[series.Len()-1]
	full := false
	for i := 0; i < nslots+1; i++ {
		err := sess.TryPush(extra)
		if errors.Is(err, serve.ErrBufferFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatalf("TryPush: %v", err)
		}
	}
	if !full {
		t.Fatalf("ring accepted %d measurements without rejecting", nslots+1)
	}
	close(sink.release)
	sess.Finish()
	if _, err := sess.Result(); err != nil {
		t.Fatalf("Result after backpressure: %v", err)
	}
	st := srv.Stats()
	if st.BufferFull == 0 {
		t.Error("BufferFull counter never moved")
	}
	if st.QueueHighWater != nslots {
		t.Errorf("QueueHighWater = %d, want %d", st.QueueHighWater, nslots)
	}
}

// TestPoisonIsolation pins the containment property: a stream violating
// the timestamp contract fails alone, while a well-formed neighbor
// decodes byte-identically to batch.
func TestPoisonIsolation(t *testing.T) {
	payload := randomPayload(12, 11)
	series := synthSeries(t, payload, 11)
	want := batchDecode(t, series, len(payload))
	srv := serve.NewServer(serve.Config{})

	badSink := newMemSink()
	bad, err := srv.Open(testParams(len(payload)), badSink)
	if err != nil {
		t.Fatal(err)
	}
	goodSink := newMemSink()
	good, err := srv.Open(testParams(len(payload)), goodSink)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Backwards timestamps: the decoder poisons the stream. Pushes
		// racing the worker's discovery may succeed or fail; both are
		// fine — the sticky error must come out of Result.
		for i, m := range series.Measurements {
			m.Timestamp = float64(series.Len() - i)
			if bad.Push(m) != nil {
				break
			}
		}
		bad.Finish()
	}()
	go func() {
		defer wg.Done()
		for _, m := range series.Measurements {
			if err := good.Push(m); err != nil {
				t.Errorf("good session Push: %v", err)
				return
			}
		}
		good.Finish()
	}()
	wg.Wait()

	if _, err := bad.Result(); err == nil {
		t.Error("backwards stream completed without error")
	}
	if badSink.err == nil {
		t.Error("poison was not delivered on the sink")
	}
	res, err := good.Result()
	if err != nil {
		t.Fatalf("good session: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("good session's result differs from batch next to a poisoned neighbor")
	}
	if st := srv.Stats(); st.Poisoned != 1 {
		t.Errorf("Poisoned = %d, want 1", st.Poisoned)
	}
}

func TestShapeViolationPoisons(t *testing.T) {
	srv := serve.NewServer(serve.Config{})
	sink := newMemSink()
	sess, err := srv.Open(testParams(8), sink)
	if err != nil {
		t.Fatal(err)
	}
	m := csi.Measurement{Timestamp: 0.1, RSSI: make([]float64, testAntennas+1)}
	if err := sess.Push(m); err == nil {
		t.Fatal("wrong-shape measurement accepted")
	}
	if err := sess.Push(m); !errors.Is(err, serve.ErrSessionClosed) {
		t.Errorf("push after shape poison = %v, want ErrSessionClosed", err)
	}
	if _, err := sess.Result(); err == nil {
		t.Error("shape-poisoned session completed cleanly")
	}
	if st := srv.Stats(); st.Poisoned != 1 {
		t.Errorf("Poisoned = %d, want 1", st.Poisoned)
	}
}

// TestDrainFlushesInFrame pins the graceful half of shutdown: sessions
// mid-frame at Drain time deliver the same salvaged decode a truncated
// batch trace would.
func TestDrainFlushesInFrame(t *testing.T) {
	payload := randomPayload(12, 21)
	series := synthSeries(t, payload, 21)
	// Cut mid-frame: everything up to 60% of the capture.
	cutSeries := &csi.Series{Measurements: series.Measurements[:series.Len()*6/10]}
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(testBitDur))
	if err != nil {
		t.Fatal(err)
	}
	want, err := dec.DecodeCSI(cutSeries, testStart, len(payload))
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.NewServer(serve.Config{})
	sink := newMemSink()
	sess, err := srv.Open(testParams(len(payload)), sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range cutSeries.Measurements {
		if err := sess.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	// No Finish: Drain must finish it.
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatalf("drained session: %v", err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("drained session's salvage differs from the batch decode of the same prefix")
	}
	if _, err := srv.Open(testParams(len(payload)), newMemSink()); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("Open after Drain = %v, want ErrDraining", err)
	}
	// Idempotent: a second Drain reports the same clean outcome.
	if err := srv.Drain(); err != nil {
		t.Errorf("second Drain: %v", err)
	}
	st := srv.Stats()
	if st.RejectedDraining != 1 || st.Completed != 1 || st.Aborted != 0 {
		t.Errorf("stats = %+v, want 1 draining rejection, 1 completed, 0 aborted", st)
	}
}

// TestDrainDeadlineAborts pins the hard half: a worker held hostage by a
// sink that never returns cannot hold Drain past its deadline.
func TestDrainDeadlineAborts(t *testing.T) {
	payload := randomPayload(8, 31)
	series := synthSeries(t, payload, 31)
	srv := serve.NewServer(serve.Config{DrainTimeout: 50 * time.Millisecond})
	sink := newBlockSink()
	sess, err := srv.Open(testParams(len(payload)), sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range series.Measurements {
		if err := sess.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	<-sink.entered // worker parked in EmitBits
	err = srv.Drain()
	if err == nil {
		t.Fatal("Drain returned clean with a hostage worker")
	}
	if st := srv.Stats(); st.Aborted != 1 {
		t.Errorf("Aborted = %d, want 1", st.Aborted)
	}
	// A producer must be refused immediately after the abort.
	if err := sess.Push(series.Measurements[0]); !errors.Is(err, serve.ErrSessionClosed) {
		t.Errorf("Push after abort = %v, want ErrSessionClosed", err)
	}
	close(sink.release) // let the leaked worker retire
	<-sess.Done()
}

func TestPublishMetrics(t *testing.T) {
	payload := randomPayload(8, 41)
	series := synthSeries(t, payload, 41)
	srv := serve.NewServer(serve.Config{MaxSessions: 1})
	sink := newMemSink()
	sess, err := srv.Open(testParams(len(payload)), sink)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(testParams(len(payload)), newMemSink()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatal("second session admitted past MaxSessions=1")
	}
	feed(t, sess, series)
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.PublishMetrics(reg)
	if got := reg.Counter("serve.sessions.accepted").Value(); got != 1 {
		t.Errorf("serve.sessions.accepted = %d, want 1", got)
	}
	if got := reg.Counter("serve.sessions.rejected_overload").Value(); got != 1 {
		t.Errorf("serve.sessions.rejected_overload = %d, want 1", got)
	}
	if got := reg.Counter("serve.bits_served").Value(); got != int64(len(payload)) {
		t.Errorf("serve.bits_served = %d, want %d", got, len(payload))
	}
	if got := reg.Gauge("serve.sessions.active").Max(); got != 1 {
		t.Errorf("serve.sessions.active max = %v, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(sb.String(), "serve.sessions.accepted") {
		t.Error("published metrics missing from the JSON snapshot")
	}
}
