// Package serve is the concurrent decode-serving layer: it multiplexes
// many simultaneous measurement streams — each one tag transmission being
// captured somewhere — over the streaming decode core, the step from "a
// helper decoding one tag" (the paper's single-reader prototype) to a
// service shape that can sit behind heavy traffic.
//
// One Session runs one uplink.StreamDecoder (whose frame arena lives in
// the shared pooled dsp scratch, so a thousand sessions reuse the same
// buffers frame after frame) fed through a fixed ring of preallocated
// measurement slots by a dedicated worker goroutine. The layer is
// production-shaped by construction:
//
//   - Bounded admission. Open rejects with ErrOverloaded once MaxSessions
//     are active and with ErrDraining during shutdown — overload is an
//     explicit refusal, never queue growth.
//   - Bounded per-session buffering. The slot ring holds SessionBuffer
//     measurements; TryPush rejects with ErrBufferFull when it is full,
//     and the blocking Push waits for a slot, which is what turns into
//     TCP backpressure at the transport (the reader stops reading, the
//     client's sends stall). Nothing ever buffers beyond the ring.
//   - Poison containment. A malformed stream (backwards timestamps, shape
//     drift) poisons only its own session: the error is delivered on that
//     session's sink and every other session decodes on, bit-identical to
//     what it would have produced alone.
//   - Graceful drain. Drain stops admission, finishes every in-frame
//     session (flushing partial frames exactly like the batch decoders
//     do at end of trace), and force-aborts whatever is left at the hard
//     deadline.
//   - Deterministic instrumentation. Counters are atomics internally and
//     publish into an internal/obs registry on demand (obs registries are
//     single-goroutine by contract, so the concurrent layer cannot write
//     them directly).
//
// The wall clock enters only through Config.Now, injected by the daemon
// (cmd/wbserved passes time.Now); the library itself never reads it, so
// tests run deterministic and wblint's DT001 holds by construction.
// See DESIGN.md §12 for the session lifecycle and the drain state
// machine, and cmd/wbserved / cmd/wbload for the daemon and the
// load-replay client.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/uplink"
)

// Rejection and lifecycle errors. Open and Push return these wrapped or
// verbatim; transports map them onto wire-level reject reasons.
var (
	// ErrOverloaded rejects an Open when MaxSessions are already active.
	ErrOverloaded = errors.New("serve: at session capacity")
	// ErrDraining rejects an Open during shutdown.
	ErrDraining = errors.New("serve: draining")
	// ErrBufferFull rejects a TryPush when the session's slot ring is full.
	ErrBufferFull = errors.New("serve: session buffer full")
	// ErrSessionClosed rejects a Push after Finish or an abort.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrStalled is the sticky verdict of a session the watchdog aborted
	// because its sink or decoder stopped advancing.
	ErrStalled = errors.New("serve: session stalled past the watchdog deadline")
	// ErrShed is the sticky verdict of a session preempted by the load
	// shedder to admit a higher-priority stream.
	ErrShed = errors.New("serve: session shed for a higher-priority stream")
	// ErrCheckpointExpired is the sticky verdict of a parked resumable
	// session evicted by TTL or checkpoint-capacity pressure.
	ErrCheckpointExpired = errors.New("serve: resume checkpoint expired")
	// ErrUnknownResume rejects a resume whose token matches no parked
	// session (never issued, already expired, or already evicted).
	ErrUnknownResume = errors.New("serve: unknown or expired resume token")
)

// SessionParams declares one measurement stream: what transmission the
// session expects and the fixed shape of every measurement it will carry.
type SessionParams struct {
	// Mode selects CSI or RSSI decoding.
	Mode uplink.StreamMode
	// BitRate is the tag's uplink bit rate in bits/s.
	BitRate float64
	// Start is the expected transmission start time in seconds.
	Start float64
	// PayloadLen is the expected payload length in bits.
	PayloadLen int
	// Antennas and Subchannels fix the measurement shape. Subchannels may
	// be 0 for an RSSI-only stream (CSI rows are then empty).
	Antennas, Subchannels int
	// Priority ranks the stream for load shedding, 0 (shed first) through
	// 9 (shed last). At capacity a newcomer preempts a strictly
	// lower-priority active session instead of being rejected.
	Priority int
	// Resumable opts the session into checkpointing: it gets a stable
	// token on the ok line and survives a transport cut as a parked
	// checkpoint until resumed or expired.
	Resumable bool
}

// MaxPayloadLen bounds the declarable payload length. The wire parser is
// fuzzed; without the cap a single hostile hello ("payload 1e9 bits")
// makes the decoder preallocate gigabytes of bins.
const MaxPayloadLen = 1 << 20

// Validate checks the parameters a transport cannot default away.
func (p SessionParams) Validate() error {
	if p.Mode != uplink.StreamCSI && p.Mode != uplink.StreamRSSI {
		return fmt.Errorf("serve: unknown stream mode %d", int(p.Mode))
	}
	// NaN compares false against everything, so "<= 0" alone would admit
	// it (a FuzzWireProtocol finding); require a positive finite rate.
	if !(p.BitRate > 0) || math.IsInf(p.BitRate, 0) {
		return fmt.Errorf("serve: bit rate must be positive and finite, got %v", p.BitRate)
	}
	if math.IsNaN(p.Start) || math.IsInf(p.Start, 0) {
		return fmt.Errorf("serve: start time must be finite, got %v", p.Start)
	}
	if p.PayloadLen <= 0 {
		return fmt.Errorf("serve: payload length must be positive, got %d", p.PayloadLen)
	}
	if p.PayloadLen > MaxPayloadLen {
		return fmt.Errorf("serve: payload length %d exceeds the %d-bit cap", p.PayloadLen, MaxPayloadLen)
	}
	if p.Priority < 0 || p.Priority > 9 {
		return fmt.Errorf("serve: priority must be 0-9, got %d", p.Priority)
	}
	if p.Antennas <= 0 || p.Antennas > 64 {
		return fmt.Errorf("serve: implausible antenna count %d", p.Antennas)
	}
	if p.Subchannels < 0 || p.Subchannels > 1024 {
		return fmt.Errorf("serve: implausible sub-channel count %d", p.Subchannels)
	}
	if p.Mode == uplink.StreamCSI && p.Subchannels == 0 {
		return fmt.Errorf("serve: CSI mode needs at least one sub-channel")
	}
	return nil
}

// Sink receives a session's decoded output. EmitBits is called from the
// session's worker goroutine the moment the frame closes; EmitResult is
// called exactly once when the session completes (flush, poison, or
// abort). Implementations must not block indefinitely — a sink that never
// returns holds its session's worker hostage until the drain deadline
// force-closes the transport.
type Sink interface {
	// EmitBits delivers the frame's bits as soon as they decode. A
	// returned error ends the session (the client is gone).
	EmitBits(bits []uplink.BitDecision) error
	// EmitResult delivers the final outcome: the full decode result, or
	// the first error the session hit (push failure, flush failure, or a
	// sink write failure).
	EmitResult(res *uplink.Result, err error)
}

// Config parameterizes a Server. The zero value is usable: defaults
// below, no deadlines (Now nil keeps the layer fully deterministic).
type Config struct {
	// MaxSessions bounds concurrently active sessions (admission
	// control). Zero means DefaultMaxSessions.
	MaxSessions int
	// SessionBuffer is the per-session measurement slot ring size. Zero
	// means DefaultSessionBuffer.
	SessionBuffer int
	// IdleTimeout bounds the wait for the next line on a TCP connection;
	// a session that stops sending is flushed and closed. Zero (or a nil
	// Now) disables deadlines.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write to a TCP client; a client
	// that stops reading poisons only its own session. Zero (or a nil
	// Now) disables the deadline.
	WriteTimeout time.Duration
	// DrainTimeout is the hard deadline for Drain: sessions still running
	// when it expires are force-aborted. Zero means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// Now supplies the wall clock for deadlines and the drain-duration
	// metric. The daemon injects time.Now; nil disables every deadline,
	// which is what deterministic tests want.
	Now func() time.Time

	// ResumeTTL is how long a detached resumable checkpoint is kept
	// before SweepResume may evict it. Zero means DefaultResumeTTL. The
	// server never reads the clock itself: the daemon (or a test) calls
	// SweepResume with whatever "now" it trusts, so eviction is exactly
	// as deterministic as the caller's clock.
	ResumeTTL time.Duration
	// MaxParked bounds detached resumable checkpoints; beyond it the
	// oldest parked checkpoint is evicted immediately (capacity
	// accounting, independent of the TTL). Zero means DefaultMaxParked.
	MaxParked int
	// TokenSeed salts resume tokens so they are stable per server config,
	// not guessable across deployments. Zero is a valid seed.
	TokenSeed uint64
	// ResumeDrainWait bounds how long ResumeSession waits for the old
	// connection's handler to drain its delivered lines and exit on its
	// own EOF before force-closing the transport. The natural-EOF path
	// is what makes the resume cursor deterministic (the cut's FIN
	// arrives behind every delivered byte); the bound only fires for a
	// peer that vanished without FIN or a live connection being
	// hijacked. Zero means DefaultResumeDrainWait.
	ResumeDrainWait time.Duration
	// StallTimeout arms the stuck-stream watchdog: a session whose worker
	// makes no progress for this long while input is pending (queued
	// slots, or a producer blocked on a full ring) is aborted with
	// ErrStalled. Zero disables the watchdog.
	StallTimeout time.Duration
	// WatchdogPoll is the sweep cadence; zero means StallTimeout/4
	// (min 1ms). Exposed mainly so tests can tighten it.
	WatchdogPoll time.Duration
	// ShedThreshold turns on pressure-based early shedding: when
	// Pressure() meets or exceeds it, Open sheds/rejects before the hard
	// MaxSessions wall. Zero disables early shedding (admission then
	// degrades only at the hard cap, still with priority preemption and
	// retry-after hints).
	ShedThreshold float64
	// RetryAfterBase scales the machine-readable retry-after hint
	// attached to ErrOverloaded/ErrBufferFull rejections; the hint grows
	// with measured pressure. Zero means DefaultRetryAfterBase.
	RetryAfterBase time.Duration
}

// Defaults for Config's zero fields.
const (
	DefaultMaxSessions     = 64
	DefaultSessionBuffer   = 256
	DefaultDrainTimeout    = 5 * time.Second
	DefaultResumeTTL       = 2 * time.Minute
	DefaultMaxParked       = 256
	DefaultRetryAfterBase  = 500 * time.Millisecond
	DefaultResumeDrainWait = 5 * time.Second
)

func (c Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return DefaultMaxSessions
	}
	return c.MaxSessions
}

func (c Config) sessionBuffer() int {
	if c.SessionBuffer <= 0 {
		return DefaultSessionBuffer
	}
	return c.SessionBuffer
}

func (c Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return DefaultDrainTimeout
	}
	return c.DrainTimeout
}

func (c Config) resumeTTL() time.Duration {
	if c.ResumeTTL <= 0 {
		return DefaultResumeTTL
	}
	return c.ResumeTTL
}

func (c Config) maxParked() int {
	if c.MaxParked <= 0 {
		return DefaultMaxParked
	}
	return c.MaxParked
}

func (c Config) resumeDrainWait() time.Duration {
	if c.ResumeDrainWait <= 0 {
		return DefaultResumeDrainWait
	}
	return c.ResumeDrainWait
}

func (c Config) watchdogPoll() time.Duration {
	if c.WatchdogPoll > 0 {
		return c.WatchdogPoll
	}
	p := c.StallTimeout / 4
	if p < time.Millisecond {
		p = time.Millisecond
	}
	return p
}

func (c Config) retryAfterBase() time.Duration {
	if c.RetryAfterBase <= 0 {
		return DefaultRetryAfterBase
	}
	return c.RetryAfterBase
}

// Server states: the drain state machine (DESIGN.md §12).
const (
	stateRunning = iota
	stateDraining
	stateClosed
)

// Server multiplexes concurrent decode sessions under one admission
// policy. All methods are safe for concurrent use.
type Server struct {
	cfg Config

	mu        sync.Mutex
	state     int
	sessions  map[*Session]struct{}
	conns     map[closer]struct{} // live transports (force-closed at the drain deadline)
	nextID    uint64
	drained   chan struct{} // closed when Drain completes
	resumable map[string]*Session
	nParked   int   // detached checkpoints (capacity accounting)
	parkSeq   int64 // monotone detach order for oldest-first eviction

	wdStop chan struct{} // stops the watchdog goroutine
	wdOnce sync.Once

	wg  sync.WaitGroup // one per session worker
	met metrics
}

// closer is the slice of a transport a Server can force-close.
type closer interface{ Close() error }

// NewServer builds a Server. A Config with StallTimeout > 0 starts the
// stuck-stream watchdog goroutine; it stops when Drain begins.
func NewServer(cfg Config) *Server {
	srv := &Server{
		cfg:       cfg,
		sessions:  make(map[*Session]struct{}),
		conns:     make(map[closer]struct{}),
		drained:   make(chan struct{}),
		resumable: make(map[string]*Session),
		wdStop:    make(chan struct{}),
	}
	if cfg.StallTimeout > 0 {
		go srv.watchdog()
	}
	return srv
}

// Config returns the server's effective configuration.
func (srv *Server) Config() Config { return srv.cfg }

// Open admits one new session, or rejects it: ErrDraining during
// shutdown, a validation error for bad parameters, and under load the
// shed policy decides — at the hard MaxSessions cap (or past
// ShedThreshold pressure) a strictly higher-priority newcomer preempts
// the lowest-priority active session (ErrShed on the victim), everyone
// else gets ErrOverloaded wrapped in a RetryError carrying a
// pressure-scaled retry-after hint. The session's worker starts
// immediately; decoded bits flow to sink.
func (srv *Server) Open(p SessionParams, sink Sink) (*Session, error) {
	if sink == nil {
		return nil, fmt.Errorf("serve: nil sink")
	}
	if err := p.Validate(); err != nil {
		srv.met.rejectedBad.Add(1)
		return nil, err
	}
	srv.mu.Lock()
	if srv.state != stateRunning {
		srv.met.rejectedDraining.Add(1)
		srv.mu.Unlock()
		return nil, ErrDraining
	}
	var victim *Session
	pressure := srv.pressureLocked()
	atCap := len(srv.sessions) >= srv.cfg.maxSessions()
	shedding := srv.cfg.ShedThreshold > 0 && pressure >= srv.cfg.ShedThreshold
	if atCap || shedding {
		victim = srv.victimLocked(p.Priority)
		if victim == nil {
			srv.met.rejectedOverload.Add(1)
			srv.met.shedRejected.Add(1)
			srv.mu.Unlock()
			return nil, srv.retryErr(ErrOverloaded, pressure)
		}
	}
	s, err := newSession(srv, srv.nextID, p, sink)
	if err != nil {
		srv.mu.Unlock()
		return nil, err
	}
	srv.nextID++
	srv.sessions[s] = struct{}{}
	if p.Resumable {
		srv.registerResumableLocked(s)
	}
	active := len(srv.sessions)
	srv.met.accepted.Add(1)
	srv.met.decayStrain()
	srv.wg.Add(1)
	srv.mu.Unlock()
	if victim != nil {
		srv.shed(victim)
	}
	srv.met.noteActive(active)
	go s.loop()
	return s, nil
}

// victimLocked picks the session the shed policy would preempt to admit
// a stream of priority prio: the lowest-priority active session, oldest
// first on ties, and only if strictly below prio. Caller holds srv.mu.
func (srv *Server) victimLocked(prio int) *Session {
	var v *Session
	for s := range srv.sessions {
		if s.p.Priority >= prio {
			continue
		}
		if v == nil || s.p.Priority < v.p.Priority ||
			(s.p.Priority == v.p.Priority && s.id < v.id) {
			v = s
		}
	}
	return v
}

// shed preempts one victim session: sticky ErrShed verdict, producers
// unblocked, transport closed, input ended so the worker can finalize.
// The victim stays in srv.sessions until its worker retires it, so the
// active count can transiently overshoot MaxSessions by in-flight
// victims.
func (srv *Server) shed(s *Session) {
	if s.setErr(ErrShed) {
		srv.met.shedPreempted.Add(1)
		srv.met.noteStrain()
	}
	s.abort()
	s.Finish()
}

// sessionClosed retires a finished session (its worker is exiting). A
// resumable session's checkpoint is parked at this point — the recorded
// bits and result stay replayable until TTL or capacity evicts them, so
// a client cut between the server writing "done" and reading it can
// still resume and re-receive the final lines.
func (srv *Server) sessionClosed(s *Session) {
	srv.mu.Lock()
	delete(srv.sessions, s)
	active := len(srv.sessions)
	if s.rs != nil {
		srv.parkLocked(s)
	}
	srv.mu.Unlock()
	srv.met.noteActive(active)
	srv.wg.Done()
}

// Draining reports whether the server has left the running state.
func (srv *Server) Draining() bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.state != stateRunning
}

// Drain executes the shutdown state machine: running → draining (stop
// admitting, Finish every live session so in-frame captures flush their
// partial frames) → closed. Sessions still running at the DrainTimeout
// hard deadline are force-aborted (their transports closed, which
// unblocks any worker stuck writing to a dead client). It returns nil
// when every session completed within the deadline, and an error naming
// the aborted count otherwise. Drain is idempotent; concurrent callers
// all block until the first completes.
func (srv *Server) Drain() error {
	srv.mu.Lock()
	if srv.state != stateRunning {
		srv.mu.Unlock()
		<-srv.drained
		if n := srv.met.abortedSessions.Load(); n > 0 {
			return fmt.Errorf("serve: drain aborted %d sessions at the deadline", n)
		}
		return nil
	}
	srv.state = stateDraining
	sessions := make([]*Session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	srv.wdOnce.Do(func() { close(srv.wdStop) })

	var t0 time.Time
	if srv.cfg.Now != nil {
		t0 = srv.cfg.Now()
	}
	// Finish concurrently: one slow session's producer (blocked on a full
	// ring behind a stuck sink) must not serialize the rest of the drain.
	var finishers sync.WaitGroup
	for _, s := range sessions {
		finishers.Add(1)
		go func(s *Session) {
			defer finishers.Done()
			s.Finish()
		}(s)
	}

	workers := make(chan struct{})
	go func() {
		srv.wg.Wait()
		close(workers)
	}()
	timer := time.NewTimer(srv.cfg.drainTimeout())
	defer timer.Stop()
	aborted := false
	leaked := false
	select {
	case <-workers:
	case <-timer.C:
		aborted = true
		srv.abortRemaining()
		// The abort unblocked producers (quit) and transports (Close).
		// A worker held hostage by an in-process sink that ignores the
		// contract has nothing left to unblock it — bound this wait too
		// and leak the worker rather than hang a daemon mid-exit.
		grace := time.NewTimer(srv.cfg.drainTimeout())
		select {
		case <-workers:
		case <-grace.C:
			leaked = true
		}
		grace.Stop()
	}
	if !leaked {
		finishers.Wait()
	}

	srv.mu.Lock()
	srv.state = stateClosed
	srv.mu.Unlock()
	if srv.cfg.Now != nil {
		srv.met.setDrainSeconds(srv.cfg.Now().Sub(t0).Seconds())
	}
	srv.met.drainedClean.Store(boolInt(!aborted))
	close(srv.drained)
	if leaked {
		return fmt.Errorf("serve: drain leaked workers stuck in sinks after aborting %d sessions",
			srv.met.abortedSessions.Load())
	}
	if n := srv.met.abortedSessions.Load(); n > 0 {
		return fmt.Errorf("serve: drain aborted %d sessions at the deadline", n)
	}
	return nil
}

// abortRemaining force-closes everything still alive at the drain
// deadline: sessions (unblocking their producers) and raw transports
// (unblocking workers stuck mid-write and handlers stuck mid-read).
func (srv *Server) abortRemaining() {
	srv.mu.Lock()
	sessions := make([]*Session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	conns := make([]closer, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		s.abort()
		srv.met.abortedSessions.Add(1)
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// addConn registers a live transport for force-close at the drain
// deadline. It reports false when the server is no longer accepting.
func (srv *Server) addConn(c closer) bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.state != stateRunning {
		return false
	}
	srv.conns[c] = struct{}{}
	return true
}

// removeConn forgets a transport that closed on its own.
func (srv *Server) removeConn(c closer) {
	srv.mu.Lock()
	delete(srv.conns, c)
	srv.mu.Unlock()
}

// ActiveSessions returns the number of currently admitted sessions.
func (srv *Server) ActiveSessions() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// PublishMetrics writes the server's counters into an obs registry —
// call it from one goroutine with a registry the concurrent layer does
// not touch (obs registries are goroutine-confined by contract). Publish
// into a fresh registry each time; counters add, they do not overwrite.
func (srv *Server) PublishMetrics(r *obs.Registry) {
	srv.met.publish(r)
	r.Gauge("serve.pressure").Set(srv.Pressure())
	srv.mu.Lock()
	parked := srv.nParked
	srv.mu.Unlock()
	r.Gauge("serve.resume.parked").Set(float64(parked))
}

// Stats returns a point-in-time snapshot of the serving counters.
func (srv *Server) Stats() Stats { return srv.met.stats() }

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
