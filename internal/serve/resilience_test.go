package serve_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/uplink"
)

// Tests for the resilience layer (DESIGN.md §13): session resume, the
// stuck-stream watchdog, adaptive load shedding, and drain racing the
// producer/abort paths. Everything here drives the server in-process so
// the deterministic knobs (WatchdogSweep, SweepResume with fabricated
// times) can be exercised without wall-clock waits.

// resumableParams is testParams with the resume checkpoint enabled.
func resumableParams(payloadLen int) serve.SessionParams {
	p := testParams(payloadLen)
	p.Resumable = true
	return p
}

// failSink refuses every bit forward — the in-process stand-in for a
// dead transport. A resumable session wearing it parks its checkpoint on
// the first emitted bit instead of poisoning.
type failSink struct{ memSink }

func (fs *failSink) EmitBits([]uplink.BitDecision) error {
	return errors.New("transport gone")
}

func newFailSink() *failSink {
	return &failSink{memSink: memSink{done: make(chan struct{})}}
}

// waitParked polls until the server reports exactly n parked checkpoints.
func waitParked(t *testing.T, srv *serve.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.ParkedCheckpoints() != n {
		if time.Now().After(deadline) {
			t.Fatalf("parked checkpoints = %d, want %d", srv.ParkedCheckpoints(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func bitValues(bits []uplink.BitDecision) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = b.Bit
	}
	return out
}

// TestWatchdogAbortsOnlyStalledSession pins the containment contract: a
// session whose worker is wedged inside a sink write is aborted with the
// distinct ErrStalled verdict within the sweep deadline, while healthy
// neighbors keep decoding byte-identical to batch and the watchdog
// metrics account for exactly one stall.
func TestWatchdogAbortsOnlyStalledSession(t *testing.T) {
	payload := randomPayload(12, 21)
	series := synthSeries(t, payload, 21)
	want := batchDecode(t, series, len(payload))

	// An hour-long poll keeps the background ticker quiet; the test
	// drives polls itself via WatchdogSweep (each call = one interval,
	// so StallTimeout == poll trips on the second frozen observation).
	srv := serve.NewServer(serve.Config{
		StallTimeout: time.Hour,
		WatchdogPoll: time.Hour,
	})

	stuck := newBlockSink()
	stalled, err := srv.Open(testParams(len(payload)), stuck)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range series.Measurements {
		if err := stalled.Push(m); err != nil {
			t.Fatalf("Push: %v", err)
		}
		select {
		case <-stuck.entered:
			goto parked
		default:
		}
	}
	t.Fatal("frame never closed; synthetic capture too short")
parked:
	// While that worker is parked, healthy sessions stream to completion.
	for i := 0; i < 2; i++ {
		sink := newMemSink()
		sess, err := srv.Open(testParams(len(payload)), sink)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, sess, series)
		res, err := sess.Result()
		if err != nil {
			t.Fatalf("healthy session %d: %v", i, err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("healthy session %d diverged from batch", i)
		}
	}

	// Sweep until the watchdog convicts the wedged session. Two frozen
	// observations suffice; the loop tolerates the first sweep landing
	// before the worker blocks.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().WatchdogStalls == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never convicted the stalled session")
		}
		srv.WatchdogSweep()
		time.Sleep(time.Millisecond)
	}
	close(stuck.release)
	if _, err := stalled.Result(); !errors.Is(err, serve.ErrStalled) {
		t.Fatalf("stalled session verdict = %v, want ErrStalled", err)
	}

	st := srv.Stats()
	if st.WatchdogStalls != 1 {
		t.Errorf("WatchdogStalls = %d, want 1", st.WatchdogStalls)
	}
	if st.WatchdogScans == 0 {
		t.Error("WatchdogScans never moved")
	}
	reg := obs.NewRegistry()
	srv.PublishMetrics(reg)
	if got := reg.Counter("serve.watchdog.stalls").Value(); got != 1 {
		t.Errorf("serve.watchdog.stalls = %d, want 1", got)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("Drain after stall: %v", err)
	}
}

// TestResumeReplayByteIdentical is the in-process resume contract: a
// session cut mid-stream re-attaches by token, replays the missed bits,
// and finishes byte-identical to an uninterrupted batch decode.
func TestResumeReplayByteIdentical(t *testing.T) {
	payload := randomPayload(16, 23)
	series := synthSeries(t, payload, 23)
	want := batchDecode(t, series, len(payload))

	srv := serve.NewServer(serve.Config{TokenSeed: 99})
	first := newMemSink()
	sess, err := srv.Open(resumableParams(len(payload)), first)
	if err != nil {
		t.Fatal(err)
	}
	tok := sess.Token()
	if len(tok) != 16 {
		t.Fatalf("token %q is not 16 hex digits", tok)
	}
	half := series.Len() / 2
	for _, m := range series.Measurements[:half] {
		if err := sess.Push(m); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}

	// The transport dies; a new client resumes by token claiming zero
	// bits received, so every recorded bit is replayed to it.
	got, _, err := srv.ResumeSession(tok, nil)
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	second := newMemSink()
	info, err := got.Attach(second, 0, nil)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if info.Final {
		t.Fatal("checkpoint claims final before the stream ended")
	}
	for _, m := range series.Measurements[info.Consumed:] {
		if err := got.Push(m); err != nil {
			t.Fatalf("Push after resume: %v", err)
		}
	}
	got.Finish()
	res, err := got.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("resumed decode diverged from batch")
	}
	<-second.done
	if !reflect.DeepEqual(bitValues(second.bits), want.Payload) {
		t.Errorf("resumed bit stream = %v, want %v", bitValues(second.bits), want.Payload)
	}
	st := srv.Stats()
	if st.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", st.Resumed)
	}
}

// TestResumeFinalReplay covers the cut between the server recording the
// result and the client reading it: a resume against a finished
// checkpoint replays all bits plus the final result and parks again.
func TestResumeFinalReplay(t *testing.T) {
	payload := randomPayload(12, 29)
	series := synthSeries(t, payload, 29)
	want := batchDecode(t, series, len(payload))

	srv := serve.NewServer(serve.Config{TokenSeed: 7})
	first := newMemSink()
	sess, err := srv.Open(resumableParams(len(payload)), first)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sess, series)
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
	waitParked(t, srv, 1)

	got, _, err := srv.ResumeSession(sess.Token(), nil)
	if err != nil {
		t.Fatalf("ResumeSession after finish: %v", err)
	}
	second := newMemSink()
	info, err := got.Attach(second, 0, nil)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if !info.Final {
		t.Error("AttachInfo.Final = false on a finished checkpoint")
	}
	<-second.done
	if !reflect.DeepEqual(second.res, want) {
		t.Error("replayed result diverged from batch")
	}
	if !reflect.DeepEqual(bitValues(second.bits), want.Payload) {
		t.Error("replayed bits diverged from batch")
	}
	// The checkpoint parks again, so yet another resume still works.
	waitParked(t, srv, 1)
	if st := srv.Stats(); st.ReplayedBits != int64(len(payload)) {
		t.Errorf("ReplayedBits = %d, want %d", st.ReplayedBits, len(payload))
	}
}

// TestResumeRejectsBadClaims covers the two refusal paths: an unknown
// token, and a resume claiming more bits than were ever emitted (which
// re-parks the checkpoint instead of corrupting the cursor).
func TestResumeRejectsBadClaims(t *testing.T) {
	payload := randomPayload(8, 31)
	series := synthSeries(t, payload, 31)
	srv := serve.NewServer(serve.Config{TokenSeed: 11})

	if _, _, err := srv.ResumeSession("0123456789abcdef", nil); !errors.Is(err, serve.ErrUnknownResume) {
		t.Fatalf("unknown token error = %v, want ErrUnknownResume", err)
	}

	sess, err := srv.Open(resumableParams(len(payload)), newMemSink())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sess, series)
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
	waitParked(t, srv, 1)
	got, _, err := srv.ResumeSession(sess.Token(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Attach(newMemSink(), len(payload)+1, nil); err == nil {
		t.Fatal("over-claiming resume was accepted")
	}
	waitParked(t, srv, 1)
	if st := srv.Stats(); st.ResumeUnknown != 1 {
		t.Errorf("ResumeUnknown = %d, want 1", st.ResumeUnknown)
	}
}

// TestSweepResumeTTL pins the deterministic TTL eviction: the server
// never reads a clock, so the test's fabricated "now" decides exactly
// which sweep evicts, and the evicted token is gone from the table.
func TestSweepResumeTTL(t *testing.T) {
	payload := randomPayload(8, 37)
	series := synthSeries(t, payload, 37)
	base := time.Unix(1_000_000, 0)
	srv := serve.NewServer(serve.Config{
		TokenSeed: 3,
		ResumeTTL: time.Minute,
		Now:       func() time.Time { return base },
	})
	sess, err := srv.Open(resumableParams(len(payload)), newMemSink())
	if err != nil {
		t.Fatal(err)
	}
	feed(t, sess, series)
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
	waitParked(t, srv, 1)

	if n := srv.SweepResume(base.Add(59 * time.Second)); n != 0 {
		t.Fatalf("sweep before TTL evicted %d checkpoints", n)
	}
	if n := srv.SweepResume(base.Add(time.Minute)); n != 1 {
		t.Fatalf("sweep at TTL evicted %d checkpoints, want 1", n)
	}
	if srv.ParkedCheckpoints() != 0 {
		t.Errorf("parked checkpoints = %d after eviction", srv.ParkedCheckpoints())
	}
	if _, _, err := srv.ResumeSession(sess.Token(), nil); !errors.Is(err, serve.ErrUnknownResume) {
		t.Fatalf("resume after TTL eviction = %v, want ErrUnknownResume", err)
	}
	if st := srv.Stats(); st.EvictedTTL != 1 {
		t.Errorf("EvictedTTL = %d, want 1", st.EvictedTTL)
	}
}

// TestMaxParkedEvictsOldest pins capacity eviction: with MaxParked 1,
// parking a second checkpoint evicts the oldest, whose unfinished stream
// ends with the ErrCheckpointExpired verdict; the survivor still resumes
// to a byte-identical decode.
func TestMaxParkedEvictsOldest(t *testing.T) {
	payload := randomPayload(12, 41)
	series := synthSeries(t, payload, 41)
	want := batchDecode(t, series, len(payload))
	srv := serve.NewServer(serve.Config{TokenSeed: 5, MaxParked: 1})

	// Two resumable sessions whose transports die on the first bit: feed
	// the whole capture without Finish so each parks unfinished.
	push := func(s *serve.Session) {
		for _, m := range series.Measurements {
			if err := s.Push(m); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
	}
	old, err := srv.Open(resumableParams(len(payload)), newFailSink())
	if err != nil {
		t.Fatal(err)
	}
	push(old)
	waitParked(t, srv, 1)
	young, err := srv.Open(resumableParams(len(payload)), newFailSink())
	if err != nil {
		t.Fatal(err)
	}
	push(young)
	waitParked(t, srv, 1) // young parked, old evicted

	if _, err := old.Result(); !errors.Is(err, serve.ErrCheckpointExpired) {
		t.Fatalf("evicted session verdict = %v, want ErrCheckpointExpired", err)
	}
	if _, _, err := srv.ResumeSession(old.Token(), nil); !errors.Is(err, serve.ErrUnknownResume) {
		t.Fatalf("resume of evicted token = %v, want ErrUnknownResume", err)
	}
	if st := srv.Stats(); st.EvictedCapacity != 1 {
		t.Errorf("EvictedCapacity = %d, want 1", st.EvictedCapacity)
	}

	// The survivor resumes: replayed bits plus the flush must equal the
	// uninterrupted decode exactly.
	got, _, err := srv.ResumeSession(young.Token(), nil)
	if err != nil {
		t.Fatalf("ResumeSession on survivor: %v", err)
	}
	sink := newMemSink()
	info, err := got.Attach(sink, 0, nil)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	for _, m := range series.Measurements[info.Consumed:] {
		if err := got.Push(m); err != nil {
			t.Fatalf("Push after resume: %v", err)
		}
	}
	got.Finish()
	res, err := got.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("survivor's decode diverged from batch")
	}
	<-sink.done
	if !reflect.DeepEqual(bitValues(sink.bits), want.Payload) {
		t.Error("survivor's replayed bit stream diverged from batch")
	}
}

// TestShedPreemptsLowestPriority pins the shed policy: at capacity a
// higher-priority newcomer preempts the lowest-priority active session
// (ErrShed verdict), while an equal-priority newcomer is rejected with a
// machine-readable retry-after hint.
func TestShedPreemptsLowestPriority(t *testing.T) {
	payload := randomPayload(8, 43)
	series := synthSeries(t, payload, 43)
	want := batchDecode(t, series, len(payload))
	srv := serve.NewServer(serve.Config{MaxSessions: 2})

	params := func(prio int) serve.SessionParams {
		p := testParams(len(payload))
		p.Priority = prio
		return p
	}
	low, err := srv.Open(params(1), newMemSink())
	if err != nil {
		t.Fatal(err)
	}
	midSink := newMemSink()
	mid, err := srv.Open(params(5), midSink)
	if err != nil {
		t.Fatal(err)
	}

	// Equal priority finds no victim: rejected with a retry hint that
	// unwraps to ErrOverloaded.
	_, err = srv.Open(params(1), newMemSink())
	if !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("equal-priority open = %v, want ErrOverloaded", err)
	}
	var re *serve.RetryError
	if !errors.As(err, &re) || re.After <= 0 {
		t.Fatalf("rejection %v carries no positive retry-after hint", err)
	}

	// Priority 9 preempts the priority-1 stream and is admitted.
	highSink := newMemSink()
	high, err := srv.Open(params(9), highSink)
	if err != nil {
		t.Fatalf("high-priority open rejected: %v", err)
	}
	if _, err := low.Result(); !errors.Is(err, serve.ErrShed) {
		t.Fatalf("victim verdict = %v, want ErrShed", err)
	}

	// The survivor and the newcomer both finish byte-identical to batch.
	for name, pair := range map[string]struct {
		s    *serve.Session
		sink *memSink
	}{"mid": {mid, midSink}, "high": {high, highSink}} {
		feed(t, pair.s, series)
		res, err := pair.s.Result()
		if err != nil {
			t.Fatalf("%s session: %v", name, err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("%s session diverged from batch", name)
		}
	}

	st := srv.Stats()
	if st.ShedPreempted != 1 {
		t.Errorf("ShedPreempted = %d, want 1", st.ShedPreempted)
	}
	if st.ShedRejected != 1 {
		t.Errorf("ShedRejected = %d, want 1", st.ShedRejected)
	}
	if st.RetryHints == 0 {
		t.Error("RetryHints never moved")
	}
	reg := obs.NewRegistry()
	srv.PublishMetrics(reg)
	if got := reg.Counter("serve.shed.preempted").Value(); got != 1 {
		t.Errorf("serve.shed.preempted = %d, want 1", got)
	}
}

// TestShedThresholdSheds pins pressure-based early shedding: with a
// threshold below one active session's load, the second open already
// triggers the policy — preempting a strictly lower-priority stream,
// rejecting an equal one — long before the hard MaxSessions wall.
func TestShedThresholdSheds(t *testing.T) {
	payload := randomPayload(8, 47)
	srv := serve.NewServer(serve.Config{MaxSessions: 100, ShedThreshold: 0.005})
	params := func(prio int) serve.SessionParams {
		p := testParams(len(payload))
		p.Priority = prio
		return p
	}
	low, err := srv.Open(params(0), newMemSink())
	if err != nil {
		t.Fatalf("first open under threshold rejected: %v", err)
	}
	if p := srv.Pressure(); p < 0.005 {
		t.Fatalf("Pressure() = %v after one session, below the test threshold", p)
	}
	if _, err := srv.Open(params(0), newMemSink()); !errors.Is(err, serve.ErrOverloaded) {
		t.Fatalf("equal-priority open under pressure = %v, want ErrOverloaded", err)
	}
	if _, err := srv.Open(params(5), newMemSink()); err != nil {
		t.Fatalf("higher-priority open under pressure rejected: %v", err)
	}
	if _, err := low.Result(); !errors.Is(err, serve.ErrShed) {
		t.Fatalf("victim verdict = %v, want ErrShed", err)
	}
}

// TestDrainRacesProducers hammers Drain against concurrent Opens,
// Push/TryPush producers, watchdog sweeps, and shed preemptions with
// randomized interleavings. The race detector owns the memory-safety
// verdict; the test asserts liveness (every session's Result returns)
// and that every error is one of the layer's published verdicts.
func TestDrainRacesProducers(t *testing.T) {
	payload := randomPayload(8, 53)
	series := synthSeries(t, payload, 53)
	srv := serve.NewServer(serve.Config{
		MaxSessions:  4,
		StallTimeout: time.Hour,
		WatchdogPoll: time.Hour,
	})

	var (
		mu       sync.Mutex
		sessions []*serve.Session
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rng.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := testParams(len(payload))
				p.Priority = rnd.Intn(10)
				p.Resumable = rnd.Bool()
				sess, err := srv.Open(p, newMemSink())
				if err != nil {
					if errors.Is(err, serve.ErrDraining) {
						return
					}
					continue // overload/shed rejection: try again
				}
				mu.Lock()
				sessions = append(sessions, sess)
				mu.Unlock()
				n := rnd.Intn(series.Len())
				for _, m := range series.Measurements[:n] {
					var err error
					if rnd.Bool() {
						err = sess.TryPush(m)
					} else {
						err = sess.Push(m)
					}
					if err != nil {
						break
					}
				}
				if rnd.Float64() < 0.8 {
					sess.Finish()
				}
			}
		}(int64(100 + g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.WatchdogSweep()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	err := srv.Drain()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, openErr := srv.Open(testParams(len(payload)), newMemSink()); !errors.Is(openErr, serve.ErrDraining) {
		t.Fatalf("Open after Drain = %v, want ErrDraining", openErr)
	}

	// A session fed a random prefix may legitimately fail its flush with
	// a decode error; what must never happen is a session's terminal
	// verdict being an admission error — those belong to Open/TryPush.
	admission := []error{serve.ErrOverloaded, serve.ErrBufferFull, serve.ErrDraining}
	mu.Lock()
	defer mu.Unlock()
	for i, sess := range sessions {
		_, err := sess.Result() // must not hang: drain finishes every session
		for _, a := range admission {
			if errors.Is(err, a) {
				t.Errorf("session %d died with admission error %v as its verdict", i, err)
			}
		}
	}
}
