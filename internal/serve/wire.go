package serve

// The line protocol: newline-delimited ASCII, one request or response
// per line, floats printed with strconv 'g'/-1 so every value round-trips
// exactly (byte-identical decode is an acceptance criterion, so the wire
// must not quantize).
//
//	client → server
//	  hello wbserve/1 <csi|rssi> <bitrate> <start> <payload-bits> <antennas> <subchannels> [prio=<0-9>] [resume=1]
//	  resume wbserve/1 <token> <bits-received>
//	  m <timestamp> <rssi per antenna ...> <csi antenna-major ...>
//	  flush
//	server → client
//	  ok <session-id>                                      (plain session)
//	  ok <session-id> token=<16 hex> seq=<n> fin=<0|1>     (resumable session)
//	  reject [retry-after=<seconds>] <reason ...>
//	  bit <index> <0|1> <measurements>
//	  done <payload bitstring|-> corr=<f> mpb=<f>
//	  error <message ...>
//
// Resumable sessions (hello option resume=1) get a stable token on the
// ok line. After a cut the client reconnects and sends a resume line
// carrying the token and how many bit lines it actually received; the
// server re-attaches the parked session, replays only the missed bits,
// and reports seq= (measurements already consumed, so the client skips
// them) and fin= (the final result was already recorded; nothing more to
// send). All resumable ok fields are fixed-width (8-digit id, 16-hex
// token) so wire byte offsets stay reproducible under chaos schedules.
//
// The parse helpers here serve both sides: the TCP front end parses
// hello/m lines into preallocated shapes, and load clients (cmd/wbload)
// format requests with the Append helpers and parse responses with
// ParseResponse.

import (
	"fmt"
	"strconv"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// helloMagic is the protocol version tag; bump on incompatible changes.
const helloMagic = "wbserve/1"

// fieldScanner iterates the space-separated tokens of one line without
// allocating.
type fieldScanner struct {
	b []byte
	i int
}

func (f *fieldScanner) next() ([]byte, bool) {
	for f.i < len(f.b) && f.b[f.i] == ' ' {
		f.i++
	}
	if f.i >= len(f.b) {
		return nil, false
	}
	j := f.i
	for j < len(f.b) && f.b[j] != ' ' {
		j++
	}
	tok := f.b[f.i:j]
	f.i = j
	return tok, true
}

// peek returns the next token without consuming it.
func (f *fieldScanner) peek() ([]byte, bool) {
	save := f.i
	tok, ok := f.next()
	f.i = save
	return tok, ok
}

// rest returns everything after the current position, trimmed of one
// leading space (for trailing free-text fields like reject reasons).
func (f *fieldScanner) rest() string {
	for f.i < len(f.b) && f.b[f.i] == ' ' {
		f.i++
	}
	return string(f.b[f.i:])
}

func (f *fieldScanner) float() (float64, error) {
	tok, ok := f.next()
	if !ok {
		return 0, fmt.Errorf("serve: line is missing a numeric field")
	}
	return strconv.ParseFloat(string(tok), 64)
}

func (f *fieldScanner) int() (int, error) {
	tok, ok := f.next()
	if !ok {
		return 0, fmt.Errorf("serve: line is missing an integer field")
	}
	v, err := strconv.ParseInt(string(tok), 10, 64)
	return int(v), err
}

// ParseHello parses a session-opening line into its parameters.
func ParseHello(line []byte) (SessionParams, error) {
	var p SessionParams
	f := fieldScanner{b: line}
	if tok, ok := f.next(); !ok || string(tok) != "hello" {
		return p, fmt.Errorf("serve: expected a hello line, got %q", line)
	}
	if tok, ok := f.next(); !ok || string(tok) != helloMagic {
		return p, fmt.Errorf("serve: unsupported protocol %q (want %s)", tok, helloMagic)
	}
	mode, ok := f.next()
	if !ok {
		return p, fmt.Errorf("serve: hello is missing the mode")
	}
	switch string(mode) {
	case "csi":
		p.Mode = uplink.StreamCSI
	case "rssi":
		p.Mode = uplink.StreamRSSI
	default:
		return p, fmt.Errorf("serve: unknown mode %q", mode)
	}
	var err error
	if p.BitRate, err = f.float(); err != nil {
		return p, fmt.Errorf("serve: hello bit rate: %v", err)
	}
	if p.Start, err = f.float(); err != nil {
		return p, fmt.Errorf("serve: hello start: %v", err)
	}
	if p.PayloadLen, err = f.int(); err != nil {
		return p, fmt.Errorf("serve: hello payload length: %v", err)
	}
	if p.Antennas, err = f.int(); err != nil {
		return p, fmt.Errorf("serve: hello antennas: %v", err)
	}
	if p.Subchannels, err = f.int(); err != nil {
		return p, fmt.Errorf("serve: hello sub-channels: %v", err)
	}
	for {
		tok, ok := f.next()
		if !ok {
			break
		}
		s := string(tok)
		switch {
		case len(s) > 5 && s[:5] == "prio=":
			v, err := strconv.ParseInt(s[5:], 10, 64)
			if err != nil || v < 0 || v > 9 {
				return p, fmt.Errorf("serve: hello priority %q (want 0-9)", s[5:])
			}
			p.Priority = int(v)
		case s == "resume=1":
			p.Resumable = true
		case s == "resume=0":
			p.Resumable = false
		default:
			return p, fmt.Errorf("serve: trailing fields on hello line")
		}
	}
	return p, p.Validate()
}

// AppendHello formats the session-opening line (client side), without
// the trailing newline.
func AppendHello(dst []byte, p SessionParams) []byte {
	dst = append(dst, "hello "...)
	dst = append(dst, helloMagic...)
	dst = append(dst, ' ')
	if p.Mode == uplink.StreamRSSI {
		dst = append(dst, "rssi "...)
	} else {
		dst = append(dst, "csi "...)
	}
	dst = strconv.AppendFloat(dst, p.BitRate, 'g', -1, 64)
	dst = append(dst, ' ')
	dst = strconv.AppendFloat(dst, p.Start, 'g', -1, 64)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(p.PayloadLen), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(p.Antennas), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(p.Subchannels), 10)
	if p.Priority != 0 {
		dst = append(dst, " prio="...)
		dst = strconv.AppendInt(dst, int64(p.Priority), 10)
	}
	if p.Resumable {
		dst = append(dst, " resume=1"...)
	}
	return dst
}

// ParseResume parses a session-resuming line into its token and the
// number of bit lines the client already holds.
func ParseResume(line []byte) (token string, haveBits int, err error) {
	f := fieldScanner{b: line}
	if tok, ok := f.next(); !ok || string(tok) != "resume" {
		return "", 0, fmt.Errorf("serve: expected a resume line, got %q", line)
	}
	if tok, ok := f.next(); !ok || string(tok) != helloMagic {
		return "", 0, fmt.Errorf("serve: unsupported protocol %q (want %s)", tok, helloMagic)
	}
	tok, ok := f.next()
	if !ok {
		return "", 0, fmt.Errorf("serve: resume is missing the token")
	}
	if len(tok) != tokenLen {
		return "", 0, fmt.Errorf("serve: resume token must be %d hex digits", tokenLen)
	}
	for _, c := range tok {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return "", 0, fmt.Errorf("serve: resume token must be %d hex digits", tokenLen)
		}
	}
	token = string(tok)
	if haveBits, err = f.int(); err != nil {
		return "", 0, fmt.Errorf("serve: resume bits-received: %v", err)
	}
	if haveBits < 0 || haveBits > MaxPayloadLen {
		return "", 0, fmt.Errorf("serve: implausible resume bits-received %d", haveBits)
	}
	if _, extra := f.next(); extra {
		return "", 0, fmt.Errorf("serve: trailing fields on resume line")
	}
	return token, haveBits, nil
}

// AppendResume formats the session-resuming line (client side), without
// the trailing newline.
func AppendResume(dst []byte, token string, haveBits int) []byte {
	dst = append(dst, "resume "...)
	dst = append(dst, helloMagic...)
	dst = append(dst, ' ')
	dst = append(dst, token...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(haveBits), 10)
	return dst
}

// ParseMeasurement parses an m line into a preallocated measurement
// whose shape declares the expected field count (RSSI first, then CSI
// antenna-major). The measurement is overwritten in place.
func ParseMeasurement(line []byte, m *csi.Measurement) error {
	f := fieldScanner{b: line}
	if tok, ok := f.next(); !ok || string(tok) != "m" {
		return fmt.Errorf("serve: expected an m line, got %q", line)
	}
	var err error
	if m.Timestamp, err = f.float(); err != nil {
		return fmt.Errorf("serve: m timestamp: %v", err)
	}
	for a := range m.RSSI {
		if m.RSSI[a], err = f.float(); err != nil {
			return fmt.Errorf("serve: m rssi[%d]: %v", a, err)
		}
	}
	for a := range m.CSI {
		for k := range m.CSI[a] {
			if m.CSI[a][k], err = f.float(); err != nil {
				return fmt.Errorf("serve: m csi[%d][%d]: %v", a, k, err)
			}
		}
	}
	if _, extra := f.next(); extra {
		return fmt.Errorf("serve: m line has more fields than the declared shape")
	}
	return nil
}

// AppendMeasurement formats an m line (client side), without the
// trailing newline.
func AppendMeasurement(dst []byte, m csi.Measurement) []byte {
	dst = append(dst, 'm', ' ')
	dst = strconv.AppendFloat(dst, m.Timestamp, 'g', -1, 64)
	for _, v := range m.RSSI {
		dst = append(dst, ' ')
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	for _, row := range m.CSI {
		for _, v := range row {
			dst = append(dst, ' ')
			dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
		}
	}
	return dst
}

// ResponseKind discriminates parsed server lines.
type ResponseKind int

// Response kinds.
const (
	// RespOK acknowledges a hello; ID carries the session id.
	RespOK ResponseKind = iota
	// RespReject refuses a hello; Reason says why.
	RespReject
	// RespBit delivers one decoded bit.
	RespBit
	// RespDone delivers the final result.
	RespDone
	// RespError delivers a session failure.
	RespError
)

// Response is one parsed server line (client side).
type Response struct {
	Kind ResponseKind
	// ID is the session id (RespOK).
	ID uint64
	// Token is the resume token (RespOK on a resumable session).
	Token string
	// Seq is the number of measurements the server already consumed
	// (RespOK on a resumable session; the client skips that many).
	Seq int64
	// Final reports that the session's result is already recorded and
	// will be replayed without further input (RespOK, fin=1).
	Final bool
	// RetryAfter is the machine-readable backoff hint in seconds
	// (RespReject under load; 0 when the server sent none).
	RetryAfter float64
	// Reason is the reject or error text.
	Reason string
	// Bit is the decoded bit (RespBit).
	Bit uplink.BitDecision
	// Bits is the final payload as a 0/1 string (RespDone; empty if the
	// decode produced no payload).
	Bits string
	// Corr and MPB are the final preamble correlation and mean
	// measurements per bit (RespDone).
	Corr, MPB float64
}

// ParseResponse parses one server line.
func ParseResponse(line []byte) (Response, error) {
	var r Response
	f := fieldScanner{b: line}
	kind, ok := f.next()
	if !ok {
		return r, fmt.Errorf("serve: empty response line")
	}
	var err error
	switch string(kind) {
	case "ok":
		r.Kind = RespOK
		tok, ok := f.next()
		if !ok {
			return r, fmt.Errorf("serve: ok line is missing the session id")
		}
		if r.ID, err = strconv.ParseUint(string(tok), 10, 64); err != nil {
			return r, err
		}
		for {
			tok, ok := f.next()
			if !ok {
				break
			}
			s := string(tok)
			switch {
			case len(s) > 6 && s[:6] == "token=":
				r.Token = s[6:]
			case len(s) > 4 && s[:4] == "seq=":
				r.Seq, err = strconv.ParseInt(s[4:], 10, 64)
			case s == "fin=0":
				r.Final = false
			case s == "fin=1":
				r.Final = true
			default:
				err = fmt.Errorf("serve: unknown ok field %q", s)
			}
			if err != nil {
				return r, err
			}
		}
		return r, nil
	case "reject":
		r.Kind = RespReject
		if tok, ok := f.peek(); ok {
			s := string(tok)
			if len(s) > 12 && s[:12] == "retry-after=" {
				if r.RetryAfter, err = strconv.ParseFloat(s[12:], 64); err != nil {
					return r, fmt.Errorf("serve: reject retry-after: %v", err)
				}
				f.next()
			}
		}
		r.Reason = f.rest()
		return r, nil
	case "error":
		r.Kind = RespError
		r.Reason = f.rest()
		return r, nil
	case "bit":
		r.Kind = RespBit
		if r.Bit.Index, err = f.int(); err != nil {
			return r, fmt.Errorf("serve: bit index: %v", err)
		}
		v, err := f.int()
		if err != nil {
			return r, fmt.Errorf("serve: bit value: %v", err)
		}
		r.Bit.Bit = v != 0
		if r.Bit.Measurements, err = f.int(); err != nil {
			return r, fmt.Errorf("serve: bit measurements: %v", err)
		}
		return r, nil
	case "done":
		r.Kind = RespDone
		bits, ok := f.next()
		if !ok {
			return r, fmt.Errorf("serve: done line is missing the payload")
		}
		if string(bits) != "-" {
			for _, c := range bits {
				if c != '0' && c != '1' {
					return r, fmt.Errorf("serve: done payload has a non-bit byte %q", c)
				}
			}
			r.Bits = string(bits)
		}
		for {
			tok, ok := f.next()
			if !ok {
				break
			}
			s := string(tok)
			switch {
			case len(s) > 5 && s[:5] == "corr=":
				r.Corr, err = strconv.ParseFloat(s[5:], 64)
			case len(s) > 4 && s[:4] == "mpb=":
				r.MPB, err = strconv.ParseFloat(s[4:], 64)
			default:
				err = fmt.Errorf("serve: unknown done field %q", s)
			}
			if err != nil {
				return r, err
			}
		}
		return r, nil
	}
	return r, fmt.Errorf("serve: unknown response line %q", line)
}
