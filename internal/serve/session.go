package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// Session is one admitted decode stream. Producers (a TCP handler, or an
// in-process caller) feed measurements with Push/TryPush; a dedicated
// worker goroutine drains them through the session's StreamDecoder and
// emits bits on the sink as the frame closes. Finish ends the input and
// flushes; Result blocks for the final outcome.
//
// Memory is bounded and steady-state allocation-free by construction:
// the session owns a fixed ring of preallocated measurement slots sized
// to the declared shape. Push copies into a free slot and hands the slot
// index to the worker; the worker hands it back after the decoder copies
// the sample into its pooled frame arena. The two index channels (free
// and in) each hold every slot, so channel sends never block — only the
// free-slot receive does, and that wait is the backpressure.
type Session struct {
	srv  *Server
	id   uint64
	p    SessionParams
	sd   *uplink.StreamDecoder
	sink Sink

	slots []csi.Measurement
	free  chan int32
	in    chan int32

	// pmu serializes producers with each other and with Finish, so a
	// slot is never written while its index is in flight and in is never
	// closed under a pending send.
	pmu    sync.Mutex
	closed bool

	quit    chan struct{} // closed by abort; unblocks a waiting Push
	quitted atomic.Int32  // CAS guard for closing quit (no closure: abort sits on watchdog hot paths)
	done    chan struct{} // closed when the worker has delivered the result

	emu sync.Mutex
	err error
	res *uplink.Result

	cmu    sync.Mutex
	closer closer // transport to force-close on abort

	// Resume state. rs is non-nil exactly when the session was opened
	// Resumable; token is its stable resume handle.
	rs    *resumeSink
	token string
	// consumed counts measurements accepted into the ring; a resuming
	// client reads it back as seq= and skips that many. gen fences
	// producers across a resume steal: wire pushes carry the generation
	// they attached under and ErrSessionClosed out once it moves on.
	consumed atomic.Int64
	gen      atomic.Uint32
	// Park bookkeeping, owned by srv.mu.
	detached bool
	parkedAt time.Time
	parkOrd  int64
	// prodExit, when non-nil, is closed by the current wire producer
	// (the TCP handler) on exit; ResumeSession waits on it so the old
	// connection's delivered lines are fully consumed before the resume
	// cursor is snapshotted.
	prodMu   sync.Mutex
	prodExit chan struct{}

	// Watchdog state: progress counts processed slots plus lifecycle
	// steps, busy marks the worker inside a Push/finalize (a stall there
	// counts even with an empty ring). wdProgress/wdIdle are touched only
	// by the watchdog goroutine.
	progress   atomic.Int64
	busy       atomic.Int32
	wdProgress int64
	wdIdle     int
}

// newSession builds the session and its preallocated slot ring. The
// caller holds srv.mu and starts the worker.
func newSession(srv *Server, id uint64, p SessionParams, sink Sink) (*Session, error) {
	dec, err := uplink.NewDecoder(uplink.DefaultConfig(1 / p.BitRate))
	if err != nil {
		return nil, err
	}
	sd, err := dec.NewStream(p.Start, p.PayloadLen, p.Mode)
	if err != nil {
		return nil, err
	}
	nslots := srv.cfg.sessionBuffer()
	s := &Session{
		srv:   srv,
		id:    id,
		p:     p,
		sd:    sd,
		sink:  sink,
		slots: make([]csi.Measurement, nslots),
		free:  make(chan int32, nslots),
		in:    make(chan int32, nslots),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := range s.slots {
		if p.Subchannels > 0 {
			rows := make([][]float64, p.Antennas)
			flat := make([]float64, p.Antennas*p.Subchannels)
			for a := range rows {
				rows[a] = flat[a*p.Subchannels : (a+1)*p.Subchannels : (a+1)*p.Subchannels]
			}
			s.slots[i].CSI = rows
		}
		s.slots[i].RSSI = make([]float64, p.Antennas)
		s.free <- int32(i)
	}
	if p.Resumable {
		s.rs = &resumeSink{
			s:     s,
			inner: sink,
			bits:  make([]uplink.BitDecision, 0, p.PayloadLen),
		}
		s.sink = s.rs
	}
	return s, nil
}

// ID returns the session's server-unique identifier.
func (s *Session) ID() uint64 { return s.id }

// Params returns the parameters the session was opened with.
func (s *Session) Params() SessionParams { return s.p }

// Token returns the session's resume token ("" unless Resumable).
func (s *Session) Token() string { return s.token }

// Consumed returns how many measurements the session has accepted; a
// resuming client skips that many from its replay buffer.
func (s *Session) Consumed() int64 { return s.consumed.Load() }

// beginProducer marks a wire handler as the session's current producer.
// The returned channel must be handed to endProducer when the handler
// exits; ResumeSession waits on it so a resume cannot snapshot the
// cursor while delivered lines are still being consumed.
func (s *Session) beginProducer() chan struct{} {
	ch := make(chan struct{})
	s.prodMu.Lock()
	s.prodExit = ch
	s.prodMu.Unlock()
	return ch
}

// endProducer retires a wire producer: deregister (unless a newer one
// took over) and wake any resume waiting on the drain.
func (s *Session) endProducer(ch chan struct{}) {
	s.prodMu.Lock()
	if s.prodExit == ch {
		s.prodExit = nil
	}
	s.prodMu.Unlock()
	close(ch)
}

// producerExit returns the current wire producer's exit channel, nil if
// no wire producer owns the session.
func (s *Session) producerExit() <-chan struct{} {
	s.prodMu.Lock()
	defer s.prodMu.Unlock()
	return s.prodExit
}

// Push copies one measurement into the session, blocking while the slot
// ring is full (the backpressure path — at a TCP transport the blocked
// reader stalls the client's sends). It fails with ErrSessionClosed
// after Finish or an abort, and with the session's sticky error once
// poisoned.
func (s *Session) Push(m csi.Measurement) error { return s.push(m, true, 0, false) }

// TryPush is Push without the wait: a full slot ring returns
// ErrBufferFull immediately (wrapped in a RetryError carrying the
// backoff hint) and drops nothing already queued.
func (s *Session) TryPush(m csi.Measurement) error { return s.push(m, false, 0, false) }

// pushAs is the wire producer's Push: it carries the generation the
// handler attached under, so a handler whose session was stolen by a
// resume on a newer connection fails out with ErrSessionClosed instead
// of feeding measurements into the new owner's stream.
func (s *Session) pushAs(gen uint32, m csi.Measurement) error {
	return s.push(m, true, gen, true)
}

func (s *Session) push(m csi.Measurement, wait bool, gen uint32, fenced bool) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if fenced && gen != s.gen.Load() {
		return ErrSessionClosed
	}
	if s.closed {
		return ErrSessionClosed
	}
	if err := s.Err(); err != nil {
		return err
	}
	select {
	case <-s.quit:
		// Aborted: refuse deterministically even while slots are free.
		return ErrSessionClosed
	default:
	}
	var idx int32
	if wait {
		select {
		case idx = <-s.free:
		case <-s.quit:
			return ErrSessionClosed
		}
	} else {
		select {
		case idx = <-s.free:
		default:
			s.srv.met.bufferFull.Add(1)
			// A full ring is occupancy 1 by definition; the server-wide
			// Pressure() would need srv.mu, which this path must not take.
			return s.srv.retryErr(ErrBufferFull, 1)
		}
	}
	if err := s.copyInto(idx, m); err != nil {
		// A shape violation poisons this session exactly like the
		// decoder's own shape check would — sticky error, input closed,
		// the failure emitted on the sink — and touches nobody else.
		s.free <- idx
		if s.setErr(err) {
			s.srv.met.poisoned.Add(1)
		}
		s.finishLocked()
		return err
	}
	s.in <- idx
	s.consumed.Add(1)
	s.srv.met.queued.Add(1)
	s.srv.met.noteQueueDepth(len(s.in))
	s.srv.met.measurements.Add(1)
	return nil
}

// copyInto copies m into slot idx, enforcing the declared shape.
func (s *Session) copyInto(idx int32, m csi.Measurement) error {
	dst := &s.slots[idx]
	if len(m.RSSI) != s.p.Antennas {
		return fmt.Errorf("serve: measurement has %d RSSI antennas, session declared %d",
			len(m.RSSI), s.p.Antennas)
	}
	if s.p.Subchannels > 0 {
		if len(m.CSI) != s.p.Antennas {
			return fmt.Errorf("serve: measurement has %d CSI antennas, session declared %d",
				len(m.CSI), s.p.Antennas)
		}
		for a, row := range m.CSI {
			if len(row) != s.p.Subchannels {
				return fmt.Errorf("serve: antenna %d has %d sub-channels, session declared %d",
					a, len(row), s.p.Subchannels)
			}
			copy(dst.CSI[a], row)
		}
	} else if len(m.CSI) != 0 {
		return fmt.Errorf("serve: measurement carries CSI, session declared an RSSI-only shape")
	}
	copy(dst.RSSI, m.RSSI)
	dst.Timestamp = m.Timestamp
	return nil
}

// Finish ends the session's input; the worker flushes the stream (the
// partial-frame salvage batch decoders do at end of trace) and delivers
// the final result on the sink. Finish is idempotent and safe to call
// concurrently with producers.
func (s *Session) Finish() {
	s.pmu.Lock()
	s.finishLocked()
	s.pmu.Unlock()
}

func (s *Session) finishLocked() {
	if !s.closed {
		s.closed = true
		close(s.in)
	}
}

// abort force-ends the session — the drain deadline, the watchdog's
// stall verdict, a shed preemption, or a checkpoint eviction: it
// unblocks any producer waiting for a slot and closes the session's
// transport, which unblocks a worker stuck writing to a dead client.
// The input is closed by the normal Finish path once the producer backs
// off.
func (s *Session) abort() {
	if s.quitted.CompareAndSwap(0, 1) {
		close(s.quit)
	}
	s.cmu.Lock()
	c := s.closer
	s.cmu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// SetCloser registers the transport abort should force-close.
func (s *Session) SetCloser(c closer) {
	s.cmu.Lock()
	s.closer = c
	s.cmu.Unlock()
}

// swapCloser installs a new transport and returns the previous one (the
// resume steal path closes the old connection outside srv.mu).
func (s *Session) swapCloser(c closer) closer {
	s.cmu.Lock()
	old := s.closer
	s.closer = c
	s.cmu.Unlock()
	return old
}

// Done returns a channel closed once the worker has delivered the final
// result.
func (s *Session) Done() <-chan struct{} { return s.done }

// Err returns the session's sticky error, if any.
func (s *Session) Err() error {
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.err
}

// setErr records the session's sticky error and reports whether this
// call was the one that set it — callers count poisoned/stalled/shed
// verdicts only on a true return, so a session dies under exactly one
// accounting bucket.
func (s *Session) setErr(err error) bool {
	s.emu.Lock()
	first := s.err == nil
	if first {
		s.err = err
	}
	s.emu.Unlock()
	return first
}

// Result blocks until the session completes and returns its outcome.
func (s *Session) Result() (*uplink.Result, error) {
	<-s.done
	s.emu.Lock()
	defer s.emu.Unlock()
	return s.res, s.err
}

// loop is the session's worker: the per-measurement serving hot path (a
// wblint hot-path root — no boxing, no escaping closures, no unbounded
// append). It drains the slot ring through the stream decoder, recycles
// each slot the moment the decoder has copied it into the pooled frame
// arena, and emits bits on the sink as soon as the frame closes. A
// decode or sink error poisons only this session: remaining queued slots
// drain without decoding and the error is delivered once at the end.
func (s *Session) loop() {
	poisoned := false
	for idx := range s.in {
		s.srv.met.queued.Add(-1)
		if poisoned {
			s.free <- idx
			s.progress.Add(1)
			continue
		}
		s.busy.Store(1)
		bits, err := s.sd.Push(s.slots[idx])
		s.free <- idx
		if err != nil {
			if s.setErr(err) {
				s.srv.met.poisoned.Add(1)
			}
			poisoned = true
			s.busy.Store(0)
			s.progress.Add(1)
			continue
		}
		if len(bits) == 0 {
			s.busy.Store(0)
			s.progress.Add(1)
			continue
		}
		s.srv.met.bitsServed.Add(int64(len(bits)))
		if err := s.sink.EmitBits(bits); err != nil {
			if s.setErr(err) {
				s.srv.met.poisoned.Add(1)
			}
			poisoned = true
		}
		s.busy.Store(0)
		s.progress.Add(1)
	}
	s.busy.Store(1)
	s.finalize()
}

// finalize flushes the stream (unless poisoned), delivers the final
// outcome on the sink, and retires the session.
func (s *Session) finalize() {
	err := s.Err()
	var res *uplink.Result
	if err == nil {
		res, err = s.sd.Flush()
		if err != nil {
			s.setErr(err)
		} else {
			s.emu.Lock()
			s.res = res
			s.emu.Unlock()
			s.srv.met.completed.Add(1)
		}
	}
	s.sink.EmitResult(res, err)
	close(s.done)
	s.srv.sessionClosed(s)
}
