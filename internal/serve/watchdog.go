package serve

import "time"

// Stuck-stream watchdog (DESIGN.md §13). A session can stop advancing
// without failing: a sink that blocks forever, a client that fills the
// slot ring and never reads a response, a decoder wedged behind either.
// Before this layer such a session was only caught at drain time by the
// hard deadline. With Config.StallTimeout set, a watchdog goroutine
// sweeps every active session on a poll cadence and tracks a progress
// heartbeat (slots processed plus lifecycle steps). A session whose
// heartbeat has not moved for StallTimeout while work is pending —
// queued slots, or the worker parked inside a sink call — is aborted
// alone with the distinct ErrStalled verdict: producers unblock, the
// transport closes (which frees a worker stuck mid-write), and every
// other session keeps streaming. serve.watchdog.* metrics account for
// scans and stall verdicts.

// watchdog is the sweep goroutine, started by NewServer when
// StallTimeout > 0 and stopped when Drain begins (drain has its own
// deadline discipline; two reapers racing would double-account).
func (srv *Server) watchdog() {
	t := time.NewTicker(srv.cfg.watchdogPoll())
	defer t.Stop()
	for {
		select {
		case <-srv.wdStop:
			return
		case <-t.C:
			srv.watchdogSweep()
		}
	}
}

// watchdogSweep runs one watchdog pass over the active sessions (a
// wblint hot-path root: it runs on a tight cadence against every live
// session, so no boxing, no escaping closures, no unbounded append).
// Exported to tests via WatchdogSweep.
func (srv *Server) watchdogSweep() {
	srv.met.watchdogScans.Add(1)
	limit := srv.stallPolls()
	srv.mu.Lock()
	sessions := make([]*Session, 0, len(srv.sessions))
	for s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		if !s.noteWatchdogPoll(limit) {
			continue
		}
		srv.met.watchdogStalls.Add(1)
		srv.met.noteStrain()
		s.stallAbort()
	}
}

// WatchdogSweep runs one watchdog pass synchronously. Deterministic
// tests drive the deadline by calling it repeatedly instead of waiting
// on the poll ticker; each call counts as one poll interval against
// StallTimeout.
func (srv *Server) WatchdogSweep() { srv.watchdogSweep() }

// stallPolls converts the stall deadline into whole poll intervals
// (minimum one: a sweep can only observe poll-grained time).
func (srv *Server) stallPolls() int {
	poll := srv.cfg.watchdogPoll()
	n := int((srv.cfg.StallTimeout + poll - 1) / poll)
	if n < 1 {
		n = 1
	}
	return n
}

// noteWatchdogPoll folds one watchdog observation into the session and
// reports whether the session just crossed the stall deadline. Only the
// watchdog goroutine touches wdProgress/wdIdle. A session is eligible
// only while work is pending: queued slots in the ring, or the worker
// parked inside a sink call (busy) — an idle session waiting for its
// client is not stalled, it is just quiet.
func (s *Session) noteWatchdogPoll(limit int) bool {
	prog := s.progress.Load()
	if prog != s.wdProgress {
		s.wdProgress = prog
		s.wdIdle = 0
		return false
	}
	if len(s.in) == 0 && s.busy.Load() == 0 {
		s.wdIdle = 0
		return false
	}
	s.wdIdle++
	return s.wdIdle == limit
}

// stallAbort delivers the watchdog's verdict: sticky ErrStalled, then
// the standard abort/finish so the worker can retire the session and
// the sink receives the error exactly once. A session that already
// failed for another reason keeps its first verdict.
func (s *Session) stallAbort() {
	if !s.setErr(ErrStalled) {
		return
	}
	s.abort()
	s.Finish()
}
