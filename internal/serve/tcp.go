package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// ServeTCP accepts line-protocol connections on l until the listener
// closes (net.ErrClosed returns nil — the daemon's shutdown path closes
// the listener, then Drains). One goroutine per connection; admission is
// still the Server's — a connection whose hello loses the Open race gets
// an explicit reject line, never a hang.
func (srv *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !srv.addConn(conn) {
			// Drain already started: refuse explicitly.
			_, _ = conn.Write([]byte("reject " + ErrDraining.Error() + "\n"))
			_ = conn.Close()
			continue
		}
		go srv.handleConn(conn)
	}
}

// handleConn runs one connection: hello → session → measurement lines →
// flush (or EOF / idle timeout, both of which salvage the partial frame
// exactly like wbdecode does on a truncated pipe). The handler is the
// producer side; decoded bits flow back from the session's worker
// through a mutex-serialized connSink.
func (srv *Server) handleConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	defer srv.removeConn(conn)
	sink := &connSink{srv: srv, c: conn}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	srv.stampReadDeadline(conn)
	if !sc.Scan() {
		return
	}
	p, err := ParseHello(sc.Bytes())
	if err != nil {
		sink.control("reject ", err.Error())
		return
	}
	sess, err := srv.Open(p, sink)
	if err != nil {
		sink.control("reject ", err.Error())
		return
	}
	sess.SetCloser(conn)
	sink.ok(sess.ID())
	scratch := newScratch(p)
	for sc.Scan() {
		srv.stampReadDeadline(conn)
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if len(line) == 5 && string(line) == "flush" {
			finishAndWait(sess)
			return
		}
		if err := ParseMeasurement(line, &scratch); err != nil {
			sink.control("error ", err.Error())
			finishAndWait(sess)
			return
		}
		if err := sess.Push(scratch); err != nil {
			// Poisoned or aborted: the worker delivers the error on the
			// sink; nothing more to read from this client.
			finishAndWait(sess)
			return
		}
	}
	// EOF, read error, or idle timeout: flush what arrived.
	finishAndWait(sess)
}

// finishAndWait ends the session's input and blocks until its worker has
// written the final response, so the deferred close cannot race the done
// line.
func finishAndWait(s *Session) {
	s.Finish()
	<-s.Done()
}

// stampReadDeadline arms the per-line idle deadline, when configured.
func (srv *Server) stampReadDeadline(conn net.Conn) {
	if srv.cfg.Now == nil || srv.cfg.IdleTimeout <= 0 {
		return
	}
	_ = conn.SetReadDeadline(srv.cfg.Now().Add(srv.cfg.IdleTimeout))
}

// newScratch builds one measurement of the session's declared shape for
// the handler to parse into; Push copies it, so one scratch per
// connection suffices.
func newScratch(p SessionParams) csi.Measurement {
	m := csi.Measurement{RSSI: make([]float64, p.Antennas)}
	if p.Subchannels > 0 {
		m.CSI = make([][]float64, p.Antennas)
		flat := make([]float64, p.Antennas*p.Subchannels)
		for a := range m.CSI {
			m.CSI[a] = flat[a*p.Subchannels : (a+1)*p.Subchannels : (a+1)*p.Subchannels]
		}
	}
	return m
}

// connSink writes a session's responses to its connection. Two
// goroutines write here — the handler (ok/reject/error control lines)
// and the session worker (bit/done lines) — so every write holds mu.
// The formatting paths reachable from the worker are allocation-free:
// one reused buffer, strconv appends, no fmt.
type connSink struct {
	srv *Server
	c   net.Conn
	mu  sync.Mutex
	buf []byte
}

// EmitBits implements Sink on the session worker's hot path.
func (cs *connSink) EmitBits(bits []uplink.BitDecision) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	for i := range bits {
		cs.buf = append(cs.buf, "bit "...)
		cs.buf = strconv.AppendInt(cs.buf, int64(bits[i].Index), 10)
		cs.buf = append(cs.buf, ' ')
		if bits[i].Bit {
			cs.buf = append(cs.buf, '1')
		} else {
			cs.buf = append(cs.buf, '0')
		}
		cs.buf = append(cs.buf, ' ')
		cs.buf = strconv.AppendInt(cs.buf, int64(bits[i].Measurements), 10)
		cs.buf = append(cs.buf, '\n')
	}
	return cs.write(cs.buf)
}

// EmitResult implements Sink; called once, at session end.
func (cs *connSink) EmitResult(res *uplink.Result, err error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	if err != nil {
		cs.buf = append(cs.buf, "error "...)
		cs.buf = append(cs.buf, err.Error()...)
		cs.buf = append(cs.buf, '\n')
		_ = cs.write(cs.buf)
		return
	}
	cs.buf = append(cs.buf, "done "...)
	if len(res.Payload) == 0 {
		cs.buf = append(cs.buf, '-')
	}
	for i := range res.Payload {
		if res.Payload[i] {
			cs.buf = append(cs.buf, '1')
		} else {
			cs.buf = append(cs.buf, '0')
		}
	}
	cs.buf = append(cs.buf, " corr="...)
	cs.buf = strconv.AppendFloat(cs.buf, res.PreambleCorrelation, 'g', -1, 64)
	cs.buf = append(cs.buf, " mpb="...)
	cs.buf = strconv.AppendFloat(cs.buf, res.MeasurementsPerBit, 'g', -1, 64)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// ok acknowledges the hello with the session id.
func (cs *connSink) ok(id uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	cs.buf = append(cs.buf, "ok "...)
	cs.buf = strconv.AppendUint(cs.buf, id, 10)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// control writes a reject/error control line from the handler side.
func (cs *connSink) control(prefix, msg string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	cs.buf = append(cs.buf, prefix...)
	cs.buf = append(cs.buf, msg...)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// write sends one formatted response, arming the write deadline when the
// server has a clock (a client that stops reading fails its own session
// at the deadline instead of parking the worker forever).
func (cs *connSink) write(b []byte) error {
	if cs.srv.cfg.Now != nil && cs.srv.cfg.WriteTimeout > 0 {
		_ = cs.c.SetWriteDeadline(cs.srv.cfg.Now().Add(cs.srv.cfg.WriteTimeout))
	}
	_, err := cs.c.Write(b)
	if err != nil {
		return fmt.Errorf("serve: response write: %w", err)
	}
	return nil
}
