package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"repro/internal/csi"
	"repro/internal/uplink"
)

// ServeTCP accepts line-protocol connections on l until the listener
// closes (net.ErrClosed returns nil — the daemon's shutdown path closes
// the listener, then Drains). One goroutine per connection; admission is
// still the Server's — a connection whose hello loses the Open race gets
// an explicit reject line, never a hang.
func (srv *Server) ServeTCP(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !srv.addConn(conn) {
			// Drain already started: refuse explicitly.
			_, _ = conn.Write([]byte("reject " + ErrDraining.Error() + "\n"))
			_ = conn.Close()
			continue
		}
		go srv.handleConn(conn)
	}
}

// lineReader yields complete newline-terminated lines from a
// connection into a reused buffer. Unlike bufio.Scanner it never
// surfaces a trailing fragment without its terminator: a connection cut
// mid-line (chaos, tag brown-out) must not hand the parser a truncated
// prefix — "m 1.5 -42.7" cut to "m 1.5 -42" parses as a valid wrong
// measurement, which would silently diverge a resumed stream from the
// batch decode. Dropping the fragment is safe because the client counts
// only complete lines and re-sends from its acknowledged cursor.
type lineReader struct {
	br   *bufio.Reader
	line []byte
}

// maxLineLen bounds one protocol line (matches the former Scanner cap).
const maxLineLen = 1 << 20

func newLineReader(conn net.Conn) *lineReader {
	return &lineReader{br: bufio.NewReaderSize(conn, 64<<10)}
}

// scan reads the next complete line, stripping the terminator (and one
// trailing CR). It returns false on EOF, read error, deadline, or an
// oversized line — the caller treats all of these as end of input.
func (lr *lineReader) scan() bool {
	lr.line = lr.line[:0]
	for {
		frag, err := lr.br.ReadSlice('\n')
		lr.line = append(lr.line, frag...)
		if err == nil {
			lr.line = lr.line[:len(lr.line)-1]
			if n := len(lr.line); n > 0 && lr.line[n-1] == '\r' {
				lr.line = lr.line[:n-1]
			}
			return true
		}
		if err != bufio.ErrBufferFull || len(lr.line) > maxLineLen {
			return false
		}
	}
}

// handleConn runs one connection: hello (or resume) → session →
// measurement lines → flush (or EOF / idle timeout, both of which
// salvage the partial frame exactly like wbdecode does on a truncated
// pipe — except for a resumable session, which parks its checkpoint for
// a reconnect instead). The handler is the producer side; decoded bits
// flow back from the session's worker through a mutex-serialized
// connSink.
func (srv *Server) handleConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	defer srv.removeConn(conn)
	sink := &connSink{srv: srv, c: conn}
	lr := newLineReader(conn)
	srv.stampReadDeadline(conn)
	if !lr.scan() {
		return
	}
	first := lr.line
	if len(first) >= 7 && string(first[:7]) == "resume " {
		srv.handleResume(conn, sink, lr, first)
		return
	}
	p, err := ParseHello(first)
	if err != nil {
		sink.reject(err)
		return
	}
	sess, err := srv.Open(p, sink)
	if err != nil {
		sink.reject(err)
		return
	}
	sess.SetCloser(conn)
	if p.Resumable {
		// Register as the wire producer before the ok line goes out: once
		// the client holds the token it may cut and resume at any moment,
		// and ResumeSession must always find this handler to drain.
		ch := sess.beginProducer()
		defer sess.endProducer(ch)
		sink.okResumable(sess.ID(), sess.Token(), 0, false)
	} else {
		sink.ok(sess.ID())
	}
	// The original connection produces under generation 0 by definition;
	// a resume on a newer connection bumps the generation and fences
	// this handler's pushes out.
	srv.serveSession(conn, sink, lr, sess, 0)
}

// handleResume re-attaches a cut client to its parked session: token
// lookup, transport steal, ok line + missed-bit replay under the
// checkpoint lock, then the normal measurement loop under the new
// producer generation.
func (srv *Server) handleResume(conn net.Conn, sink *connSink, lr *lineReader, line []byte) {
	token, have, err := ParseResume(line)
	if err != nil {
		sink.reject(err)
		return
	}
	sess, gen, err := srv.ResumeSession(token, conn)
	if err != nil {
		sink.reject(err)
		return
	}
	ch := sess.beginProducer()
	defer sess.endProducer(ch)
	info, err := sess.Attach(sink, have, func(info AttachInfo) {
		sink.okResumable(sess.ID(), sess.Token(), info.Consumed, info.Final)
	})
	if err != nil {
		sink.reject(err)
		return
	}
	if info.Final {
		// The recorded result was replayed under Attach; nothing left.
		return
	}
	srv.serveSession(conn, sink, lr, sess, gen)
}

// serveSession is the measurement loop shared by the hello and resume
// paths.
func (srv *Server) serveSession(conn net.Conn, sink *connSink, lr *lineReader, sess *Session, gen uint32) {
	scratch := newScratch(sess.Params())
	resumable := sess.rs != nil
	for {
		srv.stampReadDeadline(conn)
		if !lr.scan() {
			break
		}
		line := lr.line
		if len(line) == 0 {
			continue
		}
		if len(line) == 5 && string(line) == "flush" {
			finishAndWait(sess)
			return
		}
		if err := ParseMeasurement(line, &scratch); err != nil {
			sink.control("error ", err.Error())
			finishAndWait(sess)
			return
		}
		if err := sess.pushAs(gen, scratch); err != nil {
			if resumable && sess.stolen(gen) {
				// A newer connection resumed this session mid-push; it is
				// not ours to finish, and waiting for its result would
				// hold this dead transport's handler hostage.
				return
			}
			// Poisoned or aborted: the worker delivers the error on the
			// sink; nothing more to read from this client.
			finishAndWait(sess)
			return
		}
	}
	// EOF, read error, or idle timeout.
	if resumable {
		if !sess.stolen(gen) {
			// The cut is what resume exists for: park the checkpoint and
			// keep the decoder state warm for the reconnect.
			sess.detachFrom(sink)
		}
		return
	}
	// Plain session: flush what arrived.
	finishAndWait(sess)
}

// finishAndWait ends the session's input and blocks until its worker has
// written the final response, so the deferred close cannot race the done
// line.
func finishAndWait(s *Session) {
	s.Finish()
	<-s.Done()
}

// stampReadDeadline arms the per-line idle deadline, when configured.
func (srv *Server) stampReadDeadline(conn net.Conn) {
	if srv.cfg.Now == nil || srv.cfg.IdleTimeout <= 0 {
		return
	}
	_ = conn.SetReadDeadline(srv.cfg.Now().Add(srv.cfg.IdleTimeout))
}

// newScratch builds one measurement of the session's declared shape for
// the handler to parse into; Push copies it, so one scratch per
// connection suffices.
func newScratch(p SessionParams) csi.Measurement {
	m := csi.Measurement{RSSI: make([]float64, p.Antennas)}
	if p.Subchannels > 0 {
		m.CSI = make([][]float64, p.Antennas)
		flat := make([]float64, p.Antennas*p.Subchannels)
		for a := range m.CSI {
			m.CSI[a] = flat[a*p.Subchannels : (a+1)*p.Subchannels : (a+1)*p.Subchannels]
		}
	}
	return m
}

// connSink writes a session's responses to its connection. Two
// goroutines write here — the handler (ok/reject/error control lines)
// and the session worker (bit/done lines) — so every write holds mu.
// The formatting paths reachable from the worker are allocation-free:
// one reused buffer, strconv appends, no fmt.
type connSink struct {
	srv *Server
	c   net.Conn
	mu  sync.Mutex
	buf []byte
}

// EmitBits implements Sink on the session worker's hot path.
func (cs *connSink) EmitBits(bits []uplink.BitDecision) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	for i := range bits {
		cs.buf = append(cs.buf, "bit "...)
		cs.buf = strconv.AppendInt(cs.buf, int64(bits[i].Index), 10)
		cs.buf = append(cs.buf, ' ')
		if bits[i].Bit {
			cs.buf = append(cs.buf, '1')
		} else {
			cs.buf = append(cs.buf, '0')
		}
		cs.buf = append(cs.buf, ' ')
		cs.buf = strconv.AppendInt(cs.buf, int64(bits[i].Measurements), 10)
		cs.buf = append(cs.buf, '\n')
	}
	return cs.write(cs.buf)
}

// EmitResult implements Sink; called once, at session end.
func (cs *connSink) EmitResult(res *uplink.Result, err error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	if err != nil {
		cs.buf = append(cs.buf, "error "...)
		cs.buf = append(cs.buf, err.Error()...)
		cs.buf = append(cs.buf, '\n')
		_ = cs.write(cs.buf)
		return
	}
	cs.buf = append(cs.buf, "done "...)
	if len(res.Payload) == 0 {
		cs.buf = append(cs.buf, '-')
	}
	for i := range res.Payload {
		if res.Payload[i] {
			cs.buf = append(cs.buf, '1')
		} else {
			cs.buf = append(cs.buf, '0')
		}
	}
	cs.buf = append(cs.buf, " corr="...)
	cs.buf = strconv.AppendFloat(cs.buf, res.PreambleCorrelation, 'g', -1, 64)
	cs.buf = append(cs.buf, " mpb="...)
	cs.buf = strconv.AppendFloat(cs.buf, res.MeasurementsPerBit, 'g', -1, 64)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// ok acknowledges the hello with the session id.
func (cs *connSink) ok(id uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	cs.buf = append(cs.buf, "ok "...)
	cs.buf = strconv.AppendUint(cs.buf, id, 10)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// okResumable acknowledges a resumable hello or resume with the token,
// the consumed-measurement cursor, and whether the result is already
// recorded. The id is zero-padded and the token fixed-width so the
// line's byte length does not depend on the session id — chaos
// schedules are compiled to absolute byte offsets and must see the same
// offsets whatever id the admission race assigned.
func (cs *connSink) okResumable(id uint64, token string, seq int64, final bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	cs.buf = append(cs.buf, "ok "...)
	cs.buf = appendPaddedUint(cs.buf, id, 8)
	cs.buf = append(cs.buf, " token="...)
	cs.buf = append(cs.buf, token...)
	cs.buf = append(cs.buf, " seq="...)
	cs.buf = strconv.AppendInt(cs.buf, seq, 10)
	if final {
		cs.buf = append(cs.buf, " fin=1"...)
	} else {
		cs.buf = append(cs.buf, " fin=0"...)
	}
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// appendPaddedUint appends v zero-padded to at least width digits.
func appendPaddedUint(dst []byte, v uint64, width int) []byte {
	start := len(dst)
	dst = strconv.AppendUint(dst, v, 10)
	for len(dst)-start < width {
		dst = append(dst, '0')
		copy(dst[start+1:], dst[start:])
		dst[start] = '0'
	}
	return dst
}

// reject refuses a hello or resume; a RetryError's backoff hint goes on
// the wire machine-readably as "reject retry-after=<seconds> <reason>".
func (cs *connSink) reject(err error) {
	var re *RetryError
	if errors.As(err, &re) {
		cs.mu.Lock()
		defer cs.mu.Unlock()
		cs.buf = cs.buf[:0]
		cs.buf = append(cs.buf, "reject retry-after="...)
		cs.buf = strconv.AppendFloat(cs.buf, re.After.Seconds(), 'g', -1, 64)
		cs.buf = append(cs.buf, ' ')
		cs.buf = append(cs.buf, re.Err.Error()...)
		cs.buf = append(cs.buf, '\n')
		_ = cs.write(cs.buf)
		return
	}
	cs.control("reject ", err.Error())
}

// control writes a reject/error control line from the handler side.
func (cs *connSink) control(prefix, msg string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.buf = cs.buf[:0]
	cs.buf = append(cs.buf, prefix...)
	cs.buf = append(cs.buf, msg...)
	cs.buf = append(cs.buf, '\n')
	_ = cs.write(cs.buf)
}

// write sends one formatted response, arming the write deadline when the
// server has a clock (a client that stops reading fails its own session
// at the deadline instead of parking the worker forever).
func (cs *connSink) write(b []byte) error {
	if cs.srv.cfg.Now != nil && cs.srv.cfg.WriteTimeout > 0 {
		_ = cs.c.SetWriteDeadline(cs.srv.cfg.Now().Add(cs.srv.cfg.WriteTimeout))
	}
	_, err := cs.c.Write(b)
	if err != nil {
		return fmt.Errorf("serve: response write: %w", err)
	}
	return nil
}
