package serve

import (
	"time"
)

// Adaptive load shedding (DESIGN.md §13). Admission is no longer the
// binary "ErrOverloaded at MaxSessions": the server computes a pressure
// signal in [0,1] blending active-session load, aggregate slot-ring
// occupancy, and a decaying strain term fed by aborts, poisonings, and
// stall verdicts. Under pressure the policy degrades in order: a
// newcomer with strictly higher priority preempts the lowest-priority
// active session (ErrShed on the victim — its bits so far were already
// delivered, and a resumable victim keeps its checkpoint); everyone
// else is rejected with a RetryError carrying a pressure-scaled
// retry-after hint, machine-readable on the wire as
// "reject retry-after=<seconds> ...". TryPush's ErrBufferFull carries
// the same hint. Shed decisions are visible through serve.shed.* and
// the serve.pressure gauge.

// RetryError wraps a load-shedding rejection (ErrOverloaded,
// ErrBufferFull) with a machine-readable backoff hint. errors.Is sees
// through it to the underlying rejection.
type RetryError struct {
	Err   error
	After time.Duration
}

// Error formats without fmt so no operand is boxed: the method is
// statically reachable from the serving hot path via Sink.EmitResult.
func (e *RetryError) Error() string {
	return e.Err.Error() + " (retry after " + e.After.String() + ")"
}

// Unwrap exposes the underlying rejection to errors.Is/As.
func (e *RetryError) Unwrap() error { return e.Err }

// retryErr wraps base with a hint that grows with pressure: base/2 when
// idle, up to 2x base at full pressure — monotone, so a client backing
// off by the hint naturally spreads a thundering herd.
func (srv *Server) retryErr(base error, pressure float64) error {
	if pressure < 0 {
		pressure = 0
	}
	if pressure > 1 {
		pressure = 1
	}
	after := time.Duration((0.5 + 1.5*pressure) * float64(srv.cfg.retryAfterBase()))
	srv.met.retryHints.Add(1)
	return &RetryError{Err: base, After: after}
}

// Pressure returns the current load-shedding pressure in [0,1].
func (srv *Server) Pressure() float64 {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.pressureLocked()
}

// pressureLocked blends the three load signals. Weights: active
// sessions dominate (0.6) because they bound everything else; aggregate
// ring occupancy (0.3) says how far behind the workers are; strain
// (0.1) is the decaying abort/poison/stall rate, normalized so eight
// recent failures saturate it. Caller holds srv.mu.
func (srv *Server) pressureLocked() float64 {
	load := float64(len(srv.sessions)) / float64(srv.cfg.maxSessions())
	occ := 0.0
	if n := len(srv.sessions); n > 0 {
		occ = float64(srv.met.queued.Load()) / float64(n*srv.cfg.sessionBuffer())
	}
	strain := srv.met.strain() / 8
	if strain > 1 {
		strain = 1
	}
	p := 0.6*load + 0.3*occ + 0.1*strain
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
