package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestSplitDeterminismAndIndependence(t *testing.T) {
	a := New(7).Split("fading")
	b := New(7).Split("fading")
	c := New(7).Split("noise")
	equal := true
	diff := false
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Float64(), b.Float64(), c.Float64()
		if av != bv {
			equal = false
		}
		if av != cv {
			diff = true
		}
	}
	if !equal {
		t.Error("same-name splits should be identical")
	}
	if !diff {
		t.Error("different-name splits should differ")
	}
}

func TestTrialSeedDeterministicAndDecorrelated(t *testing.T) {
	// Same (base, trial) -> same seed; neighbouring trials differ.
	for trial := 0; trial < 50; trial++ {
		if TrialSeed(99, trial) != TrialSeed(99, trial) {
			t.Fatalf("TrialSeed(99, %d) not stable", trial)
		}
	}
	seen := map[int64]int{}
	for trial := 0; trial < 10_000; trial++ {
		s := TrialSeed(7, trial)
		if prev, dup := seen[s]; dup {
			t.Fatalf("TrialSeed collision: trials %d and %d both -> %d", prev, trial, s)
		}
		seen[s] = trial
	}
	// Different bases must not produce the shifted-by-one sequence a naive
	// base+trial seed would (TrialSeed(0, 1) == TrialSeed(1, 0) holds by
	// construction of the mix input, so test a stride apart instead).
	if TrialSeed(3, 10) == TrialSeed(4, 10) {
		t.Error("adjacent bases map trial 10 to the same seed")
	}
}

func TestTrialStreamMatchesTrialSeed(t *testing.T) {
	a := TrialStream(42, 5)
	b := New(TrialSeed(42, 5))
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("TrialStream diverged from New(TrialSeed)")
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	s := New(1)
	const n = 200_000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Gaussian(3, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestComplexGaussianVariance(t *testing.T) {
	s := New(2)
	const n = 200_000
	var pow float64
	for i := 0; i < n; i++ {
		z := s.ComplexGaussian(2.5)
		pow += real(z)*real(z) + imag(z)*imag(z)
	}
	if got := pow / n; math.Abs(got-2.5) > 0.05 {
		t.Errorf("E[|z|^2] = %v, want ~2.5", got)
	}
}

func TestRayleighMean(t *testing.T) {
	s := New(3)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Rayleigh(1)
	}
	want := math.Sqrt(math.Pi / 2)
	if got := sum / n; math.Abs(got-want) > 0.01 {
		t.Errorf("Rayleigh(1) mean = %v, want %v", got, want)
	}
}

func TestRicianReducesToRayleigh(t *testing.T) {
	s := New(4)
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Rician(0, 1)
	}
	want := math.Sqrt(math.Pi / 2)
	if got := sum / n; math.Abs(got-want) > 0.02 {
		t.Errorf("Rician(0,1) mean = %v, want Rayleigh mean %v", got, want)
	}
}

func TestRicianLOSDominates(t *testing.T) {
	s := New(5)
	const n = 50_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Rician(10, 0.5)
	}
	if got := sum / n; math.Abs(got-10) > 0.1 {
		t.Errorf("strong-LOS Rician mean = %v, want ~10", got)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(6)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(0.25)
	}
	if got := sum / n; math.Abs(got-0.25) > 0.005 {
		t.Errorf("Exponential(0.25) mean = %v", got)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(7)
	for _, mean := range []float64{0.5, 4, 50, 1000} {
		const n = 20_000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/float64(n)) * 3 // ~3 sigma of the sample mean
		if math.Abs(got-mean) > math.Max(tol, 0.05) {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if got := s.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := s.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(8)
	for i := 0; i < 10_000; i++ {
		v := s.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto(2, 1.5) = %v < xm", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// For alpha > 1, mean = alpha*xm/(alpha-1). alpha=3, xm=1 -> 1.5.
	s := New(9)
	const n = 500_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3)
	}
	if got := sum / n; math.Abs(got-1.5) > 0.02 {
		t.Errorf("Pareto(1,3) mean = %v, want ~1.5", got)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(10)
	n := 100_000
	trues := 0
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	frac := float64(trues) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Bool() true fraction = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(12)
	for i := 0; i < 10_000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}
