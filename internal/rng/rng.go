// Package rng provides deterministic random number generation for the
// Wi-Fi Backscatter simulator.
//
// Every stochastic component of the simulation (fading, measurement noise,
// MAC backoff, traffic arrival processes) draws from a Stream. Streams are
// split from a parent seed with a name, so each subsystem gets an
// independent, reproducible sequence and experiments are repeatable bit for
// bit given the same top-level seed.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Stream is a deterministic source of random variates.
//
// A Stream is not safe for concurrent use; split one stream per goroutine.
type Stream struct {
	r *rand.Rand
}

// New creates a Stream from a seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// TrialSeed derives the seed of trial i in a sweep seeded with base. The
// mapping is a fixed bijective mix (splitmix64 finalizer) of base+i, so
// neighbouring trials get decorrelated sequences while the (base, i) pair
// always yields the same seed — the property the parallel trial engine
// relies on to make concurrent sweeps bit-identical to serial ones.
func TrialSeed(base int64, trial int) int64 {
	z := uint64(base) + uint64(trial)*0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return int64(z ^ z>>31)
}

// TrialStream returns the deterministic stream of trial i under base:
// New(TrialSeed(base, i)). Each trial must use its own stream; streams
// are not safe for concurrent use.
func TrialStream(base int64, trial int) *Stream {
	return New(TrialSeed(base, trial))
}

// Split derives an independent child stream identified by name. The same
// (parent seed, name) pair always yields the same child sequence, and
// distinct names yield decorrelated sequences.
func (s *Stream) Split(name string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	// Mix the parent's next value with the name hash so sibling splits
	// from the same parent differ even with equal names at other levels.
	return New(int64(h.Sum64()) ^ s.r.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return s.r.Int63() }

// Bool returns an unbiased random boolean.
func (s *Stream) Bool() bool { return s.r.Int63()&1 == 1 }

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (s *Stream) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// ComplexGaussian returns a circularly-symmetric complex Gaussian variate
// with total variance sigma2 (i.e. E[|x|²] = sigma2).
func (s *Stream) ComplexGaussian(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(s.Gaussian(0, sd), s.Gaussian(0, sd))
}

// Rayleigh returns a Rayleigh variate with scale sigma
// (mode sigma, mean sigma*sqrt(pi/2)).
func (s *Stream) Rayleigh(sigma float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// Rician returns a Rician variate with line-of-sight amplitude nu and
// scatter scale sigma. With nu=0 it reduces to Rayleigh(sigma).
func (s *Stream) Rician(nu, sigma float64) float64 {
	x := s.Gaussian(nu, sigma)
	y := s.Gaussian(0, sigma)
	return math.Hypot(x, y)
}

// Exponential returns an exponential variate with the given mean.
func (s *Stream) Exponential(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and a normal approximation for large ones.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation; adequate for traffic-volume draws.
		v := s.Gaussian(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto returns a bounded Pareto variate with shape alpha and minimum xm.
// Used for heavy-tailed (bursty) traffic inter-arrival and burst sizes.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
