package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscapeAnalyzer is the interprocedural extension of poolhygiene.
// PH001–PH003 see a GetSlice and its uses inside one function; they are
// blind to a pooled buffer that arrives from a callee. This analyzer
// computes, bottom-up, which module functions can return a pooled buffer
// (dsp.GetSlice directly, or any chain of calls ending in one), then flags
// the ways such a transitively-acquired buffer can outlive its frame:
//
//   - PH004: a pooled buffer obtained from a callee is stored into a
//     struct field, global, composite literal, map/slice element, or
//     channel, or captured by a function literal that is not immediately
//     invoked. Any of these lets the buffer survive past the PutSlice that
//     will eventually recycle it.
//   - PH005: a pooled buffer obtained from a callee is returned onward,
//     widening the set of functions the buffer's release depends on.
//
// Direct escapes (GetSlice and return in the same function) stay PH003's
// business; this analyzer deliberately reports only what an intra-
// procedural pass cannot see, so the two never double-report. A buffer
// that the function itself releases with dsp.PutSlice is exempt: passing
// a scratch buffer down and releasing it here is the pool's intended use.
var PoolEscapeAnalyzer = &ModuleAnalyzer{
	Name: "poolescape",
	Doc:  "pooled dsp buffers acquired through a call chain must not escape the acquiring frame",
	Codes: []CodeDoc{
		{"PH004", "transitively-acquired pooled buffer stored or captured beyond the frame (interprocedural)"},
		{"PH005", "transitively-acquired pooled buffer returned onward (interprocedural)"},
	},
	Run: runPoolEscape,
}

// poolSummary is one function's boundary fact: can a call to it hand the
// caller a live pooled buffer?
type poolSummary struct {
	returnsPooled bool
	via           string
}

func runPoolEscape(p *ModulePass) {
	sums := map[*types.Func]*poolSummary{}
	p.Module.Graph.ForEachNode(func(n *CallNode) { sums[n.Fn] = &poolSummary{} })

	// Phase 1: fixpoint over returns-pooled summaries.
	p.Module.Fixpoint(func(n *CallNode) bool {
		scan := newPoolScan(p, n, sums)
		scan.run()
		sum := sums[n.Fn]
		if scan.returnsPooled && !sum.returnsPooled {
			sum.returnsPooled = true
			sum.via = scan.returnVia
			return true
		}
		return false
	})

	// Phase 2: report transitive escapes.
	p.Module.Graph.ForEachNode(func(n *CallNode) {
		scan := newPoolScan(p, n, sums)
		scan.run()
		scan.report()
	})
}

// pooledVal records how a variable came to hold a pooled buffer.
type pooledVal struct {
	// transitive is true when the buffer came from a callee rather than a
	// GetSlice in this function. Only transitive values are reported.
	transitive bool
	via        string
}

// poolScan is the per-function local pass.
type poolScan struct {
	p    *ModulePass
	node *CallNode
	sums map[*types.Func]*poolSummary

	calleesByCall map[*ast.CallExpr][]*types.Func
	getName       string
	putName       string

	vars map[types.Object]pooledVal
	// released holds variables passed to dsp.PutSlice here: locally managed
	// scratch, exempt from escape reporting.
	released map[types.Object]bool

	returnsPooled bool
	returnVia     string
}

func newPoolScan(p *ModulePass, n *CallNode, sums map[*types.Func]*poolSummary) *poolScan {
	byCall := map[*ast.CallExpr][]*types.Func{}
	for _, e := range n.Out {
		byCall[e.Call] = append(byCall[e.Call], e.Callee)
	}
	return &poolScan{
		p: p, node: n, sums: sums,
		calleesByCall: byCall,
		getName:       p.Config.ModulePath + "/internal/dsp.GetSlice",
		putName:       p.Config.ModulePath + "/internal/dsp.PutSlice",
		vars:          map[types.Object]pooledVal{},
		released:      map[types.Object]bool{},
	}
}

// run computes the function's pooled variables and return summary to a
// local fixpoint.
func (s *poolScan) run() {
	for s.sweep() {
	}
}

func (s *poolScan) sweep() bool {
	changed := false
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				v, ok := s.exprPooled(rhs)
				if !ok {
					continue
				}
				id, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !isIdent {
					continue // non-variable targets are handled in report()
				}
				obj := s.objOf(id)
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				if cur, seen := s.vars[obj]; !seen || (v.transitive && !cur.transitive) {
					s.vars[obj] = v
					changed = true
				}
			}
		case *ast.CallExpr:
			if s.isNamed(n, s.putName) && len(n.Args) > 0 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					obj := s.objOf(id)
					if !s.released[obj] {
						s.released[obj] = true
						changed = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				v, ok := s.exprPooled(r)
				if !ok {
					continue
				}
				if !s.returnsPooled {
					s.returnsPooled = true
					s.returnVia = v.via
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// exprPooled reports whether e evaluates to a pooled buffer, and how.
func (s *poolScan) exprPooled(e ast.Expr) (pooledVal, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.objOf(e)
		if v, ok := s.vars[obj]; ok && !s.released[obj] {
			return v, true
		}
	case *ast.SliceExpr:
		// buf[:n] shares the pooled backing array.
		return s.exprPooled(e.X)
	case *ast.CallExpr:
		return s.callPooled(e)
	}
	return pooledVal{}, false
}

// callPooled resolves whether a call yields a pooled buffer: GetSlice
// itself (direct), a module callee whose summary says so (transitive), or
// append on a pooled buffer (same backing array until it grows — still
// pool-owned memory either way).
func (s *poolScan) callPooled(call *ast.CallExpr) (pooledVal, bool) {
	if s.isNamed(call, s.getName) {
		return pooledVal{transitive: false, via: "dsp.GetSlice"}, true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isB := s.node.Pkg.Info.Uses[id].(*types.Builtin); isB && len(call.Args) > 0 {
			return s.exprPooled(call.Args[0])
		}
	}
	for _, callee := range s.calleesByCall[call] {
		sum := s.sums[callee]
		if sum != nil && sum.returnsPooled {
			via := chainString(FuncDisplay(callee, s.node.Pkg.Types), sum.via)
			return pooledVal{transitive: true, via: via}, true
		}
	}
	return pooledVal{}, false
}

// report emits PH004/PH005 for the transitive escapes of a settled scan.
func (s *poolScan) report() {
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v, ok := s.exprPooled(r); ok && v.transitive {
					s.p.Reportf(r.Pos(), "PH005",
						"pooled buffer from %s is returned onward; the pool cannot see who releases it",
						v.via)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				v, ok := s.exprPooled(rhs)
				if !ok || !v.transitive {
					continue
				}
				if s.storesBeyondFrame(n.Lhs[i]) {
					s.p.Reportf(n.Lhs[i].Pos(), "PH004",
						"pooled buffer from %s is stored beyond the acquiring frame; copy it or release it here",
						v.via)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if v, ok := s.exprPooled(val); ok && v.transitive {
					s.p.Reportf(val.Pos(), "PH004",
						"pooled buffer from %s is packed into a composite literal; the value outlives the frame",
						v.via)
				}
			}
		case *ast.SendStmt:
			if v, ok := s.exprPooled(n.Value); ok && v.transitive {
				s.p.Reportf(n.Value.Pos(), "PH004",
					"pooled buffer from %s is sent on a channel; the receiver outlives the frame", v.via)
			}
		case *ast.FuncLit:
			if s.immediatelyInvoked(n) {
				return true
			}
			if obj, v := s.capturedPooled(n); obj != nil {
				s.p.Reportf(n.Pos(), "PH004",
					"function literal captures pooled buffer %s (from %s); the closure may outlive the frame",
					obj.Name(), v.via)
			}
			return false // don't descend: inner uses are the capture, reported once
		}
		return true
	})
}

// storesBeyondFrame reports whether an assignment target outlives the
// function: a field, a dereference, an element of something, or a
// package-level variable. Plain local variables return false.
func (s *poolScan) storesBeyondFrame(lhs ast.Expr) bool {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := s.objOf(t)
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		// A package-level variable outlives every frame.
		return v.Parent() == s.node.Pkg.Types.Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// capturedPooled finds a pooled variable from the enclosing function that
// lit's body references, if any.
func (s *poolScan) capturedPooled(lit *ast.FuncLit) (types.Object, pooledVal) {
	var foundObj types.Object
	var foundVal pooledVal
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if foundObj != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := s.node.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := s.vars[obj]; ok && v.transitive && !s.released[obj] {
			foundObj, foundVal = obj, v
		}
		return true
	})
	return foundObj, foundVal
}

// immediatelyInvoked reports whether lit is the Fun of a call expression
// (an IIFE): the closure cannot outlive the statement.
func (s *poolScan) immediatelyInvoked(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && ast.Unparen(call.Fun) == lit {
			found = true
		}
		return !found
	})
	return found
}

// isNamed reports whether call statically targets the fully-qualified
// function name (e.g. "repro/internal/dsp.GetSlice").
func (s *poolScan) isNamed(call *ast.CallExpr, full string) bool {
	fn := calleeFunc(s.node.Pkg.Info, call)
	return fn != nil && fn.FullName() == full
}

func (s *poolScan) objOf(id *ast.Ident) types.Object {
	info := s.node.Pkg.Info
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
