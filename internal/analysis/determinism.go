package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the reproduction's bit-identical-replay
// guarantee (PAPER.md §7, PR 1's serial-vs-parallel equivalence): every
// stochastic draw comes from a seeded internal/rng stream, no seed or
// trial outcome derives from the wall clock, and no user-visible output is
// ordered by a map walk.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, unseeded math/rand, and map-ordered output in result-bearing code",
	Codes: []CodeDoc{
		{"DT001", "wall-clock read (time.Now/Since/Until) outside the duration-reporting allowlist"},
		{"DT002", "math/rand imported outside internal/rng; use seeded internal/rng streams"},
		{"DT003", "map iteration feeds output; iterate a sorted key slice instead"},
		{"DT004", "rng root minted (rng.New/rng.TrialStream) in a package that must receive its stream"},
	},
	Run: runDeterminism,
}

// wallClockFuncs are the time package entry points that read the clock.
var wallClockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func runDeterminism(p *Pass) {
	pkgPath := p.Pkg.Path()
	for _, file := range p.Files {
		// DT002: the import line itself is the violation — once math/rand
		// is in scope nothing distinguishes seeded from unseeded use.
		if !p.Config.RandAllow[pkgPath] {
			for _, imp := range file.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "math/rand", "math/rand/v2":
					p.Reportf(imp.Pos(), "DT002",
						"math/rand is unseeded or globally seeded; draw from a seeded internal/rng stream")
				}
			}
		}
		rngDenied := p.Config.rngRootDenied(pkgPath)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				p.checkFuncDeterminism(pkgPath, fn, rngDenied)
				continue
			}
			// Package-level initializers never get a wall-clock pass.
			ast.Inspect(decl, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					p.checkWallClock(call, false)
					if rngDenied {
						p.checkRngRoot(call)
					}
				}
				return true
			})
		}
	}
}

// checkFuncDeterminism walks one function body for DT001, DT003, and
// (in rng-root-denied packages) DT004.
func (p *Pass) checkFuncDeterminism(pkgPath string, fn *ast.FuncDecl, rngDenied bool) {
	allowed := p.Config.WallClockAllow[funcKey(pkgPath, fn)]
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkWallClock(n, allowed)
			if rngDenied {
				p.checkRngRoot(n)
			}
		case *ast.RangeStmt:
			p.checkMapRangeOutput(n)
		}
		return true
	})
}

// rngRootFuncs name the internal/rng entry points that mint a fresh root
// stream from a bare seed (as opposed to deriving from an existing
// stream via Split).
var rngRootFuncs = map[string]bool{"New": true, "TrialStream": true}

// checkRngRoot reports DT004 for rng.New/rng.TrialStream calls: a package
// on the deny list (e.g. internal/faults) must be handed its stream by
// the composition root, because a locally minted root can silently share
// or perturb the sequences other subsystems draw — exactly the coupling
// the fault injector's determinism contract rules out.
func (p *Pass) checkRngRoot(call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() != p.Config.ModulePath+"/internal/rng" || !rngRootFuncs[fn.Name()] {
		return
	}
	p.Reportf(call.Pos(), "DT004",
		"rng.%s mints a root stream inside a package that must receive its stream from the caller (see Config.RngRootDeny)",
		fn.Name())
}

// checkWallClock reports DT001 for clock reads unless the enclosing
// function is allowlisted for duration reporting.
func (p *Pass) checkWallClock(call *ast.CallExpr, allowed bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || !wallClockFuncs[fn.FullName()] {
		return
	}
	if allowed {
		return
	}
	p.Reportf(call.Pos(), "DT001",
		"%s reads the wall clock; trial outcomes must derive only from seeds (allowlist duration reporting in wblint's config)",
		fn.FullName())
}

// outputMethodNames are methods whose call inside a map-range body means
// the map's nondeterministic order reaches an output stream or table.
var outputMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "Fprint": true,
}

// checkMapRangeOutput reports DT003 when a range over a map emits output
// inside the loop body.
func (p *Pass) checkMapRangeOutput(rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported {
			return !reported
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		full := fn.FullName()
		isPrint := strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint")
		isOutputMethod := fn.Type().(*types.Signature).Recv() != nil && outputMethodNames[fn.Name()]
		if isPrint || isOutputMethod {
			reported = true
			p.Reportf(rng.Pos(), "DT003",
				"map iteration order is random and this loop emits output (%s); iterate sorted keys instead",
				fn.Name())
			return false
		}
		return true
	})
}
