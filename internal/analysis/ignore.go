package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. A finding is silenced in source with
//
//	//wblint:ignore CODE reason...
//
// placed either at the end of the offending line or on its own line
// immediately above. A whole file can opt out of one code with
//
//	//wblint:file-ignore CODE reason...
//
// Every directive must carry a reason — a directive without one is itself
// reported (IG001), as is a directive that no longer matches any finding
// (IG002), so suppressions cannot silently rot.

// Diagnostic codes emitted by the directive checker itself.
const (
	codeMissingReason = "IG001"
	codeUnusedIgnore  = "IG002"
)

// ignoreDirective is one parsed //wblint:ignore or //wblint:file-ignore.
type ignoreDirective struct {
	pos      token.Position
	code     string
	reason   string
	fileWide bool
	used     bool
}

const (
	ignorePrefix     = "//wblint:ignore"
	fileIgnorePrefix = "//wblint:file-ignore"
)

// parseIgnores extracts every wblint directive from a file's comments.
func parseIgnores(fset *token.FileSet, file *ast.File) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			var rest string
			var fileWide bool
			if r, ok := strings.CutPrefix(text, fileIgnorePrefix); ok {
				rest, fileWide = r, true
			} else if r, ok := strings.CutPrefix(text, ignorePrefix); ok {
				rest = r
			} else {
				continue
			}
			fields := strings.Fields(rest)
			d := &ignoreDirective{pos: fset.Position(c.Pos()), fileWide: fileWide}
			if len(fields) > 0 {
				d.code = fields[0]
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

// ApplyIgnores filters diags through the suppression directives of pkg,
// returning the surviving diagnostics plus any directive-hygiene findings
// (missing reason, unused directive). Directive-hygiene findings cannot be
// suppressed.
func ApplyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	return applyIgnores([]*Package{pkg}, diags)
}

// applyIgnores is ApplyIgnores over a set of packages: one directive pool,
// one pass. Directive matching is filename-scoped and every file belongs to
// exactly one package, so the result is identical to applying each
// package's directives separately — except that module-wide diagnostics
// (taint, poolescape, hotpath), which can land in any package, are also
// covered, and directives suppressing only those do not read as stale.
func applyIgnores(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	var dirs []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			dirs = append(dirs, parseIgnores(pkg.Fset, f)...)
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(dirs, d) {
			out = append(out, d)
		}
	}
	for _, dir := range dirs {
		if dir.code == "" || dir.reason == "" {
			out = append(out, Diagnostic{
				Analyzer: "wblint",
				Code:     codeMissingReason,
				Pos:      dir.pos,
				Message:  "ignore directive needs a code and a written reason: //wblint:ignore CODE reason",
			})
			continue
		}
		if !dir.used {
			out = append(out, Diagnostic{
				Analyzer: "wblint",
				Code:     codeUnusedIgnore,
				Pos:      dir.pos,
				Message:  "ignore directive for " + dir.code + " matches no finding; delete it",
			})
		}
	}
	return out
}

// suppressed reports whether any directive covers d, marking matching
// directives used. A line directive covers its own line and the following
// line (so it can trail the offending statement or sit just above it).
func suppressed(dirs []*ignoreDirective, d Diagnostic) bool {
	hit := false
	for _, dir := range dirs {
		if dir.code != d.Code || dir.reason == "" || dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.fileWide || dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			dir.used = true
			hit = true
		}
	}
	return hit
}
