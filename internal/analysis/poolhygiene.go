package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolHygieneAnalyzer polices the internal/dsp scratch-buffer pool that the
// decode hot path depends on (EXPERIMENTS.md: ~48x fewer bytes/op). A
// buffer obtained with dsp.GetSlice must go back with dsp.PutSlice on every
// control-flow path, and must not be retained, aliased, or used after the
// Put — a leaked buffer silently forfeits the reuse, while a retained one
// is a data race waiting for the next pool hit.
//
// The analysis is intraprocedural and lexical: ownership that deliberately
// crosses a function boundary (the channelStats batch-release pattern in
// internal/uplink) is a real design decision and must be annotated with a
// //wblint:ignore PH003 directive explaining who releases the buffer.
var PoolHygieneAnalyzer = &Analyzer{
	Name: "poolhygiene",
	Doc:  "every dsp.GetSlice buffer is released on all paths and never retained past the Put",
	Codes: []CodeDoc{
		{"PH001", "pooled buffer not released on some path (missing, non-deferred, or overwritten Put)"},
		{"PH002", "pooled buffer used after PutSlice returned it"},
		{"PH003", "pooled buffer escapes the function (returned, stored, aliased, or sent)"},
	},
	Run: runPoolHygiene,
}

func runPoolHygiene(p *Pass) {
	getName := p.Config.ModulePath + "/internal/dsp.GetSlice"
	putName := p.Config.ModulePath + "/internal/dsp.PutSlice"
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			(&poolCheck{pass: p, get: getName, put: putName}).checkFunc(fn)
		}
	}
}

// poolCheck carries the per-function state of the pool-hygiene analysis.
type poolCheck struct {
	pass     *Pass
	get, put string
	parents  map[ast.Node]ast.Node
}

// trackedBuf is one pool-owned variable inside a function.
type trackedBuf struct {
	obj        *types.Var
	getPos     token.Pos
	escape     token.Pos // first escape site, if any
	escapeWhat string
	puts       []putSite
	uses       []useSite
	dropped    token.Pos // overwritten without release
}

type putSite struct {
	pos      token.Pos
	end      token.Pos
	deferred bool
}

type useSite struct {
	pos token.Pos
}

func (c *poolCheck) checkFunc(fn *ast.FuncDecl) {
	c.parents = map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			c.parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	// Pass 1: find GetSlice calls and bind them to variables.
	bufs := map[*types.Var]*trackedBuf{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isCallTo(call, c.get) {
			return true
		}
		if v := c.boundVar(call); v != nil {
			if b, seen := bufs[v]; seen {
				// A second Get into the same variable: keep the first pos;
				// release rules apply to the variable as a whole.
				_ = b
			} else {
				bufs[v] = &trackedBuf{obj: v, getPos: call.Pos()}
			}
			return true
		}
		// Result not captured: it can never be released. A direct return
		// hands ownership out of the function instead.
		if _, isRet := c.parents[call].(*ast.ReturnStmt); isRet {
			c.pass.Reportf(call.Pos(), "PH003",
				"pooled buffer is returned; the caller cannot know it must PutSlice it")
		} else {
			c.pass.Reportf(call.Pos(), "PH001",
				"GetSlice result is not captured in a variable, so it can never be released")
		}
		return true
	})
	if len(bufs) == 0 {
		return
	}

	deferredPuts := c.deferredPutCalls(fn.Body)

	// Pass 2: classify every use of each tracked variable.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := c.pass.Info.Uses[id].(*types.Var)
		if obj == nil {
			if def, okd := c.pass.Info.Defs[id].(*types.Var); okd {
				obj = def
			}
		}
		b := bufs[obj]
		if b == nil {
			return true
		}
		c.classifyUse(b, id, deferredPuts)
		return true
	})

	// Pass 3: returns that can leak a non-deferred Put (returns inside
	// nested function literals exit the literal, not this function).
	var returns []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, ret.Pos())
		}
		return true
	})

	for _, b := range bufs {
		c.reportBuf(b, returns)
	}
}

// boundVar returns the variable a GetSlice call is assigned to, or nil.
func (c *poolCheck) boundVar(call *ast.CallExpr) *types.Var {
	switch parent := c.parents[call].(type) {
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) == call && i < len(parent.Lhs) {
				if id, ok := parent.Lhs[i].(*ast.Ident); ok {
					if v, ok := c.objOf(id).(*types.Var); ok {
						return v
					}
				}
			}
		}
	case *ast.ValueSpec:
		for i, rhs := range parent.Values {
			if ast.Unparen(rhs) == call && i < len(parent.Names) {
				if v, ok := c.objOf(parent.Names[i]).(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

func (c *poolCheck) objOf(id *ast.Ident) types.Object {
	if o := c.pass.Info.Defs[id]; o != nil {
		return o
	}
	return c.pass.Info.Uses[id]
}

// isCallTo reports whether call statically invokes the named function.
func (c *poolCheck) isCallTo(call *ast.CallExpr, full string) bool {
	fn := calleeFunc(c.pass.Info, call)
	return fn != nil && fn.FullName() == full
}

// deferredPutCalls collects PutSlice calls that run via defer — either
// `defer dsp.PutSlice(x)` or a PutSlice anywhere inside a deferred
// function literal.
func (c *poolCheck) deferredPutCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if c.isCallTo(def.Call, c.put) {
			out[def.Call] = true
		}
		if lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && c.isCallTo(call, c.put) {
					out[call] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// classifyUse folds one identifier occurrence into the buffer's state:
// a release, an escape, a reassignment, or a plain use.
func (c *poolCheck) classifyUse(b *trackedBuf, id *ast.Ident, deferredPuts map[*ast.CallExpr]bool) {
	parent := c.parents[id]
	switch parent := parent.(type) {
	case *ast.CallExpr:
		if c.isCallTo(parent, c.put) && len(parent.Args) == 1 && ast.Unparen(parent.Args[0]) == id {
			b.puts = append(b.puts, putSite{
				pos:      parent.Pos(),
				end:      parent.End(),
				deferred: deferredPuts[parent],
			})
			return
		}
		// Passing the buffer as an argument is the sanctioned way to share
		// it (the callee must not retain it — a convention, not checkable
		// here). Into-style callees may return the same buffer.
		b.uses = append(b.uses, useSite{pos: id.Pos()})
	case *ast.AssignStmt:
		if c.identInExprs(id, parent.Lhs) {
			// x = ... : reassignment. Fine when x round-trips through the
			// RHS (the Into pattern `x, err = f(x)` or a fresh Get);
			// otherwise the pooled buffer is dropped unreleased.
			if parent.Tok == token.DEFINE {
				return // the defining occurrence
			}
			if !c.rhsMentions(parent, b.obj) && !c.rhsIsGet(parent) {
				if !b.dropped.IsValid() {
					b.dropped = id.Pos()
				}
			}
			return
		}
		// x on the RHS of an assignment: aliasing or storing.
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != id {
				continue
			}
			what := "aliased"
			if len(parent.Lhs) == len(parent.Rhs) {
				if lid, ok := parent.Lhs[i].(*ast.Ident); ok && c.objOf(lid) == types.Object(b.obj) {
					return // self-assignment
				}
				if _, ok := parent.Lhs[i].(*ast.Ident); !ok {
					what = "stored outside the function's locals"
				}
			}
			c.recordEscape(b, id.Pos(), what)
			return
		}
		b.uses = append(b.uses, useSite{pos: id.Pos()})
	case *ast.ReturnStmt:
		c.recordEscape(b, id.Pos(), "returned")
	case *ast.KeyValueExpr:
		if parent.Value == id {
			c.recordEscape(b, id.Pos(), "stored in a composite literal")
		}
	case *ast.CompositeLit:
		c.recordEscape(b, id.Pos(), "stored in a composite literal")
	case *ast.SendStmt:
		if parent.Value == id {
			c.recordEscape(b, id.Pos(), "sent on a channel")
		}
	default:
		b.uses = append(b.uses, useSite{pos: id.Pos()})
	}
}

func (c *poolCheck) identInExprs(id *ast.Ident, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if ast.Unparen(e) == id {
			return true
		}
	}
	return false
}

// rhsMentions reports whether the assignment's RHS uses the variable
// (covering the `x, err = f(x, ...)` Into round-trip).
func (c *poolCheck) rhsMentions(assign *ast.AssignStmt, v *types.Var) bool {
	found := false
	for _, rhs := range assign.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.pass.Info.Uses[id] == types.Object(v) {
				found = true
			}
			return !found
		})
	}
	return found
}

// rhsIsGet reports whether the assignment installs a fresh pooled buffer.
func (c *poolCheck) rhsIsGet(assign *ast.AssignStmt) bool {
	for _, rhs := range assign.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && c.isCallTo(call, c.get) {
			return true
		}
	}
	return false
}

func (c *poolCheck) recordEscape(b *trackedBuf, pos token.Pos, what string) {
	if !b.escape.IsValid() {
		b.escape, b.escapeWhat = pos, what
	}
}

// reportBuf emits the diagnostics for one tracked buffer.
func (c *poolCheck) reportBuf(b *trackedBuf, returns []token.Pos) {
	name := b.obj.Name()
	if b.escape.IsValid() {
		c.pass.Reportf(b.escape, "PH003",
			"pooled buffer %s is %s; ownership past the function must be annotated with who releases it",
			name, b.escapeWhat)
		return
	}
	if b.dropped.IsValid() {
		c.pass.Reportf(b.dropped, "PH001",
			"pooled buffer %s is overwritten before PutSlice; release it first", name)
	}
	if len(b.puts) == 0 {
		if !b.dropped.IsValid() {
			c.pass.Reportf(b.getPos, "PH001",
				"pooled buffer %s is taken from the pool but never released with PutSlice", name)
		}
		return
	}
	allDeferred := true
	var lastPlain putSite
	for _, put := range b.puts {
		if !put.deferred {
			allDeferred = false
			if put.end > lastPlain.end {
				lastPlain = put
			}
		}
	}
	if !allDeferred {
		// PH001: a return between the Get and the last plain Put skips it.
		for _, ret := range returns {
			if ret > b.getPos && ret < lastPlain.pos {
				c.pass.Reportf(ret, "PH001",
					"return path skips PutSlice(%s); release the buffer with defer", name)
			}
		}
		// PH002: any reference after the buffer went back to the pool.
		for _, use := range b.uses {
			if use.pos > lastPlain.end {
				c.pass.Reportf(use.pos, "PH002",
					"%s is used after PutSlice returned it to the pool", name)
			}
		}
	}
}
