package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the interprocedural
// analyzers (taint, poolescape, hotpath) run on. The graph is assembled
// from every package handed to NewModule — for a `wblint ./...` run that is
// the whole module — and resolves three kinds of call sites:
//
//   - direct calls and method calls on concrete receivers, via types.Info
//     (exact);
//   - interface method calls, conservatively: an edge is added to every
//     module type's method that implements the called interface method, so
//     a property proven over the graph holds for whichever implementation
//     runs (it may also pull in implementations that never run — see
//     DESIGN.md §11 for the soundness trade-offs);
//   - calls of function-typed values (fields, variables, parameters),
//     conservatively: an edge is added to every module function whose
//     address is taken somewhere in the module and whose signature matches.
//
// Calls inside function literals are attributed to the enclosing declared
// function: for the invariants wblint protects (what a call chain can
// reach), a closure's body is part of its creator.

// Module is the whole-module view the interprocedural analyzers operate on:
// every loaded package plus the call graph over their declared functions.
type Module struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	Config *Config
	Graph  *CallGraph
}

// CallGraph is the static call graph over the module's declared functions.
type CallGraph struct {
	// Nodes maps every declared function (with a body) to its node.
	Nodes map[*types.Func]*CallNode
	// order lists nodes deterministically: package path, file, position.
	order []*CallNode
}

// CallNode is one declared function and its outgoing call edges.
type CallNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Out lists outgoing edges in source order. Edges point at module
	// functions and stdlib functions alike; only module callees have nodes.
	Out []CallEdge
}

// CallEdge is one call site inside a node's body.
type CallEdge struct {
	// Callee is the resolved target. For interface dispatch and
	// function-value calls there is one edge per candidate target.
	Callee *types.Func
	// Call is the call expression the edge came from.
	Call *ast.CallExpr
	// Dynamic marks edges resolved conservatively (interface dispatch or
	// function-value call) rather than statically.
	Dynamic bool
}

// NewModule builds the interprocedural view over pkgs. The packages are
// sorted by import path so node order — and therefore every derived
// iteration — is deterministic.
func NewModule(pkgs []*Package, cfg *Config) *Module {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	m := &Module{Config: cfg, Pkgs: sorted}
	if len(sorted) > 0 {
		m.Fset = sorted[0].Fset
	}
	m.Graph = buildCallGraph(sorted, cfg.ModulePath)
	return m
}

// FuncKey names a function the way wblint's config keys it:
// "pkgpath.Func" for functions, "pkgpath.Recv.Func" for methods (pointer
// receivers use the element type name). It is the *types.Func counterpart
// of funcKey (which works on the AST declaration).
func FuncKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// FuncDisplay renders a function for diagnostics: "Recv.Name" for methods,
// "pkg.Name" for functions of other packages, "Name" otherwise.
func FuncDisplay(fn *types.Func, from *types.Package) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// NodeByKey finds a node by its FuncKey, or nil.
func (g *CallGraph) NodeByKey(key string) *CallNode {
	for _, n := range g.order {
		if FuncKey(n.Fn) == key {
			return n
		}
	}
	return nil
}

// ForEachNode visits every node in deterministic order.
func (g *CallGraph) ForEachNode(f func(*CallNode)) {
	for _, n := range g.order {
		f(n)
	}
}

// graphBuilder carries the intermediate state of call-graph construction.
type graphBuilder struct {
	graph      *CallGraph
	pkgs       []*Package
	modulePath string

	// namedTypes lists every named (non-interface) type declared in the
	// module, for conservative interface-dispatch resolution.
	namedTypes []*types.Named
	// addressTaken lists module functions referenced outside call position,
	// for conservative function-value call resolution.
	addressTaken []*types.Func
	// implCache memoizes interface-method resolution.
	implCache map[*types.Func][]*types.Func
}

func buildCallGraph(pkgs []*Package, modulePath string) *CallGraph {
	b := &graphBuilder{
		graph:      &CallGraph{Nodes: map[*types.Func]*CallNode{}},
		pkgs:       pkgs,
		modulePath: modulePath,
		implCache:  map[*types.Func][]*types.Func{},
	}
	// Pass 1: register every declared function and collect the module's
	// named types and address-taken functions.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &CallNode{Fn: fn, Pkg: pkg, Decl: fd}
				b.graph.Nodes[fn] = node
				b.graph.order = append(b.graph.order, node)
			}
		}
		b.collectNamedTypes(pkg)
		b.collectAddressTaken(pkg)
	}
	// Pass 2: resolve the call sites of every body.
	for _, node := range b.graph.order {
		b.resolveCalls(node)
	}
	return b.graph
}

// collectNamedTypes gathers the package's named non-interface types.
func (b *graphBuilder) collectNamedTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		b.namedTypes = append(b.namedTypes, named)
	}
}

// collectAddressTaken records module functions referenced as values (not
// in call position): candidates for function-value call targets.
func (b *graphBuilder) collectAddressTaken(pkg *Package) {
	seen := map[*types.Func]bool{}
	for _, file := range pkg.Files {
		// Identifiers that are the resolved name of a call's Fun are in
		// call position; everything else referencing a *types.Func is an
		// address-taken use.
		callPos := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callPos[fun] = true
			case *ast.SelectorExpr:
				callPos[fun.Sel] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callPos[id] {
				return true
			}
			fn, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || seen[fn] {
				return true
			}
			p := fn.Pkg().Path()
			if p != b.modulePath && !strings.HasPrefix(p, b.modulePath+"/") {
				return true
			}
			seen[fn] = true
			b.addressTaken = append(b.addressTaken, fn)
			return true
		})
	}
}

// resolveCalls populates one node's outgoing edges.
func (b *graphBuilder) resolveCalls(node *CallNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				// Interface dispatch: edges to every module implementation.
				for _, impl := range b.implementations(fn) {
					node.Out = append(node.Out, CallEdge{Callee: impl, Call: call, Dynamic: true})
				}
				return true
			}
			node.Out = append(node.Out, CallEdge{Callee: fn, Call: call})
			return true
		}
		// Not a statically known function: a call of a function-typed
		// value, a conversion, or a builtin. Conversions and builtins have
		// no function type behind Fun.
		tv, ok := info.Types[call.Fun]
		if !ok || tv.IsType() {
			return true
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		for _, cand := range b.addressTaken {
			if signatureMatches(sig, cand) {
				node.Out = append(node.Out, CallEdge{Callee: cand, Call: call, Dynamic: true})
			}
		}
		return true
	})
}

// implementations resolves an interface method to every module method that
// implements it, memoized.
func (b *graphBuilder) implementations(ifaceMethod *types.Func) []*types.Func {
	if impls, ok := b.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*types.Func
	sig := ifaceMethod.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		b.implCache[ifaceMethod] = nil
		return nil
	}
	for _, named := range b.namedTypes {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, ifaceMethod.Pkg(), ifaceMethod.Name())
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	b.implCache[ifaceMethod] = impls
	return impls
}

// signatureMatches reports whether a function-value call with signature
// sig could target cand (comparing parameters and results; cand's
// receiver, if any, is bound in a method value and does not participate).
func signatureMatches(sig *types.Signature, cand *types.Func) bool {
	csig, ok := cand.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Params().Len() == csig.Params().Len() &&
		sig.Results().Len() == csig.Results().Len() &&
		tupleIdentical(sig.Params(), csig.Params()) &&
		tupleIdentical(sig.Results(), csig.Results())
}

func tupleIdentical(a, b *types.Tuple) bool {
	for i := 0; i < a.Len(); i++ {
		if !types.Identical(a.At(i).Type(), b.At(i).Type()) {
			return false
		}
	}
	return true
}

// Reach is the result of a reachability sweep: for every reached function,
// the root it was reached from and the caller it was first reached via.
type Reach struct {
	// Info maps each reached function to how it was first reached.
	Info map[*types.Func]ReachStep
	// funcs lists reached functions in breadth-first (deterministic) order.
	funcs []*types.Func
}

// ReachStep records how a function was first reached.
type ReachStep struct {
	Root *types.Func // the reachability root
	Via  *types.Func // immediate caller (nil for a root itself)
}

// ReachableFrom computes the set of module functions statically reachable
// from roots, breadth-first, following static and dynamic edges.
func (g *CallGraph) ReachableFrom(roots []*types.Func) *Reach {
	r := &Reach{Info: map[*types.Func]ReachStep{}}
	var queue []*types.Func
	for _, root := range roots {
		if _, ok := g.Nodes[root]; !ok {
			continue
		}
		if _, seen := r.Info[root]; seen {
			continue
		}
		r.Info[root] = ReachStep{Root: root}
		r.funcs = append(r.funcs, root)
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, edge := range node.Out {
			if _, ok := g.Nodes[edge.Callee]; !ok {
				continue // stdlib or bodiless: no module node to descend into
			}
			if _, seen := r.Info[edge.Callee]; seen {
				continue
			}
			r.Info[edge.Callee] = ReachStep{Root: r.Info[fn].Root, Via: fn}
			r.funcs = append(r.funcs, edge.Callee)
			queue = append(queue, edge.Callee)
		}
	}
	return r
}

// ForEach visits reached functions in breadth-first order.
func (r *Reach) ForEach(f func(*types.Func, ReachStep)) {
	for _, fn := range r.funcs {
		f(fn, r.Info[fn])
	}
}

// PathTo renders the call chain from a function's root to the function,
// for diagnostics: "Push → decode → analyzeChannel".
func (r *Reach) PathTo(fn *types.Func, from *types.Package) string {
	var parts []string
	for cur := fn; ; {
		step, ok := r.Info[cur]
		if !ok {
			break
		}
		parts = append(parts, FuncDisplay(cur, from))
		if step.Via == nil {
			break
		}
		cur = step.Via
	}
	// Reverse: root first.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " → ")
}
