package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintAnalyzer is the interprocedural extension of the determinism suite:
// DT001/DT002 ban wall-clock reads and unseeded randomness at the site of
// the read, and DT003 bans map-ordered output at the loop — but all three
// stop at the first function boundary. This analyzer follows the values.
// A bottom-up summary records, for every module function, whether its
// return value derives from the wall clock, from math/rand, or from a
// map-iteration-ordered accumulation; a second pass then flags the places
// such a value can reach a trial outcome, metric, or emitted byte:
//
//   - DT005: a call to a function whose return value is wall-clock-derived
//     (through any chain of module calls). There is no legitimate consumer
//     of a clock-derived value in result-bearing code — display-only
//     clock use belongs inside a WallClockAllow function and must not
//     escape it — so the call itself is the violation.
//   - DT006: the same for values derived from unseeded math/rand. The
//     seeded internal/rng package (Config.RandAllow) is the sanctioned
//     boundary: taint never propagates out of an allowed package.
//   - DT007: a value whose ordering comes from a map iteration (a slice
//     accumulated inside a map range, possibly returned through several
//     calls) reaching an output stream or an obs metric without an
//     intervening sort. Unlike clock and rand taint, map-ordered data is
//     legal to hold and legal to sort — only emitting it unsorted is a
//     defect — so DT007 fires at the sink, not at the call.
var TaintAnalyzer = &ModuleAnalyzer{
	Name: "taint",
	Doc:  "no wall-clock, unseeded-rand, or map-ordered value reaches results through any call chain",
	Codes: []CodeDoc{
		{"DT005", "call to a function returning a wall-clock-derived value (interprocedural)"},
		{"DT006", "call to a function returning an unseeded-rand-derived value (interprocedural)"},
		{"DT007", "map-iteration-ordered value reaches output or a metric without a sort (interprocedural)"},
	},
	Run: runTaint,
}

// taintKind indexes the three tracked taints.
type taintKind int

const (
	kClock taintKind = iota
	kRand
	kMapOrder
	nTaintKinds
)

var taintKindNames = [nTaintKinds]string{"wall-clock", "unseeded-rand", "map-iteration-order"}

// taintSet is the per-value lattice: one bit per taint kind.
type taintSet [nTaintKinds]bool

func (t taintSet) any() bool { return t[kClock] || t[kRand] || t[kMapOrder] }

// merge ORs o into t, reporting whether t changed.
func (t *taintSet) merge(o taintSet) bool {
	changed := false
	for k := range t {
		if o[k] && !t[k] {
			t[k] = true
			changed = true
		}
	}
	return changed
}

// taintSummary is one function's boundary fact: which taints its return
// values can carry, and (for diagnostics) the shortest chain explaining
// each.
type taintSummary struct {
	leaks taintSet
	via   [nTaintKinds]string
}

func runTaint(p *ModulePass) {
	sums := map[*types.Func]*taintSummary{}
	p.Module.Graph.ForEachNode(func(n *CallNode) { sums[n.Fn] = &taintSummary{} })

	// Phase 1: bottom-up fixpoint over the leak summaries.
	p.Module.Fixpoint(func(n *CallNode) bool {
		scan := newTaintScan(p, n, sums)
		scan.run()
		sum := sums[n.Fn]
		changed := false
		for k := taintKind(0); k < nTaintKinds; k++ {
			if k == kRand && p.Config.RandAllow[n.Pkg.Path] {
				// The sanctioned rng boundary: draws are seeded by contract,
				// so rand taint stops here.
				continue
			}
			if scan.leaks[k] && !sum.leaks[k] {
				sum.leaks[k] = true
				sum.via[k] = scan.leakVia[k]
				changed = true
			}
		}
		return changed
	})

	// Phase 2: diagnostics, now that every summary is final.
	p.Module.Graph.ForEachNode(func(n *CallNode) {
		p.taintDiagnostics(n, sums)
	})
}

// taintDiagnostics flags one function's violations.
func (p *ModulePass) taintDiagnostics(n *CallNode, sums map[*types.Func]*taintSummary) {
	key := funcKey(n.Pkg.Path, n.Decl)
	clockAllowed := p.Config.WallClockAllow[key]
	randAllowed := p.Config.RandAllow[n.Pkg.Path]

	// DT005/DT006: calls to leaking functions. Dynamic edges (interface
	// dispatch, function values) are conservative: if any candidate leaks,
	// the call is flagged.
	type callKind struct {
		call *ast.CallExpr
		kind taintKind
	}
	reported := map[callKind]bool{}
	for _, edge := range n.Out {
		sum := sums[edge.Callee]
		if sum == nil || edge.Callee == n.Fn {
			continue
		}
		for k := taintKind(0); k < nTaintKinds; k++ {
			if !sum.leaks[k] {
				continue
			}
			var code string
			switch k {
			case kClock:
				if clockAllowed {
					continue
				}
				code = "DT005"
			case kRand:
				if randAllowed || (edge.Callee.Pkg() != nil && p.Config.RandAllow[edge.Callee.Pkg().Path()]) {
					continue
				}
				code = "DT006"
			default:
				continue // map order is flagged at the sink, not the call
			}
			ck := callKind{edge.Call, k}
			if reported[ck] {
				continue
			}
			reported[ck] = true
			p.Reportf(edge.Call.Pos(), code,
				"%s returns a %s-derived value (via %s); trial outcomes must derive only from seeds",
				FuncDisplay(edge.Callee, n.Pkg.Types), taintKindNames[k],
				chainString(FuncDisplay(edge.Callee, n.Pkg.Types), sum.via[k]))
		}
	}

	// DT007: map-ordered values reaching an output or metric sink.
	scan := newTaintScan(p, n, sums)
	scan.run()
	scan.reportMapOrderSinks()
}

// chainString joins a call chain for a diagnostic, capped so deep chains
// stay readable.
func chainString(head, rest string) string {
	s := head
	if rest != "" {
		s += " → " + rest
	}
	if len(s) > 160 {
		s = s[:157] + "…"
	}
	return s
}

// taintScan is the per-function local dataflow: it tracks which variables
// hold tainted values, folds callee summaries in at call sites, and
// records what reaches the function's returns.
type taintScan struct {
	p    *ModulePass
	node *CallNode
	sums map[*types.Func]*taintSummary

	// calleesByCall resolves call expressions through the node's edges, so
	// interface dispatch and function-value calls use the graph's
	// conservative targets.
	calleesByCall map[*ast.CallExpr][]*types.Func

	vars   map[types.Object]taintSet
	varVia map[types.Object][nTaintKinds]string
	// sorted holds variables passed to a sort/slices ordering call: their
	// map-order taint is considered cleansed everywhere. The set only
	// grows, which keeps the sweep fixpoint monotone.
	sorted map[types.Object]bool

	leaks   taintSet
	leakVia [nTaintKinds]string
}

func newTaintScan(p *ModulePass, n *CallNode, sums map[*types.Func]*taintSummary) *taintScan {
	byCall := map[*ast.CallExpr][]*types.Func{}
	for _, e := range n.Out {
		byCall[e.Call] = append(byCall[e.Call], e.Callee)
	}
	return &taintScan{
		p: p, node: n, sums: sums,
		calleesByCall: byCall,
		vars:          map[types.Object]taintSet{},
		varVia:        map[types.Object][nTaintKinds]string{},
		sorted:        map[types.Object]bool{},
	}
}

// run iterates the body to a local fixpoint (taint only ever spreads, so
// the sweep count is bounded by the number of tracked variables).
func (s *taintScan) run() {
	for {
		if !s.sweep() {
			return
		}
	}
}

// sweep walks the body once, in source order, returning whether any
// variable or leak bit changed.
func (s *taintScan) sweep() bool {
	changed := false
	info := s.node.Pkg.Info
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if s.handleAssign(n) {
				changed = true
			}
		case *ast.RangeStmt:
			if s.handleRange(n) {
				changed = true
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if s.handleSortCleanse(call) {
					changed = true
				}
			}
		case *ast.ReturnStmt:
			if s.handleReturn(n, info) {
				changed = true
			}
		}
		return true
	})
	return changed
}

// handleAssign merges the RHS taint of an assignment into its LHS
// variables. Error-typed variables are never tainted: an error value is
// not a trial outcome, and `v, err := f()` must not leak f's taint
// through the err return.
func (s *taintScan) handleAssign(assign *ast.AssignStmt) bool {
	changed := false
	if len(assign.Lhs) == len(assign.Rhs) {
		for i, rhs := range assign.Rhs {
			t, via := s.exprTaint(rhs)
			if assign.Tok != token.DEFINE && assign.Tok != token.ASSIGN {
				// Compound (+=, etc.): the LHS keeps its own taint too.
				lt, _ := s.exprTaint(assign.Lhs[i])
				t.merge(lt)
			}
			if t.any() && s.taintLHS(assign.Lhs[i], t, via) {
				changed = true
			}
		}
		return changed
	}
	// Multi-value: x, y := f() — every non-error LHS gets the call taint.
	if len(assign.Rhs) == 1 {
		t, via := s.exprTaint(assign.Rhs[0])
		if !t.any() {
			return false
		}
		for _, lhs := range assign.Lhs {
			if s.taintLHS(lhs, t, via) {
				changed = true
			}
		}
	}
	return changed
}

// taintLHS marks the variable behind an assignment target. Targets that
// are not local variables (receiver fields, globals) are out of the local
// scan's scope — poolescape and the intra-package passes own those shapes.
func (s *taintScan) taintLHS(lhs ast.Expr, t taintSet, via [nTaintKinds]string) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := s.objOf(root)
	v, ok := obj.(*types.Var)
	if !ok || isErrorType(v.Type()) {
		return false
	}
	cur := s.vars[obj]
	if !cur.merge(t) {
		return false
	}
	s.vars[obj] = cur
	cv := s.varVia[obj]
	for k := range via {
		if cur[k] && cv[k] == "" {
			cv[k] = via[k]
		}
	}
	s.varVia[obj] = cv
	return true
}

// handleRange covers the two range interactions:
//   - ranging over a map while appending to an outer slice makes that
//     slice map-iteration-ordered (the accumulation source);
//   - ranging over a tainted value taints the iteration variables, which
//     is how taint flows into loop bodies (and out again via appends).
func (s *taintScan) handleRange(rng *ast.RangeStmt) bool {
	changed := false
	info := s.node.Pkg.Info
	tv, ok := info.Types[rng.X]
	if ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			if s.taintMapRangeAppends(rng) {
				changed = true
			}
		}
	}
	t, via := s.exprTaint(rng.X)
	if t.any() {
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if v == nil {
				continue
			}
			if s.taintLHS(v, t, via) {
				changed = true
			}
		}
	}
	return changed
}

// taintMapRangeAppends marks slices appended to inside a map-range body as
// map-iteration-ordered.
func (s *taintScan) taintMapRangeAppends(rng *ast.RangeStmt) bool {
	changed := false
	pos := s.node.Pkg.Fset.Position(rng.Pos())
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !s.isBuiltin(call, "append") {
				continue
			}
			var t taintSet
			t[kMapOrder] = true
			var via [nTaintKinds]string
			via[kMapOrder] = "map range at line " + itoa(pos.Line)
			if s.taintLHS(assign.Lhs[i], t, via) {
				changed = true
			}
		}
		return true
	})
	return changed
}

// handleSortCleanse marks variables passed to a sort as cleansed: after
// sort.Strings(keys) (or any sort/slices call taking the value), the
// ordering no longer depends on the map walk. The mark is sticky — the
// cleansed set only grows — so the sweep fixpoint stays monotone.
func (s *taintScan) handleSortCleanse(call *ast.CallExpr) bool {
	fn := calleeFunc(s.node.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	changed := false
	for _, arg := range call.Args {
		id := rootIdent(arg)
		if id == nil {
			continue
		}
		obj := s.objOf(id)
		if obj != nil && !s.sorted[obj] {
			s.sorted[obj] = true
			changed = true
		}
	}
	return changed
}

// handleReturn merges the taint of returned expressions into the leak
// summary. Naked returns leak the named results' taint.
func (s *taintScan) handleReturn(ret *ast.ReturnStmt, info *types.Info) bool {
	changed := false
	merge := func(t taintSet, via [nTaintKinds]string) {
		for k := taintKind(0); k < nTaintKinds; k++ {
			if t[k] && !s.leaks[k] {
				s.leaks[k] = true
				s.leakVia[k] = via[k]
				changed = true
			}
		}
	}
	if len(ret.Results) == 0 {
		if res := s.namedResults(); res != nil {
			for _, obj := range res {
				merge(s.vars[obj], s.varVia[obj])
			}
		}
		return changed
	}
	for _, r := range ret.Results {
		t, via := s.exprTaint(r)
		merge(t, via)
	}
	return changed
}

// namedResults returns the function's named result variables, or nil.
func (s *taintScan) namedResults() []types.Object {
	ft := s.node.Decl.Type
	if ft.Results == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := s.node.Pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// exprTaint computes the taint carried by an expression.
func (s *taintScan) exprTaint(e ast.Expr) (taintSet, [nTaintKinds]string) {
	var t taintSet
	var via [nTaintKinds]string
	if e == nil {
		return t, via
	}
	mergeIn := func(ot taintSet, ovia [nTaintKinds]string) {
		for k := range ot {
			if ot[k] && !t[k] {
				t[k] = true
				via[k] = ovia[k]
			}
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.objOf(e)
		if cur, ok := s.vars[obj]; ok {
			v := s.varVia[obj]
			if s.sorted[obj] {
				cur[kMapOrder] = false
				v[kMapOrder] = ""
			}
			return cur, v
		}
	case *ast.CallExpr:
		return s.callTaint(e)
	case *ast.ParenExpr:
		return s.exprTaint(e.X)
	case *ast.UnaryExpr:
		return s.exprTaint(e.X)
	case *ast.StarExpr:
		return s.exprTaint(e.X)
	case *ast.BinaryExpr:
		mergeIn(s.exprTaint(e.X))
		mergeIn(s.exprTaint(e.Y))
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted; a method value is not.
		if _, isFn := s.node.Pkg.Info.Uses[e.Sel].(*types.Func); !isFn {
			return s.exprTaint(e.X)
		}
	case *ast.IndexExpr:
		mergeIn(s.exprTaint(e.X))
		mergeIn(s.exprTaint(e.Index))
	case *ast.SliceExpr:
		return s.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return s.exprTaint(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			mergeIn(s.exprTaint(elt))
		}
	}
	return t, via
}

// callTaint folds a call expression: sources (time, math/rand), callee
// summaries, and argument/receiver propagation.
func (s *taintScan) callTaint(call *ast.CallExpr) (taintSet, [nTaintKinds]string) {
	var t taintSet
	var via [nTaintKinds]string
	info := s.node.Pkg.Info

	// Builtins: len/cap of a tainted container are order- and
	// value-independent; append and the rest propagate their arguments.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "make", "new":
				return t, via
			}
			for _, arg := range call.Args {
				at, avia := s.exprTaint(arg)
				for k := range at {
					if at[k] && !t[k] {
						t[k] = true
						via[k] = avia[k]
					}
				}
			}
			return t, via
		}
	}
	// Conversions propagate their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.exprTaint(call.Args[0])
		}
		return t, via
	}

	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		full := fn.FullName()
		if wallClockFuncs[full] {
			t[kClock] = true
			via[kClock] = full
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			t[kRand] = true
			via[kRand] = "math/rand." + fn.Name()
		}
	}
	// Callee summaries, through the graph's resolved targets (covers
	// interface dispatch and function values conservatively).
	for _, callee := range s.calleesByCall[call] {
		sum := s.sums[callee]
		if sum == nil {
			continue
		}
		for k := taintKind(0); k < nTaintKinds; k++ {
			if sum.leaks[k] && !t[k] {
				t[k] = true
				via[k] = chainString(FuncDisplay(callee, s.node.Pkg.Types), sum.via[k])
			}
		}
	}
	// Tainted arguments or receiver taint the result (order-sensitive
	// aggregation, formatting, arithmetic all preserve the dependence).
	mergeExpr := func(e ast.Expr) {
		at, avia := s.exprTaint(e)
		for k := range at {
			if at[k] && !t[k] {
				t[k] = true
				via[k] = avia[k]
			}
		}
	}
	for _, arg := range call.Args {
		mergeExpr(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isFn := info.Uses[sel.Sel].(*types.Func); isFn {
			mergeExpr(sel.X)
		}
	}
	return t, via
}

// reportMapOrderSinks emits DT007 for map-ordered values reaching an
// output call or an obs metric.
func (s *taintScan) reportMapOrderSinks() {
	info := s.node.Pkg.Info
	obsPath := s.p.Config.ModulePath + "/internal/obs"
	reported := map[*ast.CallExpr]bool{}
	ast.Inspect(s.node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call] {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		isSink := isOutputCall(fn)
		if !isSink && fn.Pkg() != nil && fn.Pkg().Path() == obsPath {
			switch fn.Name() {
			case "Add", "Set", "Observe":
				isSink = true
			}
		}
		if !isSink {
			return true
		}
		for _, arg := range call.Args {
			t, via := s.exprTaint(arg)
			if !t[kMapOrder] {
				continue
			}
			reported[call] = true
			s.p.Reportf(arg.Pos(), "DT007",
				"map-iteration-ordered value (from %s) reaches %s without a sort; sort it first",
				via[kMapOrder], FuncDisplay(fn, s.node.Pkg.Types))
			break
		}
		return true
	})
}

// isOutputCall mirrors the intra-procedural DT003 output test: fmt
// printing and the conventional writer/table methods.
func isOutputCall(fn *types.Func) bool {
	full := fn.FullName()
	if strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint") ||
		strings.HasPrefix(full, "fmt.Sprint") {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && outputMethodNames[fn.Name()]
}

// isBuiltin reports whether call invokes the named builtin.
func (s *taintScan) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := s.node.Pkg.Info.Uses[id].(*types.Builtin)
	return isB
}

func (s *taintScan) objOf(id *ast.Ident) types.Object {
	info := s.node.Pkg.Info
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// rootIdent returns the base identifier of an assignable expression
// (x, x.f, x[i], *x ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// itoa is strconv.Itoa for small positive ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
