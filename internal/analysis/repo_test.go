package analysis

import (
	"testing"
)

// TestRepoClean asserts the real repository carries zero unsuppressed wblint
// findings — the same gate `make check` enforces via cmd/wblint. A new
// violation anywhere in the tree turns this test red with the exact
// diagnostic.
func TestRepoClean(t *testing.T) {
	l := testLoader(t)
	dirs, err := WalkPackages(l.ModuleDir())
	if err != nil {
		t.Fatalf("walking packages: %v", err)
	}
	if len(dirs) < 10 {
		t.Fatalf("suspiciously few packages found (%d): %v", len(dirs), dirs)
	}
	diags, err := Check(l, dirs, DefaultConfig())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not clean: %v", d)
	}
}
