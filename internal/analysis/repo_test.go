package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoClean asserts the real repository carries zero unsuppressed wblint
// findings — the same gate `make check` enforces via cmd/wblint. A new
// violation anywhere in the tree turns this test red with the exact
// diagnostic.
//
// The walk covers the whole module; the per-tree minimums below make that
// coverage explicit, so a future walker regression that silently drops
// cmd/... or examples/... (where the CLIs and runnable samples live) fails
// here instead of quietly shrinking the gate.
func TestRepoClean(t *testing.T) {
	l := testLoader(t)
	dirs, err := WalkPackages(l.ModuleDir())
	if err != nil {
		t.Fatalf("walking packages: %v", err)
	}
	counts := map[string]int{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir(), dir)
		if err != nil {
			t.Fatalf("relativizing %s: %v", dir, err)
		}
		top, _, _ := strings.Cut(filepath.ToSlash(rel), "/")
		counts[top]++
	}
	for tree, min := range map[string]int{"internal": 15, "cmd": 5, "examples": 3} {
		if counts[tree] < min {
			t.Errorf("walk found %d packages under %s/, want at least %d (all: %v)",
				counts[tree], tree, min, counts)
		}
	}
	diags, err := Check(l, dirs, DefaultConfig())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not clean: %v", d)
	}
}
