package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitCheckAnalyzer protects the internal/units quantity discipline (the
// link-budget math of PAPER.md §3: dBm powers, dB gains, frequencies,
// distances). Go's named types already stop DBm+DB from compiling, but
// three real footguns remain legal:
//
//   - a direct cast between two unit types (DB(powerDBm)) silently
//     reinterprets a power as a gain — conversions must go through the
//     units API (Milliwatts, DBm, Sub, Linear, ...);
//   - adding two absolute dBm powers is meaningless (log-domain values
//     don't add; combine in milliwatts or apply a dB gain with Add);
//   - a bare numeric literal passed where a unit type is expected
//     typechecks via implicit constant conversion, hiding which unit the
//     number is in (RawCSITrace(1, ...) — one what?).
var UnitCheckAnalyzer = &Analyzer{
	Name: "unitcheck",
	Doc:  "unit quantities move through the internal/units API, not raw casts or bare literals",
	Codes: []CodeDoc{
		{"UC001", "direct conversion between two distinct unit types"},
		{"UC002", "+/- between two absolute dBm powers"},
		{"UC003", "bare numeric literal where a unit type is expected"},
	},
	Run: runUnitCheck,
}

func runUnitCheck(p *Pass) {
	unitsPath := p.Config.ModulePath + "/internal/units"
	if p.Pkg.Path() == unitsPath {
		// The units package itself implements the conversions.
		return
	}
	u := &unitCheck{pass: p, unitsPath: unitsPath}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				u.checkCall(n)
			case *ast.BinaryExpr:
				u.checkBinary(n)
			case *ast.CompositeLit:
				u.checkCompositeLit(n)
			case *ast.ValueSpec:
				u.checkValueSpec(n)
			case *ast.AssignStmt:
				u.checkAssign(n)
			}
			return true
		})
	}
}

type unitCheck struct {
	pass      *Pass
	unitsPath string
}

// unitType returns the named unit type of t, or nil when t is not one.
func (u *unitCheck) unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != u.unitsPath {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsNumeric == 0 {
		return nil
	}
	return named
}

func (u *unitCheck) typeOf(e ast.Expr) types.Type {
	if tv, ok := u.pass.Info.Types[e]; ok {
		return tv.Type
	}
	// Assignment targets are recorded in Uses/Defs, not always in Types.
	if id, ok := e.(*ast.Ident); ok {
		if obj := u.pass.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := u.pass.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkCall handles both conversions (UC001) and calls with unit-typed
// parameters receiving bare literals (UC003).
func (u *unitCheck) checkCall(call *ast.CallExpr) {
	if tv, ok := u.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x): flag when x itself has a different unit type.
		dst := u.unitType(tv.Type)
		if dst == nil || len(call.Args) != 1 {
			return
		}
		src := u.unitType(u.typeOf(call.Args[0]))
		if src != nil && src.Obj() != dst.Obj() {
			u.pass.Reportf(call.Pos(), "UC001",
				"direct cast from %s to %s reinterprets the quantity; convert through the units API",
				src.Obj().Name(), dst.Obj().Name())
		}
		return
	}
	sig, ok := u.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			slice, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < sig.Params().Len():
			paramType = sig.Params().At(i).Type()
		default:
			continue
		}
		if named := u.unitType(paramType); named != nil && isBareNumericLiteral(arg) {
			u.pass.Reportf(arg.Pos(), "UC003",
				"bare literal where %s is expected; write units.%s(...) (or a named constant) so the unit is visible",
				named.Obj().Name(), named.Obj().Name())
		}
	}
}

// checkBinary flags adding or subtracting two absolute dBm powers.
func (u *unitCheck) checkBinary(bin *ast.BinaryExpr) {
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	x, y := u.unitType(u.typeOf(bin.X)), u.unitType(u.typeOf(bin.Y))
	if x == nil || y == nil || x.Obj() != y.Obj() {
		return
	}
	if x.Obj().Name() == "DBm" {
		u.pass.Reportf(bin.Pos(), "UC002",
			"dBm is an absolute log power; %s of two DBm values is meaningless — use Add(DB)/Sub or combine in Milliwatts",
			bin.Op)
	}
}

// checkCompositeLit flags bare literals assigned to unit-typed fields or
// elements.
func (u *unitCheck) checkCompositeLit(lit *ast.CompositeLit) {
	t := u.typeOf(lit)
	if t == nil {
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fieldByName[st.Field(i).Name()] = st.Field(i)
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		var fieldType types.Type
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field := fieldByName[key.Name]
			if field == nil {
				continue
			}
			value, fieldType = kv.Value, field.Type()
		} else if i < st.NumFields() {
			value, fieldType = elt, st.Field(i).Type()
		} else {
			continue
		}
		if named := u.unitType(fieldType); named != nil && isBareNumericLiteral(value) {
			u.pass.Reportf(value.Pos(), "UC003",
				"bare literal where %s is expected; write units.%s(...) so the unit is visible",
				named.Obj().Name(), named.Obj().Name())
		}
	}
}

// checkValueSpec flags `var x units.T = 5`.
func (u *unitCheck) checkValueSpec(spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	named := u.unitType(u.typeOf(spec.Type))
	if named == nil {
		return
	}
	for _, v := range spec.Values {
		if isBareNumericLiteral(v) {
			u.pass.Reportf(v.Pos(), "UC003",
				"bare literal where %s is expected; write units.%s(...) so the unit is visible",
				named.Obj().Name(), named.Obj().Name())
		}
	}
}

// checkAssign flags `x = 5` where x already has a unit type.
func (u *unitCheck) checkAssign(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		if !isBareNumericLiteral(rhs) {
			continue
		}
		if named := u.unitType(u.typeOf(assign.Lhs[i])); named != nil {
			u.pass.Reportf(rhs.Pos(), "UC003",
				"bare literal where %s is expected; write units.%s(...) so the unit is visible",
				named.Obj().Name(), named.Obj().Name())
		}
	}
}

// isBareNumericLiteral matches 5, 2.5, -3, +1e6 — an untyped numeric
// literal, optionally signed. Named constants (units.KHz, a local const
// with a meaningful name) do not match.
func isBareNumericLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && (un.Op == token.SUB || un.Op == token.ADD) {
		e = ast.Unparen(un.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	switch lit.Kind {
	case token.INT, token.FLOAT:
		return true
	}
	return false
}
