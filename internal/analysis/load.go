package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and typechecks packages of one module without shelling out
// to the go tool. Imports inside the module are loaded recursively from
// source; standard-library imports are resolved with the stdlib source
// importer, so the loader works offline in a bare container.
//
// The loader deliberately ignores _test.go files: the analyzers police
// production invariants, and test files routinely (and legitimately) use
// exact float comparisons against golden values, unsorted map walks, and
// bare literals.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by import path
	loading    map[string]bool     // import-cycle guard
}

// Package is one parsed, typechecked package.
type Package struct {
	// Path is the import path ("repro/internal/dsp"). Fixture packages
	// under testdata get their natural module-relative path.
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader creates a loader rooted at the directory containing go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module %s", dir, l.moduleDir)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	rel := strings.TrimPrefix(path, l.modulePath+"/")
	return filepath.Join(l.moduleDir, filepath.FromSlash(rel))
}

// LoadDir parses and typechecks the package in dir (non-test files only),
// loading module-internal imports recursively and caching the result.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// Import implements types.Importer over module-internal and stdlib paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and typechecks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typechecking %s: %w", path, typeErrs[0])
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable non-test Go files of dir in filename order
// (stable order keeps diagnostics and typechecking deterministic). A file
// is buildable when its //go:build constraints and _GOOS/_GOARCH filename
// suffixes match the host platform — the same files the go tool would
// compile here — so a darwin-only or tag-gated file can land in the module
// without typecheck-failing the suite on other platforms.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !matchesHostBuild(dir, name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// WalkPackages returns every package directory under root that contains
// buildable Go files, skipping testdata, hidden, and underscore-prefixed
// directories. The result is sorted for stable multi-package runs.
func WalkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			dir := filepath.Dir(path)
			if len(dirs) > 0 && dirs[len(dirs)-1] == dir {
				return nil
			}
			// Only count files the host build would compile, so a directory
			// holding nothing but foreign-platform files is not reported as
			// a package (loading it would fail with "no buildable files").
			if matchesHostBuild(dir, name) {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// matchesHostBuild reports whether the go tool would compile dir/name on
// the host platform: //go:build and // +build constraints plus _GOOS /
// _GOARCH filename suffixes, evaluated against build.Default (honoring
// GOOS/GOARCH overrides from the environment). Errors (unreadable file)
// count as non-matching: the typechecker would fail on the file anyway,
// and skipping it keeps the suite's no-crash contract.
func matchesHostBuild(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
