package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// The interprocedural analyzers follow a bottom-up summary discipline: a
// local pass computes, for each function, a small fact about its boundary
// behavior (does its return value carry wall-clock taint? does it hand out
// a pooled buffer?), and a fixpoint iteration propagates those facts along
// the call graph until they stabilize — which handles recursion and
// mutual recursion without special cases. Diagnostics are only emitted in
// a second pass, once every summary is final, so a finding can name the
// whole chain it traveled ("deriveSeed → clockSeed → time.Now").

// ModuleAnalyzer is one analysis pass over the whole module. Unlike
// Analyzer, its Run sees every package at once plus the call graph, which
// is what lets it follow facts across function and package boundaries.
type ModuleAnalyzer struct {
	// Name identifies the analyzer in output and documentation.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Codes documents every diagnostic code the analyzer can emit.
	Codes []CodeDoc
	// Run inspects the module and reports diagnostics through the pass.
	Run func(*ModulePass)
}

// ModulePass carries one module through one module analyzer.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Config   *Config
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, code, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Code:     code,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Fixpoint applies step to every call-graph node, in deterministic order,
// repeatedly until a full sweep reports no change. step returns true when
// it changed the summary it maintains for the node. The iteration count is
// bounded by (lattice height × nodes); the analyzers' summaries are small
// bit vectors, so a handful of sweeps settles the whole module.
func (m *Module) Fixpoint(step func(*CallNode) bool) {
	for {
		changed := false
		m.Graph.ForEachNode(func(n *CallNode) {
			if step(n) {
				changed = true
			}
		})
		if !changed {
			return
		}
	}
}

// RunModuleAnalyzers applies every module analyzer to m and returns the
// raw (unsuppressed) diagnostics in source order.
func RunModuleAnalyzers(m *Module, analyzers []*ModuleAnalyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ModulePass{
			Analyzer: a,
			Config:   m.Config,
			Module:   m,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// moduleFunc reports whether fn belongs to the analyzed module.
func (p *ModulePass) moduleFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	mod := p.Config.ModulePath
	return path == mod || len(path) > len(mod) && path[:len(mod)] == mod && path[len(mod)] == '/'
}
