package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatSafeAnalyzer flags exact equality on floating-point values in the
// DSP/decoder/eval code. The decode pipeline's decisions ride on
// conditioned CSI/RSSI series, MRC weights, and hysteresis thresholds — all
// accumulated float arithmetic where == between two computed values is
// almost always a latent bug. The one sanctioned exact comparison is
// against literal zero: MeanAbs and friends return exactly 0 for degenerate
// input, and the `scale == 0` division guard is the idiom for it.
//
// Use the tolerance helpers (dsp.ApproxEqual / dsp.ApproxZero) instead.
var FloatSafeAnalyzer = &Analyzer{
	Name: "floatsafe",
	Doc:  "no exact ==/!= on computed floating-point values; use the dsp tolerance helpers",
	Codes: []CodeDoc{
		{"FS001", "exact ==/!= between two computed float values"},
		{"FS002", "exact ==/!= against a nonzero float constant"},
	},
	Run: runFloatSafe,
}

func runFloatSafe(p *Pass) {
	if !p.Config.inFloatScope(p.Pkg.Path()) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(bin.X) || !p.isFloat(bin.Y) {
				return true
			}
			xc, yc := p.constKind(bin.X), p.constKind(bin.Y)
			switch {
			case xc == constZero || yc == constZero:
				// Exact-zero guard (division guards, degenerate-input
				// checks): allowed.
			case xc == constNonZero || yc == constNonZero:
				p.Reportf(bin.Pos(), "FS002",
					"exact %s against a float constant; compare with dsp.ApproxEqual and a stated tolerance", bin.Op)
			default:
				p.Reportf(bin.Pos(), "FS001",
					"exact %s between computed float values; use dsp.ApproxEqual (or compare a quantized representation)", bin.Op)
			}
			return true
		})
	}
}

// isFloat reports whether the expression has floating-point (or complex)
// type.
func (p *Pass) isFloat(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

type constClass int

const (
	constNone constClass = iota
	constZero
	constNonZero
)

// constKind classifies an operand as the constant zero, another constant,
// or a computed value.
func (p *Pass) constKind(e ast.Expr) constClass {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return constNone
	}
	if v, ok := constantFloatIsZero(tv); ok && v {
		return constZero
	}
	return constNonZero
}

// constantFloatIsZero reports whether a constant value equals exactly zero.
func constantFloatIsZero(tv types.TypeAndValue) (zero, ok bool) {
	v := tv.Value
	if v == nil {
		return false, false
	}
	switch v.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0, true
	}
	return false, false
}
