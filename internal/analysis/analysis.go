// Package analysis implements wblint, the project-specific static-analysis
// suite for the Wi-Fi Backscatter reproduction. It is built entirely on the
// standard library (go/ast, go/parser, go/types, go/token): the loader in
// load.go parses and typechecks packages itself, so the suite runs offline
// and adds no module dependencies.
//
// The suite exists because the reproduction's correctness claims rest on
// invariants the Go type system cannot see:
//
//   - determinism: seeded trials must be bit-identical across runs and
//     worker counts, so wall-clock time and unseeded randomness are banned
//     from everything that feeds a result, and map iteration must never
//     order user-visible output;
//   - poolhygiene: scratch buffers from the internal/dsp sync.Pool must be
//     returned on every control-flow path and never retained past the Put;
//   - floatsafe: DSP decisions ride on conditioned float series, where ==
//     on two computed values is almost always a latent bug;
//   - unitcheck: power/gain/frequency/distance quantities must move through
//     the internal/units API, not raw casts or bare literals.
//
// Each analyzer reports diagnostics with stable codes (DT001, PH002, ...).
// A finding can be suppressed with an in-source directive that must carry a
// written reason (see ignore.go); unexplained or unused directives are
// themselves diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named analysis pass over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in output and documentation.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Codes documents every diagnostic code the analyzer can emit.
	Codes []CodeDoc
	// Run inspects the package and reports diagnostics through the pass.
	Run func(*Pass)
}

// CodeDoc documents one diagnostic code.
type CodeDoc struct {
	Code    string
	Summary string
}

// Diagnostic is one finding, positioned in the source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Code     string         `json:"code"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Config   *Config
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Code:     code,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config parameterizes the suite for a module. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// ModulePath is the module being analyzed (used to resolve the
	// internal/dsp, internal/units and internal/rng packages).
	ModulePath string
	// WallClockAllow lists functions allowed to read the wall clock for
	// duration reporting, keyed "pkgpath.Func" or "pkgpath.Recv.Func".
	// Nothing a seed or trial outcome derives from may appear here.
	WallClockAllow map[string]bool
	// RandAllow lists package paths allowed to import math/rand; everything
	// else must draw from the seeded internal/rng streams.
	RandAllow map[string]bool
	// FloatScope lists package-path prefixes where floatsafe applies (the
	// DSP/decoder/eval code operating on measurement series).
	FloatScope []string
	// StreamScope lists package paths where streamhygiene applies (the
	// stream-stage packages whose per-push state must stay bounded).
	StreamScope []string
	// RngRootDeny lists packages forbidden from minting rng root streams
	// (rng.New, rng.TrialStream). These packages must be handed a
	// *rng.Stream by the composition root — core derives the fault
	// injector's stream from TrialSeed(seed, salt) so it can never collide
	// with or perturb the draws other subsystems consume; a locally minted
	// root would reintroduce exactly that coupling.
	RngRootDeny []string
	// HotPathRoots lists the functions (keyed like WallClockAllow) whose
	// entire static call closure the hotpath analyzer holds to allocation
	// discipline. Functions can also opt in with //wblint:hotpath-root.
	HotPathRoots []string
	// HotPathBoxAllow lists fully-qualified functions whose interface
	// parameters may receive boxed values even on the hot path — the
	// error-path formatters, which only run when decode is already failing.
	HotPathBoxAllow map[string]bool
}

// DefaultConfig returns the repository's wblint policy.
func DefaultConfig() *Config {
	const mod = "repro"
	return &Config{
		ModulePath: mod,
		WallClockAllow: map[string]bool{
			// Duration reporting only: wbbench prints wall-clock speedups
			// and eval.Suite.Run prints per-experiment progress timing.
			// Seeds and trial outcomes never derive from these clocks.
			mod + "/cmd/wbbench.runCompare":  true,
			mod + "/internal/eval.Suite.Run": true,
		},
		RandAllow: map[string]bool{
			// internal/rng wraps math/rand behind seeded, splittable
			// streams; it is the only sanctioned entry point.
			mod + "/internal/rng": true,
		},
		FloatScope: []string{
			mod + "/internal/dsp",
			mod + "/internal/csi",
			mod + "/internal/uplink",
			mod + "/internal/downlink",
			mod + "/internal/eval",
			mod + "/internal/core",
			mod + "/internal/sim",
			mod + "/internal/tag",
			mod + "/internal/wifi",
			mod + "/internal/reader",
			mod + "/internal/inventory",
		},
		StreamScope: []string{
			// The streaming decode path: StreamDecoder state in uplink
			// and the measurement containers in csi.
			mod + "/internal/uplink",
			mod + "/internal/csi",
		},
		RngRootDeny: []string{
			// The fault injector receives its stream from core (see
			// core.Config.Faults); it must never mint its own root.
			mod + "/internal/faults",
		},
		HotPathRoots: []string{
			// The streaming decode entry point and the per-frame decode
			// core: everything they can reach must hold 0 allocs/push
			// (make bench-stream measures it; hotpath pinpoints it).
			mod + "/internal/uplink.StreamDecoder.Push",
			mod + "/internal/uplink.StreamDecoder.decode",
			// The serving layer's per-session worker: every measurement of
			// every concurrent session flows through it, so its reachable
			// set (stream push, slot recycling, response formatting) must
			// hold the same 0 allocs/measurement discipline.
			mod + "/internal/serve.Session.loop",
			// The resilience layer's per-bit and per-poll paths: the resume
			// checkpoint recorder sits between the worker and the transport
			// sink on every emitted bit, and the watchdog sweep runs on a
			// tight cadence against every live session.
			mod + "/internal/serve.resumeSink.EmitBits",
			mod + "/internal/serve.Server.watchdogSweep",
		},
		HotPathBoxAllow: map[string]bool{
			// Error construction only runs when a push is already being
			// rejected; boxing its operands is off the steady-state path.
			"fmt.Errorf": true,
		},
	}
}

// inFloatScope reports whether floatsafe applies to a package path.
// Fixture packages (under a testdata directory) are always in scope so the
// analyzers can be exercised by tests.
func (c *Config) inFloatScope(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, p := range c.FloatScope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// inStreamScope reports whether streamhygiene applies to a package path.
// Fixture packages (under a testdata directory) are always in scope so the
// analyzer can be exercised by tests, mirroring inFloatScope.
func (c *Config) inStreamScope(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, p := range c.StreamScope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// rngRootDenied reports whether DT004 applies to a package path. Fixture
// packages (under a testdata directory) are always denied so the check can
// be exercised by tests, mirroring inFloatScope.
func (c *Config) rngRootDenied(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, p := range c.RngRootDeny {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// Analyzers returns the intra-package suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		PoolHygieneAnalyzer,
		FloatSafeAnalyzer,
		UnitCheckAnalyzer,
		StreamHygieneAnalyzer,
	}
}

// ModuleAnalyzers returns the interprocedural suite in stable order. These
// run once over the whole module (see callgraph.go) after the per-package
// analyzers.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{
		TaintAnalyzer,
		PoolEscapeAnalyzer,
		HotPathAnalyzer,
	}
}

// CatalogEntry is one row of the complete diagnostic-code catalog.
type CatalogEntry struct {
	Code     string
	Summary  string
	Analyzer string
}

// Catalog returns every diagnostic code the suite can emit — intra-package
// analyzers, module analyzers, and the directive checker — sorted by code.
// cmd/wblint prints it for -codes, and tests hold the README against it.
func Catalog() []CatalogEntry {
	var out []CatalogEntry
	for _, a := range Analyzers() {
		for _, c := range a.Codes {
			out = append(out, CatalogEntry{c.Code, c.Summary, a.Name})
		}
	}
	for _, a := range ModuleAnalyzers() {
		for _, c := range a.Codes {
			out = append(out, CatalogEntry{c.Code, c.Summary, a.Name})
		}
	}
	out = append(out,
		CatalogEntry{codeMissingReason, "ignore directive lacks a code or a written reason", "wblint"},
		CatalogEntry{codeUnusedIgnore, "ignore directive matches no finding", "wblint"},
	)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// RunAnalyzers applies every analyzer in the list to pkg and returns the
// raw (unsuppressed) diagnostics in source order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Config:   cfg,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// Check loads and analyzes pkg directories, applies the suppression
// directives, and returns the surviving diagnostics in source order. It is
// the one-call entry point used by cmd/wblint and the repo-clean test.
//
// The run has two layers: every package goes through the intra-package
// analyzers on its own, then the loaded packages together form a Module
// (call graph + summaries) for the interprocedural analyzers. Suppression
// directives apply uniformly to both layers.
func Check(l *Loader, dirs []string, cfg *Config) ([]Diagnostic, error) {
	var raw []Diagnostic
	var pkgs []*Package
	seen := map[string]bool{}
	analyzers := Analyzers()
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if seen[pkg.Path] {
			continue
		}
		seen[pkg.Path] = true
		pkgs = append(pkgs, pkg)
		raw = append(raw, RunAnalyzers(pkg, analyzers, cfg)...)
	}
	m := NewModule(pkgs, cfg)
	raw = append(raw, RunModuleAnalyzers(m, ModuleAnalyzers())...)
	diags := applyIgnores(pkgs, raw)
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, then code, so
// output is stable and -json runs can be diffed.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
}

// funcKey names a function the way Config.WallClockAllow keys it:
// "pkgpath.Func" for functions, "pkgpath.Recv.Func" for methods (pointer
// receivers use the element type name).
func funcKey(pkgPath string, decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + decl.Name.Name
		}
	}
	return pkgPath + "." + decl.Name.Name
}

// calleeFunc resolves the called function object of a call expression, or
// nil when the callee is not a statically known *types.Func (interface
// method values still resolve; dynamic calls of function variables do not).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
