// Package unitcheck is a wblint fixture for the units-discipline rules.
package unitcheck

import "repro/internal/units"

// castGainToPower reinterprets a dB gain as an absolute dBm power.
func castGainToPower(g units.DB) units.DBm {
	return units.DBm(g) // want "UC001"
}

// addPowers adds two absolute log powers.
func addPowers(p, q units.DBm) units.DBm {
	return p + q // want "UC002"
}

// diffPowers should use Sub, which yields a gain.
func diffPowers(p, q units.DBm) float64 {
	return float64(p - q) // want "UC002"
}

// link takes unit-typed parameters.
func link(d units.Meters, p units.DBm) float64 {
	return float64(d) * float64(p)
}

// bareArgs passes naked numbers where units are expected.
func bareArgs() float64 {
	return link(5, -30) // want "UC003" "UC003"
}

// bareVar declares a unit-typed variable from a naked literal.
func bareVar() units.Meters {
	var d units.Meters = 5 // want "UC003"
	d = 7                  // want "UC003"
	return d
}

// config has unit-typed fields.
type config struct {
	Distance units.Meters
	Power    units.DBm
}

// bareField fills a unit-typed field with a naked literal.
func bareField() config {
	return config{Distance: 3, Power: units.DBm(16)} // want "UC003"
}

// explicit is the clean spelling everywhere.
func explicit() float64 {
	d := units.Centimeters(25)
	p := units.DBm(16).Add(units.DB(-3))
	q := p.Milliwatts().DBm()
	return link(d, q) + link(units.Meters(1), units.DBm(-30))
}

// properConvert goes through the units API: clean.
func properConvert(p units.DBm) units.Milliwatt {
	return p.Milliwatts()
}
