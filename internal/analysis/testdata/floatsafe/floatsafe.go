// Package floatsafe is a wblint fixture for float-comparison rules.
package floatsafe

// computedEquality compares two accumulated values exactly.
func computedEquality(xs []float64) bool {
	var a, b float64
	for _, x := range xs {
		a += x
		b += x * 1.0000001
	}
	return a == b // want "FS001"
}

func notEqual(a, b float64) bool {
	return a != b // want "FS001"
}

// constantComparison tests against a nonzero magic value.
func constantComparison(x float64) bool {
	return x == 1.5 // want "FS002"
}

// zeroGuard is the sanctioned exact comparison: a division guard against
// the exact zero that degenerate input produces.
func zeroGuard(scale float64, xs []float64) []float64 {
	if scale == 0 {
		return nil
	}
	for i := range xs {
		xs[i] /= scale
	}
	return xs
}

// intEquality is not a float comparison: clean.
func intEquality(a, b int) bool {
	return a == b
}

// ordering comparisons are fine: clean.
func ordering(a, b float64) bool {
	return a < b || a >= b
}
