// Package streamhygiene exercises the streamhygiene analyzer: append
// accumulation on receiver fields (per-push pipeline state that grows with
// trace length) is flagged; appends to locals, to result structs under
// construction, and rebinds from other sources are bounded by their scope
// and stay silent.
package streamhygiene

// stage mimics a streaming pipeline stage carrying per-push state.
type stage struct {
	history []float64
	bins    []int
	scratch []float64
}

// push accumulates unboundedly on a receiver field: the SH001 shape.
func (s *stage) push(v float64) {
	s.history = append(s.history, v) // want "receiver field s.history grows via append"
}

// pushMany accumulates on two fields in one statement: both flagged.
func (s *stage) pushMany(v float64, b int) {
	s.history, s.bins = append(s.history, v), append(s.bins, b) // want "s.history grows via append" "s.bins grows via append"
}

// rebind replaces a field from a different source; not self-accumulation.
func (s *stage) rebind(v float64) {
	s.scratch = append(s.history, v)
}

// localAppend grows a local, bounded by the call; silent.
func (s *stage) localAppend(vs []float64) float64 {
	var acc []float64
	for _, v := range vs {
		acc = append(acc, v)
	}
	if len(acc) == 0 {
		return 0
	}
	return acc[len(acc)-1]
}

// result is a value under construction, not stream state.
type result struct {
	items []int
}

// build appends to a local result struct's field; silent (the struct's
// lifetime is the call).
func (s *stage) build(n int) *result {
	res := &result{}
	for i := 0; i < n; i++ {
		res.items = append(res.items, i)
	}
	return res
}

// freeFunc has no receiver; field appends on parameters are the caller's
// contract, silent here.
func freeFunc(st *stage, v float64) {
	st.scratch = st.scratch[:0]
	st.scratch = append(st.scratch, v)
}
