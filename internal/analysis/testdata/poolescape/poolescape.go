// Package poolescape exercises the interprocedural pool-escape analyzer
// (PH004–PH005). Every reported case involves a buffer whose GetSlice
// happened in a callee: the intra-procedural poolhygiene pass sees nothing
// wrong in these functions, because the acquisition is out of its sight.
package poolescape

import "repro/internal/dsp"

// alloc hands its caller a pooled buffer. The direct return of a GetSlice
// is PH003 (poolhygiene's finding, not exercised here); poolescape's job
// starts in alloc's callers.
func alloc(n int) []float64 {
	return dsp.GetSlice(n)
}

// wrap returns a transitively-acquired buffer onward: PH005, one hop from
// the GetSlice.
func wrap(n int) []float64 {
	buf := alloc(n)
	return buf // want "PH005"
}

// cache retains a buffer that is two hops from its GetSlice: PH004. The
// pool will eventually recycle the memory under cache's feet.
type cache struct {
	scratch []float64
}

func (c *cache) retain(n int) {
	c.scratch = wrap(n) // want "PH004"
}

// frame packs a transitively-acquired buffer into a composite literal,
// which outlives the frame through the return: PH004.
type frame struct {
	data []float64
}

func pack(n int) frame {
	buf := alloc(n)
	return frame{data: buf} // want "PH004"
}

// leakChan sends a transitively-acquired buffer to a receiver that
// outlives the frame: PH004.
func leakChan(n int, ch chan []float64) {
	buf := alloc(n)
	ch <- buf // want "PH004"
}

// capture closes over a transitively-acquired buffer; the closure is
// returned, so the buffer escapes with it: PH004.
func capture(n int) func() float64 {
	buf := alloc(n)
	return func() float64 { return buf[0] } // want "PH004"
}

// scratchUse is the pool's intended pattern: acquire through a helper,
// release here. Locally-released buffers are exempt, so nothing is
// reported.
func scratchUse(n int) float64 {
	buf := alloc(n)
	defer dsp.PutSlice(buf)
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}

// directUse acquires and releases directly: entirely poolhygiene's
// territory, nothing for poolescape.
func directUse(n int) float64 {
	buf := dsp.GetSlice(n)
	defer dsp.PutSlice(buf)
	return buf[0]
}
