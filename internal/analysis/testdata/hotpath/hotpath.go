// Package hotpath exercises the hot-path allocation analyzer (HP001–HP003).
// The root is marked with //wblint:hotpath-root; the violations sit two
// calls below it, in a function no intra-procedural pass would connect to
// the root. offPath holds the same shapes outside the reachable set to pin
// that the discipline applies only where the roots can reach.
package hotpath

// process is the fixture's hot-path root.
//
//wblint:hotpath-root
func process(samples []float64) float64 {
	return stage1(samples) + cleanStage(samples)
}

// stage1 is one hop below the root.
func stage1(samples []float64) float64 {
	return stage2(samples)
}

// stage2 is two hops below the root and breaks every rule: unbounded
// append growth in a loop, boxing into an interface parameter, and an
// escaping closure.
func stage2(samples []float64) float64 {
	var out []float64
	for _, s := range samples {
		out = append(out, s*s) // want "HP003"
	}
	sink(len(out))                        // want "HP001"
	f := func() float64 { return out[0] } // want "HP002"
	return f()
}

func sink(v any) { _ = v }

// cleanStage shows the allowed shapes: a sized make, slice-reset reuse,
// a pointer riding the interface word, and a directly-deferred closure.
func cleanStage(samples []float64) float64 {
	out := make([]float64, 0, len(samples))
	for _, s := range samples {
		out = append(out, s)
	}
	out = out[:0]
	for _, s := range samples {
		out = append(out, s*2)
	}
	sink(&out)
	defer func() { out = out[:0] }()
	if len(out) == 0 {
		return 0
	}
	return out[0]
}

// offPath is unreachable from the root: the same shapes as stage2, with
// no findings, because the hot-path contract does not apply here.
func offPath(samples []float64) []float64 {
	var out []float64
	for _, s := range samples {
		out = append(out, s)
	}
	sink(len(out))
	return out
}
