// Package determinism is a wblint fixture: every line carrying a want
// comment must produce the named diagnostic, and lines without one must
// stay clean.
package determinism

import (
	"fmt"
	"math/rand" // want "DT002"
	"sort"
	"time"

	"repro/internal/rng"
)

// wallClock reads the clock outside the allowlist.
func wallClock() float64 {
	t0 := time.Now()    // want "DT001"
	d := time.Since(t0) // want "DT001"
	return d.Seconds() + rand.Float64()
}

// mapOrderedOutput prints in map order.
func mapOrderedOutput(counts map[string]int) {
	for k, v := range counts { // want "DT003"
		fmt.Println(k, v)
	}
}

// sortedOutput iterates sorted keys: clean.
func sortedOutput(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, counts[k])
	}
}

// mintedRoots builds rng root streams locally in a package that must be
// handed its stream by the composition root.
func mintedRoots() float64 {
	s := rng.New(1)            // want "DT004"
	u := rng.TrialStream(1, 2) // want "DT004"
	return s.Float64() + u.Float64()
}

// packageRoot mints a root in a package-level initializer.
var packageRoot = rng.New(7) // want "DT004"

// injectedStream receives its stream and derives children with Split:
// clean — deriving is sanctioned, minting is not.
func injectedStream(s *rng.Stream) float64 {
	return s.Split("local").Float64()
}

// seedArithmetic uses TrialSeed without minting a stream: clean — the
// composition root may be handed a derived seed.
func seedArithmetic(base int64, trial int) int64 {
	return rng.TrialSeed(base, trial)
}

// mapAccumulate ranges a map without emitting output: clean (the sum is
// order-independent).
func mapAccumulate(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}
