// Package determinism is a wblint fixture: every line carrying a want
// comment must produce the named diagnostic, and lines without one must
// stay clean.
package determinism

import (
	"fmt"
	"math/rand" // want "DT002"
	"sort"
	"time"
)

// wallClock reads the clock outside the allowlist.
func wallClock() float64 {
	t0 := time.Now()          // want "DT001"
	d := time.Since(t0)       // want "DT001"
	return d.Seconds() + rand.Float64()
}

// mapOrderedOutput prints in map order.
func mapOrderedOutput(counts map[string]int) {
	for k, v := range counts { // want "DT003"
		fmt.Println(k, v)
	}
}

// sortedOutput iterates sorted keys: clean.
func sortedOutput(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, counts[k])
	}
}

// mapAccumulate ranges a map without emitting output: clean (the sum is
// order-independent).
func mapAccumulate(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}
