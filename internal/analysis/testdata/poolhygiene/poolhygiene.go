// Package poolhygiene is a wblint fixture for the dsp buffer-pool rules.
package poolhygiene

import "repro/internal/dsp"

// leak never releases the buffer.
func leak(n int) float64 {
	buf := dsp.GetSlice(n) // want "PH001"
	return buf[0]
}

// earlyReturn skips the Put on one path.
func earlyReturn(n int) float64 {
	buf := dsp.GetSlice(n)
	if n > 4 {
		return 0 // want "PH001"
	}
	v := buf[0]
	dsp.PutSlice(buf)
	return v
}

// useAfterPut reads the buffer after it went back to the pool.
func useAfterPut(n int) float64 {
	buf := dsp.GetSlice(n)
	dsp.PutSlice(buf)
	return buf[0] // want "PH002"
}

// escapeReturn hands the pooled buffer to the caller.
func escapeReturn(n int) []float64 {
	buf := dsp.GetSlice(n)
	return buf // want "PH003"
}

// escapeStore retains the pooled buffer in a struct.
type holder struct{ buf []float64 }

func escapeStore(n int) *holder {
	buf := dsp.GetSlice(n)
	return &holder{buf: buf} // want "PH003"
}

// uncaptured cannot ever release the buffer.
func uncaptured(n int) float64 {
	return sum(dsp.GetSlice(n)) // want "PH001"
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// overwritten drops the pooled buffer before releasing it.
func overwritten(n int) {
	buf := dsp.GetSlice(n)
	buf = make([]float64, n) // want "PH001"
	dsp.PutSlice(buf)
}

// deferred is the canonical clean pattern.
func deferred(n int) float64 {
	buf := dsp.GetSlice(n)
	defer dsp.PutSlice(buf)
	if n > 4 {
		return 0 // early return is fine: the defer still releases
	}
	return buf[0]
}

// deferredClosure releases via a deferred literal, and the buffer may be
// grown and reassigned through an Into-style round-trip: clean.
func deferredClosure(n int) float64 {
	buf := dsp.GetSlice(n)
	defer func() { dsp.PutSlice(buf) }()
	buf = grow(buf)
	return buf[0]
}

func grow(xs []float64) []float64 {
	return append(xs, 0)
}

// straightLine releases without defer on the only path: clean.
func straightLine(n int) float64 {
	buf := dsp.GetSlice(n)
	v := buf[0]
	dsp.PutSlice(buf)
	return v
}
