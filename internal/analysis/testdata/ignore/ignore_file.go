// File-wide suppression fixture: every DT001 in this file is exempt.
//wblint:file-ignore DT001 fixture: whole file is duration-reporting scaffolding

package ignore

import "time"

func fileWideOne() time.Time { return time.Now() }

func fileWideTwo() time.Time { return time.Now() }
