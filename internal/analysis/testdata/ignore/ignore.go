// Package ignore is a wblint fixture for the suppression directives. The
// expectations live in TestIgnoreDirectives (not want comments, because the
// directives under test are themselves comments).
package ignore

import "time"

// suppressed carries a correctly explained directive: the DT001 must not
// surface.
func suppressed() time.Time {
	//wblint:ignore DT001 fixture: documented exception with a written reason
	return time.Now()
}

// missingReason has a bare directive: it suppresses nothing and earns an
// IG001, so both the IG001 and the underlying DT001 must surface.
func missingReason() time.Time {
	//wblint:ignore DT001
	return time.Now()
}

// unused has a directive that matches no finding: IG002.
func unused() int {
	//wblint:ignore DT003 fixture: stale directive kept to exercise IG002
	return 1
}
