// Package taint exercises the interprocedural determinism-taint analyzer
// (DT005–DT007). The point of every case here is distance: the source
// (time.Now, rand.Float64, a map range) sits in one function and the
// violation surfaces in another, one or two calls away — exactly the
// shapes the intra-procedural determinism analyzer cannot see.
package taint

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
)

// --- wall-clock chain: source → one hop → two hops ---------------------

// clockSeed returns a wall-clock-derived value. (The read itself is DT001,
// the intra-procedural analyzer's finding; taint tracks where it goes.)
func clockSeed() int64 {
	return time.Now().UnixNano()
}

// deriveSeed is one call from the source.
func deriveSeed(offset int64) int64 {
	s := clockSeed() // want "DT005"
	return s + offset
}

// trialOutcome is two calls from the source: the sink an intra-procedural
// pass can never connect to the time.Now in clockSeed.
func trialOutcome() int64 {
	return deriveSeed(7) // want "DT005"
}

// --- unseeded-rand chain ----------------------------------------------

func noise() float64 {
	return rand.Float64()
}

func jitter() float64 {
	n := noise() // want "DT006"
	return n * 0.5
}

func perturb(x float64) float64 {
	return x + jitter() // want "DT006"
}

// --- map-iteration-order chain ----------------------------------------

// unsortedKeys accumulates in map-walk order; holding such a slice is
// legal, so nothing is reported here.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// emit prints the keys in whatever order the map walk produced, one call
// below the accumulation: DT007 at the sink.
func emit(m map[string]int) {
	keys := unsortedKeys(m)
	for _, k := range keys {
		fmt.Println(k) // want "DT007"
	}
}

// emitSorted is the sanctioned shape: a sort between the map walk and the
// output cleanses the ordering.
func emitSorted(m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k)
	}
}

// unsortedVals mirrors unsortedKeys for a float-valued map.
func unsortedVals(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}

// observeFirst feeds a map-ordered value to a metric: the histogram's
// shape now depends on the map walk.
func observeFirst(m map[string]float64, h *obs.Histogram) {
	vals := unsortedVals(m)
	h.Observe(vals[0]) // want "DT007"
}

// keyCount derives only the length from a map-ordered slice: len is
// order-independent and exempt from propagation, so nothing is reported.
func keyCount(m map[string]int) int {
	keys := unsortedKeys(m)
	return len(keys)
}
