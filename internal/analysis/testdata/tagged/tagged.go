// Package tagged proves the loader honors build constraints: the two
// sibling files are excluded on every platform the suite runs on (one by
// an unsatisfiable //go:build tag, one by a foreign _GOOS suffix) and both
// contain deliberate typecheck errors, so if the loader ever parses them
// the fixture load fails loudly.
package tagged

// Ok is the only symbol the host build should see.
func Ok() int { return 1 }
