//go:build wblint_never_set

// This file carries an unsatisfiable build tag. Its body references an
// undefined symbol on purpose: a loader that ignores //go:build would fail
// to typecheck the tagged fixture, and TestBuildConstraints would catch it.
package tagged

func broken() int { return definitelyUndefinedSymbol }
