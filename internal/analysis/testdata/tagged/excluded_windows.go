// This file is excluded by its _windows filename suffix everywhere the
// suite runs (linux/darwin CI and containers). Like excluded.go, it is
// deliberately broken so a suffix-blind loader cannot load the fixture.
package tagged

func alsoBroken() int { return anotherUndefinedSymbol }
