package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches one loader (and its typechecked stdlib) across the
// package's tests. Tests in this package do not run in parallel.
var sharedLoader *Loader

func testLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		root, err := FindModuleRoot(".")
		if err != nil {
			t.Fatalf("finding module root: %v", err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("creating loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// loadFixture typechecks one testdata fixture package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir(), "internal/analysis/testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`"([^"]*)"`)

// fixtureWants parses `// want "..." ["..."]...` comments, returning the
// expected diagnostic substrings keyed by file:line.
func fixtureWants(pkg *Package) map[string][]string {
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

// matchWants compares diagnostics against a fixture's want comments: every
// want must be produced, and every diagnostic must be wanted.
func matchWants(t *testing.T, fixture string, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := fixtureWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	matched := map[string][]bool{}
	for key, list := range wants {
		matched[key] = make([]bool, len(list))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for i, w := range wants[key] {
			if matched[key][i] {
				continue
			}
			if strings.Contains(d.Code+" "+d.Message, w) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for key, list := range wants {
		for i, w := range list {
			if !matched[key][i] {
				t.Errorf("%s: want %q not reported", key, w)
			}
		}
	}
}

// checkFixture runs intra-package analyzers over a fixture and matches
// diagnostics against its want comments.
func checkFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	matchWants(t, fixture, pkg, RunAnalyzers(pkg, analyzers, DefaultConfig()))
}

// checkModuleFixture runs interprocedural analyzers over a fixture treated
// as a one-package module (the fixture's call graph is self-contained).
func checkModuleFixture(t *testing.T, fixture string, analyzers []*ModuleAnalyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	m := NewModule([]*Package{pkg}, DefaultConfig())
	matchWants(t, fixture, pkg, RunModuleAnalyzers(m, analyzers))
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", []*Analyzer{DeterminismAnalyzer})
}

func TestPoolHygieneFixture(t *testing.T) {
	checkFixture(t, "poolhygiene", []*Analyzer{PoolHygieneAnalyzer})
}

func TestFloatSafeFixture(t *testing.T) {
	checkFixture(t, "floatsafe", []*Analyzer{FloatSafeAnalyzer})
}

func TestUnitCheckFixture(t *testing.T) {
	checkFixture(t, "unitcheck", []*Analyzer{UnitCheckAnalyzer})
}

func TestStreamHygieneFixture(t *testing.T) {
	checkFixture(t, "streamhygiene", []*Analyzer{StreamHygieneAnalyzer})
}

func TestTaintFixture(t *testing.T) {
	checkModuleFixture(t, "taint", []*ModuleAnalyzer{TaintAnalyzer})
}

func TestPoolEscapeFixture(t *testing.T) {
	checkModuleFixture(t, "poolescape", []*ModuleAnalyzer{PoolEscapeAnalyzer})
}

func TestHotPathFixture(t *testing.T) {
	checkModuleFixture(t, "hotpath", []*ModuleAnalyzer{HotPathAnalyzer})
}

// TestMultiHopBeyondIntraprocedural pins the acceptance property of the
// interprocedural layer: the taint and hotpath fixtures contain violations
// whose sink is two calls from the source, reported by the module
// analyzers and invisible to the whole intra-package suite.
func TestMultiHopBeyondIntraprocedural(t *testing.T) {
	cases := []struct {
		fixture string
		code    string
		chain   string // a two-hop chain the diagnostic message must name
	}{
		{"taint", "DT005", "deriveSeed → clockSeed → time.Now"},
		{"hotpath", "HP003", "process → stage1 → stage2"},
	}
	for _, tc := range cases {
		pkg := loadFixture(t, tc.fixture)
		m := NewModule([]*Package{pkg}, DefaultConfig())
		inter := RunModuleAnalyzers(m, ModuleAnalyzers())
		var hit *Diagnostic
		for i, d := range inter {
			if d.Code == tc.code && strings.Contains(d.Message, tc.chain) {
				hit = &inter[i]
				break
			}
		}
		if hit == nil {
			t.Errorf("fixture %s: no %s naming the chain %q (got %v)", tc.fixture, tc.code, tc.chain, inter)
			continue
		}
		for _, d := range RunAnalyzers(pkg, Analyzers(), DefaultConfig()) {
			if d.Pos.Filename == hit.Pos.Filename && d.Pos.Line == hit.Pos.Line {
				t.Errorf("fixture %s: intra-procedural %s on the multi-hop line %d — the case is not beyond the old suite",
					tc.fixture, d.Code, d.Pos.Line)
			}
		}
	}
}

// TestBuildConstraints pins the loader's build-constraint handling: the
// tagged fixture's excluded files (unsatisfiable //go:build tag, foreign
// _GOOS suffix) contain deliberate typecheck errors, so this load only
// succeeds if both were filtered out.
func TestBuildConstraints(t *testing.T) {
	pkg := loadFixture(t, "tagged")
	if len(pkg.Files) != 1 {
		t.Fatalf("tagged fixture loaded %d files, want 1 (build-constrained files must be excluded)", len(pkg.Files))
	}
	name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	if name != "tagged.go" {
		t.Errorf("tagged fixture loaded %s, want tagged.go", name)
	}
	if pkg.Types.Scope().Lookup("Ok") == nil {
		t.Error("tagged fixture is missing Ok — wrong file survived the filter")
	}
}

// TestAnalyzerDisabledWouldFail pins the property the acceptance criteria
// names: each fixture contains at least one finding, so disabling its
// analyzer (running none) leaves want comments unmatched and the fixture
// test red.
func TestAnalyzerDisabledWouldFail(t *testing.T) {
	for _, fixture := range []string{"determinism", "poolhygiene", "floatsafe", "unitcheck", "streamhygiene",
		"taint", "poolescape", "hotpath"} {
		pkg := loadFixture(t, fixture)
		if n := len(fixtureWants(pkg)); n == 0 {
			t.Errorf("fixture %s has no want comments; a disabled analyzer would go unnoticed", fixture)
		}
		if diags := RunAnalyzers(pkg, nil, DefaultConfig()); len(diags) != 0 {
			t.Errorf("fixture %s: no analyzers should mean no diagnostics", fixture)
		}
	}
}

// TestIgnoreDirectives exercises suppression end to end on the ignore
// fixture: explained directives suppress, bare ones earn IG001 without
// suppressing, stale ones earn IG002, and file-ignore covers a whole file.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	diags := ApplyIgnores(pkg, RunAnalyzers(pkg, []*Analyzer{DeterminismAnalyzer}, DefaultConfig()))

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Code+" "+filepath.Base(d.Pos.Filename)]++
	}
	want := map[string]int{
		"IG001 ignore.go": 1, // bare directive
		"DT001 ignore.go": 1, // the finding the bare directive failed to suppress
		"IG002 ignore.go": 1, // stale directive
	}
	if len(counts) != len(want) {
		t.Errorf("diagnostics after suppression: got %v, want %v", counts, want)
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("diagnostics %s: got %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "ignore_file.go" {
			t.Errorf("file-ignore failed to cover %v", d)
		}
	}
}

// TestSuppressionRange pins the directive's reach: its own line and the
// line below, not further.
func TestSuppressionRange(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	raw := RunAnalyzers(pkg, []*Analyzer{DeterminismAnalyzer}, DefaultConfig())
	// The fixture's suppressed() function places the directive on the line
	// above its time.Now: that finding must be absent after filtering.
	var suppressedLine int
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "documented exception with a written reason") {
					suppressedLine = pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	if suppressedLine == 0 {
		t.Fatal("fixture directive not found")
	}
	for _, d := range ApplyIgnores(pkg, raw) {
		if d.Code == "DT001" && d.Pos.Line == suppressedLine+1 {
			t.Errorf("directive on line %d failed to suppress %v", suppressedLine, d)
		}
	}
}

// TestDiagnosticOrder pins the stable sort the -json contract relies on.
func TestDiagnosticOrder(t *testing.T) {
	pkg := loadFixture(t, "determinism")
	diags := RunAnalyzers(pkg, Analyzers(), DefaultConfig())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}
