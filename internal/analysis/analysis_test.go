package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches one loader (and its typechecked stdlib) across the
// package's tests. Tests in this package do not run in parallel.
var sharedLoader *Loader

func testLoader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		root, err := FindModuleRoot(".")
		if err != nil {
			t.Fatalf("finding module root: %v", err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("creating loader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// loadFixture typechecks one testdata fixture package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join(l.ModuleDir(), "internal/analysis/testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

var wantRE = regexp.MustCompile(`"([^"]*)"`)

// fixtureWants parses `// want "..." ["..."]...` comments, returning the
// expected diagnostic substrings keyed by file:line.
func fixtureWants(pkg *Package) map[string][]string {
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

// checkFixture runs analyzers over a fixture and matches diagnostics
// against its want comments: every want must be produced, and every
// diagnostic must be wanted.
func checkFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	diags := RunAnalyzers(pkg, analyzers, DefaultConfig())
	wants := fixtureWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	matched := map[string][]bool{}
	for key, list := range wants {
		matched[key] = make([]bool, len(list))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for i, w := range wants[key] {
			if matched[key][i] {
				continue
			}
			if strings.Contains(d.Code+" "+d.Message, w) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for key, list := range wants {
		for i, w := range list {
			if !matched[key][i] {
				t.Errorf("%s: want %q not reported", key, w)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", []*Analyzer{DeterminismAnalyzer})
}

func TestPoolHygieneFixture(t *testing.T) {
	checkFixture(t, "poolhygiene", []*Analyzer{PoolHygieneAnalyzer})
}

func TestFloatSafeFixture(t *testing.T) {
	checkFixture(t, "floatsafe", []*Analyzer{FloatSafeAnalyzer})
}

func TestUnitCheckFixture(t *testing.T) {
	checkFixture(t, "unitcheck", []*Analyzer{UnitCheckAnalyzer})
}

func TestStreamHygieneFixture(t *testing.T) {
	checkFixture(t, "streamhygiene", []*Analyzer{StreamHygieneAnalyzer})
}

// TestAnalyzerDisabledWouldFail pins the property the acceptance criteria
// names: each fixture contains at least one finding, so disabling its
// analyzer (running none) leaves want comments unmatched and the fixture
// test red.
func TestAnalyzerDisabledWouldFail(t *testing.T) {
	for _, fixture := range []string{"determinism", "poolhygiene", "floatsafe", "unitcheck", "streamhygiene"} {
		pkg := loadFixture(t, fixture)
		if n := len(fixtureWants(pkg)); n == 0 {
			t.Errorf("fixture %s has no want comments; a disabled analyzer would go unnoticed", fixture)
		}
		if diags := RunAnalyzers(pkg, nil, DefaultConfig()); len(diags) != 0 {
			t.Errorf("fixture %s: no analyzers should mean no diagnostics", fixture)
		}
	}
}

// TestIgnoreDirectives exercises suppression end to end on the ignore
// fixture: explained directives suppress, bare ones earn IG001 without
// suppressing, stale ones earn IG002, and file-ignore covers a whole file.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	diags := ApplyIgnores(pkg, RunAnalyzers(pkg, []*Analyzer{DeterminismAnalyzer}, DefaultConfig()))

	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Code+" "+filepath.Base(d.Pos.Filename)]++
	}
	want := map[string]int{
		"IG001 ignore.go": 1, // bare directive
		"DT001 ignore.go": 1, // the finding the bare directive failed to suppress
		"IG002 ignore.go": 1, // stale directive
	}
	if len(counts) != len(want) {
		t.Errorf("diagnostics after suppression: got %v, want %v", counts, want)
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("diagnostics %s: got %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "ignore_file.go" {
			t.Errorf("file-ignore failed to cover %v", d)
		}
	}
}

// TestSuppressionRange pins the directive's reach: its own line and the
// line below, not further.
func TestSuppressionRange(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	raw := RunAnalyzers(pkg, []*Analyzer{DeterminismAnalyzer}, DefaultConfig())
	// The fixture's suppressed() function places the directive on the line
	// above its time.Now: that finding must be absent after filtering.
	var suppressedLine int
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "documented exception with a written reason") {
					suppressedLine = pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	if suppressedLine == 0 {
		t.Fatal("fixture directive not found")
	}
	for _, d := range ApplyIgnores(pkg, raw) {
		if d.Code == "DT001" && d.Pos.Line == suppressedLine+1 {
			t.Errorf("directive on line %d failed to suppress %v", suppressedLine, d)
		}
	}
}

// TestDiagnosticOrder pins the stable sort the -json contract relies on.
func TestDiagnosticOrder(t *testing.T) {
	pkg := loadFixture(t, "determinism")
	diags := RunAnalyzers(pkg, Analyzers(), DefaultConfig())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}
