package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAnalyzer turns the streaming decoder's 0 allocs/op benchmark
// (make bench-stream) from a number into line-level diagnostics. The
// benchmark can only say that the path allocated; it cannot say where, and
// it only covers the inputs the benchmark happens to push. This analyzer
// computes every module function statically reachable from the configured
// hot-path roots (Config.HotPathRoots — uplink.StreamDecoder.Push and the
// per-frame decode core — plus any function marked //wblint:hotpath-root)
// and enforces allocation discipline on all of them:
//
//   - HP001: a non-pointer concrete value passed to an interface-typed
//     parameter. The conversion boxes: one heap allocation per call.
//     Pointer conversions are exempt (the pointer rides in the interface
//     word), as are the error-path formatters in Config.HotPathBoxAllow.
//   - HP002: a function literal that escapes — passed to a callee or
//     assigned — which the compiler must heap-allocate together with its
//     captures. Immediately-invoked and directly-deferred literals are
//     exempt (they stay on the stack).
//   - HP003: a slice grown with x = append(x, ...) inside a loop with no
//     visible capacity establishment: no make(T, n, c), no x = x[:0]
//     reuse, and no composite-literal field initialized with a sized make.
//     Such appends reallocate O(log n) times per frame.
//
// Every diagnostic names the call chain from the root, so a violation two
// calls below Push reads as "Push → decode → binByTimestamp".
var HotPathAnalyzer = &ModuleAnalyzer{
	Name: "hotpath",
	Doc:  "functions reachable from the streaming decode roots must not allocate per call",
	Codes: []CodeDoc{
		{"HP001", "interface boxing of a non-pointer value on the hot path (interprocedural)"},
		{"HP002", "escaping function literal on the hot path (interprocedural)"},
		{"HP003", "append growth in a loop without established capacity on the hot path (interprocedural)"},
	},
	Run: runHotPath,
}

// hotPathRootDirective marks a function as a hot-path root in source, for
// packages (and fixtures) outside the configured root list.
const hotPathRootDirective = "//wblint:hotpath-root"

func runHotPath(p *ModulePass) {
	roots := hotPathRoots(p)
	if len(roots) == 0 {
		return
	}
	reach := p.Module.Graph.ReachableFrom(roots)
	reach.ForEach(func(fn *types.Func, step ReachStep) {
		node := p.Module.Graph.Nodes[fn]
		if node == nil {
			return
		}
		chain := reach.PathTo(fn, node.Pkg.Types)
		hotScanFunc(p, node, chain)
	})
}

// hotPathRoots resolves the configured root keys plus in-source
// //wblint:hotpath-root directives.
func hotPathRoots(p *ModulePass) []*types.Func {
	var roots []*types.Func
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			roots = append(roots, fn)
		}
	}
	for _, key := range p.Config.HotPathRoots {
		if n := p.Module.Graph.NodeByKey(key); n != nil {
			add(n.Fn)
		}
	}
	p.Module.Graph.ForEachNode(func(n *CallNode) {
		if n.Decl.Doc == nil {
			return
		}
		for _, c := range n.Decl.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathRootDirective) {
				add(n.Fn)
			}
		}
	})
	return roots
}

// hotScanFunc checks one reached function's body.
func hotScanFunc(p *ModulePass, node *CallNode, chain string) {
	loops := loopRanges(node.Decl.Body)

	// Literals that are exempt from HP002: immediately invoked, or the
	// direct call of a defer/go statement (a directly-deferred closure is
	// stack-allocated by the compiler when the function is not looping —
	// and the deliberate defer-release idiom must stay expressible).
	exemptLit := map[*ast.FuncLit]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				exemptLit[lit] = true
			}
		}
		return true
	})

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			hotCheckBoxing(p, node, n, chain)
		case *ast.FuncLit:
			if !exemptLit[n] {
				p.Reportf(n.Pos(), "HP002",
					"function literal escapes on the hot path (%s); hoist it or inline the logic", chain)
			}
		case *ast.AssignStmt:
			hotCheckAppend(p, node, n, loops, chain)
		}
		return true
	})
}

// hotCheckBoxing flags concrete non-pointer arguments passed to
// interface-typed parameters.
func hotCheckBoxing(p *ModulePass, node *CallNode, call *ast.CallExpr, chain string) {
	info := node.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil || p.Config.HotPathBoxAllow[fn.FullName()] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case i < params.Len()-1:
			paramType = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through; no boxing
			}
			if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				paramType = slice.Elem()
			}
		case i < params.Len():
			paramType = params.At(i).Type()
		}
		if paramType == nil || !types.IsInterface(paramType) {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		at := tv.Type
		if types.IsInterface(at) {
			continue // interface-to-interface: no new box
		}
		if b, isBasic := at.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers ride in the interface word
		}
		p.Reportf(arg.Pos(), "HP001",
			"%s value boxed into %s parameter of %s on the hot path (%s); one allocation per call",
			types.TypeString(at, types.RelativeTo(node.Pkg.Types)),
			types.TypeString(paramType, types.RelativeTo(node.Pkg.Types)),
			FuncDisplay(fn, node.Pkg.Types), chain)
	}
}

// hotCheckAppend flags x = append(x, ...) inside a loop when the function
// never visibly establishes capacity for x.
func hotCheckAppend(p *ModulePass, node *CallNode, assign *ast.AssignStmt, loops []posRange, chain string) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isB := node.Pkg.Info.Uses[id].(*types.Builtin); !isB {
			continue
		}
		if len(call.Args) == 0 {
			continue
		}
		path := exprPath(assign.Lhs[i])
		if path == "" || path != exprPath(call.Args[0]) {
			continue // not self-append; growth is bounded by the source
		}
		if !insideLoop(assign.Pos(), loops) {
			continue // a single append is amortized, not per-iteration
		}
		if capacityEstablished(node.Decl.Body, path) {
			continue
		}
		p.Reportf(assign.Pos(), "HP003",
			"%s grows by append in a loop with no established capacity on the hot path (%s); preallocate or reuse",
			path, chain)
	}
}

// posRange is a [start, end] source interval.
type posRange struct{ lo, hi token.Pos }

// loopRanges collects the body intervals of every for/range statement.
func loopRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			out = append(out, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			out = append(out, posRange{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return out
}

func insideLoop(pos token.Pos, loops []posRange) bool {
	for _, r := range loops {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// capacityEstablished reports whether the function visibly gives path a
// capacity: a three-argument make assigned to it, a x = x[:0] reuse, or a
// composite-literal field of the same name initialized with a sized make.
func capacityEstablished(body *ast.BlockStmt, path string) bool {
	field := path
	if idx := strings.LastIndex(path, "."); idx >= 0 {
		field = path[idx+1:]
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if exprPath(lhs) != path {
					continue
				}
				if isSizedMake(n.Rhs[i]) {
					found = true
				}
				if slice, ok := ast.Unparen(n.Rhs[i]).(*ast.SliceExpr); ok &&
					exprPath(slice.X) == path {
					found = true // x = x[:0] reuse keeps the old capacity
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if ok && key.Name == field && isSizedMake(kv.Value) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isSizedMake reports whether e is make(T, len, cap): an allocation whose
// capacity the author chose.
func isSizedMake(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 3 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "make"
}

// exprPath renders an assignable expression as a stable shape string:
// "x", "sd.ts", "bins[]". Index expressions normalize the index away so
// bins[j] and bins[k] compare equal. Unrepresentable shapes return "".
func exprPath(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		base := exprPath(t.X)
		if base == "" {
			return ""
		}
		return base + "." + t.Sel.Name
	case *ast.IndexExpr:
		base := exprPath(t.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.StarExpr:
		return exprPath(t.X)
	}
	return ""
}
