package analysis

import (
	"go/ast"
	"go/types"
)

// StreamHygieneAnalyzer protects the streaming decode path's bounded-memory
// contract (DESIGN.md §10): types in the stream-stage packages
// (internal/uplink, internal/csi) carry per-push state, so a method that
// grows one of its receiver's slice fields with append accumulates without
// bound as the trace lengthens — exactly the regression the StreamDecoder
// refactor removed. Bounded growth is fine (ring buffers, arenas capped by
// the frame, containers trimmed with Series.TrimBefore), but it is a design
// decision the code cannot prove, so it must be written down: suppress with
// a //wblint:ignore SH001 directive naming what bounds the field.
//
// The check is deliberately narrow — `x.f = append(x.f, ...)` where x is
// the method's receiver — because that is the shape unbounded accumulation
// takes in practice; appends to locals and to result structs being built
// are bounded by their scope and stay silent.
var StreamHygieneAnalyzer = &Analyzer{
	Name: "streamhygiene",
	Doc:  "stream-stage receiver state must not grow without bound via append",
	Codes: []CodeDoc{
		{"SH001", "append accumulation on a receiver field in a stream-stage package without a documented bound"},
	},
	Run: runStreamHygiene,
}

func runStreamHygiene(p *Pass) {
	if !p.Config.inStreamScope(p.Pkg.Path()) {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			recv := recvVar(p, fn)
			if recv == nil {
				continue
			}
			checkStreamFunc(p, fn, recv)
		}
	}
}

// recvVar resolves the method's receiver variable, or nil when unnamed.
func recvVar(p *Pass, fn *ast.FuncDecl) *types.Var {
	names := fn.Recv.List[0].Names
	if len(names) != 1 {
		return nil
	}
	v, _ := p.Info.Defs[names[0]].(*types.Var)
	return v
}

// checkStreamFunc flags every `recv.f = append(recv.f, ...)` in the body.
func checkStreamFunc(p *Pass, fn *ast.FuncDecl, recv *types.Var) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			field := receiverField(p, lhs, recv)
			if field == nil {
				continue
			}
			call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) || len(call.Args) == 0 {
				continue
			}
			if receiverField(p, call.Args[0], recv) != field {
				continue // rebinding from elsewhere, not self-accumulation
			}
			p.Reportf(assign.Pos(), "SH001",
				"receiver field %s.%s grows via append on every call; stream-stage state must be bounded — trim it, cap it, or suppress with the bound written down",
				recv.Name(), field.Name())
		}
		return true
	})
}

// receiverField returns the field object when expr is `recv.f`, else nil.
func receiverField(p *Pass, expr ast.Expr, recv *types.Var) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || p.Info.Uses[base] != types.Object(recv) {
		return nil
	}
	field, _ := p.Info.Uses[sel.Sel].(*types.Var)
	if field == nil || !field.IsField() {
		return nil
	}
	return field
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}
