package uplink

import (
	"math"
	"testing"

	"repro/internal/csi"
	"repro/internal/tag"
)

func TestFindTransmissionLocatesStart(t *testing.T) {
	payload := randomPayload(60, 50)
	const bitDur = 0.01
	const trueStart = 1.7321 // deliberately off any grid
	mod, _ := tag.NewModulator(tag.FrameBits(payload), trueStart, bitDur)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 51)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	start, found, err := d.FindTransmission(s, 1.0, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("transmission not detected")
	}
	if math.Abs(start-trueStart) > bitDur/2 {
		t.Fatalf("estimated start %v, want %v ± half bit", start, trueStart)
	}
	// The estimate must be good enough to decode with.
	res, err := d.DecodeCSI(s, start, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if errs := countBitErrors(res.Payload, payload); errs > 2 {
		t.Errorf("decode from scanned start: %d/%d errors", errs, len(payload))
	}
}

func TestFindTransmissionQuietChannel(t *testing.T) {
	// No transmission in the scanned range: no detection.
	payload := randomPayload(20, 52)
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 50, 0.01) // far away
	cfg := defaultSynth()
	cfg.duration = 4
	s := synthSeries(cfg, mod, 53)
	d, _ := NewDecoder(DefaultConfig(0.01))
	_, found, err := d.FindTransmission(s, 0.5, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("phantom transmission detected on a quiet channel")
	}
}

func TestFindTransmissionValidation(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	if _, _, err := d.FindTransmission(&csi.Series{}, 0, 1); err == nil {
		t.Error("empty series should error")
	}
	payload := randomPayload(10, 54)
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1, 0.01)
	s := synthSeries(defaultSynth(), mod, 55)
	if _, _, err := d.FindTransmission(s, 2, 2); err == nil {
		t.Error("empty range should error")
	}
	// A range with too few measurements detects nothing without error.
	_, found, err := d.FindTransmission(s, 100, 101)
	if err != nil || found {
		t.Errorf("sparse range = (%v, %v), want (no detect, nil)", found, err)
	}
}
