// Package uplink implements the Wi-Fi reader's decoding of tag
// transmissions from channel measurements — the paper's core contribution
// (§3). The pipeline is:
//
//  1. Signal conditioning: subtract a moving average (400 ms window) to
//     remove environmental drift, then normalize so the two switch states
//     map to ±1 (§3.2 step 1).
//  2. Frequency/spatial diversity: bin measurements into tag bits using
//     per-packet timestamps, correlate each (antenna, sub-channel) pair
//     with the known Barker preamble, and keep the best G sub-channels
//     (§3.2 step 2a).
//  3. Maximum-ratio combining: weight each good sub-channel by 1/σ², with
//     σ² estimated from its preamble residual (§3.2 step 2b).
//  4. Decision: hysteresis thresholds at µ ± σ/2 suppress spurious CSI
//     jumps, and a majority vote across the measurements of each bit
//     produces the decoded bit (§3.2 step 3).
//
// DecodeRSSI applies the same conditioning/hysteresis/vote machinery to
// the best single RSSI channel (§3.3). DecodeLongRange implements the
// orthogonal-code correlation decoder that extends range at the cost of
// rate (§3.4).
package uplink

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/obs"
)

// Config tunes the decoder. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// BitDuration of tag bits in seconds.
	BitDuration float64
	// ConditionWindow is the moving-average window in seconds (§3.2 uses
	// 400 ms).
	ConditionWindow float64
	// GoodSubchannels is the number of sub-channels kept after preamble
	// correlation ranking (§3.2 picks the top ten).
	GoodSubchannels int
	// MinCorrelation is the preamble correlation below which a
	// transmission is not considered detected.
	MinCorrelation float64
}

// DefaultConfig returns the paper's decoder parameters.
func DefaultConfig(bitDuration float64) Config {
	return Config{
		BitDuration:     bitDuration,
		ConditionWindow: 0.4,
		GoodSubchannels: 10,
		MinCorrelation:  0.5,
	}
}

// ChannelID names one measurement channel: an (antenna, sub-channel) CSI
// pair, or an antenna's RSSI when Subchannel is -1.
type ChannelID struct {
	Antenna    int
	Subchannel int
}

// String implements fmt.Stringer.
func (c ChannelID) String() string {
	if c.Subchannel < 0 {
		return fmt.Sprintf("rssi[ant %d]", c.Antenna)
	}
	return fmt.Sprintf("csi[ant %d, sub %d]", c.Antenna, c.Subchannel)
}

// Result is a decoded uplink transmission.
type Result struct {
	// Payload holds the decoded payload bits.
	Payload []bool
	// Good lists the channels selected for combining, best first.
	Good []ChannelID
	// PreambleCorrelation is the best channel's preamble correlation.
	PreambleCorrelation float64
	// MeasurementsPerBit is the mean number of channel measurements each
	// bit was decoded from.
	MeasurementsPerBit float64
}

// preambleLevels is the ±1 template of the tag preamble.
var preambleLevels = dsp.Barker13

// nFrameBits returns the total on-air bits for a payload length:
// 13 preamble + payload + 13 postamble.
func nFrameBits(payloadLen int) int { return 13 + payloadLen + 13 }

// binByTimestamp groups measurement indices into tag-bit bins using the
// per-packet timestamps (§3.2: "we use the timestamp that is in every
// Wi-Fi packet header to accurately group Wi-Fi packets belonging to the
// same bit transmission").
func binByTimestamp(ts []float64, start, bitDur float64, nbits int) [][]int {
	bins := make([][]int, nbits)
	// Two passes: count, size each bin exactly, then fill. One allocation
	// per occupied bin instead of O(log n) append regrowths, and bins with
	// no packets stay nil exactly as before.
	counts := make([]int, nbits)
	for _, t := range ts {
		j := int(math.Floor((t - start) / bitDur))
		if j >= 0 && j < nbits {
			counts[j]++
		}
	}
	for j, c := range counts {
		if c > 0 {
			bins[j] = make([]int, 0, c)
		}
	}
	for i, t := range ts {
		j := int(math.Floor((t - start) / bitDur))
		if j < 0 || j >= nbits {
			continue
		}
		bins[j] = append(bins[j], i)
	}
	return bins
}

// windowSamples converts the conditioning window from seconds to a sample
// count using the series' average measurement spacing.
func windowSamples(ts []float64, window float64) int {
	if len(ts) < 2 {
		return 1
	}
	span := ts[len(ts)-1] - ts[0]
	if span <= 0 {
		return 1
	}
	spacing := span / float64(len(ts)-1)
	n := int(window / spacing)
	if n < 2 {
		n = 2
	}
	return n
}

// binMeans averages values per bin; empty bins yield 0 with ok=false.
func binMeans(values []float64, bins [][]int) (means []float64, ok []bool) {
	means = make([]float64, len(bins))
	ok = make([]bool, len(bins))
	for j, idx := range bins {
		if len(idx) == 0 {
			continue
		}
		var sum float64
		for _, i := range idx {
			sum += values[i]
		}
		means[j] = sum / float64(len(idx))
		ok[j] = true
	}
	return means, ok
}

// channelStats holds one channel's preamble fit. cond comes from the dsp
// buffer pool; callers release a batch with releaseStats once combining is
// done.
type channelStats struct {
	id       ChannelID
	corr     float64 // signed preamble correlation
	sign     float64 // polarity (+1/-1)
	variance float64 // per-measurement residual variance during preamble
	cond     []float64
}

// releaseStats returns the pooled conditioned series held by stats.
func releaseStats(stats []channelStats) {
	for i := range stats {
		dsp.PutSlice(stats[i].cond)
		stats[i].cond = nil
	}
}

// windowFor returns the conditioning window in seconds. The configured
// 400 ms window must span many bit periods — a window comparable to a run
// of identical bits subtracts the tag's own modulation, which matters for
// slow links such as beacon-only decoding (Fig. 16) — so it is floored at
// 24 bits (the paper's 400 ms is 40 bits at its usual 100 bps). Because
// decoding slices the measurement series to the frame (see frameRange),
// the window may exceed the frame without the idle-level bias that
// out-of-frame samples would introduce.
func (c Config) windowFor(frameBits int) float64 {
	w := c.ConditionWindow
	if min := 24 * c.BitDuration; w < min {
		w = min
	}
	return w
}

// frameRange returns the index range [lo, hi) of timestamps within the
// transmission window, assuming ts is non-decreasing. Conditioning only
// in-frame measurements keeps the tag's idle level (which equals the
// zero-bit level) out of the baseline estimate.
func frameRange(ts []float64, start, end float64) (lo, hi int) {
	lo = sort.SearchFloat64s(ts, start)
	hi = lo
	for hi < len(ts) && ts[hi] < end {
		hi++
	}
	return lo, hi
}

// analyzeChannel conditions one raw series and scores it against the
// preamble.
func analyzeChannel(id ChannelID, raw []float64, ts []float64, bins [][]int, cfg Config) channelStats {
	cond := dsp.GetSlice(len(raw))
	dsp.ConditionTwoPassInto(cond, raw, windowSamples(ts, cfg.windowFor(len(bins))))
	means, ok := binMeans(cond, bins)
	// Preamble correlation over the first 13 bit bins.
	var dot, mm, pp float64
	for j := 0; j < len(preambleLevels) && j < len(means); j++ {
		if !ok[j] {
			continue
		}
		dot += means[j] * preambleLevels[j]
		mm += means[j] * means[j]
		pp += preambleLevels[j] * preambleLevels[j]
	}
	//wblint:ignore PH003 ownership transfers to the caller inside channelStats; released in a batch by releaseStats (or the DecodeSingleChannel defer) after combining
	st := channelStats{id: id, cond: cond, sign: 1}
	if mm > 0 && pp > 0 {
		st.corr = dot / math.Sqrt(mm*pp)
	}
	if st.corr < 0 {
		st.sign = -1
	}
	// Per-measurement residual variance over the preamble bins, with the
	// template sign applied.
	var res, n float64
	for j := 0; j < len(preambleLevels) && j < len(bins); j++ {
		for _, i := range bins[j] {
			d := st.sign*cond[i] - preambleLevels[j]
			res += d * d
			n++
		}
	}
	if n > 1 {
		st.variance = res / (n - 1)
	} else {
		st.variance = math.Inf(1)
	}
	if st.variance < 1e-9 {
		st.variance = 1e-9
	}
	return st
}

// ChannelImpairment lets a fault layer perturb an extracted channel series
// in place before conditioning (see internal/faults). ts and raw are the
// in-frame timestamps and samples of the channel named by id; raw may be
// mutated, ts is shared across channels and must be treated as read-only.
// Implementations must be deterministic and must draw only from their own
// randomness stream.
type ChannelImpairment interface {
	ImpairChannel(id ChannelID, ts, raw []float64)
}

// Decoder decodes tag transmissions from measurement series.
type Decoder struct {
	cfg Config
	met decoderMetrics

	// Impair, when non-nil, corrupts each extracted channel before it is
	// conditioned and scored (core wires the fault injector here).
	Impair ChannelImpairment
}

// decoderMetrics holds the decoder's obs handles; the zero value means
// "not instrumented" (nil handles no-op).
type decoderMetrics struct {
	decodes          *obs.Counter
	channelsAnalyzed *obs.Counter
	channelsSelected *obs.Counter
	channelsRejected *obs.Counter
	bitsDecoded      *obs.Counter
	bitsFlipped      *obs.Counter // hysteresis decision transitions
	emptyBins        *obs.Counter
	corr             *obs.Histogram
	measPerBit       *obs.Histogram

	// Streaming-core accounting (see stream.go). The batch entry points
	// are wrappers over the stream, so these tick for every decode.
	streamPushes      *obs.Counter
	streamBitsEmitted *obs.Counter
	streamFlushBits   *obs.Counter // bits only finalized by Flush (truncated traces)
	streamHighwater   *obs.Gauge   // frame-arena occupancy (max = high-water)
}

// Instrument registers the decoder's per-stage pipeline accounting on r
// (uplink.* in the README's metric catalog): channels analyzed vs kept by
// the sub-channel selection, bits decoded, hysteresis flips, empty bit
// bins, and the distributions of preamble correlation and measurement
// density. A nil registry detaches the metrics.
func (d *Decoder) Instrument(r *obs.Registry) {
	d.met = decoderMetrics{
		decodes:          r.Counter("uplink.decodes"),
		channelsAnalyzed: r.Counter("uplink.channels_analyzed"),
		channelsSelected: r.Counter("uplink.channels_selected"),
		channelsRejected: r.Counter("uplink.channels_rejected"),
		bitsDecoded:      r.Counter("uplink.bits_decoded"),
		bitsFlipped:      r.Counter("uplink.hysteresis_flips"),
		emptyBins:        r.Counter("uplink.empty_bins"),
		corr:             r.Histogram("uplink.preamble_correlation", obs.UnitBuckets),
		measPerBit:       r.Histogram("uplink.measurements_per_bit", obs.LinearBuckets(0, 5, 16)),

		streamPushes:      r.Counter("uplink.stream.pushes"),
		streamBitsEmitted: r.Counter("uplink.stream.bits_emitted"),
		streamFlushBits:   r.Counter("uplink.stream.flush_bits"),
		streamHighwater:   r.Gauge("uplink.stream.buffer_highwater"),
	}
}

// NewDecoder validates the config and returns a decoder.
func NewDecoder(cfg Config) (*Decoder, error) {
	if cfg.BitDuration <= 0 {
		return nil, fmt.Errorf("uplink: bit duration must be positive, got %v", cfg.BitDuration)
	}
	if cfg.ConditionWindow <= 0 {
		return nil, fmt.Errorf("uplink: condition window must be positive, got %v", cfg.ConditionWindow)
	}
	if cfg.GoodSubchannels <= 0 {
		return nil, fmt.Errorf("uplink: need at least one good sub-channel")
	}
	return &Decoder{cfg: cfg}, nil
}

// Config returns the decoder's configuration.
func (d *Decoder) Config() Config { return d.cfg }

// DecodeCSI decodes a payload of payloadLen bits from the CSI series of a
// transmission starting at start. The series must cover the transmission
// and its timestamps must be non-decreasing. It is a push-all-then-flush
// wrapper over StreamDecoder (see stream.go): the streaming core is the
// only decode implementation, and its output is byte-identical however the
// same series is chunked into pushes.
func (d *Decoder) DecodeCSI(s *csi.Series, start float64, payloadLen int) (*Result, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("uplink: empty measurement series")
	}
	if err := s.CheckShape(); err != nil {
		return nil, err
	}
	return d.pushAll(s, start, payloadLen, StreamCSI, false, 0, 0)
}

// DecodeRSSI decodes using only RSSI: the antenna with the best preamble
// correlation is selected (§3.3) and decoded alone. Like DecodeCSI it is a
// thin wrapper over the streaming core.
func (d *Decoder) DecodeRSSI(s *csi.Series, start float64, payloadLen int) (*Result, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("uplink: empty measurement series")
	}
	if err := s.CheckShape(); err != nil {
		return nil, err
	}
	return d.pushAll(s, start, payloadLen, StreamRSSI, false, 0, 0)
}

// pushAll drives the streaming core over a whole series: push every
// measurement, then flush. Push and the batch wrappers share one
// timestamp contract — non-decreasing, equal timestamps legal — matching
// what csi.Series.Append documents for the capture side.
func (d *Decoder) pushAll(s *csi.Series, start float64, payloadLen int, mode StreamMode, single bool, antenna, subchannel int) (*Result, error) {
	sd, err := d.newStream(start, payloadLen, mode, single, antenna, subchannel)
	if err != nil {
		return nil, err
	}
	for _, m := range s.Measurements {
		if _, err := sd.Push(m); err != nil {
			return nil, err
		}
	}
	return sd.Flush()
}

// combineAndDecide ranks channels by |preamble correlation|, keeps the top
// G, and decides bits.
func (d *Decoder) combineAndDecide(stats []channelStats, bins [][]int, payloadLen int) (*Result, error) {
	//wblint:ignore HP002 the comparator runs once per frame close, not per push; sort.Slice's unstable tie order is pinned by the golden traces
	sort.Slice(stats, func(i, j int) bool { //wblint:ignore HP001 boxing the slice header is once per frame close, not per push; see the HP002 reason above
		return math.Abs(stats[i].corr) > math.Abs(stats[j].corr)
	})
	g := d.cfg.GoodSubchannels
	if g > len(stats) {
		g = len(stats)
	}
	d.met.channelsRejected.Add(int64(len(stats) - g))
	return d.combineSelected(stats[:g], bins, payloadLen)
}

// combineSelected performs MRC over the selected channels and decodes the
// payload bits with hysteresis + majority voting.
func (d *Decoder) combineSelected(sel []channelStats, bins [][]int, payloadLen int) (*Result, error) {
	if len(sel) == 0 {
		return nil, fmt.Errorf("uplink: no channels to combine")
	}
	d.met.decodes.Inc()
	d.met.channelsSelected.Add(int64(len(sel)))
	n := len(sel[0].cond)
	// Per-measurement MRC: y_t = Σ sign_i · c_i(t) / σ_i².
	combined := dsp.GetSlice(n)
	defer dsp.PutSlice(combined)
	for _, st := range sel {
		w := st.sign / st.variance
		for t, v := range st.cond {
			combined[t] += w * v
		}
	}
	// Hysteresis thresholds from the combined series statistics
	// (µ ± σ/2, §3.2). The scale estimator is the mean absolute
	// deviation: for the bimodal ±A series it gives ~A (a dead zone of
	// ±A/2, as intended), it stays centered between the lobes even for
	// unbalanced payloads (unlike the median), and heavy-tailed spurious
	// CSI jumps inflate it only linearly (unlike the standard
	// deviation).
	mu := dsp.Mean(combined)
	sd := dsp.MeanAbsDev(combined)
	hyst := dsp.NewHysteresis(mu, sd)
	decisions := dsp.GetSlice(n)
	defer dsp.PutSlice(decisions)
	var flips int64
	prev := 0
	for t, v := range combined {
		cur := -1
		if hyst.Update(v) {
			cur = 1
		}
		decisions[t] = float64(cur)
		if t > 0 && cur != prev {
			flips++
		}
		prev = cur
	}
	d.met.bitsFlipped.Add(flips)
	// Majority vote per payload bit. Decisions are ±1, so counting the
	// positive ones in place is exactly dsp.MajorityVote without the
	// per-bit vote slice.
	payload := make([]bool, payloadLen)
	var measured float64
	var empty int64
	for b := 0; b < payloadLen; b++ {
		bin := bins[13+b]
		if len(bin) == 0 {
			empty++
		}
		pos := 0
		for _, idx := range bin {
			if decisions[idx] > 0 {
				pos++
			}
		}
		payload[b] = pos*2 > len(bin)
		measured += float64(len(bin))
	}
	res := &Result{
		Payload:             payload,
		PreambleCorrelation: math.Abs(sel[0].corr),
		MeasurementsPerBit:  measured / float64(payloadLen),
		Good:                make([]ChannelID, 0, len(sel)),
	}
	d.met.bitsDecoded.Add(int64(payloadLen))
	d.met.emptyBins.Add(empty)
	d.met.corr.Observe(res.PreambleCorrelation)
	d.met.measPerBit.Observe(res.MeasurementsPerBit)
	for _, st := range sel {
		res.Good = append(res.Good, st.id)
	}
	return res, nil
}

// Detected reports whether the result's preamble correlation clears the
// configured detection threshold.
func (d *Decoder) Detected(r *Result) bool {
	return r != nil && r.PreambleCorrelation >= d.cfg.MinCorrelation
}

// NormalizedChannel exposes the conditioned (detrended, normalized) series
// of one CSI channel — the quantity whose PDF Fig. 4 plots.
func (d *Decoder) NormalizedChannel(s *csi.Series, antenna, subchannel int) ([]float64, error) {
	if err := s.CheckShape(); err != nil {
		return nil, err
	}
	raw, err := s.CSIChannel(antenna, subchannel)
	if err != nil {
		return nil, err
	}
	return dsp.Condition(raw, windowSamples(s.Timestamps(), d.cfg.ConditionWindow)), nil
}

// DecodeSingleChannel decodes the payload using exactly one CSI channel —
// the "Random-Subchannel" baseline of Fig. 11 and the per-sub-channel BER
// probe of Fig. 5. It too wraps the streaming core.
func (d *Decoder) DecodeSingleChannel(s *csi.Series, start float64, payloadLen, antenna, subchannel int) (*Result, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	if err := s.CheckShape(); err != nil {
		return nil, err
	}
	if err := s.ValidateCSIChannel(antenna, subchannel); err != nil {
		return nil, err
	}
	return d.pushAll(s, start, payloadLen, StreamCSI, true, antenna, subchannel)
}
