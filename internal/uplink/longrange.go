package uplink

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/dsp"
)

// Long-range decoding (§3.4): at distances where the two channel levels are
// no longer distinct (Fig. 6), the tag represents each payload bit with one
// of two orthogonal chip codes of length L, and the reader correlates the
// conditioned channel measurements with both codes, outputting the bit with
// the larger correlation. Correlation over L chips buys an SNR gain
// proportional to L, extending range (Fig. 20); the tag's power draw is
// unchanged because it still just toggles its switch.

// LongRangeResult is a decoded long-range transmission.
type LongRangeResult struct {
	// Payload holds the decoded bits.
	Payload []bool
	// Margins holds each bit's normalized decision margin
	// (|corr1 − corr0| relative to the total correlation energy).
	Margins []float64
	// Good lists the channels used, best first.
	Good []ChannelID
}

// DecodeLongRange decodes payloadLen bits that were transmitted as chip
// codes code0/code1 (equal length L) starting at time start. Chips have the
// decoder's configured BitDuration, and the frame layout is
// preamble + payloadLen·L chips + postamble.
//
// The decision metric compares |corr(code1)| against |corr(code0)|, which
// is polarity-free: code orthogonality guarantees the wrong code correlates
// only with noise regardless of the channel's sign.
func (d *Decoder) DecodeLongRange(s *csi.Series, start float64, payloadLen int, code0, code1 []float64) (*LongRangeResult, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	if len(code0) == 0 || len(code0) != len(code1) {
		return nil, fmt.Errorf("uplink: code lengths must match and be positive (%d, %d)",
			len(code0), len(code1))
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("uplink: empty measurement series")
	}
	if err := s.CheckShape(); err != nil {
		return nil, err
	}
	L := len(code0)
	nChips := 13 + payloadLen*L + 13
	ts := s.Timestamps()
	lo, hi := frameRange(ts, start, start+float64(nChips)*d.cfg.BitDuration)
	if lo == hi {
		return nil, fmt.Errorf("uplink: no measurements inside the transmission window")
	}
	ts = ts[lo:hi]
	bins := binByTimestamp(ts, start, d.cfg.BitDuration, nChips)

	// Condition every channel and compute per-chip means.
	type chipChannel struct {
		id    ChannelID
		means []float64
		ok    []bool
		score float64
	}
	// Pooled extraction and conditioning buffers are reused across the
	// channel scan; only the per-chip means survive the loop.
	raw := dsp.GetSlice(s.Len())
	defer func() { dsp.PutSlice(raw) }()
	cond := dsp.GetSlice(hi - lo)
	defer dsp.PutSlice(cond)
	channels := make([]chipChannel, 0, s.Antennas()*s.Subchannels())
	for a := 0; a < s.Antennas(); a++ {
		for k := 0; k < s.Subchannels(); k++ {
			var err error
			raw, err = s.CSIChannelInto(raw, a, k)
			if err != nil {
				return nil, err
			}
			dsp.ConditionTwoPassInto(cond, raw[lo:hi], windowSamples(ts, d.cfg.windowFor(nChips)))
			means, ok := binMeans(cond, bins)
			channels = append(channels, chipChannel{id: ChannelID{a, k}, means: means, ok: ok})
		}
	}

	// Per-channel, per-bit code correlations.
	corr := func(ch *chipChannel, bit int, code []float64) float64 {
		base := 13 + bit*L
		var sum float64
		for j := 0; j < L; j++ {
			if !ch.ok[base+j] {
				continue
			}
			sum += ch.means[base+j] * code[j]
		}
		return sum
	}
	// Score channels by total discriminability across bits, then keep
	// the top G ("picks the Wi-Fi sub-channels that provide the maximum
	// correlation peaks").
	for i := range channels {
		ch := &channels[i]
		for b := 0; b < payloadLen; b++ {
			c1 := math.Abs(corr(ch, b, code1))
			c0 := math.Abs(corr(ch, b, code0))
			ch.score += math.Abs(c1 - c0)
		}
	}
	if len(channels) == 0 {
		return nil, fmt.Errorf("uplink: series has no CSI channels")
	}
	sort.Slice(channels, func(i, j int) bool { return channels[i].score > channels[j].score })
	g := d.cfg.GoodSubchannels
	if g > len(channels) {
		g = len(channels)
	}
	sel := channels[:g]

	res := &LongRangeResult{
		Payload: make([]bool, payloadLen),
		Margins: make([]float64, payloadLen),
	}
	for _, ch := range sel {
		res.Good = append(res.Good, ch.id)
	}
	for b := 0; b < payloadLen; b++ {
		var metric, energy float64
		for i := range sel {
			c1 := math.Abs(corr(&sel[i], b, code1))
			c0 := math.Abs(corr(&sel[i], b, code0))
			metric += c1 - c0
			energy += c1 + c0
		}
		res.Payload[b] = metric > 0
		if energy > 0 {
			res.Margins[b] = math.Abs(metric) / energy
		}
	}
	return res, nil
}
