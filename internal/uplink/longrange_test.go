package uplink

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/tag"
)

// longRangeTrial runs one long-range transaction at a synthetic depth and
// returns the bit error count.
func longRangeTrial(t *testing.T, depth float64, L, payloadLen int, seed int64) int {
	t.Helper()
	payload := randomPayload(payloadLen, seed)
	code0, code1, err := dsp.WalshPair(L)
	if err != nil {
		t.Fatal(err)
	}
	chips := tag.ExpandWithCodes(payload, code0, code1)
	frame := make([]bool, 0, 26+len(chips))
	frame = append(frame, tag.Preamble...)
	frame = append(frame, chips...)
	frame = append(frame, tag.Postamble...)
	const chipDur = 0.005 // 5 ms per chip: 5 packets per chip at 1000 pkt/s
	mod, err := tag.NewModulator(frame, 1.0, chipDur)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.depth = depth
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, seed+100)
	d, _ := NewDecoder(DefaultConfig(chipDur))
	res, err := d.DecodeLongRange(s, mod.Start(), payloadLen, code0, code1)
	if err != nil {
		t.Fatal(err)
	}
	return countBitErrors(res.Payload, payload)
}

func TestLongRangeDecodesWeakSignal(t *testing.T) {
	// A depth where per-chip decisions would be hopeless should decode
	// cleanly with L=20 correlation.
	if errs := longRangeTrial(t, 0.02, 20, 16, 1); errs > 1 {
		t.Errorf("long-range L=20 decode errors = %d/16", errs)
	}
}

func TestLongRangeLongerCodesReachDeeper(t *testing.T) {
	// At a very weak depth, L=4 should fail more often than L=40.
	var shortErrs, longErrs int
	for seed := int64(0); seed < 4; seed++ {
		shortErrs += longRangeTrial(t, 0.008, 4, 12, 10+seed)
		longErrs += longRangeTrial(t, 0.008, 40, 12, 10+seed)
	}
	if longErrs >= shortErrs {
		t.Errorf("L=40 errors (%d) should be below L=4 errors (%d)", longErrs, shortErrs)
	}
}

func TestLongRangeValidation(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	code0, code1, _ := dsp.WalshPair(4)
	payload := randomPayload(8, 1)
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 0, 0.01)
	s := synthSeries(defaultSynth(), mod, 2)
	if _, err := d.DecodeLongRange(s, 0, 0, code0, code1); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := d.DecodeLongRange(s, 0, 8, code0, code1[:2]); err == nil {
		t.Error("mismatched code lengths should error")
	}
	if _, err := d.DecodeLongRange(s, 0, 8, nil, nil); err == nil {
		t.Error("empty codes should error")
	}
	if _, err := d.DecodeLongRange(&csi.Series{}, 0, 8, code0, code1); err == nil {
		t.Error("empty series should error")
	}
}

func TestLongRangeMarginsPopulated(t *testing.T) {
	payload := randomPayload(8, 3)
	code0, code1, _ := dsp.WalshPair(20)
	chips := tag.ExpandWithCodes(payload, code0, code1)
	frame := append(append(append([]bool{}, tag.Preamble...), chips...), tag.Postamble...)
	mod, _ := tag.NewModulator(frame, 1.0, 0.005)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 4)
	d, _ := NewDecoder(DefaultConfig(0.005))
	res, err := d.DecodeLongRange(s, mod.Start(), len(payload), code0, code1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Margins) != len(payload) {
		t.Fatalf("margins length = %d, want %d", len(res.Margins), len(payload))
	}
	for i, m := range res.Margins {
		if m < 0 || m > 1 {
			t.Errorf("margin[%d] = %v outside [0,1]", i, m)
		}
	}
	if len(res.Good) == 0 {
		t.Error("good channel list empty")
	}
}
