package uplink

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
)

// ACK detection (§4.1): "the Wi-Fi Backscatter tag can reduce the overhead
// of the ACK packet by dropping the preamble and the address fields, and
// transmitting a single bit message". The minimal distinguishable burst is
// the bare 13-bit Barker preamble itself: the reader already correlates
// with it on every channel, so detecting an ACK costs the tag 13 bit
// periods and the reader one correlation pass — no payload, no CRC.

// AckBits returns the bit sequence a tag transmits as an ACK burst.
func AckBits() []bool {
	bits := make([]bool, len(preambleLevels))
	for i, v := range preambleLevels {
		bits[i] = v > 0
	}
	return bits
}

// DetectAck reports whether an ACK burst starting at start is present in
// the series, along with the best correlation found. Detection uses the
// same per-channel preamble correlation as normal decoding, thresholded at
// the decoder's MinCorrelation.
func (d *Decoder) DetectAck(s *csi.Series, start float64) (bool, float64, error) {
	if s.Len() == 0 {
		return false, 0, fmt.Errorf("uplink: empty measurement series")
	}
	nbits := len(preambleLevels)
	ts := s.Timestamps()
	lo, hi := frameRange(ts, start, start+float64(nbits)*d.cfg.BitDuration)
	if hi-lo < nbits {
		// Too few measurements to cover the burst.
		return false, 0, nil
	}
	ts = ts[lo:hi]
	bins := binByTimestamp(ts, start, d.cfg.BitDuration, nbits)
	best := 0.0
	var corrs []float64
	for a := 0; a < s.Antennas(); a++ {
		for k := 0; k < s.Subchannels(); k++ {
			raw, err := s.CSIChannel(a, k)
			if err != nil {
				return false, 0, err
			}
			st := analyzeChannel(ChannelID{a, k}, raw[lo:hi], ts, bins, d.cfg)
			corrs = append(corrs, math.Abs(st.corr))
		}
	}
	// A real ACK lifts many channels at once; require the tenth-best
	// correlation to clear a raised threshold so noise on a few of the
	// 90 channels cannot fake a detection (a noise-only correlation over
	// 13 bins has σ ≈ 0.28, so individual channels cross 0.5 routinely
	// and roughly one in a hundred crosses 0.72).
	thresh := d.cfg.MinCorrelation
	if thresh < 0.72 {
		thresh = 0.72
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(corrs)))
	idx := 9
	if idx >= len(corrs) {
		idx = len(corrs) - 1
	}
	best = corrs[0]
	return corrs[idx] >= thresh, best, nil
}
