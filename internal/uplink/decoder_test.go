package uplink

import (
	"math"
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/rng"
	"repro/internal/tag"
)

// synthSeries builds a synthetic measurement series for a tag transmission:
// each (antenna, sub-channel) has a base level and a signed coupling to the
// tag's switch state; AGC noise is common-mode per packet, sub-channel
// noise independent. pktRate is in packets/second.
type synthConfig struct {
	antennas, subchannels int
	pktRate               float64
	duration              float64
	depth                 float64 // relative modulation depth scale
	goodFrac              float64 // fraction of channels with strong coupling
	agcNoise              float64
	subNoise              float64
	rssiNoise             float64
	rssiQuant             float64
	jitter                float64 // packet timing jitter fraction
}

func defaultSynth() synthConfig {
	return synthConfig{
		antennas: 3, subchannels: 30,
		pktRate: 1000, duration: 4,
		depth: 0.2, goodFrac: 0.4,
		agcNoise: 0.02, subNoise: 0.01,
		rssiNoise: 0.3, rssiQuant: 1,
		jitter: 0.3,
	}
}

func synthSeries(cfg synthConfig, mod *tag.Modulator, seed int64) *csi.Series {
	rnd := rng.New(seed)
	base := make([][]float64, cfg.antennas)
	coupling := make([][]float64, cfg.antennas)
	for a := range base {
		base[a] = make([]float64, cfg.subchannels)
		coupling[a] = make([]float64, cfg.subchannels)
		for k := range base[a] {
			base[a][k] = 5 + 10*rnd.Float64()
			c := 0.0
			if rnd.Float64() < cfg.goodFrac {
				c = cfg.depth * (0.5 + rnd.Float64())
				if rnd.Bool() {
					c = -c
				}
			} else {
				c = cfg.depth * 0.05 * (rnd.Float64() - 0.5)
			}
			coupling[a][k] = c
		}
	}
	s := &csi.Series{}
	interval := 1 / cfg.pktRate
	for t := 0.0; t < cfg.duration; t += interval * (1 + cfg.jitter*(rnd.Float64()-0.5)) {
		state := 0.0
		if mod.StateAt(t) {
			state = 1
		}
		agc := 1 + rnd.Gaussian(0, cfg.agcNoise)
		m := csi.Measurement{Timestamp: t}
		m.CSI = make([][]float64, cfg.antennas)
		m.RSSI = make([]float64, cfg.antennas)
		for a := 0; a < cfg.antennas; a++ {
			m.CSI[a] = make([]float64, cfg.subchannels)
			var power float64
			for k := 0; k < cfg.subchannels; k++ {
				amp := base[a][k] * (1 + coupling[a][k]*state) * agc *
					(1 + rnd.Gaussian(0, cfg.subNoise))
				m.CSI[a][k] = amp
				power += amp * amp
			}
			r := 10*math.Log10(power) + rnd.Gaussian(0, cfg.rssiNoise)
			m.RSSI[a] = math.Round(r/cfg.rssiQuant) * cfg.rssiQuant
		}
		s.Append(m)
	}
	return s
}

// randomPayload builds a deterministic pseudo-random payload.
func randomPayload(n int, seed int64) []bool {
	rnd := rng.New(seed)
	out := make([]bool, n)
	for i := range out {
		out[i] = rnd.Bool()
	}
	return out
}

func countBitErrors(got, want []bool) int {
	errs := 0
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			errs++
		}
	}
	return errs
}

func TestNewDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(Config{}); err == nil {
		t.Error("zero config should error")
	}
	if _, err := NewDecoder(Config{BitDuration: 0.01}); err == nil {
		t.Error("missing window should error")
	}
	if _, err := NewDecoder(Config{BitDuration: 0.01, ConditionWindow: 0.4}); err == nil {
		t.Error("zero good subchannels should error")
	}
	if _, err := NewDecoder(DefaultConfig(0.01)); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestDecodeCSICleanLink(t *testing.T) {
	payload := randomPayload(90, 1)
	const bitDur = 0.01 // 100 bps, 10 pkts/bit at 1000 pkt/s
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 2)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	res, err := d.DecodeCSI(s, mod.Start(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if errs := countBitErrors(res.Payload, payload); errs != 0 {
		t.Errorf("clean link produced %d/%d bit errors", errs, len(payload))
	}
	if !d.Detected(res) {
		t.Errorf("clean link preamble correlation %v below detection threshold", res.PreambleCorrelation)
	}
	if res.MeasurementsPerBit < 5 || res.MeasurementsPerBit > 20 {
		t.Errorf("measurements/bit = %v, want ~10", res.MeasurementsPerBit)
	}
	if len(res.Good) != 10 {
		t.Errorf("selected %d channels, want 10", len(res.Good))
	}
}

func TestDecodeCSIWeakLinkDegrades(t *testing.T) {
	payload := randomPayload(90, 3)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	run := func(depth float64) int {
		cfg := defaultSynth()
		cfg.depth = depth
		cfg.duration = mod.End() + 0.5
		s := synthSeries(cfg, mod, 4)
		d, _ := NewDecoder(DefaultConfig(bitDur))
		res, err := d.DecodeCSI(s, mod.Start(), len(payload))
		if err != nil {
			t.Fatal(err)
		}
		return countBitErrors(res.Payload, payload)
	}
	strong := run(0.2)
	weak := run(0.004)
	if strong > 0 {
		t.Errorf("strong link errors = %d, want 0", strong)
	}
	if weak <= strong {
		t.Errorf("weak link (%d errors) should be worse than strong (%d)", weak, strong)
	}
}

func TestDecodeCSISurvivesSpuriousJumps(t *testing.T) {
	// Inject spurious whole-packet jumps and verify hysteresis+vote keep
	// the payload intact.
	payload := randomPayload(90, 5)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 6)
	rnd := rng.New(7)
	for _, m := range s.Measurements {
		if rnd.Float64() < 0.01 {
			f := 1.3
			if rnd.Bool() {
				f = 0.7
			}
			for a := range m.CSI {
				for k := range m.CSI[a] {
					m.CSI[a][k] *= f
				}
			}
		}
	}
	d, _ := NewDecoder(DefaultConfig(bitDur))
	res, err := d.DecodeCSI(s, mod.Start(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if errs := countBitErrors(res.Payload, payload); errs > 1 {
		t.Errorf("spurious jumps caused %d bit errors", errs)
	}
}

func TestDecodeRSSIWorksAtStrongDepth(t *testing.T) {
	payload := randomPayload(90, 8)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	cfg := defaultSynth()
	cfg.depth = 0.3
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 9)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	res, err := d.DecodeRSSI(s, mod.Start(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if errs := countBitErrors(res.Payload, payload); errs > 2 {
		t.Errorf("RSSI decode errors = %d at strong depth", errs)
	}
	if len(res.Good) != 1 || res.Good[0].Subchannel != -1 {
		t.Errorf("RSSI decode should use one RSSI channel, got %v", res.Good)
	}
}

func TestCSIOutperformsRSSI(t *testing.T) {
	// §3.3: "the BER performance is better with CSI information than
	// RSSI". At a marginal depth CSI should make fewer errors.
	payload := randomPayload(90, 10)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	var csiErrs, rssiErrs int
	for seed := int64(0); seed < 5; seed++ {
		cfg := defaultSynth()
		cfg.depth = 0.05
		cfg.duration = mod.End() + 0.5
		s := synthSeries(cfg, mod, 20+seed)
		d, _ := NewDecoder(DefaultConfig(bitDur))
		rc, err := d.DecodeCSI(s, mod.Start(), len(payload))
		if err != nil {
			t.Fatal(err)
		}
		rr, err := d.DecodeRSSI(s, mod.Start(), len(payload))
		if err != nil {
			t.Fatal(err)
		}
		csiErrs += countBitErrors(rc.Payload, payload)
		rssiErrs += countBitErrors(rr.Payload, payload)
	}
	if csiErrs >= rssiErrs {
		t.Errorf("CSI errors (%d) should be below RSSI errors (%d)", csiErrs, rssiErrs)
	}
}

func TestDecodeSingleChannelWorseThanCombined(t *testing.T) {
	// Fig. 11: random single sub-channel vs the diversity-combining
	// algorithm.
	payload := randomPayload(90, 11)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, bitDur)
	cfg := defaultSynth()
	cfg.depth = 0.05
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 12)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	full, err := d.DecodeCSI(s, mod.Start(), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	fullErrs := countBitErrors(full.Payload, payload)
	rnd := rng.New(13)
	singleErrs := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		res, err := d.DecodeSingleChannel(s, mod.Start(), len(payload),
			rnd.Intn(3), rnd.Intn(30))
		if err != nil {
			t.Fatal(err)
		}
		singleErrs += countBitErrors(res.Payload, payload)
	}
	if fullErrs > singleErrs/trials {
		t.Errorf("combined decode (%d errors) should beat average random sub-channel (%d/%d)",
			fullErrs, singleErrs, trials)
	}
}

func TestDecodeValidation(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	s := &csi.Series{}
	if _, err := d.DecodeCSI(s, 0, 10); err == nil {
		t.Error("empty series should error")
	}
	if _, err := d.DecodeCSI(s, 0, 0); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := d.DecodeRSSI(s, 0, 10); err == nil {
		t.Error("empty series should error for RSSI")
	}
}

func TestBinByTimestamp(t *testing.T) {
	ts := []float64{0.5, 1.005, 1.015, 1.025, 1.095, 2.5}
	bins := binByTimestamp(ts, 1.0, 0.01, 10)
	if len(bins[0]) != 1 || bins[0][0] != 1 {
		t.Errorf("bin 0 = %v", bins[0])
	}
	if len(bins[1]) != 1 || bins[1][0] != 2 {
		t.Errorf("bin 1 = %v", bins[1])
	}
	if len(bins[2]) != 1 || bins[2][0] != 3 {
		t.Errorf("bin 2 = %v", bins[2])
	}
	if len(bins[9]) != 1 || bins[9][0] != 4 {
		t.Errorf("bin 9 = %v", bins[9])
	}
	total := 0
	for _, b := range bins {
		total += len(b)
	}
	if total != 4 {
		t.Errorf("out-of-window samples leaked into bins: %d", total)
	}
}

func TestWindowSamples(t *testing.T) {
	ts := make([]float64, 1001)
	for i := range ts {
		ts[i] = float64(i) * 0.001 // 1000 pkt/s for 1 s
	}
	if got := windowSamples(ts, 0.4); got < 390 || got > 410 {
		t.Errorf("windowSamples = %d, want ~400", got)
	}
	if got := windowSamples([]float64{1}, 0.4); got != 1 {
		t.Errorf("degenerate series window = %d, want 1", got)
	}
	if got := windowSamples([]float64{1, 1}, 0.4); got != 1 {
		t.Errorf("zero-span series window = %d, want 1", got)
	}
}

func TestChannelIDString(t *testing.T) {
	if got := (ChannelID{1, 5}).String(); got != "csi[ant 1, sub 5]" {
		t.Errorf("String = %q", got)
	}
	if got := (ChannelID{2, -1}).String(); got != "rssi[ant 2]" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalizedChannelBimodal(t *testing.T) {
	// A strongly-coupled channel's conditioned values should be bimodal
	// at ±1 — the structure Fig. 4 plots.
	payload := randomPayload(200, 14)
	const bitDur = 0.01
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 0.5, bitDur)
	cfg := defaultSynth()
	cfg.goodFrac = 1 // every channel strongly coupled
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 15)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	cond, err := d.NormalizedChannel(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := dsp.NewHistogram(-3, 3, 30)
	h.AddAll(cond)
	modes := h.Modes(0.08)
	if len(modes) < 2 {
		t.Errorf("conditioned strong channel should be bimodal, found %d modes", len(modes))
	}
}

func TestDetectedThreshold(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	if d.Detected(nil) {
		t.Error("nil result should not be detected")
	}
	if d.Detected(&Result{PreambleCorrelation: 0.1}) {
		t.Error("weak correlation should not be detected")
	}
	if !d.Detected(&Result{PreambleCorrelation: 0.9}) {
		t.Error("strong correlation should be detected")
	}
}

func TestDecodeOutsideMeasurementWindow(t *testing.T) {
	// A start time past every measurement must error, not panic.
	payload := randomPayload(20, 40)
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	cfg := defaultSynth()
	cfg.duration = 2
	s := synthSeries(cfg, mod, 41)
	d, _ := NewDecoder(DefaultConfig(0.01))
	if _, err := d.DecodeCSI(s, 100, 20); err == nil {
		t.Error("decode beyond the series should error")
	}
	if _, err := d.DecodeRSSI(s, 100, 20); err == nil {
		t.Error("RSSI decode beyond the series should error")
	}
	if _, err := d.DecodeSingleChannel(s, 100, 20, 0, 0); err == nil {
		t.Error("single-channel decode beyond the series should error")
	}
}

func TestFrameRange(t *testing.T) {
	ts := []float64{0, 1, 2, 3, 4, 5}
	lo, hi := frameRange(ts, 1.5, 4.5)
	if lo != 2 || hi != 5 {
		t.Errorf("frameRange = (%d, %d), want (2, 5)", lo, hi)
	}
	lo, hi = frameRange(ts, 10, 20)
	if lo != hi {
		t.Errorf("out-of-range frame should be empty, got (%d, %d)", lo, hi)
	}
	lo, hi = frameRange(ts, -5, 0.5)
	if lo != 0 || hi != 1 {
		t.Errorf("leading frame = (%d, %d), want (0, 1)", lo, hi)
	}
}

func TestDecodeCSIWithPartialCoverage(t *testing.T) {
	// Measurements covering only the first half of the frame: the
	// decoder should still return a result (trailing bits default) and
	// not panic on empty bins.
	payload := randomPayload(40, 42)
	mod, _ := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	cfg := defaultSynth()
	cfg.duration = mod.Start() + (mod.End()-mod.Start())/2
	s := synthSeries(cfg, mod, 43)
	d, _ := NewDecoder(DefaultConfig(0.01))
	res, err := d.DecodeCSI(s, mod.Start(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) != 40 {
		t.Fatalf("payload length = %d", len(res.Payload))
	}
	// The covered half should be mostly right.
	errs := 0
	for i := 0; i < 15; i++ {
		if res.Payload[i] != payload[i] {
			errs++
		}
	}
	if errs > 3 {
		t.Errorf("covered half decoded with %d/15 errors", errs)
	}
}
