//go:build !race

// The race detector instruments allocations, so AllocsPerRun over-counts
// under -race; this assertion only runs in the plain test pass (the
// Makefile's `test` and `bench-stream` targets, not `race`).

package uplink

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/tag"
)

// TestStreamPushSteadyStateAllocs pins the ISSUE's memory contract: once
// the frame arena has grown to size, Push is allocation-free. The arena
// grows geometrically (pooled, doubling), so after warming up with most
// of the frame its capacity covers the rest; the measured pushes are the
// pure store-into-pre-grown-arena path.
func TestStreamPushSteadyStateAllocs(t *testing.T) {
	payload := randomPayload(45, 11)
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 12)
	d, _ := NewDecoder(DefaultConfig(0.01))

	sd, err := d.NewStream(mod.Start(), 45, StreamCSI)
	if err != nil {
		t.Fatal(err)
	}
	var inFrame []csi.Measurement
	for _, m := range s.Measurements {
		if m.Timestamp >= sd.Start() && m.Timestamp < sd.End() {
			inFrame = append(inFrame, m)
		}
	}
	const runs = 100
	// AllocsPerRun calls the closure runs+1 times; keep that many pushes
	// in reserve and warm up with everything before them.
	tail := runs + 1
	if len(inFrame) < 2*tail {
		t.Fatalf("only %d in-frame measurements; synth config too short for the test", len(inFrame))
	}
	warm := inFrame[:len(inFrame)-tail]
	for _, m := range warm {
		if _, err := sd.Push(m); err != nil {
			t.Fatal(err)
		}
	}
	// The arena doubles, so capacity after warm-up is at least the next
	// power of two past len(warm) >= len(inFrame): the tail pushes below
	// cannot trigger another grow.
	i := len(warm)
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := sd.Push(inFrame[i]); err != nil {
			t.Fatalf("measured push %d: %v", i, err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Push allocates %.1f times per call, want 0", allocs)
	}
	if sd.Buffered() != len(inFrame) {
		t.Fatalf("buffered %d, want %d", sd.Buffered(), len(inFrame))
	}
}
