package uplink

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/dsp"
)

// This file provides controlled variants of the decoding pipeline so each
// design choice in §3.2 can be ablated: the combining rule, the decision
// rule, and the bit-binning rule. The main decoder always uses the paper's
// choices; Variant selects an alternative for side-by-side comparison.

// Combining selects how good sub-channels merge.
type Combining int

// Combining rules.
const (
	// CombineMRC weights each channel by 1/σ² (the paper's choice,
	// optimal for Gaussian noise).
	CombineMRC Combining = iota
	// CombineEqualGain sums the conditioned channels with equal weight.
	CombineEqualGain
	// CombineBestSingle uses only the highest-correlation channel.
	CombineBestSingle
)

// String implements fmt.Stringer.
func (c Combining) String() string {
	switch c {
	case CombineEqualGain:
		return "equal-gain"
	case CombineBestSingle:
		return "best-single"
	}
	return "mrc"
}

// Decision selects how measurements become bits.
type Decision int

// Decision rules.
const (
	// DecideHysteresisVote applies the µ±σ/2 hysteresis comparator per
	// measurement and majority-votes per bit (the paper's choice).
	DecideHysteresisVote Decision = iota
	// DecidePlainVote majority-votes the raw signs, no hysteresis.
	DecidePlainVote
	// DecideBitMean thresholds the mean of each bit's measurements at
	// zero (no voting).
	DecideBitMean
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecidePlainVote:
		return "plain-vote"
	case DecideBitMean:
		return "bit-mean"
	}
	return "hysteresis-vote"
}

// Binning selects how measurements map to bit positions.
type Binning int

// Binning rules.
const (
	// BinTimestamp groups measurements by packet timestamp (the paper's
	// choice, robust to bursty traffic).
	BinTimestamp Binning = iota
	// BinEqualCount splits the measurement sequence into equal-count
	// groups, ignoring timing — correct only for perfectly regular
	// traffic.
	BinEqualCount
)

// String implements fmt.Stringer.
func (b Binning) String() string {
	if b == BinEqualCount {
		return "equal-count"
	}
	return "timestamp"
}

// Variant configures an ablated decoder.
type Variant struct {
	Combining Combining
	Decision  Decision
	Binning   Binning
}

// PaperVariant is the pipeline exactly as §3.2 describes it.
var PaperVariant = Variant{}

// String implements fmt.Stringer.
func (v Variant) String() string {
	return fmt.Sprintf("%s/%s/%s", v.Combining, v.Decision, v.Binning)
}

// DecodeVariant decodes a payload with the selected pipeline variant. The
// PaperVariant is equivalent to DecodeCSI.
func (d *Decoder) DecodeVariant(s *csi.Series, start float64, payloadLen int, v Variant) (*Result, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	if s.Len() == 0 {
		return nil, fmt.Errorf("uplink: empty measurement series")
	}
	nbits := nFrameBits(payloadLen)
	ts := s.Timestamps()
	lo, hi := frameRange(ts, start, start+float64(nbits)*d.cfg.BitDuration)
	if lo == hi {
		return nil, fmt.Errorf("uplink: no measurements inside the transmission window")
	}
	ts = ts[lo:hi]
	var bins [][]int
	switch v.Binning {
	case BinEqualCount:
		bins = binEqualCount(ts, start, d.cfg.BitDuration, nbits)
	default:
		bins = binByTimestamp(ts, start, d.cfg.BitDuration, nbits)
	}
	var stats []channelStats
	for a := 0; a < s.Antennas(); a++ {
		for k := 0; k < s.Subchannels(); k++ {
			raw, err := s.CSIChannel(a, k)
			if err != nil {
				return nil, err
			}
			stats = append(stats, analyzeChannel(ChannelID{a, k}, raw[lo:hi], ts, bins, d.cfg))
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		return math.Abs(stats[i].corr) > math.Abs(stats[j].corr)
	})
	g := d.cfg.GoodSubchannels
	if v.Combining == CombineBestSingle {
		g = 1
	}
	if g > len(stats) {
		g = len(stats)
	}
	sel := stats[:g]

	n := len(sel[0].cond)
	combined := make([]float64, n)
	for _, st := range sel {
		w := st.sign / st.variance
		if v.Combining == CombineEqualGain {
			w = st.sign
		}
		for t, val := range st.cond {
			combined[t] += w * val
		}
	}

	payload := make([]bool, payloadLen)
	var measured float64
	switch v.Decision {
	case DecideBitMean:
		for b := 0; b < payloadLen; b++ {
			bin := bins[13+b]
			var sum float64
			for _, idx := range bin {
				sum += combined[idx]
			}
			payload[b] = sum > 0
			measured += float64(len(bin))
		}
	case DecidePlainVote:
		for b := 0; b < payloadLen; b++ {
			bin := bins[13+b]
			votes := make([]float64, len(bin))
			for i, idx := range bin {
				votes[i] = combined[idx]
			}
			payload[b] = dsp.MajorityVote(votes)
			measured += float64(len(bin))
		}
	default:
		mu := dsp.Mean(combined)
		sd := dsp.MeanAbsDev(combined)
		hyst := dsp.NewHysteresis(mu, sd)
		decisions := make([]float64, n)
		for t, val := range combined {
			if hyst.Update(val) {
				decisions[t] = 1
			} else {
				decisions[t] = -1
			}
		}
		for b := 0; b < payloadLen; b++ {
			bin := bins[13+b]
			votes := make([]float64, len(bin))
			for i, idx := range bin {
				votes[i] = decisions[idx]
			}
			payload[b] = dsp.MajorityVote(votes)
			measured += float64(len(bin))
		}
	}
	res := &Result{
		Payload:             payload,
		PreambleCorrelation: math.Abs(sel[0].corr),
		MeasurementsPerBit:  measured / float64(payloadLen),
	}
	for _, st := range sel {
		res.Good = append(res.Good, st.id)
	}
	return res, nil
}

// binEqualCount ignores timestamps: measurements inside the transmission
// window are split into equal-count bins in arrival order.
func binEqualCount(ts []float64, start, bitDur float64, nbits int) [][]int {
	end := start + float64(nbits)*bitDur
	var inWindow []int
	for i, t := range ts {
		if t >= start && t < end {
			inWindow = append(inWindow, i)
		}
	}
	bins := make([][]int, nbits)
	if len(inWindow) == 0 {
		return bins
	}
	per := float64(len(inWindow)) / float64(nbits)
	for j, idx := range inWindow {
		b := int(float64(j) / per)
		if b >= nbits {
			b = nbits - 1
		}
		bins[b] = append(bins[b], idx)
	}
	return bins
}
