package uplink

// Fuzz targets for the uplink decoders. The harness deserializes arbitrary
// byte streams into measurement series — including the hostile shapes a
// real capture pipeline can produce: non-finite amplitudes, backwards
// timestamps, and jagged (shape-malformed) measurements. Whatever the
// input, every decoder entry point must return a (result, error) pair;
// a panic is the only failure.
//
// Run the smoke pass with `make fuzz` (10s per target) or explore longer
// with e.g. `go test -fuzz=FuzzDecodeCSI -fuzztime=5m ./internal/uplink/`.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
)

// fuzzAmplitude maps one byte to a channel amplitude, reserving the top
// byte values for the non-finite corners the fuzzer should reach directly.
func fuzzAmplitude(b byte) float64 {
	switch b {
	case 255:
		return math.NaN()
	case 254:
		return math.Inf(1)
	case 253:
		return math.Inf(-1)
	default:
		return float64(b) * 0.1
	}
}

// fuzzSeries builds a measurement series from an arbitrary byte stream.
// Every input yields some series; certain byte positions steer the stream
// toward malformed structure (negative time steps, truncated CSI rows,
// missing RSSI entries) so the decoders' validation paths are exercised.
func fuzzSeries(data []byte, ants, subs int) *csi.Series {
	s := &csi.Series{}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	n := 4 + len(data)/(ants*subs+2)
	if n > 512 {
		n = 512
	}
	now := 0.0
	for p := 0; p < n; p++ {
		dt := float64(next()) * 1e-4
		if next()%17 == 0 {
			dt = -dt // non-monotonic timestamps
		}
		now += dt
		m := csi.Measurement{Timestamp: now}
		rows := ants
		if next()%23 == 0 {
			rows = int(next()) % (ants + 2) // jagged antenna count
		}
		m.CSI = make([][]float64, rows)
		m.RSSI = make([]float64, rows)
		for a := range m.CSI {
			cols := subs
			if next()%29 == 0 {
				cols = int(next()) % (subs + 2) // jagged sub-channel count
			}
			m.CSI[a] = make([]float64, cols)
			for k := range m.CSI[a] {
				m.CSI[a][k] = fuzzAmplitude(next())
			}
			m.RSSI[a] = fuzzAmplitude(next())
		}
		s.Append(m)
	}
	return s
}

// seedBytes renders a clean two-level modulation pattern in the harness's
// byte format, sized like the decoder tests' synthetic vectors (enough
// packets per bit for the binning and preamble paths to engage).
func seedBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		switch {
		case i%7 == 0:
			out[i] = 10 // small time step, keeps timestamps dense
		case (i/40)%2 == 0:
			out[i] = 120 // high level
		default:
			out[i] = 80 // low level
		}
	}
	return out
}

func FuzzDecodeCSI(f *testing.F) {
	// Seeds mirror the unit-test vectors: 3 antennas × 30 sub-channels at
	// ~1000 pkt/s (decoder_test.go's defaultSynth), plus degenerate shapes.
	f.Add(seedBytes(4096), uint8(3), uint8(30), 0.0, uint8(90))
	f.Add(seedBytes(512), uint8(1), uint8(1), 0.01, uint8(1))
	f.Add([]byte{255, 254, 253, 0, 1, 2}, uint8(2), uint8(4), math.NaN(), uint8(10))
	f.Add([]byte{}, uint8(3), uint8(30), -1.0, uint8(20))
	// Every measurement with zero antennas: the record layout is
	// [dt, sign, jagged-check, row-count], so 23 trips the jagged branch
	// (23%23 == 0) and the following 0 sets rows = 0 — the empty-selection
	// path that once reached dsp.MinMax with nothing selected.
	f.Add(bytes.Repeat([]byte{10, 1, 23, 0}, 128), uint8(3), uint8(30), 0.0, uint8(16))
	// Alternating zero-antenna and jagged single-antenna rows.
	f.Add(bytes.Repeat([]byte{10, 1, 23, 0, 10, 1, 23, 1, 120, 80}, 64), uint8(2), uint8(4), 0.0, uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, antsRaw, subsRaw uint8, start float64, payloadRaw uint8) {
		ants := 1 + int(antsRaw)%4
		subs := 1 + int(subsRaw)%32
		payloadLen := 1 + int(payloadRaw)
		s := fuzzSeries(data, ants, subs)
		d, err := NewDecoder(DefaultConfig(0.01))
		if err != nil {
			t.Fatal(err)
		}
		if res, err := d.DecodeCSI(s, start, payloadLen); err == nil && len(res.Payload) != payloadLen {
			t.Errorf("DecodeCSI returned %d payload bits, want %d", len(res.Payload), payloadLen)
		}
		if res, err := d.DecodeRSSI(s, start, payloadLen); err == nil && len(res.Payload) != payloadLen {
			t.Errorf("DecodeRSSI returned %d payload bits, want %d", len(res.Payload), payloadLen)
		}
		// Channel indices straight from the raw fuzz bytes: out-of-range
		// values must come back as errors.
		_, _ = d.DecodeSingleChannel(s, start, payloadLen, int(antsRaw)-2, int(subsRaw)-2)
		_, _ = d.NormalizedChannel(s, int(antsRaw)%4, int(subsRaw)%32)
	})
}

// FuzzStreamPush drives the streaming decoder with the same hostile byte
// streams: out-of-order and duplicate timestamps, NaN amplitudes, and
// jagged shapes. The contract under fuzz is (result, error) — malformed
// input surfaces as a Push or Flush error, never a panic — and on fully
// clean runs the bit count matches the payload length.
func FuzzStreamPush(f *testing.F) {
	f.Add(seedBytes(4096), uint8(3), uint8(30), 0.0, uint8(90), false)
	f.Add(seedBytes(512), uint8(1), uint8(1), 0.01, uint8(1), true)
	f.Add([]byte{255, 254, 253, 0, 1, 2}, uint8(2), uint8(4), math.NaN(), uint8(10), false)
	// Non-monotonic time steps (17 trips the backwards-dt branch): the
	// Push ordering check must reject these with an error.
	f.Add(bytes.Repeat([]byte{10, 17, 0, 0}, 64), uint8(3), uint8(30), 0.0, uint8(16), false)
	// Zero time steps make duplicate timestamps: legal (non-decreasing),
	// and the stream must decode them identically to the batch path.
	f.Add(bytes.Repeat([]byte{0, 1, 120, 80}, 64), uint8(2), uint8(4), 0.0, uint8(8), true)
	f.Fuzz(func(t *testing.T, data []byte, antsRaw, subsRaw uint8, start float64, payloadRaw uint8, rssi bool) {
		ants := 1 + int(antsRaw)%4
		subs := 1 + int(subsRaw)%32
		payloadLen := 1 + int(payloadRaw)
		mode := StreamCSI
		if rssi {
			mode = StreamRSSI
		}
		s := fuzzSeries(data, ants, subs)
		d, err := NewDecoder(DefaultConfig(0.01))
		if err != nil {
			t.Fatal(err)
		}
		sd, err := d.NewStream(start, payloadLen, mode)
		if err != nil {
			t.Fatal(err)
		}
		var bits []BitDecision
		pushErr := false
		for _, m := range s.Measurements {
			out, err := sd.Push(m)
			if err != nil {
				pushErr = true
				// Errors are sticky: every later push must fail too.
				if _, err := sd.Push(m); err == nil {
					t.Fatal("stream accepted a push after an error")
				}
				break
			}
			bits = append(bits, out...)
		}
		res, err := sd.Flush()
		if pushErr {
			if err == nil {
				t.Fatal("Flush succeeded on a poisoned stream")
			}
			return
		}
		if err == nil {
			if len(res.Payload) != payloadLen {
				t.Errorf("stream decode returned %d payload bits, want %d", len(res.Payload), payloadLen)
			}
			if got := len(sd.Bits()); got != payloadLen {
				t.Errorf("stream emitted %d bit decisions, want %d", got, payloadLen)
			}
		}
		_ = bits
	})
}

// TestDecodeEmptySelection pins the empty-selection behaviour the fuzz
// seeds above probe: a series whose measurements carry no antennas must
// come back as a decode error from every entry point, never a panic.
func TestDecodeEmptySelection(t *testing.T) {
	s := &csi.Series{}
	for i := 0; i < 64; i++ {
		s.Append(csi.Measurement{Timestamp: float64(i) * 1e-3})
	}
	d, err := NewDecoder(DefaultConfig(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeCSI(s, 0, 8); err == nil {
		t.Error("DecodeCSI with zero antennas should error")
	}
	if _, err := d.DecodeRSSI(s, 0, 8); err == nil {
		t.Error("DecodeRSSI with zero antennas should error")
	}
	if _, err := d.DecodeSingleChannel(s, 0, 8, 0, 0); err == nil {
		t.Error("DecodeSingleChannel with zero antennas should error")
	}
}

func FuzzDecodeLongRange(f *testing.F) {
	f.Add(seedBytes(2048), uint8(3), uint8(8), uint8(12), uint8(2), 0.0)
	f.Add([]byte{255, 253, 7}, uint8(1), uint8(1), uint8(1), uint8(0), math.Inf(1))
	f.Fuzz(func(t *testing.T, data []byte, antsRaw, subsRaw, payloadRaw, lRaw uint8, start float64) {
		ants := 1 + int(antsRaw)%3
		subs := 1 + int(subsRaw)%8
		payloadLen := 1 + int(payloadRaw)%32
		L := 2 << (int(lRaw) % 3) // 2, 4, 8 chips per bit
		code0, code1, err := dsp.WalshPair(L)
		if err != nil {
			t.Fatal(err)
		}
		s := fuzzSeries(data, ants, subs)
		d, err := NewDecoder(DefaultConfig(0.01))
		if err != nil {
			t.Fatal(err)
		}
		if res, err := d.DecodeLongRange(s, start, payloadLen, code0, code1); err == nil &&
			len(res.Payload) != payloadLen {
			t.Errorf("DecodeLongRange returned %d payload bits, want %d", len(res.Payload), payloadLen)
		}
		// Mismatched code lengths must error, never index out of range.
		if _, err := d.DecodeLongRange(s, start, payloadLen, code0, code1[:L-1]); err == nil {
			t.Error("mismatched code lengths should error")
		}
	})
}
