package uplink

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/tag"
)

// benchSeries builds one reusable synthetic transmission for decoder
// micro-benchmarks.
func benchSeries(b *testing.B) (*csi.Series, *tag.Modulator, []bool) {
	b.Helper()
	payload := randomPayload(90, 1)
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	return synthSeries(cfg, mod, 2), mod, payload
}

func BenchmarkDecodeCSI(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeCSI(s, mod.Start(), 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRSSI(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeRSSI(s, mod.Start(), 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLongRange(b *testing.B) {
	payload := randomPayload(16, 3)
	code0, code1, _ := dsp.WalshPair(20)
	chips := tag.ExpandWithCodes(payload, code0, code1)
	frame := append(append(append([]bool{}, tag.Preamble...), chips...), tag.Postamble...)
	mod, _ := tag.NewModulator(frame, 1.0, 0.005)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 4)
	d, _ := NewDecoder(DefaultConfig(0.005))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeLongRange(s, mod.Start(), 16, code0, code1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamDecode measures one full streamed decode: N pushes plus
// the frame-close decode, the wbdecode/live-reader hot path. Compare with
// BenchmarkDecodeCSI — the only delta should be per-push call overhead.
func BenchmarkStreamDecode(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sd, err := d.NewStream(mod.Start(), 90, StreamCSI)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range s.Measurements {
			if _, err := sd.Push(m); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sd.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPush isolates the steady-state per-measurement cost: the
// arena is pre-grown by a warm-up pass, so the measured loop is the pure
// buffering path. Run with -benchmem; the contract is 0 allocs/op (pinned
// by TestStreamPushSteadyStateAllocs in stream_alloc_test.go).
func BenchmarkStreamPush(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	// Keep timestamps strictly inside the frame so no push triggers the
	// decode; recycle through fresh streams as b.N demands.
	var inFrame []csi.Measurement
	sd0, _ := d.NewStream(mod.Start(), 90, StreamCSI)
	for _, m := range s.Measurements {
		if m.Timestamp >= sd0.Start() && m.Timestamp < sd0.End() {
			inFrame = append(inFrame, m)
		}
	}
	if len(inFrame) == 0 {
		b.Fatal("no in-frame measurements")
	}
	// Warm up: one full frame grows the arena and primes the dsp pool, so
	// the measured pushes land in recycled buffers.
	sd, _ := d.NewStream(mod.Start(), 90, StreamCSI)
	for _, m := range inFrame {
		if _, err := sd.Push(m); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		b.Fatal(err)
	}
	sd, _ = d.NewStream(mod.Start(), 90, StreamCSI)
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(inFrame) {
			// Frame turnover (flush + fresh stream) is off the steady-state
			// path; exclude it so the number is the pure buffering cost.
			b.StopTimer()
			if _, err := sd.Flush(); err != nil {
				b.Fatal(err)
			}
			sd, _ = d.NewStream(mod.Start(), 90, StreamCSI)
			i = 0
			b.StartTimer()
		}
		if _, err := sd.Push(inFrame[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
	b.StopTimer()
	sd.Flush()
}

func BenchmarkDetectAck(b *testing.B) {
	mod, _ := tag.NewModulator(AckBits(), 1.0, 0.01)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 5)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.DetectAck(s, mod.Start()); err != nil {
			b.Fatal(err)
		}
	}
}
