package uplink

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/dsp"
	"repro/internal/tag"
)

// benchSeries builds one reusable synthetic transmission for decoder
// micro-benchmarks.
func benchSeries(b *testing.B) (*csi.Series, *tag.Modulator, []bool) {
	b.Helper()
	payload := randomPayload(90, 1)
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	return synthSeries(cfg, mod, 2), mod, payload
}

func BenchmarkDecodeCSI(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeCSI(s, mod.Start(), 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRSSI(b *testing.B) {
	s, mod, _ := benchSeries(b)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeRSSI(s, mod.Start(), 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLongRange(b *testing.B) {
	payload := randomPayload(16, 3)
	code0, code1, _ := dsp.WalshPair(20)
	chips := tag.ExpandWithCodes(payload, code0, code1)
	frame := append(append(append([]bool{}, tag.Preamble...), chips...), tag.Postamble...)
	mod, _ := tag.NewModulator(frame, 1.0, 0.005)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 4)
	d, _ := NewDecoder(DefaultConfig(0.005))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeLongRange(s, mod.Start(), 16, code0, code1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectAck(b *testing.B) {
	mod, _ := tag.NewModulator(AckBits(), 1.0, 0.01)
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	s := synthSeries(cfg, mod, 5)
	d, _ := NewDecoder(DefaultConfig(0.01))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.DetectAck(s, mod.Start()); err != nil {
			b.Fatal(err)
		}
	}
}
