package uplink

// This file is the incremental streaming core of the decoder. Every batch
// entry point (DecodeCSI, DecodeRSSI, DecodeSingleChannel) is a thin
// push-all-then-flush wrapper over StreamDecoder, so there is exactly one
// decode implementation; see DESIGN.md §10 for the architecture and the
// equivalence argument.
//
// The memory contract: a StreamDecoder buffers only the measurements that
// fall inside the expected frame window [start, start+nbits·BitDuration).
// Out-of-frame pushes are validated, counted, and dropped, so a stream fed
// an arbitrarily long trace holds at most one frame's worth of samples —
// memory is bounded by the frame, not the trace. The frame arena lives in
// pooled dsp scratch slices and goes back to the pool the moment the frame
// decodes (or the stream fails or flushes).
//
// The latency contract: the paper's pipeline is frame-global — the
// conditioning normalization, the preamble correlation that ranks
// sub-channels, the MRC weights, and the hysteresis thresholds (µ ± σ/2 of
// the combined series) are all statistics of the whole frame — so no bit
// can be finalized before the frame's last measurement without changing
// the decoded output. The stream therefore emits every bit at the first
// push whose timestamp reaches the frame end (one packet after the
// postamble), not at end-of-trace the way the old batch path did.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/csi"
	"repro/internal/dsp"
)

// StreamMode selects the measurement source a StreamDecoder decodes from,
// mirroring the DecodeCSI / DecodeRSSI batch entry points.
type StreamMode int

// Stream modes.
const (
	// StreamCSI decodes from per-sub-channel CSI (§3.2).
	StreamCSI StreamMode = iota
	// StreamRSSI decodes from per-antenna RSSI only (§3.3).
	StreamRSSI
)

// String implements fmt.Stringer.
func (m StreamMode) String() string {
	if m == StreamRSSI {
		return "rssi"
	}
	return "csi"
}

// BitDecision is one decoded payload bit emitted by the streaming core.
type BitDecision struct {
	// Index is the payload bit position (0-based, framing excluded).
	Index int
	// Bit is the decoded value.
	Bit bool
	// Measurements is the number of channel measurements in the bit's
	// timestamp bin (0 means the majority vote defaulted to false).
	Measurements int
}

// StreamDecoder decodes one expected tag transmission incrementally: feed
// it measurements in timestamp order with Push as they arrive, and it
// emits the frame's bits as soon as a push's timestamp passes the frame
// end. Flush finalizes a stream whose trace ended inside the frame
// (decoding whatever arrived) and returns the full Result.
//
// Push requires non-decreasing timestamps — equal timestamps are legal,
// exactly as csi.Series.Append/TrimBefore document for the capture side,
// so a capture that timestamps two packets identically (coarse clocks do)
// decodes the same live as it does in batch — and a consistent
// measurement shape; violations return an error and poison the stream
// (every later call returns the same error) — never a panic. A
// StreamDecoder is single-use and not safe for concurrent use.
type StreamDecoder struct {
	d    *Decoder
	mode StreamMode
	// single restricts the decode to one CSI channel (the
	// DecodeSingleChannel baseline).
	single              bool
	antenna, subchannel int

	start, end float64
	payloadLen int
	nbits      int

	// Shape, learned from the first push.
	shaped     bool
	ants, subs int

	pushes  int
	last    float64
	hasLast bool

	// The frame arena: pooled buffers holding only in-frame samples.
	// ts[i] and chans[c][i] describe the i-th in-frame measurement; the
	// channel order is a·subs+k for CSI (matching the batch scan order),
	// a for RSSI, and a single slot in single-channel mode.
	ts     []float64
	chans  [][]float64
	n      int
	arena  int // current buffer capacity
	closed bool

	decoded bool
	emitted []BitDecision
	res     *Result
	err     error
}

// NewStream returns a streaming decoder for one transmission of
// payloadLen payload bits starting at start, decoding in the given mode.
func (d *Decoder) NewStream(start float64, payloadLen int, mode StreamMode) (*StreamDecoder, error) {
	if mode != StreamCSI && mode != StreamRSSI {
		return nil, fmt.Errorf("uplink: unknown stream mode %d", int(mode))
	}
	return d.newStream(start, payloadLen, mode, false, 0, 0)
}

// NewSingleChannelStream is NewStream restricted to exactly one CSI
// channel — the streaming form of DecodeSingleChannel.
func (d *Decoder) NewSingleChannelStream(start float64, payloadLen, antenna, subchannel int) (*StreamDecoder, error) {
	if antenna < 0 || subchannel < 0 {
		return nil, fmt.Errorf("uplink: stream channel (%d, %d) out of range", antenna, subchannel)
	}
	return d.newStream(start, payloadLen, StreamCSI, true, antenna, subchannel)
}

func (d *Decoder) newStream(start float64, payloadLen int, mode StreamMode, single bool, antenna, subchannel int) (*StreamDecoder, error) {
	if payloadLen <= 0 {
		return nil, fmt.Errorf("uplink: payload length must be positive, got %d", payloadLen)
	}
	nbits := nFrameBits(payloadLen)
	return &StreamDecoder{
		d: d, mode: mode, single: single, antenna: antenna, subchannel: subchannel,
		start: start, end: start + float64(nbits)*d.cfg.BitDuration,
		payloadLen: payloadLen, nbits: nbits,
	}, nil
}

// Start returns the expected frame start time.
func (sd *StreamDecoder) Start() float64 { return sd.start }

// End returns the expected frame end time (postamble included); the push
// that reaches it triggers the decode.
func (sd *StreamDecoder) End() float64 { return sd.end }

// Buffered returns the number of in-frame measurements currently held —
// the quantity the uplink.stream.buffer_highwater gauge tracks.
func (sd *StreamDecoder) Buffered() int { return sd.n }

// Done reports whether the frame has been decoded (bits emitted).
func (sd *StreamDecoder) Done() bool { return sd.decoded }

// Bits returns every bit decision emitted so far (nil before the frame
// closes). The slice is owned by the stream; do not mutate it.
func (sd *StreamDecoder) Bits() []BitDecision { return sd.emitted }

// Push feeds one measurement. Mid-frame pushes buffer and return nil; the
// first push whose timestamp reaches the frame end decodes the frame and
// returns every payload bit at once (the pipeline is frame-global, so
// that is the earliest any bit can be final — see the file comment).
// Steady-state pushes do not allocate: samples land in pooled buffers
// that grow geometrically up to the frame size.
func (sd *StreamDecoder) Push(m csi.Measurement) ([]BitDecision, error) {
	if sd.err != nil {
		return nil, sd.err
	}
	if sd.closed {
		// Invalid use, but the completed result stays retrievable: do not
		// poison a stream that already flushed successfully.
		return nil, fmt.Errorf("uplink: Push on a flushed stream")
	}
	if err := sd.checkShape(m); err != nil {
		return nil, sd.fail(err)
	}
	t := m.Timestamp
	if math.IsNaN(t) {
		return nil, sd.fail(fmt.Errorf("uplink: push %d has a NaN timestamp", sd.pushes))
	}
	if sd.hasLast && t < sd.last {
		return nil, sd.fail(fmt.Errorf("uplink: push %d timestamp %v goes backwards past %v; pushes must arrive in non-decreasing timestamp order",
			sd.pushes, t, sd.last))
	}
	sd.last, sd.hasLast = t, true
	sd.pushes++
	sd.d.met.streamPushes.Inc()
	// In-frame membership mirrors the batch frameRange slice: t in
	// [start, end). Anything else is dropped after validation, which is
	// what bounds the arena.
	if t >= sd.start && t < sd.end {
		sd.store(m)
		sd.d.met.streamHighwater.Set(float64(sd.n))
		return nil, nil
	}
	if !sd.decoded && t >= sd.end && sd.n > 0 {
		if err := sd.decode(false); err != nil {
			return nil, sd.fail(err)
		}
		return sd.emitted, nil
	}
	return nil, nil
}

// Flush closes the stream and returns the decode Result. If the frame had
// not closed yet (the trace ended inside it), whatever arrived is decoded
// now — the truncated-trace path the batch wrappers rely on. Flush is
// idempotent; Push is invalid afterwards.
func (sd *StreamDecoder) Flush() (*Result, error) {
	if sd.err != nil {
		return nil, sd.err
	}
	if sd.closed {
		return sd.res, nil
	}
	sd.closed = true
	if !sd.decoded {
		if sd.n == 0 {
			return nil, sd.fail(fmt.Errorf("uplink: no measurements inside the transmission window"))
		}
		if err := sd.decode(true); err != nil {
			return nil, sd.fail(err)
		}
	}
	return sd.res, nil
}

// fail poisons the stream and releases the arena.
func (sd *StreamDecoder) fail(err error) error {
	sd.err = err
	sd.release()
	return err
}

// checkShape validates a measurement against the stream's shape (learned
// from the first push), so store can never index out of range.
func (sd *StreamDecoder) checkShape(m csi.Measurement) error {
	if !sd.shaped {
		sd.ants = len(m.CSI)
		if sd.ants > 0 {
			sd.subs = len(m.CSI[0])
		}
	}
	if len(m.CSI) != sd.ants || len(m.RSSI) != sd.ants {
		return fmt.Errorf("uplink: push %d has %d CSI rows and %d RSSI entries, want %d of each",
			sd.pushes, len(m.CSI), len(m.RSSI), sd.ants)
	}
	for a, row := range m.CSI {
		if len(row) != sd.subs {
			return fmt.Errorf("uplink: push %d antenna %d has %d sub-channels, want %d",
				sd.pushes, a, len(row), sd.subs)
		}
	}
	if !sd.shaped {
		sd.shaped = true
		if sd.single && (sd.antenna >= sd.ants || sd.subchannel >= sd.subs) {
			return fmt.Errorf("uplink: stream channel (%d, %d) out of range (%d antennas, %d sub-channels)",
				sd.antenna, sd.subchannel, sd.ants, sd.subs)
		}
	}
	return nil
}

// nchan returns the number of channel lanes the mode scans.
func (sd *StreamDecoder) nchan() int {
	switch {
	case sd.single:
		return 1
	case sd.mode == StreamRSSI:
		return sd.ants
	default:
		return sd.ants * sd.subs
	}
}

// store appends one in-frame measurement to the arena.
func (sd *StreamDecoder) store(m csi.Measurement) {
	if sd.n == sd.arena {
		sd.grow()
	}
	i := sd.n
	sd.ts[i] = m.Timestamp
	switch {
	case sd.single:
		sd.chans[0][i] = m.CSI[sd.antenna][sd.subchannel]
	case sd.mode == StreamRSSI:
		for a := 0; a < sd.ants; a++ {
			sd.chans[a][i] = m.RSSI[a]
		}
	default:
		for a := 0; a < sd.ants; a++ {
			row := m.CSI[a]
			base := a * sd.subs
			for k := 0; k < sd.subs; k++ {
				sd.chans[base+k][i] = row[k]
			}
		}
	}
	sd.n++
}

// grow doubles the arena's pooled buffers. Growth tops out at the frame's
// measurement count because out-of-frame pushes are never stored.
func (sd *StreamDecoder) grow() {
	c := sd.arena * 2
	if c == 0 {
		c = 128
	}
	if sd.chans == nil {
		sd.chans = make([][]float64, sd.nchan())
	}
	//wblint:ignore PH004 the arena deliberately lives on sd across pushes; StreamDecoder.release returns every buffer to the pool on decode/flush/fail
	sd.ts = growPooled(sd.ts, sd.n, c)
	for i := range sd.chans {
		//wblint:ignore PH004 same arena ownership as sd.ts: released by StreamDecoder.release on every exit path
		sd.chans[i] = growPooled(sd.chans[i], sd.n, c)
	}
	sd.arena = c
}

// growPooled moves n live samples into a larger pooled buffer, releasing
// the old one.
func growPooled(old []float64, n, c int) []float64 {
	buf := dsp.GetSlice(c)
	copy(buf, old[:n])
	dsp.PutSlice(old)
	//wblint:ignore PH003 ownership stays with the StreamDecoder's frame arena; StreamDecoder.release returns it to the pool at decode/flush/fail time
	return buf
}

// release returns the frame arena to the pool.
func (sd *StreamDecoder) release() {
	dsp.PutSlice(sd.ts)
	sd.ts = nil
	for i := range sd.chans {
		dsp.PutSlice(sd.chans[i])
		sd.chans[i] = nil
	}
	sd.n, sd.arena = 0, 0
}

// decode runs the paper's pipeline over the buffered frame — the single
// implementation behind every entry point. The numerics and the metric
// increments are exactly the historical batch decode's: bin by timestamp,
// impair + condition + score each channel in scan order, select, MRC,
// hysteresis, vote.
func (sd *StreamDecoder) decode(atFlush bool) error {
	sd.decoded = true
	d := sd.d
	ts := sd.ts[:sd.n]
	bins := binByTimestamp(ts, sd.start, d.cfg.BitDuration, sd.nbits)
	var res *Result
	var err error
	switch {
	case sd.single:
		id := ChannelID{sd.antenna, sd.subchannel}
		raw := sd.chans[0][:sd.n]
		if d.Impair != nil {
			d.Impair.ImpairChannel(id, ts, raw)
		}
		st := analyzeChannel(id, raw, ts, bins, d.cfg)
		d.met.channelsAnalyzed.Inc()
		res, err = d.combineSelected([]channelStats{st}, bins, sd.payloadLen)
		dsp.PutSlice(st.cond)
	case sd.mode == StreamRSSI:
		stats := make([]channelStats, 0, sd.ants)
		for a := 0; a < sd.ants; a++ {
			raw := sd.chans[a][:sd.n]
			if d.Impair != nil {
				d.Impair.ImpairChannel(ChannelID{a, -1}, ts, raw)
			}
			stats = append(stats, analyzeChannel(ChannelID{a, -1}, raw, ts, bins, d.cfg))
			d.met.channelsAnalyzed.Inc()
		}
		if len(stats) == 0 {
			err = fmt.Errorf("uplink: series has no antennas")
		} else {
			// RSSI mode uses the single best channel.
			//wblint:ignore HP002 the comparator runs once per frame close, not per push; sort.Slice's unstable tie order is pinned by the golden traces
			sort.Slice(stats, func(i, j int) bool { //wblint:ignore HP001 boxing the slice header is once per frame close, not per push; see the HP002 reason above
				return math.Abs(stats[i].corr) > math.Abs(stats[j].corr)
			})
			d.met.channelsRejected.Add(int64(len(stats) - 1))
			res, err = d.combineSelected(stats[:1], bins, sd.payloadLen)
		}
		releaseStats(stats)
	default:
		stats := make([]channelStats, 0, sd.ants*sd.subs)
		for a := 0; a < sd.ants; a++ {
			for k := 0; k < sd.subs; k++ {
				id := ChannelID{a, k}
				raw := sd.chans[a*sd.subs+k][:sd.n]
				if d.Impair != nil {
					d.Impair.ImpairChannel(id, ts, raw)
				}
				stats = append(stats, analyzeChannel(id, raw, ts, bins, d.cfg))
				d.met.channelsAnalyzed.Inc()
			}
		}
		res, err = d.combineAndDecide(stats, bins, sd.payloadLen)
		releaseStats(stats)
	}
	sd.release()
	if err != nil {
		return err
	}
	sd.res = res
	sd.emitted = make([]BitDecision, len(res.Payload))
	for i, bit := range res.Payload {
		sd.emitted[i] = BitDecision{Index: i, Bit: bit, Measurements: len(bins[13+i])}
	}
	d.met.streamBitsEmitted.Add(int64(len(sd.emitted)))
	if atFlush {
		d.met.streamFlushBits.Add(int64(len(sd.emitted)))
	}
	return nil
}
