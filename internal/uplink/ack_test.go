package uplink

import (
	"testing"

	"repro/internal/csi"
	"repro/internal/tag"
)

func TestAckBitsMatchPreamble(t *testing.T) {
	bits := AckBits()
	if len(bits) != 13 {
		t.Fatalf("ACK burst = %d bits, want 13", len(bits))
	}
	for i, b := range tag.Preamble {
		if bits[i] != b {
			t.Fatalf("ACK bit %d differs from the preamble", i)
		}
	}
}

func TestDetectAckPresent(t *testing.T) {
	const bitDur = 0.01
	mod, err := tag.NewModulator(AckBits(), 1.0, bitDur)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 1.0
	s := synthSeries(cfg, mod, 3)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	ok, corr, err := d.DetectAck(s, mod.Start())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("ACK not detected (corr %v)", corr)
	}
}

func TestDetectAckAbsent(t *testing.T) {
	// No transmission at all: detection must not fire.
	const bitDur = 0.01
	mod, _ := tag.NewModulator(AckBits(), 100.0, bitDur) // far in the future
	cfg := defaultSynth()
	cfg.duration = 3
	s := synthSeries(cfg, mod, 4)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	ok, _, err := d.DetectAck(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ACK detected in pure noise")
	}
}

func TestDetectAckFalsePositiveRate(t *testing.T) {
	// Across many noise-only windows, detections should be rare.
	const bitDur = 0.01
	mod, _ := tag.NewModulator(AckBits(), 1000.0, bitDur)
	cfg := defaultSynth()
	cfg.duration = 12
	s := synthSeries(cfg, mod, 5)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	fires := 0
	const windows = 60
	for i := 0; i < windows; i++ {
		ok, _, err := d.DetectAck(s, 1.0+float64(i)*0.15)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fires++
		}
	}
	if fires > 3 {
		t.Errorf("ACK false positives: %d/%d windows", fires, windows)
	}
}

func TestDetectAckEmptySeries(t *testing.T) {
	d, _ := NewDecoder(DefaultConfig(0.01))
	if _, _, err := d.DetectAck(&csi.Series{}, 0); err == nil {
		t.Error("empty series should error")
	}
}

func TestDetectAckTooFewMeasurements(t *testing.T) {
	const bitDur = 0.01
	mod, _ := tag.NewModulator(AckBits(), 1.0, bitDur)
	cfg := defaultSynth()
	cfg.pktRate = 100 // ~1 measurement per bit: under the 13 needed
	cfg.duration = 2
	s := synthSeries(cfg, mod, 6)
	d, _ := NewDecoder(DefaultConfig(bitDur))
	ok, _, err := d.DetectAck(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	_ = ok // sparse coverage may or may not detect; it must not panic
}
