package uplink

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/csi"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tag"
)

// streamSynth builds the standard synthetic transmission used by the
// stream tests: payload bits, the modulator, and the series.
func streamSynth(t *testing.T, payloadLen int, seed int64) ([]bool, *tag.Modulator, *csi.Series) {
	t.Helper()
	payload := randomPayload(payloadLen, seed)
	mod, err := tag.NewModulator(tag.FrameBits(payload), 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := defaultSynth()
	cfg.duration = mod.End() + 0.5
	return payload, mod, synthSeries(cfg, mod, seed+100)
}

// pushSeries feeds every measurement of s, collecting emitted bits.
func pushSeries(t *testing.T, sd *StreamDecoder, s *csi.Series) []BitDecision {
	t.Helper()
	var bits []BitDecision
	for _, m := range s.Measurements {
		out, err := sd.Push(m)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
		bits = append(bits, out...)
	}
	return bits
}

// TestStreamMatchesBatchUnderRandomTruncation is the chunking-equivalence
// property: Push takes one measurement at a time, so "any chunking" means
// any prefix — pushing the first k measurements then flushing must be
// byte-identical to the batch decode of those same k measurements, for
// every k, including errors. Quick-checked over random cut points and
// seeds for both CSI and RSSI modes.
func TestStreamMatchesBatchUnderRandomTruncation(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		_, mod, s := streamSynth(t, 45, seed)
		d, _ := NewDecoder(DefaultConfig(0.01))
		cut := rng.New(seed + 500)
		cuts := []int{0, 1, s.Len()} // always include the degenerate cuts
		for i := 0; i < 6; i++ {
			cuts = append(cuts, 1+int(cut.Float64()*float64(s.Len()-1)))
		}
		for _, mode := range []StreamMode{StreamCSI, StreamRSSI} {
			for _, k := range cuts {
				trunc := &csi.Series{Measurements: s.Measurements[:k]}
				var batchRes *Result
				var batchErr error
				if mode == StreamRSSI {
					batchRes, batchErr = d.DecodeRSSI(trunc, mod.Start(), 45)
				} else {
					batchRes, batchErr = d.DecodeCSI(trunc, mod.Start(), 45)
				}
				sd, err := d.NewStream(mod.Start(), 45, mode)
				if err != nil {
					t.Fatal(err)
				}
				var emitted []BitDecision
				for _, m := range trunc.Measurements {
					out, perr := sd.Push(m)
					if perr != nil {
						t.Fatalf("seed %d mode %v k=%d: Push: %v", seed, mode, k, perr)
					}
					emitted = append(emitted, out...)
				}
				streamRes, streamErr := sd.Flush()
				if (batchErr == nil) != (streamErr == nil) {
					t.Fatalf("seed %d mode %v k=%d: batch err %v, stream err %v", seed, mode, k, batchErr, streamErr)
				}
				if batchErr != nil {
					if k > 0 && batchErr.Error() != streamErr.Error() {
						t.Errorf("seed %d mode %v k=%d: error mismatch: batch %q, stream %q", seed, mode, k, batchErr, streamErr)
					}
					continue
				}
				if !reflect.DeepEqual(batchRes, streamRes) {
					t.Errorf("seed %d mode %v k=%d: stream result differs from batch:\nbatch:  %+v\nstream: %+v",
						seed, mode, k, batchRes, streamRes)
				}
				// The emitted stream (push-time or flush-time) must spell the
				// same payload.
				all := sd.Bits()
				if len(all) != len(streamRes.Payload) {
					t.Fatalf("seed %d mode %v k=%d: %d bit decisions for %d payload bits", seed, mode, k, len(all), len(streamRes.Payload))
				}
				for i, b := range all {
					if b.Index != i || b.Bit != streamRes.Payload[i] {
						t.Errorf("seed %d mode %v k=%d: bit decision %d = %+v, want payload bit %v", seed, mode, k, i, b, streamRes.Payload[i])
					}
				}
				// When the trace extends past the frame, bits surface at Push
				// time (emitted non-empty); otherwise they surface at Flush.
				if k == s.Len() && len(emitted) != len(streamRes.Payload) {
					t.Errorf("seed %d mode %v: full trace emitted %d bits at push time, want %d", seed, mode, len(emitted), len(streamRes.Payload))
				}
			}
		}
	}
}

// TestStreamSingleChannelMatchesBatch pins the third entry point to the
// same core.
func TestStreamSingleChannelMatchesBatch(t *testing.T) {
	_, mod, s := streamSynth(t, 30, 9)
	d, _ := NewDecoder(DefaultConfig(0.01))
	batch, err := d.DecodeSingleChannel(s, mod.Start(), 30, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := d.NewSingleChannelStream(mod.Start(), 30, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pushSeries(t, sd, s)
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, res) {
		t.Errorf("single-channel stream differs from batch:\nbatch:  %+v\nstream: %+v", batch, res)
	}
	if _, err := d.NewSingleChannelStream(mod.Start(), 30, -1, 0); err == nil {
		t.Error("negative antenna should error at construction")
	}
	bad, _ := d.NewSingleChannelStream(mod.Start(), 30, 99, 0)
	if _, err := bad.Push(s.Measurements[0]); err == nil {
		t.Error("out-of-range channel should error at first push")
	}
}

// TestStreamEmitsAtFrameClose pins the latency win over batch: every bit
// is available at the first push past the frame end, not at end of trace.
func TestStreamEmitsAtFrameClose(t *testing.T) {
	payload, mod, s := streamSynth(t, 45, 3)
	d, _ := NewDecoder(DefaultConfig(0.01))
	sd, err := d.NewStream(mod.Start(), 45, StreamCSI)
	if err != nil {
		t.Fatal(err)
	}
	var emittedAt int
	var bits []BitDecision
	for i, m := range s.Measurements {
		out, err := sd.Push(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > 0 {
			if bits != nil {
				t.Fatal("bits emitted twice")
			}
			bits, emittedAt = out, i
		}
	}
	if bits == nil {
		t.Fatal("no bits emitted before end of trace")
	}
	if ts := s.Measurements[emittedAt].Timestamp; ts < mod.End() {
		t.Errorf("bits emitted at t=%v, before frame end %v", ts, mod.End())
	}
	if emittedAt == s.Len()-1 {
		t.Error("bits only emitted on the last measurement; no latency win over batch")
	}
	if !sd.Done() {
		t.Error("Done() false after emission")
	}
	got := make([]bool, len(bits))
	for i, b := range bits {
		got[i] = b.Bit
	}
	if errs := countBitErrors(got, payload); errs != 0 {
		t.Errorf("streamed decode produced %d bit errors on a clean link", errs)
	}
}

// TestStreamPushErrors pins the input contract: backwards and NaN
// timestamps, shape drift, and use-after-Flush all return errors (and
// poison the stream) rather than panicking.
func TestStreamPushErrors(t *testing.T) {
	_, mod, s := streamSynth(t, 20, 5)
	d, _ := NewDecoder(DefaultConfig(0.01))
	mk := func() *StreamDecoder {
		sd, err := d.NewStream(mod.Start(), 20, StreamCSI)
		if err != nil {
			t.Fatal(err)
		}
		return sd
	}
	m0, m1 := s.Measurements[0], s.Measurements[1]

	sd := mk()
	if _, err := sd.Push(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Push(m0); err == nil {
		t.Error("out-of-order push should error")
	}
	if _, err := sd.Push(m1); err == nil {
		t.Error("stream should stay poisoned after an error")
	}
	if _, err := sd.Flush(); err == nil {
		t.Error("Flush on a poisoned stream should error")
	}

	sd = mk()
	bad := m0
	bad.Timestamp = math.NaN()
	if _, err := sd.Push(bad); err == nil {
		t.Error("NaN timestamp should error")
	}

	sd = mk()
	if _, err := sd.Push(m0); err != nil {
		t.Fatal(err)
	}
	misshapen := csi.Measurement{Timestamp: m1.Timestamp, CSI: [][]float64{{1, 2}}, RSSI: []float64{1}}
	if _, err := sd.Push(misshapen); err == nil {
		t.Error("shape drift should error")
	}

	sd = mk()
	pushSeries(t, sd, s)
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Push(m1); err == nil {
		t.Error("Push after Flush should error")
	}
	// Flush stays idempotent after success.
	if res, err := sd.Flush(); err != nil || res == nil {
		t.Errorf("second Flush: res=%v err=%v", res, err)
	}
}

// TestStreamEqualTimestamps is the regression test for the contract
// mismatch at the stream seam: csi.Series.Append documents non-decreasing
// (equal legal) timestamps, and Push must accept the same series the
// batch wrappers accept — including duplicates landing exactly on the
// frame-end boundary — and decode it byte-identically.
func TestStreamEqualTimestamps(t *testing.T) {
	_, mod, s := streamSynth(t, 20, 9)
	d, _ := NewDecoder(DefaultConfig(0.01))

	// Duplicate every 7th measurement, plus the first one at or past the
	// frame end (the push that closes the frame), plus the final one.
	dup := &csi.Series{}
	closed := false
	for _, m := range s.Measurements {
		dup.Append(m)
		if len(dup.Measurements)%7 == 0 {
			dup.Append(m)
		}
		if !closed && m.Timestamp >= mod.End() {
			dup.Append(m) // equal timestamp at the frame-close boundary
			closed = true
		}
	}
	dup.Append(dup.Measurements[dup.Len()-1])

	batch, err := d.DecodeCSI(dup, mod.Start(), 20)
	if err != nil {
		t.Fatalf("batch decode of an equal-timestamp series: %v", err)
	}

	sd, err := d.NewStream(mod.Start(), 20, StreamCSI)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []BitDecision
	for i, m := range dup.Measurements {
		out, err := sd.Push(m)
		if err != nil {
			t.Fatalf("Push %d (ts=%v) rejected an equal timestamp: %v", i, m.Timestamp, err)
		}
		emitted = append(emitted, out...)
	}
	res, err := sd.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, batch) {
		t.Errorf("stream result differs from batch on an equal-timestamp series:\nstream: %+v\nbatch:  %+v", res, batch)
	}
	if len(emitted) != 20 {
		t.Errorf("frame with duplicated boundary timestamp emitted %d bits, want 20", len(emitted))
	}
}

// TestStreamMemoryBounded pins the memory contract: the arena holds only
// in-frame measurements, so a long trace does not grow it, and the decode
// releases it.
func TestStreamMemoryBounded(t *testing.T) {
	_, mod, s := streamSynth(t, 20, 6)
	d, _ := NewDecoder(DefaultConfig(0.01))
	sd, err := d.NewStream(mod.Start(), 20, StreamCSI)
	if err != nil {
		t.Fatal(err)
	}
	inFrame := 0
	for _, m := range s.Measurements {
		if m.Timestamp >= sd.Start() && m.Timestamp < sd.End() {
			inFrame++
		}
	}
	high := 0
	for _, m := range s.Measurements {
		if _, err := sd.Push(m); err != nil {
			t.Fatal(err)
		}
		if sd.Buffered() > high {
			high = sd.Buffered()
		}
	}
	if high != inFrame {
		t.Errorf("arena high-water %d, want the in-frame count %d", high, inFrame)
	}
	if sd.Buffered() != 0 {
		t.Errorf("arena not released after decode: %d buffered", sd.Buffered())
	}
}

// TestStreamMetrics pins the stream metric names and their accounting on
// a frame that closes mid-trace (flush_bits stays zero) and on a
// truncated trace (flush_bits counts the late bits).
func TestStreamMetrics(t *testing.T) {
	_, mod, s := streamSynth(t, 20, 7)
	reg := obs.NewRegistry()
	d, _ := NewDecoder(DefaultConfig(0.01))
	d.Instrument(reg)

	sd, _ := d.NewStream(mod.Start(), 20, StreamCSI)
	pushSeries(t, sd, s)
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("uplink.stream.pushes").Value(); got != int64(s.Len()) {
		t.Errorf("stream.pushes = %d, want %d", got, s.Len())
	}
	if got := reg.Counter("uplink.stream.bits_emitted").Value(); got != 20 {
		t.Errorf("stream.bits_emitted = %d, want 20", got)
	}
	if got := reg.Counter("uplink.stream.flush_bits").Value(); got != 0 {
		t.Errorf("stream.flush_bits = %d, want 0 (frame closed mid-trace)", got)
	}
	if reg.Gauge("uplink.stream.buffer_highwater").Max() <= 0 {
		t.Error("stream.buffer_highwater never rose")
	}

	// Truncate the trace inside the frame: the bits only exist at Flush.
	cutAt := 0
	for i, m := range s.Measurements {
		if m.Timestamp >= mod.End()-0.05 {
			cutAt = i
			break
		}
	}
	trunc := &csi.Series{Measurements: s.Measurements[:cutAt]}
	sd, _ = d.NewStream(mod.Start(), 20, StreamCSI)
	pushSeries(t, sd, trunc)
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("uplink.stream.flush_bits").Value(); got != 20 {
		t.Errorf("stream.flush_bits = %d after truncated flush, want 20", got)
	}
}
